#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over every source file in src/,
# failing on any warning (WarningsAsErrors: '*').  Used by the CI
# clang-tidy job; runnable locally from anywhere in the repo.
#
# Requires a compile database: configure with
#   cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# Skips with exit 0 (and a notice) when clang-tidy is not installed, so
# the script is safe to call from environments without clang tooling.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

TIDY=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
  if command -v "$cand" >/dev/null 2>&1; then
    TIDY="$cand"
    break
  fi
done
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (CI runs it)"
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

files=$(find "$ROOT/src" -name '*.cpp' | sort)
if [ -z "$files" ]; then
  echo "run_clang_tidy: no sources found under $ROOT/src" >&2
  exit 1
fi

status=0
count=0
for f in $files; do
  count=$((count + 1))
  if ! "$TIDY" -p "$BUILD" --quiet "$f"; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: FAILED — fix the warnings above" >&2
  exit 1
fi
echo "run_clang_tidy: OK ($count files clean under $TIDY)"
