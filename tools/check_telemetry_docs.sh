#!/usr/bin/env bash
# Fail if any trace event kind defined in src/obs/TraceEvent.h is not
# documented in docs/TELEMETRY.md.  Run from anywhere in the repo.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
HEADER="$ROOT/src/obs/TraceEvent.h"
DOC="$ROOT/docs/TELEMETRY.md"

if [ ! -f "$HEADER" ] || [ ! -f "$DOC" ]; then
  echo "check_telemetry_docs: missing $HEADER or $DOC" >&2
  exit 1
fi

# Extract every wire name from the X-macro:  X(EnumName, "wire.name")
names=$(sed -n 's/^ *X([A-Za-z0-9_]*, *"\([^"]*\)").*/\1/p' "$HEADER")
if [ -z "$names" ]; then
  echo "check_telemetry_docs: no event kinds parsed from $HEADER" >&2
  exit 1
fi

missing=0
count=0
for name in $names; do
  count=$((count + 1))
  if ! grep -qF "\`$name\`" "$DOC"; then
    echo "check_telemetry_docs: event '$name' is not documented in docs/TELEMETRY.md" >&2
    missing=1
  fi
done

# Serving-layer coverage: every cache.* counter the execution context
# registers, and every field of the "serving" record that
# bench/serving_throughput writes into results/bench_perf.json, must be
# documented too.
SERVING_CTX="$ROOT/src/dbt/ExecutionContext.cpp"
SERVING_BENCH="$ROOT/bench/serving_throughput.cpp"
extra=$(
  sed -n 's/.*addCounter("\(cache\.[a-z_]*\)".*/\1/p' "$SERVING_CTX"
  sed -n 's/.*\\"\(serving_[a-z_]*\|warm_hit_rate\|cold_p[059]*_ms\|warm_p[059]*_ms\)\\".*/\1/p' "$SERVING_BENCH"
)
if [ -z "$extra" ]; then
  echo "check_telemetry_docs: no serving metrics parsed from $SERVING_CTX / $SERVING_BENCH" >&2
  exit 1
fi
for name in $extra; do
  count=$((count + 1))
  if ! grep -qF "\`$name\`" "$DOC"; then
    echo "check_telemetry_docs: serving metric '$name' is not documented in docs/TELEMETRY.md" >&2
    missing=1
  fi
done

if [ "$missing" -ne 0 ]; then
  echo "check_telemetry_docs: FAILED — add the missing events/metrics to the catalog" >&2
  exit 1
fi
echo "check_telemetry_docs: OK ($count event kinds and serving metrics all documented)"
