#!/usr/bin/env bash
# Check that every relative markdown link in the repo's documentation
# points at a file that exists.  External (http/https/mailto) links and
# pure in-page anchors are skipped.  Run from anywhere in the repo.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
status=0
checked=0

check_file() {
  local md="$1"
  local dir
  dir="$(dirname "$md")"
  # Pull out every (target) of an inline [text](target) link.
  grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null |
    sed 's/.*(\([^)]*\))/\1/' |
    while IFS= read -r target; do
      case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
      esac
      local path="${target%%#*}" # strip in-page anchor
      [ -z "$path" ] && continue
      if [ ! -e "$dir/$path" ]; then
        echo "check_md_links: $md: broken link -> $target" >&2
        # Propagate failure out of the pipeline subshell via a marker.
        touch "$ROOT/.md_links_failed"
      fi
    done
}

rm -f "$ROOT/.md_links_failed"
for md in "$ROOT"/README.md "$ROOT"/DESIGN.md "$ROOT"/ROADMAP.md \
  "$ROOT"/EXPERIMENTS.md "$ROOT"/docs/*.md; do
  [ -f "$md" ] || continue
  checked=$((checked + 1))
  check_file "$md"
done

if [ -f "$ROOT/.md_links_failed" ]; then
  rm -f "$ROOT/.md_links_failed"
  echo "check_md_links: FAILED" >&2
  exit 1
fi
echo "check_md_links: OK ($checked files checked)"
