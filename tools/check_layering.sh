#!/usr/bin/env bash
# Layering lint: enforce the docs/ARCHITECTURE.md dependency rules from
# the *actual* `#include` edges under src/.
#
# Each src/<layer>/ may include headers only from itself and from the
# layers ARCHITECTURE.md allows below it.  Two deliberately narrow
# exceptions are whitelisted by exact file -> header pair:
#   * host/HostMachine.h -> guest/GuestMemory.h   (the trapping machine
#     reads/writes guest memory directly; the layers stay otherwise
#     independent)
#   * mda/* -> dbt/Policy.h                       ("mda policies see the
#     engine only through dbt/Policy.h")
# Anything else crossing the map upward or sideways is a back-edge and
# fails the lint, so a new violation cannot land silently.
#
# Usage: check_layering.sh [--self-test] [src-dir]
#   --self-test: build a synthetic tree containing a back-edge and
#   assert the lint demonstrably FAILS on it (the CI negative test),
#   then exit 0.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# Allowed cross-layer edges, straight from ARCHITECTURE.md's rules:
#   support depends on nothing; everything may depend on support.
#   obs sits just above support.
#   guest/host are independent (HostMachine exception aside).
#   chaos is observability-free: support only.
#   analysis knows guest+host, never dbt/mda.
#   dbt orchestrates analysis/chaos/guest/host/obs.
#   mda sees guest (+ dbt/Policy.h by exception).
#   workloads builds guest programs.
#   reporting drives dbt/mda/workloads.
allowed_edge() { # $1 = from-layer, $2 = to-layer
  case "$1:$2" in
  obs:support | guest:support | host:support | chaos:support) return 0 ;;
  analysis:guest | analysis:host | analysis:support) return 0 ;;
  dbt:analysis | dbt:chaos | dbt:guest | dbt:host | dbt:obs | dbt:support) return 0 ;;
  mda:guest | mda:support) return 0 ;;
  workloads:guest | workloads:support) return 0 ;;
  reporting:dbt | reporting:guest | reporting:mda | reporting:support | reporting:workloads) return 0 ;;
  esac
  return 1
}

allowed_exception() { # $1 = file relative to src dir, $2 = included header
  case "$1:$2" in
  host/HostMachine.h:guest/GuestMemory.h) return 0 ;;
  mda/*:dbt/Policy.h) return 0 ;;
  esac
  return 1
}

# Lint one src tree; prints violations, returns the violation count.
lint_tree() { # $1 = src dir
  local src="$1" violations=0 checked=0
  local file rel from line lineno target to
  while IFS= read -r file; do
    rel="${file#"$src"/}"
    from="${rel%%/*}"
    # Only first-party quoted includes that name a known layer matter;
    # system headers and third-party includes are not layer edges.
    while IFS=: read -r lineno line; do
      target="$(printf '%s\n' "$line" | sed -n 's/.*#include "\([A-Za-z0-9_][A-Za-z0-9_]*\/[A-Za-z0-9_.\/]*\)".*/\1/p')"
      [ -n "$target" ] || continue
      to="${target%%/*}"
      [ -d "$src/$to" ] || continue # not a layer (e.g. gtest/ headers)
      checked=$((checked + 1))
      [ "$to" = "$from" ] && continue
      if allowed_exception "$rel" "$target"; then
        continue
      fi
      if ! allowed_edge "$from" "$to"; then
        echo "::error file=src/$rel,line=$lineno ::layering: $from -> $to back-edge ($rel includes \"$target\"; not in docs/ARCHITECTURE.md's dependency rules)"
        violations=$((violations + 1))
      fi
    done < <(grep -n '#include "' "$file" || true)
  done < <(find "$src" -name '*.h' -o -name '*.cpp' | sort)
  echo "check_layering: $checked first-party include edges checked, $violations violations" >&2
  return "$violations"
}

self_test() {
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  mkdir -p "$tmp/src/guest" "$tmp/src/dbt" "$tmp/src/support"
  cat > "$tmp/src/dbt/Engine.h" <<'EOF'
#include "support/Format.h"
EOF
  # The synthetic back-edge: guest reaching up into the engine.
  cat > "$tmp/src/guest/Bad.h" <<'EOF'
#include "dbt/Engine.h"
EOF
  if lint_tree "$tmp/src" > /dev/null 2>&1; then
    echo "check_layering: self-test FAILED (synthetic guest -> dbt back-edge was not caught)" >&2
    exit 1
  fi
  echo "check_layering: self-test ok (synthetic back-edge caught)"
  exit 0
}

SRC="$ROOT/src"
if [ "${1:-}" = "--self-test" ]; then
  self_test
fi
[ -n "${1:-}" ] && SRC="$1"

if lint_tree "$SRC"; then
  exit 0
fi
exit 1
