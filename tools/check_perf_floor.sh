#!/usr/bin/env bash
# Soft MIPS-floor check: compare a freshly measured bench_perf.json
# against the checked-in reference and emit a GitHub Actions ::warning
# annotation — never a failure — for any throughput field that regressed
# by more than 10%.  Wall-clock MIPS depends on the runner, so a hard
# gate would flake; the warning keeps regressions visible in the checks
# UI without blocking merges.
#
# Usage: check_perf_floor.sh <fresh bench_perf.json> [reference.json]
# The reference defaults to the repo's results/bench_perf.json.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FRESH="${1:?usage: check_perf_floor.sh <fresh bench_perf.json> [reference.json]}"
REF="${2:-$ROOT/results/bench_perf.json}"

if [ ! -f "$FRESH" ]; then
  echo "check_perf_floor: fresh measurement '$FRESH' not found" >&2
  exit 1
fi
if [ ! -f "$REF" ]; then
  echo "check_perf_floor: reference '$REF' not found" >&2
  exit 1
fi

# Pull `"key": <number>` out of the flat JSON; every throughput key is
# unique across the file so no real parser is needed.
field() { sed -n 's/.*"'"$2"'": *\(-\{0,1\}[0-9.eE+-]*\).*/\1/p' "$1" | head -n 1; }

# Every MIPS field the perf record carries; ratios/seconds are excluded
# (they compare a run against itself, so the floor is meaningless there).
# The serving warm-path floors guard the shared-cache payoff: wall-clock
# warm MIPS like the rest, plus the modeled warm MIPS, which is
# deterministic (docs/SERVING.md) so a regression there is a real
# costing change, not runner noise.
FIELDS="predecode_mips legacy_mips interpreter_mips
        baseline_mips hash_mips ic_mips superblock_mips all_on_mips
        serving_warm_mips serving_warm_modeled_mips"

checked=0
warned=0
for key in $FIELDS; do
  new="$(field "$FRESH" "$key")"
  old="$(field "$REF" "$key")"
  if [ -z "$new" ] || [ -z "$old" ]; then
    echo "::warning ::check_perf_floor: field '$key' missing from $([ -z "$new" ] && echo fresh || echo reference) bench_perf.json"
    warned=$((warned + 1))
    continue
  fi
  checked=$((checked + 1))
  if awk -v n="$new" -v o="$old" 'BEGIN { exit !(o > 0 && n < 0.9 * o) }'; then
    pct="$(awk -v n="$new" -v o="$old" 'BEGIN { printf "%.1f", 100 * (o - n) / o }')"
    echo "::warning ::check_perf_floor: $key regressed ${pct}% (${new} MIPS vs reference ${old})"
    warned=$((warned + 1))
  fi
done

echo "check_perf_floor: $checked fields compared, $warned warnings (soft check, always passes)"
exit 0
