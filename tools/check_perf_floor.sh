#!/usr/bin/env bash
# MIPS-floor check: compare a freshly measured bench_perf.json against
# the checked-in reference.
#
# Two tiers:
#  * Raw-simulator fields (host-sim / interpreter MIPS) emit a GitHub
#    Actions ::warning when they regress more than 10% — they track
#    single-loop wall clock, the most runner-sensitive numbers in the
#    record, so a hard gate would flake.
#  * Engine-level fields — the dispatch ladder, the serving warm path
#    and the fusion throughput/density record — HARD-FAIL (exit 1) when
#    they regress more than 15% (factor 0.85).  These are end-to-end
#    engine runs whose wall clock is dominated by simulated work, far
#    less noisy than the raw loops, and they guard the mechanisms the
#    perf PRs actually shipped; a 15% grace margin absorbs runner
#    variance while still catching a real mechanism regression.
#
# Usage: check_perf_floor.sh <fresh bench_perf.json> [reference.json]
# The reference defaults to the repo's results/bench_perf.json.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FRESH="${1:?usage: check_perf_floor.sh <fresh bench_perf.json> [reference.json]}"
REF="${2:-$ROOT/results/bench_perf.json}"

if [ ! -f "$FRESH" ]; then
  echo "check_perf_floor: fresh measurement '$FRESH' not found" >&2
  exit 1
fi
if [ ! -f "$REF" ]; then
  echo "check_perf_floor: reference '$REF' not found" >&2
  exit 1
fi

# Pull `"key": <number>` out of the flat JSON; every throughput key is
# unique across the file so no real parser is needed.
field() { sed -n 's/.*"'"$2"'": *\(-\{0,1\}[0-9.eE+-]*\).*/\1/p' "$1" | head -n 1; }

# Runner-sensitive raw loops: warn at >10% regression, never fail.
WARN_FIELDS="predecode_mips legacy_mips interpreter_mips"

# Engine-level floors: fail at >15% regression.  The serving warm-path
# floors guard the shared-cache payoff (serving_warm_modeled_mips is
# deterministic — docs/SERVING.md — so a regression there is a real
# costing change, not runner noise); the fusion floors guard the
# guest-idiom fusion layer's throughput win (dbt/FusionRules.h); the
# AOT floor guards the hybrid pre-translation steady state
# (aot_steady_mips is fully modeled, so any regression is a real
# costing change in the AOT pipeline).
HARD_FIELDS="baseline_mips hash_mips ic_mips superblock_mips all_on_mips
             serving_warm_mips serving_warm_modeled_mips
             off_guest_mips on_guest_mips aot_steady_mips"

checked=0
warned=0
failed=0

check_fields() {
  # $1: field list; $2: regression factor; $3: "warn" or "fail"
  local keys="$1" factor="$2" mode="$3" key new old pct
  for key in $keys; do
    new="$(field "$FRESH" "$key")"
    old="$(field "$REF" "$key")"
    if [ -z "$new" ] || [ -z "$old" ]; then
      echo "::warning ::check_perf_floor: field '$key' missing from $([ -z "$new" ] && echo fresh || echo reference) bench_perf.json"
      warned=$((warned + 1))
      continue
    fi
    checked=$((checked + 1))
    if awk -v n="$new" -v o="$old" -v f="$factor" 'BEGIN { exit !(o > 0 && n < f * o) }'; then
      pct="$(awk -v n="$new" -v o="$old" 'BEGIN { printf "%.1f", 100 * (o - n) / o }')"
      if [ "$mode" = fail ]; then
        echo "::error ::check_perf_floor: $key regressed ${pct}% (${new} MIPS vs reference ${old}; hard floor is ${factor}x)"
        failed=$((failed + 1))
      else
        echo "::warning ::check_perf_floor: $key regressed ${pct}% (${new} MIPS vs reference ${old})"
        warned=$((warned + 1))
      fi
    fi
  done
}

check_fields "$WARN_FIELDS" 0.9 warn
check_fields "$HARD_FIELDS" 0.85 fail

echo "check_perf_floor: $checked fields compared, $warned warnings, $failed hard-floor failures"
[ "$failed" -eq 0 ] || exit 1
exit 0
