//===- tests/mda_sequences_test.cpp - MDA code sequence properties --------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for DESIGN.md invariant 2: for every access size, every
/// byte offset within (and across) quadword boundaries, load and store,
/// the MDA code sequence (a) produces bit-identical results to a plain
/// unaligned access, and (b) never raises a misalignment trap.
///
//===----------------------------------------------------------------------===//

#include "host/CodeSpace.h"
#include "host/HostAssembler.h"
#include "host/HostMachine.h"
#include "host/MdaSequences.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::host;

namespace {

struct SeqParam {
  unsigned Size;
  uint32_t Offset; ///< base-address byte offset within a 16-byte window
  int32_t Disp;    ///< displacement fed to the sequence
};

class MdaSequenceTest : public ::testing::TestWithParam<SeqParam> {};

constexpr uint32_t Base = 0x2000;

uint64_t patternAt(RNG &R) { return R.next(); }

} // namespace

TEST_P(MdaSequenceTest, LoadMatchesUnalignedLoad) {
  SeqParam P = GetParam();
  CodeSpace Code;
  guest::GuestMemory Mem;
  MemoryHierarchy Hier;
  CostModel Cost;
  HostMachine Machine(Code, Mem, Hier, Cost);
  Machine.setFaultHandler([](const FaultInfo &) {
    ADD_FAILURE() << "MDA load sequence raised a misalignment trap";
    return FaultAction::Halt;
  });

  RNG R(P.Size * 1000 + P.Offset * 10 + static_cast<uint32_t>(P.Disp));
  // Fill a window with a random pattern.
  for (uint32_t A = Base - 32; A < Base + 64; A += 8)
    Mem.store(A, 8, patternAt(R));

  HostAssembler Asm(Code);
  emitMdaLoad(Asm, P.Size, /*Ra=*/1, /*Rb=*/2, P.Disp);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();

  uint32_t Addr = Base + P.Offset;
  Machine.R[2] = Addr;
  ASSERT_EQ(Machine.run(0).K, ExitInfo::Halt);
  uint64_t Expected = Mem.load(Addr + P.Disp, P.Size);
  EXPECT_EQ(Machine.R[1], Expected)
      << "size=" << P.Size << " offset=" << P.Offset << " disp=" << P.Disp;
  EXPECT_EQ(Machine.Faults, 0u);
}

TEST_P(MdaSequenceTest, StoreMatchesUnalignedStore) {
  SeqParam P = GetParam();
  CodeSpace Code;
  guest::GuestMemory Mem;
  MemoryHierarchy Hier;
  CostModel Cost;
  HostMachine Machine(Code, Mem, Hier, Cost);
  Machine.setFaultHandler([](const FaultInfo &) {
    ADD_FAILURE() << "MDA store sequence raised a misalignment trap";
    return FaultAction::Halt;
  });

  RNG R(P.Size * 7777 + P.Offset * 13 + static_cast<uint32_t>(P.Disp));
  std::vector<uint64_t> Window;
  for (uint32_t A = Base - 32; A < Base + 64; A += 8) {
    uint64_t V = patternAt(R);
    Window.push_back(V);
    Mem.store(A, 8, V);
  }
  uint64_t Value = patternAt(R);

  HostAssembler Asm(Code);
  emitMdaStore(Asm, P.Size, /*Rv=*/1, /*Rb=*/2, P.Disp);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();

  uint32_t Addr = Base + P.Offset;
  Machine.R[1] = Value;
  Machine.R[2] = Addr;
  ASSERT_EQ(Machine.run(0).K, ExitInfo::Halt);
  EXPECT_EQ(Machine.Faults, 0u);

  // Reference: apply the store to a scratch copy and compare the whole
  // window (the sequence must not disturb neighbouring bytes).
  guest::GuestMemory Ref;
  {
    size_t Idx = 0;
    for (uint32_t A = Base - 32; A < Base + 64; A += 8)
      Ref.store(A, 8, Window[Idx++]);
  }
  Ref.store(Addr + P.Disp, P.Size, Value);
  for (uint32_t A = Base - 32; A < Base + 64; ++A)
    ASSERT_EQ(Mem.load(A, 1), Ref.load(A, 1))
        << "byte " << A << " size=" << P.Size << " offset=" << P.Offset
        << " disp=" << P.Disp;
  // Also check around the target when the displacement lands outside the
  // patterned window.
  uint32_t Target = Addr + static_cast<uint32_t>(P.Disp);
  for (uint32_t A = Target - 8; A < Target + 16; ++A)
    ASSERT_EQ(Mem.load(A, 1), Ref.load(A, 1)) << "target byte " << A;
  // The value register must be preserved.
  EXPECT_EQ(Machine.R[1], Value);
}

namespace {

std::vector<SeqParam> allParams() {
  std::vector<SeqParam> Params;
  for (unsigned Size : {2u, 4u, 8u})
    for (uint32_t Offset = 0; Offset != 16; ++Offset)
      for (int32_t Disp : {0, 1, 3, 8, -3, 100, 32000})
        Params.push_back({Size, Offset, Disp});
  return Params;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllSizesOffsetsDisps, MdaSequenceTest,
                         ::testing::ValuesIn(allParams()),
                         [](const ::testing::TestParamInfo<SeqParam> &I) {
                           return "s" + std::to_string(I.param.Size) + "_o" +
                                  std::to_string(I.param.Offset) + "_d" +
                                  (I.param.Disp < 0
                                       ? "m" + std::to_string(-I.param.Disp)
                                       : std::to_string(I.param.Disp));
                         });

TEST(MdaSequenceLengthTest, MatchesEmittedLength) {
  CodeSpace Code;
  {
    HostAssembler Asm(Code);
    emitMdaLoad(Asm, 4, 1, 2, 0);
    Asm.finish();
  }
  EXPECT_EQ(Code.size(), mdaLoadLength());
  uint32_t Before = Code.size();
  {
    HostAssembler Asm(Code);
    emitMdaStore(Asm, 8, 1, 2, 0);
    Asm.finish();
  }
  EXPECT_EQ(Code.size() - Before, mdaStoreLength());
}

TEST(MdaSequenceTestAliases, LoadDestinationMayAliasBase) {
  // Ra == Rb: the paper's Fig. 2 example loads into the base register's
  // mapped destination; the sequence must read the base before writing.
  CodeSpace Code;
  guest::GuestMemory Mem;
  MemoryHierarchy Hier;
  CostModel Cost;
  HostMachine Machine(Code, Mem, Hier, Cost);
  Mem.store(0x3001, 4, 0xfeedface);
  HostAssembler Asm(Code);
  emitMdaLoad(Asm, 4, /*Ra=*/5, /*Rb=*/5, 0);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  Machine.R[5] = 0x3001;
  ASSERT_EQ(Machine.run(0).K, ExitInfo::Halt);
  EXPECT_EQ(Machine.R[5], 0xfeedfaceu);
}

TEST(MdaSequenceTestAliases, SequencesAreAlignedOnAlignedAddresses) {
  // A patched instruction's address may later become aligned; the
  // sequence must still produce the right value (paper section IV-D).
  CodeSpace Code;
  guest::GuestMemory Mem;
  MemoryHierarchy Hier;
  CostModel Cost;
  HostMachine Machine(Code, Mem, Hier, Cost);
  Mem.store(0x4000, 8, 0x0123456789abcdefULL);
  HostAssembler Asm(Code);
  emitMdaLoad(Asm, 8, 1, 2, 0);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  Machine.R[2] = 0x4000; // aligned
  ASSERT_EQ(Machine.run(0).K, ExitInfo::Halt);
  EXPECT_EQ(Machine.R[1], 0x0123456789abcdefULL);
  EXPECT_EQ(Machine.Faults, 0u);
}
