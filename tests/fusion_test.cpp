//===- tests/fusion_test.cpp - Table-driven fusion layer tests ------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The peephole fusion layer (dbt/FusionRules.h): rule-table and matcher
/// unit tests over hand-built blocks, emission-density checks against
/// the unfused translator, a random-program property test (every
/// enabled-rule subset is architecturally invisible), and shared-cache
/// integration (mask in the content key, fused metadata surviving a disk
/// round trip).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "RandomProgram.h"

#include "dbt/FusionRules.h"
#include "dbt/GuestBlock.h"
#include "dbt/TranslationService.h"
#include "dbt/Translator.h"
#include "mda/PolicyFactory.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

using namespace mdabt;
using namespace mdabt::dbt;
using namespace mdabt::testutil;

namespace {

GuestBlock entryBlock(const guest::GuestImage &Image) {
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  return discoverBlock(Mem, Image.Entry);
}

/// Match with every rule enabled (or \p Mask) and all plans \p Plan.
bool matchAt(const GuestBlock &B, size_t Idx, FusionMatch &M,
             uint32_t Mask = FusionMaskAll,
             MemPlan Plan = MemPlan::Normal) {
  FusionMatcher Matcher(Mask);
  return Matcher.match(B, Idx, B.size(),
                       [Plan](size_t) { return Plan; }, M);
}

mda::PolicySpec ehSpec() {
  mda::PolicySpec S;
  S.Kind = mda::MechanismKind::ExceptionHandling;
  return S;
}

mda::PolicySpec dpehSpec() {
  mda::PolicySpec S;
  S.Kind = mda::MechanismKind::Dpeh;
  S.RetranslateThreshold = 4;
  S.MultiVersion = true;
  return S;
}

/// Verify on (fused-site byte-exactness is re-checked after every cache
/// mutation) plus the full dispatch surface, so fusion composes with
/// hash dispatch, inline caches and superblock formation.
dbt::EngineConfig fusionConfig(uint32_t Mask) {
  dbt::EngineConfig C;
  C.Verify = true;
  C.HashDispatch = true;
  C.InlineCaches = true;
  C.Superblocks = true;
  C.Fusion = Mask != 0;
  C.FusionMask = Mask;
  return C;
}

dbt::RunResult runWith(const guest::GuestImage &Image,
                       const mda::PolicySpec &Spec,
                       const dbt::EngineConfig &Config) {
  std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(Spec, &Image);
  dbt::Engine Engine(Image, *Policy, Config);
  return Engine.run();
}

void expectSameArchState(const dbt::RunResult &A, const dbt::RunResult &B,
                         const char *What) {
  EXPECT_TRUE(A.completed()) << What;
  EXPECT_TRUE(B.completed()) << What;
  EXPECT_EQ(A.Checksum, B.Checksum) << What << ": checksum";
  EXPECT_EQ(A.MemoryHash, B.MemoryHash) << What << ": memory";
  for (unsigned I = 0; I != guest::NumGPR; ++I)
    EXPECT_EQ(A.FinalCpu.Gpr[I], B.FinalCpu.Gpr[I])
        << What << ": GPR " << I;
  for (unsigned I = 0; I != guest::NumQReg; ++I)
    EXPECT_EQ(A.FinalCpu.Qreg[I], B.FinalCpu.Qreg[I])
        << What << ": Q" << I;
}

} // namespace

// -- rule table --------------------------------------------------------------

TEST(FusionRuleTableTest, TableIsWellFormed) {
  const FusionRule *Table = fusionRuleTable();
  for (unsigned I = 0; I != NumFusionRules; ++I) {
    const FusionRule &R = Table[I];
    EXPECT_EQ(static_cast<unsigned>(R.Id), I) << "table out of id order";
    EXPECT_NE(R.Name, nullptr);
    EXPECT_STREQ(fusionRuleName(R.Id), R.Name);
    EXPECT_GE(R.Len, 1u);
    EXPECT_LE(R.Len, 3u);
    EXPECT_GE(R.MaxLen, R.Len);
    EXPECT_NE(R.Constraint, nullptr);
    EXPECT_GT(R.CostDelta, 0u);
    unsigned Slots = R.Repeating ? 1 : R.Len;
    for (unsigned S = 0; S != Slots; ++S)
      EXPECT_GT(R.Slots[S].NumOps, 0u)
          << R.Name << " slot " << S << " empty";
  }
  EXPECT_EQ(FusionMaskAll, (1u << NumFusionRules) - 1);
}

TEST(FusionRuleTableTest, MaskGatesEveryRule) {
  using namespace guest;
  ProgramBuilder B("movop");
  B.movri(5, 7);
  B.movri(6, 9);
  B.movrr(3, 5);
  B.add(3, 6);
  B.halt();
  GuestBlock Blk = entryBlock(B.build());
  FusionMatch M;
  EXPECT_TRUE(matchAt(Blk, 2, M));
  EXPECT_TRUE(matchAt(Blk, 2, M, fusionRuleBit(FusionRuleId::MovOp)));
  EXPECT_FALSE(matchAt(Blk, 2, M, fusionRuleBit(FusionRuleId::MovOpI)));
  EXPECT_FALSE(matchAt(Blk, 2, M, 0));
  EXPECT_FALSE(FusionMatcher(0).enabled());
  EXPECT_EQ(FusionMatcher(~0u).mask(), FusionMaskAll);
}

// -- matcher -----------------------------------------------------------------

TEST(FusionMatcherTest, MovOpMatchesAndRejectsSelfSource) {
  using namespace guest;
  ProgramBuilder B("movop");
  B.movri(5, 7);
  B.movrr(3, 5); // 1
  B.add(3, 5);   // 2: fusable, source 5 != dest 3
  B.movrr(3, 5); // 3
  B.add(3, 3);   // 4: source == dest -> baseline reads post-mov value
  B.halt();
  GuestBlock Blk = entryBlock(B.build());
  FusionMatch M;
  ASSERT_TRUE(matchAt(Blk, 1, M));
  EXPECT_EQ(M.Rule, FusionRuleId::MovOp);
  EXPECT_EQ(M.Length, 2u);
  EXPECT_EQ(M.SavedWords, 1u);
  EXPECT_FALSE(matchAt(Blk, 3, M));
}

TEST(FusionMatcherTest, MovOpImmNeedsLiteralRange) {
  using namespace guest;
  ProgramBuilder B("movopi");
  B.movrr(5, 3);
  B.addi(5, 7); // literal form
  B.movrr(5, 3);
  B.addi(5, 300); // exceeds the 8-bit literal
  B.halt();
  GuestBlock Blk = entryBlock(B.build());
  FusionMatch M;
  ASSERT_TRUE(matchAt(Blk, 0, M));
  EXPECT_EQ(M.Rule, FusionRuleId::MovOpI);
  EXPECT_EQ(M.Length, 2u);
  EXPECT_FALSE(matchAt(Blk, 2, M));
}

TEST(FusionMatcherTest, CmpBr0OnlyForEqualityAgainstZero) {
  using namespace guest;
  auto blockEnding = [](int32_t Imm, Cond C) {
    ProgramBuilder B("cmpbr");
    ProgramBuilder::Label Top = B.here();
    B.addi(6, 1);
    B.cmpi(6, Imm);
    B.jcc(C, Top);
    B.halt();
    return entryBlock(B.build());
  };
  FusionMatch M;
  GuestBlock Ne0 = blockEnding(0, Cond::Ne);
  ASSERT_TRUE(matchAt(Ne0, 1, M));
  EXPECT_EQ(M.Rule, FusionRuleId::CmpBr0);
  EXPECT_EQ(M.Length, 2u);
  GuestBlock Eq0 = blockEnding(0, Cond::Eq);
  EXPECT_TRUE(matchAt(Eq0, 1, M));
  // Orderings test the sign the zero-extended register cannot carry.
  GuestBlock Lt0 = blockEnding(0, Cond::Lt);
  EXPECT_FALSE(matchAt(Lt0, 1, M));
  GuestBlock Gt0 = blockEnding(0, Cond::Gt);
  EXPECT_FALSE(matchAt(Gt0, 1, M));
  // Non-zero immediates keep the full compare.
  GuestBlock Ne1 = blockEnding(1, Cond::Ne);
  EXPECT_FALSE(matchAt(Ne1, 1, M));
}

TEST(FusionMatcherTest, ImmNegSavesTheMaterialization) {
  using namespace guest;
  ProgramBuilder B("immneg");
  B.addi(3, -5);   // 0: fusable
  B.subi(3, -255); // 1: fusable (becomes addi 255)
  B.addi(3, 5);    // 2: already literal, nothing to save
  B.addi(3, -256); // 3: outside the literal range
  B.halt();
  GuestBlock Blk = entryBlock(B.build());
  FusionMatch M;
  ASSERT_TRUE(matchAt(Blk, 0, M));
  EXPECT_EQ(M.Rule, FusionRuleId::ImmNeg);
  EXPECT_EQ(M.Length, 1u);
  EXPECT_EQ(M.SavedWords, 3u); // ldah + lda + zextl dropped
  EXPECT_TRUE(matchAt(Blk, 1, M));
  EXPECT_FALSE(matchAt(Blk, 2, M));
  EXPECT_FALSE(matchAt(Blk, 3, M));
}

TEST(FusionMatcherTest, LdOpStNeedsSameSiteAndNontrivialAddress) {
  using namespace guest;
  ProgramBuilder B("ldopst");
  uint32_t Buf = B.dataReserve(256, 8);
  B.movri(1, static_cast<int32_t>(Buf));
  B.movri(2, 4);
  B.ldl(3, memIdx(1, 2, 2, 8)); // 2
  B.xori(3, 0x33);              // 3
  B.stl(memIdx(1, 2, 2, 8), 3); // 4: full read-modify-write
  B.ldl(3, mem(1, 4));          // 5: trivial address
  B.xori(3, 0x33);              // 6
  B.stl(mem(1, 4), 3);          // 7
  B.ldl(3, memIdx(1, 2, 2, 8)); // 8: store disp differs
  B.xori(3, 0x33);              // 9
  B.stl(memIdx(1, 2, 2, 12), 3); // 10
  B.ldl(3, memIdx(1, 2, 2, 8)); // 11: middle writes another register
  B.xori(5, 0x33);              // 12
  B.stl(memIdx(1, 2, 2, 8), 3); // 13
  B.ldw(3, memIdx(1, 2, 2, 8)); // 14: size mismatch
  B.xori(3, 0x33);              // 15
  B.stl(memIdx(1, 2, 2, 8), 3); // 16
  B.halt();
  GuestBlock Blk = entryBlock(B.build());
  FusionMatch M;
  ASSERT_TRUE(matchAt(Blk, 2, M));
  EXPECT_EQ(M.Rule, FusionRuleId::LdOpSt);
  EXPECT_EQ(M.Length, 3u);
  EXPECT_EQ(M.SavedWords, 2u); // one sll+addl address setup dropped
  EXPECT_FALSE(matchAt(Blk, 5, M));
  EXPECT_FALSE(matchAt(Blk, 8, M));
  EXPECT_FALSE(matchAt(Blk, 11, M));
  EXPECT_FALSE(matchAt(Blk, 14, M));
}

TEST(FusionMatcherTest, LdOpStDataRegMustNotAliasAddressRegs) {
  using namespace guest;
  ProgramBuilder B("ldopst-alias");
  uint32_t Buf = B.dataReserve(256, 8);
  B.movri(1, static_cast<int32_t>(Buf));
  B.movri(2, 4);
  B.ldl(2, memIdx(1, 2, 2, 8)); // 2: data == index
  B.xori(2, 0x33);
  B.stl(memIdx(1, 2, 2, 8), 2);
  B.halt();
  GuestBlock Blk = entryBlock(B.build());
  FusionMatch M;
  EXPECT_FALSE(matchAt(Blk, 2, M));
}

TEST(FusionMatcherTest, SharedAddrGrowsGreedilyAndStopsAtRunBreaks) {
  using namespace guest;
  ProgramBuilder B("sharedaddr");
  uint32_t Buf = B.dataReserve(1024, 8);
  B.movri(1, static_cast<int32_t>(Buf));
  B.movri(2, 0);
  B.ldl(3, memIdx(1, 2, 2, 0));  // 2
  B.ldl(5, memIdx(1, 2, 2, 4));  // 3
  B.stl(memIdx(1, 2, 2, 8), 3);  // 4
  B.ldl(6, memIdx(1, 2, 2, 12)); // 5
  B.ldl(7, mem(1, 16));          // 6: no index -> run ends
  B.halt();
  GuestBlock Blk = entryBlock(B.build());
  FusionMatch M;
  ASSERT_TRUE(matchAt(Blk, 2, M));
  EXPECT_EQ(M.Rule, FusionRuleId::SharedAddr);
  EXPECT_EQ(M.Length, 4u);
  EXPECT_EQ(M.SavedWords, 6u); // (4 - 1) * (sll + addl)
  // A tail of the run still matches on its own.
  ASSERT_TRUE(matchAt(Blk, 4, M));
  EXPECT_EQ(M.Length, 2u);
  // A single indexed op does not.
  EXPECT_FALSE(matchAt(Blk, 5, M) && M.Rule == FusionRuleId::SharedAddr);
}

TEST(FusionMatcherTest, SharedAddrStopsWhenALoadClobbersTheAddress) {
  using namespace guest;
  ProgramBuilder B("sharedaddr-clobber");
  uint32_t Buf = B.dataReserve(1024, 8);
  B.movri(1, static_cast<int32_t>(Buf));
  B.movri(2, 0);
  B.ldl(3, memIdx(1, 2, 2, 0)); // 2
  B.ldl(2, memIdx(1, 2, 2, 4)); // 3: writes the index register
  B.ldl(5, memIdx(1, 2, 2, 8)); // 4: must NOT share the stale address
  B.halt();
  GuestBlock Blk = entryBlock(B.build());
  FusionMatch M;
  ASSERT_TRUE(matchAt(Blk, 2, M));
  EXPECT_EQ(M.Rule, FusionRuleId::SharedAddr);
  // The index-clobbering load may be the *last* member (the shared
  // address was computed before it), but nothing after it can join.
  EXPECT_EQ(M.Length, 2u);
}

TEST(FusionMatcherTest, MemoryRulesRespectThePlan) {
  using namespace guest;
  ProgramBuilder B("plan-gate");
  uint32_t Buf = B.dataReserve(256, 8);
  B.movri(1, static_cast<int32_t>(Buf));
  B.movri(2, 4);
  B.ldl(3, memIdx(1, 2, 2, 8));
  B.xori(3, 0x33);
  B.stl(memIdx(1, 2, 2, 8), 3);
  B.halt();
  GuestBlock Blk = entryBlock(B.build());
  FusionMatch M;
  EXPECT_TRUE(matchAt(Blk, 2, M, FusionMaskAll, MemPlan::Normal));
  EXPECT_TRUE(matchAt(Blk, 2, M, FusionMaskAll, MemPlan::Elide));
  // Inline MDA sequences and multi-version sites must not be disturbed.
  EXPECT_FALSE(matchAt(Blk, 2, M, FusionMaskAll, MemPlan::Inline));
  EXPECT_FALSE(matchAt(Blk, 2, M, FusionMaskAll, MemPlan::MultiVersion));
}

// -- emission ----------------------------------------------------------------

TEST(FusionEmitTest, FusedBlockIsDenserByExactlyTheSavedWords) {
  using namespace guest;
  ProgramBuilder B("dense");
  uint32_t Buf = B.dataReserve(1024, 8);
  B.movri(1, static_cast<int32_t>(Buf));
  B.movri(2, 4);
  B.movri(5, 9);
  B.movrr(3, 5);
  B.add(3, 2);   // MovOp
  B.movrr(6, 3);
  B.addi(6, 7);  // MovOpI
  B.addi(6, -5); // ImmNeg
  B.ldl(3, memIdx(1, 2, 2, 8));
  B.xori(3, 0x33);
  B.stl(memIdx(1, 2, 2, 8), 3); // LdOpSt
  B.ldl(3, memIdx(1, 2, 2, 0));
  B.stl(memIdx(1, 2, 2, 16), 3); // SharedAddr run of 2
  B.halt();
  guest::GuestImage Image = B.build();
  GuestBlock Blk = entryBlock(Image);

  auto Plan = [](uint32_t, const guest::GuestInst &) {
    return MemPlan::Normal;
  };
  host::CodeSpace OffCode, OnCode;
  Translator Off(OffCode), On(OnCode);
  TranslationOpts OffOpts, OnOpts;
  OnOpts.FusionMask = FusionMaskAll;
  Translation TOff = Off.translate(Blk, Plan, 0, OffOpts);
  Translation TOn = On.translate(Blk, Plan, 0, OnOpts);

  EXPECT_TRUE(TOff.FusedSites.empty());
  ASSERT_EQ(TOn.FusedSites.size(), 5u);
  uint32_t Saved = 0;
  for (const FusedSite &F : TOn.FusedSites) {
    EXPECT_LT(F.Rule, NumFusionRules);
    EXPECT_LT(F.Begin, F.End);
    EXPECT_GE(F.Begin, TOn.EntryWord);
    EXPECT_LE(F.End, TOn.EndWord);
    ASSERT_EQ(F.Words.size(), F.End - F.Begin);
    for (uint32_t K = 0; K != F.Words.size(); ++K)
      EXPECT_EQ(F.Words[K], OnCode.word(F.Begin + K))
          << "captured core diverges at word " << K;
    Saved += F.SavedWords;
  }
  EXPECT_GT(Saved, 0u);
  EXPECT_EQ((TOff.EndWord - TOff.EntryWord) -
                (TOn.EndWord - TOn.EntryWord),
            Saved)
      << "cost-delta accounting disagrees with the actual emission";
  // Fused memory sites keep their fault-attribution and episode-stop
  // metadata: same guest PCs as the unfused rendering.
  std::vector<uint32_t> OffPcs, OnPcs;
  for (const auto &KV : TOff.MemWordToGuestPc)
    OffPcs.push_back(KV.second);
  for (const auto &KV : TOn.MemWordToGuestPc)
    OnPcs.push_back(KV.second);
  std::sort(OffPcs.begin(), OffPcs.end());
  std::sort(OnPcs.begin(), OnPcs.end());
  EXPECT_EQ(OffPcs, OnPcs);
  EXPECT_FALSE(TOn.StoreResume.empty());
}

// -- architectural invisibility ----------------------------------------------

TEST(FusionPropertyTest, EveryRuleSubsetIsArchitecturallyInvisible) {
  const uint32_t Masks[] = {
      fusionRuleBit(FusionRuleId::MovOp),
      fusionRuleBit(FusionRuleId::MovOpI),
      fusionRuleBit(FusionRuleId::CmpBr0),
      fusionRuleBit(FusionRuleId::ImmNeg),
      fusionRuleBit(FusionRuleId::LdOpSt),
      fusionRuleBit(FusionRuleId::SharedAddr),
      0x15u, // alternating subset
      0x2au, // complement subset
      FusionMaskAll,
  };
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    guest::GuestImage Image = RandomProgram(Seed).build();
    Oracle O = interpretOracle(Image);
    dbt::RunResult Base = runWith(Image, ehSpec(), fusionConfig(0));
    expectMatchesOracle(Base, O, "fusion-off baseline");
    for (uint32_t Mask : Masks) {
      dbt::RunResult R = runWith(Image, ehSpec(), fusionConfig(Mask));
      expectMatchesOracle(R, O, "fusion run vs oracle");
      expectSameArchState(R, Base, "fusion run vs fusion-off");
    }
    // The retranslating multi-version mechanism exercises the
    // plan-gating paths (Inline / MultiVersion sites refuse to fuse).
    dbt::RunResult Mv =
        runWith(Image, dpehSpec(), fusionConfig(FusionMaskAll));
    expectMatchesOracle(Mv, O, "fusion + dpeh/mv");
  }
}

TEST(FusionKernelTest, FusionDenseKernelsFuseAndStayExact) {
  struct Row {
    const char *Name;
    guest::GuestImage Image;
  };
  const Row Rows[] = {
      {"memcpy", workloads::buildFusionMemcpyKernel(64, 40)},
      {"memset", workloads::buildFusionMemsetKernel(64, 40)},
  };
  for (const Row &R : Rows) {
    Oracle O = interpretOracle(R.Image);
    dbt::RunResult Off = runWith(R.Image, ehSpec(), fusionConfig(0));
    dbt::RunResult On =
        runWith(R.Image, ehSpec(), fusionConfig(FusionMaskAll));
    expectMatchesOracle(Off, O, R.Name);
    expectMatchesOracle(On, O, R.Name);
    expectSameArchState(On, Off, R.Name);
    EXPECT_GT(On.Counters.get("fusion.sites"), 0u) << R.Name;
    EXPECT_GT(On.Counters.get("fusion.saved_words"), 0u) << R.Name;
    EXPECT_GT(On.Counters.get("fusion.blocks"), 0u) << R.Name;
    EXPECT_EQ(Off.Counters.get("fusion.sites"), 0u) << R.Name;
  }
}

// -- serving integration -----------------------------------------------------

namespace {

dbt::EngineConfig servingFusionConfig(dbt::TranslationService *Service,
                                      uint32_t Mask) {
  dbt::EngineConfig C = fusionConfig(Mask);
  C.Service = Service;
  return C;
}

} // namespace

TEST(FusionServingTest, RuleMaskIsPartOfTheContentKey) {
  guest::GuestImage Image = workloads::buildFusionMemcpyKernel(64, 40);
  dbt::TranslationService Service;
  dbt::RunResult On =
      runWith(Image, ehSpec(),
              servingFusionConfig(&Service, FusionMaskAll));
  EXPECT_EQ(On.Counters.get("cache.hits"), 0u);
  uint64_t AfterOn = Service.cache().entries();
  ASSERT_GT(AfterOn, 0u);
  // A fusion-off tenant must never be served differently-fused words.
  dbt::RunResult Off =
      runWith(Image, ehSpec(), servingFusionConfig(&Service, 0));
  EXPECT_EQ(Off.Counters.get("cache.hits"), 0u)
      << "fusion-off run aliased a fused cache entry";
  EXPECT_GT(Service.cache().entries(), AfterOn);
  // Same mask again: full hits.
  dbt::RunResult On2 =
      runWith(Image, ehSpec(),
              servingFusionConfig(&Service, FusionMaskAll));
  EXPECT_GT(On2.Counters.get("cache.hits"), 0u);
  EXPECT_EQ(On2.Counters.get("cache.misses"), 0u);
  expectSameArchState(On2, On, "warm fused serving");
  EXPECT_EQ(Service.cache().liveLeases(), 0u) << "lease leak";
}

TEST(FusionServingTest, FusedTranslationsRoundTripThroughDisk) {
  const char *Path = "fusion_test_cache.bin";
  guest::GuestImage Image = workloads::buildFusionMemcpyKernel(64, 40);
  Oracle O = interpretOracle(Image);

  dbt::TranslationService Producer;
  dbt::RunResult Cold =
      runWith(Image, ehSpec(),
              servingFusionConfig(&Producer, FusionMaskAll));
  expectMatchesOracle(Cold, O, "cold fused serving");
  ASSERT_GT(Cold.Counters.get("fusion.sites"), 0u);
  std::string Err;
  ASSERT_TRUE(Producer.save(Path, &Err)) << Err;

  dbt::TranslationService Consumer;
  ASSERT_TRUE(Consumer.load(Path, nullptr, &Err)) << Err;
  dbt::RunResult Warm =
      runWith(Image, ehSpec(),
              servingFusionConfig(&Consumer, FusionMaskAll));
  expectMatchesOracle(Warm, O, "disk-warmed fused serving");
  // The whole point: no retranslation, and the fused metadata (sites,
  // reference words for the verifier, per-site fault attribution) was
  // reconstructed from the artifact — with Verify on, a lost fused
  // site would abort the run.
  EXPECT_EQ(Warm.Counters.get("cache.misses"), 0u);
  EXPECT_GT(Warm.Counters.get("cache.hits"), 0u);
  EXPECT_EQ(Warm.Counters.get("fusion.sites"),
            Cold.Counters.get("fusion.sites"));
  EXPECT_EQ(Warm.Counters.get("fusion.saved_words"),
            Cold.Counters.get("fusion.saved_words"));
  std::remove(Path);
}
