//===- tests/workloads_test.cpp - Synthetic SPEC workload tests -----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DESIGN.md invariant 4 (census identities) applied to the generator:
/// the measured MDA census of a synthesized benchmark must match the
/// plan's analytical expectations, train/ref inputs must differ exactly
/// in the ref-only groups, and the alignment-enforcing layout must be
/// MDA-free.
///
//===----------------------------------------------------------------------===//

#include "reporting/Experiment.h"
#include "workloads/SpecCatalog.h"
#include "workloads/SpecPrograms.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::workloads;

namespace {

/// A small, fast plan exercising every group class.
ProgramPlan tinyPlan() {
  ProgramPlan Plan;
  Plan.Name = "tiny";
  Plan.Rounds = 8;
  Plan.Seed = 99;
  // Stable always-misaligned group.
  Plan.Groups.push_back({4, 50, 4, BiasKind::Always, 0, false, 3, 0});
  // Late onset at round 6.
  Plan.Groups.push_back({2, 40, 4, BiasKind::Always, 6, false, 3, 0});
  // Ref-only.
  Plan.Groups.push_back({3, 30, 8, BiasKind::Always, 0, true, 3, 0});
  // Mixed biases.
  Plan.Groups.push_back({2, 64, 4, BiasKind::Equal50, 0, false, 3, 0});
  Plan.Groups.push_back({2, 64, 4, BiasKind::Above50, 0, false, 3, 0});
  Plan.Groups.push_back({2, 64, 4, BiasKind::Below50, 0, false, 3, 0});
  // Gated showcase: 5 sites, 2 iterations, active in rounds 6-7 only.
  Plan.Groups.push_back({5, 2, 4, BiasKind::Always, 6, false, 3, 0, true});
  // Aligned filler.
  Plan.Groups.push_back({4, 100, 4, BiasKind::Aligned, 8, false, 4, 0});
  return Plan;
}

uint64_t planExpectedMdas(const ProgramPlan &Plan) {
  uint64_t Total = 0;
  for (const SiteGroup &G : Plan.Groups)
    Total += G.expectedMdas(Plan.Rounds);
  return Total;
}

uint64_t planExpectedRefs(const ProgramPlan &Plan) {
  uint64_t Total = 0;
  for (const SiteGroup &G : Plan.Groups)
    Total += G.expectedRefs(Plan.Rounds);
  return Total;
}

uint32_t planMdaSites(const ProgramPlan &Plan) {
  uint32_t Total = 0;
  for (const SiteGroup &G : Plan.Groups)
    if (G.expectedMdas(Plan.Rounds) != 0)
      Total += G.Sites;
  return Total;
}

} // namespace

TEST(KernelsTest, BiasFractions) {
  EXPECT_DOUBLE_EQ(biasFraction(BiasKind::Aligned), 0.0);
  EXPECT_DOUBLE_EQ(biasFraction(BiasKind::Always), 1.0);
  EXPECT_DOUBLE_EQ(biasFraction(BiasKind::Above50), 0.75);
  EXPECT_DOUBLE_EQ(biasFraction(BiasKind::Equal50), 0.5);
  EXPECT_DOUBLE_EQ(biasFraction(BiasKind::Below50), 0.25);
}

TEST(KernelsTest, GroupExpectations) {
  SiteGroup G{4, 50, 4, BiasKind::Always, 6, false, 3, 0};
  EXPECT_EQ(G.expectedRefs(8), 4u * 50 * 8);
  EXPECT_EQ(G.expectedMdas(8), 4u * 50 * 2); // active rounds 6,7
  G.Bias = BiasKind::Below50;
  G.OnsetRound = 0;
  // Pattern-exact: (i & 3) == 3 hits 12 times in 50 iterations.
  EXPECT_EQ(G.expectedMdas(8), 4u * 12 * 8);
  G.OnsetRound = 8;
  EXPECT_EQ(G.expectedMdas(8), 0u);
}

TEST(KernelsTest, BiasPatternCounts) {
  EXPECT_EQ(biasPatternCount(BiasKind::Always, 10), 10u);
  EXPECT_EQ(biasPatternCount(BiasKind::Aligned, 10), 0u);
  EXPECT_EQ(biasPatternCount(BiasKind::Equal50, 10), 5u);
  EXPECT_EQ(biasPatternCount(BiasKind::Equal50, 11), 5u);
  EXPECT_EQ(biasPatternCount(BiasKind::Below50, 16), 4u);
  EXPECT_EQ(biasPatternCount(BiasKind::Below50, 7), 1u);  // i=3
  EXPECT_EQ(biasPatternCount(BiasKind::Above50, 16), 12u);
  EXPECT_EQ(biasPatternCount(BiasKind::Above50, 6), 4u); // i=1,2,3,5
  EXPECT_EQ(biasPatternCount(BiasKind::Rare, 64), 4u);
  EXPECT_EQ(biasPatternCount(BiasKind::Rare, 15), 0u);
  EXPECT_EQ(biasPatternCount(BiasKind::Rare, 16), 1u);
}

TEST(KernelsTest, RareBiasCensusExact) {
  ProgramPlan Plan;
  Plan.Name = "rare";
  Plan.Rounds = 4;
  Plan.Seed = 5;
  Plan.Groups.push_back({3, 48, 4, BiasKind::Rare, 0, false, 3, 0});
  guest::GuestImage Image = buildProgram(Plan, InputKind::Ref);
  reporting::CensusResult C = reporting::runCensus(Image);
  EXPECT_EQ(C.Mdas, 3u * 3 * 4); // 48/16 per round per site
  EXPECT_EQ(C.Nmi, 3u);
  EXPECT_EQ(C.Bias.Below50, 3u); // 1/16 < 50%
}

TEST(KernelsTest, CensusMatchesPlanExpectations) {
  ProgramPlan Plan = tinyPlan();
  guest::GuestImage Image = buildProgram(Plan, InputKind::Ref);
  reporting::CensusResult C = reporting::runCensus(Image);

  // Site accesses dominate, but section-entry slot loads, round
  // bookkeeping and call/ret stack traffic add aligned references, so
  // refs are a lower bound and MDAs must match exactly.
  EXPECT_EQ(C.Mdas, planExpectedMdas(Plan));
  EXPECT_GE(C.Refs, planExpectedRefs(Plan));
  EXPECT_LE(C.Refs, planExpectedRefs(Plan) + planExpectedRefs(Plan) / 4 +
                        4096);
  EXPECT_EQ(C.Nmi, planMdaSites(Plan));
}

TEST(KernelsTest, BiasClassesShowUpInCensus) {
  ProgramPlan Plan = tinyPlan();
  guest::GuestImage Image = buildProgram(Plan, InputKind::Ref);
  reporting::CensusResult C = reporting::runCensus(Image);
  // 2 sites of each mixed class.  The late-onset group's sites run for
  // all 8 rounds but misalign in only 2, so their lifetime ratio is 25%
  // (Below50).  Gated showcase sites execute only while misaligned, so
  // they classify as Always despite their deep onset.
  EXPECT_EQ(C.Bias.Equal50, 2u);
  EXPECT_EQ(C.Bias.Above50, 2u);
  EXPECT_EQ(C.Bias.Below50, 2u + 2u);
  EXPECT_EQ(C.Bias.Always, 4u + 3u + 5u);
}

TEST(KernelsTest, TrainInputHidesRefOnlyGroups) {
  ProgramPlan Plan = tinyPlan();
  guest::GuestImage Train = buildProgram(Plan, InputKind::Train);
  guest::GuestImage Ref = buildProgram(Plan, InputKind::Ref);
  reporting::CensusResult CT = reporting::runCensus(Train);
  reporting::CensusResult CR = reporting::runCensus(Ref);
  uint64_t RefOnlyMdas = 0;
  uint32_t RefOnlySites = 0;
  for (const SiteGroup &G : Plan.Groups) {
    if (!G.RefOnly)
      continue;
    RefOnlyMdas += G.expectedMdas(Plan.Rounds);
    RefOnlySites += G.Sites;
  }
  EXPECT_EQ(CR.Mdas - CT.Mdas, RefOnlyMdas);
  EXPECT_EQ(CR.Nmi - CT.Nmi, RefOnlySites);
  // Same code, same reference count: only alignment differs.
  EXPECT_EQ(CR.Refs, CT.Refs);
}

TEST(KernelsTest, AlignedLayoutHasNoMdas) {
  ProgramPlan Plan = tinyPlan();
  guest::GuestImage Image =
      buildProgram(Plan, InputKind::Ref, LayoutKind::AlignedPadded, 1.5);
  reporting::CensusResult C = reporting::runCensus(Image);
  EXPECT_EQ(C.Mdas, 0u);
  EXPECT_EQ(C.Nmi, 0u);
}

TEST(KernelsTest, PaddingGrowsDataSegment) {
  ProgramPlan Plan = tinyPlan();
  guest::GuestImage Default = buildProgram(Plan, InputKind::Ref);
  guest::GuestImage Padded =
      buildProgram(Plan, InputKind::Ref, LayoutKind::AlignedPadded, 1.5);
  EXPECT_GT(Padded.Data.size(), Default.Data.size());
}

TEST(KernelsTest, BuildIsDeterministic) {
  ProgramPlan Plan = tinyPlan();
  guest::GuestImage A = buildProgram(Plan, InputKind::Ref);
  guest::GuestImage B = buildProgram(Plan, InputKind::Ref);
  EXPECT_EQ(A.Code, B.Code);
  EXPECT_EQ(A.Data, B.Data);
}

TEST(KernelsTest, TrainAndRefShareCode) {
  // Static profiling depends on instruction addresses being identical
  // across inputs: only data may differ.
  ProgramPlan Plan = tinyPlan();
  guest::GuestImage Train = buildProgram(Plan, InputKind::Train);
  guest::GuestImage Ref = buildProgram(Plan, InputKind::Ref);
  EXPECT_EQ(Train.Code, Ref.Code);
  EXPECT_NE(Train.Data, Ref.Data);
}

TEST(CatalogTest, HasAll54Benchmarks) {
  EXPECT_EQ(specCatalog().size(), 54u);
  EXPECT_EQ(selectedBenchmarks().size(), 21u);
}

TEST(CatalogTest, FindByName) {
  const BenchmarkInfo *B = findBenchmark("410.bwaves");
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->PaperNmi, 602u);
  EXPECT_TRUE(B->Selected);
  EXPECT_EQ(findBenchmark("999.nonesuch"), nullptr);
}

TEST(CatalogTest, EscapeFractionsDerivedFromPaperTables) {
  const BenchmarkInfo *Bwaves = findBenchmark("410.bwaves");
  ASSERT_NE(Bwaves, nullptr);
  // Table III: 4.15e10 of 9.99e10 MDAs undetected by dynamic profiling.
  EXPECT_NEAR(Bwaves->dynEscapeFrac(), 0.415, 0.01);
  // Table IV: zero residual with the train profile.
  EXPECT_DOUBLE_EQ(Bwaves->trainEscapeFrac(), 0.0);

  const BenchmarkInfo *Eon = findBenchmark("252.eon");
  ASSERT_NE(Eon, nullptr);
  EXPECT_NEAR(Eon->trainEscapeFrac(), 0.378, 0.01);
  EXPECT_LT(Eon->dynEscapeFrac(), 0.001);

  // Table III exceeds Table I for xalancbmk; the fraction is clamped.
  const BenchmarkInfo *Xal = findBenchmark("483.xalancbmk");
  ASSERT_NE(Xal, nullptr);
  EXPECT_DOUBLE_EQ(Xal->dynEscapeFrac(), 0.95);
}

TEST(CatalogTest, PlanHitsRatioTarget) {
  ScaleConfig Scale;
  Scale.TotalRefs = 200000;
  for (const char *Name : {"410.bwaves", "179.art", "164.gzip",
                           "483.xalancbmk", "433.milc", "188.ammp"}) {
    const BenchmarkInfo *Info = findBenchmark(Name);
    ASSERT_NE(Info, nullptr) << Name;
    guest::GuestImage Image = buildBenchmark(*Info, InputKind::Ref, Scale);
    reporting::CensusResult C = reporting::runCensus(Image);
    double Target = std::min(Info->PaperRatio, Scale.MaxMisFraction);
    EXPECT_GT(C.Mdas, 0u) << Name;
    EXPECT_NEAR(C.Ratio, Target, std::max(0.35 * Target, 0.002))
        << Name << " measured ratio " << C.Ratio;
  }
}

TEST(CatalogTest, PlanPreservesNmiOrdering) {
  // The census NMI must keep the paper's ordering character: galgel and
  // milc huge, lbm tiny.
  ScaleConfig Scale;
  Scale.TotalRefs = 200000;
  auto NmiOf = [&](const char *Name) {
    const BenchmarkInfo *Info = findBenchmark(Name);
    guest::GuestImage Image = buildBenchmark(*Info, InputKind::Ref, Scale);
    return reporting::runCensus(Image).Nmi;
  };
  uint32_t Galgel = NmiOf("178.galgel");
  uint32_t Lbm = NmiOf("470.lbm");
  uint32_t Gzip = NmiOf("164.gzip");
  EXPECT_GT(Galgel, Gzip);
  EXPECT_GT(Gzip, Lbm);
  EXPECT_LE(Lbm, 8u);
}

TEST(CatalogTest, TrainEscapeVisibleInCensusDelta) {
  // 252.eon: a large share of MDAs must be absent under the train input.
  ScaleConfig Scale;
  Scale.TotalRefs = 200000;
  const BenchmarkInfo *Eon = findBenchmark("252.eon");
  reporting::CensusResult Ref = reporting::runCensus(
      buildBenchmark(*Eon, InputKind::Ref, Scale));
  reporting::CensusResult Train = reporting::runCensus(
      buildBenchmark(*Eon, InputKind::Train, Scale));
  double Escape = 1.0 - static_cast<double>(Train.Mdas) /
                            static_cast<double>(Ref.Mdas);
  EXPECT_NEAR(Escape, Eon->trainEscapeFrac(), 0.12);
}

TEST(CatalogTest, EveryBenchmarkBuildsAndHalts) {
  ScaleConfig Scale;
  Scale.TotalRefs = 30000;
  for (const BenchmarkInfo &Info : specCatalog()) {
    guest::GuestImage Image = buildBenchmark(Info, InputKind::Ref, Scale);
    reporting::CensusResult C = reporting::runCensus(Image);
    EXPECT_GT(C.Refs, 0u) << Info.Name;
    EXPECT_GT(C.Checksum, 0u) << Info.Name;
  }
}

TEST(Fig1Test, PairSharesPlanButDiffersInLayout) {
  ScaleConfig Scale;
  Scale.TotalRefs = 100000;
  const BenchmarkInfo *Art = findBenchmark("179.art");
  Fig1Pair Pair = buildFig1Pair(*Art, 1.4, Scale);
  reporting::CensusResult D = reporting::runCensus(Pair.Default);
  reporting::CensusResult A = reporting::runCensus(Pair.Aligned);
  EXPECT_GT(D.Mdas, 0u);
  EXPECT_EQ(A.Mdas, 0u);
}
