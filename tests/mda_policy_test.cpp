//===- tests/mda_policy_test.cpp - Policy layer unit tests ----------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "guest/Assembler.h"
#include "mda/Policies.h"
#include "mda/PolicyFactory.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::mda;

namespace {

guest::GuestInst dummyLoad() {
  guest::GuestInst I;
  I.Op = guest::Opcode::Ldl;
  return I;
}

} // namespace

TEST(PolicyTest, DirectAlwaysInlines) {
  DirectPolicy P;
  EXPECT_EQ(P.hotThreshold(), 0u);
  EXPECT_EQ(P.planMemoryOp(0x1000, dummyLoad()), dbt::MemPlan::Inline);
  EXPECT_FALSE(P.onFault(0x1000, 0x1000, 1).PatchStub);
}

TEST(PolicyTest, DynamicProfilingLearnsFromInterpretation) {
  DynamicProfilePolicy P(50);
  EXPECT_EQ(P.hotThreshold(), 50u);
  EXPECT_EQ(P.planMemoryOp(0x1000, dummyLoad()), dbt::MemPlan::Normal);
  P.onInterpMemAccess(0x1000, 0x2001, 4, false); // misaligned
  P.onInterpMemAccess(0x2000, 0x3000, 4, false); // aligned
  P.onInterpMemAccess(0x3000, 0x2001, 1, false); // byte: never an MDA
  EXPECT_EQ(P.planMemoryOp(0x1000, dummyLoad()), dbt::MemPlan::Inline);
  EXPECT_EQ(P.planMemoryOp(0x2000, dummyLoad()), dbt::MemPlan::Normal);
  EXPECT_EQ(P.planMemoryOp(0x3000, dummyLoad()), dbt::MemPlan::Normal);
  EXPECT_EQ(P.detectedSites(), 1u);
  // Profiling policies never patch.
  EXPECT_FALSE(P.onFault(0x2000, 0x2000, 1).PatchStub);
}

TEST(PolicyTest, ExceptionHandlingPatchesAndRemembers) {
  ExceptionHandlingPolicy P(50, /*Rearrange=*/false);
  EXPECT_EQ(P.planMemoryOp(0x1000, dummyLoad()), dbt::MemPlan::Normal);
  dbt::FaultDecision D = P.onFault(0x1000, 0x1000, 1);
  EXPECT_TRUE(D.PatchStub);
  EXPECT_FALSE(D.Supersede);
  // A superseding retranslation would inline the faulted site.
  EXPECT_EQ(P.planMemoryOp(0x1000, dummyLoad()), dbt::MemPlan::Inline);
}

TEST(PolicyTest, RearrangementSupersedesOnEveryFault) {
  ExceptionHandlingPolicy P(50, /*Rearrange=*/true);
  EXPECT_TRUE(P.onFault(0x1000, 0x1000, 1).Supersede);
  EXPECT_TRUE(P.onFault(0x2000, 0x1000, 2).Supersede);
}

TEST(PolicyTest, DpehRetranslatesExactlyAtThreshold) {
  DpehOptions Opts;
  Opts.RetranslateThreshold = 4;
  DpehPolicy P(50, Opts);
  EXPECT_FALSE(P.onFault(0x1, 0x1000, 1).Supersede);
  EXPECT_FALSE(P.onFault(0x2, 0x1000, 2).Supersede);
  EXPECT_FALSE(P.onFault(0x3, 0x1000, 3).Supersede);
  EXPECT_TRUE(P.onFault(0x4, 0x1000, 4).Supersede);
  EXPECT_FALSE(P.onFault(0x5, 0x1000, 5).Supersede);
}

TEST(PolicyTest, DpehMultiVersionRequiresMixedProfile) {
  DpehOptions Opts;
  Opts.MultiVersion = true;
  DpehPolicy P(50, Opts);
  // Purely misaligned profile -> inline.
  P.onInterpMemAccess(0x1000, 0x2001, 4, false);
  EXPECT_EQ(P.planMemoryOp(0x1000, dummyLoad()), dbt::MemPlan::Inline);
  // Mixed profile -> multi-version.
  P.onInterpMemAccess(0x2000, 0x3000, 4, false);
  P.onInterpMemAccess(0x2000, 0x3001, 4, false);
  EXPECT_EQ(P.planMemoryOp(0x2000, dummyLoad()),
            dbt::MemPlan::MultiVersion);
  // Aligned-only profile that later faults: also multi-version.
  P.onInterpMemAccess(0x3000, 0x4000, 4, false);
  EXPECT_EQ(P.planMemoryOp(0x3000, dummyLoad()), dbt::MemPlan::Normal);
  P.onFault(0x3000, 0x3000, 1);
  EXPECT_EQ(P.planMemoryOp(0x3000, dummyLoad()),
            dbt::MemPlan::MultiVersion);
}

TEST(PolicyTest, DpehWithoutMultiVersionInlinesMixedSites) {
  DpehPolicy P(50);
  P.onInterpMemAccess(0x2000, 0x3000, 4, false);
  P.onInterpMemAccess(0x2000, 0x3001, 4, false);
  EXPECT_EQ(P.planMemoryOp(0x2000, dummyLoad()), dbt::MemPlan::Inline);
}

TEST(PolicyFactoryTest, MakesEveryKind) {
  EXPECT_STREQ(makePolicy({MechanismKind::Direct, 0, false, 0, false})
                   ->name(),
               "Direct Method");
  EXPECT_STREQ(
      makePolicy({MechanismKind::DynamicProfiling, 50, false, 0, false})
          ->name(),
      "Dynamic Profiling");
  EXPECT_STREQ(
      makePolicy({MechanismKind::ExceptionHandling, 50, false, 0, false})
          ->name(),
      "Exception Handling");
  EXPECT_STREQ(
      makePolicy({MechanismKind::ExceptionHandling, 50, true, 0, false})
          ->name(),
      "Exception Handling + Rearrangement");
  EXPECT_STREQ(makePolicy({MechanismKind::Dpeh, 50, false, 4, true})
                   ->name(),
               "DPEH");
}

TEST(PolicyFactoryTest, SpecNames) {
  EXPECT_EQ(policySpecName({MechanismKind::Direct, 0, false, 0, false}),
            "direct");
  EXPECT_EQ(
      policySpecName({MechanismKind::DynamicProfiling, 500, false, 0, false}),
      "dyn@500");
  EXPECT_EQ(
      policySpecName({MechanismKind::ExceptionHandling, 50, true, 0, false}),
      "eh+rearrange");
  EXPECT_EQ(policySpecName({MechanismKind::Dpeh, 50, false, 4, true}),
            "dpeh+retrans4+mv");
}

TEST(PolicyFactoryTest, MechanismTableMatchesPaperTable2) {
  std::vector<MechanismRow> Rows = mechanismTable();
  ASSERT_EQ(Rows.size(), 6u);
  EXPECT_STREQ(Rows[0].Mechanism, "Direct Method");
  EXPECT_STREQ(Rows[3].Configuration, "Code rearrangement");
}

TEST(PolicyFactoryTest, StaticProfileCollection) {
  // Build a program with one stable MDA and one aligned access; the
  // collected profile must contain exactly the MDA site.
  guest::ProgramBuilder B("t");
  uint32_t Buf = B.dataReserve(64, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  uint32_t MisPc = B.codeAddress();
  B.ldl(1, guest::mem(0, 1));
  B.ldl(2, guest::mem(0, 4));
  B.halt();
  guest::GuestImage Image = B.build();
  auto Sites = StaticProfilePolicy::collectProfile(Image);
  EXPECT_EQ(Sites.size(), 1u);
  EXPECT_TRUE(Sites.count(MisPc));
}
