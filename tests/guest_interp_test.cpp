//===- tests/guest_interp_test.cpp - GX86 interpreter semantics -----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "guest/Assembler.h"
#include "guest/GuestCPU.h"
#include "guest/GuestMemory.h"
#include "guest/Interpreter.h"
#include "guest/MdaCensus.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace mdabt;
using namespace mdabt::guest;

namespace {

/// Run an image to completion; returns the final CPU state.
GuestCPU runImage(const GuestImage &Image, GuestMemory &Mem) {
  Mem.loadImage(Image);
  GuestCPU Cpu;
  Cpu.reset(Image);
  Interpreter Interp(Mem);
  uint64_t N = Interp.run(Cpu, 10'000'000);
  EXPECT_TRUE(Cpu.Halted) << "program did not halt after " << N
                          << " instructions";
  return Cpu;
}

GuestCPU runImage(const GuestImage &Image) {
  GuestMemory Mem;
  return runImage(Image, Mem);
}

} // namespace

TEST(InterpTest, MoviAndChecksum) {
  ProgramBuilder B("t");
  B.movri(0, 42);
  B.chk(0);
  B.halt();
  GuestCPU Cpu = runImage(B.build());
  EXPECT_EQ(Cpu.Gpr[0], 42u);
  EXPECT_EQ(Cpu.Checksum, 42u);
}

TEST(InterpTest, AluOps) {
  ProgramBuilder B("t");
  B.movri(0, 7);
  B.movri(1, 3);
  B.add(0, 1);  // 10
  B.muli(0, 5); // 50
  B.subi(0, 8); // 42
  B.movri(2, 0xff);
  B.and_(2, 0); // 42
  B.ori(2, 0x100);
  B.xori(2, 0x1);
  B.halt();
  GuestCPU Cpu = runImage(B.build());
  EXPECT_EQ(Cpu.Gpr[0], 42u);
  EXPECT_EQ(Cpu.Gpr[2], (42u | 0x100u) ^ 1u);
}

TEST(InterpTest, AluWrapsAt32Bits) {
  ProgramBuilder B("t");
  B.movri(0, INT32_MAX);
  B.addi(0, 1); // wraps to 0x80000000
  B.movri(1, -1);
  B.addi(1, 2); // 1
  B.movri(2, 0x10000);
  B.mul(2, 2); // 2^32 -> 0
  B.halt();
  GuestCPU Cpu = runImage(B.build());
  EXPECT_EQ(Cpu.Gpr[0], 0x80000000u);
  EXPECT_EQ(Cpu.Gpr[1], 1u);
  EXPECT_EQ(Cpu.Gpr[2], 0u);
}

TEST(InterpTest, Shifts) {
  ProgramBuilder B("t");
  B.movri(0, 1);
  B.shli(0, 31); // 0x80000000
  B.movri(1, 0x80000000);
  B.shri(1, 4); // 0x08000000
  B.movri(2, -16);
  B.sari(2, 2); // -4
  B.movri(3, 1);
  B.movri(5, 33); // shift amounts mask to 5 bits: 33 & 31 == 1
  B.shl(3, 5);    // 2
  B.halt();
  GuestCPU Cpu = runImage(B.build());
  EXPECT_EQ(Cpu.Gpr[0], 0x80000000u);
  EXPECT_EQ(Cpu.Gpr[1], 0x08000000u);
  EXPECT_EQ(Cpu.Gpr[2], static_cast<uint32_t>(-4));
  EXPECT_EQ(Cpu.Gpr[3], 2u);
}

TEST(InterpTest, LoadStoreAllSizes) {
  ProgramBuilder B("t");
  uint32_t Buf = B.dataReserve(64, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(1, 0x11223344);
  B.stl(mem(0, 0), 1);
  B.stb(mem(0, 8), 1);  // 0x44
  B.stw(mem(0, 10), 1); // 0x3344
  B.qmovi(0x0 /*q0*/, -2);
  B.stq(mem(0, 16), 0);
  B.ldl(2, mem(0, 0));
  B.ldb(3, mem(0, 8));
  B.ldw(4 + 1, mem(0, 10)); // use ebp=5
  B.ldq(1 /*q1*/, mem(0, 16));
  B.qchk(1);
  B.halt();
  GuestCPU Cpu = runImage(B.build());
  EXPECT_EQ(Cpu.Gpr[2], 0x11223344u);
  EXPECT_EQ(Cpu.Gpr[3], 0x44u);
  EXPECT_EQ(Cpu.Gpr[5], 0x3344u);
  EXPECT_EQ(Cpu.Qreg[1], ~1ULL);
}

TEST(InterpTest, MisalignedAccessesWork) {
  // The guest ISA allows MDAs; the interpreter must assemble them.
  ProgramBuilder B("t");
  uint32_t Buf = B.dataReserve(64, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(1, 0xdeadbeef);
  B.stl(mem(0, 1), 1); // misaligned store
  B.ldl(2, mem(0, 1)); // misaligned load
  B.ldw(3, mem(0, 3)); // misaligned halfword inside the stored word
  B.halt();
  GuestCPU Cpu = runImage(B.build());
  EXPECT_EQ(Cpu.Gpr[2], 0xdeadbeefu);
  EXPECT_EQ(Cpu.Gpr[3], 0xdeadu);
}

TEST(InterpTest, AddressingModes) {
  ProgramBuilder B("t");
  uint32_t Buf = B.dataReserve(256, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(1, 3); // index
  B.movri(2, 0x55);
  B.stl(memIdx(0, 1, 2, 4), 2); // Buf + 3*4 + 4 = Buf+16
  B.ldl(3, mem(0, 16));
  B.lea(4 + 3, memIdx(0, 1, 3, -8)); // edi = Buf + 24 - 8
  B.halt();
  GuestCPU Cpu = runImage(B.build());
  EXPECT_EQ(Cpu.Gpr[3], 0x55u);
  EXPECT_EQ(Cpu.Gpr[7], Buf + 16);
}

TEST(InterpTest, ConditionalBranches) {
  // Compute sum 1..10 with a loop.
  ProgramBuilder B("t");
  B.movri(0, 0);  // sum
  B.movri(1, 1);  // i
  auto Loop = B.here();
  B.add(0, 1);
  B.addi(1, 1);
  B.cmpi(1, 10);
  B.jcc(Cond::Le, Loop);
  B.halt();
  GuestCPU Cpu = runImage(B.build());
  EXPECT_EQ(Cpu.Gpr[0], 55u);
}

TEST(InterpTest, AllConditionCodes) {
  struct Case {
    Cond C;
    int32_t A, B;
    bool Taken;
  };
  const Case Cases[] = {
      {Cond::Eq, 5, 5, true},    {Cond::Eq, 5, 6, false},
      {Cond::Ne, 5, 6, true},    {Cond::Ne, 5, 5, false},
      {Cond::Lt, -1, 0, true},   {Cond::Lt, 0, -1, false},
      {Cond::Ge, 0, -1, true},   {Cond::Ge, -1, 0, false},
      {Cond::Le, 3, 3, true},    {Cond::Le, 4, 3, false},
      {Cond::Gt, 4, 3, true},    {Cond::Gt, 3, 3, false},
      {Cond::B, 1, 2, true},     {Cond::B, -1, 2, false}, // unsigned
      {Cond::Ae, -1, 2, true},   {Cond::Ae, 1, 2, false},
  };
  for (const Case &C : Cases) {
    ProgramBuilder B("t");
    B.movri(0, C.A);
    B.movri(1, C.B);
    B.movri(2, 0);
    auto L = B.newLabel();
    B.cmp(0, 1);
    B.jcc(C.C, L);
    B.movri(2, 1); // fall-through marker
    B.bind(L);
    B.halt();
    GuestCPU Cpu = runImage(B.build());
    EXPECT_EQ(Cpu.Gpr[2], C.Taken ? 0u : 1u)
        << "cond " << condName(C.C) << " a=" << C.A << " b=" << C.B;
  }
}

TEST(InterpTest, CallRet) {
  ProgramBuilder B("t");
  auto Fn = B.newLabel();
  B.movri(0, 1);
  B.call(Fn);
  B.chk(0);
  B.halt();
  B.bind(Fn);
  B.addi(0, 41);
  B.ret();
  GuestCPU Cpu = runImage(B.build());
  EXPECT_EQ(Cpu.Gpr[0], 42u);
  EXPECT_EQ(Cpu.Checksum, 42u);
  // Stack pointer restored.
  EXPECT_EQ(Cpu.Gpr[RegSP], layout::StackTop);
}

TEST(InterpTest, IndirectJump) {
  ProgramBuilder B("t");
  auto Target = B.newLabel();
  auto GetPc = B.newLabel();
  B.jmp(GetPc);
  B.bind(Target);
  B.movri(0, 99);
  B.halt();
  B.bind(GetPc);
  // Materialize Target's address through a data slot patched below.
  uint32_t Slot = B.dataU32(0);
  B.movri(1, static_cast<int32_t>(Slot));
  B.ldl(2, mem(1, 0));
  B.jmpr(2);
  GuestImage Image = B.build();
  // Find Target's address: it is CodeBase + the Jmp length (5).
  uint32_t TargetAddr = Image.CodeBase + 5;
  std::memcpy(Image.Data.data() + (Slot - layout::DataBase), &TargetAddr, 4);
  GuestCPU Cpu = runImage(Image);
  EXPECT_EQ(Cpu.Gpr[0], 99u);
}

TEST(InterpTest, QRegisterOps) {
  ProgramBuilder B("t");
  B.qmovi(0, -1);
  B.qaddi(0, 1); // 0
  B.qmovi(1, 1000);
  B.qadd(0, 1); // 1000
  B.movri(0 /*eax*/, 7);
  B.gtoq(2, 0); // q2 = 7
  B.qxor(1, 2); // q1 = 1000 ^ 7
  B.qtog(3, 1); // ebx = low32
  B.halt();
  GuestCPU Cpu = runImage(B.build());
  EXPECT_EQ(Cpu.Qreg[0], 1000u);
  EXPECT_EQ(Cpu.Qreg[1], 1000ULL ^ 7ULL);
  EXPECT_EQ(Cpu.Gpr[3], 1000u ^ 7u);
}

TEST(InterpTest, QMovISignExtends) {
  ProgramBuilder B("t");
  B.qmovi(0, -5);
  B.halt();
  GuestCPU Cpu = runImage(B.build());
  EXPECT_EQ(Cpu.Qreg[0], static_cast<uint64_t>(-5LL));
}

TEST(InterpTest, StepBlockStopsAtTerminator) {
  ProgramBuilder B("t");
  B.movri(0, 1);
  B.movri(1, 2);
  auto L = B.newLabel();
  B.jmp(L);
  B.bind(L);
  B.halt();
  GuestImage Image = B.build();
  GuestMemory Mem;
  Mem.loadImage(Image);
  GuestCPU Cpu;
  Cpu.reset(Image);
  Interpreter Interp(Mem);
  EXPECT_EQ(Interp.stepBlock(Cpu), 3u); // movi, movi, jmp
  EXPECT_FALSE(Cpu.Halted);
  EXPECT_EQ(Interp.stepBlock(Cpu), 1u); // halt
  EXPECT_TRUE(Cpu.Halted);
}

TEST(InterpTest, ObserverSeesAccesses) {
  ProgramBuilder B("t");
  uint32_t Buf = B.dataReserve(32, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(1, 5);
  B.stl(mem(0, 2), 1); // misaligned store
  B.ldl(2, mem(0, 4)); // aligned load
  B.halt();
  GuestImage Image = B.build();
  GuestMemory Mem;
  Mem.loadImage(Image);
  GuestCPU Cpu;
  Cpu.reset(Image);
  MdaCensus Census;
  Interpreter Interp(Mem);
  Interp.setObserver(&Census);
  Interp.run(Cpu, 1000);
  EXPECT_EQ(Census.totalRefs(), 2u);
  EXPECT_EQ(Census.totalMdas(), 1u);
  EXPECT_EQ(Census.nmi(), 1u);
}

TEST(MdaCensusTest, BiasClassification) {
  MdaCensus C;
  // Site A: always misaligned (4 of 4).
  for (int I = 0; I != 4; ++I)
    C.onMemAccess(0x100, 1, 4, false);
  // Site B: half misaligned.
  C.onMemAccess(0x200, 1, 4, false);
  C.onMemAccess(0x200, 4, 4, false);
  // Site C: mostly aligned (1 of 4).
  C.onMemAccess(0x300, 2, 4, false);
  for (int I = 0; I != 3; ++I)
    C.onMemAccess(0x300, 8, 4, false);
  // Site D: mostly misaligned (3 of 4).
  for (int I = 0; I != 3; ++I)
    C.onMemAccess(0x400, 2, 4, false);
  C.onMemAccess(0x400, 8, 4, false);
  // Site E: never misaligned -> not an MDA instruction.
  C.onMemAccess(0x500, 8, 4, false);

  MdaCensus::BiasBreakdown B = C.biasBreakdown();
  EXPECT_EQ(B.Always, 1u);
  EXPECT_EQ(B.Equal50, 1u);
  EXPECT_EQ(B.Below50, 1u);
  EXPECT_EQ(B.Above50, 1u);
  EXPECT_EQ(B.total(), 4u);
  EXPECT_EQ(C.nmi(), 4u);
}

TEST(InterpTest, ChecksumOrderSensitive) {
  ProgramBuilder B1("a");
  B1.movri(0, 1);
  B1.movri(1, 2);
  B1.chk(0);
  B1.chk(1);
  B1.halt();
  ProgramBuilder B2("b");
  B2.movri(0, 1);
  B2.movri(1, 2);
  B2.chk(1);
  B2.chk(0);
  B2.halt();
  EXPECT_NE(runImage(B1.build()).Checksum, runImage(B2.build()).Checksum);
}
