//===- tests/fuzz_differential_test.cpp - Randomized differential tests ---==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized differential testing of the whole translation stack:
/// deterministic pseudo-random guest programs (straight-line ALU code,
/// counted loops, if/else diamonds, leaf calls, memory accesses of every
/// size at arbitrary — frequently misaligned — addresses) are executed
/// under every MDA handling mechanism and compared bit-for-bit against
/// the reference interpreter (DESIGN.md invariant 1).
///
/// Each seed generates a distinct program; seeds are a test parameter so
/// failures name the exact program that broke.
///
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "mda/PolicyFactory.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::testutil;

namespace {

struct FuzzParam {
  uint64_t Seed;
};

class FuzzDifferentialTest : public ::testing::TestWithParam<FuzzParam> {};

std::vector<mda::PolicySpec> fuzzSpecs() {
  using mda::MechanismKind;
  return {
      {MechanismKind::Direct, 0, false, 0, false},
      {MechanismKind::StaticProfiling, 0, false, 0, false},
      {MechanismKind::DynamicProfiling, 10, false, 0, false},
      {MechanismKind::ExceptionHandling, 10, false, 0, false},
      {MechanismKind::ExceptionHandling, 10, true, 0, false},
      {MechanismKind::Dpeh, 10, false, 2, true},
  };
}

} // namespace

TEST_P(FuzzDifferentialTest, AllPoliciesMatchOracle) {
  RandomProgram Gen(GetParam().Seed);
  guest::GuestImage Image = Gen.build();
  Oracle O = interpretOracle(Image);
  for (const mda::PolicySpec &Spec : fuzzSpecs()) {
    std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(Spec, &Image);
    dbt::Engine Engine(Image, *Policy);
    dbt::RunResult R = Engine.run();
    std::string What = "seed " + std::to_string(GetParam().Seed) + " / " +
                       mda::policySpecName(Spec);
    expectMatchesOracle(R, O, What.c_str());
  }
}

namespace {

std::vector<FuzzParam> fuzzSeeds() {
  std::vector<FuzzParam> Seeds;
  for (uint64_t S = 1; S <= 48; ++S)
    Seeds.push_back({S});
  return Seeds;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::ValuesIn(fuzzSeeds()),
                         [](const ::testing::TestParamInfo<FuzzParam> &I) {
                           return "seed" + std::to_string(I.param.Seed);
                         });

TEST(FuzzGeneratorTest, ProgramsAreDeterministic) {
  RandomProgram A(7), B(7);
  guest::GuestImage IA = A.build(), IB = B.build();
  EXPECT_EQ(IA.Code, IB.Code);
  EXPECT_EQ(IA.Data, IB.Data);
}

TEST(FuzzGeneratorTest, SeedsProduceDistinctPrograms) {
  RandomProgram A(1), B(2);
  EXPECT_NE(A.build().Code, B.build().Code);
}
