//===- tests/host_encoding_test.cpp - HAlpha encode/decode round trips ----==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "host/HostEncoding.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::host;

namespace {

HostInst roundTrip(const HostInst &In) {
  uint32_t Word = encodeHost(In);
  HostInst Out;
  EXPECT_TRUE(decodeHost(Word, Out));
  return Out;
}

const HostOp AllMemOps[] = {HostOp::Lda, HostOp::Ldah, HostOp::Ldbu,
                            HostOp::Ldwu, HostOp::Ldl, HostOp::Ldq,
                            HostOp::LdqU, HostOp::Stb, HostOp::Stw,
                            HostOp::Stl, HostOp::Stq, HostOp::StqU};

const HostOp AllOperateOps[] = {
    HostOp::Addq,   HostOp::Subq,   HostOp::Addl,  HostOp::Subl,
    HostOp::Mull,   HostOp::Mulq,   HostOp::And,   HostOp::Bis,
    HostOp::Xor,    HostOp::Sll,    HostOp::Srl,   HostOp::Sra,
    HostOp::Cmpeq,  HostOp::Cmpult, HostOp::Cmpule, HostOp::Cmplt,
    HostOp::Cmple,  HostOp::Cmplt32, HostOp::Cmple32, HostOp::Sextl,
    HostOp::Zextl,  HostOp::Extwl,  HostOp::Extwh, HostOp::Extll,
    HostOp::Extlh,  HostOp::Extql,  HostOp::Extqh, HostOp::Inswl,
    HostOp::Inswh,  HostOp::Insll,  HostOp::Inslh, HostOp::Insql,
    HostOp::Insqh,  HostOp::Mskwl,  HostOp::Mskwh, HostOp::Mskll,
    HostOp::Msklh,  HostOp::Mskql,  HostOp::Mskqh};

const HostOp AllBranchOps[] = {HostOp::Br, HostOp::Beq, HostOp::Bne,
                               HostOp::Blt, HostOp::Bge};

} // namespace

TEST(HostEncodingTest, MemoryRoundTrip) {
  const int32_t Disps[] = {0, 1, -1, 255, -256, 32767, -32768};
  for (HostOp Op : AllMemOps) {
    for (uint8_t Ra : {0u, 1u, 17u, 31u}) {
      for (uint8_t Rb : {0u, 8u, 30u, 31u}) {
        for (int32_t D : Disps) {
          HostInst O = roundTrip(memInst(Op, Ra, D, Rb));
          EXPECT_EQ(O.Op, Op);
          EXPECT_EQ(O.Ra, Ra);
          EXPECT_EQ(O.Rb, Rb);
          EXPECT_EQ(O.Disp, D);
        }
      }
    }
  }
}

TEST(HostEncodingTest, OperateRegisterRoundTrip) {
  for (HostOp Op : AllOperateOps) {
    for (uint8_t Ra : {0u, 5u, 31u}) {
      for (uint8_t Rb : {0u, 21u, 31u}) {
        for (uint8_t Rc : {0u, 24u, 31u}) {
          HostInst O = roundTrip(opInst(Op, Ra, Rb, Rc));
          EXPECT_EQ(O.Op, Op);
          EXPECT_EQ(O.Ra, Ra);
          EXPECT_FALSE(O.IsLit);
          EXPECT_EQ(O.Rb, Rb);
          EXPECT_EQ(O.Rc, Rc);
        }
      }
    }
  }
}

TEST(HostEncodingTest, OperateLiteralRoundTrip) {
  for (HostOp Op : AllOperateOps) {
    for (uint8_t Lit : {0u, 1u, 31u, 63u, 255u}) {
      HostInst O = roundTrip(opInstLit(Op, 3, Lit, 7));
      EXPECT_EQ(O.Op, Op);
      EXPECT_TRUE(O.IsLit);
      EXPECT_EQ(O.Lit, Lit);
      EXPECT_EQ(O.Rc, 7);
    }
  }
}

TEST(HostEncodingTest, BranchRoundTrip) {
  const int32_t Disps[] = {0, 1, -1, 100, -100, (1 << 20) - 1, -(1 << 20)};
  for (HostOp Op : AllBranchOps) {
    for (int32_t D : Disps) {
      HostInst O = roundTrip(brInst(Op, 9, D));
      EXPECT_EQ(O.Op, Op);
      EXPECT_EQ(O.Ra, 9);
      EXPECT_EQ(O.Disp, D);
    }
  }
}

TEST(HostEncodingTest, ServiceRoundTrip) {
  for (SrvFunc F : {SrvFunc::Exit, SrvFunc::Halt}) {
    HostInst O = roundTrip(srvInst(F));
    EXPECT_EQ(O.Op, HostOp::Srv);
    EXPECT_EQ(O.Disp, static_cast<int32_t>(F));
  }
}

TEST(HostEncodingTest, RejectsInvalidOpcode) {
  // Opcode 15 is unassigned (between StqU=11 and Addq=16).
  HostInst I;
  EXPECT_FALSE(decodeHost(15u << 26, I));
}

TEST(HostEncodingTest, OpcodePredicatesArePartition) {
  for (unsigned Raw = 0; Raw != 64; ++Raw) {
    HostOp Op = static_cast<HostOp>(Raw);
    int Classes = static_cast<int>(isMemFormat(Op)) +
                  static_cast<int>(isOperateFormat(Op)) +
                  static_cast<int>(isBranchFormat(Op)) +
                  static_cast<int>(Op == HostOp::Srv);
    EXPECT_LE(Classes, 1) << "opcode " << Raw << " in multiple classes";
  }
}

TEST(HostEncodingTest, AlignmentTable) {
  EXPECT_EQ(alignmentOf(HostOp::Ldbu), 1u);
  EXPECT_EQ(alignmentOf(HostOp::Ldwu), 2u);
  EXPECT_EQ(alignmentOf(HostOp::Ldl), 4u);
  EXPECT_EQ(alignmentOf(HostOp::Ldq), 8u);
  EXPECT_EQ(alignmentOf(HostOp::LdqU), 1u); // never traps
  EXPECT_EQ(alignmentOf(HostOp::StqU), 1u);
  EXPECT_EQ(alignmentOf(HostOp::Stw), 2u);
  EXPECT_EQ(alignmentOf(HostOp::Stl), 4u);
  EXPECT_EQ(alignmentOf(HostOp::Stq), 8u);
}

TEST(HostDisasmTest, RendersForms) {
  EXPECT_EQ(disassembleHost(memInst(HostOp::Ldl, 1, 2, 2), 0),
            "ldl r1, 2(r2)");
  EXPECT_EQ(disassembleHost(opInst(HostOp::Extll, 1, 22, 1), 0),
            "extll r1, r22, r1");
  EXPECT_EQ(disassembleHost(opInstLit(HostOp::And, 18, 3, 19), 0),
            "and r18, #3, r19");
  EXPECT_EQ(disassembleHost(brInst(HostOp::Br, 31, 5), 10), "br @16");
  EXPECT_EQ(disassembleHost(srvInst(SrvFunc::Exit), 0), "srv #0");
}
