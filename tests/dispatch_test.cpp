//===- tests/dispatch_test.cpp - Hot-dispatch mechanism tests -------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hot-dispatch mechanisms behind EngineConfig::HashDispatch,
/// InlineCaches and Superblocks: DispatchTable unit behaviour
/// (collisions, tombstones, upsert, guarded erase, flush reset),
/// inline-cache fill/hit/eviction across retranslation, superblock
/// formation and de-optimization, and the architectural-transparency
/// guarantee (every combination reproduces the interpreter oracle and
/// replays bit-identically) including under code-cache flush storms.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dbt/DispatchTable.h"
#include "mda/PolicyFactory.h"
#include "workloads/Hostile.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace mdabt;
using namespace mdabt::testutil;

namespace {

/// PCs that all land in one bucket of a fresh (64-slot) table, so probe
/// chains and tombstone traversal are exercised deterministically.
std::vector<uint32_t> collidingPcs(size_t N) {
  auto Bucket = [](uint32_t Pc) { return (Pc * 2654435761u) & 63u; };
  std::vector<uint32_t> Pcs;
  uint32_t Want = Bucket(4);
  for (uint32_t Pc = 4; Pcs.size() < N; Pc += 4)
    if (Bucket(Pc) == Want)
      Pcs.push_back(Pc);
  return Pcs;
}

dbt::RunResult runDispatch(const guest::GuestImage &Image,
                           const mda::PolicySpec &Spec,
                           dbt::EngineConfig Config) {
  std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(Spec);
  dbt::Engine Engine(Image, *Policy, Config);
  return Engine.run();
}

dbt::EngineConfig allOn() {
  dbt::EngineConfig Config;
  Config.HashDispatch = true;
  Config.InlineCaches = true;
  Config.Superblocks = true;
  return Config;
}

/// Hot call/ret kernel: one callee returning alternately to two call
/// sites, so the return's inline cache needs two ways.
guest::GuestImage callRetProgram(uint32_t Iters) {
  using namespace guest;
  ProgramBuilder B("callret");
  uint32_t Buf = B.dataReserve(64, 8);
  ProgramBuilder::Label F = B.newLabel();
  B.movri(1, 0);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(2, 0);
  ProgramBuilder::Label Loop = B.here();
  B.call(F);
  B.call(F);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(Cond::B, Loop);
  B.chk(2);
  B.halt();
  B.bind(F);
  B.stl(mem(0, 0), 1);
  B.ldl(3, mem(0, 0));
  B.add(2, 3);
  B.ret();
  return B.build();
}

/// A call whose *return-continuation* block turns misaligned at
/// iteration \p Onset: the callee bumps the shared base pointer once,
/// so the continuation (the block an inline-cache way targets) faults,
/// gets retranslated, and the stale way must be evicted.
guest::GuestImage lateOnsetCallProgram(uint32_t Iters, uint32_t Onset) {
  using namespace guest;
  ProgramBuilder B("late-onset-call");
  uint32_t Buf = B.dataReserve(64, 8);
  uint32_t Slot = B.dataU32(Buf);
  ProgramBuilder::Label F = B.newLabel();
  B.movri(1, 0);
  ProgramBuilder::Label Loop = B.here();
  B.call(F);
  // Continuation block: access through the callee-managed base.
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.movri(2, 0x1234);
  B.stl(mem(0, 0), 2);
  B.ldl(2, mem(0, 0));
  B.chk(2);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(Cond::B, Loop);
  B.halt();
  B.bind(F);
  ProgramBuilder::Label Fret = B.newLabel();
  B.cmpi(1, static_cast<int32_t>(Onset));
  B.jcc(Cond::Ne, Fret);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.addi(0, 1);
  B.stl(mem(3, 0), 0);
  B.bind(Fret);
  B.ret();
  return B.build();
}

/// Hot three-block loop (if/else arms), the shape multi-block
/// superblock formation straightens.
guest::GuestImage threeBlockLoopProgram(uint32_t Iters) {
  using namespace guest;
  ProgramBuilder B("loop3");
  uint32_t Buf = B.dataReserve(64, 8);
  B.movri(1, 0);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(2, 0);
  ProgramBuilder::Label Odd = B.newLabel(), Join = B.newLabel();
  ProgramBuilder::Label Loop = B.here();
  B.movrr(3, 1);
  B.andi(3, 1);
  B.cmpi(3, 0);
  B.jcc(Cond::Ne, Odd);
  B.stl(mem(0, 0), 1);
  B.ldl(3, mem(0, 0));
  B.add(2, 3);
  B.jmp(Join);
  B.bind(Odd);
  B.stl(mem(0, 4), 2);
  B.ldl(3, mem(0, 4));
  B.add(2, 3);
  B.bind(Join);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(Cond::B, Loop);
  B.chk(2);
  B.halt();
  return B.build();
}

/// Main loop calling \p NumFuncs hot callees through a misaligned base:
/// enough distinct warm blocks (callees plus the per-call continuation
/// blocks) that a small code-cache limit forces capacity flushes while
/// everything is still hot.
guest::GuestImage multiFuncLoopProgram(uint32_t Iters, unsigned NumFuncs) {
  using namespace guest;
  ProgramBuilder B("multi-func");
  uint32_t Buf = B.dataReserve(256, 8);
  std::vector<ProgramBuilder::Label> Funcs(NumFuncs);
  for (ProgramBuilder::Label &F : Funcs)
    F = B.newLabel();
  B.movri(1, 0);
  B.movri(0, static_cast<int32_t>(Buf + 1)); // misaligned base
  B.movri(2, 0);
  ProgramBuilder::Label Loop = B.here();
  for (ProgramBuilder::Label &F : Funcs)
    B.call(F);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(Cond::B, Loop);
  B.chk(2);
  B.halt();
  for (unsigned F = 0; F != NumFuncs; ++F) {
    B.bind(Funcs[F]);
    B.stl(mem(0, static_cast<int32_t>(8 * F)), 1);
    B.ldl(3, mem(0, static_cast<int32_t>(8 * F)));
    B.add(2, 3);
    B.ret();
  }
  return B.build();
}

} // namespace

// ---- DispatchTable unit behaviour ------------------------------------------

TEST(DispatchTableTest, InsertLookupEraseRoundTrip) {
  dbt::DispatchTable Table;
  dbt::Translation T[3];
  Table.insert(0x10, &T[0]);
  Table.insert(0x20, &T[1]);
  uint32_t Probes = 0;
  EXPECT_EQ(Table.lookup(0x10, Probes), &T[0]);
  EXPECT_GE(Probes, 1u);
  EXPECT_EQ(Table.lookup(0x30, Probes), nullptr);
  EXPECT_EQ(Table.size(), 2u);

  // Guarded erase: a mismatched translation must not drop the entry
  // (the superblock-install path depends on this).
  Table.eraseIf(0x10, &T[2]);
  EXPECT_EQ(Table.lookup(0x10, Probes), &T[0]);
  Table.eraseIf(0x10, &T[0]);
  EXPECT_EQ(Table.lookup(0x10, Probes), nullptr);
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.tombstones(), 1u);
}

TEST(DispatchTableTest, UpsertReplacesWithoutGrowth) {
  dbt::DispatchTable Table;
  dbt::Translation A, B;
  Table.insert(0x40, &A);
  Table.insert(0x40, &B);
  uint32_t Probes = 0;
  EXPECT_EQ(Table.lookup(0x40, Probes), &B);
  EXPECT_EQ(Table.size(), 1u);
}

TEST(DispatchTableTest, CollisionChainProbesLinearly) {
  dbt::DispatchTable Table;
  std::vector<uint32_t> Pcs = collidingPcs(5);
  std::vector<dbt::Translation> T(Pcs.size());
  for (size_t I = 0; I != Pcs.size(); ++I)
    Table.insert(Pcs[I], &T[I]);
  // The last-inserted collider sits at the end of the probe chain.
  uint32_t Probes = 0;
  EXPECT_EQ(Table.lookup(Pcs.back(), Probes), &T.back());
  EXPECT_EQ(Probes, Pcs.size());
  EXPECT_EQ(Table.lookup(Pcs.front(), Probes), &T.front());
  EXPECT_EQ(Probes, 1u);
}

TEST(DispatchTableTest, LookupCrossesTombstonesAndInsertReusesThem) {
  dbt::DispatchTable Table;
  std::vector<uint32_t> Pcs = collidingPcs(3);
  dbt::Translation T[3];
  for (size_t I = 0; I != 3; ++I)
    Table.insert(Pcs[I], &T[I]);
  // Knock out the middle of the chain: later entries must still be
  // reachable across the grave.
  Table.eraseIf(Pcs[1], &T[1]);
  uint32_t Probes = 0;
  EXPECT_EQ(Table.lookup(Pcs[2], Probes), &T[2]);
  EXPECT_EQ(Probes, 3u);
  // A new collider reuses the tombstone instead of lengthening the
  // chain.
  dbt::Translation Fresh;
  Table.insert(Pcs[1], &Fresh);
  EXPECT_EQ(Table.tombstones(), 0u);
  EXPECT_EQ(Table.lookup(Pcs[1], Probes), &Fresh);
  EXPECT_EQ(Probes, 2u);
}

TEST(DispatchTableTest, FlushStormResetsCapacityAndDropsEntries) {
  dbt::DispatchTable Table;
  std::vector<dbt::Translation> T(512);
  for (int Storm = 0; Storm != 4; ++Storm) {
    for (uint32_t I = 0; I != 512; ++I)
      Table.insert(I * 4, &T[I]);
    EXPECT_EQ(Table.size(), 512u);
    EXPECT_GT(Table.capacity(), 512u); // grew past the initial 64
    Table.clear();
    EXPECT_EQ(Table.size(), 0u);
    EXPECT_EQ(Table.tombstones(), 0u);
    EXPECT_EQ(Table.capacity(), 64u); // flush forgets thrash-inflated size
    uint32_t Probes = 0;
    EXPECT_EQ(Table.lookup(0, Probes), nullptr);
  }
  EXPECT_GT(Table.rehashes(), 0u);
  EXPECT_EQ(Table.inserts(), 4u * 512u);
}

TEST(DispatchTableTest, RehashDropsTombstones) {
  dbt::DispatchTable Table;
  std::vector<dbt::Translation> T(256);
  // Churn insert/erase so tombstones pile up and force growth; the
  // rehash must rebuild from live entries only.
  for (uint32_t I = 0; I != 256; ++I) {
    Table.insert(I * 4, &T[I]);
    if (I % 2 == 0)
      Table.eraseIf(I * 4, &T[I]);
  }
  EXPECT_GT(Table.rehashes(), 0u);
  uint32_t Probes = 0;
  for (uint32_t I = 0; I != 256; ++I) {
    dbt::Translation *Want = I % 2 == 0 ? nullptr : &T[I];
    EXPECT_EQ(Table.lookup(I * 4, Probes), Want) << "pc " << I * 4;
  }
}

TEST(DispatchTableTest, EraseIfStormInterleavedWithRehashTracksReference) {
  // An SMC invalidation storm: bursts of guarded erases (some with the
  // live translation, some deliberately stale — which must be no-ops)
  // interleaved with fresh inserts that keep forcing growth.  After
  // every burst the table must agree with a reference map on every PC
  // ever touched, including across rehashes that drop the storm's
  // tombstones.
  dbt::DispatchTable Table;
  std::vector<dbt::Translation> Gen0(512), Gen1(512);
  std::map<uint32_t, dbt::Translation *> Ref;
  uint64_t Rng = 0x9e3779b97f4a7c15ULL; // deterministic xorshift
  auto Next = [&Rng]() {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };
  for (uint32_t I = 0; I != 512; ++I) {
    uint32_t Pc = (I + 1) * 4;
    Table.insert(Pc, &Gen0[I]);
    Ref[Pc] = &Gen0[I];
    if (I % 8 != 7)
      continue;
    // Invalidation burst over a window of already-installed PCs.
    for (uint32_t K = 0; K != 16; ++K) {
      uint32_t J = static_cast<uint32_t>(Next() % (I + 1));
      uint32_t VictimPc = (J + 1) * 4;
      if (Next() % 4 == 0) {
        // Stale guard: the PC was already remapped to a newer
        // translation (superblock formation does exactly this), so
        // the erase for the old one must not drop the fresh entry.
        Table.insert(VictimPc, &Gen1[J]);
        Ref[VictimPc] = &Gen1[J];
        Table.eraseIf(VictimPc, &Gen0[J]);
      } else {
        Table.eraseIf(VictimPc, Ref[VictimPc]);
        Ref[VictimPc] = nullptr;
      }
    }
    uint32_t Probes = 0;
    for (const auto &KV : Ref)
      ASSERT_EQ(Table.lookup(KV.first, Probes), KV.second)
          << "pc " << KV.first << " after burst at insert " << I;
  }
  EXPECT_GT(Table.rehashes(), 0u);
  EXPECT_GT(Table.erases(), 0u);
  size_t Live = 0;
  for (const auto &KV : Ref)
    Live += KV.second != nullptr;
  EXPECT_EQ(Table.size(), Live);
}

// ---- engine-level: transparency and mechanism activity ---------------------

TEST(DispatchEngineTest, HashDispatchIsArchitecturallyTransparent) {
  guest::GuestImage Image = misalignedSumProgram(600);
  Oracle O = interpretOracle(Image);
  dbt::EngineConfig Config;
  Config.HashDispatch = true;
  Config.Verify = true;
  dbt::RunResult R = runDispatch(
      Image, {mda::MechanismKind::Dpeh, 50, false, 0, false}, Config);
  expectMatchesOracle(R, O, "hash dispatch");
  EXPECT_GT(R.Counters.get("dispatch.table_hits"), 0u);
  EXPECT_GT(R.Counters.get("dispatch.table_inserts"), 0u);
}

TEST(DispatchEngineTest, InlineCachesFillAndCutMonitorEntries) {
  guest::GuestImage Image = callRetProgram(500);
  Oracle O = interpretOracle(Image);
  mda::PolicySpec Spec{mda::MechanismKind::Dpeh, 50, false, 0, false};
  dbt::EngineConfig Plain;
  dbt::EngineConfig Ic;
  Ic.InlineCaches = true;
  Ic.Verify = true;
  dbt::RunResult Base = runDispatch(Image, Spec, Plain);
  dbt::RunResult Cached = runDispatch(Image, Spec, Ic);
  expectMatchesOracle(Base, O, "callret baseline");
  expectMatchesOracle(Cached, O, "callret with inline caches");
  // The callee returns to two sites, so its return IC needs (and the
  // default budget has) two ways; once filled, returns stop visiting
  // the monitor.
  EXPECT_GE(Cached.Counters.get("dispatch.ic_fills"), 2u);
  EXPECT_LT(Cached.Counters.get("dbt.native_entries"),
            Base.Counters.get("dbt.native_entries"));
}

TEST(DispatchEngineTest, InlineCacheWayEvictedWhenTargetRetranslates) {
  guest::GuestImage Image = lateOnsetCallProgram(500, 150);
  Oracle O = interpretOracle(Image);
  // RetranslateThreshold 2: the continuation block the callee's return
  // IC targets goes misaligned at the onset, faults, and is superseded;
  // the way caching its entry must be taken out of service (and the
  // verifier must never see a live way to a dead entry).
  dbt::EngineConfig Config;
  Config.InlineCaches = true;
  Config.Verify = true;
  dbt::RunResult R = runDispatch(
      Image, {mda::MechanismKind::Dpeh, 10, false, 2, false}, Config);
  expectMatchesOracle(R, O, "IC eviction on retranslation");
  EXPECT_GT(R.Counters.get("dbt.supersedes"), 0u);
  EXPECT_GT(R.Counters.get("dispatch.ic_fills"), 0u);
  EXPECT_GT(R.Counters.get("dispatch.ic_evictions"), 0u);
}

TEST(DispatchEngineTest, SuperblockFormsOnHotSelfLoop) {
  guest::GuestImage Image = misalignedSumProgram(600);
  Oracle O = interpretOracle(Image);
  dbt::EngineConfig Config;
  Config.Superblocks = true;
  Config.Verify = true;
  dbt::RunResult R = runDispatch(
      Image, {mda::MechanismKind::Dpeh, 50, false, 0, false}, Config);
  expectMatchesOracle(R, O, "superblock self-loop");
  EXPECT_GE(R.Counters.get("trace.formed"), 1u);
  EXPECT_GE(R.Counters.get("trace.blocks_emitted"), 2u); // unrolled copy
}

TEST(DispatchEngineTest, SuperblockStraightensMultiBlockLoop) {
  // Long enough that the straightened loop amortizes the one-time trace
  // translation cost in modeled cycles.
  guest::GuestImage Image = threeBlockLoopProgram(5000);
  Oracle O = interpretOracle(Image);
  mda::PolicySpec Spec{mda::MechanismKind::Dpeh, 50, false, 0, false};
  dbt::EngineConfig Plain;
  dbt::EngineConfig Super;
  Super.Superblocks = true;
  Super.Verify = true;
  dbt::RunResult Base = runDispatch(Image, Spec, Plain);
  dbt::RunResult Traced = runDispatch(Image, Spec, Super);
  expectMatchesOracle(Base, O, "loop3 baseline");
  expectMatchesOracle(Traced, O, "loop3 with superblocks");
  EXPECT_GE(Traced.Counters.get("trace.formed"), 1u);
  EXPECT_GE(Traced.Counters.get("trace.blocks_emitted"), 2u);
  EXPECT_LT(Traced.Cycles, Base.Cycles);
}

TEST(DispatchEngineTest, SuperblockDeoptsOnFlushAndReforms) {
  guest::GuestImage Image = lateOnsetProgram(800, 300);
  Oracle O = interpretOracle(Image);
  dbt::EngineConfig Config;
  Config.Superblocks = true;
  Config.Verify = true;
  // The trace is formed while the loop is aligned; after the onset its
  // faulting copies push it over the retranslate threshold.  The
  // supersede must de-opt the trace cleanly and a fresh trace (with the
  // fault sites inlined) must take its place.
  dbt::RunResult R = runDispatch(
      Image, {mda::MechanismKind::Dpeh, 10, false, 2, false}, Config);
  expectMatchesOracle(R, O, "superblock supersede de-opt");
  EXPECT_GT(R.Counters.get("dbt.supersedes"), 0u);
  EXPECT_GE(R.Counters.get("trace.deopts"), 1u);
  EXPECT_GE(R.Counters.get("trace.formed"), 2u); // re-formed after de-opt
}

// ---- flush interactions (chain bookkeeping regression) ---------------------

TEST(DispatchEngineTest, ChainBookkeepingSurvivesFlushStorms) {
  // Regression: a chain patched into a block that is flushed within the
  // same monitor episode must be fully unwound — the flush asserts that
  // IncomingChains and the stale-word quarantine drain to empty, and
  // the verifier checks the surviving image.  Sweep small cache limits
  // so the flush lands at different points of the chain/translate
  // interleaving.
  guest::GuestImage Image = multiFuncLoopProgram(500, 6);
  Oracle O = interpretOracle(Image);
  for (uint32_t Limit : {96u, 128u, 160u, 192u}) {
    dbt::EngineConfig Config = allOn();
    Config.Verify = true;
    Config.CodeCacheLimitWords = Limit;
    dbt::RunResult R = runDispatch(
        Image, {mda::MechanismKind::Dpeh, 10, false, 0, false}, Config);
    expectMatchesOracle(
        R, O, ("flush storm limit " + std::to_string(Limit)).c_str());
    EXPECT_GT(R.Counters.get("dbt.flushes"), 0u) << "limit " << Limit;
  }
}

TEST(DispatchEngineTest, HashTableStaysCoherentAcrossFlushStorms) {
  guest::GuestImage Image = multiFuncLoopProgram(500, 6);
  Oracle O = interpretOracle(Image);
  mda::PolicySpec Spec{mda::MechanismKind::Dpeh, 10, false, 0, false};
  dbt::EngineConfig Unlimited;
  Unlimited.HashDispatch = true;
  dbt::EngineConfig Limited = Unlimited;
  Limited.Verify = true;
  Limited.CodeCacheLimitWords = 96;
  dbt::RunResult Calm = runDispatch(Image, Spec, Unlimited);
  dbt::RunResult Stormy = runDispatch(Image, Spec, Limited);
  expectMatchesOracle(Calm, O, "hash dispatch, unlimited cache");
  expectMatchesOracle(Stormy, O, "hash dispatch under flush storms");
  EXPECT_GT(Stormy.Counters.get("dbt.flushes"), 0u);
  // Each flush drops the table wholesale; flush victims that come back
  // hot are re-inserted, so the stormy run inserts strictly more.
  EXPECT_GT(Stormy.Counters.get("dispatch.table_inserts"),
            Calm.Counters.get("dispatch.table_inserts"));
}

// ---- every combination is transparent and deterministic ---------------------

TEST(DispatchEngineTest, AllConfigCombinationsMatchOracle) {
  const guest::GuestImage Images[] = {misalignedSumProgram(400),
                                      callRetProgram(400),
                                      threeBlockLoopProgram(400),
                                      lateOnsetProgram(400, 100)};
  for (const guest::GuestImage &Image : Images) {
    Oracle O = interpretOracle(Image);
    for (unsigned Bits = 0; Bits != 8; ++Bits) {
      dbt::EngineConfig Config;
      Config.HashDispatch = Bits & 1;
      Config.InlineCaches = Bits & 2;
      Config.Superblocks = Bits & 4;
      Config.Verify = true;
      dbt::RunResult R = runDispatch(
          Image, {mda::MechanismKind::Dpeh, 20, false, 0, false}, Config);
      expectMatchesOracle(R, O,
                          ("config bits " + std::to_string(Bits)).c_str());
    }
  }
}

TEST(DispatchEngineTest, AllOnReplaysBitIdentically) {
  guest::GuestImage Image = callRetProgram(500);
  mda::PolicySpec Spec{mda::MechanismKind::Dpeh, 50, false, 0, false};
  dbt::RunResult A = runDispatch(Image, Spec, allOn());
  dbt::RunResult B = runDispatch(Image, Spec, allOn());
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.MemoryHash, B.MemoryHash);
  ASSERT_EQ(A.Counters.entries().size(), B.Counters.entries().size());
  for (const auto &Entry : A.Counters.entries())
    EXPECT_EQ(Entry.second, B.Counters.get(Entry.first)) << Entry.first;
}

namespace {

/// A guest whose worker patches the imm32 of its *return-target*
/// block before returning into it: the ret's cached inline-cache way
/// then points at a translation that is invalidated on every circuit,
/// so the storm exercises way retirement, not just dispatch-table
/// erasure.  (The nop padding 4-aligns the patched imm so the patch
/// store itself is aligned traffic.)
guest::GuestImage icStormProgram(uint32_t Iters) {
  using namespace guest;
  ProgramBuilder B("ic.storm");
  ProgramBuilder::Label Worker = B.newLabel();
  ProgramBuilder::Label Loop = B.newLabel();
  B.movri(6, static_cast<int32_t>(Iters));
  B.bind(Loop);
  B.call(Worker);
  // Continuation block — the ret target the worker rewrites.
  while ((B.codeAddress() + 2) % 4 != 0)
    B.nop();
  uint32_t ContImm = B.codeAddress() + 2;
  B.movri(0, 0); // imm32 patched every circuit
  B.chk(0);
  B.subi(6, 1);
  B.cmpi(6, 0);
  B.jcc(Cond::Ne, Loop);
  B.halt();
  // Patch only every 8th circuit: in between, the continuation stays
  // valid so the ret's way actually fills (and hits); on patching
  // circuits the filled way's target is invalidated and the way must
  // be evicted.
  ProgramBuilder::Label Skip = B.newLabel();
  B.bind(Worker);
  B.movrr(2, 6);
  B.andi(2, 7);
  B.cmpi(2, 0);
  B.jcc(Cond::Ne, Skip);
  B.movri(3, static_cast<int32_t>(ContImm));
  B.stl(mem(3, 0), 6); // SMC into the return-target block
  B.bind(Skip);
  B.ret();
  return B.build();
}

} // namespace

TEST(DispatchEngineTest, InlineCacheRetirementSurvivesSmcInvalidationStorm) {
  // Each circuit invalidates the worker's cached return target: the
  // SMC barrier must retire the dispatch-table entry and the filled
  // inline-cache way before the next dispatch, while the table keeps
  // churning — and the run must stay byte-identical.
  guest::GuestImage Image = icStormProgram(250);
  Oracle O = interpretOracle(Image);
  dbt::EngineConfig Config = allOn();
  Config.Analysis = true;
  Config.Verify = true;
  dbt::RunResult R = runDispatch(
      Image, {mda::MechanismKind::Direct, 0, false, 0, false}, Config);
  expectMatchesOracle(R, O, "ic.storm all-on");
  EXPECT_GT(R.Counters.get("smc.invalidations"), 0u);
  EXPECT_GT(R.Counters.get("dispatch.table_erases"), 0u);
  EXPECT_GT(R.Counters.get("dispatch.ic_fills"), 0u);
  EXPECT_GT(R.Counters.get("dispatch.ic_evictions"), 0u);
}
