//===- tests/host_semantics_property_test.cpp - HAlpha op properties ------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the host machine's operate instructions: every
/// opcode is executed with hundreds of randomized operand pairs (plus
/// adversarial corner values) and compared against an independent
/// reference implementation written directly from the ISA definition in
/// HostISA.h.  Covers both register and literal operand forms, and the
/// ext/ins/msk byte-manipulation identities the MDA sequences rely on.
///
//===----------------------------------------------------------------------===//

#include "host/CodeSpace.h"
#include "host/HostAssembler.h"
#include "host/HostMachine.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace mdabt;
using namespace mdabt::host;

namespace {

uint64_t mask(unsigned Size) {
  return Size == 8 ? ~0ULL : (1ULL << (Size * 8)) - 1;
}

/// The reference semantics, written independently of HostMachine.cpp.
uint64_t reference(HostOp Op, uint64_t A, uint64_t B) {
  auto Ext = [&](unsigned Size, bool High) -> uint64_t {
    unsigned Sh = B & 7;
    if (!High)
      return (A >> (8 * Sh)) & mask(Size);
    return Sh == 0 ? 0 : (A << (8 * (8 - Sh))) & mask(Size);
  };
  auto Ins = [&](unsigned Size, bool High) -> uint64_t {
    unsigned Sh = B & 7;
    if (!High)
      return (A & mask(Size)) << (8 * Sh);
    return Sh == 0 ? 0 : (A & mask(Size)) >> (8 * (8 - Sh));
  };
  auto Msk = [&](unsigned Size, bool High) -> uint64_t {
    unsigned Sh = B & 7;
    if (!High)
      return A & ~(mask(Size) << (8 * Sh));
    return Sh == 0 ? A : A & ~(mask(Size) >> (8 * (8 - Sh)));
  };
  switch (Op) {
  case HostOp::Addq:
    return A + B;
  case HostOp::Subq:
    return A - B;
  case HostOp::Addl:
    return (A + B) & 0xffffffff;
  case HostOp::Subl:
    return (A - B) & 0xffffffff;
  case HostOp::Mull:
    return (A * B) & 0xffffffff;
  case HostOp::Mulq:
    return A * B;
  case HostOp::And:
    return A & B;
  case HostOp::Bis:
    return A | B;
  case HostOp::Xor:
    return A ^ B;
  case HostOp::Sll:
    return A << (B & 63);
  case HostOp::Srl:
    return A >> (B & 63);
  case HostOp::Sra:
    return static_cast<uint64_t>(static_cast<int64_t>(A) >> (B & 63));
  case HostOp::Cmpeq:
    return A == B;
  case HostOp::Cmpult:
    return A < B;
  case HostOp::Cmpule:
    return A <= B;
  case HostOp::Cmplt:
    return static_cast<int64_t>(A) < static_cast<int64_t>(B);
  case HostOp::Cmple:
    return static_cast<int64_t>(A) <= static_cast<int64_t>(B);
  case HostOp::Cmplt32:
    return static_cast<int32_t>(A) < static_cast<int32_t>(B);
  case HostOp::Cmple32:
    return static_cast<int32_t>(A) <= static_cast<int32_t>(B);
  case HostOp::Sextl:
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(B)));
  case HostOp::Zextl:
    return B & 0xffffffff;
  case HostOp::Extwl:
    return Ext(2, false);
  case HostOp::Extwh:
    return Ext(2, true);
  case HostOp::Extll:
    return Ext(4, false);
  case HostOp::Extlh:
    return Ext(4, true);
  case HostOp::Extql:
    return Ext(8, false);
  case HostOp::Extqh:
    return Ext(8, true);
  case HostOp::Inswl:
    return Ins(2, false);
  case HostOp::Inswh:
    return Ins(2, true);
  case HostOp::Insll:
    return Ins(4, false);
  case HostOp::Inslh:
    return Ins(4, true);
  case HostOp::Insql:
    return Ins(8, false);
  case HostOp::Insqh:
    return Ins(8, true);
  case HostOp::Mskwl:
    return Msk(2, false);
  case HostOp::Mskwh:
    return Msk(2, true);
  case HostOp::Mskll:
    return Msk(4, false);
  case HostOp::Msklh:
    return Msk(4, true);
  case HostOp::Mskql:
    return Msk(8, false);
  case HostOp::Mskqh:
    return Msk(8, true);
  default:
    ADD_FAILURE() << "no reference for opcode";
    return 0;
  }
}

const HostOp AllOperateOps[] = {
    HostOp::Addq,    HostOp::Subq,    HostOp::Addl,  HostOp::Subl,
    HostOp::Mull,    HostOp::Mulq,    HostOp::And,   HostOp::Bis,
    HostOp::Xor,     HostOp::Sll,     HostOp::Srl,   HostOp::Sra,
    HostOp::Cmpeq,   HostOp::Cmpult,  HostOp::Cmpule, HostOp::Cmplt,
    HostOp::Cmple,   HostOp::Cmplt32, HostOp::Cmple32, HostOp::Sextl,
    HostOp::Zextl,   HostOp::Extwl,   HostOp::Extwh, HostOp::Extll,
    HostOp::Extlh,   HostOp::Extql,   HostOp::Extqh, HostOp::Inswl,
    HostOp::Inswh,   HostOp::Insll,   HostOp::Inslh, HostOp::Insql,
    HostOp::Insqh,   HostOp::Mskwl,   HostOp::Mskwh, HostOp::Mskll,
    HostOp::Msklh,   HostOp::Mskql,   HostOp::Mskqh};

/// Execute one operate instruction through the full machine.
uint64_t execute(HostOp Op, uint64_t A, uint64_t B, bool Literal,
                 uint8_t Lit) {
  CodeSpace Code;
  guest::GuestMemory Mem;
  MemoryHierarchy Hier;
  CostModel Cost;
  HostMachine Machine(Code, Mem, Hier, Cost);
  HostAssembler Asm(Code);
  if (Literal)
    Asm.opl(Op, 1, Lit, 3);
  else
    Asm.op(Op, 1, 2, 3);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  Machine.R[1] = A;
  Machine.R[2] = B;
  EXPECT_EQ(Machine.run(0).K, ExitInfo::Halt);
  return Machine.R[3];
}

class OperatePropertyTest : public ::testing::TestWithParam<HostOp> {};

const uint64_t Corners[] = {0,
                            1,
                            7,
                            8,
                            0x7f,
                            0x80,
                            0xff,
                            0x7fff,
                            0x8000,
                            0xffff,
                            0x7fffffff,
                            0x80000000,
                            0xffffffff,
                            0x100000000ULL,
                            0x7fffffffffffffffULL,
                            0x8000000000000000ULL,
                            ~0ULL};

} // namespace

TEST_P(OperatePropertyTest, RegisterFormMatchesReference) {
  HostOp Op = GetParam();
  RNG R(static_cast<uint64_t>(Op) * 97 + 1);
  for (int I = 0; I != 200; ++I) {
    uint64_t A = R.next();
    uint64_t B = R.next();
    EXPECT_EQ(execute(Op, A, B, false, 0), reference(Op, A, B))
        << hostOpName(Op) << " A=" << A << " B=" << B;
  }
  for (uint64_t A : Corners)
    for (uint64_t B : Corners)
      EXPECT_EQ(execute(Op, A, B, false, 0), reference(Op, A, B))
          << hostOpName(Op) << " A=" << A << " B=" << B;
}

TEST_P(OperatePropertyTest, LiteralFormMatchesReference) {
  HostOp Op = GetParam();
  RNG R(static_cast<uint64_t>(Op) * 131 + 5);
  for (int I = 0; I != 100; ++I) {
    uint64_t A = R.next();
    uint8_t Lit = static_cast<uint8_t>(R.below(256));
    EXPECT_EQ(execute(Op, A, 0, true, Lit), reference(Op, A, Lit))
        << hostOpName(Op) << " A=" << A << " lit=" << unsigned(Lit);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, OperatePropertyTest,
                         ::testing::ValuesIn(AllOperateOps),
                         [](const ::testing::TestParamInfo<HostOp> &I) {
                           return hostOpName(I.param);
                         });

TEST(ExtInsMskIdentityTest, LoadReconstruction) {
  // The fundamental identity behind the MDA load sequence: for any two
  // adjacent quadwords and any byte offset, extXl(lo) | extXh(hi)
  // equals the unaligned value.
  RNG R(404);
  for (unsigned Size : {2u, 4u, 8u}) {
    HostOp Lo = Size == 2 ? HostOp::Extwl
                          : Size == 4 ? HostOp::Extll : HostOp::Extql;
    HostOp Hi = Size == 2 ? HostOp::Extwh
                          : Size == 4 ? HostOp::Extlh : HostOp::Extqh;
    for (int I = 0; I != 200; ++I) {
      uint8_t Bytes[16];
      for (uint8_t &Byte : Bytes)
        Byte = static_cast<uint8_t>(R.below(256));
      uint64_t QLo = 0, QHi = 0;
      std::memcpy(&QLo, Bytes, 8);
      std::memcpy(&QHi, Bytes + 8, 8);
      for (unsigned Sh = 0; Sh != 8; ++Sh) {
        uint64_t Expect = 0;
        std::memcpy(&Expect, Bytes + Sh, Size);
        // extXh must read the quadword containing the last byte.
        uint64_t HiQuad = (Sh + Size - 1) < 8 ? QLo : QHi;
        uint64_t Got = reference(Lo, QLo, Sh) | reference(Hi, HiQuad, Sh);
        EXPECT_EQ(Got, Expect)
            << "size " << Size << " shift " << Sh;
      }
    }
  }
}

TEST(ExtInsMskIdentityTest, StoreMergeIsComplementary) {
  // ins and msk are complementary: msk clears exactly the bytes ins
  // fills, so (msk(Q) | ins(V)) replaces the field and nothing else.
  RNG R(808);
  const struct {
    HostOp Ins, Msk;
    unsigned Size;
    bool High;
  } Cases[] = {
      {HostOp::Inswl, HostOp::Mskwl, 2, false},
      {HostOp::Inswh, HostOp::Mskwh, 2, true},
      {HostOp::Insll, HostOp::Mskll, 4, false},
      {HostOp::Inslh, HostOp::Msklh, 4, true},
      {HostOp::Insql, HostOp::Mskql, 8, false},
      {HostOp::Insqh, HostOp::Mskqh, 8, true},
  };
  for (const auto &C : Cases) {
    for (int I = 0; I != 200; ++I) {
      uint64_t Q = R.next();
      uint64_t V = R.next();
      for (unsigned Sh = 0; Sh != 8; ++Sh) {
        uint64_t InsBits = reference(C.Ins, V, Sh);
        uint64_t MskBits = reference(C.Msk, Q, Sh);
        // Disjoint:
        EXPECT_EQ(InsBits & MskBits & ~Q, 0u);
        // msk kept exactly the bytes ins does not touch:
        uint64_t FieldMask = reference(C.Ins, ~0ULL, Sh);
        EXPECT_EQ(MskBits, Q & ~FieldMask)
            << hostOpName(C.Msk) << " shift " << Sh;
      }
    }
  }
}

TEST(MemoryPropertyTest, LoadStoreRoundTrip) {
  // Random aligned load/store round trips for every size.
  RNG R(77);
  for (int I = 0; I != 300; ++I) {
    CodeSpace Code;
    guest::GuestMemory Mem;
    MemoryHierarchy Hier;
    CostModel Cost;
    HostMachine Machine(Code, Mem, Hier, Cost);
    unsigned SizeIdx = static_cast<unsigned>(R.below(4));
    const HostOp Loads[] = {HostOp::Ldbu, HostOp::Ldwu, HostOp::Ldl,
                            HostOp::Ldq};
    const HostOp Stores[] = {HostOp::Stb, HostOp::Stw, HostOp::Stl,
                             HostOp::Stq};
    unsigned Size = 1u << SizeIdx;
    uint32_t Addr = 0x1000 + static_cast<uint32_t>(R.below(256)) * 8;
    uint64_t Value = R.next();
    HostAssembler Asm(Code);
    Asm.mem(Stores[SizeIdx], 1, 0, 2);
    Asm.mem(Loads[SizeIdx], 3, 0, 2);
    Asm.srv(SrvFunc::Halt);
    Asm.finish();
    Machine.R[1] = Value;
    Machine.R[2] = Addr;
    ASSERT_EQ(Machine.run(0).K, ExitInfo::Halt);
    EXPECT_EQ(Machine.R[3], Value & mask(Size));
    EXPECT_EQ(Machine.Faults, 0u);
  }
}

TEST(MemoryPropertyTest, EveryMisalignedOffsetTraps) {
  const struct {
    HostOp Op;
    unsigned Align;
  } Cases[] = {{HostOp::Ldwu, 2}, {HostOp::Ldl, 4},  {HostOp::Ldq, 8},
               {HostOp::Stw, 2},  {HostOp::Stl, 4},  {HostOp::Stq, 8}};
  for (const auto &C : Cases) {
    for (uint32_t Off = 0; Off != 16; ++Off) {
      CodeSpace Code;
      guest::GuestMemory Mem;
      MemoryHierarchy Hier;
      CostModel Cost;
      HostMachine Machine(Code, Mem, Hier, Cost);
      HostAssembler Asm(Code);
      Asm.mem(C.Op, 1, 0, 2);
      Asm.srv(SrvFunc::Halt);
      Asm.finish();
      Machine.R[2] = 0x2000 + Off;
      ASSERT_EQ(Machine.run(0).K, ExitInfo::Halt);
      bool ShouldTrap = (Off % C.Align) != 0;
      EXPECT_EQ(Machine.Faults, ShouldTrap ? 1u : 0u)
          << hostOpName(C.Op) << " offset " << Off;
    }
  }
}

TEST(BranchPropertyTest, DisplacementArithmetic) {
  // Forward and backward branches land exactly where the label says,
  // across a spread of distances.
  for (int Gap : {0, 1, 3, 100, 5000}) {
    CodeSpace Code;
    guest::GuestMemory Mem;
    MemoryHierarchy Hier;
    CostModel Cost;
    HostMachine Machine(Code, Mem, Hier, Cost);
    HostAssembler Asm(Code);
    auto Target = Asm.newLabel();
    Asm.br(Target);
    for (int I = 0; I != Gap; ++I)
      Asm.srv(SrvFunc::Exit); // landing here would be an error
    Asm.bind(Target);
    Asm.lda(1, 99, 31);
    Asm.srv(SrvFunc::Halt);
    Asm.finish();
    ASSERT_EQ(Machine.run(0).K, ExitInfo::Halt) << "gap " << Gap;
    EXPECT_EQ(Machine.R[1], 99u);
  }
}
