//===- tests/smc_test.cpp - Guest-code coherence & governance tests -------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hostile-guest hardening surface: self-modifying guests must stay
/// byte-identical to the interpreter oracle under every MDA policy with
/// the alignment analysis and the structural verifier on — including
/// when superblocks fuse the patcher with the code it patches (the
/// episode-stop path), when an Elide verdict's proof lives in rewritten
/// bytes (verdict revocation), and when the guest is an unbounded
/// retranslation-churn adversary (typed budget aborts and the per-block
/// interp-only pin).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "mda/PolicyFactory.h"
#include "workloads/Hostile.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::testutil;

namespace {

/// The five mechanism families of the paper's evaluation.
std::vector<mda::PolicySpec> smcSpecs() {
  using mda::MechanismKind;
  return {
      {MechanismKind::Direct, 0, false, 0, false},
      {MechanismKind::StaticProfiling, 0, false, 0, false},
      {MechanismKind::DynamicProfiling, 50, false, 0, false},
      {MechanismKind::ExceptionHandling, 50, true, 0, false},
      {MechanismKind::Dpeh, 50, false, 4, false},
  };
}

/// Coherence runs keep the analysis (whose verdicts SMC can stale) and
/// the verifier (invariant 8: no live translation over dirtied bytes)
/// on; Verify turns any structural slip into a typed abort that
/// expectMatchesOracle reports instead of silent corruption.
dbt::EngineConfig smcConfig() {
  dbt::EngineConfig Config;
  Config.Analysis = true;
  Config.Verify = true;
  return Config;
}

/// smcConfig plus every hot-dispatch mechanism: superblocks are the
/// adversarial case (they can fuse the patcher with the patched code
/// into one translation) and inline caches add the retirement surface
/// invalidation must clear.
dbt::EngineConfig smcAllDispatch() {
  dbt::EngineConfig Config = smcConfig();
  Config.HashDispatch = true;
  Config.InlineCaches = true;
  Config.Superblocks = true;
  return Config;
}

dbt::RunResult runSmc(const guest::GuestImage &Image,
                      const mda::PolicySpec &Spec,
                      const dbt::EngineConfig &Config) {
  std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(Spec, &Image);
  dbt::Engine Engine(Image, *Policy, Config);
  return Engine.run();
}

class SmcPoliciesTest : public ::testing::TestWithParam<mda::PolicySpec> {};

} // namespace

TEST_P(SmcPoliciesTest, HostileCatalogMatchesOracle) {
  for (const workloads::HostileProgram &P : workloads::hostileCatalog()) {
    Oracle O = interpretOracle(P.Image);
    dbt::RunResult R = runSmc(P.Image, GetParam(), smcConfig());
    expectMatchesOracle(R, O, P.Name.c_str());
    EXPECT_EQ(R.Counters.get("verify.issues"), 0u) << P.Name;
  }
}

TEST_P(SmcPoliciesTest, HostileCatalogMatchesOracleUnderAllDispatch) {
  // Regression for the fused patcher/patchee hazard: before the
  // episode-stop machinery, smc.churn under superblocks kept executing
  // the stale inlined copy of the block it had just rewritten and
  // diverged in checksum only.
  for (const workloads::HostileProgram &P : workloads::hostileCatalog()) {
    Oracle O = interpretOracle(P.Image);
    dbt::RunResult R = runSmc(P.Image, GetParam(), smcAllDispatch());
    expectMatchesOracle(R, O, P.Name.c_str());
    EXPECT_EQ(R.Counters.get("verify.issues"), 0u) << P.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SmcPoliciesTest,
                         ::testing::ValuesIn(smcSpecs()));

TEST(SmcTest, EpisodeStopEngagesWhenPatcherAndPatcheeFuse) {
  // Under superblocks the churn guest's patch store executes from
  // inside the very trace it invalidates; coherence then requires the
  // machine-level episode stop, not just quarantine-before-dispatch.
  guest::GuestImage Image = workloads::smcChurnProgram(3, 250);
  Oracle O = interpretOracle(Image);
  dbt::RunResult R =
      runSmc(Image, {mda::MechanismKind::Direct, 0, false, 0, false},
             smcAllDispatch());
  expectMatchesOracle(R, O, "smc.churn superblocks");
  EXPECT_GT(R.Counters.get("smc.episode_stops"), 0u);
  EXPECT_GT(R.Counters.get("smc.invalidations"), 0u);
}

TEST(SmcTest, PhaseShiftRevokesStaleElideVerdict) {
  // smc.phase's worker is provably aligned through another block's
  // movri constant; rewriting that constant must demote the Elide (the
  // proof's bytes changed) and the re-planned code must then handle
  // the now-misaligned accesses — all while staying byte-identical.
  guest::GuestImage Image = workloads::smcPhaseProgram(400, 200);
  Oracle O = interpretOracle(Image);
  dbt::RunResult R =
      runSmc(Image, {mda::MechanismKind::Direct, 0, false, 0, false},
             smcConfig());
  expectMatchesOracle(R, O, "smc.phase");
  EXPECT_GE(R.Counters.get("smc.reanalyses"), 1u);
  EXPECT_GE(R.Counters.get("smc.verdicts_revoked"), 1u);
}

TEST(SmcTest, TranslationBudgetAbortsTyped) {
  guest::GuestImage Image = workloads::smcChurnProgram(4, 4000);
  dbt::EngineConfig Config = smcConfig();
  Config.Budget.MaxTranslations = 64;
  dbt::RunResult R = runSmc(
      Image, {mda::MechanismKind::Direct, 0, false, 0, false}, Config);
  EXPECT_EQ(R.Error, dbt::RunError::BudgetTranslations);
}

TEST(SmcTest, CodeBytesBudgetBoundsEmissionAcrossFlushes) {
  guest::GuestImage Image = workloads::smcChurnProgram(4, 4000);
  dbt::EngineConfig Config = smcConfig();
  Config.Budget.MaxCodeBytes = 32768;
  dbt::RunResult R = runSmc(
      Image, {mda::MechanismKind::Direct, 0, false, 0, false}, Config);
  EXPECT_EQ(R.Error, dbt::RunError::BudgetCodeBytes);
  // The ceiling is checked after each translation/stub, so emission may
  // overshoot by at most one translation's worth of code — bounded, the
  // whole point against a flush-and-refill adversary.
  EXPECT_LE(R.Counters.get("budget.code_bytes_emitted"),
            Config.Budget.MaxCodeBytes + 4096);
}

TEST(SmcTest, ChurnBudgetAbortsTyped) {
  guest::GuestImage Image = workloads::smcChurnProgram(4, 4000);
  dbt::EngineConfig Config = smcConfig();
  Config.Budget.MaxChurn = 128;
  dbt::RunResult R = runSmc(
      Image, {mda::MechanismKind::Direct, 0, false, 0, false}, Config);
  EXPECT_EQ(R.Error, dbt::RunError::BudgetChurn);
}

TEST(SmcTest, ChurnPinDegradesInsteadOfAborting) {
  // The per-block pin is containment, not abort: rewritten-too-often
  // blocks drop to the interpreter (where SMC is free) and the run
  // still completes byte-identically.
  guest::GuestImage Image = workloads::smcChurnProgram(3, 250);
  Oracle O = interpretOracle(Image);
  dbt::EngineConfig Config = smcConfig();
  Config.Budget.SmcChurnPinLimit = 4;
  dbt::RunResult R = runSmc(
      Image, {mda::MechanismKind::Direct, 0, false, 0, false}, Config);
  expectMatchesOracle(R, O, "smc.churn pinned");
  EXPECT_GT(R.Counters.get("smc.churn_pins"), 0u);
}
