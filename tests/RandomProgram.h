//===- tests/RandomProgram.h - Random guest program generator --*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic random-program generator shared by the fuzz-style
/// differential tests.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_TESTS_RANDOMPROGRAM_H
#define MDABT_TESTS_RANDOMPROGRAM_H

#include "guest/Assembler.h"
#include "support/RNG.h"

#include <vector>

namespace mdabt {
namespace testutil {

/// Generates a random but well-formed guest program.
///
/// Register discipline: edi (7) permanently holds the data-buffer base;
/// esi (6) is the loop counter register; esp (4) is never a destination.
/// Scratch registers are eax..ebp minus esp.
class RandomProgram {
public:
  explicit RandomProgram(uint64_t Seed) : R(Seed), B("fuzz") {}

  guest::GuestImage build() {
    using namespace guest;
    Buffer = B.dataReserve(128 * 1024, 8);
    // Give the data segment deterministic non-zero contents.
    for (int I = 0; I != 64; ++I)
      B.dataU64(R.next());

    B.movri(7, static_cast<int32_t>(Buffer));

    // Pre-declare leaf functions.
    unsigned NumFuncs = 1 + static_cast<unsigned>(R.below(2));
    for (unsigned F = 0; F != NumFuncs; ++F)
      Funcs.push_back(B.newLabel());

    unsigned Segments = 3 + static_cast<unsigned>(R.below(5));
    for (unsigned S = 0; S != Segments; ++S) {
      switch (R.below(4)) {
      case 0:
        emitStraightLine(4 + R.below(10));
        break;
      case 1:
        emitLoop();
        break;
      case 2:
        emitDiamond();
        break;
      case 3:
        B.call(Funcs[R.below(Funcs.size())]);
        break;
      }
    }
    // Make every register observable.
    for (uint8_t G = 0; G != guest::NumGPR; ++G)
      B.chk(G);
    for (uint8_t Q = 0; Q != guest::NumQReg; ++Q)
      B.qchk(Q);
    B.halt();

    // Leaf function bodies.
    for (guest::ProgramBuilder::Label F : Funcs) {
      B.bind(F);
      emitStraightLine(3 + R.below(6));
      B.ret();
    }
    return B.build();
  }

private:
  /// A scratch GPR that is safe to clobber (not esp/esi/edi).
  uint8_t scratchReg() {
    static const uint8_t Regs[] = {0, 1, 2, 3, 5};
    return Regs[R.below(5)];
  }

  /// Any GPR as a source.
  uint8_t sourceReg() { return static_cast<uint8_t>(R.below(8)); }

  void emitMemoryOp() {
    using namespace guest;
    unsigned SizeIdx = R.below(4);
    int32_t Disp = static_cast<int32_t>(R.below(60000));
    Mem M = mem(7, Disp);
    if (R.chance(0.5)) {
      uint8_t Idx = scratchReg();
      B.andi(Idx, 0x3ff); // bound the index
      M = memIdx(7, Idx, static_cast<uint8_t>(R.below(4)), Disp);
    }
    uint8_t Data = scratchReg();
    uint8_t QData = static_cast<uint8_t>(R.below(guest::NumQReg));
    switch (SizeIdx) {
    case 0:
      R.chance(0.5) ? B.ldb(Data, M) : B.stb(M, Data);
      break;
    case 1:
      R.chance(0.5) ? B.ldw(Data, M) : B.stw(M, Data);
      break;
    case 2:
      R.chance(0.5) ? B.ldl(Data, M) : B.stl(M, Data);
      break;
    case 3:
      R.chance(0.5) ? B.ldq(QData, M) : B.stq(M, QData);
      break;
    }
  }

  void emitAluOp() {
    using namespace guest;
    uint8_t Dst = scratchReg();
    uint8_t Src = sourceReg();
    int32_t Imm = static_cast<int32_t>(R.next());
    switch (R.below(12)) {
    case 0:
      B.movri(Dst, Imm);
      break;
    case 1:
      B.add(Dst, Src);
      break;
    case 2:
      B.sub(Dst, Src);
      break;
    case 3:
      B.mul(Dst, Src);
      break;
    case 4:
      B.and_(Dst, Src);
      break;
    case 5:
      B.or_(Dst, Src);
      break;
    case 6:
      B.xor_(Dst, Src);
      break;
    case 7:
      B.shli(Dst, static_cast<int32_t>(R.below(32)));
      break;
    case 8:
      B.shri(Dst, static_cast<int32_t>(R.below(32)));
      break;
    case 9:
      B.sari(Dst, static_cast<int32_t>(R.below(32)));
      break;
    case 10:
      B.addi(Dst, Imm);
      break;
    case 11:
      B.xori(Dst, Imm);
      break;
    }
  }

  void emitQOp() {
    using namespace guest;
    uint8_t Dst = static_cast<uint8_t>(R.below(guest::NumQReg));
    uint8_t Src = static_cast<uint8_t>(R.below(guest::NumQReg));
    switch (R.below(6)) {
    case 0:
      B.qmovi(Dst, static_cast<int32_t>(R.next()));
      break;
    case 1:
      B.qadd(Dst, Src);
      break;
    case 2:
      B.qaddi(Dst, static_cast<int32_t>(R.next()));
      break;
    case 3:
      B.qxor(Dst, Src);
      break;
    case 4:
      B.gtoq(Dst, sourceReg());
      break;
    case 5:
      B.qtog(scratchReg(), Src);
      break;
    }
  }

  void emitStraightLine(uint64_t Ops) {
    for (uint64_t I = 0; I != Ops; ++I) {
      switch (R.below(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
        emitMemoryOp();
        break;
      case 4:
      case 5:
      case 6:
      case 7:
        emitAluOp();
        break;
      case 8:
        emitQOp();
        break;
      case 9:
        B.chk(sourceReg());
        break;
      }
    }
  }

  void emitLoop() {
    using namespace guest;
    uint32_t Iters = 5 + static_cast<uint32_t>(R.below(60));
    B.movri(6, static_cast<int32_t>(Iters));
    ProgramBuilder::Label Top = B.here();
    emitStraightLine(3 + R.below(8));
    B.subi(6, 1);
    B.cmpi(6, 0);
    B.jcc(Cond::Ne, Top);
  }

  void emitDiamond() {
    using namespace guest;
    static const Cond Conds[] = {Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge,
                                 Cond::Le, Cond::Gt, Cond::B,  Cond::Ae};
    ProgramBuilder::Label Else = B.newLabel();
    ProgramBuilder::Label End = B.newLabel();
    B.cmpi(sourceReg(), static_cast<int32_t>(R.next()));
    B.jcc(Conds[R.below(8)], Else);
    emitStraightLine(2 + R.below(5));
    B.jmp(End);
    B.bind(Else);
    emitStraightLine(2 + R.below(5));
    B.bind(End);
  }

  RNG R;
  guest::ProgramBuilder B;
  uint32_t Buffer = 0;
  std::vector<guest::ProgramBuilder::Label> Funcs;
};


} // namespace testutil
} // namespace mdabt

#endif // MDABT_TESTS_RANDOMPROGRAM_H
