//===- tests/extensions_test.cpp - Section IV-D extension tests -----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the two mechanisms the paper describes in section IV-D but
/// does not evaluate: block-granularity multi-version code and the
/// "truly adaptive" revertible exception stubs (Fig. 8, right side).
/// Both must preserve the differential-correctness invariant, and their
/// distinguishing behaviours (single check per block; revert-and-repatch
/// cycles) must be observable in the counters.
///
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "mda/Policies.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::testutil;

namespace {

dbt::RunResult runDpeh(const guest::GuestImage &Image,
                       const mda::DpehOptions &Opts,
                       uint32_t Threshold = 50) {
  mda::DpehPolicy Policy(Threshold, Opts);
  dbt::Engine Engine(Image, Policy);
  return Engine.run();
}

/// A block with several mixed-alignment sites sharing one base pointer:
/// the block-granularity assumption ("addresses of MDAs usually follow
/// the same pattern") holds exactly.
guest::GuestImage sharedPatternProgram(uint32_t Iters) {
  using namespace guest;
  ProgramBuilder B("shared-pattern");
  uint32_t Buf = B.dataReserve(8192, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(1, 0);
  ProgramBuilder::Label Loop = B.here();
  B.movrr(5, 1);
  B.andi(5, 1); // bump = i & 1
  B.movrr(3, 0);
  B.add(3, 5);
  B.stl(memIdx(3, 1, 2, 0), 1);
  B.ldl(2, memIdx(3, 1, 2, 0));
  B.stl(memIdx(3, 1, 2, 2048), 2);
  B.ldl(2, memIdx(3, 1, 2, 2048));
  B.stl(memIdx(3, 1, 2, 4096), 2);
  B.chk(2);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(Cond::B, Loop);
  B.halt();
  return B.build();
}

/// A program whose hot site is aligned, turns misaligned for a window,
/// then becomes aligned again — the case the revertible stub targets.
guest::GuestImage alignmentWindowProgram(uint32_t Iters, uint32_t MisFrom,
                                         uint32_t MisTo) {
  using namespace guest;
  ProgramBuilder B("alignment-window");
  uint32_t Buf = B.dataReserve(4096, 8);
  uint32_t Slot = B.dataU32(Buf);
  B.movri(6, 0);
  ProgramBuilder::Label Loop = B.here();
  // if (i == MisFrom) ++*slot;  if (i == MisTo) --*slot;
  for (int Phase = 0; Phase != 2; ++Phase) {
    ProgramBuilder::Label Skip = B.newLabel();
    B.cmpi(6, static_cast<int32_t>(Phase == 0 ? MisFrom : MisTo));
    B.jcc(Cond::Ne, Skip);
    B.movri(3, static_cast<int32_t>(Slot));
    B.ldl(0, mem(3, 0));
    B.addi(0, Phase == 0 ? 1 : -1);
    B.stl(mem(3, 0), 0);
    B.bind(Skip);
  }
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.movri(2, 0x77);
  B.stl(mem(0, 0), 2);
  B.ldl(2, mem(0, 0));
  B.chk(2);
  B.addi(6, 1);
  B.cmpi(6, static_cast<int32_t>(Iters));
  B.jcc(Cond::B, Loop);
  B.halt();
  return B.build();
}

} // namespace

TEST(BlockMvTest, MatchesOracleAndNeverTraps) {
  guest::GuestImage Image = sharedPatternProgram(600);
  Oracle O = interpretOracle(Image);
  mda::DpehOptions Opts;
  Opts.MultiVersion = true;
  Opts.MvBlockGranularity = true;
  dbt::RunResult R = runDpeh(Image, Opts);
  expectMatchesOracle(R, O, "dpeh+mv-block");
  EXPECT_EQ(R.Counters.get("dbt.fault_traps"), 0u);
}

TEST(BlockMvTest, CheaperThanPerInstructionChecks) {
  // Five multi-version sites in one block: block granularity pays one
  // check where per-instruction pays five.
  guest::GuestImage Image = sharedPatternProgram(3000);
  mda::DpehOptions PerInst;
  PerInst.MultiVersion = true;
  mda::DpehOptions PerBlock = PerInst;
  PerBlock.MvBlockGranularity = true;
  dbt::RunResult RInst = runDpeh(Image, PerInst);
  dbt::RunResult RBlock = runDpeh(Image, PerBlock);
  EXPECT_EQ(RInst.Checksum, RBlock.Checksum);
  EXPECT_LT(RBlock.Counters.get("host.insts"),
            RInst.Counters.get("host.insts"));
}

TEST(BlockMvTest, SafetyNetWhenPatternAssumptionFails) {
  // Two sites with *opposite* alignment patterns: the block check
  // follows the first site, so the second site misaligns on the
  // "aligned" path.  Its plain op traps and gets patched — slower, but
  // still correct.
  using namespace guest;
  ProgramBuilder B("anti-pattern");
  uint32_t Buf = B.dataReserve(8192, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(1, 0);
  ProgramBuilder::Label Loop = B.here();
  B.movrr(5, 1);
  B.andi(5, 1); // bump A = i & 1
  B.movrr(3, 0);
  B.add(3, 5);
  B.stl(memIdx(3, 1, 2, 0), 1); // site A: pattern i&1
  // bump B = (i & 3) == 0: aligned-dominated (so the policy picks
  // multi-version), but misaligned exactly on even iterations where the
  // block check (driven by site A) selects the plain copy.
  B.movrr(5, 1);
  B.andi(5, 3);
  B.addi(5, 3);
  B.shri(5, 2);
  B.xori(5, 1);
  B.movrr(3, 0);
  B.add(3, 5);
  B.stl(memIdx(3, 1, 2, 4096), 1); // site B: defies the shared pattern
  B.addi(1, 1);
  B.cmpi(1, 400);
  B.jcc(Cond::B, Loop);
  B.chk(1);
  B.halt();
  GuestImage Image = B.build();
  Oracle O = interpretOracle(Image);
  mda::DpehOptions Opts;
  Opts.MultiVersion = true;
  Opts.MvBlockGranularity = true;
  dbt::RunResult R = runDpeh(Image, Opts);
  expectMatchesOracle(R, O, "dpeh+mv-block anti-pattern");
  // The exception handler caught the assumption violation.
  EXPECT_GE(R.Counters.get("dbt.fault_traps"), 1u);
}

TEST(AdaptiveRevertTest, RevertsAfterAlignedRun) {
  // Misaligned window [300, 600) in a 3000-iteration loop: the adaptive
  // stub should revert the patch soon after iteration 600 + threshold.
  guest::GuestImage Image = alignmentWindowProgram(3000, 300, 600);
  Oracle O = interpretOracle(Image);
  mda::DpehOptions Opts;
  Opts.AdaptiveRevert = true;
  Opts.RevertThreshold = 64;
  dbt::RunResult R = runDpeh(Image, Opts);
  expectMatchesOracle(R, O, "dpeh+adaptive");
  EXPECT_GE(R.Counters.get("dbt.reverts"), 1u);
  EXPECT_GE(R.Counters.get("dbt.patches"), 1u);
}

TEST(AdaptiveRevertTest, WithoutAdaptiveNoReverts) {
  guest::GuestImage Image = alignmentWindowProgram(3000, 300, 600);
  dbt::RunResult R = runDpeh(Image, mda::DpehOptions());
  EXPECT_EQ(R.Counters.get("dbt.reverts"), 0u);
}

TEST(AdaptiveRevertTest, RepatchesWhenMisalignmentReturns) {
  // Two misaligned windows: after the first revert, the second window
  // traps again and re-patches — the full adaptivity loop.
  using namespace guest;
  ProgramBuilder B("two-windows");
  uint32_t Buf = B.dataReserve(4096, 8);
  uint32_t Slot = B.dataU32(Buf);
  B.movri(6, 0);
  ProgramBuilder::Label Loop = B.here();
  const uint32_t Edges[] = {300, 600, 1800, 2100};
  const int32_t Deltas[] = {1, -1, 1, -1};
  for (int E = 0; E != 4; ++E) {
    ProgramBuilder::Label Skip = B.newLabel();
    B.cmpi(6, static_cast<int32_t>(Edges[E]));
    B.jcc(Cond::Ne, Skip);
    B.movri(3, static_cast<int32_t>(Slot));
    B.ldl(0, mem(3, 0));
    B.addi(0, Deltas[E]);
    B.stl(mem(3, 0), 0);
    B.bind(Skip);
  }
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.movri(2, 0x99);
  B.stl(mem(0, 0), 2);
  B.ldl(2, mem(0, 0));
  B.chk(2);
  B.addi(6, 1);
  B.cmpi(6, 3000);
  B.jcc(Cond::B, Loop);
  B.halt();
  GuestImage Image = B.build();
  Oracle O = interpretOracle(Image);
  mda::DpehOptions Opts;
  Opts.AdaptiveRevert = true;
  Opts.RevertThreshold = 64;
  dbt::RunResult R = runDpeh(Image, Opts);
  expectMatchesOracle(R, O, "dpeh+adaptive two-windows");
  EXPECT_GE(R.Counters.get("dbt.reverts"), 1u);
  // The store and load sites trap in both windows.
  EXPECT_GE(R.Counters.get("dbt.fault_traps"), 3u);
}

TEST(AdaptiveRevertTest, StubOverheadIsVisible) {
  // On a permanently-misaligned site, the adaptive stub's bookkeeping
  // can only cost cycles relative to the plain stub (the paper's
  // conclusion that the truly adaptive method "may not be worth
  // pursuing").
  guest::GuestImage Image = alignmentWindowProgram(3000, 100, 3000);
  mda::DpehOptions Plain;
  mda::DpehOptions Adaptive;
  Adaptive.AdaptiveRevert = true;
  dbt::RunResult RPlain = runDpeh(Image, Plain);
  dbt::RunResult RAdaptive = runDpeh(Image, Adaptive);
  EXPECT_EQ(RPlain.Checksum, RAdaptive.Checksum);
  EXPECT_GT(RAdaptive.Counters.get("host.insts"),
            RPlain.Counters.get("host.insts"));
  EXPECT_EQ(RAdaptive.Counters.get("dbt.reverts"), 0u);
}

TEST(ExtensionsFuzzTest, AdaptiveAndBlockMvMatchOracle) {
  for (uint64_t Seed = 100; Seed != 120; ++Seed) {
    RandomProgram Gen(Seed);
    guest::GuestImage Image = Gen.build();
    Oracle O = interpretOracle(Image);

    mda::DpehOptions Adaptive;
    Adaptive.AdaptiveRevert = true;
    Adaptive.RevertThreshold = 8;
    dbt::RunResult RA = runDpeh(Image, Adaptive, /*Threshold=*/10);
    expectMatchesOracle(RA, O,
                        ("adaptive seed " + std::to_string(Seed)).c_str());

    mda::DpehOptions BlockMv;
    BlockMv.MultiVersion = true;
    BlockMv.MvBlockGranularity = true;
    BlockMv.RetranslateThreshold = 2;
    dbt::RunResult RB = runDpeh(Image, BlockMv, /*Threshold=*/10);
    expectMatchesOracle(RB, O,
                        ("block-mv seed " + std::to_string(Seed)).c_str());
  }
}
