//===- tests/analysis_test.cpp - Alignment analysis + verifier tests ------===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the congruence lattice (join/transfer corners and the
/// verdict rule), whole-program analysis verdicts on hand-built guest
/// programs, a differential property test over the random-program
/// corpus (no provably-aligned op ever misaligns at runtime, no
/// provably-misaligned op ever runs aligned), engine equivalence with
/// the analysis enabled, and structural checks of the host code-cache
/// verifier.
///
//===----------------------------------------------------------------------===//

#include "analysis/AlignmentAnalysis.h"
#include "analysis/HostVerifier.h"
#include "dbt/Engine.h"
#include "guest/Assembler.h"
#include "guest/Interpreter.h"
#include "guest/MdaCensus.h"
#include "host/HostAssembler.h"
#include "host/MdaSequences.h"
#include "mda/PolicyFactory.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

using namespace mdabt;
using analysis::AbsVal;
using analysis::AlignVerdict;

namespace {

AbsVal exact(uint32_t V) { return AbsVal::exact(V); }
AbsVal cong(uint32_t M, uint32_t R) { return AbsVal::congruent(M, R); }

//===----------------------------------------------------------------------===//
// Lattice: join
//===----------------------------------------------------------------------===//

TEST(AlignLattice, JoinIdentities) {
  EXPECT_EQ(analysis::join(AbsVal::bottom(), exact(12)), exact(12));
  EXPECT_EQ(analysis::join(exact(12), AbsVal::bottom()), exact(12));
  EXPECT_EQ(analysis::join(AbsVal::top(), cong(8, 3)), AbsVal::top());
  EXPECT_EQ(analysis::join(exact(12), exact(12)), exact(12));
}

TEST(AlignLattice, JoinExactsDegradeToCongruence) {
  // Agree mod 8.
  EXPECT_EQ(analysis::join(exact(8), exact(16)), cong(8, 0));
  EXPECT_EQ(analysis::join(exact(4), exact(12)), cong(8, 4));
  // Agree only mod 4 / mod 2.
  EXPECT_EQ(analysis::join(exact(4), exact(8)), cong(4, 0));
  EXPECT_EQ(analysis::join(exact(2), exact(4)), cong(2, 0));
  // No common residue at all.
  EXPECT_EQ(analysis::join(exact(1), exact(2)), AbsVal::top());
}

TEST(AlignLattice, JoinCongruences) {
  // Coarser modulus wins.
  EXPECT_EQ(analysis::join(cong(8, 0), cong(4, 0)), cong(4, 0));
  // Same modulus, different residue: drop to where they agree.
  EXPECT_EQ(analysis::join(cong(8, 1), cong(8, 5)), cong(4, 1));
  EXPECT_EQ(analysis::join(cong(2, 0), cong(2, 1)), AbsVal::top());
  // Exact against congruence.
  EXPECT_EQ(analysis::join(exact(9), cong(8, 1)), cong(8, 1));
}

//===----------------------------------------------------------------------===//
// Lattice: transfer functions
//===----------------------------------------------------------------------===//

TEST(AlignLattice, AddSub) {
  EXPECT_EQ(analysis::absAdd(exact(3), exact(5)), exact(8));
  // 32-bit wrap preserves both the fold and the congruence (8 | 2^32).
  EXPECT_EQ(analysis::absAdd(exact(0xffffffffu), exact(1)), exact(0));
  EXPECT_EQ(analysis::absAdd(cong(8, 1), exact(3)), cong(8, 4));
  EXPECT_EQ(analysis::absAdd(cong(4, 1), cong(8, 2)), cong(4, 3));
  EXPECT_EQ(analysis::absAdd(AbsVal::top(), exact(1)), AbsVal::top());
  EXPECT_EQ(analysis::absSub(cong(8, 1), exact(2)), cong(8, 7));
  EXPECT_EQ(analysis::absSub(exact(5), exact(7)), exact(0xfffffffeu));
}

TEST(AlignLattice, Mul) {
  EXPECT_EQ(analysis::absMul(exact(6), exact(7)), exact(42));
  // Multiplying by 4 sharpens a mod-2 fact to mod-8.
  EXPECT_EQ(analysis::absMul(cong(2, 1), exact(4)), cong(8, 4));
  // Any value times 8 is 0 mod 8.
  EXPECT_EQ(analysis::absMul(AbsVal::top(), exact(8)), cong(8, 0));
  EXPECT_EQ(analysis::absMul(AbsVal::top(), exact(0)), exact(0));
  EXPECT_EQ(analysis::absMul(AbsVal::top(), AbsVal::top()), AbsVal::top());
}

TEST(AlignLattice, AndOrXor) {
  EXPECT_EQ(analysis::absAnd(exact(0xff), exact(0x0f)), exact(0x0f));
  // Masking the low bits to zero aligns any value.
  EXPECT_EQ(analysis::absAnd(AbsVal::top(), exact(0xfffffff8u)),
            cong(8, 0));
  EXPECT_EQ(analysis::absAnd(AbsVal::top(), cong(4, 0)), cong(4, 0));
  EXPECT_EQ(analysis::absOr(cong(8, 0), cong(8, 1)), cong(8, 1));
  EXPECT_EQ(analysis::absXor(cong(4, 1), cong(8, 2)), cong(4, 3));
  EXPECT_EQ(analysis::absXor(AbsVal::top(), exact(1)), AbsVal::top());
}

TEST(AlignLattice, Shifts) {
  EXPECT_EQ(analysis::absShl(exact(3), exact(2)), exact(12));
  // Shifting anything left by >= 3 makes it 0 mod 8.
  EXPECT_EQ(analysis::absShl(AbsVal::top(), exact(3)), cong(8, 0));
  EXPECT_EQ(analysis::absShl(cong(2, 1), exact(1)), cong(4, 2));
  // Right shifts destroy low-bit knowledge.
  EXPECT_EQ(analysis::absShr(AbsVal::top(), exact(1)), AbsVal::top());
  EXPECT_EQ(analysis::absShr(exact(8), exact(2)), exact(2));
  EXPECT_EQ(analysis::absSar(exact(0x80000000u), exact(31)),
            exact(0xffffffffu));
}

TEST(AlignLattice, VerdictRule) {
  EXPECT_EQ(analysis::verdictOf(exact(4), 4), AlignVerdict::Aligned);
  EXPECT_EQ(analysis::verdictOf(exact(6), 4), AlignVerdict::Misaligned);
  EXPECT_EQ(analysis::verdictOf(cong(8, 0), 8), AlignVerdict::Aligned);
  EXPECT_EQ(analysis::verdictOf(cong(4, 2), 4), AlignVerdict::Misaligned);
  // Mod 2 with residue 1 cannot be 4-aligned (4-aligned => even).
  EXPECT_EQ(analysis::verdictOf(cong(2, 1), 4), AlignVerdict::Misaligned);
  // Mod 2 residue 0 says nothing about 4-alignment.
  EXPECT_EQ(analysis::verdictOf(cong(2, 0), 4), AlignVerdict::Unknown);
  EXPECT_EQ(analysis::verdictOf(AbsVal::top(), 4), AlignVerdict::Unknown);
  // Byte accesses never misalign; report Unknown, never a proof.
  EXPECT_EQ(analysis::verdictOf(exact(5), 1), AlignVerdict::Unknown);
}

//===----------------------------------------------------------------------===//
// Whole-program verdicts
//===----------------------------------------------------------------------===//

/// The only site of \p Ana, asserted unique.
const analysis::SiteInfo &onlySite(const analysis::AnalysisResult &Ana) {
  EXPECT_EQ(Ana.Sites.size(), 1u);
  return Ana.Sites.begin()->second;
}

TEST(AlignAnalysis, AlignedStrideLoopIsProvablyAligned) {
  guest::ProgramBuilder B("aligned-loop");
  uint32_t Buf = B.dataReserve(256, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(1, 0);
  guest::ProgramBuilder::Label Top = B.here();
  B.ldl(2, guest::memIdx(0, 1, 0, 0));
  B.addi(1, 4);
  B.cmpi(1, 64);
  B.jcc(guest::Cond::Lt, Top);
  B.halt();

  analysis::AnalysisResult Ana = analysis::analyzeAlignment(B.build());
  EXPECT_FALSE(Ana.Poisoned);
  const analysis::SiteInfo &S = onlySite(Ana);
  EXPECT_EQ(S.Verdict, AlignVerdict::Aligned);
  EXPECT_EQ(S.Size, 4u);
  EXPECT_EQ(Ana.NumAligned, 1u);
}

TEST(AlignAnalysis, ConstantOffBaseIsProvablyMisaligned) {
  guest::ProgramBuilder B("mis");
  uint32_t Buf = B.dataReserve(64, 8);
  B.movri(0, static_cast<int32_t>(Buf + 1));
  B.movri(2, 7);
  B.stl(guest::mem(0, 0), 2);
  B.halt();

  analysis::AnalysisResult Ana = analysis::analyzeAlignment(B.build());
  EXPECT_FALSE(Ana.Poisoned);
  const analysis::SiteInfo &S = onlySite(Ana);
  EXPECT_EQ(S.Verdict, AlignVerdict::Misaligned);
  EXPECT_TRUE(S.IsStore);
  EXPECT_EQ(Ana.NumMisaligned, 1u);
}

TEST(AlignAnalysis, RuntimeLoadedBaseIsUnknown) {
  guest::ProgramBuilder B("slot");
  uint32_t Buf = B.dataReserve(64, 8);
  uint32_t Slot = B.dataU32(Buf + 1);
  B.movri(0, static_cast<int32_t>(Slot));
  B.ldl(1, guest::mem(0, 0)); // provably aligned (the slot itself)
  B.ldl(2, guest::mem(1, 0)); // through the loaded value: unknown
  B.halt();

  analysis::AnalysisResult Ana = analysis::analyzeAlignment(B.build());
  EXPECT_FALSE(Ana.Poisoned);
  ASSERT_EQ(Ana.Sites.size(), 2u);
  EXPECT_EQ(Ana.NumAligned, 1u);
  EXPECT_EQ(Ana.NumUnknown, 1u);
}

TEST(AlignAnalysis, CallReturnFlowsThroughFunctions) {
  guest::ProgramBuilder B("callret");
  uint32_t Buf = B.dataReserve(64, 8);
  guest::ProgramBuilder::Label F = B.newLabel();
  B.movri(0, static_cast<int32_t>(Buf));
  B.call(F);
  B.halt();
  B.bind(F);
  B.stl(guest::mem(0, 4), 0);
  B.ret();

  analysis::AnalysisResult Ana = analysis::analyzeAlignment(B.build());
  EXPECT_FALSE(Ana.Poisoned);
  const analysis::SiteInfo &S = onlySite(Ana);
  EXPECT_EQ(S.Verdict, AlignVerdict::Aligned);
  EXPECT_GE(Ana.Blocks, 2u);
}

TEST(AlignAnalysis, NonConstantIndirectJumpPoisons) {
  guest::ProgramBuilder B("poison");
  uint32_t Slot = B.dataU32(0x1000);
  B.movri(0, static_cast<int32_t>(Slot));
  B.ldl(1, guest::mem(0, 0));
  B.jmpr(1);
  B.halt();

  analysis::AnalysisResult Ana = analysis::analyzeAlignment(B.build());
  EXPECT_TRUE(Ana.Poisoned);
  // A poisoned result must claim nothing.
  EXPECT_TRUE(Ana.Sites.empty());
  EXPECT_EQ(Ana.NumAligned, 0u);
  EXPECT_EQ(Ana.NumMisaligned, 0u);
}

//===----------------------------------------------------------------------===//
// Differential property: verdicts vs observed execution
//===----------------------------------------------------------------------===//

/// Records, per static instruction, how often it ran aligned and
/// misaligned — the ground truth the verdicts are checked against.
struct AlignRecorder : guest::InterpObserver {
  struct Obs {
    uint64_t Aligned = 0;
    uint64_t Mis = 0;
  };
  std::unordered_map<uint32_t, Obs> Sites;
  void onMemAccess(uint32_t InstPc, uint32_t Addr, unsigned Size,
                   bool /*IsStore*/) override {
    Obs &O = Sites[InstPc];
    if (guest::isMisaligned(Addr, Size))
      ++O.Mis;
    else
      ++O.Aligned;
  }
};

TEST(AlignAnalysisProperty, VerdictsNeverContradictExecution) {
  for (uint64_t Seed = 1; Seed <= 80; ++Seed) {
    guest::GuestImage Image = testutil::RandomProgram(Seed).build();
    analysis::AnalysisResult Ana = analysis::analyzeAlignment(Image);

    guest::GuestMemory Mem;
    Mem.loadImage(Image);
    guest::GuestCPU Cpu;
    Cpu.reset(Image);
    AlignRecorder Rec;
    guest::Interpreter Interp(Mem);
    Interp.setObserver(&Rec);
    Interp.run(Cpu);

    for (const auto &KV : Rec.Sites) {
      auto It = Ana.Sites.find(KV.first);
      if (It == Ana.Sites.end())
        continue;
      if (It->second.Verdict == AlignVerdict::Aligned) {
        EXPECT_EQ(KV.second.Mis, 0u)
            << "seed " << Seed << " pc 0x" << std::hex << KV.first
            << ": provably-aligned site misaligned at runtime";
      }
      if (It->second.Verdict == AlignVerdict::Misaligned) {
        EXPECT_EQ(KV.second.Aligned, 0u)
            << "seed " << Seed << " pc 0x" << std::hex << KV.first
            << ": provably-misaligned site ran aligned";
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Engine integration: analysis on vs off
//===----------------------------------------------------------------------===//

TEST(AlignAnalysisEngine, AnalysisPreservesArchitecturalState) {
  using mda::MechanismKind;
  const mda::PolicySpec Specs[] = {
      {MechanismKind::ExceptionHandling, 50, false, 0, false},
      {MechanismKind::Dpeh, 50, false, 0, false},
  };
  for (uint64_t Seed : {3u, 7u, 11u, 19u}) {
    guest::GuestImage Image = testutil::RandomProgram(Seed).build();
    for (const mda::PolicySpec &Spec : Specs) {
      dbt::RunResult Off, On;
      {
        std::unique_ptr<dbt::MdaPolicy> P = mda::makePolicy(Spec, &Image);
        Off = dbt::Engine(Image, *P).run();
      }
      {
        std::unique_ptr<dbt::MdaPolicy> P = mda::makePolicy(Spec, &Image);
        dbt::EngineConfig Config;
        Config.Analysis = true;
        Config.Verify = true; // and the verifier must stay quiet
        On = dbt::Engine(Image, *P, Config).run();
      }
      ASSERT_TRUE(Off.completed());
      ASSERT_TRUE(On.completed()) << dbt::runErrorName(On.Error);
      EXPECT_EQ(On.Checksum, Off.Checksum) << "seed " << Seed;
      EXPECT_EQ(On.MemoryHash, Off.MemoryHash) << "seed " << Seed;
      // Soundness implies the analysis can only remove trap exposure.
      EXPECT_LE(On.Counters.get("dbt.fault_traps"),
                Off.Counters.get("dbt.fault_traps"));
      EXPECT_GT(On.Counters.get("verify.passes"), 0u);
      EXPECT_EQ(On.Counters.get("verify.issues"), 0u);
    }
  }
}

//===----------------------------------------------------------------------===//
// Host code-cache verifier
//===----------------------------------------------------------------------===//

TEST(HostVerifier, CleanRegionPasses) {
  host::CodeSpace Code;
  host::HostAssembler Asm(Code);
  Asm.opl(host::HostOp::Addl, 1, 4, 2);
  Asm.mov(2, 3);
  uint32_t Exit = Asm.emit(host::srvInst(host::SrvFunc::Exit));
  Asm.finish();

  analysis::VerifierInput In;
  In.Blocks.push_back({0, Code.size(), {}, {}, {Exit}});
  analysis::VerifyReport R = analysis::verifyCodeSpace(Code, In);
  EXPECT_TRUE(R.ok()) << (R.Issues.empty()
                              ? ""
                              : analysis::verifyIssueToString(R.Issues[0]));
  EXPECT_GT(R.WordsChecked, 0u);
}

TEST(HostVerifier, BranchOutsideLiveRegionsFlagged) {
  host::CodeSpace Code;
  host::HostAssembler Asm(Code);
  Asm.brTo(100); // way past the end of the arena
  uint32_t Exit = Asm.emit(host::srvInst(host::SrvFunc::Exit));
  Asm.finish();

  analysis::VerifierInput In;
  In.Blocks.push_back({0, Code.size(), {}, {}, {Exit}});
  analysis::VerifyReport R = analysis::verifyCodeSpace(Code, In);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Issues[0].Kind, analysis::VerifyIssueKind::BranchTargetBad);
}

TEST(HostVerifier, TornWordInLiveRegionFlagged) {
  host::CodeSpace Code;
  host::HostAssembler Asm(Code);
  Asm.opl(host::HostOp::Addl, 1, 4, 2);
  uint32_t Victim = Asm.mov(2, 3);
  uint32_t Exit = Asm.emit(host::srvInst(host::SrvFunc::Exit));
  Asm.finish();
  Code.patch(Victim, 12u << 26); // torn write: invalid opcode

  analysis::VerifierInput In;
  In.Blocks.push_back({0, Code.size(), {}, {}, {Exit}});
  analysis::VerifyReport R = analysis::verifyCodeSpace(Code, In);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Issues[0].Kind, analysis::VerifyIssueKind::Undecodable);
  EXPECT_EQ(R.Issues[0].Word, Victim);
}

TEST(HostVerifier, CorruptedMdaSequenceFlagged) {
  host::CodeSpace Code;
  host::HostAssembler Asm(Code);
  uint32_t SeqStart = Code.size();
  host::emitMdaLoad(Asm, 4, /*Ra=*/5, /*Rb=*/6, /*Disp=*/2);
  uint32_t Exit = Asm.emit(host::srvInst(host::SrvFunc::Exit));
  Asm.finish();
  // Clobber the middle of the sequence with a harmless-looking mov:
  // every word still decodes, but the shape is no longer the canonical
  // unaligned-load expansion.
  Code.patch(SeqStart + 2, Code.word(Exit - 1));

  analysis::VerifierInput In;
  In.Blocks.push_back({0, Code.size(), {}, {}, {Exit}});
  analysis::VerifyReport R = analysis::verifyCodeSpace(Code, In);
  ASSERT_FALSE(R.ok());
  bool SawMda = false;
  for (const analysis::VerifyIssue &I : R.Issues)
    SawMda |= I.Kind == analysis::VerifyIssueKind::MdaSequenceMalformed;
  EXPECT_TRUE(SawMda);
}

TEST(HostVerifier, BogusExitSiteFlagged) {
  host::CodeSpace Code;
  host::HostAssembler Asm(Code);
  uint32_t NotAnExit = Asm.mov(2, 3);
  Asm.emit(host::srvInst(host::SrvFunc::Exit));
  Asm.finish();

  analysis::VerifierInput In;
  In.Blocks.push_back({0, Code.size(), {}, {}, {NotAnExit}});
  analysis::VerifyReport R = analysis::verifyCodeSpace(Code, In);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Issues[0].Kind, analysis::VerifyIssueKind::ExitSiteBad);
}

} // namespace
