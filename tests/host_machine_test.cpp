//===- tests/host_machine_test.cpp - HAlpha simulator semantics -----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "host/CodeSpace.h"
#include "host/HostAssembler.h"
#include "host/HostMachine.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::host;

namespace {

/// Harness: a code space, guest memory, hierarchy and machine.
struct MachineFixture {
  CodeSpace Code;
  guest::GuestMemory Mem;
  MemoryHierarchy Hier;
  CostModel Cost;
  HostMachine Machine{Code, Mem, Hier, Cost};

  /// Run from word 0; expects a clean Halt exit.
  void runToHalt() {
    ExitInfo E = Machine.run(0);
    ASSERT_EQ(E.K, ExitInfo::Halt);
  }
};

} // namespace

TEST(HostMachineTest, OperateBasics) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 7;
  F.Machine.R[2] = 3;
  Asm.op(HostOp::Addq, 1, 2, 3);   // r3 = 10
  Asm.opl(HostOp::Mulq, 3, 6, 4);  // r4 = 60
  Asm.op(HostOp::Subq, 4, 1, 5);   // r5 = 53
  Asm.opl(HostOp::Xor, 5, 0xff, 6);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt();
  EXPECT_EQ(F.Machine.R[3], 10u);
  EXPECT_EQ(F.Machine.R[4], 60u);
  EXPECT_EQ(F.Machine.R[5], 53u);
  EXPECT_EQ(F.Machine.R[6], 53ULL ^ 0xff);
}

TEST(HostMachineTest, ZeroRegisterSemantics) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  Asm.opl(HostOp::Addq, 31, 5, 31); // write to r31 discarded
  Asm.op(HostOp::Addq, 31, 31, 1); // r1 = 0 + 0
  Asm.lda(2, 42, 31);              // r2 = 42
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.Machine.R[31] = 99; // must be ignored by reads
  F.runToHalt();
  EXPECT_EQ(F.Machine.reg(31), 0u);
  EXPECT_EQ(F.Machine.R[1], 0u);
  EXPECT_EQ(F.Machine.R[2], 42u);
}

TEST(HostMachineTest, ThirtyTwoBitOpsZeroExtend) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 0xffffffff;
  Asm.opl(HostOp::Addl, 1, 1, 2); // r2 = zext32(0x100000000) = 0
  Asm.opl(HostOp::Subl, 31, 1, 3); // r3 = zext32(0 - 1) = 0xffffffff
  F.Machine.R[4] = 0x10000;
  Asm.op(HostOp::Mull, 4, 4, 5); // r5 = zext32(2^32) = 0
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt();
  EXPECT_EQ(F.Machine.R[2], 0u);
  EXPECT_EQ(F.Machine.R[3], 0xffffffffu);
  EXPECT_EQ(F.Machine.R[5], 0u);
}

TEST(HostMachineTest, CompareFamily) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 0xffffffff; // as signed32: -1; as u64: big
  F.Machine.R[2] = 1;
  Asm.op(HostOp::Cmplt32, 1, 2, 3);  // -1 < 1 -> 1
  Asm.op(HostOp::Cmpult, 1, 2, 4);   // big < 1 -> 0
  Asm.op(HostOp::Cmpeq, 1, 1, 5);    // 1
  Asm.op(HostOp::Cmple32, 2, 2, 6);  // 1
  Asm.op(HostOp::Cmplt, 1, 2, 7);    // u64 0xffffffff as s64 positive -> 0
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt();
  EXPECT_EQ(F.Machine.R[3], 1u);
  EXPECT_EQ(F.Machine.R[4], 0u);
  EXPECT_EQ(F.Machine.R[5], 1u);
  EXPECT_EQ(F.Machine.R[6], 1u);
  EXPECT_EQ(F.Machine.R[7], 0u);
}

TEST(HostMachineTest, SextZext) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 0x80000000;
  Asm.op(HostOp::Sextl, 31, 1, 2); // r2 = 0xffffffff80000000
  Asm.op(HostOp::Zextl, 31, 2, 3); // r3 = 0x80000000
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt();
  EXPECT_EQ(F.Machine.R[2], 0xffffffff80000000ULL);
  EXPECT_EQ(F.Machine.R[3], 0x80000000ULL);
}

TEST(HostMachineTest, LoadsAndStores) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 0x1000;
  F.Machine.R[2] = 0x1122334455667788ULL;
  Asm.mem(HostOp::Stq, 2, 0, 1);
  Asm.mem(HostOp::Ldl, 3, 0, 1);  // 0x55667788
  Asm.mem(HostOp::Ldwu, 4, 2, 1); // bytes 2-3 little endian: 0x5566
  Asm.mem(HostOp::Ldbu, 5, 7, 1); // 0x11
  Asm.mem(HostOp::Stb, 5, 8, 1);
  Asm.mem(HostOp::Ldq, 6, 0, 1);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt();
  EXPECT_EQ(F.Machine.R[3], 0x55667788u);
  EXPECT_EQ(F.Machine.R[4], 0x5566u);
  EXPECT_EQ(F.Machine.R[5], 0x11u);
  EXPECT_EQ(F.Machine.R[6], 0x1122334455667788ULL);
  EXPECT_EQ(F.Mem.load(0x1008, 1), 0x11u);
}

TEST(HostMachineTest, LdqUIgnoresLowBits) {
  MachineFixture F;
  F.Mem.store(0x1000, 8, 0xcafebabedeadbeefULL);
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 0x1003; // misaligned pointer
  Asm.mem(HostOp::LdqU, 2, 0, 1);
  Asm.mem(HostOp::LdqU, 3, 7, 1); // still within the same quadword? 0x100a & ~7 = 0x1008
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt();
  EXPECT_EQ(F.Machine.R[2], 0xcafebabedeadbeefULL);
  EXPECT_EQ(F.Machine.R[3], F.Mem.load(0x1008, 8));
  EXPECT_EQ(F.Machine.Faults, 0u);
}

TEST(HostMachineTest, BranchesAndLoops) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  // r1 = 10; r2 = 0; loop: r2 += r1; r1 -= 1; bne r1, loop
  Asm.lda(1, 10, 31);
  Asm.lda(2, 0, 31);
  auto Loop = Asm.newLabel();
  Asm.bind(Loop);
  Asm.op(HostOp::Addq, 2, 1, 2);
  Asm.opl(HostOp::Subq, 1, 1, 1);
  Asm.bne(1, Loop);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt();
  EXPECT_EQ(F.Machine.R[2], 55u);
}

TEST(HostMachineTest, ConditionalBranchPredicates) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = static_cast<uint64_t>(-5LL);
  auto L1 = Asm.newLabel();
  Asm.blt(1, L1); // taken: -5 < 0
  Asm.srv(SrvFunc::Exit); // must be skipped
  Asm.bind(L1);
  auto L2 = Asm.newLabel();
  Asm.bge(31, L2); // taken: 0 >= 0
  Asm.srv(SrvFunc::Exit);
  Asm.bind(L2);
  auto L3 = Asm.newLabel();
  Asm.beq(1, L3); // not taken
  Asm.srv(SrvFunc::Halt);
  Asm.bind(L3);
  Asm.srv(SrvFunc::Exit);
  Asm.finish();
  F.runToHalt();
}

TEST(HostMachineTest, ExitReportsGuestPcAndSrvWord) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  Asm.lda(RegExitPc, 0x1234, 31);
  uint32_t SrvW = Asm.srv(SrvFunc::Exit);
  Asm.finish();
  ExitInfo E = F.Machine.run(0);
  EXPECT_EQ(E.K, ExitInfo::Exit);
  EXPECT_EQ(E.GuestPc, 0x1234u);
  EXPECT_EQ(E.SrvWord, SrvW);
}

TEST(HostMachineTest, MisalignmentTrapFixup) {
  MachineFixture F;
  F.Mem.store(0x1001, 4, 0xdeadbeef); // prepare misaligned data
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 0x1001;
  Asm.mem(HostOp::Ldl, 2, 0, 1); // misaligned -> trap
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  std::vector<FaultInfo> Seen;
  F.Machine.setFaultHandler([&](const FaultInfo &FI) {
    Seen.push_back(FI);
    return FaultAction::Fixup;
  });
  F.runToHalt();
  ASSERT_EQ(Seen.size(), 1u);
  EXPECT_EQ(Seen[0].HostPc, 0u);
  EXPECT_EQ(Seen[0].Addr, 0x1001u);
  EXPECT_EQ(Seen[0].Inst.Op, HostOp::Ldl);
  EXPECT_EQ(F.Machine.R[2], 0xdeadbeefu);
  EXPECT_EQ(F.Machine.Faults, 1u);
  EXPECT_EQ(F.Machine.Fixups, 1u);
}

TEST(HostMachineTest, MisalignedStoreFixup) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 0x1002;
  F.Machine.R[2] = 0xa1b2c3d4e5f60718ULL;
  Asm.mem(HostOp::Stq, 2, 0, 1);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt(); // default handler = fixup
  EXPECT_EQ(F.Mem.load(0x1002, 8), 0xa1b2c3d4e5f60718ULL);
  EXPECT_EQ(F.Machine.Faults, 1u);
}

TEST(HostMachineTest, AlignedAccessDoesNotTrap) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 0x1000;
  Asm.mem(HostOp::Ldl, 2, 0, 1);
  Asm.mem(HostOp::Ldq, 3, 0, 1);
  Asm.mem(HostOp::Ldwu, 4, 2, 1);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt();
  EXPECT_EQ(F.Machine.Faults, 0u);
}

TEST(HostMachineTest, TrapChargesTrapCycles) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 0x1001;
  Asm.mem(HostOp::Ldl, 2, 0, 1);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt();
  EXPECT_GE(F.Machine.Cycles,
            static_cast<uint64_t>(F.Cost.TrapCycles +
                                  F.Cost.FixupExtraCycles));
}

TEST(HostMachineTest, RetryReexecutesPatchedWord) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 0x1001;
  uint32_t FaultW = Asm.mem(HostOp::Ldl, 2, 0, 1);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.Mem.store(0x1001, 4, 0x12345678);
  F.Machine.setFaultHandler([&](const FaultInfo &FI) {
    // Patch the word into "lda r2, 7(r31)" and retry.
    EXPECT_EQ(FI.HostPc, FaultW);
    F.Code.patch(FaultW, encodeHost(memInst(HostOp::Lda, 2, 7, 31)));
    return FaultAction::Retry;
  });
  F.runToHalt();
  EXPECT_EQ(F.Machine.R[2], 7u);
  EXPECT_EQ(F.Machine.Faults, 1u);
  EXPECT_EQ(F.Machine.Fixups, 0u);
}

TEST(HostMachineTest, HandlerHaltAbandonsRun) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 0x1001;
  Asm.mem(HostOp::Stl, 2, 0, 1);
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.Machine.setFaultHandler(
      [](const FaultInfo &) { return FaultAction::Halt; });
  ExitInfo E = F.Machine.run(0);
  EXPECT_EQ(E.K, ExitInfo::Halt);
}

TEST(HostMachineTest, RunawayGuardTrips) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  auto L = Asm.newLabel();
  Asm.bind(L);
  Asm.br(L); // infinite loop
  Asm.finish();
  F.Machine.MaxInstsPerRun = 1000;
  ExitInfo E = F.Machine.run(0);
  EXPECT_EQ(E.K, ExitInfo::Limit);
}

TEST(HostMachineTest, ShiftsUse64BitAmounts) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  F.Machine.R[1] = 1;
  Asm.opl(HostOp::Sll, 1, 40, 2); // r2 = 1 << 40
  Asm.opl(HostOp::Srl, 2, 8, 3);  // r3 = 1 << 32
  F.Machine.R[4] = 0x8000000000000000ULL;
  Asm.opl(HostOp::Sra, 4, 63, 5); // r5 = all ones
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt();
  EXPECT_EQ(F.Machine.R[2], 1ULL << 40);
  EXPECT_EQ(F.Machine.R[3], 1ULL << 32);
  EXPECT_EQ(F.Machine.R[5], ~0ULL);
}

TEST(HostMachineTest, MaterializeHelpers) {
  const uint32_t Values[] = {0,          1,          0x7fff,     0x8000,
                             0xffff,     0x10000,    0x12345678, 0x7fffffff,
                             0x80000000, 0xdeadbeef, 0xffffffff};
  for (uint32_t V : Values) {
    MachineFixture F;
    HostAssembler Asm(F.Code);
    Asm.materialize32(1, V);
    Asm.materializeSext32(2, static_cast<int32_t>(V));
    Asm.srv(SrvFunc::Halt);
    Asm.finish();
    F.runToHalt();
    EXPECT_EQ(F.Machine.R[1], static_cast<uint64_t>(V)) << "value " << V;
    EXPECT_EQ(F.Machine.R[2],
              static_cast<uint64_t>(
                  static_cast<int64_t>(static_cast<int32_t>(V))))
        << "value " << V;
  }
}

TEST(HostMachineTest, LdahArithmetic) {
  MachineFixture F;
  HostAssembler Asm(F.Code);
  Asm.ldah(1, 2, 31);   // r1 = 0x20000
  Asm.ldah(2, -1, 31);  // r2 = -65536
  Asm.srv(SrvFunc::Halt);
  Asm.finish();
  F.runToHalt();
  EXPECT_EQ(F.Machine.R[1], 0x20000u);
  EXPECT_EQ(F.Machine.R[2], static_cast<uint64_t>(-65536LL));
}
