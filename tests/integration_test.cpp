//===- tests/integration_test.cpp - Full-stack benchmark runs -------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-pipeline tests: synthesized Table-I benchmarks run through the
/// DBT under every mechanism, checked against the interpreter oracle and
/// against the analytical expectations that drive the paper's Table III
/// and Table IV.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "mda/PolicyFactory.h"
#include "reporting/Experiment.h"
#include "workloads/SpecPrograms.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::testutil;
using namespace mdabt::workloads;

namespace {

ScaleConfig smallScale() {
  ScaleConfig S;
  S.TotalRefs = 120000;
  return S;
}

} // namespace

TEST(IntegrationTest, AllPoliciesMatchOracleOnBenchmarks) {
  using mda::MechanismKind;
  const mda::PolicySpec Specs[] = {
      {MechanismKind::Direct, 0, false, 0, false},
      {MechanismKind::StaticProfiling, 0, false, 0, false},
      {MechanismKind::DynamicProfiling, 50, false, 0, false},
      {MechanismKind::ExceptionHandling, 50, false, 0, false},
      {MechanismKind::ExceptionHandling, 50, true, 0, false},
      {MechanismKind::Dpeh, 50, false, 0, false},
      {MechanismKind::Dpeh, 50, false, 4, true},
  };
  ScaleConfig Scale = smallScale();
  for (const char *Name : {"410.bwaves", "252.eon", "471.omnetpp"}) {
    const BenchmarkInfo *Info = findBenchmark(Name);
    ASSERT_NE(Info, nullptr);
    guest::GuestImage Ref = buildBenchmark(*Info, InputKind::Ref, Scale);
    Oracle O = interpretOracle(Ref);
    for (const mda::PolicySpec &Spec : Specs) {
      dbt::RunResult R = reporting::runPolicy(*Info, Spec, Scale);
      std::string What =
          std::string(Name) + " / " + mda::policySpecName(Spec);
      expectMatchesOracle(R, O, What.c_str());
    }
  }
}

TEST(IntegrationTest, DynamicProfilingEscapeMatchesPlan) {
  // Table III mechanism: under dynamic profiling at TH=50, the traps
  // seen at runtime are exactly the late-onset MDAs of the plan.
  ScaleConfig Scale = smallScale();
  const BenchmarkInfo *Info = findBenchmark("410.bwaves");
  ProgramPlan Plan = makePlan(*Info, Scale);
  uint64_t LateMdas = 0;
  for (const SiteGroup &G : Plan.Groups)
    if (G.OnsetRound > 0 && G.OnsetRound < Plan.Rounds)
      LateMdas += G.expectedMdas(Plan.Rounds);
  ASSERT_GT(LateMdas, 0u);

  dbt::RunResult R = reporting::runPolicy(
      *Info, {mda::MechanismKind::DynamicProfiling, 50, false, 0, false},
      Scale);
  uint64_t Traps = R.Counters.get("dbt.fault_traps");
  // Early-onset MDAs (onset round 1, execution 24) are caught by TH=50;
  // deep-onset ones are not.  Traps must be close to the deep-onset
  // count: all of it, minus the handful of accesses that may still be
  // interpreted.
  // Gated showcase sections never get hot, so their MDAs are absorbed
  // by the interpreter rather than trapping.
  uint64_t DeepMdas = 0;
  for (const SiteGroup &G : Plan.Groups)
    if (G.OnsetRound > 1 && G.OnsetRound < Plan.Rounds && !G.GatedIters)
      DeepMdas += G.expectedMdas(Plan.Rounds);
  EXPECT_GE(Traps, DeepMdas * 9 / 10);
  EXPECT_LE(Traps, DeepMdas + 64);
}

TEST(IntegrationTest, StaticProfilingResidualMatchesPlan) {
  // Table IV mechanism: with a train-input profile, the residual traps
  // are exactly the ref-only MDAs.
  ScaleConfig Scale = smallScale();
  const BenchmarkInfo *Info = findBenchmark("252.eon");
  ProgramPlan Plan = makePlan(*Info, Scale);
  uint64_t RefOnlyMdas = 0;
  for (const SiteGroup &G : Plan.Groups)
    if (G.RefOnly)
      RefOnlyMdas += G.expectedMdas(Plan.Rounds);
  ASSERT_GT(RefOnlyMdas, 0u);

  dbt::RunResult R = reporting::runPolicy(
      *Info, {mda::MechanismKind::StaticProfiling, 0, false, 0, false},
      Scale);
  EXPECT_EQ(R.Counters.get("dbt.fault_traps"), RefOnlyMdas);
}

TEST(IntegrationTest, StaticProfilingCatchesLateOnset) {
  // bwaves: Table IV is zero — the train run (executed to completion)
  // sees even the MDAs dynamic profiling misses.
  ScaleConfig Scale = smallScale();
  const BenchmarkInfo *Info = findBenchmark("410.bwaves");
  dbt::RunResult R = reporting::runPolicy(
      *Info, {mda::MechanismKind::StaticProfiling, 0, false, 0, false},
      Scale);
  EXPECT_EQ(R.Counters.get("dbt.fault_traps"), 0u);
}

TEST(IntegrationTest, DpehBeatsDynamicProfilingOnEscapers) {
  // The paper's headline: on benchmarks whose MDAs escape profiling,
  // DPEH (patch once) vastly outperforms dynamic profiling (trap every
  // time).
  ScaleConfig Scale = smallScale();
  const BenchmarkInfo *Info = findBenchmark("410.bwaves");
  dbt::RunResult Dyn = reporting::runPolicy(
      *Info, {mda::MechanismKind::DynamicProfiling, 50, false, 0, false},
      Scale);
  dbt::RunResult Dpeh = reporting::runPolicy(
      *Info, {mda::MechanismKind::Dpeh, 50, false, 0, false}, Scale);
  EXPECT_GT(Dyn.Cycles, Dpeh.Cycles * 3 / 2)
      << "dynamic profiling should be >= 1.5x slower on bwaves";
  EXPECT_LT(Dpeh.Counters.get("dbt.fault_traps"),
            Dyn.Counters.get("dbt.fault_traps") / 10);
}

TEST(IntegrationTest, DirectMethodSlowestOnLowMdaBenchmark) {
  // gromacs: almost no MDAs, so the direct method's blanket MDA
  // sequences are pure overhead.
  ScaleConfig Scale = smallScale();
  const BenchmarkInfo *Info = findBenchmark("435.gromacs");
  dbt::RunResult Direct = reporting::runPolicy(
      *Info, {mda::MechanismKind::Direct, 0, false, 0, false}, Scale);
  dbt::RunResult Eh = reporting::runPolicy(
      *Info, {mda::MechanismKind::ExceptionHandling, 50, false, 0, false},
      Scale);
  EXPECT_GT(Direct.Counters.get("cycles.native"),
            Eh.Counters.get("cycles.native") * 5 / 4);
}

TEST(IntegrationTest, CensusChecksumStableAcrossRuns) {
  ScaleConfig Scale;
  Scale.TotalRefs = 50000;
  const BenchmarkInfo *Info = findBenchmark("164.gzip");
  guest::GuestImage A = buildBenchmark(*Info, InputKind::Ref, Scale);
  guest::GuestImage B = buildBenchmark(*Info, InputKind::Ref, Scale);
  EXPECT_EQ(reporting::runCensus(A).Checksum,
            reporting::runCensus(B).Checksum);
}
