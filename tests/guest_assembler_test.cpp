//===- tests/guest_assembler_test.cpp - ProgramBuilder unit tests ---------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "guest/Assembler.h"
#include "guest/Encoding.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace mdabt;
using namespace mdabt::guest;

TEST(AssemblerTest, ForwardAndBackwardLabels) {
  ProgramBuilder B("t");
  auto Fwd = B.newLabel();
  auto Back = B.here();
  B.nop();
  B.jmp(Fwd);
  B.bind(Fwd);
  B.jmp(Back);
  GuestImage Image = B.build();

  // nop @0, jmp @1 (len 5) -> target 6, jmp @6 -> target 0.
  GuestInst I;
  ASSERT_TRUE(decode(Image.Code.data(), Image.Code.size(), 1, I));
  EXPECT_EQ(I.branchTarget(Image.CodeBase + 1), Image.CodeBase + 6);
  ASSERT_TRUE(decode(Image.Code.data(), Image.Code.size(), 6, I));
  EXPECT_EQ(I.branchTarget(Image.CodeBase + 6), Image.CodeBase + 0);
}

TEST(AssemblerTest, DataSegmentAlignmentAndInit) {
  ProgramBuilder B("t");
  uint32_t A = B.dataReserve(3, 1);
  uint32_t C = B.dataU32(0xaabbccdd);
  uint32_t D = B.dataU64(0x1122334455667788ULL);
  uint32_t E = B.dataReserve(1, 16);
  EXPECT_EQ(A, layout::DataBase);
  EXPECT_EQ(C % 4, 0u);
  EXPECT_EQ(D % 8, 0u);
  EXPECT_EQ(E % 16, 0u);
  B.halt();
  GuestImage Image = B.build();
  uint32_t V32 = 0;
  std::memcpy(&V32, Image.Data.data() + (C - layout::DataBase), 4);
  EXPECT_EQ(V32, 0xaabbccddu);
  uint64_t V64 = 0;
  std::memcpy(&V64, Image.Data.data() + (D - layout::DataBase), 8);
  EXPECT_EQ(V64, 0x1122334455667788ULL);
}

TEST(AssemblerTest, PatchData) {
  ProgramBuilder B("t");
  uint32_t Slot = B.dataU32(0);
  uint32_t Slot64 = B.dataU64(0);
  B.patchDataU32(Slot, 777);
  B.patchDataU64(Slot64, 0xdeadULL << 32);
  B.halt();
  GuestImage Image = B.build();
  uint32_t V = 0;
  std::memcpy(&V, Image.Data.data() + (Slot - layout::DataBase), 4);
  EXPECT_EQ(V, 777u);
  uint64_t V64 = 0;
  std::memcpy(&V64, Image.Data.data() + (Slot64 - layout::DataBase), 8);
  EXPECT_EQ(V64, 0xdeadULL << 32);
}

TEST(AssemblerTest, CodeAddressTracksEmission) {
  ProgramBuilder B("t");
  EXPECT_EQ(B.codeAddress(), layout::CodeBase);
  B.nop();
  EXPECT_EQ(B.codeAddress(), layout::CodeBase + 1);
  B.movri(0, 5);
  EXPECT_EQ(B.codeAddress(), layout::CodeBase + 1 + 6);
}

TEST(AssemblerTest, JccRequiresPrecedingCmp) {
  ProgramBuilder B("t");
  auto L = B.newLabel();
  B.cmpi(0, 1);
  B.jcc(Cond::Eq, L); // fine
  B.bind(L);
  B.halt();
  B.build();

#ifndef NDEBUG
  ProgramBuilder Bad("t");
  auto L2 = Bad.newLabel();
  Bad.movri(0, 1);
  EXPECT_DEATH(Bad.jcc(Cond::Eq, L2), "Jcc must immediately follow");
#endif
}

#ifndef NDEBUG
TEST(AssemblerTest, UnboundLabelDies) {
  ProgramBuilder B("t");
  auto L = B.newLabel();
  B.jmp(L);
  EXPECT_DEATH(B.build(), "unbound label");
}

TEST(AssemblerTest, DoubleBindDies) {
  ProgramBuilder B("t");
  auto L = B.here();
  EXPECT_DEATH(B.bind(L), "bound twice");
}
#endif

TEST(AssemblerTest, ImageLayoutDefaults) {
  ProgramBuilder B("t");
  B.halt();
  GuestImage Image = B.build();
  EXPECT_EQ(Image.Entry, layout::CodeBase);
  EXPECT_EQ(Image.CodeBase, layout::CodeBase);
  EXPECT_EQ(Image.DataBase, layout::DataBase);
  EXPECT_EQ(Image.StackTop, layout::StackTop);
  EXPECT_EQ(Image.Code.size(), 1u);
}
