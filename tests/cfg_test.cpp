//===- tests/cfg_test.cpp - CFG recovery & AOT pre-translation tests ------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static-recovery contract (analysis/CfgRecovery.h) and its AOT
/// consumer (EngineConfig::Aot): provable direct edges are recovered,
/// indirect jumps and undecodable bytes become explicit frontiers
/// instead of guesses, overlapping block views survive, and — the
/// differential property — on direct-control-flow guests every block
/// the dynamic DBT discovers is statically covered (zero AOT fallback),
/// while anything beyond a frontier falls back to two-phase DBT with
/// byte-identical architectural results across {off, full, hybrid}.
///
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "analysis/AlignmentAnalysis.h"
#include "analysis/CfgRecovery.h"
#include "guest/Assembler.h"
#include "guest/GuestMemory.h"
#include "mda/PolicyFactory.h"
#include "workloads/Hostile.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::testutil;

namespace {

const mda::PolicySpec DirectSpec{mda::MechanismKind::Direct, 0, false, 0,
                                 false};
const mda::PolicySpec EhSpec{mda::MechanismKind::ExceptionHandling, 50, true,
                             0, false};

/// AOT runs keep the verifier on so the new reachability invariant
/// (check 10) turns any statically-unproven installation into a typed
/// failure instead of silent divergence.
dbt::RunResult runAot(const guest::GuestImage &Image,
                      const mda::PolicySpec &Spec, dbt::AotMode Mode) {
  dbt::EngineConfig Config;
  Config.Analysis = true;
  Config.Verify = true;
  Config.Aot = Mode;
  std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(Spec, &Image);
  dbt::Engine Engine(Image, *Policy, Config);
  return Engine.run();
}

/// entry: call fn; movri r0; halt   fn: ret
guest::GuestImage callRetProgram(uint32_t &FnPc, uint32_t &RetSitePc) {
  guest::ProgramBuilder B("cfg.callret");
  guest::ProgramBuilder::Label LFn = B.newLabel();
  B.call(LFn);
  RetSitePc = B.codeAddress();
  B.movri(0, 7);
  B.halt();
  FnPc = B.codeAddress();
  B.bind(LFn);
  B.ret();
  return B.build();
}

/// entry: jmp main   target: movri r0, 42; halt   main: movri r1,
/// &target; jmpr r1 — the target is reachable only through the
/// indirect jump, i.e. only through a flagged frontier.
guest::GuestImage indirectProgram(uint32_t &TargetPc, uint32_t &JmprBlockPc) {
  guest::ProgramBuilder B("cfg.indirect");
  guest::ProgramBuilder::Label LMain = B.newLabel();
  B.jmp(LMain);
  TargetPc = B.codeAddress();
  B.movri(0, 42);
  B.halt();
  JmprBlockPc = B.codeAddress();
  B.bind(LMain);
  B.movri(1, static_cast<int32_t>(TargetPc));
  B.jmpr(1);
  return B.build();
}

/// Two distinct provable paths (a Jcc arm and a Jmp) into the same
/// garbage byte — recovery must record exactly one frontier for it.
guest::GuestImage undecodableProgram(uint32_t &BadPc) {
  guest::ProgramBuilder B("cfg.undecodable");
  guest::ProgramBuilder::Label LBad = B.newLabel();
  B.movri(6, 1);
  B.cmpi(6, 0);
  B.jcc(guest::Cond::Eq, LBad);
  B.jmp(LBad);
  BadPc = B.codeAddress();
  B.bind(LBad);
  B.halt(); // placeholder; the test overwrites it with a bad byte
  return B.build();
}

/// entry: cmp/jcc to whole-block head, else jmp into its middle — the
/// same bytes are covered by two overlapping recovered blocks, exactly
/// like the dynamic discoverBlock view.
guest::GuestImage overlapProgram(uint32_t &WholePc, uint32_t &MidPc) {
  guest::ProgramBuilder B("cfg.overlap");
  guest::ProgramBuilder::Label LWhole = B.newLabel();
  guest::ProgramBuilder::Label LMid = B.newLabel();
  B.movri(6, 1);
  B.cmpi(6, 0);
  B.jcc(guest::Cond::Eq, LWhole);
  B.jmp(LMid);
  WholePc = B.codeAddress();
  B.bind(LWhole);
  B.movri(0, 1);
  MidPc = B.codeAddress();
  B.bind(LMid);
  B.addi(0, 2);
  B.halt();
  return B.build();
}

} // namespace

TEST(CfgRecoveryTest, DirectEdgesAndCallFallthrough) {
  uint32_t FnPc = 0, RetSitePc = 0;
  guest::GuestImage Image = callRetProgram(FnPc, RetSitePc);
  analysis::CfgResult Cfg = analysis::recoverCfg(Image);

  ASSERT_TRUE(Cfg.Frontier.empty());
  ASSERT_EQ(Cfg.Blocks.size(), 3u); // entry, return site, callee
  ASSERT_TRUE(Cfg.contains(Image.Entry));
  ASSERT_TRUE(Cfg.contains(RetSitePc));
  ASSERT_TRUE(Cfg.contains(FnPc));

  const analysis::CfgBlock &Entry = Cfg.Blocks.at(Image.Entry);
  EXPECT_EQ(Entry.Terminator, guest::Opcode::Call);
  EXPECT_EQ(Entry.Succs, (std::vector<uint32_t>{RetSitePc, FnPc}));
  EXPECT_FALSE(Entry.EndsAtFrontier);
  EXPECT_EQ(Entry.Provenance, analysis::BlockProvenance::Static);

  // Ret contributes no successors: its targets are exactly the call
  // fall-throughs already proven.
  EXPECT_EQ(Cfg.Blocks.at(FnPc).Terminator, guest::Opcode::Ret);
  EXPECT_TRUE(Cfg.Blocks.at(FnPc).Succs.empty());
  EXPECT_EQ(Cfg.Blocks.at(RetSitePc).Terminator, guest::Opcode::Halt);
  EXPECT_EQ(Cfg.NumEdges, 2u);
}

TEST(CfgRecoveryTest, IndirectJumpIsAFrontierNotAGuess) {
  uint32_t TargetPc = 0, JmprBlockPc = 0;
  guest::GuestImage Image = indirectProgram(TargetPc, JmprBlockPc);
  analysis::CfgResult Cfg = analysis::recoverCfg(Image);

  // The JmpR block itself is proven; its successor set is not.
  ASSERT_TRUE(Cfg.contains(JmprBlockPc));
  const analysis::CfgBlock &B = Cfg.Blocks.at(JmprBlockPc);
  EXPECT_EQ(B.Terminator, guest::Opcode::JmpR);
  EXPECT_TRUE(B.EndsAtFrontier);
  EXPECT_TRUE(B.Succs.empty());

  // No heuristics: the dynamic-only target stays out of the set and
  // the frontier record points at the indirect jump.
  EXPECT_FALSE(Cfg.contains(TargetPc));
  ASSERT_EQ(Cfg.Frontier.size(), 1u);
  EXPECT_EQ(Cfg.Frontier[0].Kind, analysis::FrontierKind::IndirectJump);
  EXPECT_EQ(Cfg.Frontier[0].BlockPc, JmprBlockPc);
  EXPECT_STREQ(analysis::frontierKindName(Cfg.Frontier[0].Kind),
               "indirect-jump");
}

TEST(CfgRecoveryTest, UndecodableBytesFlaggedOncePerRegion) {
  uint32_t BadPc = 0;
  guest::GuestImage Image = undecodableProgram(BadPc);
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  Mem.store(BadPc, 1, 0xFF); // no GX86 opcode decodes from 0xFF

  analysis::CfgResult Cfg = analysis::recoverCfg(Mem, Image.Entry);

  // Two provable paths (Jcc arm and Jmp) reach the same bad byte, but
  // the walk is recorded — and erased from Blocks — exactly once.
  ASSERT_EQ(Cfg.Frontier.size(), 1u);
  EXPECT_EQ(Cfg.Frontier[0].Kind, analysis::FrontierKind::Undecodable);
  EXPECT_EQ(Cfg.Frontier[0].Pc, BadPc);
  EXPECT_EQ(Cfg.Frontier[0].BlockPc, BadPc);
  EXPECT_FALSE(Cfg.contains(BadPc));
  // The decodable prefix stays proven.
  EXPECT_TRUE(Cfg.contains(Image.Entry));
}

TEST(CfgRecoveryTest, RunawayStraightLineIsAFrontier) {
  guest::ProgramBuilder B("cfg.runaway");
  for (int I = 0; I != 16; ++I)
    B.nop();
  B.halt();
  guest::GuestImage Image = B.build();
  guest::GuestMemory Mem;
  Mem.loadImage(Image);

  analysis::CfgResult Cfg =
      analysis::recoverCfg(Mem, Image.Entry, /*MaxBlockInsts=*/4);
  ASSERT_EQ(Cfg.Frontier.size(), 1u);
  EXPECT_EQ(Cfg.Frontier[0].Kind, analysis::FrontierKind::Runaway);
  EXPECT_TRUE(Cfg.Blocks.empty());

  // The default bound mirrors discoverBlock's and accepts the block.
  EXPECT_TRUE(analysis::recoverCfg(Mem, Image.Entry).Frontier.empty());
}

TEST(CfgRecoveryTest, OverlappingBlockViewsBothRecovered) {
  uint32_t WholePc = 0, MidPc = 0;
  guest::GuestImage Image = overlapProgram(WholePc, MidPc);
  analysis::CfgResult Cfg = analysis::recoverCfg(Image);

  ASSERT_TRUE(Cfg.Frontier.empty());
  ASSERT_TRUE(Cfg.contains(WholePc));
  ASSERT_TRUE(Cfg.contains(MidPc));
  const analysis::CfgBlock &Whole = Cfg.Blocks.at(WholePc);
  const analysis::CfgBlock &Mid = Cfg.Blocks.at(MidPc);
  // The mid-entry block starts strictly inside the whole-block view
  // and both share the terminating bytes.
  EXPECT_GT(MidPc, WholePc);
  EXPECT_LT(MidPc, Whole.EndPc);
  EXPECT_EQ(Whole.EndPc, Mid.EndPc);
  EXPECT_EQ(Whole.NumInsts, Mid.NumInsts + 1);

  // coverageRanges merges the overlap into disjoint sorted ranges.
  auto Ranges = Cfg.coverageRanges();
  ASSERT_FALSE(Ranges.empty());
  for (size_t I = 0; I != Ranges.size(); ++I) {
    EXPECT_LT(Ranges[I].first, Ranges[I].second);
    if (I) {
      EXPECT_GT(Ranges[I].first, Ranges[I - 1].second);
    }
  }
}

TEST(CfgRecoveryTest, AnnotateVerdictsTalliesEverySizedSite) {
  guest::GuestImage Image = misalignedSumProgram(64);
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  analysis::CfgResult Cfg = analysis::recoverCfg(Mem, Image.Entry);
  analysis::AnalysisResult Ana =
      analysis::analyzeAlignment(Mem, Image.Entry, Image.StackTop);

  uint64_t Classified = analysis::annotateVerdicts(Cfg, Mem, Ana);
  EXPECT_GT(Classified, 0u);
  uint64_t Tallied = 0;
  for (const auto &KV : Cfg.Blocks)
    Tallied += KV.second.SitesAligned + KV.second.SitesMisaligned +
               KV.second.SitesUnknown;
  EXPECT_EQ(Tallied, Classified);
}

TEST(CfgTest, RandomProgramsRecoverWithEmptyFrontier) {
  // RandomProgram emits direct control flow only, so static recovery
  // must be total: no frontier, and the dynamic DBT can never discover
  // a head outside the recovered set (asserted end-to-end below).
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    guest::GuestImage Image = RandomProgram(Seed).build();
    analysis::CfgResult Cfg = analysis::recoverCfg(Image);
    EXPECT_TRUE(Cfg.Frontier.empty()) << "seed " << Seed;
    EXPECT_TRUE(Cfg.contains(Image.Entry)) << "seed " << Seed;
  }
}

TEST(CfgTest, DifferentialNoDynamicHeadOutsideRecoveredSet) {
  // The differential property: on a hostile-free direct-flow guest,
  // every block head the engine ever dispatches is statically covered
  // — zero AOT fallback, 100% coverage — and hybrid AOT stays
  // byte-identical to the interpreter oracle with zero verifier issues
  // (including the new AOT reachability invariant).
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    guest::GuestImage Image = RandomProgram(Seed).build();
    Oracle O = interpretOracle(Image);
    dbt::RunResult R = runAot(Image, DirectSpec, dbt::AotMode::Hybrid);
    expectMatchesOracle(R, O, "random hybrid");
    EXPECT_EQ(R.Counters.get("verify.issues"), 0u) << "seed " << Seed;
    EXPECT_EQ(R.Counters.get("aot.fallback_blocks"), 0u) << "seed " << Seed;
    EXPECT_EQ(R.Counters.get("aot.coverage_pct"), 100u) << "seed " << Seed;
    EXPECT_GT(R.Counters.get("aot.blocks"), 0u) << "seed " << Seed;
  }
}

TEST(CfgTest, AotModesArchitecturallyIdentical) {
  const dbt::AotMode Modes[] = {dbt::AotMode::Off, dbt::AotMode::Full,
                                dbt::AotMode::Hybrid};
  for (const mda::PolicySpec &Spec : {DirectSpec, EhSpec}) {
    guest::GuestImage Image = misalignedSumProgram(200);
    Oracle O = interpretOracle(Image);
    for (dbt::AotMode Mode : Modes) {
      dbt::RunResult R = runAot(Image, Spec, Mode);
      expectMatchesOracle(R, O, dbt::aotModeName(Mode));
      EXPECT_EQ(R.Counters.get("verify.issues"), 0u)
          << dbt::aotModeName(Mode);
      if (Mode == dbt::AotMode::Full) {
        // Full mode installs the whole recovered set before the first
        // guest instruction and pays the startup bill for it.
        EXPECT_GT(R.Counters.get("aot.installed"), 0u);
        EXPECT_GT(R.Counters.get("aot.startup_cycles"), 0u);
      }
    }
  }
}

TEST(CfgTest, IndirectTargetFallsBackToDynamicDbt) {
  uint32_t TargetPc = 0, JmprBlockPc = 0;
  guest::GuestImage Image = indirectProgram(TargetPc, JmprBlockPc);
  Oracle O = interpretOracle(Image);
  for (dbt::AotMode Mode : {dbt::AotMode::Full, dbt::AotMode::Hybrid}) {
    dbt::RunResult R = runAot(Image, DirectSpec, Mode);
    expectMatchesOracle(R, O, dbt::aotModeName(Mode));
    EXPECT_EQ(R.Counters.get("verify.issues"), 0u);
    // The jmpr-only target is a dynamic discovery, attributable to the
    // one flagged indirect-jump frontier.
    EXPECT_GE(R.Counters.get("aot.fallback_blocks"), 1u);
    EXPECT_GE(R.Counters.get("aot.frontier_sites"), 1u);
  }
}

TEST(CfgTest, SelfModifyingGuestsStaleAotUnitsAndStayIdentical) {
  // A store into a pre-translated unit's guest bytes must mark the
  // unit non-static (never installed again from the stale payload)
  // while the run stays byte-identical and verifier-clean — across
  // the whole hostile catalog, in both AOT modes.
  uint64_t TotalStaled = 0;
  for (const workloads::HostileProgram &P : workloads::hostileCatalog()) {
    Oracle O = interpretOracle(P.Image);
    for (dbt::AotMode Mode : {dbt::AotMode::Full, dbt::AotMode::Hybrid}) {
      dbt::RunResult R = runAot(P.Image, DirectSpec, Mode);
      expectMatchesOracle(R, O, P.Name.c_str());
      EXPECT_EQ(R.Counters.get("verify.issues"), 0u)
          << P.Name << " " << dbt::aotModeName(Mode);
      TotalStaled += R.Counters.get("aot.stale_dropped");
    }
  }
  EXPECT_GT(TotalStaled, 0u);
}
