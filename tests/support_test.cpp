//===- tests/support_test.cpp - Support library unit tests ----------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/CacheModel.h"
#include "support/Format.h"
#include "support/RNG.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace mdabt;

TEST(RngTest, DeterministicAcrossInstances) {
  RNG A(42), B(42);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 3);
}

TEST(RngTest, BelowStaysInBounds) {
  RNG R(7);
  for (uint64_t Bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40})
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.below(Bound), Bound);
}

TEST(RngTest, RangeInclusive) {
  RNG R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, ChanceExtremes) {
  RNG R(11);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  RNG R(13);
  int Hits = 0;
  for (int I = 0; I != 10000; ++I)
    Hits += R.chance(0.25);
  EXPECT_NEAR(Hits / 10000.0, 0.25, 0.03);
}

TEST(FormatTest, Basic) {
  EXPECT_EQ(format("x=%d y=%s", 5, "ok"), "x=5 y=ok");
  EXPECT_EQ(format("%04x", 0xabc), "0abc");
  EXPECT_EQ(format("%s", ""), "");
}

TEST(FormatTest, WithCommas) {
  EXPECT_EQ(withCommas(0), "0");
  EXPECT_EQ(withCommas(999), "999");
  EXPECT_EQ(withCommas(1000), "1,000");
  EXPECT_EQ(withCommas(1234567), "1,234,567");
  EXPECT_EQ(withCommas(1000000000ULL), "1,000,000,000");
}

TEST(FormatTest, PaperCount) {
  EXPECT_EQ(paperCount(435), "435");
  EXPECT_EQ(paperCount(999999), "999999");
  // Large values use the paper's scientific style.
  EXPECT_EQ(paperCount(8320000000ULL), "8.32E+09");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(percent(0.1267), "12.67%");
  EXPECT_EQ(signedPercent(0.045), "+4.5%");
  EXPECT_EQ(signedPercent(-0.08), "-8.0%");
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometricMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(StatsTest, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
  EXPECT_NEAR(arithmeticMean({1.0, 2.0, 3.0}), 2.0, 1e-12);
}

TEST(StatsTest, CounterBag) {
  CounterBag C;
  EXPECT_EQ(C.get("x"), 0u);
  C.add("x");
  C.add("x", 4);
  C.add("y", 2);
  EXPECT_EQ(C.get("x"), 5u);
  EXPECT_EQ(C.get("y"), 2u);
  CounterBag D;
  D.add("x", 1);
  D.add("z", 7);
  C.merge(D);
  EXPECT_EQ(C.get("x"), 6u);
  EXPECT_EQ(C.get("z"), 7u);
  // Insertion order is stable.
  ASSERT_EQ(C.entries().size(), 3u);
  EXPECT_EQ(C.entries()[0].first, "x");
  EXPECT_EQ(C.entries()[1].first, "y");
  EXPECT_EQ(C.entries()[2].first, "z");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "234"});
  std::string Text = T.toText();
  EXPECT_NE(Text.find("name       value"), std::string::npos);
  EXPECT_NE(Text.find("long-name  234"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter T({"a", "b", "c"});
  T.addRow({"x"});
  EXPECT_EQ(T.numRows(), 1u);
  EXPECT_NE(T.toCsv().find("x,,"), std::string::npos);
}

TEST(TablePrinterTest, Csv) {
  TablePrinter T({"h1", "h2"});
  T.addRow({"1", "2"});
  EXPECT_EQ(T.toCsv(), "h1,h2\n1,2\n");
}

TEST(CacheTest, HitsAfterFill) {
  Cache C({1024, 2, 64});
  EXPECT_FALSE(C.access(0));
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(63));  // same line
  EXPECT_FALSE(C.access(64)); // next line
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(CacheTest, LruEviction) {
  // 2 ways, 64B lines, 1024B total -> 8 sets.  Lines 0, 8, 16 of the
  // address space map to set 0 (stride 8*64 = 512).
  Cache C({1024, 2, 64});
  EXPECT_FALSE(C.access(0));
  EXPECT_FALSE(C.access(512));
  EXPECT_TRUE(C.access(0));    // keep 0 most recent
  EXPECT_FALSE(C.access(1024)); // evicts 512 (LRU)
  EXPECT_TRUE(C.access(0));
  EXPECT_FALSE(C.access(512)); // 512 was evicted
}

TEST(CacheTest, DirectMapped) {
  Cache C({256, 1, 64}); // 4 sets
  EXPECT_FALSE(C.access(0));
  EXPECT_FALSE(C.access(256)); // conflicts with 0
  EXPECT_FALSE(C.access(0));   // 0 was evicted
}

TEST(CacheTest, ResetClears) {
  Cache C({256, 1, 64});
  C.access(0);
  C.reset();
  EXPECT_FALSE(C.access(0));
  EXPECT_EQ(C.misses(), 1u);
}

TEST(MemoryHierarchyTest, PenaltyTiers) {
  MemoryHierarchy H;
  uint32_t Cold = H.data(0x1000);
  EXPECT_EQ(Cold, H.Costs.L2HitCycles + H.Costs.MemoryCycles);
  EXPECT_EQ(H.data(0x1000), 0u); // L1 hit
  // L1I and L1D are split: an instruction fetch of the same line still
  // misses L1I but hits the (unified) L2.
  EXPECT_EQ(H.fetch(0x1000), H.Costs.L2HitCycles);
}

TEST(TablePrinterTest, CsvStripsThousandsSeparators) {
  TablePrinter T({"name", "cycles"});
  T.addRow({"a", "1,234,567"});
  EXPECT_EQ(T.toCsv(), "name,cycles\na,1234567\n");
}
