//===- tests/parallel_test.cpp - ThreadPool and matrix determinism --------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the experiment fan-out machinery: the ThreadPool/parallelFor
/// primitives, and the contract that runMatrix at any job count produces
/// results bit-identical to the serial run — the property every bench
/// binary's figures depend on.
///
//===----------------------------------------------------------------------===//

#include "mda/PolicyFactory.h"
#include "reporting/Experiment.h"
#include "support/ThreadPool.h"
#include "workloads/SpecCatalog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

using namespace mdabt;

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threads(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([&] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
  Pool.submit([&] { ++Count; });
  Pool.submit([&] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 3);
}

TEST(ThreadPoolTest, DefaultJobsIsPositive) {
  EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (unsigned Jobs : {0u, 1u, 3u, 8u}) {
    std::vector<std::atomic<int>> Hits(57);
    parallelFor(Jobs, Hits.size(), [&](size_t I) { ++Hits[I]; });
    for (size_t I = 0; I != Hits.size(); ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "jobs " << Jobs << " index " << I;
  }
}

TEST(ParallelForTest, MoreJobsThanWork) {
  std::vector<std::atomic<int>> Hits(3);
  parallelFor(16, Hits.size(), [&](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  parallelFor(4, 0, [](size_t) { FAIL() << "body ran on empty range"; });
}

namespace {

/// A small (benchmark x policy) matrix covering every mechanism,
/// including StaticProfiling (whose train-then-ref runs are the most
/// stateful cell kind).
std::vector<reporting::MatrixCell> testMatrix() {
  const char *Names[] = {"164.gzip", "179.art", "470.lbm"};
  const mda::PolicySpec Specs[] = {
      {mda::MechanismKind::Direct, 0, false, 0, false},
      {mda::MechanismKind::DynamicProfiling, 50, false, 0, false},
      {mda::MechanismKind::StaticProfiling, 0, false, 0, false},
      {mda::MechanismKind::ExceptionHandling, 50, true, 0, false},
      {mda::MechanismKind::Dpeh, 50, false, 4, false},
  };
  std::vector<reporting::MatrixCell> Cells;
  for (const char *Name : Names) {
    const workloads::BenchmarkInfo *Info = workloads::findBenchmark(Name);
    for (const mda::PolicySpec &Spec : Specs)
      Cells.push_back({.Info = Info, .Spec = Spec});
  }
  return Cells;
}

workloads::ScaleConfig smallScale() {
  workloads::ScaleConfig Scale;
  Scale.TotalRefs = 40000;
  return Scale;
}

void expectBitIdentical(const std::vector<dbt::RunResult> &A,
                        const std::vector<dbt::RunResult> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Cycles, B[I].Cycles) << "cell " << I;
    EXPECT_EQ(A[I].Checksum, B[I].Checksum) << "cell " << I;
    EXPECT_EQ(A[I].MemoryHash, B[I].MemoryHash) << "cell " << I;
    EXPECT_EQ(A[I].Error, B[I].Error) << "cell " << I;
    ASSERT_EQ(A[I].Counters.entries().size(),
              B[I].Counters.entries().size())
        << "cell " << I;
    for (const auto &Entry : A[I].Counters.entries())
      EXPECT_EQ(Entry.second, B[I].Counters.get(Entry.first))
          << "cell " << I << " counter " << Entry.first;
    // The strongest form of the contract: the serialized metrics
    // artifact is byte-identical, so writeMetricsJson output cannot
    // depend on the job count either.
    EXPECT_EQ(reporting::metricsJsonString(A[I]),
              reporting::metricsJsonString(B[I]))
        << "cell " << I;
  }
}

} // namespace

TEST(RunMatrixTest, ParallelBitIdenticalToSerial) {
  workloads::ScaleConfig Scale = smallScale();
  std::vector<dbt::RunResult> Serial =
      reporting::runMatrix(testMatrix(), Scale, 1);
  std::vector<dbt::RunResult> Parallel =
      reporting::runMatrix(testMatrix(), Scale, 4);
  expectBitIdentical(Serial, Parallel);
}

TEST(RunMatrixTest, CheckedVariantMatchesUnchecked) {
  workloads::ScaleConfig Scale = smallScale();
  std::vector<dbt::RunResult> A =
      reporting::runMatrix(testMatrix(), Scale, 2);
  std::vector<dbt::RunResult> B =
      reporting::runPolicyMatrixChecked(testMatrix(), Scale, 2);
  expectBitIdentical(A, B);
}

TEST(RunMatrixTest, CustomRunCellsExecuteOnWorkers) {
  // Cells carrying their own Run closure (the ablation benches) must go
  // through the same deterministic slotting as spec-driven cells.
  const workloads::BenchmarkInfo *Info = workloads::findBenchmark("470.lbm");
  ASSERT_NE(Info, nullptr);
  workloads::ScaleConfig Scale = smallScale();
  std::vector<reporting::MatrixCell> Cells;
  for (int I = 0; I != 6; ++I)
    Cells.push_back({.Info = Info,
                     .Label = "lbm custom " + std::to_string(I),
                     .Run = [Info, Scale] {
                       return reporting::runPolicy(
                           *Info,
                           {mda::MechanismKind::Dpeh, 50, false, 0, false},
                           Scale);
                     }});
  std::vector<dbt::RunResult> Serial = reporting::runMatrix(Cells, Scale, 1);
  std::vector<dbt::RunResult> Parallel =
      reporting::runMatrix(Cells, Scale, 4);
  expectBitIdentical(Serial, Parallel);
  for (size_t I = 1; I != Serial.size(); ++I)
    EXPECT_EQ(Serial[I].Cycles, Serial[0].Cycles); // identical cells agree
}
