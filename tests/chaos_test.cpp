//===- tests/chaos_test.cpp - Fault-injection and degradation tests -------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the chaos subsystem and the engine's graceful-degradation
/// machinery: injector determinism, containment of each fault class
/// (dropped/torn patches, lost/duplicate/spurious traps, translator
/// failures, flush storms), the trap-storm watchdog ladder, and the
/// reachability of every typed RunError.  The robustness contract under
/// test: a chaos run either completes bit-identical to the fault-free
/// oracle or aborts with a typed RunError — never a wedge, never silent
/// corruption.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/HostVerifier.h"
#include "chaos/FaultInjector.h"
#include "chaos/FaultPlan.h"
#include "dbt/TranslationService.h"
#include "host/HostAssembler.h"
#include "host/MdaSequences.h"
#include "mda/PolicyFactory.h"
#include "mda/Policies.h"
#include "workloads/Hostile.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

using namespace mdabt;
using namespace mdabt::testutil;

namespace {

dbt::RunResult runChaos(const guest::GuestImage &Image,
                        dbt::MdaPolicy &Policy,
                        const chaos::FaultPlan &Plan,
                        dbt::EngineConfig Config = dbt::EngineConfig()) {
  Config.Chaos = &Plan;
  // Bound the run so an uncontained livelock fails fast as
  // MonitorStepLimit instead of hanging the test.
  Config.MaxMonitorSteps = 2'000'000;
  dbt::Engine Engine(Image, Policy, Config);
  return Engine.run();
}

} // namespace

// ---- injector unit behaviour ----------------------------------------------

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  chaos::FaultPlan Plan;
  Plan.Seed = 42;
  Plan.LostTrapRate = 0.3;
  Plan.PatchDropRate = 0.2;
  Plan.PatchTornRate = 0.2;
  Plan.TranslateFailRate = 0.1;
  chaos::FaultInjector A(Plan), B(Plan);
  for (int I = 0; I != 500; ++I) {
    EXPECT_EQ(A.lostTrap(), B.lostTrap());
    EXPECT_EQ(A.patchFault(), B.patchFault());
    EXPECT_EQ(A.translateFails(), B.translateFails());
  }
  EXPECT_EQ(A.injected(), B.injected());
}

TEST(FaultInjectorTest, BudgetCapsInjections) {
  chaos::FaultPlan Plan;
  Plan.Seed = 7;
  Plan.LostTrapRate = 1.0;
  Plan.MaxInjections = 16;
  chaos::FaultInjector Inj(Plan);
  int Fired = 0;
  for (int I = 0; I != 1000; ++I)
    Fired += Inj.lostTrap() ? 1 : 0;
  EXPECT_EQ(Fired, 16);
  EXPECT_EQ(Inj.injected(), 16u);
}

TEST(FaultInjectorTest, ExactTranslationFailure) {
  chaos::FaultPlan Plan;
  Plan.TranslateFailAt = 3;
  chaos::FaultInjector Inj(Plan);
  EXPECT_FALSE(Inj.translateFails());
  EXPECT_FALSE(Inj.translateFails());
  EXPECT_TRUE(Inj.translateFails());
  EXPECT_FALSE(Inj.translateFails());
}

TEST(FaultInjectorTest, RandomizedPlanIsDeterministic) {
  chaos::FaultPlan A = chaos::FaultPlan::randomized(99);
  chaos::FaultPlan B = chaos::FaultPlan::randomized(99);
  EXPECT_EQ(A.LostTrapRate, B.LostTrapRate);
  EXPECT_EQ(A.DuplicateTrapRate, B.DuplicateTrapRate);
  EXPECT_EQ(A.SpuriousTrapRate, B.SpuriousTrapRate);
  EXPECT_EQ(A.PatchDropRate, B.PatchDropRate);
  EXPECT_EQ(A.PatchTornRate, B.PatchTornRate);
  EXPECT_EQ(A.TranslateFailRate, B.TranslateFailRate);
  EXPECT_EQ(A.TranslateFailAt, B.TranslateFailAt);
  EXPECT_EQ(A.FlushStormRate, B.FlushStormRate);
  EXPECT_EQ(A.MaxInjections, B.MaxInjections);
}

// ---- containment: each fault class alone ----------------------------------

TEST(ChaosEngineTest, DroppedPatchesAreContained) {
  guest::GuestImage Image = misalignedSumProgram(400);
  Oracle O = interpretOracle(Image);
  chaos::FaultPlan Plan;
  Plan.Seed = 11;
  Plan.PatchDropRate = 0.7;
  Plan.MaxInjections = 64;
  mda::ExceptionHandlingPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan);
  expectMatchesOracle(R, O, "dropped patches");
  EXPECT_GT(R.Counters.get("chaos.patch_drops"), 0u);
  // Every abandoned patch was followed by a Fixup, never a corrupt word.
  EXPECT_EQ(R.Counters.get("run.error"), 0u);
}

TEST(ChaosEngineTest, TornPatchesAreRepairedOrRolledBack) {
  guest::GuestImage Image = misalignedSumProgram(400);
  Oracle O = interpretOracle(Image);
  chaos::FaultPlan Plan;
  Plan.Seed = 12;
  Plan.PatchTornRate = 0.6;
  Plan.MaxInjections = 48;
  mda::ExceptionHandlingPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan);
  expectMatchesOracle(R, O, "torn patches");
  EXPECT_GT(R.Counters.get("chaos.patch_tears"), 0u);
  EXPECT_GT(R.Counters.get("harden.patch_repairs") +
                R.Counters.get("harden.patch_failures"),
            0u);
}

TEST(ChaosEngineTest, TornAndDroppedPatchSoakNeverExecutesStaleCode) {
  // Combined high-rate drop+tear campaigns across the patch-heavy
  // policies.  The engine executes out of the predecoded code-cache
  // view, so any mutation path that failed to refresh it — stub
  // patches, chain/unchain, adaptive reverts, capacity flushes, torn
  // words rolled back by the repair path — would execute a stale
  // instruction and diverge from the oracle.
  guest::GuestImage Image = lateOnsetProgram(600, 150);
  Oracle O = interpretOracle(Image);
  const mda::PolicySpec Specs[] = {
      {mda::MechanismKind::ExceptionHandling, 10, false, 0, false},
      {mda::MechanismKind::Dpeh, 10, false, 2, false},
  };
  for (uint64_t Seed = 0; Seed != 12; ++Seed) {
    chaos::FaultPlan Plan;
    Plan.Seed = 7000 + Seed;
    Plan.PatchDropRate = 0.5;
    Plan.PatchTornRate = 0.5;
    Plan.MaxInjections = 96;
    std::unique_ptr<dbt::MdaPolicy> Policy =
        mda::makePolicy(Specs[Seed % 2]);
    dbt::EngineConfig Config;
    if (Seed % 3 == 1)
      Config.CodeCacheLimitWords = 200; // capacity flushes in the mix
    dbt::RunResult R = runChaos(Image, *Policy, Plan, Config);
    if (R.completed()) {
      expectMatchesOracle(
          R, O, ("patch soak seed " + std::to_string(Seed)).c_str());
    } else {
      EXPECT_NE(R.Error, dbt::RunError::MonitorStepLimit)
          << "patch soak " << Seed << " wedged";
    }
  }
}

TEST(ChaosEngineTest, LostTrapStormIsContainedByWatchdog) {
  guest::GuestImage Image = misalignedSumProgram(600);
  Oracle O = interpretOracle(Image);
  chaos::FaultPlan Plan;
  Plan.Seed = 13;
  Plan.LostTrapRate = 1.0;
  Plan.MaxInjections = 256;
  mda::ExceptionHandlingPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan);
  expectMatchesOracle(R, O, "lost-trap storm");
  EXPECT_GT(R.Counters.get("chaos.lost_traps"), 0u);
  EXPECT_GT(R.Counters.get("harden.watchdog_trips"), 0u);
}

TEST(ChaosEngineTest, DuplicateTrapsAreHarmless) {
  guest::GuestImage Image = misalignedSumProgram(400);
  Oracle O = interpretOracle(Image);
  chaos::FaultPlan Plan;
  Plan.Seed = 14;
  Plan.DuplicateTrapRate = 1.0;
  Plan.MaxInjections = 128;
  mda::ExceptionHandlingPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan);
  expectMatchesOracle(R, O, "duplicate traps");
  EXPECT_GT(R.Counters.get("chaos.dup_traps"), 0u);
  // The duplicate delivery of a patched word is recognized as stale.
  EXPECT_GT(R.Counters.get("harden.spurious_traps"), 0u);
}

TEST(ChaosEngineTest, SpuriousTrapsAreRejected) {
  guest::GuestImage Image = misalignedSumProgram(400);
  Oracle O = interpretOracle(Image);
  chaos::FaultPlan Plan;
  Plan.Seed = 15;
  Plan.SpuriousTrapRate = 0.5;
  Plan.MaxInjections = 128;
  mda::ExceptionHandlingPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan);
  expectMatchesOracle(R, O, "spurious traps");
  EXPECT_GT(R.Counters.get("chaos.spurious_traps"), 0u);
}

TEST(ChaosEngineTest, TranslatorFailureFallsBackToInterpreter) {
  guest::GuestImage Image = misalignedSumProgram(400);
  Oracle O = interpretOracle(Image);
  chaos::FaultPlan Plan;
  Plan.Seed = 16;
  Plan.TranslateFailRate = 1.0;
  Plan.MaxInjections = 0; // unlimited: the block must get pinned
  mda::ExceptionHandlingPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan);
  expectMatchesOracle(R, O, "translator failure");
  EXPECT_GT(R.Counters.get("harden.translate_failures"), 0u);
  EXPECT_GT(R.Counters.get("harden.ladder_interp_only"), 0u);
  EXPECT_EQ(R.Counters.get("dbt.translations"), 0u);
}

TEST(ChaosEngineTest, ExactTranslationFailureIsTransparent) {
  guest::GuestImage Image = lateOnsetProgram(600, 300);
  Oracle O = interpretOracle(Image);
  chaos::FaultPlan Plan;
  Plan.TranslateFailAt = 1; // first translation attempt fails
  mda::DpehPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan);
  expectMatchesOracle(R, O, "exact translation failure");
  EXPECT_EQ(R.Counters.get("chaos.translate_fail"), 1u);
  EXPECT_GT(R.Counters.get("dbt.translations"), 0u); // retried fine
}

TEST(ChaosEngineTest, FlushStormIsBackedOffAndSurvived) {
  guest::GuestImage Image = misalignedSumProgram(600);
  Oracle O = interpretOracle(Image);
  chaos::FaultPlan Plan;
  Plan.Seed = 17;
  Plan.FlushStormRate = 1.0;
  Plan.MaxInjections = 200;
  mda::DpehPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan);
  expectMatchesOracle(R, O, "flush storm");
  EXPECT_GT(R.Counters.get("chaos.flush_storms"), 0u);
  EXPECT_GT(R.Counters.get("dbt.flushes"), 0u);
  EXPECT_GT(R.Counters.get("harden.flush_suppressed"), 0u);
}

// ---- typed aborts: every tolerance ceiling is reachable --------------------

TEST(ChaosEngineTest, TrapStormAbortsWhenLadderBudgetExhausted) {
  guest::GuestImage Image = misalignedSumProgram(600);
  chaos::FaultPlan Plan;
  Plan.Seed = 18;
  Plan.LostTrapRate = 1.0;
  Plan.MaxInjections = 0; // sustained storm, never heals
  dbt::EngineConfig Config;
  Config.Hardening.MaxWatchdogTrips = 1;
  mda::ExceptionHandlingPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan, Config);
  EXPECT_FALSE(R.completed());
  EXPECT_EQ(R.Error, dbt::RunError::TrapStorm);
  EXPECT_STREQ(dbt::runErrorName(R.Error), "trap-storm");
}

TEST(ChaosEngineTest, PatchFailureCeilingAborts) {
  guest::GuestImage Image = misalignedSumProgram(600);
  chaos::FaultPlan Plan;
  Plan.Seed = 19;
  Plan.PatchDropRate = 1.0;
  Plan.MaxInjections = 0;
  dbt::EngineConfig Config;
  Config.Hardening.PatchFailureLimit = 2;
  mda::ExceptionHandlingPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan, Config);
  EXPECT_FALSE(R.completed());
  EXPECT_EQ(R.Error, dbt::RunError::PatchFailed);
}

TEST(ChaosEngineTest, UnrepairableTornWordAborts) {
  guest::GuestImage Image = misalignedSumProgram(600);
  chaos::FaultPlan Plan;
  Plan.Seed = 20;
  Plan.PatchTornRate = 1.0; // every write torn, including the rollback
  Plan.MaxInjections = 0;
  mda::ExceptionHandlingPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan);
  EXPECT_FALSE(R.completed());
  EXPECT_EQ(R.Error, dbt::RunError::PatchFailed);
}

TEST(ChaosEngineTest, TranslationFailureCeilingAborts) {
  guest::GuestImage Image = misalignedSumProgram(600);
  chaos::FaultPlan Plan;
  Plan.Seed = 21;
  Plan.TranslateFailRate = 1.0;
  Plan.MaxInjections = 0;
  dbt::EngineConfig Config;
  Config.Hardening.TranslationFailureLimit = 2;
  mda::ExceptionHandlingPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan, Config);
  EXPECT_FALSE(R.completed());
  EXPECT_EQ(R.Error, dbt::RunError::TranslationFailed);
}

TEST(ChaosEngineTest, FlushCeilingAbortsAsCacheThrash) {
  guest::GuestImage Image = misalignedSumProgram(600);
  chaos::FaultPlan Plan;
  Plan.Seed = 22;
  Plan.FlushStormRate = 1.0;
  Plan.MaxInjections = 0;
  dbt::EngineConfig Config;
  Config.Hardening.FlushLimit = 3;
  // No backoff: every storm request lands, so the ceiling is reached
  // within the program's handful of monitor dispatches.
  Config.Hardening.FlushStormBackoffSteps = 1;
  mda::DpehPolicy Policy(10);
  dbt::RunResult R = runChaos(Image, Policy, Plan, Config);
  EXPECT_FALSE(R.completed());
  EXPECT_EQ(R.Error, dbt::RunError::CacheThrash);
}

// ---- determinism and randomized mini-soak ----------------------------------

TEST(ChaosEngineTest, CampaignsReplayBitIdentically) {
  guest::GuestImage Image = lateOnsetProgram(800, 200);
  chaos::FaultPlan Plan = chaos::FaultPlan::randomized(1234);
  mda::ExceptionHandlingPolicy P1(10), P2(10);
  dbt::RunResult A = runChaos(Image, P1, Plan);
  dbt::RunResult B = runChaos(Image, P2, Plan);
  EXPECT_EQ(A.Error, B.Error);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.MemoryHash, B.MemoryHash);
  ASSERT_EQ(A.Counters.entries().size(), B.Counters.entries().size());
  for (const auto &Entry : A.Counters.entries())
    EXPECT_EQ(Entry.second, B.Counters.get(Entry.first)) << Entry.first;
}

TEST(ChaosEngineTest, RandomizedCampaignsNeverWedgeOrCorrupt) {
  guest::GuestImage Image = lateOnsetProgram(600, 150);
  Oracle O = interpretOracle(Image);
  const mda::PolicySpec Specs[] = {
      {mda::MechanismKind::Direct, 0, false, 0, false},
      {mda::MechanismKind::DynamicProfiling, 10, false, 0, false},
      {mda::MechanismKind::ExceptionHandling, 10, true, 0, false},
      {mda::MechanismKind::Dpeh, 10, false, 4, false},
  };
  for (uint64_t Seed = 0; Seed != 24; ++Seed) {
    chaos::FaultPlan Plan = chaos::FaultPlan::randomized(5000 + Seed);
    std::unique_ptr<dbt::MdaPolicy> Policy =
        mda::makePolicy(Specs[Seed % 4]);
    dbt::EngineConfig Config;
    if (Seed % 3 == 1)
      Config.CodeCacheLimitWords = 200;
    if (Seed % 3 == 2)
      Config.FlushOnSupersede = true;
    dbt::RunResult R = runChaos(Image, *Policy, Plan, Config);
    if (R.completed()) {
      expectMatchesOracle(
          R, O, ("chaos seed " + std::to_string(Seed)).c_str());
    } else {
      // A typed abort is acceptable; a step-guard trip is a wedge.
      EXPECT_NE(R.Error, dbt::RunError::MonitorStepLimit)
          << "campaign " << Seed << " wedged";
    }
  }
}

TEST(ChaosEngineTest, DispatchMechanismsSurviveRandomizedCampaigns) {
  // Hash dispatch, inline caches, and superblocks all add mutable
  // host-code surface (table entries, IC guard words, trace installs
  // with chain redirection); under randomized injection they must keep
  // the same contract as the baseline — survive bit-exactly or abort
  // with a typed error, never wedge, never pass verification with a
  // structurally broken cache.
  guest::GuestImage Image = lateOnsetProgram(600, 150);
  Oracle O = interpretOracle(Image);
  const mda::PolicySpec Specs[] = {
      {mda::MechanismKind::ExceptionHandling, 10, true, 0, false},
      {mda::MechanismKind::Dpeh, 10, false, 4, false},
  };
  for (uint64_t Seed = 0; Seed != 24; ++Seed) {
    chaos::FaultPlan Plan = chaos::FaultPlan::randomized(9100 + Seed);
    std::unique_ptr<dbt::MdaPolicy> Policy =
        mda::makePolicy(Specs[Seed % 2]);
    dbt::EngineConfig Config;
    Config.HashDispatch = true;
    Config.InlineCaches = true;
    Config.Superblocks = true;
    Config.Verify = true;
    if (Seed % 3 == 1)
      Config.CodeCacheLimitWords = 200;
    if (Seed % 3 == 2)
      Config.FlushOnSupersede = true;
    dbt::RunResult R = runChaos(Image, *Policy, Plan, Config);
    if (R.completed()) {
      expectMatchesOracle(
          R, O, ("dispatch chaos seed " + std::to_string(Seed)).c_str());
    } else {
      EXPECT_NE(R.Error, dbt::RunError::MonitorStepLimit)
          << "dispatch campaign " << Seed << " wedged";
    }
  }
}

// ---- code-cache verifier under injection -----------------------------------

namespace {

/// A miniature translation laid out the way the engine does it: a body
/// with one trapping-capable memory op and an exit, followed by an MDA
/// stub that branches back past the fault site.  Returns the verifier's
/// view of it.
struct FakeTranslation {
  uint32_t FaultWord = 0;
  uint32_t ExitWord = 0;
  analysis::VerifierInput Input;

  explicit FakeTranslation(host::CodeSpace &Code) {
    host::HostAssembler Asm(Code);
    uint32_t Entry = Asm.pos();
    FaultWord = Asm.mem(host::HostOp::Ldl, 3, 2, 4);
    ExitWord = Asm.emit(host::srvInst(host::SrvFunc::Exit));
    uint32_t BodyEnd = Asm.pos();
    uint32_t StubBegin = Asm.pos();
    host::emitMdaLoad(Asm, 4, 3, 4, 2);
    Asm.brTo(FaultWord + 1);
    uint32_t StubEnd = Asm.pos();
    Asm.finish();
    Input.Blocks.push_back({Entry,
                            BodyEnd,
                            {{StubBegin, StubEnd}},
                            {{FaultWord, /*Reverted=*/false}},
                            {ExitWord},
                            /*IcWays=*/{}});
  }

  /// The word the engine would patch over the fault site.
  uint32_t patchWord(const host::CodeSpace &Code) const {
    uint32_t StubBegin = Input.Blocks[0].Stubs[0].Begin;
    (void)Code;
    return host::encodeHost(host::brInst(
        host::HostOp::Br, host::RegZero,
        static_cast<int32_t>(StubBegin) -
            static_cast<int32_t>(FaultWord + 1)));
  }
};

} // namespace

TEST(ChaosVerifierTest, CleanPatchedTranslationPasses) {
  host::CodeSpace Code;
  FakeTranslation T(Code);
  Code.patch(T.FaultWord, T.patchWord(Code));
  analysis::VerifyReport R = analysis::verifyCodeSpace(Code, T.Input);
  EXPECT_TRUE(R.ok()) << (R.Issues.empty()
                              ? ""
                              : analysis::verifyIssueToString(R.Issues[0]));
  EXPECT_EQ(R.MdaSequencesChecked, 1u);
}

TEST(ChaosVerifierTest, DroppedPatchIsFlaggedBeforeExecution) {
  // The injector swallows the stub-redirect write, so the fault site
  // still holds the original memory op while the engine's bookkeeping
  // says it was patched.  The verifier must flag the stale site purely
  // structurally — no run, no architectural-state comparison.
  host::CodeSpace Code;
  FakeTranslation T(Code);
  Code.setPatchHook([](uint32_t, uint32_t &) { return false; });
  Code.patch(T.FaultWord, T.patchWord(Code));
  analysis::VerifyReport R = analysis::verifyCodeSpace(Code, T.Input);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Issues[0].Kind, analysis::VerifyIssueKind::PatchSiteBad);
  EXPECT_EQ(R.Issues[0].Word, T.FaultWord);
}

TEST(ChaosVerifierTest, TornPatchIsFlaggedBeforeExecution) {
  // The injector corrupts the written word instead of dropping it.
  host::CodeSpace Code;
  FakeTranslation T(Code);
  Code.setPatchHook([](uint32_t, uint32_t &Word) {
    Word ^= 0x00040001; // torn write: displacement bits flipped
    return true;
  });
  Code.patch(T.FaultWord, T.patchWord(Code));
  analysis::VerifyReport R = analysis::verifyCodeSpace(Code, T.Input);
  ASSERT_FALSE(R.ok());
  bool FlaggedAtSite = false;
  for (const analysis::VerifyIssue &I : R.Issues)
    FlaggedAtSite |= I.Word == T.FaultWord;
  EXPECT_TRUE(FlaggedAtSite);
}

TEST(ChaosVerifierTest, CampaignsWithVerifierKeepSurvivalContract) {
  // The full chaos mini-soak with the verifier on: every campaign still
  // either survives bit-exactly or aborts typed, and a verifier abort
  // is itself a typed outcome — never a wedge, never silent corruption.
  guest::GuestImage Image = lateOnsetProgram(600, 150);
  Oracle O = interpretOracle(Image);
  const mda::PolicySpec Specs[] = {
      {mda::MechanismKind::DynamicProfiling, 10, false, 0, false},
      {mda::MechanismKind::ExceptionHandling, 10, true, 0, false},
      {mda::MechanismKind::Dpeh, 10, false, 4, false},
  };
  uint64_t VerifierPassTotal = 0;
  for (uint64_t Seed = 0; Seed != 18; ++Seed) {
    chaos::FaultPlan Plan = chaos::FaultPlan::randomized(9000 + Seed);
    std::unique_ptr<dbt::MdaPolicy> Policy =
        mda::makePolicy(Specs[Seed % 3]);
    dbt::EngineConfig Config;
    Config.Verify = true;
    if (Seed % 3 == 1)
      Config.CodeCacheLimitWords = 200;
    dbt::RunResult R = runChaos(Image, *Policy, Plan, Config);
    VerifierPassTotal += R.Counters.get("verify.passes");
    if (R.completed()) {
      expectMatchesOracle(
          R, O, ("verified chaos seed " + std::to_string(Seed)).c_str());
      // A run that claims success must have a clean cache throughout.
      EXPECT_EQ(R.Counters.get("verify.issues"), 0u) << "seed " << Seed;
    } else {
      EXPECT_NE(R.Error, dbt::RunError::MonitorStepLimit)
          << "verified campaign " << Seed << " wedged";
    }
  }
  EXPECT_GT(VerifierPassTotal, 0u);
}

TEST(ChaosVerifierTest, VerifierIsFreeWhenDisabled) {
  guest::GuestImage Image = misalignedSumProgram(300);
  mda::ExceptionHandlingPolicy P1(10), P2(10);
  dbt::RunResult A = dbt::Engine(Image, P1).run();
  dbt::EngineConfig Config;
  Config.Verify = true;
  dbt::RunResult B = dbt::Engine(Image, P2, Config).run();
  // The verifier is an observer: modeled cycles and architectural state
  // are untouched; only the verification counters appear.
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.MemoryHash, B.MemoryHash);
  EXPECT_GT(B.Counters.get("verify.passes"), 0u);
  EXPECT_EQ(B.Counters.get("verify.issues"), 0u);
  EXPECT_EQ(A.Counters.get("verify.passes"), 0u);
}

// ---- baseline purity --------------------------------------------------------

TEST(ChaosEngineTest, DisabledPlanLeavesRunUntouched) {
  guest::GuestImage Image = misalignedSumProgram(300);
  chaos::FaultPlan Empty; // all rates zero: enabled() == false
  mda::ExceptionHandlingPolicy P1(10), P2(10);
  dbt::Engine E1(Image, P1);
  dbt::RunResult A = E1.run();
  dbt::EngineConfig Config;
  Config.Chaos = &Empty;
  dbt::Engine E2(Image, P2, Config);
  dbt::RunResult B = E2.run();
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.MemoryHash, B.MemoryHash);
  EXPECT_EQ(B.Counters.get("chaos.injected"), 0u);
}

// ---- shared-cache chaos: cross-tenant isolation ----------------------------
//
// The serving contract under chaos (docs/SERVING.md): faults injected
// into one tenant's run may degrade THAT tenant -- typed abort or
// bit-identical completion, as above -- but can never retire, corrupt,
// or leak into translations other tenants reach through the same
// SharedTranslationCache, and can never strand a lease.

namespace {

/// Serving configuration used by the shared-cache chaos tests: verifier
/// armed (a corrupt cached body is a typed abort, not silent reuse),
/// analysis on (the hostile SMC tenants require the write monitor), the
/// full dispatch surface, all bound to one shared service.
dbt::EngineConfig sharedConfig(dbt::TranslationService *Service) {
  dbt::EngineConfig Config;
  Config.Verify = true;
  Config.Analysis = true;
  Config.HashDispatch = true;
  Config.InlineCaches = true;
  Config.Superblocks = true;
  Config.Service = Service;
  return Config;
}

dbt::RunResult runServed(const guest::GuestImage &Image,
                         const mda::PolicySpec &Spec,
                         dbt::EngineConfig Config) {
  std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(Spec, &Image);
  dbt::Engine Engine(Image, *Policy, Config);
  return Engine.run();
}

dbt::RunResult runServedChaos(const guest::GuestImage &Image,
                              const mda::PolicySpec &Spec,
                              const chaos::FaultPlan &Plan,
                              dbt::EngineConfig Config) {
  std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(Spec, &Image);
  return runChaos(Image, *Policy, Plan, Config);
}

mda::PolicySpec servedEh() {
  return {mda::MechanismKind::ExceptionHandling, 50, true, 0, false};
}
mda::PolicySpec servedDpeh() {
  return {mda::MechanismKind::Dpeh, 50, false, 4, false};
}

} // namespace

TEST(ChaosServingTest, ChaosTenantCannotRetireOtherTenantsEntries) {
  guest::GuestImage Clean = misalignedSumProgram(400);
  Oracle O = interpretOracle(Clean);
  dbt::TranslationService Service;

  // A well-behaved tenant warms the shared cache.
  dbt::RunResult Warm0 = runServed(Clean, servedEh(), sharedConfig(&Service));
  expectMatchesOracle(Warm0, O, "clean tenant, cold");
  uint64_t Entries = Service.cache().entries();
  ASSERT_GT(Entries, 0u);

  // A hostile tenant hammers the same service with torn patches, dropped
  // patches and flush storms.  Its own run may degrade; the shared
  // entries must survive untouched.
  chaos::FaultPlan Plan;
  Plan.Seed = 2024;
  Plan.PatchTornRate = 0.3;
  Plan.PatchDropRate = 0.2;
  Plan.FlushStormRate = 0.1;
  const workloads::HostileProgram H = workloads::hostileCatalog().front();
  dbt::RunResult HBase = runServed(H.Image, servedDpeh(), sharedConfig(nullptr));
  dbt::RunResult RChaos =
      runServedChaos(H.Image, servedDpeh(), Plan, sharedConfig(&Service));
  if (RChaos.completed()) {
    EXPECT_EQ(RChaos.Checksum, HBase.Checksum) << "chaos tenant corrupted";
    EXPECT_EQ(RChaos.MemoryHash, HBase.MemoryHash) << "chaos tenant corrupted";
  }

  // The clean tenant's translations are still resident: a re-run is
  // all hits, and still bit-identical to the interpreter oracle.
  EXPECT_GE(Service.cache().entries(), Entries)
      << "chaos tenant retired shared entries";
  dbt::RunResult Warm1 = runServed(Clean, servedEh(), sharedConfig(&Service));
  expectMatchesOracle(Warm1, O, "clean tenant, after chaos neighbour");
  EXPECT_EQ(Warm1.Counters.get("cache.misses"), 0u)
      << "chaos tenant forced re-translation of a clean tenant";
  EXPECT_GT(Warm1.Counters.get("cache.hits"), 0u);
  EXPECT_EQ(Service.cache().liveLeases(), 0u) << "lease leak";
}

TEST(ChaosServingTest, EntriesPublishedUnderChaosAreSafeToReuse) {
  // The publisher runs entirely under fault injection.  Anything it
  // manages to publish must still be the translator's exact output:
  // a later clean tenant reusing those entries has to be byte-identical
  // to a tenant that never shared a cache with anyone.
  guest::GuestImage Image = misalignedSumProgram(500);
  chaos::FaultPlan Plan;
  Plan.Seed = 77;
  Plan.PatchTornRate = 0.3;
  Plan.TranslateFailRate = 0.2;
  Plan.FlushStormRate = 0.05;

  dbt::TranslationService Service;
  dbt::RunResult RChaos =
      runServedChaos(Image, servedEh(), Plan, sharedConfig(&Service));
  EXPECT_GT(RChaos.Counters.get("chaos.injected"), 0u);
  EXPECT_EQ(Service.cache().liveLeases(), 0u) << "lease leak";

  dbt::EngineConfig Isolated = sharedConfig(nullptr);
  dbt::RunResult Expected = runServed(Image, servedEh(), Isolated);
  dbt::RunResult RClean = runServed(Image, servedEh(), sharedConfig(&Service));
  EXPECT_EQ(RClean.Error, Expected.Error);
  EXPECT_EQ(RClean.Checksum, Expected.Checksum);
  EXPECT_EQ(RClean.MemoryHash, Expected.MemoryHash);
  // Reusing entries is cheaper than translating, never dearer: modeled
  // cycles may only drop relative to the isolated tenant.
  EXPECT_LE(RClean.Cycles, Expected.Cycles);
  EXPECT_EQ(Service.cache().liveLeases(), 0u) << "lease leak";
}

TEST(ChaosServingTest, ConcurrentChaosAndCleanTenantsDoNotBleed) {
  // Chaos and clean tenants interleave on one service from several
  // threads; the clean tenants hold leases while the chaos tenants
  // storm flushes and tear patches next door.
  guest::GuestImage Clean = misalignedSumProgram(300);
  Oracle O = interpretOracle(Clean);
  const std::vector<workloads::HostileProgram> Hostile =
      workloads::hostileCatalog();
  std::vector<dbt::RunResult> HostileBase;
  for (const workloads::HostileProgram &H : Hostile)
    HostileBase.push_back(
        runServed(H.Image, servedDpeh(), sharedConfig(nullptr)));

  dbt::TranslationService Service;
  constexpr unsigned NumThreads = 4;
  constexpr unsigned Rounds = 3;
  std::vector<dbt::RunResult> CleanRuns(NumThreads * Rounds);
  std::vector<dbt::RunResult> ChaosRuns(NumThreads * Rounds);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (unsigned R = 0; R != Rounds; ++R) {
        unsigned Slot = T * Rounds + R;
        if (T % 2 == 0) {
          CleanRuns[Slot] =
              runServed(Clean, servedEh(), sharedConfig(&Service));
        } else {
          chaos::FaultPlan Plan = chaos::FaultPlan::randomized(9000 + Slot);
          const workloads::HostileProgram &H = Hostile[Slot % Hostile.size()];
          ChaosRuns[Slot] = runServedChaos(H.Image, servedDpeh(), Plan,
                                           sharedConfig(&Service));
        }
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  for (unsigned T = 0; T != NumThreads; ++T) {
    for (unsigned R = 0; R != Rounds; ++R) {
      unsigned Slot = T * Rounds + R;
      if (T % 2 == 0) {
        expectMatchesOracle(CleanRuns[Slot], O, "clean tenant under chaos");
      } else if (ChaosRuns[Slot].completed()) {
        const dbt::RunResult &Base = HostileBase[Slot % Hostile.size()];
        EXPECT_EQ(ChaosRuns[Slot].Checksum, Base.Checksum)
            << "chaos slot " << Slot << " corrupted";
        EXPECT_EQ(ChaosRuns[Slot].MemoryHash, Base.MemoryHash)
            << "chaos slot " << Slot << " corrupted";
      }
    }
  }
  EXPECT_EQ(Service.cache().liveLeases(), 0u) << "lease leak";
}
