//===- tests/translator_test.cpp - Block translator correctness -----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates single guest blocks and executes them on the host machine,
/// comparing register/memory effects against the interpreter, across all
/// three memory-operation plans (Normal / Inline / MultiVersion).
///
//===----------------------------------------------------------------------===//

#include "dbt/GuestBlock.h"
#include "dbt/Translator.h"
#include "guest/Assembler.h"
#include "guest/Interpreter.h"
#include "host/HostAssembler.h"
#include "host/HostMachine.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace mdabt;
using namespace mdabt::dbt;

namespace {

/// Translate the block at the image entry under \p Plan, run both the
/// interpreter and the host machine from identical state, and compare
/// the final guest-visible state and the exit PC.
struct BlockHarness {
  explicit BlockHarness(const guest::GuestImage &Image, MemPlan Plan)
      : Plan(Plan) {
    InterpMem.loadImage(Image);
    HostMem.loadImage(Image);
    Cpu.reset(Image);
    Block = discoverBlock(InterpMem, Image.Entry);
  }

  void run() {
    // Interpreter side.
    guest::GuestCPU ICpu = Cpu;
    guest::Interpreter Interp(InterpMem);
    Interp.stepBlock(ICpu);

    // Translated side.
    host::CodeSpace Code;
    Translator Trans(Code);
    Translation T = Trans.translate(
        Block, [&](uint32_t, const guest::GuestInst &) { return Plan; });
    MemoryHierarchy Hier;
    host::CostModel Cost;
    host::HostMachine Machine(Code, HostMem, Hier, Cost);
    Machine.setFaultHandler([&](const host::FaultInfo &) {
      ++HostFaults;
      return host::FaultAction::Fixup;
    });
    for (unsigned I = 0; I != guest::NumGPR; ++I)
      Machine.R[hostGpr(I)] = Cpu.Gpr[I];
    for (unsigned I = 0; I != guest::NumQReg; ++I)
      Machine.R[hostQ(I)] = Cpu.Qreg[I];
    Machine.R[host::RegChecksum] = Cpu.Checksum;

    host::ExitInfo E = Machine.run(T.EntryWord);
    if (ICpu.Halted) {
      EXPECT_EQ(E.K, host::ExitInfo::Halt);
    } else {
      ASSERT_EQ(E.K, host::ExitInfo::Exit);
      EXPECT_EQ(E.GuestPc, ICpu.Pc) << "exit PC diverged";
    }
    for (unsigned I = 0; I != guest::NumGPR; ++I)
      EXPECT_EQ(static_cast<uint32_t>(Machine.R[hostGpr(I)]), ICpu.Gpr[I])
          << "GPR " << I;
    for (unsigned I = 0; I != guest::NumQReg; ++I)
      EXPECT_EQ(Machine.R[hostQ(I)], ICpu.Qreg[I]) << "Q" << I;
    EXPECT_EQ(Machine.R[host::RegChecksum], ICpu.Checksum) << "checksum";
    EXPECT_EQ(0, std::memcmp(InterpMem.data(), HostMem.data(),
                             InterpMem.size()))
        << "guest memory diverged";
  }

  MemPlan Plan;
  guest::GuestMemory InterpMem;
  guest::GuestMemory HostMem;
  guest::GuestCPU Cpu;
  GuestBlock Block;
  unsigned HostFaults = 0;
};

const MemPlan AllPlans[] = {MemPlan::Normal, MemPlan::Inline,
                            MemPlan::MultiVersion};

} // namespace

TEST(GuestBlockTest, DiscoversUpToTerminator) {
  guest::ProgramBuilder B("t");
  B.movri(0, 1);
  B.addi(0, 2);
  auto L = B.newLabel();
  B.jmp(L);
  B.bind(L);
  B.halt();
  guest::GuestImage Image = B.build();
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  GuestBlock Blk = discoverBlock(Mem, Image.Entry);
  ASSERT_EQ(Blk.size(), 3u);
  EXPECT_EQ(Blk.Insts.back().Op, guest::Opcode::Jmp);
  GuestBlock Tail = discoverBlock(Mem, Blk.Insts.back().branchTarget(
                                           Blk.InstPcs.back()));
  ASSERT_EQ(Tail.size(), 1u);
  EXPECT_EQ(Tail.Insts[0].Op, guest::Opcode::Halt);
}

TEST(TranslatorTest, StraightLineAlu) {
  for (MemPlan P : AllPlans) {
    guest::ProgramBuilder B("t");
    B.movri(0, 100);
    B.movri(1, 7);
    B.add(0, 1);
    B.muli(0, 3);
    B.subi(0, 21);    // 300
    B.movri(2, -1);
    B.xori(2, 0xff);  // 0xffffff00
    B.movri(3, 0x80000000);
    B.shri(3, 4);
    B.chk(0);
    B.halt();
    BlockHarness H(B.build(), P);
    H.run();
  }
}

TEST(TranslatorTest, ShiftVariants) {
  guest::ProgramBuilder B("t");
  B.movri(0, 0x80000001);
  B.movri(1, 33); // masked to 1
  B.movri(2, 0x80000001);
  B.shl(2, 1);
  B.movri(3, 0x80000001);
  B.shr(3, 1);
  B.movri(5, -64);
  B.sari(5, 3);
  B.movri(6, -64);
  B.movri(7, 2);
  B.sar(6, 7);
  B.halt();
  BlockHarness H(B.build(), MemPlan::Normal);
  H.run();
}

TEST(TranslatorTest, AlignedMemoryOps) {
  for (MemPlan P : AllPlans) {
    guest::ProgramBuilder B("t");
    uint32_t Buf = B.dataReserve(128, 8);
    B.movri(0, static_cast<int32_t>(Buf));
    B.movri(1, 0x11223344);
    B.stl(guest::mem(0, 0), 1);
    B.ldl(2, guest::mem(0, 0));
    B.stw(guest::mem(0, 8), 1);
    B.ldw(3, guest::mem(0, 8));
    B.stb(guest::mem(0, 12), 1);
    B.ldb(5, guest::mem(0, 12));
    B.qmovi(0, -7);
    B.stq(guest::mem(0, 16), 0);
    B.ldq(1, guest::mem(0, 16));
    B.qchk(1);
    B.halt();
    BlockHarness H(B.build(), P);
    H.run();
    EXPECT_EQ(H.HostFaults, 0u) << "aligned ops must not fault";
  }
}

TEST(TranslatorTest, MisalignedMemoryOpsInlinePlanAvoidsFaults) {
  guest::ProgramBuilder B("t");
  uint32_t Buf = B.dataReserve(128, 8);
  B.movri(0, static_cast<int32_t>(Buf + 1));
  B.movri(1, 0xdeadbeef);
  B.stl(guest::mem(0, 0), 1);
  B.ldl(2, guest::mem(0, 0));
  B.qmovi(0, 12345);
  B.stq(guest::mem(0, 8), 0);
  B.ldq(1, guest::mem(0, 8));
  B.stw(guest::mem(0, 20), 1);
  B.ldw(3, guest::mem(0, 20));
  B.halt();
  guest::GuestImage Image = B.build();
  {
    BlockHarness H(Image, MemPlan::Inline);
    H.run();
    EXPECT_EQ(H.HostFaults, 0u) << "inline MDA sequences never trap";
  }
  {
    BlockHarness H(Image, MemPlan::MultiVersion);
    H.run();
    EXPECT_EQ(H.HostFaults, 0u) << "multi-version code never traps";
  }
  {
    BlockHarness H(Image, MemPlan::Normal);
    H.run();
    EXPECT_EQ(H.HostFaults, 6u) << "normal plan faults on each MDA";
  }
}

TEST(TranslatorTest, AddressingModes) {
  for (MemPlan P : AllPlans) {
    guest::ProgramBuilder B("t");
    uint32_t Buf = B.dataReserve(4096, 8);
    B.movri(0, static_cast<int32_t>(Buf));
    B.movri(1, 5); // index
    B.movri(2, 0xabcd1234);
    B.stl(guest::memIdx(0, 1, 2, 8), 2);       // Buf + 20 + 8
    B.ldl(3, guest::mem(0, 28));
    B.stl(guest::memIdx(0, 1, 3, 1), 2);       // Buf + 40 + 1 (misaligned)
    B.ldl(5, guest::memIdx(0, 1, 3, 1));
    B.lea(6, guest::memIdx(0, 1, 1, -2));      // Buf + 10 - 2
    B.halt();
    BlockHarness H(B.build(), P);
    H.run();
  }
}

TEST(TranslatorTest, LargeDisplacements) {
  for (MemPlan P : AllPlans) {
    guest::ProgramBuilder B("t");
    uint32_t Buf = B.dataReserve(200000, 8);
    B.movri(0, static_cast<int32_t>(Buf));
    B.movri(1, 0x5a5a5a5a);
    B.stl(guest::mem(0, 100001), 1); // misaligned, disp32
    B.ldl(2, guest::mem(0, 100001));
    B.stq(guest::mem(0, 131072), 1); // aligned? Buf is 8-aligned, disp 2^17
    B.halt();
    BlockHarness H(B.build(), P);
    H.run();
  }
}

TEST(TranslatorTest, NegativeDisplacement) {
  for (MemPlan P : AllPlans) {
    guest::ProgramBuilder B("t");
    uint32_t Buf = B.dataReserve(64, 8);
    B.movri(0, static_cast<int32_t>(Buf + 32));
    B.movri(1, 42);
    B.stl(guest::mem(0, -13), 1); // misaligned negative disp
    B.ldl(2, guest::mem(0, -13));
    B.halt();
    BlockHarness H(B.build(), P);
    H.run();
  }
}

TEST(TranslatorTest, CompareAndBranchAllConditions) {
  const guest::Cond Conds[] = {guest::Cond::Eq, guest::Cond::Ne,
                               guest::Cond::Lt, guest::Cond::Ge,
                               guest::Cond::Le, guest::Cond::Gt,
                               guest::Cond::B,  guest::Cond::Ae};
  const int32_t Pairs[][2] = {{1, 2},  {2, 1},   {3, 3},
                              {-1, 1}, {1, -1},  {-5, -5},
                              {0, 0},  {INT32_MIN, INT32_MAX}};
  for (guest::Cond C : Conds) {
    for (const auto &P : Pairs) {
      guest::ProgramBuilder B("t");
      B.movri(0, P[0]);
      B.movri(1, P[1]);
      auto L = B.newLabel();
      B.cmp(0, 1);
      B.jcc(C, L);
      B.movri(2, 111);
      B.bind(L);
      B.halt();
      // Only translate the first block (up to the Jcc).
      BlockHarness H(B.build(), MemPlan::Normal);
      H.run();
    }
  }
}

TEST(TranslatorTest, CompareImmediateForms) {
  for (int32_t Imm : {0, 1, 255, 256, -1, 100000, INT32_MIN}) {
    guest::ProgramBuilder B("t");
    B.movri(0, 77);
    auto L = B.newLabel();
    B.cmpi(0, Imm);
    B.jcc(guest::Cond::Lt, L);
    B.movri(1, 1);
    B.bind(L);
    B.halt();
    BlockHarness H(B.build(), MemPlan::Normal);
    H.run();
  }
}

TEST(TranslatorTest, CallPushesReturnAddress) {
  guest::ProgramBuilder B("t");
  auto Fn = B.newLabel();
  B.movri(0, 5);
  B.call(Fn);
  B.bind(Fn);
  B.halt();
  BlockHarness H(B.build(), MemPlan::Normal);
  H.run();
}

TEST(TranslatorTest, RetPopsReturnAddress) {
  // Build a block that is just "ret", with the stack prepared.
  guest::ProgramBuilder B("t");
  B.ret();
  guest::GuestImage Image = B.build();
  // Prepare a return address on the stack in both memories via image
  // data?  Simpler: seed the stack via CPU + memory stores below.
  BlockHarness H(Image, MemPlan::Normal);
  H.Cpu.Gpr[guest::RegSP] = guest::layout::StackTop - 4;
  H.InterpMem.store(H.Cpu.Gpr[guest::RegSP], 4, 0x4000);
  H.HostMem.store(H.Cpu.Gpr[guest::RegSP], 4, 0x4000);
  H.run();
}

TEST(TranslatorTest, QRegisterOps) {
  guest::ProgramBuilder B("t");
  B.qmovi(0, -100000);
  B.qmovi(1, 300);
  B.qadd(0, 1);
  B.qaddi(0, 77);
  B.qaddi(0, -1000);
  B.movri(3, 0xdead);
  B.gtoq(2, 3);
  B.qxor(0, 2);
  B.qtog(5, 0);
  B.qchk(0);
  B.halt();
  BlockHarness H(B.build(), MemPlan::Normal);
  H.run();
}

TEST(TranslatorTest, MovriExtremes) {
  for (int32_t V : {0, 1, 0x7fff, 0x8000, -1, INT32_MAX, INT32_MIN,
                    0x12345678}) {
    guest::ProgramBuilder B("t");
    B.movri(0, V);
    B.chk(0);
    B.halt();
    BlockHarness H(B.build(), MemPlan::Normal);
    H.run();
  }
}

TEST(TranslatorTest, StubEmissionAndPatching) {
  // Manually exercise the exception handler's code path: emit a stub for
  // a faulting ldl and patch the site.
  host::CodeSpace Code;
  Translator Trans(Code);
  host::HostAssembler Asm(Code);
  uint32_t FaultW = Asm.mem(host::HostOp::Ldl, 3, 1, 2);
  Asm.srv(host::SrvFunc::Halt);
  Asm.finish();

  host::HostInst Faulting;
  ASSERT_TRUE(host::decodeHost(Code.word(FaultW), Faulting));
  Translator::StubInfo S = Trans.emitStub(Faulting, FaultW);
  Trans.patchToStub(FaultW, S.Entry);

  guest::GuestMemory Mem;
  Mem.store(0x1001, 4, 0xfeedf00d);
  MemoryHierarchy Hier;
  host::CostModel Cost;
  host::HostMachine Machine(Code, Mem, Hier, Cost);
  Machine.setFaultHandler([](const host::FaultInfo &) {
    ADD_FAILURE() << "patched code must not fault";
    return host::FaultAction::Halt;
  });
  Machine.R[2] = 0x1000;
  ASSERT_EQ(Machine.run(0).K, host::ExitInfo::Halt);
  EXPECT_EQ(Machine.R[3], 0xfeedf00du);
  EXPECT_EQ(Machine.Faults, 0u);
}

TEST(TranslatorTest, RecordsMemWordMapping) {
  guest::ProgramBuilder B("t");
  uint32_t Buf = B.dataReserve(64, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.ldl(1, guest::mem(0, 0));  // trapping-capable
  B.ldb(2, guest::mem(0, 4));  // byte: never traps, not recorded
  B.stq(guest::mem(0, 8), 0);  // trapping-capable
  B.halt();
  guest::GuestImage Image = B.build();
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  GuestBlock Blk = discoverBlock(Mem, Image.Entry);
  host::CodeSpace Code;
  Translator Trans(Code);
  Translation T = Trans.translate(
      Blk, [](uint32_t, const guest::GuestInst &) { return MemPlan::Normal; });
  EXPECT_EQ(T.MemWordToGuestPc.size(), 2u);
  EXPECT_EQ(T.GuestInsts, Blk.size());
  EXPECT_GT(T.EndWord, T.EntryWord);
}
