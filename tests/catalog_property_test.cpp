//===- tests/catalog_property_test.cpp - Planner invariants ---------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests over all 54 catalog entries: the synthesis plan must
/// satisfy its structural invariants (pattern minimums, gating rules,
/// site budgets) and its analytical census must track the paper's
/// Table I within tolerance — for every benchmark, not just the ones the
/// experiments highlight.
///
//===----------------------------------------------------------------------===//

#include "workloads/SpecCatalog.h"
#include "workloads/SpecPrograms.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::workloads;

namespace {

class CatalogPropertyTest
    : public ::testing::TestWithParam<const BenchmarkInfo *> {};

std::vector<const BenchmarkInfo *> allBenchmarks() {
  std::vector<const BenchmarkInfo *> Out;
  for (const BenchmarkInfo &B : specCatalog())
    Out.push_back(&B);
  return Out;
}

uint64_t planMdas(const ProgramPlan &Plan) {
  uint64_t Total = 0;
  for (const SiteGroup &G : Plan.Groups)
    Total += G.expectedMdas(Plan.Rounds);
  return Total;
}

uint64_t planRefs(const ProgramPlan &Plan) {
  uint64_t Total = 0;
  for (const SiteGroup &G : Plan.Groups)
    Total += G.expectedRefs(Plan.Rounds);
  return Total;
}

uint32_t planMdaSites(const ProgramPlan &Plan) {
  uint32_t Total = 0;
  for (const SiteGroup &G : Plan.Groups)
    if (G.expectedMdas(Plan.Rounds) != 0)
      Total += G.Sites;
  return Total;
}

} // namespace

TEST_P(CatalogPropertyTest, PlanStructuralInvariants) {
  const BenchmarkInfo &Info = *GetParam();
  ScaleConfig Scale;
  ProgramPlan Plan = makePlan(Info, Scale);
  ASSERT_FALSE(Plan.Groups.empty());
  for (const SiteGroup &G : Plan.Groups) {
    EXPECT_GT(G.Sites, 0u) << Info.Name;
    EXPECT_GT(G.ItersPerRound, 0u) << Info.Name;
    EXPECT_TRUE(G.Size == 2 || G.Size == 4 || G.Size == 8) << Info.Name;
    // Pattern minimums.
    switch (G.Bias) {
    case BiasKind::Rare:
      EXPECT_GE(G.ItersPerRound, 16u) << Info.Name;
      break;
    case BiasKind::Equal50:
    case BiasKind::Above50:
    case BiasKind::Below50:
      EXPECT_GE(G.ItersPerRound, 8u) << Info.Name;
      break;
    default:
      break;
    }
    // Gated groups: Always bias only (they share RTmp with the bias
    // computation otherwise).
    if (G.GatedIters) {
      EXPECT_EQ(G.Bias, BiasKind::Always) << Info.Name;
    }
    // Ref-only groups must misalign from round zero under REF.
    if (G.RefOnly) {
      EXPECT_EQ(G.OnsetRound, 0u) << Info.Name;
    }
  }
}

TEST_P(CatalogPropertyTest, PlanTracksPaperRatio) {
  const BenchmarkInfo &Info = *GetParam();
  ScaleConfig Scale;
  ProgramPlan Plan = makePlan(Info, Scale);
  double Ratio = static_cast<double>(planMdas(Plan)) /
                 static_cast<double>(std::max<uint64_t>(
                     planRefs(Plan), Scale.TotalRefs));
  double Target = std::min(Info.PaperRatio, Scale.MaxMisFraction);
  // The plan floors tiny ratios at a few MDAs per site, so the check is
  // one-sided for near-zero rows and two-sided elsewhere.
  if (Target >= 0.001) {
    EXPECT_NEAR(Ratio, Target, std::max(0.45 * Target, 0.001))
        << Info.Name;
  } else {
    EXPECT_LT(Ratio, 0.01) << Info.Name;
  }
}

TEST_P(CatalogPropertyTest, PlanPreservesNmiWithinBudget) {
  const BenchmarkInfo &Info = *GetParam();
  ScaleConfig Scale;
  ProgramPlan Plan = makePlan(Info, Scale);
  uint32_t Sites = planMdaSites(Plan);
  EXPECT_GT(Sites, 0u) << Info.Name;
  // Never more MDA sites than the paper's NMI (plus the handful of rare
  // sites that model mixed-traffic populations).
  EXPECT_LE(Sites, Info.PaperNmi + 8) << Info.Name;
  // When the MDA budget covers the paper's NMI, the plan must use most
  // of it.
  uint64_t Budget = planMdas(Plan);
  if (Budget >= 2ULL * Info.PaperNmi) {
    EXPECT_GE(Sites, Info.PaperNmi * 9 / 10) << Info.Name;
  }
}

TEST_P(CatalogPropertyTest, DataFitsBelowRuntimeRegion) {
  const BenchmarkInfo &Info = *GetParam();
  ScaleConfig Scale;
  guest::GuestImage Image = buildBenchmark(Info, InputKind::Ref, Scale);
  EXPECT_LT(Image.dataEnd(), guest::layout::RuntimeBase) << Info.Name;
  EXPECT_LT(Image.codeEnd(), guest::layout::DataBase) << Info.Name;
}

INSTANTIATE_TEST_SUITE_P(
    All54, CatalogPropertyTest, ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<const BenchmarkInfo *> &I) {
      std::string Name = I.param->Name;
      for (char &C : Name)
        if (C == '.' || C == '-')
          C = '_';
      return Name;
    });

TEST(CatalogScaleTest, PlansScaleWithRefBudget) {
  const BenchmarkInfo *Info = findBenchmark("453.povray");
  ASSERT_NE(Info, nullptr);
  ScaleConfig Small;
  Small.TotalRefs = 100000;
  ScaleConfig Large;
  Large.TotalRefs = 1000000;
  uint64_t SmallMdas = planMdas(makePlan(*Info, Small));
  uint64_t LargeMdas = planMdas(makePlan(*Info, Large));
  // MDAs scale roughly linearly with the reference budget.
  EXPECT_GT(LargeMdas, SmallMdas * 7);
  EXPECT_LT(LargeMdas, SmallMdas * 14);
}

TEST(CatalogScaleTest, RefOnlyGroupsOnlyForTrainEscapers) {
  ScaleConfig Scale;
  for (const BenchmarkInfo &Info : specCatalog()) {
    ProgramPlan Plan = makePlan(Info, Scale);
    bool HasRefOnly = false;
    for (const SiteGroup &G : Plan.Groups)
      HasRefOnly |= G.RefOnly;
    if (Info.trainEscapeFrac() * Info.PaperRatio * Scale.TotalRefs < 16) {
      EXPECT_FALSE(HasRefOnly) << Info.Name;
    }
    if (Info.trainEscapeFrac() > 0.05 && Info.PaperRatio > 0.01) {
      EXPECT_TRUE(HasRefOnly) << Info.Name;
    }
  }
}
