//===- tests/guest_semantics_property_test.cpp - GX86 op properties -------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the guest interpreter's ALU semantics: every
/// arithmetic/logic opcode runs with randomized and adversarial operands
/// against an independent reference model, in both register and
/// immediate forms; and a dedicated ALU-sequence fuzz compares the
/// interpreter against the translator+host pipeline instruction by
/// instruction (no memory involved, isolating data-path lowering bugs
/// from addressing bugs).
///
//===----------------------------------------------------------------------===//

#include "dbt/GuestBlock.h"
#include "dbt/Translator.h"
#include "guest/Assembler.h"
#include "guest/Interpreter.h"
#include "host/HostMachine.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::guest;

namespace {

/// Independent reference for the two-operand ALU semantics.
uint32_t reference(Opcode Op, uint32_t A, uint32_t B) {
  switch (Op) {
  case Opcode::MovRR:
  case Opcode::MovRI:
    return B;
  case Opcode::Add:
  case Opcode::AddI:
    return A + B;
  case Opcode::Sub:
  case Opcode::SubI:
    return A - B;
  case Opcode::And:
  case Opcode::AndI:
    return A & B;
  case Opcode::Or:
  case Opcode::OrI:
    return A | B;
  case Opcode::Xor:
  case Opcode::XorI:
    return A ^ B;
  case Opcode::Shl:
  case Opcode::ShlI:
    return A << (B & 31);
  case Opcode::Shr:
  case Opcode::ShrI:
    return A >> (B & 31);
  case Opcode::Sar:
  case Opcode::SarI:
    return static_cast<uint32_t>(static_cast<int32_t>(A) >> (B & 31));
  case Opcode::Mul:
  case Opcode::MulI:
    return A * B;
  default:
    ADD_FAILURE() << "no reference for opcode " << opcodeName(Op);
    return 0;
  }
}

struct OpPair {
  Opcode RegForm;
  Opcode ImmForm;
};

const OpPair AluOps[] = {
    {Opcode::Add, Opcode::AddI}, {Opcode::Sub, Opcode::SubI},
    {Opcode::And, Opcode::AndI}, {Opcode::Or, Opcode::OrI},
    {Opcode::Xor, Opcode::XorI}, {Opcode::Shl, Opcode::ShlI},
    {Opcode::Shr, Opcode::ShrI}, {Opcode::Sar, Opcode::SarI},
    {Opcode::Mul, Opcode::MulI}};

const uint32_t Corners[] = {0,          1,          2,          31,
                            32,         0x7f,       0x80,       0xff,
                            0x7fff,     0x8000,     0xffff,     0x10000,
                            0x7fffffff, 0x80000000, 0xfffffffe, 0xffffffff};

/// Run a two-instruction program (load operands, apply op) through the
/// interpreter.
uint32_t interpretOp(Opcode Op, uint32_t A, uint32_t B, bool Immediate) {
  ProgramBuilder Builder("t");
  Builder.movri(0, static_cast<int32_t>(A));
  if (Immediate) {
    Builder.aluImm(Op, 0, static_cast<int32_t>(B));
  } else {
    Builder.movri(1, static_cast<int32_t>(B));
    Builder.alu(Op, 0, 1);
  }
  Builder.halt();
  GuestImage Image = Builder.build();
  GuestMemory Mem;
  Mem.loadImage(Image);
  GuestCPU Cpu;
  Cpu.reset(Image);
  Interpreter Interp(Mem);
  Interp.run(Cpu, 100);
  EXPECT_TRUE(Cpu.Halted);
  return Cpu.Gpr[0];
}

class GuestAluPropertyTest : public ::testing::TestWithParam<OpPair> {};

} // namespace

TEST_P(GuestAluPropertyTest, RegisterFormMatchesReference) {
  OpPair P = GetParam();
  RNG R(static_cast<uint64_t>(P.RegForm) * 733 + 3);
  for (int I = 0; I != 120; ++I) {
    uint32_t A = static_cast<uint32_t>(R.next());
    uint32_t B = static_cast<uint32_t>(R.next());
    EXPECT_EQ(interpretOp(P.RegForm, A, B, false),
              reference(P.RegForm, A, B))
        << opcodeName(P.RegForm) << " A=" << A << " B=" << B;
  }
  for (uint32_t A : Corners)
    for (uint32_t B : Corners)
      EXPECT_EQ(interpretOp(P.RegForm, A, B, false),
                reference(P.RegForm, A, B))
          << opcodeName(P.RegForm) << " A=" << A << " B=" << B;
}

TEST_P(GuestAluPropertyTest, ImmediateFormMatchesReference) {
  OpPair P = GetParam();
  RNG R(static_cast<uint64_t>(P.ImmForm) * 547 + 11);
  for (int I = 0; I != 120; ++I) {
    uint32_t A = static_cast<uint32_t>(R.next());
    uint32_t B = static_cast<uint32_t>(R.next());
    EXPECT_EQ(interpretOp(P.ImmForm, A, B, true),
              reference(P.ImmForm, A, B))
        << opcodeName(P.ImmForm) << " A=" << A << " B=" << B;
  }
}

TEST_P(GuestAluPropertyTest, SameRegisterOperandsWork) {
  // alu(r, r): A == B, a classic aliasing corner.
  OpPair P = GetParam();
  for (uint32_t A : Corners) {
    ProgramBuilder Builder("t");
    Builder.movri(2, static_cast<int32_t>(A));
    Builder.alu(P.RegForm, 2, 2);
    Builder.halt();
    GuestImage Image = Builder.build();
    GuestMemory Mem;
    Mem.loadImage(Image);
    GuestCPU Cpu;
    Cpu.reset(Image);
    Interpreter Interp(Mem);
    Interp.run(Cpu, 100);
    EXPECT_EQ(Cpu.Gpr[2], reference(P.RegForm, A, A))
        << opcodeName(P.RegForm) << " A=" << A;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAluOps, GuestAluPropertyTest,
                         ::testing::ValuesIn(AluOps),
                         [](const ::testing::TestParamInfo<OpPair> &I) {
                           return opcodeName(I.param.RegForm);
                         });

namespace {

/// Translate a straight-line block and run it on the host machine,
/// returning the final guest GPR/Q state, for comparison against the
/// interpreter.
struct LoweredState {
  uint32_t Gpr[NumGPR];
  uint64_t Qreg[NumQReg];
  uint64_t Checksum;
};

LoweredState runLowered(const GuestImage &Image) {
  GuestMemory Mem;
  Mem.loadImage(Image);
  dbt::GuestBlock Blk = dbt::discoverBlock(Mem, Image.Entry);
  host::CodeSpace Code;
  dbt::Translator Trans(Code);
  dbt::Translation T = Trans.translate(
      Blk, [](uint32_t, const GuestInst &) { return dbt::MemPlan::Normal; });
  MemoryHierarchy Hier;
  host::CostModel Cost;
  host::HostMachine Machine(Code, Mem, Hier, Cost);
  // Start from the same architectural state the interpreter starts from.
  GuestCPU Init;
  Init.reset(Image);
  for (unsigned I = 0; I != NumGPR; ++I)
    Machine.R[dbt::hostGpr(I)] = Init.Gpr[I];
  EXPECT_EQ(Machine.run(T.EntryWord).K, host::ExitInfo::Halt);
  LoweredState S;
  for (unsigned I = 0; I != NumGPR; ++I)
    S.Gpr[I] = static_cast<uint32_t>(Machine.R[dbt::hostGpr(I)]);
  for (unsigned I = 0; I != NumQReg; ++I)
    S.Qreg[I] = Machine.R[dbt::hostQ(I)];
  S.Checksum = Machine.R[host::RegChecksum];
  return S;
}

} // namespace

TEST(AluLoweringFuzzTest, InterpreterAndTranslatorAgree) {
  // Pure ALU/Q-register straight-line fuzz: isolates data-path lowering
  // from memory addressing.
  for (uint64_t Seed = 1; Seed != 80; ++Seed) {
    RNG R(Seed * 6364136223846793005ULL + 1);
    ProgramBuilder B("alufuzz");
    for (int I = 0; I != 40; ++I) {
      uint8_t Dst = static_cast<uint8_t>(R.below(8));
      uint8_t Src = static_cast<uint8_t>(R.below(8));
      switch (R.below(8)) {
      case 0:
        B.movri(Dst, static_cast<int32_t>(R.next()));
        break;
      case 1:
        B.alu(AluOps[R.below(9)].RegForm, Dst, Src);
        break;
      case 2:
        B.aluImm(AluOps[R.below(9)].ImmForm, Dst,
                 static_cast<int32_t>(R.next()));
        break;
      case 3:
        B.qmovi(static_cast<uint8_t>(R.below(8)),
                static_cast<int32_t>(R.next()));
        break;
      case 4:
        B.qadd(static_cast<uint8_t>(R.below(8)),
               static_cast<uint8_t>(R.below(8)));
        break;
      case 5:
        B.qxor(static_cast<uint8_t>(R.below(8)),
               static_cast<uint8_t>(R.below(8)));
        break;
      case 6:
        B.gtoq(static_cast<uint8_t>(R.below(8)), Src);
        break;
      case 7:
        B.chk(Src);
        break;
      }
    }
    B.halt();
    GuestImage Image = B.build();

    GuestMemory Mem;
    Mem.loadImage(Image);
    GuestCPU Cpu;
    Cpu.reset(Image);
    Interpreter Interp(Mem);
    Interp.run(Cpu, 1000);
    ASSERT_TRUE(Cpu.Halted) << "seed " << Seed;

    LoweredState S = runLowered(Image);
    for (unsigned I = 0; I != NumGPR; ++I)
      EXPECT_EQ(S.Gpr[I], Cpu.Gpr[I]) << "seed " << Seed << " GPR " << I;
    for (unsigned I = 0; I != NumQReg; ++I)
      EXPECT_EQ(S.Qreg[I], Cpu.Qreg[I]) << "seed " << Seed << " Q" << I;
    EXPECT_EQ(S.Checksum, Cpu.Checksum) << "seed " << Seed;
  }
}
