//===- tests/reporting_test.cpp - Reporting / native-sim / dump tests -----==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dbt/Disassembly.h"
#include "dbt/GuestBlock.h"
#include "dbt/Translator.h"
#include "guest/NativeSim.h"
#include "host/HostAssembler.h"
#include "reporting/Experiment.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::testutil;

TEST(NativeSimTest, CountsInstructionsAndRefs) {
  guest::ProgramBuilder B("t");
  uint32_t Buf = B.dataReserve(64, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(1, 7);
  B.stl(guest::mem(0, 0), 1);
  B.ldl(2, guest::mem(0, 0));
  B.chk(2);
  B.halt();
  guest::NativeRunResult R = guest::runNative(B.build());
  EXPECT_EQ(R.Instructions, 6u);
  EXPECT_EQ(R.MemoryRefs, 2u);
  EXPECT_EQ(R.Mdas, 0u);
  EXPECT_GT(R.Cycles, R.Instructions); // cold caches cost something
  EXPECT_EQ(R.Checksum, 7u);
}

TEST(NativeSimTest, MisalignedAccessesCostMore) {
  auto MakeProgram = [](int Bump) {
    guest::ProgramBuilder B("t");
    uint32_t Buf = B.dataReserve(64 * 1024 + 16, 8);
    B.movri(0, static_cast<int32_t>(Buf + Bump));
    B.movri(1, 0);
    guest::ProgramBuilder::Label Loop = B.here();
    B.stq(guest::memIdx(0, 1, 3, 0), 0);
    B.ldq(0, guest::memIdx(0, 1, 3, 0));
    B.addi(1, 1);
    B.cmpi(1, 4000);
    B.jcc(guest::Cond::B, Loop);
    B.halt();
    return B.build();
  };
  guest::NativeRunResult Aligned = guest::runNative(MakeProgram(0));
  guest::NativeRunResult Mis = guest::runNative(MakeProgram(1));
  EXPECT_EQ(Aligned.Mdas, 0u);
  EXPECT_EQ(Mis.Mdas, 8000u);
  EXPECT_EQ(Aligned.Instructions, Mis.Instructions);
  EXPECT_GT(Mis.Cycles, Aligned.Cycles);
}

TEST(NativeSimTest, ByteAccessesNeverMisalign) {
  guest::ProgramBuilder B("t");
  uint32_t Buf = B.dataReserve(64, 8);
  B.movri(0, static_cast<int32_t>(Buf + 3));
  B.movri(1, 0x41);
  B.stb(guest::mem(0, 0), 1);
  B.ldb(2, guest::mem(0, 0));
  B.halt();
  guest::NativeRunResult R = guest::runNative(B.build());
  EXPECT_EQ(R.Mdas, 0u);
}

TEST(ReportingTest, GainOver) {
  EXPECT_DOUBLE_EQ(reporting::gainOver(100, 90), 0.10);
  EXPECT_DOUBLE_EQ(reporting::gainOver(100, 110), -0.10);
  EXPECT_DOUBLE_EQ(reporting::gainOver(0, 50), 0.0);
}

TEST(ReportingTest, NormalizedSeriesGeomean) {
  reporting::NormalizedSeries S;
  S.Label = "x";
  S.Values = {1.0, 4.0};
  EXPECT_NEAR(S.geomean(), 2.0, 1e-12);
}

TEST(ReportingTest, CensusOfKnownProgram) {
  guest::GuestImage Image = misalignedSumProgram(100);
  reporting::CensusResult C = reporting::runCensus(Image);
  EXPECT_EQ(C.Mdas, 200u); // one store + one load per iteration
  EXPECT_EQ(C.Nmi, 2u);
  EXPECT_EQ(C.Refs, 200u);
  EXPECT_DOUBLE_EQ(C.Ratio, 1.0);
  EXPECT_EQ(C.Bias.Always, 2u);
}

TEST(ReportingTest, RunPolicyEndToEnd) {
  const workloads::BenchmarkInfo *Info =
      workloads::findBenchmark("470.lbm");
  ASSERT_NE(Info, nullptr);
  workloads::ScaleConfig Scale;
  Scale.TotalRefs = 40000;
  dbt::RunResult R = reporting::runPolicy(
      *Info, {mda::MechanismKind::Dpeh, 50, false, 0, false}, Scale);
  EXPECT_TRUE(R.completed()) << dbt::runErrorName(R.Error);
  EXPECT_GT(R.Cycles, 0u);
}

TEST(DisassemblyTest, DumpAnnotatesTranslation) {
  guest::ProgramBuilder B("t");
  uint32_t Buf = B.dataReserve(64, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.ldl(1, guest::mem(0, 0));
  auto L = B.newLabel();
  B.jmp(L);
  B.bind(L);
  B.halt();
  guest::GuestImage Image = B.build();
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  dbt::GuestBlock Blk = dbt::discoverBlock(Mem, Image.Entry);
  host::CodeSpace Code;
  dbt::Translator Trans(Code);
  dbt::Translation T = Trans.translate(
      Blk, [](uint32_t, const guest::GuestInst &) {
        return dbt::MemPlan::Normal;
      });
  std::string Dump = dbt::dumpTranslation(T, Code);
  EXPECT_NE(Dump.find("may trap"), std::string::npos);
  EXPECT_NE(Dump.find("exit to guest"), std::string::npos);
  EXPECT_NE(Dump.find("ldl"), std::string::npos);
  EXPECT_NE(Dump.find("srv"), std::string::npos);
}

TEST(DisassemblyTest, MarksPatchedWords) {
  dbt::Translation T;
  T.GuestPc = 0x1000;
  host::CodeSpace Code;
  {
    host::HostAssembler Asm(Code);
    Asm.mem(host::HostOp::Ldl, 1, 0, 2);
    Asm.srv(host::SrvFunc::Halt);
    Asm.finish();
  }
  T.EntryWord = 0;
  T.EndWord = Code.size();
  T.PatchedWords.push_back(0);
  std::string Dump = dbt::dumpTranslation(T, Code);
  EXPECT_NE(Dump.find("patched by the exception handler"),
            std::string::npos);
}
