//===- tests/serving_test.cpp - Shared translation cache tests ------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-tenant serving layer (docs/SERVING.md): concurrent runs
/// sharing one TranslationService must each stay byte-identical to an
/// isolated-engine oracle — including hostile self-modifying tenants in
/// the mix and with the structural verifier on — must leak zero cache
/// leases at shutdown, and must reject a truncated or bit-flipped disk
/// artifact whole rather than ever executing from it.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dbt/ExecutionContext.h"
#include "dbt/TranslationService.h"
#include "mda/PolicyFactory.h"
#include "workloads/Hostile.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

using namespace mdabt;
using namespace mdabt::testutil;

namespace {

/// A serving run: Verify on (any structural slip is a typed abort, not
/// silent corruption) plus the full dispatch surface so cached entries
/// carry exits, IC sites and superblock metadata.
dbt::EngineConfig servingConfig(dbt::TranslationService *Service) {
  dbt::EngineConfig Config;
  Config.Verify = true;
  Config.HashDispatch = true;
  Config.InlineCaches = true;
  Config.Superblocks = true;
  Config.Service = Service;
  return Config;
}

dbt::RunResult runWith(const guest::GuestImage &Image,
                       const mda::PolicySpec &Spec,
                       const dbt::EngineConfig &Config) {
  std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(Spec, &Image);
  dbt::Engine Engine(Image, *Policy, Config);
  return Engine.run();
}

/// A loop calling several hot leaf functions, each doing misaligned
/// traffic from its own slot.  Enough distinct warm blocks that a small
/// CodeCacheLimitWords forces mid-run capacity flushes.
guest::GuestImage manyHotFuncsProgram(uint32_t Outer, unsigned NumFuncs) {
  using namespace guest;
  ProgramBuilder B("many-hot-funcs");
  uint32_t Buf = B.dataReserve(64, 8);
  std::vector<ProgramBuilder::Label> Funcs;
  for (unsigned F = 0; F != NumFuncs; ++F)
    Funcs.push_back(B.newLabel());
  B.movri(6, 0);
  ProgramBuilder::Label Loop = B.here();
  for (ProgramBuilder::Label F : Funcs)
    B.call(F);
  B.addi(6, 1);
  B.cmpi(6, static_cast<int32_t>(Outer));
  B.jcc(Cond::B, Loop);
  B.halt();
  for (unsigned F = 0; F != NumFuncs; ++F) {
    B.bind(Funcs[F]);
    B.movri(0, static_cast<int32_t>(Buf + F)); // misaligned for F > 0
    B.stl(mem(0, 1), 6);
    B.ldl(2, mem(0, 1));
    B.chk(2);
    B.ret();
  }
  return B.build();
}

mda::PolicySpec ehSpec() {
  return {mda::MechanismKind::ExceptionHandling, 50, true, 0, false};
}
mda::PolicySpec dpehSpec() {
  return {mda::MechanismKind::Dpeh, 50, false, 4, false};
}

/// Every architecturally observable field of two runs must agree.
void expectSameRun(const dbt::RunResult &A, const dbt::RunResult &B,
                   const char *What) {
  EXPECT_EQ(A.Error, B.Error) << What;
  EXPECT_EQ(A.Checksum, B.Checksum) << What;
  EXPECT_EQ(A.MemoryHash, B.MemoryHash) << What;
  for (unsigned I = 0; I != guest::NumGPR; ++I)
    EXPECT_EQ(A.FinalCpu.Gpr[I], B.FinalCpu.Gpr[I]) << What << " gpr " << I;
}

} // namespace

// -- cache key ---------------------------------------------------------------

TEST(CacheKeyTest, ContentSensitivity) {
  const uint8_t A[] = {1, 2, 3, 4};
  const uint8_t B[] = {1, 2, 3, 5};
  dbt::CacheKey KA = dbt::cacheKeyFromBytes(A, sizeof(A));
  dbt::CacheKey KB = dbt::cacheKeyFromBytes(B, sizeof(B));
  EXPECT_EQ(KA, dbt::cacheKeyFromBytes(A, sizeof(A)));
  EXPECT_NE(KA, KB);
  // Prefix is not the whole: length matters.
  EXPECT_NE(KA, dbt::cacheKeyFromBytes(A, sizeof(A) - 1));
  // The two 64-bit streams are independent: flipping one byte moves
  // both halves.
  EXPECT_NE(KA.Lo, KB.Lo);
  EXPECT_NE(KA.Hi, KB.Hi);
}

// -- lease / refcount lifecycle ---------------------------------------------

TEST(SharedCacheTest, LeaseRefcountLifecycle) {
  dbt::SharedTranslationCache Cache;
  dbt::CachedTranslation T;
  T.GuestPc = 0x1000;
  T.Words = {1, 2, 3};
  dbt::CacheKey Key = dbt::cacheKeyFromBytes(
      reinterpret_cast<const uint8_t *>("block-a"), 7);

  EXPECT_FALSE(Cache.acquire(Key)); // cold miss
  EXPECT_EQ(Cache.misses(), 1u);

  dbt::TranslationLease L1 = Cache.publish(Key, T);
  EXPECT_TRUE(L1);
  EXPECT_EQ(Cache.entries(), 1u);
  EXPECT_EQ(Cache.liveLeases(), 1u);

  dbt::TranslationLease L2 = Cache.acquire(Key);
  EXPECT_TRUE(L2);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.liveLeases(), 2u);
  EXPECT_EQ(L2.get().GuestPc, 0x1000u);

  L1.release();
  EXPECT_EQ(Cache.liveLeases(), 1u);
  L1.release(); // idempotent
  EXPECT_EQ(Cache.liveLeases(), 1u);
  { dbt::TranslationLease Moved = std::move(L2); }
  EXPECT_EQ(Cache.liveLeases(), 0u);
}

TEST(SharedCacheTest, FirstWriterWinsOnKeyRace) {
  dbt::SharedTranslationCache Cache;
  dbt::CacheKey Key = dbt::cacheKeyFromBytes(
      reinterpret_cast<const uint8_t *>("dup"), 3);
  dbt::CachedTranslation A;
  A.GuestPc = 1;
  A.Words = {42};
  dbt::CachedTranslation B;
  B.GuestPc = 2;
  B.Words = {43};
  dbt::TranslationLease LA = Cache.publish(Key, A);
  dbt::TranslationLease LB = Cache.publish(Key, B);
  EXPECT_EQ(Cache.entries(), 1u);
  EXPECT_EQ(LB.get().GuestPc, 1u); // the loser leases the winner's entry
  EXPECT_EQ(Cache.liveLeases(), 2u);
}

TEST(SharedCacheTest, LeasedEntriesAreNeverEvicted) {
  dbt::SharedTranslationCache::Config Cfg;
  Cfg.Shards = 1;
  Cfg.MaxEntries = 2;
  dbt::SharedTranslationCache Cache(Cfg);
  auto KeyOf = [](uint8_t I) {
    return dbt::cacheKeyFromBytes(&I, 1);
  };
  dbt::CachedTranslation T;
  T.Words = {7};
  // Hold a lease on entry 0; fill past capacity.
  dbt::TranslationLease Held = Cache.publish(KeyOf(0), T);
  dbt::TranslationLease L1 = Cache.publish(KeyOf(1), T);
  L1.release();
  dbt::TranslationLease L2 = Cache.publish(KeyOf(2), T);
  L2.release();
  dbt::TranslationLease L3 = Cache.publish(KeyOf(3), T);
  L3.release();
  EXPECT_GT(Cache.evictions(), 0u);
  // The leased entry survived every eviction round.
  EXPECT_TRUE(Cache.acquire(KeyOf(0)));
}

// -- engine integration ------------------------------------------------------

TEST(ServingTest, ColdRunIdenticalToIsolatedEngine) {
  guest::GuestImage Image = misalignedSumProgram(4000);
  Oracle O = interpretOracle(Image);

  dbt::EngineConfig Isolated = servingConfig(nullptr);
  dbt::RunResult RIso = runWith(Image, ehSpec(), Isolated);
  expectMatchesOracle(RIso, O, "isolated");

  dbt::TranslationService Service;
  dbt::RunResult RCold = runWith(Image, ehSpec(), servingConfig(&Service));
  expectMatchesOracle(RCold, O, "cold serving");
  expectSameRun(RIso, RCold, "cold vs isolated");
  // A cold run misses on every translation and pays full translation
  // price, so even the modeled cycle total matches the isolated engine.
  EXPECT_EQ(RIso.Cycles, RCold.Cycles);
  EXPECT_EQ(RCold.Counters.get("cache.hits"), 0u);
  EXPECT_EQ(RCold.Counters.get("cache.misses"),
            Service.cache().inserts());
  EXPECT_EQ(Service.cache().liveLeases(), 0u) << "lease leak";
}

TEST(ServingTest, WarmRunHitsEverythingAndSkipsTranslation) {
  guest::GuestImage Image = misalignedSumProgram(4000);
  Oracle O = interpretOracle(Image);
  dbt::TranslationService Service;

  dbt::RunResult RCold = runWith(Image, ehSpec(), servingConfig(&Service));
  dbt::RunResult RWarm = runWith(Image, ehSpec(), servingConfig(&Service));
  expectMatchesOracle(RWarm, O, "warm serving");
  expectSameRun(RCold, RWarm, "warm vs cold");

  // Deterministic replay: the second run re-derives the same keys, so
  // every translation is a hit and no re-translation happens at all.
  EXPECT_EQ(RWarm.Counters.get("cache.misses"), 0u);
  EXPECT_GT(RWarm.Counters.get("cache.hits"), 0u);
  EXPECT_EQ(RWarm.Counters.get("cache.hits"),
            RCold.Counters.get("cache.misses"));
  // Hits are priced CacheInstallCyclesPerInst instead of the full
  // translation cost: warm modeled translate-cycles must shrink.
  EXPECT_LT(RWarm.Counters.get("cycles.translate"),
            RCold.Counters.get("cycles.translate"));
  EXPECT_EQ(Service.cache().liveLeases(), 0u) << "lease leak";
}

TEST(ServingTest, CapacityFlushReinstallsCachedCopiesAtNewBases) {
  // A tight arena forces mid-run flushes; post-flush re-installs hit
  // the cache and land at different arena bases than the published
  // copy, exercising whole-range relocation under the verifier.
  guest::GuestImage Image = manyHotFuncsProgram(1500, 6);
  Oracle O = interpretOracle(Image);
  dbt::TranslationService Service;
  dbt::EngineConfig Config = servingConfig(&Service);
  Config.CodeCacheLimitWords = 200;
  dbt::RunResult R = runWith(Image, ehSpec(), Config);
  expectMatchesOracle(R, O, "capacity-flush serving");
  EXPECT_GT(R.Counters.get("dbt.flushes"), 0u);
  EXPECT_GT(R.Counters.get("cache.hits"), 0u);
  EXPECT_EQ(Service.cache().liveLeases(), 0u) << "lease leak";

  dbt::EngineConfig Isolated = Config;
  Isolated.Service = nullptr;
  expectSameRun(R, runWith(Image, ehSpec(), Isolated),
                "capacity-flush vs isolated");
}

TEST(ServingTest, HostileSmcTenantsMatchOracleAndCannotPoison) {
  // Hostile tenants rewrite their own code: the rewritten bytes key
  // differently, so they can only miss — the benign tenant sharing the
  // cache must stay byte-identical to its oracle.
  dbt::TranslationService Service;
  guest::GuestImage Benign = misalignedSumProgram(4000);
  Oracle BenignO = interpretOracle(Benign);

  for (const workloads::HostileProgram &P : workloads::hostileCatalog()) {
    Oracle O = interpretOracle(P.Image);
    dbt::EngineConfig Config = servingConfig(&Service);
    Config.Analysis = true;
    dbt::RunResult R = runWith(P.Image, dpehSpec(), Config);
    expectMatchesOracle(R, O, P.Name.c_str());
  }
  dbt::RunResult R = runWith(Benign, dpehSpec(), servingConfig(&Service));
  expectMatchesOracle(R, BenignO, "benign tenant after hostile runs");
  EXPECT_EQ(Service.cache().liveLeases(), 0u) << "lease leak";
}

TEST(ServingTest, ConcurrentMixedTenantsByteIdenticalToOracles) {
  // N threads × mixed benign + self-modifying guests against ONE shared
  // cache, Verify on.  Every run must reproduce its isolated oracle
  // exactly, and the cache must drain to zero leases at shutdown.
  struct Tenant {
    guest::GuestImage Image;
    mda::PolicySpec Spec;
    dbt::RunResult Expected;
  };
  std::vector<Tenant> Tenants;
  for (uint32_t Iters : {2000u, 3000u, 4000u})
    Tenants.push_back({misalignedSumProgram(Iters), ehSpec(), {}});
  for (const workloads::HostileProgram &P : workloads::hostileCatalog())
    Tenants.push_back({P.Image, dpehSpec(), {}});
  for (Tenant &T : Tenants) {
    dbt::EngineConfig Config = servingConfig(nullptr);
    Config.Analysis = true;
    T.Expected = runWith(T.Image, T.Spec, Config);
  }

  dbt::TranslationService Service;
  constexpr unsigned NumThreads = 8;
  constexpr unsigned RoundsPerThread = 3;
  std::vector<std::vector<dbt::RunResult>> Got(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned TI = 0; TI != NumThreads; ++TI) {
    Threads.emplace_back([&, TI] {
      for (unsigned R = 0; R != RoundsPerThread; ++R) {
        const Tenant &T = Tenants[(TI + R) % Tenants.size()];
        dbt::EngineConfig Config = servingConfig(&Service);
        Config.Analysis = true;
        Got[TI].push_back(runWith(T.Image, T.Spec, Config));
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  for (unsigned TI = 0; TI != NumThreads; ++TI)
    for (unsigned R = 0; R != RoundsPerThread; ++R)
      expectSameRun(Got[TI][R], Tenants[(TI + R) % Tenants.size()].Expected,
                    "concurrent tenant");
  EXPECT_EQ(Service.cache().liveLeases(), 0u)
      << "refcount leak at shutdown";
  EXPECT_GT(Service.cache().hits(), 0u);
}

// -- disk persistence --------------------------------------------------------

namespace {

const char *ArtifactPath = "serving_test_cache.bin";

/// Populate a service by running a benchmark through it.
void warmService(dbt::TranslationService &Service) {
  guest::GuestImage Image = misalignedSumProgram(4000);
  runWith(Image, ehSpec(), servingConfig(&Service));
  ASSERT_GT(Service.cache().entries(), 0u);
}

std::vector<uint8_t> slurp(const char *Path) {
  std::FILE *F = std::fopen(Path, "rb");
  EXPECT_NE(F, nullptr);
  std::vector<uint8_t> Bytes;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return Bytes;
}

void spit(const char *Path, const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path, "wb");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  std::fclose(F);
}

} // namespace

TEST(ServingPersistTest, DiskWarmedStartPerformsNoRetranslation) {
  dbt::TranslationService Producer;
  warmService(Producer);
  std::string Err;
  ASSERT_TRUE(Producer.save(ArtifactPath, &Err)) << Err;

  dbt::TranslationService Consumer;
  uint64_t Before = Consumer.cache().entries();
  ASSERT_TRUE(Consumer.load(ArtifactPath, nullptr, &Err)) << Err;
  EXPECT_EQ(Consumer.cache().entries() - Before,
            Producer.cache().entries());

  guest::GuestImage Image = misalignedSumProgram(4000);
  Oracle O = interpretOracle(Image);
  dbt::RunResult R = runWith(Image, ehSpec(), servingConfig(&Consumer));
  expectMatchesOracle(R, O, "disk-warmed");
  // The whole point of persistence: a warm fleet start re-translates
  // nothing for a known image.
  EXPECT_EQ(R.Counters.get("cache.misses"), 0u);
  EXPECT_GT(R.Counters.get("cache.hits"), 0u);
  std::remove(ArtifactPath);
}

TEST(ServingPersistTest, SaveIsDeterministic) {
  dbt::TranslationService A;
  dbt::TranslationService B;
  warmService(A);
  warmService(B);
  ASSERT_TRUE(A.save(ArtifactPath));
  std::vector<uint8_t> BytesA = slurp(ArtifactPath);
  ASSERT_TRUE(B.save(ArtifactPath));
  EXPECT_EQ(BytesA, slurp(ArtifactPath));
  std::remove(ArtifactPath);
}

TEST(ServingPersistTest, CorruptArtifactsAreRejectedWhole) {
  dbt::TranslationService Producer;
  warmService(Producer);
  ASSERT_TRUE(Producer.save(ArtifactPath));
  const std::vector<uint8_t> Good = slurp(ArtifactPath);
  ASSERT_GT(Good.size(), 64u);

  auto ExpectRejected = [&](const std::vector<uint8_t> &Bytes,
                            const char *What) {
    spit(ArtifactPath, Bytes);
    dbt::TranslationService Victim;
    std::string Err;
    EXPECT_FALSE(Victim.load(ArtifactPath, nullptr, &Err)) << What;
    EXPECT_FALSE(Err.empty()) << What;
    // Atomic rejection: nothing was merged, so nothing corrupt can
    // ever be executed.
    EXPECT_EQ(Victim.cache().entries(), 0u) << What;
  };

  // Truncation (header survives, payload short).
  std::vector<uint8_t> Truncated(Good.begin(), Good.end() - 9);
  ExpectRejected(Truncated, "truncated");
  // Single bit flip deep in the payload.
  std::vector<uint8_t> Flipped = Good;
  Flipped[Good.size() / 2] ^= 0x10;
  ExpectRejected(Flipped, "bit-flipped payload");
  // Bit flip in the header's entry count.
  std::vector<uint8_t> BadCount = Good;
  BadCount[8] ^= 0x01;
  ExpectRejected(BadCount, "corrupt entry count");
  // Wrong magic.
  std::vector<uint8_t> BadMagic = Good;
  BadMagic[0] ^= 0xff;
  ExpectRejected(BadMagic, "bad magic");
  // Unsupported future version.
  std::vector<uint8_t> BadVersion = Good;
  BadVersion[4] = 0x7f;
  ExpectRejected(BadVersion, "bad version");
  // Empty file.
  ExpectRejected({}, "empty file");

  // The pristine artifact still loads after all that.
  spit(ArtifactPath, Good);
  dbt::TranslationService Ok;
  EXPECT_TRUE(Ok.load(ArtifactPath));
  EXPECT_EQ(Ok.cache().entries(), Producer.cache().entries());
  std::remove(ArtifactPath);
}
