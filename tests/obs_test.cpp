//===- tests/obs_test.cpp - Observability layer tests ---------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for src/obs: ring-buffer wraparound semantics, JSONL round-trip
/// of every event kind, the zero-allocation guarantee of the disabled
/// (null) tracing path, MetricsRegistry JSON serialization, and an
/// end-to-end check that an EH-policy engine run emits the full block
/// lifecycle (heat -> translate -> trap -> stub patch) with monotonic
/// virtual time.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/TraceSink.h"

#include "TestUtil.h"
#include "mda/Policies.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

using namespace mdabt;
using namespace mdabt::obs;

// Global allocation counter for the zero-allocation tests.  Counting
// operator new/delete replacements are per-binary, so this observes
// every heap allocation made anywhere in this test process.
static std::atomic<uint64_t> GAllocs{0};

void *operator new(size_t Size) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size))
    return P;
  throw std::bad_alloc();
}

// GCC warns that free() here mismatches operator new, but our
// replacement operator new above is malloc-based, so the pairing is
// correct.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

TraceEvent makeEvent(TraceEventKind K, uint64_t I) {
  TraceEvent E;
  E.Kind = K;
  E.VirtualTime = 1000 + I;
  E.GuestPc = static_cast<uint32_t>(0x1000 + I);
  E.BlockPc = static_cast<uint32_t>(0x2000 + I);
  E.A = 0xA0 + I;
  E.B = 0xB0 + I;
  return E;
}

std::string tempPath(const char *Name) {
  const char *Dir = std::getenv("TMPDIR");
  return std::string(Dir ? Dir : "/tmp") + "/" + Name;
}

// ---- event names ----------------------------------------------------------

TEST(TraceEventTest, NamesRoundTripThroughParser) {
  for (unsigned I = 0; I != NumTraceEventKinds; ++I) {
    TraceEventKind K = static_cast<TraceEventKind>(I);
    TraceEventKind Parsed;
    ASSERT_TRUE(traceEventKindFromName(traceEventName(K), Parsed))
        << traceEventName(K);
    EXPECT_EQ(Parsed, K);
  }
  TraceEventKind Unused;
  EXPECT_FALSE(traceEventKindFromName("no.such.event", Unused));
  EXPECT_FALSE(traceEventKindFromName("", Unused));
}

// ---- ring buffer ----------------------------------------------------------

TEST(RingBufferTest, FillsWithoutWraparound) {
  RingBufferTraceSink Sink(8);
  for (uint64_t I = 0; I != 5; ++I)
    Sink.emit(makeEvent(TraceEventKind::TrapTaken, I));
  EXPECT_EQ(Sink.size(), 5u);
  EXPECT_EQ(Sink.capacity(), 8u);
  EXPECT_EQ(Sink.dropped(), 0u);
  EXPECT_EQ(Sink.total(), 5u);
  for (size_t I = 0; I != 5; ++I)
    EXPECT_EQ(Sink.at(I).VirtualTime, 1000 + I);
}

TEST(RingBufferTest, WraparoundKeepsNewestAndCountsDropped) {
  RingBufferTraceSink Sink(4);
  for (uint64_t I = 0; I != 11; ++I)
    Sink.emit(makeEvent(TraceEventKind::TrapTaken, I));
  EXPECT_EQ(Sink.size(), 4u);
  EXPECT_EQ(Sink.dropped(), 7u);
  EXPECT_EQ(Sink.total(), 11u);
  // The four newest events (7..10), oldest first.
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_EQ(Sink.at(I).VirtualTime, 1000 + 7 + I);
    EXPECT_EQ(Sink.at(I).A, 0xA0 + 7 + I);
  }
  std::vector<TraceEvent> Snap = Sink.snapshot();
  ASSERT_EQ(Snap.size(), 4u);
  EXPECT_EQ(Snap.front().VirtualTime, 1007u);
  EXPECT_EQ(Snap.back().VirtualTime, 1010u);
}

TEST(RingBufferTest, ExactCapacityBoundary) {
  RingBufferTraceSink Sink(3);
  for (uint64_t I = 0; I != 3; ++I)
    Sink.emit(makeEvent(TraceEventKind::CacheFlush, I));
  EXPECT_EQ(Sink.size(), 3u);
  EXPECT_EQ(Sink.dropped(), 0u);
  EXPECT_EQ(Sink.at(0).VirtualTime, 1000u);
  // One more drops exactly the oldest.
  Sink.emit(makeEvent(TraceEventKind::CacheFlush, 3));
  EXPECT_EQ(Sink.size(), 3u);
  EXPECT_EQ(Sink.dropped(), 1u);
  EXPECT_EQ(Sink.at(0).VirtualTime, 1001u);
  EXPECT_EQ(Sink.at(2).VirtualTime, 1003u);
}

TEST(RingBufferTest, ZeroCapacityIsClampedNotUB) {
  RingBufferTraceSink Sink(0);
  Sink.emit(makeEvent(TraceEventKind::RunBegin, 0));
  Sink.emit(makeEvent(TraceEventKind::RunEnd, 1));
  EXPECT_EQ(Sink.capacity(), 1u);
  EXPECT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.at(0).Kind, TraceEventKind::RunEnd);
}

// ---- JSONL round-trip -----------------------------------------------------

TEST(JsonlTest, EveryEventKindRoundTrips) {
  std::string Path = tempPath("mdabt_obs_roundtrip.jsonl");
  std::vector<TraceEvent> Written;
  {
    JsonlTraceSink Sink(Path);
    ASSERT_TRUE(Sink.ok());
    for (unsigned I = 0; I != NumTraceEventKinds; ++I) {
      TraceEvent E = makeEvent(static_cast<TraceEventKind>(I), I);
      Written.push_back(E);
      Sink.emit(E);
    }
    EXPECT_EQ(Sink.written(), NumTraceEventKinds);
  }
  std::vector<TraceEvent> Read;
  ASSERT_TRUE(readJsonlTrace(Path, Read));
  ASSERT_EQ(Read.size(), Written.size());
  for (size_t I = 0; I != Written.size(); ++I)
    EXPECT_TRUE(Read[I] == Written[I])
        << "event " << I << " (" << traceEventName(Written[I].Kind)
        << ") did not round-trip";
  std::remove(Path.c_str());
}

TEST(JsonlTest, ExtremeValuesRoundTrip) {
  TraceEvent E;
  E.Kind = TraceEventKind::RunEnd;
  E.VirtualTime = ~0ULL;
  E.GuestPc = ~0u;
  E.BlockPc = 0;
  E.A = ~0ULL;
  E.B = 1;
  TraceEvent Back;
  ASSERT_TRUE(traceEventFromJson(traceEventToJson(E).c_str(), Back));
  EXPECT_TRUE(Back == E);
}

TEST(JsonlTest, MalformedLinesAreRejected) {
  TraceEvent E;
  EXPECT_FALSE(traceEventFromJson("", E));
  EXPECT_FALSE(traceEventFromJson("{}", E));
  EXPECT_FALSE(traceEventFromJson("{\"ev\":\"bogus.kind\",\"t\":1,"
                                  "\"pc\":2,\"block\":3,\"a\":4,\"b\":5}",
                                  E));
  // Missing field.
  EXPECT_FALSE(traceEventFromJson(
      "{\"ev\":\"trap.taken\",\"t\":1,\"pc\":2,\"block\":3,\"a\":4}", E));
}

TEST(JsonlTest, ReadReportsOffendingLine) {
  std::string Path = tempPath("mdabt_obs_badline.jsonl");
  std::FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fputs(traceEventToJson(makeEvent(TraceEventKind::RunBegin, 0))
                 .c_str(),
             F);
  std::fputs("\nthis is not json\n", F);
  std::fclose(F);
  std::vector<TraceEvent> Events;
  size_t BadLine = 0;
  EXPECT_FALSE(readJsonlTrace(Path, Events, &BadLine));
  EXPECT_EQ(BadLine, 2u);
  std::remove(Path.c_str());
}

// ---- zero allocation on the disabled path ---------------------------------

TEST(TracerTest, DisabledTracerAllocatesNothing) {
  Tracer T; // no sink bound: the engine-default "tracing off" state
  uint64_t Before = GAllocs.load(std::memory_order_relaxed);
  for (uint64_t I = 0; I != 100000; ++I)
    T.emit(TraceEventKind::TrapTaken, 0x1000, 0x2000, I, I);
  EXPECT_EQ(GAllocs.load(std::memory_order_relaxed), Before)
      << "disabled Tracer::emit allocated on the hot path";
}

TEST(TracerTest, NullSinkAllocatesNothingPerEvent) {
  NullTraceSink Sink;
  Tracer T(&Sink, nullptr);
  EXPECT_TRUE(T.enabled());
  uint64_t Before = GAllocs.load(std::memory_order_relaxed);
  for (uint64_t I = 0; I != 100000; ++I)
    T.emit(TraceEventKind::PatchApplied, 1, 2, 3, 4);
  EXPECT_EQ(GAllocs.load(std::memory_order_relaxed), Before)
      << "NullTraceSink::emit allocated";
}

TEST(TracerTest, RingSinkAllocatesOnlyAtConstruction) {
  RingBufferTraceSink Sink(1024);
  Tracer T(&Sink, nullptr);
  uint64_t Before = GAllocs.load(std::memory_order_relaxed);
  for (uint64_t I = 0; I != 100000; ++I)
    T.emit(TraceEventKind::TrapTaken, 1, 2, I, I);
  EXPECT_EQ(GAllocs.load(std::memory_order_relaxed), Before)
      << "RingBufferTraceSink::emit allocated after construction";
}

// ---- metrics registry -----------------------------------------------------

TEST(MetricsTest, CountersAccumulateAndGaugesOverwrite) {
  MetricsRegistry Reg;
  Reg.addCounter("a.count", 2);
  Reg.addCounter("a.count", 3);
  Reg.setGauge("a.gauge", 7);
  Reg.setGauge("a.gauge", 4);
  EXPECT_EQ(Reg.counter("a.count"), 5u);
  EXPECT_EQ(Reg.gauge("a.gauge"), 4u);
  EXPECT_EQ(Reg.counter("missing"), 0u);
  EXPECT_EQ(Reg.gauge("missing"), 0u);
  // Counter and gauge namespaces are distinct kinds: same name, no
  // collision.
  Reg.addCounter("dual", 9);
  Reg.setGauge("dual", 1);
  EXPECT_EQ(Reg.counter("dual"), 9u);
  EXPECT_EQ(Reg.gauge("dual"), 1u);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  MetricsRegistry Reg;
  Histogram &H = Reg.histogram("sizes");
  EXPECT_EQ(&H, &Reg.histogram("sizes")) << "histogram not stable";
  H.record(0);
  H.record(1);
  H.record(2);
  H.record(3);
  H.record(1000);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 1006u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_EQ(H.bucket(0), 1u); // value 0
  EXPECT_EQ(H.bucket(1), 1u); // value 1
  EXPECT_EQ(H.bucket(2), 2u); // values 2,3
  EXPECT_EQ(H.bucket(Histogram::bucketOf(1000)), 1u);
  // Huge values clamp into the last bucket instead of indexing out.
  EXPECT_EQ(Histogram::bucketOf(~0ULL), Histogram::NumBuckets - 1);
}

TEST(MetricsTest, JsonSerialization) {
  MetricsRegistry Reg;
  Reg.addCounter("x.events", 3);
  Reg.setGauge("x.level", 9);
  Reg.histogram("x.dist").record(4);
  std::string Json = Reg.toJson();
  EXPECT_EQ(Json.find("{\"counters\":{\"x.events\":3}"), 0u) << Json;
  EXPECT_NE(Json.find("\"gauges\":{\"x.level\":9}"), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"x.dist\":{\"count\":1,\"sum\":4,\"min\":4,"
                      "\"max\":4,\"buckets\":[0,0,0,1,"),
            std::string::npos)
      << Json;
  // Empty registry still produces the three sections.
  MetricsRegistry Empty;
  EXPECT_EQ(Empty.toJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsTest, FillCounterBagPreservesOrderAndKinds) {
  MetricsRegistry Reg;
  Reg.addCounter("first", 1);
  Reg.setGauge("second", 2);
  Reg.histogram("third").record(5);
  Reg.addCounter("fourth", 4);
  CounterBag Bag;
  Reg.fillCounterBag(Bag);
  ASSERT_EQ(Bag.entries().size(), 4u);
  EXPECT_EQ(Bag.entries()[0].first, "first");
  EXPECT_EQ(Bag.entries()[1].first, "second");
  EXPECT_EQ(Bag.entries()[2].first, "third.count");
  EXPECT_EQ(Bag.entries()[3].first, "fourth");
  EXPECT_EQ(Bag.get("third.count"), 1u);
}

// ---- engine integration ---------------------------------------------------

TEST(EngineTraceTest, EhRunEmitsFullBlockLifecycle) {
  guest::GuestImage Image = testutil::misalignedSumProgram(4000);
  mda::ExceptionHandlingPolicy Policy(/*Threshold=*/50);
  RingBufferTraceSink Sink(1 << 18);
  dbt::EngineConfig Config;
  Config.Trace = &Sink;
  dbt::Engine Engine(Image, Policy, Config);
  dbt::RunResult R = Engine.run();
  ASSERT_TRUE(R.completed());
  EXPECT_EQ(Sink.dropped(), 0u) << "ring too small for this workload";

  std::vector<TraceEvent> Events = Sink.snapshot();
  ASSERT_FALSE(Events.empty());
  EXPECT_EQ(Events.front().Kind, TraceEventKind::RunBegin);
  EXPECT_EQ(Events.back().Kind, TraceEventKind::RunEnd);
  EXPECT_EQ(Events.back().A, 0u) << "RunEnd should carry RunError::None";
  EXPECT_EQ(Events.back().B, R.Cycles);

  // Virtual time is monotonic non-decreasing across the whole run.
  for (size_t I = 1; I != Events.size(); ++I)
    ASSERT_GE(Events[I].VirtualTime, Events[I - 1].VirtualTime)
        << "virtual time went backwards at event " << I;

  // The EH lifecycle: the hot block heats, transitions, translates,
  // traps, gets a stub emitted and the fault site patched — in order.
  uint64_t TInterp = ~0ULL, TPhase = ~0ULL, TTrans = ~0ULL,
           TTrap = ~0ULL, TStub = ~0ULL, TPatch = ~0ULL;
  uint32_t HotBlock = 0;
  for (const TraceEvent &E : Events)
    if (E.Kind == TraceEventKind::TrapTaken) {
      HotBlock = E.BlockPc;
      break;
    }
  ASSERT_NE(HotBlock, 0u) << "EH run on an all-MDA kernel must trap";
  auto First = [&](TraceEventKind K, uint64_t &Slot) {
    for (size_t I = 0; I != Events.size(); ++I)
      if (Events[I].Kind == K && Events[I].BlockPc == HotBlock) {
        Slot = I;
        return;
      }
  };
  First(TraceEventKind::BlockInterpreted, TInterp);
  First(TraceEventKind::PhaseTransition, TPhase);
  First(TraceEventKind::BlockTranslated, TTrans);
  First(TraceEventKind::TrapTaken, TTrap);
  First(TraceEventKind::StubEmitted, TStub);
  First(TraceEventKind::PatchApplied, TPatch);
  ASSERT_NE(TInterp, ~0ULL);
  ASSERT_NE(TPhase, ~0ULL);
  ASSERT_NE(TTrans, ~0ULL);
  ASSERT_NE(TTrap, ~0ULL);
  ASSERT_NE(TStub, ~0ULL);
  ASSERT_NE(TPatch, ~0ULL);
  EXPECT_LT(TInterp, TPhase);
  EXPECT_LT(TPhase, TTrans);
  EXPECT_LT(TTrans, TTrap);
  EXPECT_LT(TTrap, TStub);
  EXPECT_LT(TStub, TPatch);

  // Trace counts agree with the metrics registry.
  uint64_t Translates = 0, Patches = 0;
  for (const TraceEvent &E : Events) {
    Translates += E.Kind == TraceEventKind::BlockTranslated;
    Patches += E.Kind == TraceEventKind::PatchApplied;
  }
  EXPECT_EQ(Translates, R.Metrics.counter("dbt.translations"));
  EXPECT_EQ(Patches, R.Metrics.counter("dbt.patches"));
}

TEST(EngineTraceTest, MetricsMatchLegacyCounterBag) {
  guest::GuestImage Image = testutil::misalignedSumProgram(2000);
  mda::DpehPolicy Policy(/*Threshold=*/50);
  dbt::Engine Engine(Image, Policy);
  dbt::RunResult R = Engine.run();
  ASSERT_TRUE(R.completed());
  // Every legacy counter is derived from the registry: spot-check the
  // invariant across kinds.
  EXPECT_EQ(R.Counters.get("cycles.total"),
            R.Metrics.counter("cycles.total"));
  EXPECT_EQ(R.Counters.get("dbt.patches"), R.Metrics.counter("dbt.patches"));
  EXPECT_EQ(R.Counters.get("run.error"), R.Metrics.gauge("run.error"));
  EXPECT_EQ(R.Counters.get("dbt.code_words"),
            R.Metrics.gauge("dbt.code_words"));
  // Histograms observed the run.
  const Histogram *H = R.Metrics.findHistogram("translate.block_insts");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->count(), R.Metrics.counter("dbt.translations"));
  const Histogram *HI = R.Metrics.findHistogram("interp.block_insts");
  ASSERT_NE(HI, nullptr);
  EXPECT_EQ(HI->count(), R.Metrics.counter("interp.blocks"));
  EXPECT_EQ(HI->sum(), R.Metrics.counter("interp.insts"));
  EXPECT_EQ(R.Counters.get("interp.block_insts.count"), HI->count());
}

TEST(EngineTraceTest, DisabledTraceMatchesEnabledRunResults) {
  guest::GuestImage Image = testutil::misalignedSumProgram(1500);
  dbt::RunResult Plain, Traced;
  {
    mda::ExceptionHandlingPolicy Policy(50);
    dbt::Engine Engine(Image, Policy);
    Plain = Engine.run();
  }
  {
    mda::ExceptionHandlingPolicy Policy(50);
    RingBufferTraceSink Sink(4096);
    dbt::EngineConfig Config;
    Config.Trace = &Sink;
    dbt::Engine Engine(Image, Policy, Config);
    Traced = Engine.run();
  }
  // Observation must never perturb the run.
  EXPECT_EQ(Plain.Cycles, Traced.Cycles);
  EXPECT_EQ(Plain.Checksum, Traced.Checksum);
  EXPECT_EQ(Plain.MemoryHash, Traced.MemoryHash);
  ASSERT_EQ(Plain.Counters.entries().size(),
            Traced.Counters.entries().size());
  for (size_t I = 0; I != Plain.Counters.entries().size(); ++I) {
    EXPECT_EQ(Plain.Counters.entries()[I].first,
              Traced.Counters.entries()[I].first);
    EXPECT_EQ(Plain.Counters.entries()[I].second,
              Traced.Counters.entries()[I].second)
        << Plain.Counters.entries()[I].first;
  }
}

} // namespace
