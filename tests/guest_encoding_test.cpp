//===- tests/guest_encoding_test.cpp - GX86 encode/decode round trips -----==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "guest/Encoding.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::guest;

namespace {

GuestInst roundTrip(const GuestInst &In) {
  std::vector<uint8_t> Bytes;
  unsigned Len = encode(In, Bytes);
  EXPECT_EQ(Len, Bytes.size());
  GuestInst Out;
  EXPECT_TRUE(decode(Bytes.data(), Bytes.size(), 0, Out));
  EXPECT_EQ(Out.Length, Bytes.size());
  return Out;
}

} // namespace

TEST(GuestEncodingTest, BareForms) {
  for (Opcode Op : {Opcode::Nop, Opcode::Halt, Opcode::Ret}) {
    GuestInst I;
    I.Op = Op;
    GuestInst O = roundTrip(I);
    EXPECT_EQ(O.Op, Op);
    EXPECT_EQ(O.Length, 1u);
  }
}

TEST(GuestEncodingTest, OneRegForms) {
  for (Opcode Op : {Opcode::Chk, Opcode::QChk, Opcode::JmpR}) {
    for (uint8_t R = 0; R != 8; ++R) {
      GuestInst I;
      I.Op = Op;
      I.Reg1 = R;
      GuestInst O = roundTrip(I);
      EXPECT_EQ(O.Op, Op);
      EXPECT_EQ(O.Reg1, R);
    }
  }
}

TEST(GuestEncodingTest, TwoRegSweep) {
  for (Opcode Op :
       {Opcode::MovRR, Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
        Opcode::Xor, Opcode::Shl, Opcode::Shr, Opcode::Sar, Opcode::Mul,
        Opcode::Cmp, Opcode::QMovRR, Opcode::QAdd, Opcode::QXor,
        Opcode::GToQ, Opcode::QToG}) {
    for (uint8_t A = 0; A != 8; ++A) {
      for (uint8_t B = 0; B != 8; ++B) {
        GuestInst I;
        I.Op = Op;
        I.Reg1 = A;
        I.Reg2 = B;
        GuestInst O = roundTrip(I);
        EXPECT_EQ(O.Op, Op);
        EXPECT_EQ(O.Reg1, A);
        EXPECT_EQ(O.Reg2, B);
      }
    }
  }
}

TEST(GuestEncodingTest, RegImmSweep) {
  const int32_t Imms[] = {0,       1,          -1,         127,
                          -128,    32767,      -32768,     1000000,
                          INT32_MAX, INT32_MIN, 0x12345678};
  for (Opcode Op : {Opcode::MovRI, Opcode::AddI, Opcode::SubI, Opcode::AndI,
                    Opcode::OrI, Opcode::XorI, Opcode::ShlI, Opcode::ShrI,
                    Opcode::SarI, Opcode::MulI, Opcode::CmpI, Opcode::QMovI,
                    Opcode::QAddI}) {
    for (int32_t Imm : Imms) {
      GuestInst I;
      I.Op = Op;
      I.Reg1 = 3;
      I.Imm = Imm;
      GuestInst O = roundTrip(I);
      EXPECT_EQ(O.Op, Op);
      EXPECT_EQ(O.Reg1, 3);
      EXPECT_EQ(O.Imm, Imm);
    }
  }
}

TEST(GuestEncodingTest, MemorySweep) {
  const int32_t Disps[] = {0, 1, -1, 127, -128, 128, -129, 32767, -100000,
                           INT32_MAX};
  for (Opcode Op : {Opcode::Ldb, Opcode::Ldw, Opcode::Ldl, Opcode::Ldq,
                    Opcode::Stb, Opcode::Stw, Opcode::Stl, Opcode::Stq,
                    Opcode::Lea}) {
    for (int HasIdx = 0; HasIdx != 2; ++HasIdx) {
      for (uint8_t Scale = 0; Scale != 4; ++Scale) {
        for (int32_t Disp : Disps) {
          GuestInst I;
          I.Op = Op;
          I.Reg1 = 5;
          I.Reg2 = 2;
          I.HasIndex = HasIdx != 0;
          I.IndexReg = 6;
          I.Scale = Scale;
          I.Disp = Disp;
          GuestInst O = roundTrip(I);
          EXPECT_EQ(O.Op, Op);
          EXPECT_EQ(O.Reg1, 5);
          EXPECT_EQ(O.Reg2, 2);
          EXPECT_EQ(O.HasIndex, I.HasIndex);
          if (I.HasIndex) {
            EXPECT_EQ(O.IndexReg, 6);
          }
          EXPECT_EQ(O.Scale, Scale);
          EXPECT_EQ(O.Disp, Disp);
        }
      }
    }
  }
}

TEST(GuestEncodingTest, DispEncodingIsCompact) {
  GuestInst I;
  I.Op = Opcode::Ldl;
  I.Disp = 0;
  std::vector<uint8_t> B0;
  encode(I, B0);
  I.Disp = 100;
  std::vector<uint8_t> B8;
  encode(I, B8);
  I.Disp = 100000;
  std::vector<uint8_t> B32;
  encode(I, B32);
  EXPECT_EQ(B0.size(), 3u);
  EXPECT_EQ(B8.size(), 4u);
  EXPECT_EQ(B32.size(), 7u);
}

TEST(GuestEncodingTest, BranchForms) {
  for (int32_t Rel : {0, 5, -10, 100000, -100000}) {
    GuestInst I;
    I.Op = Opcode::Jmp;
    I.Imm = Rel;
    GuestInst O = roundTrip(I);
    EXPECT_EQ(O.Imm, Rel);

    I.Op = Opcode::Call;
    O = roundTrip(I);
    EXPECT_EQ(O.Imm, Rel);
  }
  for (uint8_t C = 0; C <= static_cast<uint8_t>(Cond::Ae); ++C) {
    GuestInst I;
    I.Op = Opcode::Jcc;
    I.CC = static_cast<Cond>(C);
    I.Imm = -42;
    GuestInst O = roundTrip(I);
    EXPECT_EQ(O.CC, static_cast<Cond>(C));
    EXPECT_EQ(O.Imm, -42);
  }
}

TEST(GuestEncodingTest, BranchTargetArithmetic) {
  GuestInst I;
  I.Op = Opcode::Jmp;
  I.Imm = -6;
  std::vector<uint8_t> Bytes;
  encode(I, Bytes);
  GuestInst O;
  ASSERT_TRUE(decode(Bytes.data(), Bytes.size(), 0, O));
  // At PC=100, length 5, rel -6 -> target 99.
  EXPECT_EQ(O.branchTarget(100), 99u);
  EXPECT_EQ(O.nextPc(100), 105u);
}

TEST(GuestEncodingTest, RejectsBadOpcode) {
  uint8_t Bytes[] = {0xff, 0x00, 0x00};
  GuestInst I;
  EXPECT_FALSE(decode(Bytes, sizeof(Bytes), 0, I));
}

TEST(GuestEncodingTest, RejectsTruncated) {
  GuestInst I;
  I.Op = Opcode::MovRI;
  I.Imm = 123456;
  std::vector<uint8_t> Bytes;
  encode(I, Bytes);
  GuestInst O;
  for (size_t Len = 0; Len != Bytes.size(); ++Len)
    EXPECT_FALSE(decode(Bytes.data(), Len, 0, O)) << "len=" << Len;
}

TEST(GuestEncodingTest, RejectsBadCondition) {
  uint8_t Bytes[] = {static_cast<uint8_t>(Opcode::Jcc), 0x09, 0, 0, 0, 0};
  GuestInst I;
  EXPECT_FALSE(decode(Bytes, sizeof(Bytes), 0, I));
}

TEST(GuestEncodingTest, DecodeAtOffset) {
  std::vector<uint8_t> Bytes = {0x00 /*nop pad*/};
  GuestInst I;
  I.Op = Opcode::AddI;
  I.Reg1 = 2;
  I.Imm = 77;
  encode(I, Bytes);
  GuestInst O;
  ASSERT_TRUE(decode(Bytes.data(), Bytes.size(), 1, O));
  EXPECT_EQ(O.Op, Opcode::AddI);
  EXPECT_EQ(O.Imm, 77);
}

TEST(GuestDisasmTest, RendersKeyForms) {
  GuestInst I;
  I.Op = Opcode::Ldl;
  I.Reg1 = 0;
  I.Reg2 = 3;
  I.HasIndex = true;
  I.IndexReg = 6;
  I.Scale = 2;
  I.Disp = 8;
  EXPECT_EQ(disassemble(I, 0), "ldl eax, [ebx + esi*4 + 8]");

  GuestInst S;
  S.Op = Opcode::Stq;
  S.Reg1 = 1;
  S.Reg2 = 5;
  S.Disp = -4;
  EXPECT_EQ(disassemble(S, 0), "stq [ebp - 4], q1");

  GuestInst J;
  J.Op = Opcode::Jcc;
  J.CC = Cond::Ne;
  J.Imm = 10;
  J.Length = 6;
  EXPECT_EQ(disassemble(J, 0x1000), "jne 0x1010");
}
