//===- tests/codecache_test.cpp - Code-cache management tests -------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for code-cache capacity flushes and Dynamo-style
/// flush-on-supersede (paper section IV-C contrasts DigitalBridge's
/// block-granularity invalidation with Dynamo's whole-cache flush).
/// Every configuration must preserve differential correctness.
///
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "host/CodeSpace.h"
#include "host/HostAssembler.h"
#include "host/HostMachine.h"
#include "mda/Policies.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::testutil;

namespace {

/// A program with many independently hot leaf functions plus one
/// late-onset MDA block — warm code a full flush must re-pay for.
guest::GuestImage manyWarmBlocksProgram(uint32_t Outer, uint32_t Onset,
                                        unsigned NumFuncs) {
  using namespace guest;
  ProgramBuilder B("many-warm");
  uint32_t Buf = B.dataReserve(4096, 8);
  uint32_t Slot = B.dataU32(Buf);
  std::vector<ProgramBuilder::Label> Funcs;
  for (unsigned F = 0; F != NumFuncs; ++F)
    Funcs.push_back(B.newLabel());

  B.movri(6, 0);
  ProgramBuilder::Label Loop = B.here();
  ProgramBuilder::Label Skip = B.newLabel();
  B.cmpi(6, static_cast<int32_t>(Onset));
  B.jcc(Cond::Ne, Skip);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.addi(0, 1);
  B.stl(mem(3, 0), 0);
  B.bind(Skip);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.movri(2, 0x42);
  B.stl(mem(0, 0), 2);
  B.stl(mem(0, 8), 2);
  B.ldl(2, mem(0, 0));
  B.chk(2);
  for (ProgramBuilder::Label F : Funcs)
    B.call(F);
  B.addi(6, 1);
  B.cmpi(6, static_cast<int32_t>(Outer));
  B.jcc(Cond::B, Loop);
  B.halt();

  for (unsigned F = 0; F != NumFuncs; ++F) {
    B.bind(Funcs[F]);
    uint32_t FBuf = B.dataReserve(256, 8);
    B.movri(0, static_cast<int32_t>(FBuf));
    B.movri(1, 0);
    ProgramBuilder::Label Inner = B.here();
    B.stl(memIdx(0, 1, 2, 0), 6);
    B.ldl(2, memIdx(0, 1, 2, 0));
    B.addi(1, 1);
    B.cmpi(1, 8);
    B.jcc(Cond::B, Inner);
    B.chk(2);
    B.ret();
  }
  return B.build();
}

/// Like manyWarmBlocksProgram, but the late-onset increment lives in an
/// out-of-line block that jumps back to the shared body.  The MDA sites
/// therefore belong to exactly one block and are never interpreted
/// misaligned, so a dynamic-profiling policy cannot learn them from the
/// onset path — the first misaligned execution must go through the
/// native trap machinery.
guest::GuestImage isolatedOnsetProgram(uint32_t Outer, uint32_t Onset,
                                       unsigned NumFuncs) {
  using namespace guest;
  ProgramBuilder B("isolated-onset");
  uint32_t Buf = B.dataReserve(4096, 8);
  uint32_t Slot = B.dataU32(Buf);
  std::vector<ProgramBuilder::Label> Funcs;
  for (unsigned F = 0; F != NumFuncs; ++F)
    Funcs.push_back(B.newLabel());
  ProgramBuilder::Label Inc = B.newLabel();

  B.movri(6, 0);
  ProgramBuilder::Label Loop = B.here();
  B.cmpi(6, static_cast<int32_t>(Onset));
  B.jcc(Cond::Eq, Inc);
  ProgramBuilder::Label Body = B.here();
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.movri(2, 0x42);
  B.stl(mem(0, 0), 2);
  B.stl(mem(0, 8), 2);
  B.ldl(2, mem(0, 0));
  B.chk(2);
  for (ProgramBuilder::Label F : Funcs)
    B.call(F);
  B.addi(6, 1);
  B.cmpi(6, static_cast<int32_t>(Outer));
  B.jcc(Cond::B, Loop);
  B.halt();

  // Out-of-line onset block: aligned accesses only.
  B.bind(Inc);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.addi(0, 1);
  B.stl(mem(3, 0), 0);
  B.jmp(Body);

  for (unsigned F = 0; F != NumFuncs; ++F) {
    B.bind(Funcs[F]);
    uint32_t FBuf = B.dataReserve(256, 8);
    B.movri(0, static_cast<int32_t>(FBuf));
    B.movri(1, 0);
    ProgramBuilder::Label Inner = B.here();
    B.stl(memIdx(0, 1, 2, 0), 6);
    B.ldl(2, memIdx(0, 1, 2, 0));
    B.addi(1, 1);
    B.cmpi(1, 8);
    B.jcc(Cond::B, Inner);
    B.chk(2);
    B.ret();
  }
  return B.build();
}

} // namespace

TEST(CodeCacheTest, CapacityFlushPreservesCorrectness) {
  // Small cache + several hot blocks: every new install evicts the
  // world.  (A single-block program can never flush: capacity is
  // checked when a new block is installed.)
  guest::GuestImage Image = manyWarmBlocksProgram(300, 1000, 4);
  Oracle O = interpretOracle(Image);
  dbt::EngineConfig Config;
  Config.CodeCacheLimitWords = 64;
  mda::DpehPolicy Policy(10);
  dbt::Engine Engine(Image, Policy, Config);
  dbt::RunResult R = Engine.run();
  expectMatchesOracle(R, O, "tiny code cache");
  EXPECT_GE(R.Counters.get("dbt.flushes"), 1u);
}

TEST(CodeCacheTest, CapacityFlushRetranslatesWarmBlocks) {
  guest::GuestImage Image = manyWarmBlocksProgram(600, 1000, 6);
  Oracle O = interpretOracle(Image);
  dbt::EngineConfig Config;
  Config.CodeCacheLimitWords = 200;
  mda::DpehPolicy Policy(10);
  dbt::Engine Engine(Image, Policy, Config);
  dbt::RunResult R = Engine.run();
  expectMatchesOracle(R, O, "capacity flush, warm blocks");
  EXPECT_GE(R.Counters.get("dbt.flushes"), 1u);
  // More translations than distinct blocks: flush victims came back.
  mda::DpehPolicy Unlimited(10);
  dbt::Engine E2(Image, Unlimited);
  dbt::RunResult RU = E2.run();
  EXPECT_GT(R.Counters.get("dbt.translations"),
            RU.Counters.get("dbt.translations"));
}

TEST(CodeCacheTest, NoFlushWhenUnlimited) {
  guest::GuestImage Image = misalignedSumProgram(500);
  mda::DpehPolicy Policy(10);
  dbt::Engine Engine(Image, Policy);
  dbt::RunResult R = Engine.run();
  EXPECT_EQ(R.Counters.get("dbt.flushes"), 0u);
}

TEST(CodeCacheTest, FlushOnSupersedeIsDynamoStyle) {
  // Retranslation-triggering workload with many warm leaf functions:
  // with FlushOnSupersede the supersede becomes a whole-cache flush,
  // which must re-pay translation for the untouched warm blocks
  // (the paper's section IV-C contrast).
  guest::GuestImage Image = manyWarmBlocksProgram(1200, 400, 8);
  Oracle O = interpretOracle(Image);

  mda::DpehOptions Opts;
  Opts.RetranslateThreshold = 2;
  dbt::EngineConfig Dynamo;
  Dynamo.FlushOnSupersede = true;

  mda::DpehPolicy PolicyA(50, Opts);
  dbt::Engine EngineA(Image, PolicyA, Dynamo);
  dbt::RunResult Flushed = EngineA.run();
  expectMatchesOracle(Flushed, O, "dynamo-style flush");
  EXPECT_GE(Flushed.Counters.get("dbt.flushes"), 1u);

  mda::DpehPolicy PolicyB(50, Opts);
  dbt::Engine EngineB(Image, PolicyB);
  dbt::RunResult BlockGranular = EngineB.run();
  expectMatchesOracle(BlockGranular, O, "block-granularity invalidation");
  EXPECT_EQ(BlockGranular.Counters.get("dbt.flushes"), 0u);

  // Flushing everything re-pays translation for untouched blocks.
  EXPECT_GT(Flushed.Counters.get("dbt.translations"),
            BlockGranular.Counters.get("dbt.translations"));
}

TEST(CodeCacheTest, FlushedFuzzProgramsStayCorrect) {
  for (uint64_t Seed = 200; Seed != 212; ++Seed) {
    RandomProgram Gen(Seed);
    guest::GuestImage Image = Gen.build();
    Oracle O = interpretOracle(Image);
    dbt::EngineConfig Config;
    Config.CodeCacheLimitWords = 256;
    mda::DpehOptions Opts;
    Opts.RetranslateThreshold = 2;
    mda::DpehPolicy Policy(10, Opts);
    dbt::Engine Engine(Image, Policy, Config);
    dbt::RunResult R = Engine.run();
    expectMatchesOracle(
        R, O, ("flush fuzz seed " + std::to_string(Seed)).c_str());
  }
}

TEST(CodeCacheTest, CapacitySmallerThanOneBlock) {
  // A limit smaller than a translated block used to mean that block
  // flushed the cache on every install without ever fitting.  The
  // hardened engine detects the oversized install and pins the block
  // interpret-only: the run stays correct, the block never occupies the
  // cache, and once pinned it is never translated again.
  guest::GuestImage Image = manyWarmBlocksProgram(300, 1000, 4);
  Oracle O = interpretOracle(Image);
  dbt::EngineConfig Config;
  Config.CodeCacheLimitWords = 8;
  mda::DpehPolicy Policy(10);
  dbt::Engine Engine(Image, Policy, Config);
  dbt::RunResult R = Engine.run();
  expectMatchesOracle(R, O, "cache smaller than one block");
  EXPECT_GT(R.Counters.get("harden.oversized_pins"), 0u);
  // Pin-once semantics: each oversized block is pinned exactly once, and
  // the pinned set accounts for every pin the run recorded.
  EXPECT_EQ(R.Counters.get("harden.oversized_pins"),
            R.Counters.get("harden.interp_only_blocks"));
}

TEST(CodeCacheTest, FlushDuringSupersedeRetranslation) {
  // Capacity pressure and retranslation interleave: a capacity flush
  // can arrive while blocks are being superseded at their trap
  // threshold (the superseding install itself can trigger the flush).
  // Both invalidation styles must stay correct.  The isolated-onset
  // program keeps the MDA sites out of any interpreted block, so the
  // trap/supersede path genuinely fires even under constant flushing.
  guest::GuestImage Image = isolatedOnsetProgram(600, 200, 6);
  Oracle O = interpretOracle(Image);
  mda::DpehOptions Opts;
  Opts.RetranslateThreshold = 2;

  dbt::EngineConfig Config;
  Config.CodeCacheLimitWords = 200;
  mda::DpehPolicy PolicyA(10, Opts);
  dbt::Engine EngineA(Image, PolicyA, Config);
  dbt::RunResult R = EngineA.run();
  expectMatchesOracle(R, O, "capacity flush during retranslation");
  EXPECT_GE(R.Counters.get("dbt.fault_traps"), 1u);
  EXPECT_GE(R.Counters.get("dbt.flushes"), 1u);
  EXPECT_GE(R.Counters.get("dbt.supersedes"), 1u);

  dbt::EngineConfig Dynamo = Config;
  Dynamo.FlushOnSupersede = true;
  mda::DpehPolicy PolicyB(10, Opts);
  dbt::Engine EngineB(Image, PolicyB, Dynamo);
  dbt::RunResult RD = EngineB.run();
  expectMatchesOracle(RD, O, "dynamo flush during retranslation");
  EXPECT_GE(RD.Counters.get("dbt.supersedes"), 1u);
  EXPECT_GE(RD.Counters.get("dbt.flushes"), 1u);
}

TEST(CodeCacheTest, ClearEmptiesArena) {
  host::CodeSpace Code;
  Code.append(1);
  Code.append(2);
  EXPECT_EQ(Code.size(), 2u);
  Code.clear();
  EXPECT_EQ(Code.size(), 0u);
  EXPECT_EQ(Code.append(3), 0u);
}

//===----------------------------------------------------------------------===//
// Predecoded-view coherence: Decoded[i] == decodeHost(Words[i]) after
// every mutation path (the invariant documented in CodeSpace.h).
//===----------------------------------------------------------------------===//

namespace {

/// An opcode value outside every HostOp range (12..15 are unassigned).
constexpr uint32_t InvalidWord = 12u << 26;

void expectPredecodeCoherent(const host::CodeSpace &Code) {
  for (uint32_t I = 0; I != Code.size(); ++I) {
    host::HostInst Fresh;
    bool Ok = host::decodeHost(Code.word(I), Fresh);
    const host::CodeSpace::DecodedWord &D = Code.decodedWord(I);
    ASSERT_EQ(D.Valid, Ok) << "stale validity at word " << I;
    if (Ok)
      EXPECT_EQ(host::encodeHost(D.Inst), host::encodeHost(Fresh))
          << "stale instruction at word " << I;
  }
}

} // namespace

TEST(CodeCacheTest, PredecodeCoherentAfterAppendAndPatch) {
  host::CodeSpace Code;
  Code.append(host::encodeHost(host::opInstLit(host::HostOp::Addq, 1, 7, 2)));
  Code.append(host::encodeHost(host::memInst(host::HostOp::Ldl, 3, -8, 4)));
  Code.append(host::encodeHost(host::brInst(host::HostOp::Bne, 5, -2)));
  Code.append(host::encodeHost(host::srvInst(host::SrvFunc::Halt)));
  Code.append(InvalidWord); // undecodable words carry Valid = false
  expectPredecodeCoherent(Code);
  EXPECT_FALSE(Code.decodedWord(4).Valid);

  // Patching flips words between every format, including to and from
  // undecodable; the view must track each store.
  Code.patch(0, host::encodeHost(host::memInst(host::HostOp::LdqU, 3, 0, 4)));
  Code.patch(1, InvalidWord);
  Code.patch(4, host::encodeHost(host::brInst(host::HostOp::Br, 31, 3)));
  expectPredecodeCoherent(Code);
  EXPECT_FALSE(Code.decodedWord(1).Valid);
  EXPECT_TRUE(Code.decodedWord(4).Valid);
}

TEST(CodeCacheTest, PredecodeCoherentUnderTornAndDroppedWrites) {
  host::CodeSpace Code;
  uint32_t Original =
      host::encodeHost(host::opInstLit(host::HostOp::Addq, 1, 1, 1));
  Code.append(Original);
  Code.append(Original);

  // A torn write stores a different word than requested; the predecoded
  // view must follow the word actually stored, not the requested one.
  uint32_t Torn = host::encodeHost(host::memInst(host::HostOp::Stq, 2, 4, 3));
  Code.setPatchHook([&](uint32_t, uint32_t &Word) {
    Word = Torn;
    return true;
  });
  Code.patch(0, host::encodeHost(host::srvInst(host::SrvFunc::Exit)));
  EXPECT_EQ(Code.word(0), Torn);
  expectPredecodeCoherent(Code);

  // A dropped write leaves the old word; the view must not move either.
  Code.setPatchHook([](uint32_t, uint32_t &) { return false; });
  Code.patch(1, InvalidWord);
  EXPECT_EQ(Code.word(1), Original);
  expectPredecodeCoherent(Code);

  // Torn to an undecodable word: the entry must go invalid, because
  // executing it would run a stale instruction for a garbage word.
  Code.setPatchHook([&](uint32_t, uint32_t &Word) {
    Word = InvalidWord;
    return true;
  });
  Code.patch(1, Original);
  EXPECT_FALSE(Code.decodedWord(1).Valid);
  expectPredecodeCoherent(Code);
}

TEST(CodeCacheTest, PredecodeCoherentAcrossClear) {
  host::CodeSpace Code;
  Code.append(host::encodeHost(host::srvInst(host::SrvFunc::Halt)));
  Code.clear();
  Code.append(host::encodeHost(host::opInstLit(host::HostOp::Subq, 6, 1, 6)));
  expectPredecodeCoherent(Code);
  EXPECT_EQ(Code.decodedWord(0).Inst.Op, host::HostOp::Subq);
}

TEST(CodeCacheTest, PredecodeBitIdenticalUnderRetryPatching) {
  // The exception-handler path: a misaligned Ldl traps, the handler
  // patches the faulting word to the never-trapping LdqU and retries —
  // the patched word must execute on the very next fetch.  Running the
  // same program with and without predecode must agree on every
  // architectural and accounting observable.
  struct Outcome {
    uint64_t R3 = 0, R4 = 0;
    uint64_t Cycles = 0, Instructions = 0, Faults = 0;
  };
  Outcome Out[2];
  for (int Predecode = 0; Predecode != 2; ++Predecode) {
    host::CodeSpace Code;
    {
      host::HostAssembler Asm(Code);
      Asm.materialize32(1, 64);   // loop counter
      Asm.materialize32(2, 4097); // misaligned address
      host::HostAssembler::Label Loop = Asm.newLabel();
      Asm.bind(Loop);
      Asm.mem(host::HostOp::Ldl, 3, 0, 2); // traps on first execution
      Asm.op(host::HostOp::Addq, 4, 3, 4);
      Asm.opl(host::HostOp::Subq, 1, 1, 1);
      Asm.bne(1, Loop);
      Asm.srv(host::SrvFunc::Halt);
    }
    guest::GuestMemory Mem;
    MemoryHierarchy Hier;
    host::CostModel Cost;
    host::HostMachine Machine(Code, Mem, Hier, Cost);
    Machine.UsePredecode = Predecode != 0;
    Machine.setFaultHandler([&](const host::FaultInfo &FI) {
      Code.patch(FI.HostPc,
                 host::encodeHost(host::memInst(
                     host::HostOp::LdqU, FI.Inst.Ra, FI.Inst.Disp,
                     FI.Inst.Rb)));
      return host::FaultAction::Retry;
    });
    host::ExitInfo E = Machine.run(0);
    ASSERT_EQ(E.K, host::ExitInfo::Halt);
    expectPredecodeCoherent(Code);
    Out[Predecode] = {Machine.R[3], Machine.R[4], Machine.Cycles,
                      Machine.Instructions, Machine.Faults};
  }
  EXPECT_EQ(Out[0].R3, Out[1].R3);
  EXPECT_EQ(Out[0].R4, Out[1].R4);
  EXPECT_EQ(Out[0].Cycles, Out[1].Cycles);
  EXPECT_EQ(Out[0].Instructions, Out[1].Instructions);
  EXPECT_EQ(Out[1].Faults, 1u); // patched after the first trap
}
