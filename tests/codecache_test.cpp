//===- tests/codecache_test.cpp - Code-cache management tests -------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for code-cache capacity flushes and Dynamo-style
/// flush-on-supersede (paper section IV-C contrasts DigitalBridge's
/// block-granularity invalidation with Dynamo's whole-cache flush).
/// Every configuration must preserve differential correctness.
///
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "host/CodeSpace.h"
#include "mda/Policies.h"

#include <gtest/gtest.h>

using namespace mdabt;
using namespace mdabt::testutil;

namespace {

/// A program with many independently hot leaf functions plus one
/// late-onset MDA block — warm code a full flush must re-pay for.
guest::GuestImage manyWarmBlocksProgram(uint32_t Outer, uint32_t Onset,
                                        unsigned NumFuncs) {
  using namespace guest;
  ProgramBuilder B("many-warm");
  uint32_t Buf = B.dataReserve(4096, 8);
  uint32_t Slot = B.dataU32(Buf);
  std::vector<ProgramBuilder::Label> Funcs;
  for (unsigned F = 0; F != NumFuncs; ++F)
    Funcs.push_back(B.newLabel());

  B.movri(6, 0);
  ProgramBuilder::Label Loop = B.here();
  ProgramBuilder::Label Skip = B.newLabel();
  B.cmpi(6, static_cast<int32_t>(Onset));
  B.jcc(Cond::Ne, Skip);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.addi(0, 1);
  B.stl(mem(3, 0), 0);
  B.bind(Skip);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.movri(2, 0x42);
  B.stl(mem(0, 0), 2);
  B.stl(mem(0, 8), 2);
  B.ldl(2, mem(0, 0));
  B.chk(2);
  for (ProgramBuilder::Label F : Funcs)
    B.call(F);
  B.addi(6, 1);
  B.cmpi(6, static_cast<int32_t>(Outer));
  B.jcc(Cond::B, Loop);
  B.halt();

  for (unsigned F = 0; F != NumFuncs; ++F) {
    B.bind(Funcs[F]);
    uint32_t FBuf = B.dataReserve(256, 8);
    B.movri(0, static_cast<int32_t>(FBuf));
    B.movri(1, 0);
    ProgramBuilder::Label Inner = B.here();
    B.stl(memIdx(0, 1, 2, 0), 6);
    B.ldl(2, memIdx(0, 1, 2, 0));
    B.addi(1, 1);
    B.cmpi(1, 8);
    B.jcc(Cond::B, Inner);
    B.chk(2);
    B.ret();
  }
  return B.build();
}

/// Like manyWarmBlocksProgram, but the late-onset increment lives in an
/// out-of-line block that jumps back to the shared body.  The MDA sites
/// therefore belong to exactly one block and are never interpreted
/// misaligned, so a dynamic-profiling policy cannot learn them from the
/// onset path — the first misaligned execution must go through the
/// native trap machinery.
guest::GuestImage isolatedOnsetProgram(uint32_t Outer, uint32_t Onset,
                                       unsigned NumFuncs) {
  using namespace guest;
  ProgramBuilder B("isolated-onset");
  uint32_t Buf = B.dataReserve(4096, 8);
  uint32_t Slot = B.dataU32(Buf);
  std::vector<ProgramBuilder::Label> Funcs;
  for (unsigned F = 0; F != NumFuncs; ++F)
    Funcs.push_back(B.newLabel());
  ProgramBuilder::Label Inc = B.newLabel();

  B.movri(6, 0);
  ProgramBuilder::Label Loop = B.here();
  B.cmpi(6, static_cast<int32_t>(Onset));
  B.jcc(Cond::Eq, Inc);
  ProgramBuilder::Label Body = B.here();
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.movri(2, 0x42);
  B.stl(mem(0, 0), 2);
  B.stl(mem(0, 8), 2);
  B.ldl(2, mem(0, 0));
  B.chk(2);
  for (ProgramBuilder::Label F : Funcs)
    B.call(F);
  B.addi(6, 1);
  B.cmpi(6, static_cast<int32_t>(Outer));
  B.jcc(Cond::B, Loop);
  B.halt();

  // Out-of-line onset block: aligned accesses only.
  B.bind(Inc);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.addi(0, 1);
  B.stl(mem(3, 0), 0);
  B.jmp(Body);

  for (unsigned F = 0; F != NumFuncs; ++F) {
    B.bind(Funcs[F]);
    uint32_t FBuf = B.dataReserve(256, 8);
    B.movri(0, static_cast<int32_t>(FBuf));
    B.movri(1, 0);
    ProgramBuilder::Label Inner = B.here();
    B.stl(memIdx(0, 1, 2, 0), 6);
    B.ldl(2, memIdx(0, 1, 2, 0));
    B.addi(1, 1);
    B.cmpi(1, 8);
    B.jcc(Cond::B, Inner);
    B.chk(2);
    B.ret();
  }
  return B.build();
}

} // namespace

TEST(CodeCacheTest, CapacityFlushPreservesCorrectness) {
  // Small cache + several hot blocks: every new install evicts the
  // world.  (A single-block program can never flush: capacity is
  // checked when a new block is installed.)
  guest::GuestImage Image = manyWarmBlocksProgram(300, 1000, 4);
  Oracle O = interpretOracle(Image);
  dbt::EngineConfig Config;
  Config.CodeCacheLimitWords = 64;
  mda::DpehPolicy Policy(10);
  dbt::Engine Engine(Image, Policy, Config);
  dbt::RunResult R = Engine.run();
  expectMatchesOracle(R, O, "tiny code cache");
  EXPECT_GE(R.Counters.get("dbt.flushes"), 1u);
}

TEST(CodeCacheTest, CapacityFlushRetranslatesWarmBlocks) {
  guest::GuestImage Image = manyWarmBlocksProgram(600, 1000, 6);
  Oracle O = interpretOracle(Image);
  dbt::EngineConfig Config;
  Config.CodeCacheLimitWords = 200;
  mda::DpehPolicy Policy(10);
  dbt::Engine Engine(Image, Policy, Config);
  dbt::RunResult R = Engine.run();
  expectMatchesOracle(R, O, "capacity flush, warm blocks");
  EXPECT_GE(R.Counters.get("dbt.flushes"), 1u);
  // More translations than distinct blocks: flush victims came back.
  mda::DpehPolicy Unlimited(10);
  dbt::Engine E2(Image, Unlimited);
  dbt::RunResult RU = E2.run();
  EXPECT_GT(R.Counters.get("dbt.translations"),
            RU.Counters.get("dbt.translations"));
}

TEST(CodeCacheTest, NoFlushWhenUnlimited) {
  guest::GuestImage Image = misalignedSumProgram(500);
  mda::DpehPolicy Policy(10);
  dbt::Engine Engine(Image, Policy);
  dbt::RunResult R = Engine.run();
  EXPECT_EQ(R.Counters.get("dbt.flushes"), 0u);
}

TEST(CodeCacheTest, FlushOnSupersedeIsDynamoStyle) {
  // Retranslation-triggering workload with many warm leaf functions:
  // with FlushOnSupersede the supersede becomes a whole-cache flush,
  // which must re-pay translation for the untouched warm blocks
  // (the paper's section IV-C contrast).
  guest::GuestImage Image = manyWarmBlocksProgram(1200, 400, 8);
  Oracle O = interpretOracle(Image);

  mda::DpehOptions Opts;
  Opts.RetranslateThreshold = 2;
  dbt::EngineConfig Dynamo;
  Dynamo.FlushOnSupersede = true;

  mda::DpehPolicy PolicyA(50, Opts);
  dbt::Engine EngineA(Image, PolicyA, Dynamo);
  dbt::RunResult Flushed = EngineA.run();
  expectMatchesOracle(Flushed, O, "dynamo-style flush");
  EXPECT_GE(Flushed.Counters.get("dbt.flushes"), 1u);

  mda::DpehPolicy PolicyB(50, Opts);
  dbt::Engine EngineB(Image, PolicyB);
  dbt::RunResult BlockGranular = EngineB.run();
  expectMatchesOracle(BlockGranular, O, "block-granularity invalidation");
  EXPECT_EQ(BlockGranular.Counters.get("dbt.flushes"), 0u);

  // Flushing everything re-pays translation for untouched blocks.
  EXPECT_GT(Flushed.Counters.get("dbt.translations"),
            BlockGranular.Counters.get("dbt.translations"));
}

TEST(CodeCacheTest, FlushedFuzzProgramsStayCorrect) {
  for (uint64_t Seed = 200; Seed != 212; ++Seed) {
    RandomProgram Gen(Seed);
    guest::GuestImage Image = Gen.build();
    Oracle O = interpretOracle(Image);
    dbt::EngineConfig Config;
    Config.CodeCacheLimitWords = 256;
    mda::DpehOptions Opts;
    Opts.RetranslateThreshold = 2;
    mda::DpehPolicy Policy(10, Opts);
    dbt::Engine Engine(Image, Policy, Config);
    dbt::RunResult R = Engine.run();
    expectMatchesOracle(
        R, O, ("flush fuzz seed " + std::to_string(Seed)).c_str());
  }
}

TEST(CodeCacheTest, CapacitySmallerThanOneBlock) {
  // A limit smaller than a translated block used to mean that block
  // flushed the cache on every install without ever fitting.  The
  // hardened engine detects the oversized install and pins the block
  // interpret-only: the run stays correct, the block never occupies the
  // cache, and once pinned it is never translated again.
  guest::GuestImage Image = manyWarmBlocksProgram(300, 1000, 4);
  Oracle O = interpretOracle(Image);
  dbt::EngineConfig Config;
  Config.CodeCacheLimitWords = 8;
  mda::DpehPolicy Policy(10);
  dbt::Engine Engine(Image, Policy, Config);
  dbt::RunResult R = Engine.run();
  expectMatchesOracle(R, O, "cache smaller than one block");
  EXPECT_GT(R.Counters.get("harden.oversized_pins"), 0u);
  // Pin-once semantics: each oversized block is pinned exactly once, and
  // the pinned set accounts for every pin the run recorded.
  EXPECT_EQ(R.Counters.get("harden.oversized_pins"),
            R.Counters.get("harden.interp_only_blocks"));
}

TEST(CodeCacheTest, FlushDuringSupersedeRetranslation) {
  // Capacity pressure and retranslation interleave: a capacity flush
  // can arrive while blocks are being superseded at their trap
  // threshold (the superseding install itself can trigger the flush).
  // Both invalidation styles must stay correct.  The isolated-onset
  // program keeps the MDA sites out of any interpreted block, so the
  // trap/supersede path genuinely fires even under constant flushing.
  guest::GuestImage Image = isolatedOnsetProgram(600, 200, 6);
  Oracle O = interpretOracle(Image);
  mda::DpehOptions Opts;
  Opts.RetranslateThreshold = 2;

  dbt::EngineConfig Config;
  Config.CodeCacheLimitWords = 200;
  mda::DpehPolicy PolicyA(10, Opts);
  dbt::Engine EngineA(Image, PolicyA, Config);
  dbt::RunResult R = EngineA.run();
  expectMatchesOracle(R, O, "capacity flush during retranslation");
  EXPECT_GE(R.Counters.get("dbt.fault_traps"), 1u);
  EXPECT_GE(R.Counters.get("dbt.flushes"), 1u);
  EXPECT_GE(R.Counters.get("dbt.supersedes"), 1u);

  dbt::EngineConfig Dynamo = Config;
  Dynamo.FlushOnSupersede = true;
  mda::DpehPolicy PolicyB(10, Opts);
  dbt::Engine EngineB(Image, PolicyB, Dynamo);
  dbt::RunResult RD = EngineB.run();
  expectMatchesOracle(RD, O, "dynamo flush during retranslation");
  EXPECT_GE(RD.Counters.get("dbt.supersedes"), 1u);
  EXPECT_GE(RD.Counters.get("dbt.flushes"), 1u);
}

TEST(CodeCacheTest, ClearEmptiesArena) {
  host::CodeSpace Code;
  Code.append(1);
  Code.append(2);
  EXPECT_EQ(Code.size(), 2u);
  Code.clear();
  EXPECT_EQ(Code.size(), 0u);
  EXPECT_EQ(Code.append(3), 0u);
}
