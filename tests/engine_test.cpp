//===- tests/engine_test.cpp - End-to-end engine + policy tests -----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DESIGN.md invariants 1 and 3: every policy reproduces the
/// interpreter's observable final state exactly (differential testing),
/// and patching policies trap at most once per static instruction.  Also
/// covers chaining, rearrangement, retranslation and multi-version
/// behaviour at the engine level.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "mda/Policies.h"
#include "mda/PolicyFactory.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace mdabt;
using namespace mdabt::testutil;

namespace {

/// All mechanism configurations the paper evaluates.
std::vector<mda::PolicySpec> allSpecs() {
  using mda::MechanismKind;
  std::vector<mda::PolicySpec> Specs;
  Specs.push_back({MechanismKind::Direct, 0, false, 0, false});
  Specs.push_back({MechanismKind::StaticProfiling, 0, false, 0, false});
  for (uint32_t Th : {10u, 50u, 500u})
    Specs.push_back({MechanismKind::DynamicProfiling, Th, false, 0, false});
  Specs.push_back({MechanismKind::ExceptionHandling, 50, false, 0, false});
  Specs.push_back({MechanismKind::ExceptionHandling, 50, true, 0, false});
  Specs.push_back({MechanismKind::Dpeh, 50, false, 0, false});
  Specs.push_back({MechanismKind::Dpeh, 50, false, 4, false});
  Specs.push_back({MechanismKind::Dpeh, 50, false, 0, true});
  Specs.push_back({MechanismKind::Dpeh, 50, false, 4, true});
  return Specs;
}

dbt::RunResult runUnder(const guest::GuestImage &Image,
                        const mda::PolicySpec &Spec,
                        const guest::GuestImage *Train = nullptr) {
  std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(Spec, Train);
  dbt::Engine Engine(Image, *Policy);
  return Engine.run();
}

class AllPoliciesTest : public ::testing::TestWithParam<mda::PolicySpec> {};

} // namespace

TEST_P(AllPoliciesTest, MisalignedSumMatchesOracle) {
  guest::GuestImage Image = misalignedSumProgram(600);
  Oracle O = interpretOracle(Image);
  dbt::RunResult R = runUnder(Image, GetParam(), &Image);
  expectMatchesOracle(R, O, mda::policySpecName(GetParam()).c_str());
}

TEST_P(AllPoliciesTest, LateOnsetMatchesOracle) {
  guest::GuestImage Image = lateOnsetProgram(800, 400);
  Oracle O = interpretOracle(Image);
  dbt::RunResult R = runUnder(Image, GetParam(), &Image);
  expectMatchesOracle(R, O, mda::policySpecName(GetParam()).c_str());
}

TEST_P(AllPoliciesTest, CallHeavyProgramMatchesOracle) {
  using namespace guest;
  ProgramBuilder B("callheavy");
  uint32_t Buf = B.dataReserve(256, 8);
  auto Fn = B.newLabel();
  B.movri(0, static_cast<int32_t>(Buf + 3)); // misaligned
  B.movri(6, 0);                             // counter
  ProgramBuilder::Label Loop = B.here();
  B.call(Fn);
  B.addi(6, 1);
  B.cmpi(6, 200);
  B.jcc(Cond::B, Loop);
  B.halt();
  B.bind(Fn);
  B.stl(mem(0, 0), 6);
  B.ldl(2, mem(0, 0));
  B.chk(2);
  B.ret();
  GuestImage Image = B.build();
  Oracle O = interpretOracle(Image);
  dbt::RunResult R = runUnder(Image, GetParam(), &Image);
  expectMatchesOracle(R, O, mda::policySpecName(GetParam()).c_str());
}

INSTANTIATE_TEST_SUITE_P(
    EveryMechanism, AllPoliciesTest, ::testing::ValuesIn(allSpecs()),
    [](const ::testing::TestParamInfo<mda::PolicySpec> &I) {
      std::string Name = mda::policySpecName(I.param);
      for (char &C : Name)
        if (C == '@' || C == '+')
          C = '_';
      return Name;
    });

TEST(EngineTest, DirectMethodNeverTraps) {
  guest::GuestImage Image = misalignedSumProgram(500);
  dbt::RunResult R = runUnder(
      Image, {mda::MechanismKind::Direct, 0, false, 0, false});
  EXPECT_EQ(R.Counters.get("dbt.fault_traps"), 0u);
  // QEMU-style: no interpretation phase at all.
  EXPECT_EQ(R.Counters.get("interp.insts"), 0u);
}

TEST(EngineTest, ExceptionHandlingTrapsOncePerInstruction) {
  // The loop performs 2 misaligned ops x 600 iterations, but EH patches
  // each on its first trap: exactly 2 traps (DESIGN.md invariant 3).
  guest::GuestImage Image = misalignedSumProgram(600);
  dbt::RunResult R = runUnder(
      Image, {mda::MechanismKind::ExceptionHandling, 50, false, 0, false});
  EXPECT_EQ(R.Counters.get("dbt.fault_traps"), 2u);
  EXPECT_EQ(R.Counters.get("dbt.patches"), 2u);
  EXPECT_EQ(R.Counters.get("dbt.fixups"), 0u);
}

TEST(EngineTest, DynamicProfilingTrapsOnEveryResidualMda) {
  // Late onset at iteration 400 with threshold 50: the block is
  // translated (aligned) before the MDAs start; each of the remaining
  // iterations takes 2 traps (store + load), emulated via fixup.
  guest::GuestImage Image = lateOnsetProgram(800, 400);
  dbt::RunResult R = runUnder(
      Image, {mda::MechanismKind::DynamicProfiling, 50, false, 0, false});
  uint64_t Traps = R.Counters.get("dbt.fault_traps");
  // Iterations 401..799 trap twice each.  Iteration 400 flows through
  // the bump block, whose (overlapping) translation unit is cold and
  // therefore interpreted: its two MDAs never reach the hardware.
  EXPECT_EQ(Traps, 2u * (800 - 401));
  EXPECT_EQ(R.Counters.get("dbt.fixups"), Traps);
  EXPECT_EQ(R.Counters.get("dbt.patches"), 0u);
}

TEST(EngineTest, DpehPatchesResidualMdasOnce) {
  guest::GuestImage Image = lateOnsetProgram(800, 400);
  dbt::RunResult R = runUnder(
      Image, {mda::MechanismKind::Dpeh, 50, false, 0, false});
  // The two late-onset sites trap once each and get patched.
  EXPECT_EQ(R.Counters.get("dbt.fault_traps"), 2u);
  EXPECT_EQ(R.Counters.get("dbt.patches"), 2u);
}

TEST(EngineTest, DpehProfilingAvoidsTrapsForStableMdas) {
  // Stable misalignment is visible during the heating phase, so DPEH
  // inlines the sequences at translation time: zero traps.
  guest::GuestImage Image = misalignedSumProgram(600);
  dbt::RunResult R = runUnder(
      Image, {mda::MechanismKind::Dpeh, 50, false, 0, false});
  EXPECT_EQ(R.Counters.get("dbt.fault_traps"), 0u);
}

TEST(EngineTest, StaticProfilingUsesTrainProfile) {
  guest::GuestImage Image = misalignedSumProgram(600);
  // Train == ref here, so the profile covers everything: no traps.
  dbt::RunResult R = runUnder(
      Image, {mda::MechanismKind::StaticProfiling, 0, false, 0, false},
      &Image);
  EXPECT_EQ(R.Counters.get("dbt.fault_traps"), 0u);
}

TEST(EngineTest, StaticProfilingMissesRefOnlyMdas) {
  // Train input: onset beyond the loop bound -> never misaligned.
  guest::GuestImage Train = lateOnsetProgram(800, 1000000);
  guest::GuestImage Ref = lateOnsetProgram(800, 0);
  dbt::RunResult R = runUnder(
      Ref, {mda::MechanismKind::StaticProfiling, 0, false, 0, false},
      &Train);
  // Every REF MDA becomes a trap + fixup.
  EXPECT_EQ(R.Counters.get("dbt.fault_traps"), 2u * 800);
  EXPECT_EQ(R.Counters.get("dbt.fixups"), 2u * 800);
}

TEST(EngineTest, RearrangementSupersedesBlocks) {
  guest::GuestImage Image = lateOnsetProgram(800, 400);
  dbt::RunResult Plain = runUnder(
      Image, {mda::MechanismKind::ExceptionHandling, 50, false, 0, false});
  dbt::RunResult Rearr = runUnder(
      Image, {mda::MechanismKind::ExceptionHandling, 50, true, 0, false});
  EXPECT_EQ(Plain.Counters.get("dbt.supersedes"), 0u);
  EXPECT_GT(Rearr.Counters.get("dbt.supersedes"), 0u);
  EXPECT_EQ(Rearr.Checksum, Plain.Checksum);
}

TEST(EngineTest, RetranslationTriggersAtThreshold) {
  // A block with 5 late-onset MDA instructions: at threshold 4 the 4th
  // trap invalidates and retranslates the block; the 5th instruction is
  // then inlined, so it never traps.
  using namespace guest;
  ProgramBuilder B("multi-mda");
  uint32_t Buf = B.dataReserve(256, 8);
  uint32_t Slot = B.dataU32(Buf);
  B.movri(6, 0);
  ProgramBuilder::Label Loop = B.here();
  ProgramBuilder::Label Skip = B.newLabel();
  B.cmpi(6, 300);
  B.jcc(Cond::Ne, Skip);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.addi(0, 1);
  B.stl(mem(3, 0), 0);
  B.bind(Skip);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.movri(2, 7);
  B.stl(mem(0, 0), 2);
  B.stl(mem(0, 8), 2);
  B.stl(mem(0, 16), 2);
  B.stl(mem(0, 24), 2);
  B.stl(mem(0, 32), 2);
  B.chk(0);
  B.addi(6, 1);
  B.cmpi(6, 600);
  B.jcc(Cond::B, Loop);
  B.halt();
  GuestImage Image = B.build();
  Oracle O = interpretOracle(Image);

  dbt::RunResult NoRetrans = runUnder(
      Image, {mda::MechanismKind::Dpeh, 50, false, 0, false});
  dbt::RunResult Retrans = runUnder(
      Image, {mda::MechanismKind::Dpeh, 50, false, 4, false});
  expectMatchesOracle(Retrans, O, "dpeh+retrans");
  EXPECT_EQ(NoRetrans.Counters.get("dbt.fault_traps"), 5u);
  EXPECT_EQ(NoRetrans.Counters.get("dbt.supersedes"), 0u);
  // Retranslation fires at the 4th trap; the still-running old
  // incarnation takes one more trap for site 5.  The superseding
  // translation already knows all five sites (the onset iteration flowed
  // through the cold bump block and was interpreted into the profile),
  // so the new incarnation is fully inline and never traps.
  EXPECT_EQ(Retrans.Counters.get("dbt.fault_traps"), 5u);
  EXPECT_EQ(Retrans.Counters.get("dbt.supersedes"), 1u);
}

TEST(EngineTest, MultiVersionHandlesMixedAlignment) {
  // A site alternating aligned/misaligned every iteration: with
  // multi-version code DPEH emits the check-and-select form and never
  // traps; without it, the profile marks the site as MDA and inlines
  // the sequence (also no traps) — both must match the oracle.
  using namespace guest;
  ProgramBuilder B("mixed");
  uint32_t Buf = B.dataReserve(4096, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(1, 0);
  ProgramBuilder::Label Loop = B.here();
  B.movrr(5, 1);
  B.andi(5, 1);   // bump = i & 1
  B.movrr(3, 0);
  B.add(3, 5);    // base + bump
  B.stl(memIdx(3, 1, 2, 0), 1);
  B.ldl(2, memIdx(3, 1, 2, 0));
  B.chk(2);
  B.addi(1, 1);
  B.cmpi(1, 400);
  B.jcc(Cond::B, Loop);
  B.halt();
  GuestImage Image = B.build();
  Oracle O = interpretOracle(Image);

  dbt::RunResult Mv = runUnder(
      Image, {mda::MechanismKind::Dpeh, 50, false, 0, true});
  dbt::RunResult Plain = runUnder(
      Image, {mda::MechanismKind::Dpeh, 50, false, 0, false});
  expectMatchesOracle(Mv, O, "dpeh+mv");
  expectMatchesOracle(Plain, O, "dpeh");
  EXPECT_EQ(Mv.Counters.get("dbt.fault_traps"), 0u);
  EXPECT_EQ(Plain.Counters.get("dbt.fault_traps"), 0u);
}

TEST(EngineTest, ChainingReducesMonitorDispatches) {
  guest::GuestImage Image = misalignedSumProgram(2000);
  mda::PolicySpec Spec{mda::MechanismKind::Dpeh, 50, false, 0, false};
  dbt::EngineConfig NoChain;
  NoChain.EnableChaining = false;
  std::unique_ptr<dbt::MdaPolicy> P1 = mda::makePolicy(Spec);
  dbt::Engine E1(Image, *P1);
  dbt::RunResult Chained = E1.run();
  std::unique_ptr<dbt::MdaPolicy> P2 = mda::makePolicy(Spec);
  dbt::Engine E2(Image, *P2, NoChain);
  dbt::RunResult Unchained = E2.run();
  EXPECT_EQ(Chained.Checksum, Unchained.Checksum);
  EXPECT_GT(Chained.Counters.get("dbt.chains"), 0u);
  EXPECT_EQ(Unchained.Counters.get("dbt.chains"), 0u);
  EXPECT_LT(Chained.Counters.get("dbt.native_entries"),
            Unchained.Counters.get("dbt.native_entries"));
}

TEST(EngineTest, CycleBreakdownSumsToTotal) {
  guest::GuestImage Image = misalignedSumProgram(300);
  dbt::RunResult R = runUnder(
      Image, {mda::MechanismKind::Dpeh, 50, false, 0, false});
  uint64_t Sum = R.Counters.get("cycles.native") +
                 R.Counters.get("cycles.interp") +
                 R.Counters.get("cycles.translate") +
                 R.Counters.get("cycles.monitor") +
                 R.Counters.get("cycles.chain");
  EXPECT_EQ(R.Cycles, Sum);
  EXPECT_EQ(R.Cycles, R.Counters.get("cycles.total"));
}

TEST(EngineTest, DirectCostExceedsDpehOnAlignedCode) {
  // A fully aligned hot loop: the direct method pays the MDA-sequence
  // instruction overhead for nothing (the paper's core observation about
  // QEMU).
  using namespace guest;
  ProgramBuilder B("aligned-loop");
  uint32_t Buf = B.dataReserve(8192, 8);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(1, 0);
  ProgramBuilder::Label Loop = B.here();
  B.stl(memIdx(0, 1, 2, 0), 1);
  B.ldl(2, memIdx(0, 1, 2, 0));
  B.addi(1, 1);
  B.cmpi(1, 2000);
  B.jcc(Cond::B, Loop);
  B.chk(2);
  B.halt();
  GuestImage Image = B.build();
  dbt::RunResult Direct = runUnder(
      Image, {mda::MechanismKind::Direct, 0, false, 0, false});
  dbt::RunResult Dpeh = runUnder(
      Image, {mda::MechanismKind::Dpeh, 50, false, 0, false});
  EXPECT_GT(Direct.Counters.get("cycles.native"),
            Dpeh.Counters.get("cycles.native"));
}

TEST(EngineTest, HeatingThresholdControlsInterpretation) {
  guest::GuestImage Image = misalignedSumProgram(1000);
  dbt::RunResult Th10 = runUnder(
      Image, {mda::MechanismKind::DynamicProfiling, 10, false, 0, false});
  dbt::RunResult Th500 = runUnder(
      Image, {mda::MechanismKind::DynamicProfiling, 500, false, 0, false});
  EXPECT_LT(Th10.Counters.get("interp.insts"),
            Th500.Counters.get("interp.insts"));
}

TEST(EngineTest, RunErrorNamesRoundTripExhaustively) {
  // Every enumerator has a distinct, stable wire name.  The
  // static_assert pins NumRunErrors to the enum's actual extent, so
  // adding an enumerator without growing the table (and the name
  // switch, which has no default and trips -Wswitch) fails loudly at
  // compile time, and the soak/bench error tables can index by value.
  static_assert(static_cast<size_t>(dbt::RunError::BudgetChurn) + 1 ==
                    dbt::NumRunErrors,
                "NumRunErrors out of sync with the RunError enum");
  std::set<std::string> Seen;
  for (size_t I = 0; I != dbt::NumRunErrors; ++I) {
    std::string Name =
        dbt::runErrorName(static_cast<dbt::RunError>(I));
    EXPECT_FALSE(Name.empty()) << "enumerator " << I;
    EXPECT_NE(Name, "unknown") << "enumerator " << I;
    EXPECT_TRUE(Seen.insert(Name).second)
        << "duplicate name '" << Name << "' at enumerator " << I;
  }
  EXPECT_STREQ(
      dbt::runErrorName(static_cast<dbt::RunError>(dbt::NumRunErrors)),
      "unknown");
}

TEST(EngineTest, EngineRefusesSecondRun) {
  // The one-shot guard is a hard runtime error in every build mode
  // (not an assert): a second run would silently reuse policy state
  // already specialized by the first.
  guest::GuestImage Image = misalignedSumProgram(10);
  mda::DirectPolicy Policy;
  dbt::Engine E(Image, Policy);
  E.run();
  EXPECT_DEATH(E.run(), "exactly one run");
}
