//===- tests/TestUtil.h - Shared test helpers ------------------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the integration tests: the interpreter oracle (run
/// an image to completion and capture the observable final state) and
/// tiny guest programs with interesting MDA behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_TESTS_TESTUTIL_H
#define MDABT_TESTS_TESTUTIL_H

#include "dbt/Engine.h"
#include "guest/Assembler.h"
#include "guest/GuestCPU.h"
#include "guest/GuestMemory.h"
#include "guest/Interpreter.h"

#include <gtest/gtest.h>

namespace mdabt {
namespace testutil {

/// Observable final state of a run (flags excluded: translated code
/// legitimately does not maintain guest flags across blocks).
struct Oracle {
  uint32_t Gpr[guest::NumGPR];
  uint64_t Qreg[guest::NumQReg];
  uint64_t Checksum;
  uint64_t MemoryHash;
};

/// Run \p Image under the pure interpreter.
inline Oracle interpretOracle(const guest::GuestImage &Image,
                              uint64_t MaxInsts = 500'000'000ULL) {
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  guest::GuestCPU Cpu;
  Cpu.reset(Image);
  guest::Interpreter Interp(Mem);
  Interp.run(Cpu, MaxInsts);
  EXPECT_TRUE(Cpu.Halted) << "oracle run did not halt";
  Oracle O;
  for (unsigned I = 0; I != guest::NumGPR; ++I)
    O.Gpr[I] = Cpu.Gpr[I];
  for (unsigned I = 0; I != guest::NumQReg; ++I)
    O.Qreg[I] = Cpu.Qreg[I];
  O.Checksum = Cpu.Checksum;
  O.MemoryHash = dbt::fnv1a(Mem.data(), Mem.size());
  return O;
}

/// Assert that an engine run reproduced the oracle exactly.
inline void expectMatchesOracle(const dbt::RunResult &R, const Oracle &O,
                                const char *What) {
  EXPECT_TRUE(R.completed())
      << What << ": engine run did not complete ("
      << dbt::runErrorName(R.Error) << ")";
  EXPECT_EQ(R.Checksum, O.Checksum) << What << ": checksum diverged";
  EXPECT_EQ(R.MemoryHash, O.MemoryHash) << What << ": memory diverged";
  for (unsigned I = 0; I != guest::NumGPR; ++I)
    EXPECT_EQ(R.FinalCpu.Gpr[I], O.Gpr[I])
        << What << ": GPR " << I << " diverged";
  for (unsigned I = 0; I != guest::NumQReg; ++I)
    EXPECT_EQ(R.FinalCpu.Qreg[I], O.Qreg[I])
        << What << ": Q" << I << " diverged";
}

/// A program with a hot loop whose 4-byte accesses are all misaligned:
/// the canonical MDA-heavy kernel.
inline guest::GuestImage misalignedSumProgram(uint32_t Iters) {
  using namespace guest;
  ProgramBuilder B("misaligned-sum");
  uint32_t Buf = B.dataReserve(Iters * 4 + 16, 8);
  B.movri(0, static_cast<int32_t>(Buf + 1)); // misaligned base
  B.movri(1, 0);                             // i
  B.movri(2, 0x01020304);                    // store value
  ProgramBuilder::Label Loop = B.here();
  B.stl(memIdx(0, 1, 2, 0), 2);
  B.ldl(3, memIdx(0, 1, 2, 0));
  B.add(2, 3);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(Cond::B, Loop);
  B.chk(2);
  B.chk(3);
  B.halt();
  return B.build();
}

/// A program whose loop switches from aligned to misaligned accesses at
/// iteration \p Onset (late-onset behaviour: the dynamic-profiling
/// escape of paper Table III).
inline guest::GuestImage lateOnsetProgram(uint32_t Iters, uint32_t Onset) {
  using namespace guest;
  ProgramBuilder B("late-onset");
  uint32_t Buf = B.dataReserve(64, 8);
  uint32_t Slot = B.dataU32(Buf); // base pointer, aligned initially
  B.movri(1, 0);                  // i
  ProgramBuilder::Label Loop = B.here();
  // if (i == Onset) *slot += 1;
  ProgramBuilder::Label Skip = B.newLabel();
  B.cmpi(1, static_cast<int32_t>(Onset));
  B.jcc(Cond::Ne, Skip);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.addi(0, 1);
  B.stl(mem(3, 0), 0);
  B.bind(Skip);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0)); // base
  B.movri(2, 0x1234);
  B.stl(mem(0, 0), 2);
  B.ldl(2, mem(0, 0));
  B.chk(2);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(Cond::B, Loop);
  B.halt();
  return B.build();
}

} // namespace testutil
} // namespace mdabt

#endif // MDABT_TESTS_TESTUTIL_H
