//===- reporting/Experiment.cpp -------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "reporting/Experiment.h"

#include "guest/GuestCPU.h"
#include "guest/GuestMemory.h"
#include "guest/Interpreter.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace mdabt;
using namespace mdabt::reporting;

dbt::RunResult mdabt::reporting::runPolicy(
    const workloads::BenchmarkInfo &Info, const mda::PolicySpec &Spec,
    const workloads::ScaleConfig &Scale, const dbt::EngineConfig &Config) {
  guest::GuestImage Ref =
      workloads::buildBenchmark(Info, workloads::InputKind::Ref, Scale);

  std::unique_ptr<dbt::MdaPolicy> Policy;
  if (Spec.Kind == mda::MechanismKind::StaticProfiling) {
    guest::GuestImage Train =
        workloads::buildBenchmark(Info, workloads::InputKind::Train, Scale);
    Policy = mda::makePolicy(Spec, &Train);
  } else {
    Policy = mda::makePolicy(Spec);
  }

  dbt::Engine Engine(Ref, *Policy, Config);
  return Engine.run();
}

void mdabt::reporting::checkRunCompleted(const dbt::RunResult &R,
                                         const std::string &What) {
  if (R.completed())
    return;
  std::fprintf(stderr, "error: %s did not complete: %s\n", What.c_str(),
               dbt::runErrorName(R.Error));
  std::exit(1);
}

dbt::RunResult mdabt::reporting::runPolicyChecked(
    const workloads::BenchmarkInfo &Info, const mda::PolicySpec &Spec,
    const workloads::ScaleConfig &Scale, const dbt::EngineConfig &Config) {
  dbt::RunResult R = runPolicy(Info, Spec, Scale, Config);
  checkRunCompleted(R, std::string(Info.Name) + " under " +
                           mda::policySpecName(Spec));
  return R;
}

std::string MatrixCell::label() const {
  if (!Label.empty())
    return Label;
  std::string Name = Info ? Info->Name : "<custom>";
  return Name + " under " + mda::policySpecName(Spec);
}

std::vector<dbt::RunResult>
mdabt::reporting::runMatrix(const std::vector<MatrixCell> &Cells,
                            const workloads::ScaleConfig &Scale,
                            unsigned Jobs) {
  std::vector<dbt::RunResult> Results(Cells.size());
  // Every task touches only its own result slot; the pool imposes no
  // ordering, the index does.
  parallelFor(Jobs, Cells.size(), [&](size_t I) {
    const MatrixCell &Cell = Cells[I];
    if (Cell.Run) {
      Results[I] = Cell.Run();
      return;
    }
    assert(Cell.Info && "matrix cell needs a benchmark or a Run closure");
    Results[I] = runPolicy(*Cell.Info, Cell.Spec, Scale, Cell.Config);
  });
  return Results;
}

std::vector<dbt::RunResult> mdabt::reporting::runPolicyMatrixChecked(
    const std::vector<MatrixCell> &Cells,
    const workloads::ScaleConfig &Scale, unsigned Jobs) {
  std::vector<dbt::RunResult> Results = runMatrix(Cells, Scale, Jobs);
  for (size_t I = 0; I != Cells.size(); ++I)
    checkRunCompleted(Results[I], Cells[I].label());
  return Results;
}

CensusResult mdabt::reporting::runCensus(const guest::GuestImage &Image) {
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  guest::GuestCPU Cpu;
  Cpu.reset(Image);
  guest::MdaCensus Census;
  guest::Interpreter Interp(Mem);
  Interp.setObserver(&Census);
  Interp.run(Cpu);

  CensusResult R;
  R.Nmi = Census.nmi();
  R.Mdas = Census.totalMdas();
  R.Refs = Census.totalRefs();
  R.Ratio = Census.ratio();
  R.Bias = Census.biasBreakdown();
  R.Checksum = Cpu.Checksum;
  return R;
}

double NormalizedSeries::geomean() const { return geometricMean(Values); }

std::string mdabt::reporting::metricsJsonString(const dbt::RunResult &R) {
  return format(
      "{\"status\":\"%s\",\"cycles\":%llu,\"checksum\":%llu,"
      "\"metrics\":%s}\n",
      dbt::runErrorName(R.Error), static_cast<unsigned long long>(R.Cycles),
      static_cast<unsigned long long>(R.Checksum),
      R.Metrics.toJson().c_str());
}

bool mdabt::reporting::writeMetricsJson(const dbt::RunResult &R,
                                        const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Body = metricsJsonString(R);
  bool Ok = std::fwrite(Body.data(), 1, Body.size(), F) == Body.size();
  if (std::fclose(F) != 0)
    Ok = false;
  return Ok;
}

double mdabt::reporting::gainOver(uint64_t BaselineCycles,
                                  uint64_t ImprovedCycles) {
  if (BaselineCycles == 0)
    return 0.0;
  return (static_cast<double>(BaselineCycles) -
          static_cast<double>(ImprovedCycles)) /
         static_cast<double>(BaselineCycles);
}
