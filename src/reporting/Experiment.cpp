//===- reporting/Experiment.cpp -------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "reporting/Experiment.h"

#include "guest/GuestCPU.h"
#include "guest/GuestMemory.h"
#include "guest/Interpreter.h"
#include "support/Stats.h"

using namespace mdabt;
using namespace mdabt::reporting;

dbt::RunResult mdabt::reporting::runPolicy(
    const workloads::BenchmarkInfo &Info, const mda::PolicySpec &Spec,
    const workloads::ScaleConfig &Scale, const dbt::EngineConfig &Config) {
  guest::GuestImage Ref =
      workloads::buildBenchmark(Info, workloads::InputKind::Ref, Scale);

  std::unique_ptr<dbt::MdaPolicy> Policy;
  if (Spec.Kind == mda::MechanismKind::StaticProfiling) {
    guest::GuestImage Train =
        workloads::buildBenchmark(Info, workloads::InputKind::Train, Scale);
    Policy = mda::makePolicy(Spec, &Train);
  } else {
    Policy = mda::makePolicy(Spec);
  }

  dbt::Engine Engine(Ref, *Policy, Config);
  return Engine.run();
}

CensusResult mdabt::reporting::runCensus(const guest::GuestImage &Image) {
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  guest::GuestCPU Cpu;
  Cpu.reset(Image);
  guest::MdaCensus Census;
  guest::Interpreter Interp(Mem);
  Interp.setObserver(&Census);
  Interp.run(Cpu);

  CensusResult R;
  R.Nmi = Census.nmi();
  R.Mdas = Census.totalMdas();
  R.Refs = Census.totalRefs();
  R.Ratio = Census.ratio();
  R.Bias = Census.biasBreakdown();
  R.Checksum = Cpu.Checksum;
  return R;
}

double NormalizedSeries::geomean() const { return geometricMean(Values); }

double mdabt::reporting::gainOver(uint64_t BaselineCycles,
                                  uint64_t ImprovedCycles) {
  if (BaselineCycles == 0)
    return 0.0;
  return (static_cast<double>(BaselineCycles) -
          static_cast<double>(ImprovedCycles)) /
         static_cast<double>(BaselineCycles);
}
