//===- reporting/Experiment.h - Experiment harness -------------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The harness every bench binary is built on: run one benchmark under
/// one policy configuration (building the train image when static
/// profiling needs it), run the MDA census, and render the paper's
/// normalized-runtime series.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_REPORTING_EXPERIMENT_H
#define MDABT_REPORTING_EXPERIMENT_H

#include "dbt/Engine.h"
#include "guest/MdaCensus.h"
#include "mda/PolicyFactory.h"
#include "workloads/SpecPrograms.h"

#include <functional>
#include <string>
#include <vector>

namespace mdabt {
namespace reporting {

/// Run \p Info's REF binary under \p Spec.  Builds and profiles the
/// TRAIN binary when the mechanism is static profiling.
dbt::RunResult runPolicy(const workloads::BenchmarkInfo &Info,
                         const mda::PolicySpec &Spec,
                         const workloads::ScaleConfig &Scale =
                             workloads::ScaleConfig(),
                         const dbt::EngineConfig &Config =
                             dbt::EngineConfig());

/// Like runPolicy, but a run that does not complete is fatal: the
/// failure reason is printed to stderr and the process exits nonzero.
/// Bench binaries use this so truncated runs can never publish figures.
dbt::RunResult runPolicyChecked(const workloads::BenchmarkInfo &Info,
                                const mda::PolicySpec &Spec,
                                const workloads::ScaleConfig &Scale =
                                    workloads::ScaleConfig(),
                                const dbt::EngineConfig &Config =
                                    dbt::EngineConfig());

/// Exit the process with an error message if \p R did not complete.
/// \p What names the run (benchmark/policy) for the diagnostic.
void checkRunCompleted(const dbt::RunResult &R, const std::string &What);

/// One cell of a (benchmark × policy) experiment matrix.  The default
/// runner is runPolicy(*Info, Spec, Scale, Config); a cell may instead
/// carry its own Run closure (ablations whose policy options are not
/// expressible as a PolicySpec, chaos campaigns carrying a FaultPlan).
struct MatrixCell {
  const workloads::BenchmarkInfo *Info = nullptr;
  mda::PolicySpec Spec;
  dbt::EngineConfig Config;
  /// Label for failure diagnostics; defaults to "<bench> under <policy>".
  std::string Label;
  /// Custom runner overriding the default runPolicy path.  Must be
  /// self-contained: it executes on a worker thread, concurrently with
  /// other cells.
  std::function<dbt::RunResult()> Run;

  std::string label() const;
};

/// Run every cell of \p Cells, fanned across \p Jobs worker threads
/// (0 = hardware concurrency, 1 = inline serial execution).  Each cell
/// is an independent deterministic simulation — an Engine owns all of
/// its mutable state — so the result vector, returned in matrix order,
/// is bit-identical for every job count; only wall-clock time changes.
std::vector<dbt::RunResult> runMatrix(const std::vector<MatrixCell> &Cells,
                                      const workloads::ScaleConfig &Scale =
                                          workloads::ScaleConfig(),
                                      unsigned Jobs = 0);

/// runMatrix, then checkRunCompleted on every cell in matrix order (so
/// the failing-cell diagnostic is deterministic too).  Bench binaries
/// use this: truncated runs can never publish figures.
std::vector<dbt::RunResult>
runPolicyMatrixChecked(const std::vector<MatrixCell> &Cells,
                       const workloads::ScaleConfig &Scale =
                           workloads::ScaleConfig(),
                       unsigned Jobs = 0);

/// Census of one image (interpreted to completion).
struct CensusResult {
  uint32_t Nmi = 0;
  uint64_t Mdas = 0;
  uint64_t Refs = 0;
  double Ratio = 0.0;
  guest::MdaCensus::BiasBreakdown Bias;
  uint64_t Checksum = 0;
};
CensusResult runCensus(const guest::GuestImage &Image);

/// Paper-style normalized series: Cycles(spec) / Cycles(baseline) per
/// benchmark, with a geometric-mean row (paper Fig. 10/16 format).
struct NormalizedSeries {
  std::string Label;
  std::vector<double> Values; ///< one per benchmark, baseline = 1.0
  double geomean() const;
};

/// Percent gain of B over A: (A - B) / A (positive = B faster), the
/// format of the paper's gain/loss figures (Fig. 11-14).
double gainOver(uint64_t BaselineCycles, uint64_t ImprovedCycles);

/// The exact byte content writeMetricsJson emits for \p R (exposed so
/// the determinism tests can compare serial and parallel artifacts
/// without touching the filesystem).
std::string metricsJsonString(const dbt::RunResult &R);

/// Serialize \p R's MetricsRegistry (plus run status and checksum) as a
/// JSON object to \p Path — the machine-readable run artifact written
/// next to the tables under results/ (schema in docs/TELEMETRY.md).
/// Returns false if the file cannot be written.
bool writeMetricsJson(const dbt::RunResult &R, const std::string &Path);

} // namespace reporting
} // namespace mdabt

#endif // MDABT_REPORTING_EXPERIMENT_H
