//===- obs/Metrics.cpp ----------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/Format.h"

using namespace mdabt;
using namespace mdabt::obs;

void Histogram::record(uint64_t Value) {
  ++Buckets[bucketOf(Value)];
  ++Count;
  Sum += Value;
  if (Value < Min)
    Min = Value;
  if (Value > Max)
    Max = Value;
}

unsigned Histogram::bucketOf(uint64_t V) {
  if (V == 0)
    return 0;
  unsigned B = 1;
  while (B < NumBuckets - 1 && V >= (1ULL << B))
    ++B;
  return B;
}

MetricsRegistry::Entry *MetricsRegistry::find(const std::string &Name,
                                              Kind K) {
  for (Entry &E : Entries)
    if (E.K == K && E.Name == Name)
      return &E;
  return nullptr;
}

const MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &Name, Kind K) const {
  for (const Entry &E : Entries)
    if (E.K == K && E.Name == Name)
      return &E;
  return nullptr;
}

void MetricsRegistry::addCounter(const std::string &Name, uint64_t Delta) {
  if (Entry *E = find(Name, Kind::Counter)) {
    E->Value += Delta;
    return;
  }
  Entries.push_back({Name, Kind::Counter, Delta, 0});
}

void MetricsRegistry::setGauge(const std::string &Name, uint64_t Value) {
  if (Entry *E = find(Name, Kind::Gauge)) {
    E->Value = Value;
    return;
  }
  Entries.push_back({Name, Kind::Gauge, Value, 0});
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  if (Entry *E = find(Name, Kind::Hist))
    return *Histograms[E->HistIndex];
  Histograms.push_back(std::make_unique<Histogram>());
  Entries.push_back({Name, Kind::Hist, 0, Histograms.size() - 1});
  return *Histograms.back();
}

uint64_t MetricsRegistry::counter(const std::string &Name) const {
  const Entry *E = find(Name, Kind::Counter);
  return E ? E->Value : 0;
}

uint64_t MetricsRegistry::gauge(const std::string &Name) const {
  const Entry *E = find(Name, Kind::Gauge);
  return E ? E->Value : 0;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &Name) const {
  const Entry *E = find(Name, Kind::Hist);
  return E ? Histograms[E->HistIndex].get() : nullptr;
}

std::string MetricsRegistry::toJson() const {
  std::string Out = "{";
  for (int Section = 0; Section != 3; ++Section) {
    Kind K = static_cast<Kind>(Section);
    const char *Label = Section == 0   ? "counters"
                        : Section == 1 ? "gauges"
                                       : "histograms";
    if (Section != 0)
      Out += ",";
    Out += format("\"%s\":{", Label);
    bool First = true;
    for (const Entry &E : Entries) {
      if (E.K != K)
        continue;
      if (!First)
        Out += ",";
      First = false;
      if (K != Kind::Hist) {
        Out += format("\"%s\":%llu", E.Name.c_str(),
                      static_cast<unsigned long long>(E.Value));
        continue;
      }
      const Histogram &H = *Histograms[E.HistIndex];
      Out += format("\"%s\":{\"count\":%llu,\"sum\":%llu,\"min\":%llu,"
                    "\"max\":%llu,\"buckets\":[",
                    E.Name.c_str(),
                    static_cast<unsigned long long>(H.count()),
                    static_cast<unsigned long long>(H.sum()),
                    static_cast<unsigned long long>(H.min()),
                    static_cast<unsigned long long>(H.max()));
      for (unsigned I = 0; I != Histogram::NumBuckets; ++I)
        Out += format(I == 0 ? "%llu" : ",%llu",
                      static_cast<unsigned long long>(H.bucket(I)));
      Out += "]}";
    }
    Out += "}";
  }
  Out += "}";
  return Out;
}

void MetricsRegistry::fillCounterBag(CounterBag &Bag) const {
  for (const Entry &E : Entries) {
    switch (E.K) {
    case Kind::Counter:
      Bag.add(E.Name, E.Value);
      break;
    case Kind::Gauge:
      Bag.set(E.Name, E.Value);
      break;
    case Kind::Hist:
      Bag.add(E.Name + ".count", Histograms[E.HistIndex]->count());
      break;
    }
  }
}
