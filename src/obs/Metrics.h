//===- obs/Metrics.h - Named counters, gauges and histograms ---*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: a registry of named
/// counters (monotonic event counts), gauges (point-in-time values such
/// as run.error or code-cache size) and histograms (log2-bucketed
/// distributions such as translated-block sizes).  The engine builds one
/// registry per run; it is the authoritative source behind both the JSON
/// artifact written for results/ and the legacy CounterBag that existing
/// benches and tests consume (fillCounterBag keeps the two views
/// consistent by construction).
///
/// Registration order is preserved, so serialized output is stable and
/// diffable across runs.  Hot paths should resolve a Histogram* handle
/// once and record through it, never look up by name per event.
///
/// Metric names and units are documented in docs/TELEMETRY.md.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_OBS_METRICS_H
#define MDABT_OBS_METRICS_H

#include "support/Stats.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mdabt {
namespace obs {

/// A log2-bucketed distribution of uint64 samples: bucket 0 holds value
/// 0, bucket i holds [2^(i-1), 2^i).  Values beyond the last bucket
/// clamp into it.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 17;

  void record(uint64_t Value);

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count == 0 ? 0 : Min; }
  uint64_t max() const { return Max; }
  uint64_t bucket(unsigned I) const {
    return I < NumBuckets ? Buckets[I] : 0;
  }
  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }

  /// Bucket index value \p V falls into.
  static unsigned bucketOf(uint64_t V);

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = ~0ULL;
  uint64_t Max = 0;
};

/// Named counters/gauges/histograms with stable registration order.
class MetricsRegistry {
public:
  /// Add \p Delta to counter \p Name, registering it at zero if new.
  void addCounter(const std::string &Name, uint64_t Delta = 1);

  /// Overwrite gauge \p Name with \p Value, registering it if new.
  void setGauge(const std::string &Name, uint64_t Value);

  /// The histogram named \p Name, registering it if new.  The returned
  /// reference stays valid for the registry's lifetime (histograms are
  /// stored behind stable storage): resolve once, record many times.
  Histogram &histogram(const std::string &Name);

  /// Value of counter \p Name (0 if absent).
  uint64_t counter(const std::string &Name) const;
  /// Value of gauge \p Name (0 if absent).
  uint64_t gauge(const std::string &Name) const;
  /// Histogram \p Name, or null if absent.
  const Histogram *findHistogram(const std::string &Name) const;

  /// Total registered metrics (all three kinds).
  size_t size() const { return Entries.size(); }

  /// Serialize the full registry as a JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  ///                          "buckets":[..]}}}
  /// Key order is registration order.
  std::string toJson() const;

  /// Export counters (as add) and gauges (as set) into \p Bag in
  /// registration order, preserving the legacy CounterBag view.
  /// Histograms are summarized as "<name>.count".
  void fillCounterBag(CounterBag &Bag) const;

private:
  enum class Kind : uint8_t { Counter, Gauge, Hist };
  struct Entry {
    std::string Name;
    Kind K;
    uint64_t Value = 0; ///< counter/gauge value
    size_t HistIndex = 0;
  };
  Entry *find(const std::string &Name, Kind K);
  const Entry *find(const std::string &Name, Kind K) const;

  std::vector<Entry> Entries;
  /// Deque-like stable storage for histograms (index via Entry).
  std::vector<std::unique_ptr<Histogram>> Histograms;
};

} // namespace obs
} // namespace mdabt

#endif // MDABT_OBS_METRICS_H
