//===- obs/TraceEvent.h - Typed engine trace events ------------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed event vocabulary of the observability layer: everything the
/// engine, the MDA policies, and the chaos injector can report about the
/// per-block lifecycle (interpretation heating, translation, chaining,
/// patching, rearrangement/retranslation, degradation, flushes).  Each
/// event carries a monotonic virtual-time stamp in modeled cycles, the
/// guest instruction PC and owning block PC involved, and two
/// kind-specific payload words.
///
/// The authoritative field-by-field schema (including the meaning of the
/// A/B payloads per kind and stability notes) lives in docs/TELEMETRY.md;
/// tools/check_telemetry_docs.sh fails CI if an event kind listed here is
/// missing from that document.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_OBS_TRACEEVENT_H
#define MDABT_OBS_TRACEEVENT_H

#include <cstdint>

namespace mdabt {
namespace obs {

/// X-macro over every trace event kind: X(EnumName, "wire.name").  The
/// wire name is what the JSONL sink writes and what docs/TELEMETRY.md
/// documents; tools/check_telemetry_docs.sh greps this list.
#define MDABT_TRACE_EVENT_KINDS(X)                                           \
  X(RunBegin, "run.begin")                                                   \
  X(RunEnd, "run.end")                                                       \
  X(PhaseTransition, "phase.transition")                                     \
  X(BlockInterpreted, "block.interpreted")                                   \
  X(BlockTranslated, "block.translated")                                     \
  X(BlockChained, "block.chained")                                           \
  X(BlockInvalidated, "block.invalidated")                                   \
  X(BlockRetranslated, "block.retranslated")                                 \
  X(TranslationFailed, "translate.failed")                                   \
  X(TrapTaken, "trap.taken")                                                 \
  X(TrapSpurious, "trap.spurious")                                           \
  X(StubEmitted, "stub.emitted")                                             \
  X(StubReverted, "stub.reverted")                                           \
  X(PatchApplied, "patch.applied")                                           \
  X(PatchRepaired, "patch.repaired")                                         \
  X(PatchRolledBack, "patch.rolled_back")                                    \
  X(LadderRung, "ladder.rung")                                               \
  X(CacheFlush, "cache.flush")                                               \
  X(PolicySiteMarked, "policy.site_marked")                                  \
  X(PolicyMultiVersion, "policy.multi_version")                              \
  X(ChaosInjected, "chaos.injected")                                         \
  X(AnalysisVerdict, "analysis.verdict")                                     \
  X(AnalysisSummary, "analysis.summary")                                     \
  X(VerifyPass, "verify.pass")                                               \
  X(VerifyFail, "verify.fail")                                               \
  X(DispatchIcFill, "dispatch.ic_fill")                                      \
  X(DispatchIcEvict, "dispatch.ic_evict")                                    \
  X(TraceFormed, "trace.formed")                                             \
  X(TraceDeopt, "trace.deopt")                                               \
  X(SmcStore, "smc.store")                                                   \
  X(SmcInvalidate, "smc.invalidate")                                         \
  X(SmcReanalysis, "smc.reanalysis")                                         \
  X(SmcVerdictRevoked, "smc.verdict_revoked")                                \
  X(SmcChurnPin, "smc.churn_pin")                                            \
  X(SmcEpisodeStop, "smc.episode_stop")                                      \
  X(BudgetExceeded, "budget.exceeded")                                       \
  X(CacheHit, "cache.hit")                                                   \
  X(CacheMiss, "cache.miss")                                                 \
  X(CacheEvict, "cache.evict")                                               \
  X(CacheLoad, "cache.load")                                                 \
  X(FusionApplied, "fusion.applied")                                         \
  X(FusionSummary, "fusion.summary")                                         \
  X(AotTranslated, "aot.translated")                                         \
  X(AotInstall, "aot.install")                                               \
  X(AotFallback, "aot.fallback")                                             \
  X(AotSummary, "aot.summary")

/// Every event the observability layer can record.
enum class TraceEventKind : uint8_t {
#define MDABT_TRACE_EVENT_ENUM(Name, Wire) Name,
  MDABT_TRACE_EVENT_KINDS(MDABT_TRACE_EVENT_ENUM)
#undef MDABT_TRACE_EVENT_ENUM
};

/// Number of distinct TraceEventKind values.
constexpr unsigned NumTraceEventKinds = 0
#define MDABT_TRACE_EVENT_COUNT(Name, Wire) +1
    MDABT_TRACE_EVENT_KINDS(MDABT_TRACE_EVENT_COUNT)
#undef MDABT_TRACE_EVENT_COUNT
    ;

/// Stable wire name of \p Kind (e.g. "block.translated").
const char *traceEventName(TraceEventKind Kind);

/// Parse a wire name back to its kind.  Returns false if \p Name is not
/// a known event name.
bool traceEventKindFromName(const char *Name, TraceEventKind &Out);

/// One recorded event.  Plain data: sinks may memcpy it, and the
/// ring-buffer sink stores it by value.
struct TraceEvent {
  TraceEventKind Kind = TraceEventKind::RunBegin;
  /// Monotonic virtual-time stamp: total modeled cycles at emission
  /// (native + interpreter + translator + monitor + chaining), i.e. the
  /// same clock RunResult::Cycles reports at end of run.
  uint64_t VirtualTime = 0;
  /// Guest instruction PC the event is about, or 0 when the event is
  /// not tied to one instruction.
  uint32_t GuestPc = 0;
  /// Entry PC of the guest block involved, or 0.
  uint32_t BlockPc = 0;
  /// Kind-specific payloads; per-kind meaning in docs/TELEMETRY.md.
  uint64_t A = 0;
  uint64_t B = 0;

  bool operator==(const TraceEvent &O) const {
    return Kind == O.Kind && VirtualTime == O.VirtualTime &&
           GuestPc == O.GuestPc && BlockPc == O.BlockPc && A == O.A &&
           B == O.B;
  }
};

} // namespace obs
} // namespace mdabt

#endif // MDABT_OBS_TRACEEVENT_H
