//===- obs/TraceSink.h - Trace event sinks and the Tracer ------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Where trace events go.  A TraceSink receives every TraceEvent an
/// instrumented component emits; three implementations cover the design
/// space:
///
///   NullTraceSink       discards everything (explicit "tracing off"
///                       object for call sites that want a sink either
///                       way);
///   RingBufferTraceSink keeps the last N events in a pre-allocated ring
///                       (flight-recorder style: no allocation after
///                       construction, wraparound drops the oldest);
///   JsonlTraceSink      appends one JSON object per event to a file
///                       (the format docs/TELEMETRY.md documents and
///                       examples/trace_inspect.cpp reads back).
///
/// Components never talk to a sink directly; they hold a Tracer, a
/// two-pointer handle bundling the sink with the virtual-time clock.  A
/// default-constructed Tracer is disabled and its emit() is a single
/// branch — the zero-overhead-when-disabled contract the engine's hot
/// paths rely on (tested by tests/obs_test.cpp with an allocation
/// counter).
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_OBS_TRACESINK_H
#define MDABT_OBS_TRACESINK_H

#include "obs/TraceEvent.h"

#include <cstdio>
#include <string>
#include <vector>

namespace mdabt {
namespace obs {

/// Receives trace events.  Implementations must tolerate events arriving
/// in any order of kinds but may assume VirtualTime is non-decreasing
/// within one run.
class TraceSink {
public:
  virtual ~TraceSink();

  /// Record one event.
  virtual void emit(const TraceEvent &Event) = 0;

  /// Force buffered output to its backing store (no-op by default).
  virtual void flush() {}
};

/// Discards every event.
class NullTraceSink final : public TraceSink {
public:
  void emit(const TraceEvent &) override {}
};

/// Flight recorder: keeps the most recent \p Capacity events in a ring
/// pre-allocated at construction.  Older events are overwritten and
/// counted in dropped().
class RingBufferTraceSink final : public TraceSink {
public:
  explicit RingBufferTraceSink(size_t Capacity);

  void emit(const TraceEvent &Event) override;

  /// Number of events currently retained (<= capacity).
  size_t size() const { return Count; }
  size_t capacity() const { return Ring.size(); }
  /// Events overwritten by wraparound.
  uint64_t dropped() const { return Dropped; }
  /// Total events ever emitted into this sink.
  uint64_t total() const { return Total; }

  /// The \p I-th retained event, oldest first (0 <= I < size()).
  const TraceEvent &at(size_t I) const;

  /// Retained events oldest-first, as a fresh vector (test/tool helper).
  std::vector<TraceEvent> snapshot() const;

private:
  std::vector<TraceEvent> Ring;
  size_t Head = 0; ///< next write position
  size_t Count = 0;
  uint64_t Dropped = 0;
  uint64_t Total = 0;
};

/// Appends events to \p Path as JSON Lines, one object per event:
///   {"ev":"block.translated","t":1234,"pc":4096,"block":4096,"a":9,"b":0}
/// The file is opened at construction (truncating) and closed at
/// destruction; ok() reports whether the open succeeded.
class JsonlTraceSink final : public TraceSink {
public:
  explicit JsonlTraceSink(const std::string &Path);
  ~JsonlTraceSink() override;

  void emit(const TraceEvent &Event) override;
  void flush() override;

  bool ok() const { return File != nullptr; }
  uint64_t written() const { return Written; }

private:
  std::FILE *File = nullptr;
  uint64_t Written = 0;
};

/// Serialize one event to its JSONL form (no trailing newline).
std::string traceEventToJson(const TraceEvent &Event);

/// Parse one JSONL line produced by traceEventToJson / JsonlTraceSink.
/// Returns false on malformed input or an unknown event name.
bool traceEventFromJson(const char *Line, TraceEvent &Out);

/// Load a whole JSONL trace file.  Returns false (and leaves \p Out in
/// an unspecified state) if the file cannot be read or any line fails to
/// parse; \p BadLine (optional) receives the 1-based offending line.
bool readJsonlTrace(const std::string &Path, std::vector<TraceEvent> &Out,
                    size_t *BadLine = nullptr);

/// Source of the monotonic virtual-time stamp: the engine implements
/// this over its cycle accounting.
class TraceClock {
public:
  virtual ~TraceClock();
  /// Current modeled cycle count.
  virtual uint64_t now() const = 0;
};

/// The handle instrumented components hold.  Disabled (default) means
/// emit() is one predictable branch; enabled means one virtual call per
/// event.  Copyable by value: two pointers.
class Tracer {
public:
  Tracer() = default;
  Tracer(TraceSink *Sink, const TraceClock *Clock)
      : Sink(Sink), Clock(Clock) {}

  bool enabled() const { return Sink != nullptr; }

  void emit(TraceEventKind Kind, uint32_t GuestPc, uint32_t BlockPc,
            uint64_t A = 0, uint64_t B = 0) const {
    if (!Sink)
      return;
    TraceEvent E;
    E.Kind = Kind;
    E.VirtualTime = Clock ? Clock->now() : 0;
    E.GuestPc = GuestPc;
    E.BlockPc = BlockPc;
    E.A = A;
    E.B = B;
    Sink->emit(E);
  }

private:
  TraceSink *Sink = nullptr;
  const TraceClock *Clock = nullptr;
};

} // namespace obs
} // namespace mdabt

#endif // MDABT_OBS_TRACESINK_H
