//===- obs/TraceSink.cpp --------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceSink.h"

#include "support/Format.h"

#include <cassert>
#include <cstring>

using namespace mdabt;
using namespace mdabt::obs;

const char *mdabt::obs::traceEventName(TraceEventKind Kind) {
  switch (Kind) {
#define MDABT_TRACE_EVENT_NAME(Name, Wire)                                   \
  case TraceEventKind::Name:                                                 \
    return Wire;
    MDABT_TRACE_EVENT_KINDS(MDABT_TRACE_EVENT_NAME)
#undef MDABT_TRACE_EVENT_NAME
  }
  return "unknown";
}

bool mdabt::obs::traceEventKindFromName(const char *Name,
                                        TraceEventKind &Out) {
#define MDABT_TRACE_EVENT_PARSE(EnumName, Wire)                              \
  if (std::strcmp(Name, Wire) == 0) {                                        \
    Out = TraceEventKind::EnumName;                                          \
    return true;                                                             \
  }
  MDABT_TRACE_EVENT_KINDS(MDABT_TRACE_EVENT_PARSE)
#undef MDABT_TRACE_EVENT_PARSE
  return false;
}

TraceSink::~TraceSink() = default;
TraceClock::~TraceClock() = default;

// -- RingBufferTraceSink ----------------------------------------------------

RingBufferTraceSink::RingBufferTraceSink(size_t Capacity)
    : Ring(Capacity == 0 ? 1 : Capacity) {}

void RingBufferTraceSink::emit(const TraceEvent &Event) {
  ++Total;
  if (Count == Ring.size())
    ++Dropped;
  else
    ++Count;
  Ring[Head] = Event;
  Head = (Head + 1) % Ring.size();
}

const TraceEvent &RingBufferTraceSink::at(size_t I) const {
  assert(I < Count && "ring index out of range");
  // Head points at the next write slot == the oldest retained event
  // once the ring has wrapped.
  size_t Oldest = Count == Ring.size() ? Head : 0;
  return Ring[(Oldest + I) % Ring.size()];
}

std::vector<TraceEvent> RingBufferTraceSink::snapshot() const {
  std::vector<TraceEvent> Out;
  Out.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Out.push_back(at(I));
  return Out;
}

// -- JSONL ------------------------------------------------------------------

std::string mdabt::obs::traceEventToJson(const TraceEvent &E) {
  // Field names are part of the telemetry schema (docs/TELEMETRY.md);
  // event names contain no characters needing JSON escaping.
  return format("{\"ev\":\"%s\",\"t\":%llu,\"pc\":%u,\"block\":%u,"
                "\"a\":%llu,\"b\":%llu}",
                traceEventName(E.Kind),
                static_cast<unsigned long long>(E.VirtualTime), E.GuestPc,
                E.BlockPc, static_cast<unsigned long long>(E.A),
                static_cast<unsigned long long>(E.B));
}

namespace {

/// Scan for "\"Key\":" in \p Line and parse the unsigned integer that
/// follows.  Tolerates any key order but not duplicate keys.
bool parseField(const char *Line, const char *Key, uint64_t &Out) {
  std::string Needle = std::string("\"") + Key + "\":";
  const char *P = std::strstr(Line, Needle.c_str());
  if (!P)
    return false;
  P += Needle.size();
  if (*P < '0' || *P > '9')
    return false;
  uint64_t V = 0;
  for (; *P >= '0' && *P <= '9'; ++P)
    V = V * 10 + static_cast<uint64_t>(*P - '0');
  Out = V;
  return true;
}

} // namespace

bool mdabt::obs::traceEventFromJson(const char *Line, TraceEvent &Out) {
  const char *P = std::strstr(Line, "\"ev\":\"");
  if (!P)
    return false;
  P += 6;
  const char *End = std::strchr(P, '"');
  if (!End || End - P >= 64)
    return false;
  char Name[64];
  std::memcpy(Name, P, static_cast<size_t>(End - P));
  Name[End - P] = '\0';
  TraceEvent E;
  if (!traceEventKindFromName(Name, E.Kind))
    return false;
  uint64_t T = 0, Pc = 0, Block = 0, A = 0, B = 0;
  if (!parseField(Line, "t", T) || !parseField(Line, "pc", Pc) ||
      !parseField(Line, "block", Block) || !parseField(Line, "a", A) ||
      !parseField(Line, "b", B))
    return false;
  E.VirtualTime = T;
  E.GuestPc = static_cast<uint32_t>(Pc);
  E.BlockPc = static_cast<uint32_t>(Block);
  E.A = A;
  E.B = B;
  Out = E;
  return true;
}

bool mdabt::obs::readJsonlTrace(const std::string &Path,
                                std::vector<TraceEvent> &Out,
                                size_t *BadLine) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F) {
    if (BadLine)
      *BadLine = 0;
    return false;
  }
  Out.clear();
  char Line[512];
  size_t LineNo = 0;
  bool Ok = true;
  while (std::fgets(Line, sizeof(Line), F)) {
    ++LineNo;
    // Skip blank lines (a trailing newline at EOF is not an error).
    const char *P = Line;
    while (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r')
      ++P;
    if (*P == '\0')
      continue;
    TraceEvent E;
    if (!traceEventFromJson(Line, E)) {
      if (BadLine)
        *BadLine = LineNo;
      Ok = false;
      break;
    }
    Out.push_back(E);
  }
  std::fclose(F);
  return Ok;
}

JsonlTraceSink::JsonlTraceSink(const std::string &Path)
    : File(std::fopen(Path.c_str(), "w")) {}

JsonlTraceSink::~JsonlTraceSink() {
  if (File)
    std::fclose(File);
}

void JsonlTraceSink::emit(const TraceEvent &Event) {
  if (!File)
    return;
  std::string Json = traceEventToJson(Event);
  std::fwrite(Json.data(), 1, Json.size(), File);
  std::fputc('\n', File);
  ++Written;
}

void JsonlTraceSink::flush() {
  if (File)
    std::fflush(File);
}
