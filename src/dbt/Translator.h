//===- dbt/Translator.h - GX86 -> HAlpha block translator ------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates one guest basic block into host code at the tail of the
/// code cache.  The per-memory-operation strategy (normal op / inline
/// MDA sequence / multi-version code) is supplied by the active policy
/// through a plan callback, which is the paper's entire design space.
///
/// Also emits the out-of-line MDA stubs the misalignment exception
/// handler patches in (paper Fig. 5): the stub re-performs the faulting
/// access with the unaligned-access toolkit and branches back to the
/// instruction after the patch site.
///
/// Register conventions are documented in host/HostISA.h.  Guest state
/// lives in host registers across blocks; compare-and-branch pairs are
/// fused (the GX86 structural rule guarantees adjacency).
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_TRANSLATOR_H
#define MDABT_DBT_TRANSLATOR_H

#include "dbt/GuestBlock.h"
#include "dbt/Translation.h"
#include "host/CodeSpace.h"
#include "host/HostEncoding.h"

#include <functional>

namespace mdabt {
namespace dbt {

/// Host register holding guest GPR \p Reg.
inline uint8_t hostGpr(unsigned Reg) {
  return static_cast<uint8_t>(host::RegGprBase + Reg);
}

/// Host register holding guest Q register \p Reg.
inline uint8_t hostQ(unsigned Reg) {
  return static_cast<uint8_t>(host::RegQBase + Reg);
}

/// The block translator.
class Translator {
public:
  /// Chooses the plan for the memory instruction at a guest PC.
  using PlanFn =
      std::function<MemPlan(uint32_t InstPc, const guest::GuestInst &)>;

  explicit Translator(host::CodeSpace &Code) : Code(Code) {}

  /// Translate \p Block at the arena tail.  \p Generation tags
  /// retranslations (0 for the first translation of a block).
  Translation translate(const GuestBlock &Block, const PlanFn &Plan,
                        uint32_t Generation = 0,
                        const TranslationOpts &Opts = TranslationOpts());

  /// Re-emit \p Blocks (>= 2, head first) as one straight-line
  /// superblock at the arena tail (EngineConfig::Superblocks).  On-trace
  /// control flow falls through between constituents; off-trace edges
  /// branch to shared side-exit stubs (one chainable Srv Exit per unique
  /// target).  \p Plan must reproduce each site's original MDA treatment
  /// (the engine replays Translation::PlanByPc), so the trace is
  /// architecturally identical to running its constituents.
  Translation translateTrace(const std::vector<GuestBlock> &Blocks,
                             const PlanFn &Plan, uint32_t Generation,
                             const TranslationOpts &Opts);

  /// An out-of-line MDA stub emitted by the exception handler.
  struct StubInfo {
    uint32_t Entry = 0;
    uint32_t End = 0;
  };

  /// Emit the MDA stub for the faulting memory instruction \p Faulting
  /// located at \p FaultWord, ending with a branch back to
  /// FaultWord + 1.  Does not patch the fault site itself.
  StubInfo emitStub(const host::HostInst &Faulting, uint32_t FaultWord);

  /// Emit the *adaptive* MDA stub of paper Fig. 8 (right side): before
  /// the MDA sequence, instructions count consecutive executions at an
  /// aligned address (in the runtime cell \p CounterAddr); once the
  /// count reaches \p Threshold the stub posts FaultWord + 1 into the
  /// runtime mailbox at \p MailboxAddr, asking the monitor to patch the
  /// original memory instruction back in.  This is the "truly adaptive"
  /// method the paper analyzes (and concludes is rarely worth its ~10
  /// instructions of bookkeeping — reproduced by the ablation bench).
  StubInfo emitAdaptiveStub(const host::HostInst &Faulting,
                            uint32_t FaultWord, uint32_t CounterAddr,
                            uint32_t MailboxAddr, uint32_t Threshold);

  /// The branch word patchToStub writes (exposed so the engine can
  /// verify the patch actually landed before resuming execution).
  static uint32_t stubBranchWord(uint32_t FaultWord, uint32_t StubEntry);

  /// Patch the faulting word into a branch to \p StubEntry.
  void patchToStub(uint32_t FaultWord, uint32_t StubEntry);

private:
  host::CodeSpace &Code;
};

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_TRANSLATOR_H
