//===- dbt/Engine.h - The CrossBridge execution engine ---------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-phase DBT engine (modeled on DigitalBridge, paper Fig. 9):
///
///   - dynamic monitor: dispatches guest PCs to translated blocks, heats
///     cold blocks by interpreting them (phase 1) while the active policy
///     observes the access stream, translates hot blocks (phase 2), and
///     chains direct block exits;
///   - misalignment exception handling: traps raised by the host machine
///     are routed to the active policy, which either emulates-and-resumes
///     or patches in an MDA stub (paper Fig. 5), optionally superseding
///     the block (code rearrangement, Fig. 6 / retranslation, Fig. 7);
///   - full cycle accounting against the cost model.
///
/// One Engine instance performs one run of one guest image under one
/// policy and returns the RunResult used by every experiment.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_ENGINE_H
#define MDABT_DBT_ENGINE_H

#include "dbt/Policy.h"
#include "guest/GuestCPU.h"
#include "guest/GuestImage.h"
#include "host/CostModel.h"
#include "obs/Metrics.h"
#include "obs/TraceSink.h"
#include "support/Stats.h"

#include <cstdint>

namespace mdabt {
namespace chaos {
struct FaultPlan;
} // namespace chaos

namespace dbt {

class TranslationService;

/// Why a run did not complete (RunError::None = clean completion).
/// Every abnormal outcome is typed so that experiments can never
/// silently publish figures from a truncated run.
enum class RunError : uint8_t {
  None = 0,
  /// The monitor-step or host-instruction guard tripped.
  MonitorStepLimit,
  /// The trap-storm watchdog exhausted its escalation budget: a
  /// misalignment-trap livelock could not be contained.
  TrapStorm,
  /// Code-cache patching failed beyond the configured tolerance, or a
  /// torn word could not be repaired.
  PatchFailed,
  /// Block translation failed beyond the configured tolerance.
  TranslationFailed,
  /// Code-cache flushes exceeded the configured tolerance (flush
  /// thrash under CodeCacheLimitWords pressure).
  CacheThrash,
  /// The host code-cache verifier (EngineConfig::Verify) found a
  /// structural invariant violation: the cache holds malformed code.
  VerifyFailed,
  /// The run exceeded its translation-count budget
  /// (BudgetConfig::MaxTranslations): a hostile guest forcing
  /// translation work without bound.
  BudgetTranslations,
  /// The run exceeded its cumulative emitted-code budget
  /// (BudgetConfig::MaxCodeBytes): unbounded code-cache growth.
  BudgetCodeBytes,
  /// Retranslation churn (policy supersedes + self-modifying-code
  /// invalidations) exceeded BudgetConfig::MaxChurn.
  BudgetChurn,
};

/// Number of RunError enumerators (for error-indexed tables).
inline constexpr size_t NumRunErrors = 10;

/// Stable human-readable name for a RunError.
const char *runErrorName(RunError E);

/// Ahead-of-time pre-translation mode (`EngineConfig::Aot`, DESIGN.md
/// section 16).  Architectural results are byte-identical across all
/// three modes; only modeled cycles and code layout change.
enum class AotMode : uint8_t {
  /// Pure two-phase DBT: interpret to heat, translate hot blocks.
  Off,
  /// Statically translate *and install* every proven-reachable block
  /// before the first guest instruction; dynamic fallback only for
  /// code behind indirect-jump frontiers.
  Full,
  /// Statically translate every proven-reachable block up front, but
  /// install lazily at first dispatch — no interpretation heating for
  /// covered code, no arena cost for code the run never reaches.
  Hybrid,
};

/// Stable human-readable name for an AotMode.
const char *aotModeName(AotMode M);

/// Tolerances of the graceful-degradation machinery.  Defaults are
/// permissive: the engine degrades (rearrange -> retranslate ->
/// interpret-only) rather than aborting; the ceilings exist so that an
/// operator can bound how much misbehaviour a run may absorb before it
/// is reported as a typed failure instead.
struct HardeningConfig {
  /// Consecutive no-progress traps at one host word before the
  /// degradation ladder engages (the trap-storm watchdog).
  uint32_t WatchdogTrapK = 8;
  /// Watchdog escalations tolerated before the run aborts (TrapStorm).
  uint32_t MaxWatchdogTrips = 256;
  /// Failed translation attempts for one block before it is pinned
  /// interpret-only.
  uint32_t TranslateRetryLimit = 4;
  /// Re-write attempts for a dropped/torn code-cache patch before the
  /// previous content is restored and the patch abandoned.
  uint32_t PatchRepairLimit = 3;
  /// Abandoned patches tolerated before the run aborts (PatchFailed).
  /// 0 = unlimited.
  uint32_t PatchFailureLimit = 0;
  /// Failed translations tolerated before the run aborts
  /// (TranslationFailed).  0 = unlimited.
  uint32_t TranslationFailureLimit = 0;
  /// Code-cache flushes tolerated before the run aborts (CacheThrash).
  /// 0 = unlimited.
  uint32_t FlushLimit = 0;
  /// Minimum monitor steps between spurious (injected) flushes; closer
  /// requests are suppressed as flush-storm backoff.
  uint32_t FlushStormBackoffSteps = 8;
};

/// Resource-governance ceilings for one run: hard bounds on how much
/// translation-side work a (possibly hostile) guest may demand.  Every
/// ceiling defaults to 0 = unlimited, so well-behaved experiments are
/// unaffected; when a ceiling trips, the run aborts with the matching
/// typed RunError instead of growing without bound.
struct BudgetConfig {
  /// Translations (blocks + superblocks) per run.
  uint64_t MaxTranslations = 0;
  /// Cumulative host-code bytes *emitted* over the run — monotone even
  /// across cache flushes, so a flush-and-refill churn loop cannot hide
  /// under a bounded arena.
  uint64_t MaxCodeBytes = 0;
  /// Retranslation churn: policy supersedes plus self-modifying-code
  /// invalidations.
  uint64_t MaxChurn = 0;
  /// Degradation (not abort): SMC invalidations of one block before it
  /// is pinned interpret-only, joining the ladder's rung-3 containment.
  /// 0 = never pin.
  uint32_t SmcChurnPinLimit = 0;
};

/// Engine knobs shared by all experiments.
struct EngineConfig {
  host::CostModel Cost;
  /// Patch direct block exits into branches once the target is
  /// translated.
  bool EnableChaining = true;
  /// Code-cache capacity in host words; exceeding it triggers a full
  /// flush at the next monitor dispatch.  0 = unlimited.
  uint32_t CodeCacheLimitWords = 0;
  /// Dynamo-style invalidation (paper section IV-C: "Dynamo flush the
  /// entire code cache while our BT invalidates translated code at
  /// block granularity"): a policy-requested supersede flushes
  /// everything instead of retranslating one block.
  bool FlushOnSupersede = false;
  /// Abort guard: maximum monitor iterations.
  uint64_t MaxMonitorSteps = 1ULL << 32;
  /// Graceful-degradation tolerances.
  HardeningConfig Hardening;
  /// Resource-governance ceilings (hostile-guest containment).
  BudgetConfig Budget;
  /// Optional deterministic fault-injection campaign (chaos testing).
  /// The plan must outlive the engine.  Null = no injection.
  const chaos::FaultPlan *Chaos = nullptr;
  /// Optional structured trace sink (see docs/TELEMETRY.md).  Null =
  /// tracing disabled; every emission point reduces to one branch.  The
  /// sink must outlive the engine and receives every lifecycle event
  /// (translation, chaining, traps, patching, degradation, flushes)
  /// stamped with the run's monotonic virtual time in modeled cycles.
  obs::TraceSink *Trace = nullptr;
  /// Run the static alignment analysis over the guest image before
  /// execution and feed its verdicts into translation: provably-aligned
  /// memory ops skip all MDA machinery (no trap exposure), provably-
  /// misaligned ops get the MDA sequence inlined at first translation,
  /// and only unknown ops flow through the policy as before.  Analysis
  /// cycles are not charged to the run (modeled as offline, like static
  /// profiling).
  bool Analysis = false;
  /// Run the host code-cache structural verifier after every mutation
  /// of installed code (translate, patch, revert, chain, flush) and at
  /// the end of the run.  A violation aborts with VerifyFailed.
  bool Verify = false;

  // -- hot-dispatch mechanisms (bench/ablation_dispatch toggles each
  // independently; architectural results — checksum, memory hash, final
  // CPU state — are bit-identical for every combination, only modeled
  // cycles and host-code layout change) ------------------------------

  /// Replace the monitor's per-dispatch block-map lookup with an
  /// open-addressed PC -> host-entry hash table (DispatchTable): a hit
  /// costs CostModel::DispatchTableHitCycles instead of
  /// MonitorDispatchCycles; a miss falls into translate-on-miss.
  bool HashDispatch = false;
  /// Emit a small tagged inline cache at every indirect block exit
  /// (Ret/JmpR): recently seen targets are compared against the live
  /// exit PC in translated code and hit without returning to the
  /// monitor.  Misses fall back to the monitor, which fills a way.
  bool InlineCaches = false;
  /// Ways per indirect-exit inline cache (clamped to 1..4).
  uint32_t IcWays = 2;
  /// Form superblocks (straight-line traces across chained direct block
  /// exits) when a backward chain marks a loop head as hot.  The trace
  /// supersedes the head block; de-optimization (trace invalidation)
  /// falls back to the still-installed constituent blocks.
  bool Superblocks = false;
  /// Backward-chain events into one head before a trace is attempted.
  uint32_t SuperblockThreshold = 1;
  /// Maximum constituent blocks per superblock.
  uint32_t SuperblockMaxBlocks = 8;
  /// Formation attempts per head PC (bounds retry after de-opt).
  uint32_t TraceFormationLimit = 8;

  /// Table-driven peephole fusion (dbt/FusionRules.h): rewrite short
  /// windows of guest instructions — mov-op chains, compare-branch
  /// against zero, negative-immediate adds, load-op-store, and runs of
  /// memory ops sharing one indexed address — into fused host sequences
  /// with fewer words.  Architecturally invisible; composes with every
  /// MDA policy and dispatch mechanism (fused sites keep their own
  /// MemPlan, fault-site and SMC-resume metadata).
  bool Fusion = false;
  /// Enabled-rule mask when Fusion is set (bit i enables FusionRuleId
  /// i; masked to the table width).  All rules by default.
  uint32_t FusionMask = 0xffffffffu;

  /// Optional process-wide translation service (docs/SERVING.md).  When
  /// set, every translation is first looked up in the service's shared
  /// cache by content key; a hit installs the cached host words instead
  /// of translating (priced CostModel::CacheInstallCyclesPerInst), a
  /// miss translates and publishes.  Architectural results are
  /// byte-identical with or without a service; only modeled translation
  /// cycles change.  The service must outlive the engine and may be
  /// shared by concurrently running engines.  Null = isolated run.
  TranslationService *Service = nullptr;

  /// Static AOT pre-translation (`dbt/AotTranslator.h`, DESIGN.md
  /// section 16).  When not Off, the engine recovers the statically
  /// provable CFG of the guest image (`analysis/CfgRecovery.h`), runs
  /// the alignment analysis (implied even when `Analysis` is false, so
  /// MemPlans come from congruence verdicts), and pre-translates every
  /// proven-reachable block before the first guest instruction —
  /// publishing into the shared cache when a Service is attached.  The
  /// HostVerifier sweeps the pre-populated code cache before execution
  /// starts (even when `Verify` is false) and enforces that every
  /// AOT-installed translation stays inside the recovered reachable
  /// set.  Dynamic two-phase translation remains the fallback for code
  /// discovered through indirect-jump frontiers.
  AotMode Aot = AotMode::Off;
};

/// Everything an experiment wants to know about one run.
struct RunResult {
  /// Total modeled cycles (native + interpreter + translator + monitor
  /// + traps); *the* runtime metric of the paper's figures.
  uint64_t Cycles = 0;
  /// The guest program's observable output.
  uint64_t Checksum = 0;
  /// FNV-1a hash of final guest memory (differential testing).
  uint64_t MemoryHash = 0;
  /// Final architectural state.
  guest::GuestCPU FinalCpu;
  /// Event counters (translations, patches, traps, cache misses, cycle
  /// breakdown...).  Derived from Metrics (fillCounterBag) so the two
  /// views can never disagree; kept for existing benches and tests.
  CounterBag Counters;
  /// The authoritative per-run metrics: counters, gauges and histograms
  /// with stable registration order; serializes to JSON for results/
  /// via reporting::writeMetricsJson (schema in docs/TELEMETRY.md).
  obs::MetricsRegistry Metrics;
  /// Why the run ended; RunError::None means it ran to completion and
  /// Checksum/MemoryHash are trustworthy.
  RunError Error = RunError::MonitorStepLimit;

  /// True if the guest program ran to completion.
  bool completed() const { return Error == RunError::None; }
};

/// Runs a guest image to completion under an MDA policy.
class Engine {
public:
  Engine(const guest::GuestImage &Image, MdaPolicy &Policy,
         EngineConfig Config = EngineConfig());

  /// Execute the program.  May be called once per Engine.
  RunResult run();

private:
  const guest::GuestImage &Image;
  MdaPolicy &Policy;
  EngineConfig Config;
  bool Used = false;
};

/// FNV-1a over a byte range (exposed for tests).
uint64_t fnv1a(const uint8_t *Bytes, size_t Size);

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_ENGINE_H
