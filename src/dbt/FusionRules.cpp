//===- dbt/FusionRules.cpp ------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "dbt/FusionRules.h"

#include <cassert>

using namespace mdabt;
using namespace mdabt::dbt;
using guest::GuestInst;
using guest::Opcode;

namespace {

/// Must match Translator.cpp's MaxMemDisp: the largest displacement the
/// translator leaves on a memory operand (so Disp + 7 still fits disp16
/// for MDA sequences and exception-handler stubs).  A fused member's
/// displacement is emitted as-is, so the matcher enforces the same
/// bound.
constexpr int32_t MaxMemDisp = 32767 - 8;

/// Host words HostAssembler::materialize32 emits for \p V (mirrors its
/// lda / ldah+lda / +zextl staging; the cost model for dropped
/// immediate materializations).
unsigned materialize32Words(uint32_t V) {
  if (V <= 0x7fff)
    return 1;
  int32_t Lo = static_cast<int16_t>(V & 0xffff);
  int32_t Hi = static_cast<int32_t>(V - static_cast<uint32_t>(Lo)) >> 16;
  unsigned N = Lo != 0 ? 2u : 1u;
  int64_t Sum = static_cast<int64_t>(Hi) * 65536 + Lo;
  if (Sum != static_cast<int64_t>(static_cast<uint64_t>(V)))
    ++N;
  return N;
}

/// True when the translator needs address arithmetic beyond the single
/// (base, disp16) memory operand: an indexed mode or an out-of-range
/// displacement.  Fusing the *second* computation away is only
/// profitable then.
bool nontrivialAddress(const GuestInst &I) {
  return I.HasIndex || I.Disp < -32768 || I.Disp > MaxMemDisp;
}

/// Host words of the address arithmetic computeAddress emits for \p I.
unsigned addrSetupWords(const GuestInst &I) {
  unsigned N = 0;
  if (I.HasIndex)
    N += I.Scale != 0 ? 2 : 1;
  if (I.Disp < -32768 || I.Disp > MaxMemDisp)
    N += materialize32Words(static_cast<uint32_t>(I.Disp)) + 1;
  return N;
}

// --- Operand-constraint predicates (the data table points at these) ---

/// MovRR d,s ; alu d,r2.  The fused op reads r2's *pre-window* value,
/// the baseline reads it post-mov — identical unless r2 is d itself.
/// (s == d is fine: the mov is then a no-op in both renderings.)
bool movOpConstraint(const GuestInst *W, size_t N) {
  assert(N == 2);
  (void)N;
  return W[1].Reg1 == W[0].Reg1 && W[1].Reg2 != W[0].Reg1;
}

/// MovRR d,s ; aluI d,imm.  The literal form needs imm in [0, 255].
bool movOpIConstraint(const GuestInst *W, size_t N) {
  assert(N == 2);
  (void)N;
  return W[1].Reg1 == W[0].Reg1 && W[1].Imm >= 0 && W[1].Imm <= 255;
}

/// CmpI r,0 ; Jcc.  Guest GPRs live zero-extended in 64-bit host
/// registers, so only the equality conditions reduce to a direct
/// branch-on-register test; signed/unsigned orderings do not (the
/// host beq/blt family tests the full 64-bit value).
bool cmpBr0Constraint(const GuestInst *W, size_t N) {
  assert(N == 2);
  (void)N;
  return W[0].Imm == 0 &&
         (W[1].CC == guest::Cond::Eq || W[1].CC == guest::Cond::Ne);
}

/// AddI/SubI r,imm with imm in [-255, -1]: 32-bit wrap makes it the
/// opposite operation on -imm, which fits the literal form.
bool immNegConstraint(const GuestInst *W, size_t N) {
  assert(N == 1);
  (void)N;
  return W[0].Imm >= -255 && W[0].Imm <= -1;
}

/// Identical addressing operands (base, index mode, displacement).
bool sameMemOperand(const GuestInst &A, const GuestInst &B) {
  return A.Reg2 == B.Reg2 && A.HasIndex == B.HasIndex &&
         (!A.HasIndex ||
          (A.IndexReg == B.IndexReg && A.Scale == B.Scale)) &&
         A.Disp == B.Disp;
}

/// Ld r,[A] ; alu r ; St r,[A].  The shared address lives in RegScratch0
/// (when nontrivial), so the middle op must not clobber it (the slot
/// set excludes Sar/SarI) and must not rewrite the base or index
/// registers — which it cannot, since it only writes r, provided r is
/// neither of them.
bool ldOpStConstraint(const GuestInst *W, size_t N) {
  assert(N == 3);
  (void)N;
  if (guest::accessSize(W[0].Op) != guest::accessSize(W[2].Op))
    return false;
  if (!sameMemOperand(W[0], W[2]) || W[2].Reg1 != W[0].Reg1)
    return false;
  if (W[1].Reg1 != W[0].Reg1)
    return false;
  if (W[0].Reg1 == W[0].Reg2 ||
      (W[0].HasIndex && W[0].Reg1 == W[0].IndexReg))
    return false;
  return nontrivialAddress(W[0]);
}

/// A run of indexed memory ops sharing (base, index, scale).  Valid for
/// any N >= 1 prefix of a longer run; the matcher grows the window
/// greedily and requires N >= 2 to fire.  An interior (non-last) load
/// must not write the base or index register, or later members would
/// see a stale shared address.
bool sharedAddrConstraint(const GuestInst *W, size_t N) {
  const GuestInst &H = W[0];
  if (!H.HasIndex)
    return false;
  for (size_t K = 0; K != N; ++K) {
    const GuestInst &I = W[K];
    if (!I.HasIndex || I.Reg2 != H.Reg2 || I.IndexReg != H.IndexReg ||
        I.Scale != H.Scale)
      return false;
    if (I.Disp < -32768 || I.Disp > MaxMemDisp)
      return false;
    bool WritesGpr = guest::isLoad(I.Op) && I.Op != Opcode::Ldq;
    if (K + 1 != N && WritesGpr &&
        (I.Reg1 == H.Reg2 || I.Reg1 == H.IndexReg))
      return false;
  }
  return true;
}

const FusionRule RuleTable[NumFusionRules] = {
    {FusionRuleId::MovOp,
     "mov_op",
     2,
     false,
     2,
     {{1, {Opcode::MovRR}},
      {6,
       {Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or, Opcode::Xor,
        Opcode::Mul}},
      {}},
     movOpConstraint,
     1},
    {FusionRuleId::MovOpI,
     "mov_opi",
     2,
     false,
     2,
     {{1, {Opcode::MovRR}},
      {6,
       {Opcode::AddI, Opcode::SubI, Opcode::AndI, Opcode::OrI,
        Opcode::XorI, Opcode::MulI}},
      {}},
     movOpIConstraint,
     1},
    {FusionRuleId::CmpBr0,
     "cmp_br0",
     2,
     false,
     2,
     {{1, {Opcode::CmpI}}, {1, {Opcode::Jcc}}, {}},
     cmpBr0Constraint,
     1},
    {FusionRuleId::ImmNeg,
     "imm_neg",
     1,
     false,
     1,
     {{2, {Opcode::AddI, Opcode::SubI}}, {}, {}},
     immNegConstraint,
     3},
    {FusionRuleId::LdOpSt,
     "ld_op_st",
     3,
     false,
     3,
     {{3, {Opcode::Ldb, Opcode::Ldw, Opcode::Ldl}},
      {14,
       {Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or, Opcode::Xor,
        Opcode::Mul, Opcode::AddI, Opcode::SubI, Opcode::AndI,
        Opcode::OrI, Opcode::XorI, Opcode::MulI, Opcode::ShlI,
        Opcode::ShrI}},
      {3, {Opcode::Stb, Opcode::Stw, Opcode::Stl}}},
     ldOpStConstraint,
     1},
    {FusionRuleId::SharedAddr,
     "shared_addr",
     2,
     true,
     16,
     {{8,
       {Opcode::Ldb, Opcode::Ldw, Opcode::Ldl, Opcode::Ldq, Opcode::Stb,
        Opcode::Stw, Opcode::Stl, Opcode::Stq}},
      {},
      {}},
     sharedAddrConstraint,
     1},
};

bool planOk(MemPlan P) {
  return P == MemPlan::Normal || P == MemPlan::Elide;
}

/// Indices (relative to the window start) of the memory operations a
/// fixed-length match covers; their plans gate the match.
void memberMemIndices(const FusionRule &R, size_t Out[3], size_t &N) {
  N = 0;
  if (R.Id == FusionRuleId::LdOpSt) {
    Out[N++] = 0;
    Out[N++] = 2;
  }
}

} // namespace

const char *mdabt::dbt::fusionRuleName(FusionRuleId Id) {
  return RuleTable[static_cast<unsigned>(Id)].Name;
}

bool mdabt::dbt::slotAccepts(const FusionSlot &S, Opcode Op) {
  for (uint8_t K = 0; K != S.NumOps; ++K)
    if (S.Ops[K] == Op)
      return true;
  return false;
}

const FusionRule *mdabt::dbt::fusionRuleTable() { return RuleTable; }

bool FusionMatcher::match(const GuestBlock &Block, size_t Idx, size_t To,
                          const std::function<MemPlan(size_t)> &PlanAt,
                          FusionMatch &Out) const {
  const GuestInst *Insts = Block.Insts.data();
  for (unsigned RI = 0; RI != NumFusionRules; ++RI) {
    const FusionRule &R = RuleTable[RI];
    if ((Mask & fusionRuleBit(R.Id)) == 0)
      continue;

    if (R.Repeating) {
      // Greedy growth: the window is valid for every prefix (the
      // constraint is prefix-closed), so stop at the first failure.
      size_t K = 0;
      while (Idx + K < To && K < R.MaxLen) {
        if (!slotAccepts(R.Slots[0], Insts[Idx + K].Op))
          break;
        if (!R.Constraint(Insts + Idx, K + 1))
          break;
        if (!planOk(PlanAt(Idx + K)))
          break;
        ++K;
      }
      if (K < R.Len)
        continue;
      Out.Rule = R.Id;
      Out.Length = K;
      Out.SavedWords = static_cast<uint32_t>(K - 1) *
                       (Insts[Idx].Scale != 0 ? 2u : 1u);
      return true;
    }

    if (To - Idx < R.Len)
      continue;
    bool Accepts = true;
    for (uint8_t S = 0; S != R.Len; ++S)
      if (!slotAccepts(R.Slots[S], Insts[Idx + S].Op)) {
        Accepts = false;
        break;
      }
    if (!Accepts || !R.Constraint(Insts + Idx, R.Len))
      continue;
    size_t MemIdx[3];
    size_t NMem;
    memberMemIndices(R, MemIdx, NMem);
    bool PlansOk = true;
    for (size_t K = 0; K != NMem; ++K)
      if (!planOk(PlanAt(Idx + MemIdx[K]))) {
        PlansOk = false;
        break;
      }
    if (!PlansOk)
      continue;
    Out.Rule = R.Id;
    Out.Length = R.Len;
    switch (R.Id) {
    case FusionRuleId::ImmNeg:
      Out.SavedWords =
          materialize32Words(static_cast<uint32_t>(Insts[Idx].Imm));
      break;
    case FusionRuleId::LdOpSt:
      Out.SavedWords = addrSetupWords(Insts[Idx]);
      break;
    default:
      Out.SavedWords = R.CostDelta;
      break;
    }
    return true;
  }
  return false;
}
