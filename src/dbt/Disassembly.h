//===- dbt/Disassembly.h - Translation dumps for humans --------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a translated block as annotated host assembly: trapping
/// memory words are marked, patch sites are flagged, and exit sites are
/// labelled with their guest targets.  Used by the census/debug tooling
/// and handy in tests when a translation misbehaves.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_DISASSEMBLY_H
#define MDABT_DBT_DISASSEMBLY_H

#include "dbt/Translation.h"
#include "host/CodeSpace.h"

#include <string>

namespace mdabt {
namespace dbt {

/// Render the host code of \p T (word range [EntryWord, EndWord)) with
/// annotations from the translation record.
std::string dumpTranslation(const Translation &T,
                            const host::CodeSpace &Code);

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_DISASSEMBLY_H
