//===- dbt/DispatchTable.h - Open-addressed PC dispatch table --*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hash-table monitor dispatch structure behind
/// EngineConfig::HashDispatch: an open-addressed guest-PC -> Translation
/// table with linear probing and tombstone deletion, modeled on the
/// translation-lookup fast path of production DBT monitors (one probe +
/// indirect jump on a hit instead of an ordered-map walk).  The table is
/// a pure cache over the engine's authoritative BlockMap: every entry
/// holds a currently-valid translation, entries are erased on
/// invalidation and the whole table is dropped on a cache flush, so a
/// hit can be trusted without revalidation.  lookup() reports the probe
/// count so the engine can charge CostModel::DispatchTableHitCycles /
/// DispatchProbeCycles faithfully.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_DISPATCHTABLE_H
#define MDABT_DBT_DISPATCHTABLE_H

#include "dbt/Translation.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace mdabt {
namespace dbt {

/// Open-addressed PC -> Translation* map with linear probing.
/// Capacity is always a power of two; the load factor (live +
/// tombstones) is kept under 3/4 by growing, which also drops
/// accumulated tombstones (rehash inserts live entries only).
class DispatchTable {
public:
  DispatchTable() { reset(InitialCapacity); }

  /// Find the translation installed for \p Pc.  \p Probes is set to the
  /// number of slots inspected (>= 1); the engine prices the lookup
  /// from it.  Returns null on a miss.
  Translation *lookup(uint32_t Pc, uint32_t &Probes) const {
    const uint32_t Mask = static_cast<uint32_t>(Slots.size()) - 1;
    uint32_t I = hashPc(Pc) & Mask;
    Probes = 0;
    for (;;) {
      ++Probes;
      const Slot &S = Slots[I];
      if (S.State == SlotState::Empty)
        return nullptr;
      if (S.State == SlotState::Full && S.Pc == Pc)
        return S.T;
      I = (I + 1) & Mask; // tombstone or collision: keep probing
      assert(Probes <= Slots.size() && "dispatch table probe loop");
    }
  }

  /// Install (or replace) the entry for \p Pc.
  void insert(uint32_t Pc, Translation *T) {
    assert(T && "inserting null translation");
    if ((Live + Tombstoned + 1) * 4 > Slots.size() * 3)
      grow();
    ++Inserts;
    const uint32_t Mask = static_cast<uint32_t>(Slots.size()) - 1;
    uint32_t I = hashPc(Pc) & Mask;
    uint32_t FirstTombstone = UINT32_MAX;
    for (;;) {
      Slot &S = Slots[I];
      if (S.State == SlotState::Empty) {
        if (FirstTombstone != UINT32_MAX) { // reuse the earlier grave
          Slots[FirstTombstone] = {Pc, T, SlotState::Full};
          --Tombstoned;
        } else {
          S = {Pc, T, SlotState::Full};
        }
        ++Live;
        return;
      }
      if (S.State == SlotState::Full && S.Pc == Pc) {
        S.T = T; // upsert
        return;
      }
      if (S.State == SlotState::Tombstone && FirstTombstone == UINT32_MAX)
        FirstTombstone = I;
      I = (I + 1) & Mask;
    }
  }

  /// Remove the entry for \p Pc, but only if it still maps to \p T:
  /// during superblock formation the head PC is remapped to the trace
  /// before the superseded block is torn down, and an unguarded erase
  /// would drop the fresh mapping.
  void eraseIf(uint32_t Pc, const Translation *T) {
    const uint32_t Mask = static_cast<uint32_t>(Slots.size()) - 1;
    uint32_t I = hashPc(Pc) & Mask;
    for (;;) {
      Slot &S = Slots[I];
      if (S.State == SlotState::Empty)
        return;
      if (S.State == SlotState::Full && S.Pc == Pc) {
        if (S.T == T) {
          S = {0, nullptr, SlotState::Tombstone};
          --Live;
          ++Tombstoned;
          ++Erases;
        }
        return;
      }
      I = (I + 1) & Mask;
    }
  }

  /// Drop every entry (code-cache flush).  Counters survive; capacity
  /// resets so a post-flush table does not keep a thrash-inflated size.
  void clear() { reset(InitialCapacity); }

  size_t size() const { return Live; }
  size_t capacity() const { return Slots.size(); }
  size_t tombstones() const { return Tombstoned; }
  uint64_t inserts() const { return Inserts; }
  uint64_t erases() const { return Erases; }
  uint64_t rehashes() const { return Rehashes; }

private:
  enum class SlotState : uint8_t { Empty, Full, Tombstone };
  struct Slot {
    uint32_t Pc = 0;
    Translation *T = nullptr;
    SlotState State = SlotState::Empty;
  };

  static constexpr size_t InitialCapacity = 64;

  /// Knuth multiplicative hash; guest PCs are word-aligned so the
  /// low bits alone would collide pathologically.
  static uint32_t hashPc(uint32_t Pc) { return Pc * 2654435761u; }

  void reset(size_t Capacity) {
    Slots.assign(Capacity, Slot{});
    Live = 0;
    Tombstoned = 0;
  }

  void grow() {
    ++Rehashes;
    std::vector<Slot> Old = std::move(Slots);
    // Rehash drops tombstones, so growth is only forced by live load.
    size_t NewCap = Old.size();
    if ((Live + 1) * 4 > NewCap * 2)
      NewCap *= 2;
    reset(NewCap);
    uint64_t SavedInserts = Inserts; // re-inserts are not user inserts
    for (const Slot &S : Old)
      if (S.State == SlotState::Full)
        insert(S.Pc, S.T);
    Inserts = SavedInserts;
  }

  std::vector<Slot> Slots;
  size_t Live = 0;
  size_t Tombstoned = 0;
  uint64_t Inserts = 0;
  uint64_t Erases = 0;
  uint64_t Rehashes = 0;
};

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_DISPATCHTABLE_H
