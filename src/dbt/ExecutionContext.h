//===- dbt/ExecutionContext.h - Per-run execution state --------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-run layer of the serving architecture (docs/SERVING.md): one
/// ExecutionContext owns ALL mutable state of one guest run — guest
/// memory and registers, the host code arena, trap/patch bookkeeping,
/// SMC epochs, budgets, degradation-ladder state — and performs the
/// run's monitor loop.  Translations are either produced locally by the
/// stateless Translator or, when EngineConfig::Service is set, leased
/// from the process-wide shared cache; either way the context installs
/// a private copy in its own CodeSpace, so concurrent runs never share
/// mutable code.
///
/// Engine is a thin façade over this class (one Engine::run constructs
/// one ExecutionContext); benches that drive many runs against one
/// TranslationService may also use it directly.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_EXECUTIONCONTEXT_H
#define MDABT_DBT_EXECUTIONCONTEXT_H

#include "dbt/Engine.h"

#include <memory>

namespace mdabt {
namespace dbt {

/// All per-run state of one guest execution.  Single-use: construct,
/// call run() once, destroy (destruction releases every cache lease the
/// run still holds).
class ExecutionContext {
public:
  ExecutionContext(const guest::GuestImage &Image, MdaPolicy &Policy,
                   const EngineConfig &Config);
  ~ExecutionContext();
  ExecutionContext(const ExecutionContext &) = delete;
  ExecutionContext &operator=(const ExecutionContext &) = delete;

  /// Execute the program.  May be called once per context.
  RunResult run();

private:
  struct Impl;
  EngineConfig Cfg; ///< stable copy; Impl holds references into it
  std::unique_ptr<Impl> I;
  bool Used = false;
};

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_EXECUTIONCONTEXT_H
