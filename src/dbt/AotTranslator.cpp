//===- dbt/AotTranslator.cpp - Static AOT pre-translation -----------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "dbt/AotTranslator.h"

#include "dbt/GuestBlock.h"
#include "dbt/TranslationCapture.h"

#include <utility>

using namespace mdabt;
using namespace mdabt::dbt;

AotTranslator::AotTranslator(const guest::GuestMemory &Mem,
                             const analysis::CfgResult &Cfg,
                             Translator::PlanFn Plan, TranslationOpts Opts,
                             TranslationService *Service,
                             const host::CostModel &Cost)
    : Mem(Mem), Cfg(Cfg), Plan(std::move(Plan)), Opts(Opts),
      Service(Service), Cost(Cost), Trans(Scratch) {
  S.RecoveredBlocks = Cfg.Blocks.size();
  S.FrontierSites = Cfg.Frontier.size();
}

void AotTranslator::pretranslateAll() {
  // PC order (CfgResult::Blocks is an ordered map): payload production,
  // publish order and modeled startup cost are all deterministic.
  for (const auto &KV : Cfg.Blocks) {
    const analysis::CfgBlock &B = KV.second;
    // Re-discover through the same decoder the demand path uses; a
    // proven block decodes by construction.
    GuestBlock GB = discoverBlock(Mem, B.StartPc);
    Unit U;
    U.GuestPc = B.StartPc;
    const GuestBlock *One = &GB;
    U.Key = translationContentKey(Mem, &One, 1, Plan, Opts, false);
    if (Service) {
      if (TranslationLease L = Service->acquire(U.Key)) {
        // Warm start: someone (a previous run, the disk artifact, or a
        // concurrent tenant) already produced these exact words.
        U.Payload = L.get();
        U.Lease = std::move(L);
        U.FromCache = true;
        ++S.FromCache;
      }
    }
    if (!U.FromCache) {
      Translation T = Trans.translate(GB, Plan, 0, Opts);
      U.Payload = captureTranslation(T, Scratch);
      if (Service)
        U.Lease = Service->publish(U.Key, U.Payload);
      ++S.Translated;
      S.StartupTranslateCycles +=
          static_cast<uint64_t>(GB.size()) * Cost.TranslateCyclesPerInst;
    }
    S.GuestInsts += GB.size();
    Units.emplace(B.StartPc, std::move(U));
  }
}

AotTranslator::Unit *AotTranslator::find(uint32_t Pc) {
  auto It = Units.find(Pc);
  return It == Units.end() ? nullptr : &It->second;
}

std::vector<uint32_t> AotTranslator::noteGuestStore(uint32_t Addr,
                                                    uint32_t Size) {
  std::vector<uint32_t> Staled;
  uint32_t Lo = Addr, Hi = Addr + Size;
  for (auto &KV : Units) {
    Unit &U = KV.second;
    if (U.Stale)
      continue;
    for (const auto &R : U.Payload.GuestRanges) {
      if (R.first < Hi && Lo < R.second) {
        U.Stale = true;
        U.Lease.release();
        ++S.StaleDropped;
        Staled.push_back(U.GuestPc);
        break;
      }
    }
  }
  return Staled;
}

bool AotTranslator::drop(uint32_t Pc) {
  Unit *U = find(Pc);
  if (!U || U->Stale)
    return false;
  U->Stale = true;
  U->Lease.release();
  ++S.StaleDropped;
  return true;
}

std::vector<uint32_t> AotTranslator::dropAll() {
  std::vector<uint32_t> Staled;
  for (auto &KV : Units) {
    Unit &U = KV.second;
    if (U.Stale)
      continue;
    U.Stale = true;
    U.Lease.release();
    ++S.StaleDropped;
    Staled.push_back(U.GuestPc);
  }
  return Staled;
}
