//===- dbt/TranslationService.cpp -----------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "dbt/TranslationService.h"

#include "dbt/Engine.h"
#include "dbt/FusionRules.h"
#include "dbt/Translation.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

using namespace mdabt;
using namespace mdabt::dbt;

CacheKey mdabt::dbt::cacheKeyFromBytes(const uint8_t *Bytes, size_t Size) {
  CacheKey K;
  K.Lo = fnv1a(Bytes, Size);
  // Second stream: same FNV prime, different basis plus a finalizing
  // xor-shift per byte, so the two words are independent enough that a
  // collision requires both 64-bit streams to collide at once.
  uint64_t H = 0x84222325cbf29ce4ULL;
  for (size_t I = 0; I != Size; ++I) {
    H ^= Bytes[I];
    H *= 0x100000001b3ULL;
    H ^= H >> 29;
  }
  K.Hi = H;
  return K;
}

size_t CachedTranslation::footprintBytes() const {
  size_t N = sizeof(*this);
  N += Words.size() * sizeof(uint32_t);
  N += Exits.size() * sizeof(RelExit);
  N += MemWordToGuestPc.size() * sizeof(std::pair<uint32_t, uint32_t>);
  N += StoreResume.size() * sizeof(RelResume);
  N += PlanByPc.size() * sizeof(std::pair<uint32_t, uint8_t>);
  for (const RelIcSite &S : IcSites)
    N += sizeof(RelIcSite) + S.WayBegins.size() * sizeof(uint32_t);
  N += Constituents.size() * sizeof(uint32_t);
  N += GuestRanges.size() * sizeof(std::pair<uint32_t, uint32_t>);
  N += FusedSites.size() * sizeof(RelFusedSite);
  return N;
}

// -- TranslationLease --------------------------------------------------------

TranslationLease &TranslationLease::operator=(TranslationLease &&O) noexcept {
  if (this != &O) {
    release();
    E = std::move(O.E);
  }
  return *this;
}

TranslationLease::~TranslationLease() { release(); }

void TranslationLease::release() {
  if (!E)
    return;
  E->Leases.fetch_sub(1, std::memory_order_acq_rel);
  E.reset();
}

// -- SharedTranslationCache --------------------------------------------------

SharedTranslationCache::SharedTranslationCache(Config C) : Cfg(C) {
  uint32_t N = std::min(64u, std::max(1u, Cfg.Shards));
  Shards = std::vector<Shard>(N);
  if (Cfg.MaxEntries != 0)
    PerShardCap = (Cfg.MaxEntries + N - 1) / N;
}

TranslationLease SharedTranslationCache::acquire(const CacheKey &Key) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  for (const std::shared_ptr<detail::CacheEntry> &E : S.Entries) {
    if (E->Key == Key) {
      E->Leases.fetch_add(1, std::memory_order_acq_rel);
      E->Hits.fetch_add(1, std::memory_order_relaxed);
      StatHits.fetch_add(1, std::memory_order_relaxed);
      return TranslationLease(E);
    }
  }
  StatMisses.fetch_add(1, std::memory_order_relaxed);
  return TranslationLease();
}

std::shared_ptr<detail::CacheEntry>
SharedTranslationCache::insertLocked(Shard &S, const CacheKey &Key,
                                     CachedTranslation &&T,
                                     uint64_t &Evicted) {
  // First writer wins: a racing publisher of the same key leases the
  // resident entry (the payloads are byte-identical by key design).
  for (const std::shared_ptr<detail::CacheEntry> &E : S.Entries)
    if (E->Key == Key)
      return E;
  if (PerShardCap != 0 && S.Entries.size() >= PerShardCap) {
    // Evict oldest unleased entries until under capacity.  Leased
    // entries are skipped — a tenant's live translation is never
    // retired by another tenant's insert pressure.
    std::stable_sort(S.Entries.begin(), S.Entries.end(),
                     [](const std::shared_ptr<detail::CacheEntry> &A,
                        const std::shared_ptr<detail::CacheEntry> &B) {
                       return A->Seq < B->Seq;
                     });
    for (size_t I = 0;
         I < S.Entries.size() && S.Entries.size() >= PerShardCap;) {
      if (S.Entries[I]->Leases.load(std::memory_order_acquire) == 0) {
        S.Entries.erase(S.Entries.begin() + static_cast<ptrdiff_t>(I));
        ++Evicted;
        StatEvictions.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++I;
      }
    }
  }
  auto E = std::make_shared<detail::CacheEntry>();
  E->Key = Key;
  E->T = std::move(T);
  E->Seq = S.NextSeq++;
  S.Entries.push_back(E);
  StatInserts.fetch_add(1, std::memory_order_relaxed);
  return E;
}

TranslationLease SharedTranslationCache::publish(const CacheKey &Key,
                                                 CachedTranslation T,
                                                 uint64_t *Evicted) {
  Shard &S = shardFor(Key);
  uint64_t Ev = 0;
  std::shared_ptr<detail::CacheEntry> E;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    E = insertLocked(S, Key, std::move(T), Ev);
    E->Leases.fetch_add(1, std::memory_order_acq_rel);
  }
  if (Evicted)
    *Evicted = Ev;
  return TranslationLease(E);
}

uint64_t SharedTranslationCache::entries() const {
  uint64_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.Entries.size();
  }
  return N;
}

uint64_t SharedTranslationCache::liveLeases() const {
  uint64_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    for (const std::shared_ptr<detail::CacheEntry> &E : S.Entries)
      N += E->Leases.load(std::memory_order_acquire);
  }
  return N;
}

uint64_t SharedTranslationCache::footprintBytes() const {
  uint64_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    for (const std::shared_ptr<detail::CacheEntry> &E : S.Entries)
      N += E->T.footprintBytes();
  }
  return N;
}

// -- disk persistence --------------------------------------------------------

namespace {

constexpr uint32_t ArtifactMagic = 0x4354444d; // "MDTC"

void put8(std::vector<uint8_t> &B, uint8_t V) { B.push_back(V); }
void put32(std::vector<uint8_t> &B, uint32_t V) {
  for (int S = 0; S != 32; S += 8)
    B.push_back(static_cast<uint8_t>(V >> S));
}
void put64(std::vector<uint8_t> &B, uint64_t V) {
  for (int S = 0; S != 64; S += 8)
    B.push_back(static_cast<uint8_t>(V >> S));
}

/// Bounds-checked little-endian reader over a loaded artifact.
struct Cursor {
  const uint8_t *P;
  size_t N;
  size_t At = 0;
  bool Bad = false;

  uint8_t u8() {
    if (At + 1 > N) {
      Bad = true;
      return 0;
    }
    return P[At++];
  }
  uint32_t u32() {
    if (At + 4 > N) {
      Bad = true;
      return 0;
    }
    uint32_t V = 0;
    for (int S = 0; S != 32; S += 8)
      V |= static_cast<uint32_t>(P[At++]) << S;
    return V;
  }
  uint64_t u64() {
    if (At + 8 > N) {
      Bad = true;
      return 0;
    }
    uint64_t V = 0;
    for (int S = 0; S != 64; S += 8)
      V |= static_cast<uint64_t>(P[At++]) << S;
    return V;
  }
};

/// Upper bound on any per-entry element count: generous for real
/// translations, small enough that a corrupt length cannot drive an
/// allocation bomb before the checksum is even checked.
constexpr uint32_t MaxElems = 1u << 22;

void serializeEntry(std::vector<uint8_t> &B, const CacheKey &Key,
                    const CachedTranslation &T) {
  put64(B, Key.Lo);
  put64(B, Key.Hi);
  put32(B, T.GuestPc);
  put32(B, T.GuestInsts);
  put8(B, T.IsTrace);
  put32(B, static_cast<uint32_t>(T.Words.size()));
  for (uint32_t W : T.Words)
    put32(B, W);
  put32(B, static_cast<uint32_t>(T.Exits.size()));
  for (const CachedTranslation::RelExit &E : T.Exits) {
    put32(B, E.Word);
    put32(B, E.TargetGuestPc);
    put8(B, E.Direct);
  }
  put32(B, static_cast<uint32_t>(T.MemWordToGuestPc.size()));
  for (const auto &M : T.MemWordToGuestPc) {
    put32(B, M.first);
    put32(B, M.second);
  }
  put32(B, static_cast<uint32_t>(T.StoreResume.size()));
  for (const CachedTranslation::RelResume &R : T.StoreResume) {
    put32(B, R.Word);
    put32(B, R.EndWord);
    put32(B, R.ResumePc);
  }
  put32(B, static_cast<uint32_t>(T.PlanByPc.size()));
  for (const auto &P : T.PlanByPc) {
    put32(B, P.first);
    put8(B, P.second);
  }
  put32(B, static_cast<uint32_t>(T.IcSites.size()));
  for (const CachedTranslation::RelIcSite &S : T.IcSites) {
    put32(B, S.SrvWord);
    put32(B, static_cast<uint32_t>(S.WayBegins.size()));
    for (uint32_t W : S.WayBegins)
      put32(B, W);
  }
  put32(B, static_cast<uint32_t>(T.Constituents.size()));
  for (uint32_t C : T.Constituents)
    put32(B, C);
  put32(B, static_cast<uint32_t>(T.GuestRanges.size()));
  for (const auto &R : T.GuestRanges) {
    put32(B, R.first);
    put32(B, R.second);
  }
  put32(B, static_cast<uint32_t>(T.FusedSites.size()));
  for (const CachedTranslation::RelFusedSite &F : T.FusedSites) {
    put8(B, F.Rule);
    put8(B, F.GuestLen);
    put32(B, F.Begin);
    put32(B, F.End);
    put32(B, F.GuestPc);
    put32(B, F.SavedWords);
  }
}

/// Parse one entry; returns false on a structural defect (truncated
/// stream, implausible counts, metadata outside the word range).
bool parseEntry(Cursor &C, CacheKey &Key, CachedTranslation &T) {
  Key.Lo = C.u64();
  Key.Hi = C.u64();
  T.GuestPc = C.u32();
  T.GuestInsts = C.u32();
  T.IsTrace = C.u8();
  if (T.IsTrace > 1)
    return false;
  uint32_t NWords = C.u32();
  if (C.Bad || NWords == 0 || NWords > MaxElems)
    return false;
  T.Words.reserve(NWords);
  for (uint32_t I = 0; I != NWords; ++I)
    T.Words.push_back(C.u32());
  auto RelOk = [NWords](uint32_t W) { return W < NWords; };
  uint32_t NExits = C.u32();
  if (C.Bad || NExits > MaxElems)
    return false;
  for (uint32_t I = 0; I != NExits; ++I) {
    CachedTranslation::RelExit E;
    E.Word = C.u32();
    E.TargetGuestPc = C.u32();
    E.Direct = C.u8();
    if (!RelOk(E.Word) || E.Direct > 1)
      return false;
    T.Exits.push_back(E);
  }
  uint32_t NMem = C.u32();
  if (C.Bad || NMem > MaxElems)
    return false;
  for (uint32_t I = 0; I != NMem; ++I) {
    uint32_t W = C.u32();
    uint32_t Pc = C.u32();
    if (!RelOk(W))
      return false;
    T.MemWordToGuestPc.push_back({W, Pc});
  }
  uint32_t NResume = C.u32();
  if (C.Bad || NResume > MaxElems)
    return false;
  for (uint32_t I = 0; I != NResume; ++I) {
    CachedTranslation::RelResume R;
    R.Word = C.u32();
    R.EndWord = C.u32();
    R.ResumePc = C.u32();
    if (!RelOk(R.Word) || R.EndWord > NWords)
      return false;
    T.StoreResume.push_back(R);
  }
  uint32_t NPlans = C.u32();
  if (C.Bad || NPlans > MaxElems)
    return false;
  for (uint32_t I = 0; I != NPlans; ++I) {
    uint32_t Pc = C.u32();
    uint8_t Plan = C.u8();
    if (Plan > static_cast<uint8_t>(MemPlan::Elide))
      return false;
    T.PlanByPc.push_back({Pc, Plan});
  }
  uint32_t NSites = C.u32();
  if (C.Bad || NSites > MaxElems)
    return false;
  for (uint32_t I = 0; I != NSites; ++I) {
    CachedTranslation::RelIcSite S;
    S.SrvWord = C.u32();
    uint32_t NWays = C.u32();
    if (C.Bad || !RelOk(S.SrvWord) || NWays > 4)
      return false;
    for (uint32_t W = 0; W != NWays; ++W) {
      uint32_t B = C.u32();
      if (B + IcWayWords > NWords)
        return false;
      S.WayBegins.push_back(B);
    }
    T.IcSites.push_back(std::move(S));
  }
  uint32_t NConst = C.u32();
  if (C.Bad || NConst > MaxElems)
    return false;
  for (uint32_t I = 0; I != NConst; ++I)
    T.Constituents.push_back(C.u32());
  uint32_t NRanges = C.u32();
  if (C.Bad || NRanges > MaxElems)
    return false;
  for (uint32_t I = 0; I != NRanges; ++I) {
    uint32_t Lo = C.u32();
    uint32_t HiB = C.u32();
    if (Lo >= HiB)
      return false;
    T.GuestRanges.push_back({Lo, HiB});
  }
  uint32_t NFused = C.u32();
  if (C.Bad || NFused > MaxElems)
    return false;
  for (uint32_t I = 0; I != NFused; ++I) {
    CachedTranslation::RelFusedSite F;
    F.Rule = C.u8();
    F.GuestLen = C.u8();
    F.Begin = C.u32();
    F.End = C.u32();
    F.GuestPc = C.u32();
    F.SavedWords = C.u32();
    if (F.Rule >= NumFusionRules || F.Begin >= F.End || F.End > NWords)
      return false;
    T.FusedSites.push_back(F);
  }
  return !C.Bad;
}

bool fail(std::string *Err, const char *Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

} // namespace

bool SharedTranslationCache::save(const std::string &Path,
                                  std::string *Err) const {
  // Snapshot every shard in key order so the artifact is deterministic
  // regardless of insertion interleaving.
  std::vector<std::shared_ptr<detail::CacheEntry>> All;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    All.insert(All.end(), S.Entries.begin(), S.Entries.end());
  }
  std::sort(All.begin(), All.end(),
            [](const std::shared_ptr<detail::CacheEntry> &A,
               const std::shared_ptr<detail::CacheEntry> &B) {
              return A->Key.Hi != B->Key.Hi ? A->Key.Hi < B->Key.Hi
                                            : A->Key.Lo < B->Key.Lo;
            });
  std::vector<uint8_t> Payload;
  for (const std::shared_ptr<detail::CacheEntry> &E : All)
    serializeEntry(Payload, E->Key, E->T);
  std::vector<uint8_t> File;
  put32(File, ArtifactMagic);
  put32(File, FormatVersion);
  put64(File, All.size());
  put64(File, Payload.size());
  put64(File, fnv1a(Payload.data(), Payload.size()));
  File.insert(File.end(), Payload.begin(), Payload.end());
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return fail(Err, "cannot open artifact for writing");
  size_t Written = std::fwrite(File.data(), 1, File.size(), F);
  bool Ok = std::fclose(F) == 0 && Written == File.size();
  if (!Ok)
    return fail(Err, "short write");
  return true;
}

bool SharedTranslationCache::load(const std::string &Path, uint64_t *Loaded,
                                  std::string *Err) {
  if (Loaded)
    *Loaded = 0;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return fail(Err, "cannot open artifact");
  std::vector<uint8_t> File;
  uint8_t Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    File.insert(File.end(), Buf, Buf + N);
  std::fclose(F);
  Cursor C{File.data(), File.size()};
  uint32_t Magic = C.u32();
  uint32_t Version = C.u32();
  uint64_t Count = C.u64();
  uint64_t PayloadBytes = C.u64();
  uint64_t Sum = C.u64();
  if (C.Bad || Magic != ArtifactMagic)
    return fail(Err, "bad magic");
  if (Version != FormatVersion)
    return fail(Err, "unsupported version");
  if (File.size() - C.At != PayloadBytes)
    return fail(Err, "truncated artifact");
  if (fnv1a(File.data() + C.At, PayloadBytes) != Sum)
    return fail(Err, "payload checksum mismatch");
  // Parse and validate everything before touching the cache: a corrupt
  // artifact must be rejected whole, never half-merged.
  std::vector<std::pair<CacheKey, CachedTranslation>> Parsed;
  Parsed.reserve(static_cast<size_t>(std::min<uint64_t>(Count, 65536)));
  for (uint64_t I = 0; I != Count; ++I) {
    CacheKey Key;
    CachedTranslation T;
    if (!parseEntry(C, Key, T))
      return fail(Err, "malformed entry");
    Parsed.emplace_back(Key, std::move(T));
  }
  if (C.At != C.N)
    return fail(Err, "trailing bytes after last entry");
  for (auto &KV : Parsed) {
    Shard &S = shardFor(KV.first);
    uint64_t Ev = 0;
    std::lock_guard<std::mutex> Lock(S.M);
    insertLocked(S, KV.first, std::move(KV.second), Ev);
  }
  if (Loaded)
    *Loaded = Count;
  return true;
}

// -- TranslationService ------------------------------------------------------

bool TranslationService::load(const std::string &Path, obs::TraceSink *Sink,
                              std::string *Err) {
  uint64_t Loaded = 0;
  if (!C.load(Path, &Loaded, Err))
    return false;
  if (Sink) {
    obs::TraceEvent E;
    E.Kind = obs::TraceEventKind::CacheLoad;
    E.A = Loaded;
    E.B = C.footprintBytes();
    Sink->emit(E);
  }
  return true;
}
