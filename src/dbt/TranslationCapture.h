//===- dbt/TranslationCapture.h - Content keys + capture -------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two pure functions the serving layer's byte-identity contract
/// rests on, shared by every producer of cached translations — the
/// per-run install path (`ExecutionContext`) and the static AOT
/// pre-translator (`AotTranslator`):
///
///  * `translationContentKey` serializes everything that determines the
///    translator's emission for one (multi-)block — format version,
///    trace-ness, block-level options including the fusion mask, each
///    constituent's raw guest bytes, and the MemPlan the plan chain
///    returns for every planned site — and hashes it into the 128-bit
///    cache key;
///  * `captureTranslation` snapshots a freshly translated block's
///    pristine words and install metadata into the relocatable
///    `CachedTranslation` form (entry-relative, deterministically
///    sorted).
///
/// Keeping both in one place is what lets an AOT-published entry be
/// byte-for-byte the entry a demand translation of the same bytes under
/// the same plans would publish: warm start, disk persistence and
/// multi-tenant sharing work unchanged whichever side produced it.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_TRANSLATIONCAPTURE_H
#define MDABT_DBT_TRANSLATIONCAPTURE_H

#include "dbt/GuestBlock.h"
#include "dbt/TranslationService.h"
#include "dbt/Translator.h"
#include "guest/GuestMemory.h"
#include "host/CodeSpace.h"

#include <cstddef>

namespace mdabt {
namespace dbt {

/// Content key of the translation of \p Blocks (NBlocks == 1 for a
/// plain block, > 1 for a superblock trace) under \p Plan and \p Opts.
/// Two callers arriving at the same key are guaranteed the same emitted
/// host words.
CacheKey translationContentKey(const guest::GuestMemory &Mem,
                               const GuestBlock *const *Blocks,
                               size_t NBlocks, const Translator::PlanFn &Plan,
                               const TranslationOpts &Opts, bool IsTrace);

/// Snapshot \p T's pristine words (still untouched by chaining or
/// patching) from \p Code into the relocatable cached form.
CachedTranslation captureTranslation(const Translation &T,
                                     const host::CodeSpace &Code);

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_TRANSLATIONCAPTURE_H
