//===- dbt/Disassembly.cpp ------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "dbt/Disassembly.h"

#include "host/HostEncoding.h"
#include "support/Format.h"

#include <algorithm>

using namespace mdabt;
using namespace mdabt::dbt;

std::string mdabt::dbt::dumpTranslation(const Translation &T,
                                        const host::CodeSpace &Code) {
  std::string Out =
      format("translation of guest block %06x (generation %u%s)\n",
             T.GuestPc, T.Generation, T.Valid ? "" : ", superseded");
  for (uint32_t W = T.EntryWord; W != T.EndWord; ++W) {
    host::HostInst Inst;
    bool Ok = host::decodeHost(Code.word(W), Inst);
    Out += format("  %6u: ", W);
    Out += Ok ? host::disassembleHost(Inst, W) : "<undecodable>";
    auto MemIt = T.MemWordToGuestPc.find(W);
    if (MemIt != T.MemWordToGuestPc.end())
      Out += format("    ; may trap (guest %06x)", MemIt->second);
    if (std::find(T.PatchedWords.begin(), T.PatchedWords.end(), W) !=
        T.PatchedWords.end())
      Out += "    ; patched by the exception handler";
    for (const ExitSite &X : T.Exits) {
      if (X.SrvWord != W)
        continue;
      if (!X.Direct)
        Out += "    ; indirect exit";
      else
        Out += format("    ; exit to guest %06x%s", X.TargetGuestPc,
                      X.Chained ? " (chained)" : "");
    }
    Out += '\n';
  }
  return Out;
}
