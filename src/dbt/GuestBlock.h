//===- dbt/GuestBlock.h - Guest basic-block discovery ----------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decodes a dynamic basic block of guest code starting at a given PC:
/// the unit of translation, heating, invalidation and retranslation in
/// the DBT (DigitalBridge translates and invalidates "at block
/// granularity", paper section IV-C).
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_GUESTBLOCK_H
#define MDABT_DBT_GUESTBLOCK_H

#include "guest/GuestInst.h"
#include "guest/GuestMemory.h"

#include <cstdint>
#include <vector>

namespace mdabt {
namespace dbt {

/// A decoded guest basic block.
struct GuestBlock {
  uint32_t StartPc = 0;
  std::vector<guest::GuestInst> Insts;
  std::vector<uint32_t> InstPcs; ///< PC of each instruction.

  size_t size() const { return Insts.size(); }
  /// PC one past the last instruction (the fall-through target).
  uint32_t endPc() const {
    return Insts.empty() ? StartPc
                         : InstPcs.back() + Insts.back().Length;
  }
};

/// Decode the block starting at \p Pc: instructions up to and including
/// the first terminator (branch/call/ret/halt).  Asserts on undecodable
/// bytes.  \p MaxInsts bounds pathological straight-line runs.
GuestBlock discoverBlock(const guest::GuestMemory &Mem, uint32_t Pc,
                         size_t MaxInsts = 4096);

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_GUESTBLOCK_H
