//===- dbt/Engine.cpp -----------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "dbt/Engine.h"

#include "dbt/GuestBlock.h"
#include "dbt/Translator.h"
#include "guest/Interpreter.h"
#include "guest/MdaCensus.h"
#include "host/HostAssembler.h"
#include "host/HostMachine.h"
#include "support/CacheModel.h"

#include <cassert>
#include <cstring>
#include <deque>
#include <map>
#include <unordered_map>

using namespace mdabt;
using namespace mdabt::dbt;
using namespace mdabt::host;

uint64_t mdabt::dbt::fnv1a(const uint8_t *Bytes, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I != Size; ++I) {
    H ^= Bytes[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

MdaPolicy::~MdaPolicy() = default;

namespace {

/// All per-run state of the engine: built fresh for every run().
class Session {
public:
  Session(const guest::GuestImage &Image, MdaPolicy &Policy,
          const EngineConfig &Config)
      : Policy(Policy), Config(Config), Cost(Config.Cost), Interp(Mem),
        Machine(Code, Mem, Hier, Cost), Trans(Code), Profiler(*this) {
    Mem.loadImage(Image);
    Cpu.reset(Image);
    Interp.setObserver(&Profiler);
    Machine.setFaultHandler(
        [this](const FaultInfo &F) { return onFault(F); });
  }

  RunResult run();

private:
  // -- phase 1: interpretation with profiling ---------------------------

  /// Charges interpreter memory costs and feeds the policy's dynamic
  /// profile.
  class InterpProfiler : public guest::InterpObserver {
  public:
    explicit InterpProfiler(Session &S) : S(S) {}
    void onMemAccess(uint32_t InstPc, uint32_t Addr, unsigned Size,
                     bool IsStore) override {
      ++S.InterpRefs;
      S.InterpCycles += S.Cost.InterpMemExtraCycles + S.Hier.data(Addr);
      S.Policy.onInterpMemAccess(InstPc, Addr, Size, IsStore);
    }
    Session &S;
  };

  // -- translation -------------------------------------------------------

  Translation *installTranslation(uint32_t GuestPc, uint32_t Generation,
                                  bool AllowFlush = false) {
    // Capacity policy: flush before installing, and only from monitor
    // context (translated code must not be running during a flush).
    if (AllowFlush && Config.CodeCacheLimitWords != 0 &&
        Code.size() > Config.CodeCacheLimitWords)
      flushAll();
    GuestBlock Block = discoverBlock(Mem, GuestPc);
    Translator::PlanFn Plan = [this](uint32_t Pc,
                                     const guest::GuestInst &I) {
      return Policy.planMemoryOp(Pc, I);
    };
    Store.push_back(
        Trans.translate(Block, Plan, Generation, Policy.translationOpts()));
    Translation *T = &Store.back();
    Regions[T->EntryWord] = {T->EndWord, T};
    BlockMap[GuestPc] = T;
    if (!Policy.translationIsOffline())
      TranslateCycles += static_cast<uint64_t>(Block.size()) *
                         Cost.TranslateCyclesPerInst;
    ++Translations;
    return T;
  }

  /// Invalidate \p Old and retranslate its guest block (rearrangement /
  /// retranslation; the policy's plan callback decides what is inlined
  /// in the new incarnation).
  void supersede(Translation *Old) {
    if (!Old->Valid)
      return; // already superseded; the stale code may still be running
    if (Config.FlushOnSupersede) {
      // Dynamo-style: flush everything at the next safe point (we may
      // be inside the fault handler with the old code still running).
      PendingFlush = true;
      ++Supersedes;
      return;
    }
    Old->Valid = false;
    for (uint32_t W : Old->IncomingChains)
      Code.patch(W, encodeHost(srvInst(SrvFunc::Exit)));
    Old->IncomingChains.clear();
    installTranslation(Old->GuestPc, Old->Generation + 1);
    ++Supersedes;
  }

  /// Full code-cache flush (Dynamo-style, or capacity-triggered).  Only
  /// legal from the monitor, when no translated code is running.
  void flushAll() {
    Code.clear();
    BlockMap.clear();
    Regions.clear();
    Store.clear();
    PatchedOriginals.clear();
    PendingFlush = false;
    ++Flushes;
    // Heat survives: hot blocks retranslate on their next dispatch,
    // exactly like a real cache flush.
  }

  // -- fault handling ------------------------------------------------------

  Translation *findOwner(uint32_t Word) {
    auto It = Regions.upper_bound(Word);
    if (It == Regions.begin())
      return nullptr;
    --It;
    if (Word >= It->second.first)
      return nullptr;
    return It->second.second;
  }

  FaultAction onFault(const FaultInfo &F) {
    Translation *T = findOwner(F.HostPc);
    assert(T && "misalignment fault outside any translation");
    auto It = T->MemWordToGuestPc.find(F.HostPc);
    assert(It != T->MemWordToGuestPc.end() &&
           "fault at an unrecorded memory word");
    uint32_t InstPc = It->second;
    ++T->FaultCount;

    FaultDecision D = Policy.onFault(InstPc, T->GuestPc, T->FaultCount);
    if (!D.PatchStub)
      return FaultAction::Fixup;

    // Exception-handling method (paper Fig. 5): generate the MDA code
    // sequence in the code cache and patch the offending instruction.
    Translator::StubInfo S;
    if (D.AdaptiveStub) {
      // The revertible stub of paper Fig. 8 (right): remember the
      // original word so the monitor can patch it back when the stub
      // reports a run of aligned executions.
      uint32_t CounterAddr = NextCounterCell;
      NextCounterCell += 4;
      assert(CounterAddr + 4 <= Mem.size() && "runtime cells exhausted");
      Mem.store(CounterAddr, 4, 0);
      PatchedOriginals[F.HostPc] = {Code.word(F.HostPc), InstPc};
      S = Trans.emitAdaptiveStub(F.Inst, F.HostPc, CounterAddr,
                                 MailboxAddr, D.RevertThreshold);
    } else {
      S = Trans.emitStub(F.Inst, F.HostPc);
    }
    Trans.patchToStub(F.HostPc, S.Entry);
    T->PatchedWords.push_back(F.HostPc);
    T->MemWordToGuestPc.erase(F.HostPc);
    Regions[S.Entry] = {S.End, T};
    Machine.addCycles(Cost.PatchExtraCycles);
    ++Patches;

    if (D.Supersede)
      supersede(T);
    return FaultAction::Retry;
  }

  /// Apply a revert request posted by an adaptive stub: restore the
  /// original memory instruction.  It may trap (and be re-patched)
  /// later — that is the adaptivity loop of paper Fig. 8.
  void pollRevertMailbox() {
    uint32_t Posted = static_cast<uint32_t>(Mem.load(MailboxAddr, 4));
    if (Posted == 0)
      return;
    Mem.store(MailboxAddr, 4, 0);
    uint32_t FaultWord = Posted - 1;
    auto It = PatchedOriginals.find(FaultWord);
    if (It == PatchedOriginals.end())
      return;
    Code.patch(FaultWord, It->second.first);
    if (Translation *T = findOwner(FaultWord))
      T->MemWordToGuestPc[FaultWord] = It->second.second;
    PatchedOriginals.erase(It);
    MonitorCycles += Cost.ChainPatchCycles; // one store into the cache
    ++Reverts;
  }

  // -- state sync ----------------------------------------------------------

  void syncToHost() {
    for (unsigned I = 0; I != guest::NumGPR; ++I)
      Machine.R[hostGpr(I)] = Cpu.Gpr[I];
    for (unsigned I = 0; I != guest::NumQReg; ++I)
      Machine.R[hostQ(I)] = Cpu.Qreg[I];
    Machine.R[RegChecksum] = Cpu.Checksum;
  }

  void syncToGuest() {
    for (unsigned I = 0; I != guest::NumGPR; ++I)
      Cpu.Gpr[I] = static_cast<uint32_t>(Machine.R[hostGpr(I)]);
    for (unsigned I = 0; I != guest::NumQReg; ++I)
      Cpu.Qreg[I] = Machine.R[hostQ(I)];
    Cpu.Checksum = Machine.R[RegChecksum];
  }

  // -- chaining ------------------------------------------------------------

  void maybeChain(const ExitInfo &E) {
    if (!Config.EnableChaining)
      return;
    Translation *Owner = findOwner(E.SrvWord);
    if (!Owner || !Owner->Valid)
      return;
    for (ExitSite &X : Owner->Exits) {
      if (X.SrvWord != E.SrvWord)
        continue;
      if (!X.Direct || X.Chained)
        return;
      auto TIt = BlockMap.find(X.TargetGuestPc);
      if (TIt == BlockMap.end() || !TIt->second->Valid)
        return;
      Translation *Target = TIt->second;
      int64_t Disp = static_cast<int64_t>(Target->EntryWord) -
                     (static_cast<int64_t>(X.SrvWord) + 1);
      if (Disp < -(1 << 20) || Disp >= (1 << 20))
        return; // out of branch range; keep going through the monitor
      Code.patch(X.SrvWord,
                 encodeHost(brInst(HostOp::Br, RegZero,
                                   static_cast<int32_t>(Disp))));
      X.Chained = true;
      Target->IncomingChains.push_back(X.SrvWord);
      ChainCycles += Cost.ChainPatchCycles;
      ++Chains;
      return;
    }
  }

  // -- members ---------------------------------------------------------------

  MdaPolicy &Policy;
  const EngineConfig &Config;
  const CostModel &Cost;

  guest::GuestMemory Mem;
  guest::GuestCPU Cpu;
  guest::Interpreter Interp;
  CodeSpace Code;
  MemoryHierarchy Hier;
  HostMachine Machine;
  Translator Trans;
  InterpProfiler Profiler;

  std::unordered_map<uint32_t, Translation *> BlockMap;
  std::unordered_map<uint32_t, uint32_t> Heat;
  std::deque<Translation> Store;
  /// Host-word region -> owning translation (bodies and stubs).
  std::map<uint32_t, std::pair<uint32_t, Translation *>> Regions;

  /// Adaptive-revert runtime state (paper Fig. 8, right).
  static constexpr uint32_t MailboxAddr = guest::layout::RuntimeBase;
  uint32_t NextCounterCell = guest::layout::RuntimeBase + 8;
  /// Adaptively patched word -> (original word, guest inst PC).
  std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>>
      PatchedOriginals;

  uint64_t InterpCycles = 0;
  uint64_t TranslateCycles = 0;
  uint64_t MonitorCycles = 0;
  uint64_t ChainCycles = 0;
  uint64_t InterpInsts = 0;
  uint64_t InterpRefs = 0;
  uint64_t InterpBlocks = 0;
  uint64_t Translations = 0;
  uint64_t Supersedes = 0;
  uint64_t Patches = 0;
  uint64_t Chains = 0;
  uint64_t Reverts = 0;
  uint64_t Flushes = 0;
  uint64_t NativeEntries = 0;
  bool PendingFlush = false;
};

RunResult Session::run() {
  RunResult R;
  uint64_t Steps = 0;
  bool Guarded = false;

  while (!Cpu.Halted) {
    if (++Steps > Config.MaxMonitorSteps) {
      Guarded = true;
      break;
    }

    if (PendingFlush)
      flushAll();

    auto It = BlockMap.find(Cpu.Pc);
    Translation *T =
        (It != BlockMap.end() && It->second->Valid) ? It->second : nullptr;

    if (T) {
      syncToHost();
      MonitorCycles += Cost.MonitorDispatchCycles;
      ++NativeEntries;
      ExitInfo E = Machine.run(T->EntryWord);
      syncToGuest();
      if (E.K == ExitInfo::Halt) {
        Cpu.Halted = true;
        break;
      }
      if (E.K == ExitInfo::Limit) {
        Guarded = true;
        break;
      }
      Cpu.Pc = E.GuestPc;
      pollRevertMailbox();
      maybeChain(E);
      continue;
    }

    uint32_t H = ++Heat[Cpu.Pc];
    if (H > Policy.hotThreshold()) {
      installTranslation(Cpu.Pc, /*Generation=*/0, /*AllowFlush=*/true);
      continue; // dispatch natively on the next iteration
    }

    // Phase 1: interpret one dynamic basic block, profiling as we go.
    uint64_t N = Interp.stepBlock(Cpu);
    InterpInsts += N;
    ++InterpBlocks;
    InterpCycles += N * Cost.InterpCyclesPerInst;
  }

  R.Completed = !Guarded && Cpu.Halted;
  R.FinalCpu = Cpu;
  R.Checksum = Cpu.Checksum;
  // The BT-runtime scratch cells (revert counters) are not part of the
  // guest-visible state: zero them so the memory hash is comparable
  // with a pure-interpreter run.
  if (NextCounterCell > guest::layout::RuntimeBase)
    std::memset(Mem.data() + guest::layout::RuntimeBase, 0,
                NextCounterCell - guest::layout::RuntimeBase);
  R.MemoryHash = fnv1a(Mem.data(), Mem.size());
  R.Cycles = Machine.Cycles + InterpCycles + TranslateCycles +
             MonitorCycles + ChainCycles;

  CounterBag &C = R.Counters;
  C.add("cycles.total", R.Cycles);
  C.add("cycles.native", Machine.Cycles);
  C.add("cycles.interp", InterpCycles);
  C.add("cycles.translate", TranslateCycles);
  C.add("cycles.monitor", MonitorCycles);
  C.add("cycles.chain", ChainCycles);
  C.add("cycles.traps",
        Machine.Faults * Cost.TrapCycles +
            Machine.Fixups * Cost.FixupExtraCycles +
            Patches * Cost.PatchExtraCycles);
  C.add("interp.insts", InterpInsts);
  C.add("interp.refs", InterpRefs);
  C.add("interp.blocks", InterpBlocks);
  C.add("host.insts", Machine.Instructions);
  C.add("host.loads", Machine.Loads);
  C.add("host.stores", Machine.Stores);
  C.add("host.l1i_misses", Hier.L1I.misses());
  C.add("host.l1d_misses", Hier.L1D.misses());
  C.add("host.l2_misses", Hier.L2.misses());
  C.add("dbt.translations", Translations);
  C.add("dbt.supersedes", Supersedes);
  C.add("dbt.patches", Patches);
  C.add("dbt.chains", Chains);
  C.add("dbt.reverts", Reverts);
  C.add("dbt.flushes", Flushes);
  C.add("dbt.native_entries", NativeEntries);
  C.add("dbt.fault_traps", Machine.Faults);
  C.add("dbt.fixups", Machine.Fixups);
  C.add("dbt.code_words", Code.size());
  return R;
}

} // namespace

Engine::Engine(const guest::GuestImage &Image, MdaPolicy &Policy,
               EngineConfig Config)
    : Image(Image), Policy(Policy), Config(Config) {}

RunResult Engine::run() {
  assert(!Used && "Engine::run may be called once");
  Used = true;
  Session S(Image, Policy, Config);
  return S.run();
}
