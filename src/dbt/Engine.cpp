//===- dbt/Engine.cpp -----------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Engine façade: one Engine::run constructs one per-run
/// ExecutionContext (which holds ALL mutable run state — see
/// docs/SERVING.md for the serving-architecture split) and executes it.
/// Shared leaf utilities (fnv1a, RunError names) live here too.
///
//===----------------------------------------------------------------------===//

#include "dbt/Engine.h"

#include "dbt/ExecutionContext.h"

#include <cstdio>
#include <cstdlib>

using namespace mdabt;
using namespace mdabt::dbt;

uint64_t mdabt::dbt::fnv1a(const uint8_t *Bytes, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I != Size; ++I) {
    H ^= Bytes[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

const char *mdabt::dbt::runErrorName(RunError E) {
  switch (E) {
  case RunError::None:
    return "none";
  case RunError::MonitorStepLimit:
    return "monitor-step-limit";
  case RunError::TrapStorm:
    return "trap-storm";
  case RunError::PatchFailed:
    return "patch-failed";
  case RunError::TranslationFailed:
    return "translation-failed";
  case RunError::CacheThrash:
    return "cache-thrash";
  case RunError::VerifyFailed:
    return "verify-failed";
  case RunError::BudgetTranslations:
    return "budget-translations";
  case RunError::BudgetCodeBytes:
    return "budget-code-bytes";
  case RunError::BudgetChurn:
    return "budget-churn";
  }
  return "unknown";
}

const char *mdabt::dbt::aotModeName(AotMode M) {
  switch (M) {
  case AotMode::Off:
    return "off";
  case AotMode::Full:
    return "full";
  case AotMode::Hybrid:
    return "hybrid";
  }
  return "unknown";
}

MdaPolicy::~MdaPolicy() = default;

Engine::Engine(const guest::GuestImage &Image, MdaPolicy &Policy,
               EngineConfig Config)
    : Image(Image), Policy(Policy), Config(Config) {}

RunResult Engine::run() {
  if (Used) {
    // A second run would silently reuse policy state already specialized
    // by the first; that has produced corrupt figures before.  Hard
    // error in every build mode, not just under assert.
    std::fprintf(stderr, "mdabt fatal: Engine::run() called twice; one "
                         "Engine performs exactly one run\n");
    std::abort();
  }
  Used = true;
  ExecutionContext Ctx(Image, Policy, Config);
  return Ctx.run();
}
