//===- dbt/Translation.h - Translated-block records ------------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bookkeeping for one translated basic block: where its host code lives,
/// its exit sites (for block chaining), the incoming chain links that must
/// be undone if the block is invalidated, the mapping from trapping host
/// memory words back to guest instruction PCs (consumed by the
/// misalignment exception handler), and fault counters driving the
/// retranslation policy of paper Fig. 7.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_TRANSLATION_H
#define MDABT_DBT_TRANSLATION_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mdabt {
namespace dbt {

/// How the translator renders one guest memory operation (paper
/// Table II's configuration space).
enum class MemPlan {
  Normal,       ///< single host memory op; traps if misaligned
  Inline,       ///< the MDA code sequence, inline
  MultiVersion, ///< alignment check selecting between both (Fig. 8)
  /// Single host memory op with *no* trap exposure bookkeeping: the
  /// static alignment analysis proved the access can never misalign, so
  /// the engine does not register the word as a potential fault site
  /// and no MDA machinery (stub, multi-version, retranslation) can ever
  /// attach to it.  Only the engine's analysis wrapper produces this;
  /// policies never see or return it.
  Elide,
};

struct Translation;

/// Words per inline-cache way at an indirect block exit
/// (EngineConfig::InlineCaches).  Layout, in code-cache words from the
/// way's first word:
///
///   +0  guard:  disabled = `br +5` (skip the way);
///               filled   = `ldah RegScratch1, hi(tag)(r31)`
///   +1  `lda RegScratch1, lo(tag)(RegScratch1)`
///   +2  `zextl RegScratch1, RegScratch1`   (tag == zext32 guest PC)
///   +3  `cmpeq RegExitPc, RegScratch1, RegScratch2`
///   +4  `beq RegScratch2, +1`              (mismatch: next way / exit)
///   +5  `br <target block entry>`
///
/// The translator emits every way disabled (guard branch + nop filler);
/// the monitor fills interior words first and the guard last, so a
/// half-written way is never executable.  Scratch registers are dead
/// across block boundaries, so a hit may clobber them freely.
inline constexpr uint32_t IcWayWords = 6;

/// One way of an indirect-exit inline cache.
struct IcWay {
  uint32_t Begin = 0; ///< guard word (first word of the way)
  bool Filled = false;
  /// Quarantined: a disable patch failed under fault injection and the
  /// way's final branch may still target a dead (but intact) entry.
  /// Excluded from verification until refilled or flushed.
  bool Stale = false;
  uint32_t TargetEntry = 0;   ///< cached target's host entry word
  uint32_t TargetGuestPc = 0; ///< cached target's guest PC (the tag)
};

/// The inline cache attached to one indirect exit site.
struct IcSite {
  uint32_t SrvWord = 0; ///< the Srv Exit word the ways fall back to
  std::vector<IcWay> Ways;
  uint32_t NextVictim = 0; ///< round-robin eviction cursor
};

/// Back-reference from a cached target block to the way that branches
/// to it, so invalidation can take the way out of service
/// (IncomingChains-style bookkeeping, extended to inline caches).
struct IcWayRef {
  Translation *Owner = nullptr;
  uint32_t Site = 0; ///< index into Owner->IcSites
  uint32_t Way = 0;  ///< index into IcSites[Site].Ways
};

/// Block-level translation options (beyond the per-instruction plan).
struct TranslationOpts {
  /// Multi-version code at basic-block granularity (paper section IV-D:
  /// "most of MDAs occurred in hot loops and the addresses of MDAs
  /// usually followed the same pattern ... generate multi-version code
  /// based on basic-block granularity").  One alignment check at the
  /// first multi-version site selects between a copy of the block tail
  /// with plain memory ops and a copy with inline MDA sequences.  The
  /// plain copy remains guarded by the exception handler, so a site that
  /// defies the shared-pattern assumption is still handled correctly.
  bool BlockMultiVersion = false;
  /// Inline-cache ways to emit at each indirect block exit (0 = none,
  /// clamped by the engine to 1..4 when EngineConfig::InlineCaches is
  /// set).  Ways are emitted disabled; the monitor fills them.
  unsigned IcWays = 0;
  /// Enabled fusion-rule mask (dbt/FusionRules.h; bit i enables rule
  /// id i).  0 disables peephole fusion entirely.
  uint32_t FusionMask = 0;
};

/// One fused multi-guest-instruction host sequence (dbt/FusionRules.h).
/// The core range [Begin, End) covers the translator-final fused words
/// — address arithmetic and memory/ALU/branch ops, but *not* the exit
/// materialization that may follow a fused compare-branch (exit words
/// are chained/patched by the monitor).  HostVerifier re-checks the
/// captured words byte-exactly (invariant 9), skipping words the
/// exception handler has patched to MDA stubs.
struct FusedSite {
  uint8_t Rule = 0;        ///< FusionRuleId
  uint32_t Begin = 0;      ///< first host word of the fused core
  uint32_t End = 0;        ///< one past the fused core
  uint32_t GuestPc = 0;    ///< PC of the first fused guest instruction
  uint8_t GuestLen = 0;    ///< guest instructions consumed
  uint32_t SavedWords = 0; ///< estimated host words saved vs unfused
  /// Word values of [Begin, End), captured after label resolution.
  std::vector<uint32_t> Words;
};

/// Episode-stop resume point for a guest store (SMC coherence).  When
/// a store executed from inside a translation invalidates that very
/// translation (the patcher and the patched code were fused into one
/// superblock, or a block rewrites its own bytes), the engine cannot
/// let the episode keep running the stale body.  It arms a machine
/// stop at EndWord — the first host word after the storing guest
/// instruction's lowering — and redispatches at ResumePc, so the
/// rewrite takes effect at the next guest instruction, exactly like
/// the interpreter.
struct SmcResume {
  uint32_t EndWord = 0;  ///< first host word after the instruction
  uint32_t ResumePc = 0; ///< guest PC to redispatch at
};

/// One block-exit service call, patchable into a direct chain.
struct ExitSite {
  uint32_t SrvWord = 0;      ///< word index of the Srv Exit instruction
  uint32_t TargetGuestPc = 0;
  bool Direct = false; ///< compile-time-known target (chainable)
  bool Chained = false;
};

/// One translated guest basic block.
struct Translation {
  uint32_t GuestPc = 0;
  uint32_t EntryWord = 0;
  uint32_t EndWord = 0; ///< one past the block body
  std::vector<ExitSite> Exits;
  /// Host words of *other* blocks' exit branches chained to this entry;
  /// restored to Srv Exit when this block is invalidated.
  std::vector<uint32_t> IncomingChains;
  /// Host word of each trapping-capable memory op -> guest inst PC.
  std::unordered_map<uint32_t, uint32_t> MemWordToGuestPc;
  /// Every host word that performs a guest store (plain op, each word
  /// of an inline MDA sequence, multi-version arms, the Call push, and
  /// — registered at stub-emission time — MDA stub words) -> where to
  /// resume if that store invalidates this translation mid-episode.
  std::unordered_map<uint32_t, SmcResume> StoreResume;
  /// Number of guest instructions translated (for cost accounting).
  uint32_t GuestInsts = 0;
  /// Misalignment traps taken inside this translation.
  uint32_t FaultCount = 0;
  /// Patched (stub-redirected) words, to avoid double patching.
  std::vector<uint32_t> PatchedWords;
  /// Retranslation generation of this block (0 = first translation).
  uint32_t Generation = 0;
  /// False once superseded by a rearranged/retranslated version.
  bool Valid = true;
  /// Inline caches at this translation's indirect exits (one per
  /// indirect ExitSite, in emission order; empty when IcWays == 0).
  std::vector<IcSite> IcSites;
  /// Ways in *other* translations whose final branch targets this
  /// entry; taken out of service when this block is invalidated
  /// (the inline-cache analogue of IncomingChains).
  std::vector<IcWayRef> IncomingIcWays;
  /// Policy-intent memory plan per guest instruction PC (mem ops of
  /// size >= 2 only), recorded at translation time so superblock
  /// re-emission reproduces the exact MDA treatment of every site
  /// without re-consulting the (stateful) policy.
  std::unordered_map<uint32_t, MemPlan> PlanByPc;
  /// True for a superblock/trace spanning several guest blocks.
  bool IsTrace = false;
  /// Head-first guest PCs of a trace's constituent blocks (empty for
  /// plain block translations).
  std::vector<uint32_t> Constituents;
  /// Half-open guest byte ranges whose bytes this translation compiled
  /// (one per constituent block, deduplicated).  Filled by the
  /// translator; the engine registers them with the guest memory's
  /// write barrier so a store into any of them invalidates this
  /// translation (self-modifying-code coherence).
  std::vector<std::pair<uint32_t, uint32_t>> GuestRanges;
  /// The engine's guest-store epoch when this translation was
  /// installed.  HostVerifier invariant: no byte of a live
  /// translation's GuestRanges may carry a dirty epoch newer than this.
  uint64_t BornEpoch = 0;
  /// Fused guest-idiom sequences in this translation, in emission
  /// order (empty when TranslationOpts::FusionMask was 0).
  std::vector<FusedSite> FusedSites;
  /// Instantiated from a static AOT pre-translation unit
  /// (EngineConfig::Aot); HostVerifier holds such blocks to the
  /// recovered-reachable-set invariant (check 10).
  bool AotInstalled = false;
};

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_TRANSLATION_H
