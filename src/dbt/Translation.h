//===- dbt/Translation.h - Translated-block records ------------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bookkeeping for one translated basic block: where its host code lives,
/// its exit sites (for block chaining), the incoming chain links that must
/// be undone if the block is invalidated, the mapping from trapping host
/// memory words back to guest instruction PCs (consumed by the
/// misalignment exception handler), and fault counters driving the
/// retranslation policy of paper Fig. 7.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_TRANSLATION_H
#define MDABT_DBT_TRANSLATION_H

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mdabt {
namespace dbt {

/// How the translator renders one guest memory operation (paper
/// Table II's configuration space).
enum class MemPlan {
  Normal,       ///< single host memory op; traps if misaligned
  Inline,       ///< the MDA code sequence, inline
  MultiVersion, ///< alignment check selecting between both (Fig. 8)
  /// Single host memory op with *no* trap exposure bookkeeping: the
  /// static alignment analysis proved the access can never misalign, so
  /// the engine does not register the word as a potential fault site
  /// and no MDA machinery (stub, multi-version, retranslation) can ever
  /// attach to it.  Only the engine's analysis wrapper produces this;
  /// policies never see or return it.
  Elide,
};

/// Block-level translation options (beyond the per-instruction plan).
struct TranslationOpts {
  /// Multi-version code at basic-block granularity (paper section IV-D:
  /// "most of MDAs occurred in hot loops and the addresses of MDAs
  /// usually followed the same pattern ... generate multi-version code
  /// based on basic-block granularity").  One alignment check at the
  /// first multi-version site selects between a copy of the block tail
  /// with plain memory ops and a copy with inline MDA sequences.  The
  /// plain copy remains guarded by the exception handler, so a site that
  /// defies the shared-pattern assumption is still handled correctly.
  bool BlockMultiVersion = false;
};

/// One block-exit service call, patchable into a direct chain.
struct ExitSite {
  uint32_t SrvWord = 0;      ///< word index of the Srv Exit instruction
  uint32_t TargetGuestPc = 0;
  bool Direct = false; ///< compile-time-known target (chainable)
  bool Chained = false;
};

/// One translated guest basic block.
struct Translation {
  uint32_t GuestPc = 0;
  uint32_t EntryWord = 0;
  uint32_t EndWord = 0; ///< one past the block body
  std::vector<ExitSite> Exits;
  /// Host words of *other* blocks' exit branches chained to this entry;
  /// restored to Srv Exit when this block is invalidated.
  std::vector<uint32_t> IncomingChains;
  /// Host word of each trapping-capable memory op -> guest inst PC.
  std::unordered_map<uint32_t, uint32_t> MemWordToGuestPc;
  /// Number of guest instructions translated (for cost accounting).
  uint32_t GuestInsts = 0;
  /// Misalignment traps taken inside this translation.
  uint32_t FaultCount = 0;
  /// Patched (stub-redirected) words, to avoid double patching.
  std::vector<uint32_t> PatchedWords;
  /// Retranslation generation of this block (0 = first translation).
  uint32_t Generation = 0;
  /// False once superseded by a rearranged/retranslated version.
  bool Valid = true;
};

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_TRANSLATION_H
