//===- dbt/Policy.h - MDA handling policy interface ------------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strategy interface separating the DBT *mechanisms* (interpret,
/// translate, patch, supersede — owned by the engine) from the MDA
/// handling *policies* the paper evaluates (direct, static profiling,
/// dynamic profiling, exception handling, DPEH and its retranslation /
/// multi-version variants — implemented in src/mda).
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_POLICY_H
#define MDABT_DBT_POLICY_H

#include "dbt/Translation.h"
#include "guest/GuestInst.h"
#include "obs/TraceSink.h"

#include <cstdint>

namespace mdabt {
namespace dbt {

/// Decision returned by MdaPolicy::onFault.
struct FaultDecision {
  /// True: generate an MDA stub in the code cache and patch the faulting
  /// instruction into a branch to it (paper Fig. 5).  False: emulate the
  /// access in the handler and resume — the access will trap again next
  /// time (what pure profiling policies do with residual MDAs).
  bool PatchStub = false;
  /// True: additionally supersede the block with a fresh translation in
  /// which all known-MDA instructions are expanded inline.  With
  /// PatchStub this models code rearrangement (Fig. 6) when requested on
  /// every fault, or retranslation (Fig. 7) when requested at a fault
  /// threshold.
  bool Supersede = false;
  /// True: use the instrumented, revertible stub of paper Fig. 8
  /// (right): it counts aligned executions and asks the monitor to patch
  /// the original instruction back once the access pattern flips back to
  /// aligned.  Only meaningful with PatchStub.
  bool AdaptiveStub = false;
  /// Aligned-execution count that triggers the revert (1..255).
  uint32_t RevertThreshold = 64;
};

/// An MDA handling policy.
class MdaPolicy {
public:
  virtual ~MdaPolicy();

  /// Human-readable mechanism name (paper Table II row).
  virtual const char *name() const = 0;

  /// Heating threshold: a block is interpreted until it has executed
  /// this many times, then translated.  0 translates on first execution
  /// (QEMU/FX!32-style one-phase systems).
  virtual uint32_t hotThreshold() const = 0;

  /// True if translation happens ahead of time (FX!32's "pre-execution"
  /// static translation, paper Fig. 3): the run is not charged
  /// translation cycles.
  virtual bool translationIsOffline() const { return false; }

  /// Block-level translation options (e.g. block-granularity
  /// multi-version code, paper section IV-D).
  virtual TranslationOpts translationOpts() const {
    return TranslationOpts();
  }

  /// Observation hook for every memory access interpreted in phase 1
  /// (the dynamic-profiling information source).
  virtual void onInterpMemAccess(uint32_t InstPc, uint32_t Addr,
                                 unsigned Size, bool IsStore) {
    (void)InstPc;
    (void)Addr;
    (void)Size;
    (void)IsStore;
  }

  /// Translation-time plan for the memory instruction at \p InstPc.
  /// Called again on retranslation, when the policy typically knows more.
  virtual MemPlan planMemoryOp(uint32_t InstPc,
                               const guest::GuestInst &Inst) = 0;

  /// A misalignment trap was delivered for the guest instruction at
  /// \p InstPc inside block \p BlockPc; \p BlockFaultCount is the
  /// block's trap count *including* this one.
  virtual FaultDecision onFault(uint32_t InstPc, uint32_t BlockPc,
                                uint32_t BlockFaultCount) = 0;

  /// The engine's trap-storm watchdog escalated on block \p BlockPc
  /// (degradation rung \p Rung, 1-based: rearrangement, block
  /// retranslation, interpret-only pin).  \p InstPc is the site the
  /// engine is force-inlining in future translations, or 0 when the
  /// whole block is affected.  Policies may fold the site into their
  /// own profiles so later translations agree with the override.
  virtual void onWatchdogEscalation(uint32_t BlockPc, uint32_t InstPc,
                                    uint32_t Rung) {
    (void)BlockPc;
    (void)InstPc;
    (void)Rung;
  }

  /// Observability: the engine binds its tracer (sink + virtual-time
  /// clock) before the run starts so policies can emit policy.* trace
  /// events.  A policy that is never bound holds a disabled tracer and
  /// pays one branch per emit call.
  void bindTracer(const obs::Tracer &T) { Trace = T; }

protected:
  /// Emits policy.* events (see docs/TELEMETRY.md); disabled unless the
  /// engine bound a sink via bindTracer.
  obs::Tracer Trace;
};

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_POLICY_H
