//===- dbt/TranslationService.h - Shared translation serving ---*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide serving layer: a sharded, refcounted translation
/// cache shared by concurrent ExecutionContexts, plus the thin
/// TranslationService front-end engines talk to (docs/SERVING.md).
///
/// Entries are keyed by a content hash over everything that determines
/// the translator's emission for one block or superblock: the guest
/// bytes of every constituent block, the per-site MemPlan sequence the
/// requesting run would use (policy decisions, analysis verdicts and
/// ladder overrides all fold into the plans), and the block-level
/// translation options (multi-version, inline-cache ways).  A hit
/// therefore reproduces *exactly* the host words a fresh translation
/// would emit — per-run architectural results are byte-identical to an
/// isolated engine by construction — and a hostile guest that rewrites
/// its code changes the key, so it can only ever miss, never poison
/// another tenant's entry.
///
/// Cached words are position-independent (all translator-internal
/// control flow is label-relative; exits materialize guest PCs as data)
/// and every piece of metadata is stored relative to the entry word, so
/// a run installs a hit by appending the words at its own arena tail
/// and rebasing the metadata.  Runs mutate only their private copy
/// (chains, stubs, inline-cache fills); the shared entry stays pristine.
///
/// Leases are the cross-tenant safety mechanism: a run acquires a lease
/// per installed translation and releases it when the translation
/// leaves service (invalidate/flush) or the run ends.  Eviction only
/// ever considers unleased entries, so SMC invalidation or a flush
/// storm in one run can never retire an entry another run still holds.
///
/// The cache serializes to a versioned, checksummed artifact
/// (save/load) so a warm fleet start performs no re-translation of
/// known images; a truncated or bit-flipped artifact is rejected whole.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_TRANSLATIONSERVICE_H
#define MDABT_DBT_TRANSLATIONSERVICE_H

#include "obs/TraceSink.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mdabt {
namespace dbt {

/// 128-bit content key of one cached translation (two independent
/// FNV-1a streams over the same key material; see cacheKeyFromBytes).
struct CacheKey {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const CacheKey &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const CacheKey &O) const { return !(*this == O); }
};

/// Hash the serialized key material (guest bytes + plans + options)
/// into a CacheKey.
CacheKey cacheKeyFromBytes(const uint8_t *Bytes, size_t Size);

/// One cached translation: the pristine host words the translator
/// emitted plus every piece of install metadata, stored relative to the
/// entry word so the words can be installed at any arena base.
/// Immutable once published — runs mutate only their private copies.
struct CachedTranslation {
  uint32_t GuestPc = 0;
  uint32_t GuestInsts = 0;
  uint8_t IsTrace = 0;
  /// The emitted host words, [EntryWord, EndWord) at capture time.
  std::vector<uint32_t> Words;

  struct RelExit {
    uint32_t Word = 0; ///< Srv Exit word, entry-relative
    uint32_t TargetGuestPc = 0;
    uint8_t Direct = 0;
  };
  std::vector<RelExit> Exits;
  /// Entry-relative trapping-capable word -> guest inst PC (sorted).
  std::vector<std::pair<uint32_t, uint32_t>> MemWordToGuestPc;
  struct RelResume {
    uint32_t Word = 0;    ///< store-capable word, entry-relative
    uint32_t EndWord = 0; ///< episode-stop word, entry-relative
    uint32_t ResumePc = 0;
  };
  std::vector<RelResume> StoreResume;
  /// Guest inst PC -> MemPlan value, sorted by PC.
  std::vector<std::pair<uint32_t, uint8_t>> PlanByPc;
  struct RelIcSite {
    uint32_t SrvWord = 0; ///< entry-relative
    std::vector<uint32_t> WayBegins;
  };
  std::vector<RelIcSite> IcSites;
  std::vector<uint32_t> Constituents;
  /// Half-open guest byte ranges the translation compiled.
  std::vector<std::pair<uint32_t, uint32_t>> GuestRanges;
  /// Fused peephole sequences (dbt/FusionRules.h), entry-relative.  The
  /// fused cores' reference words are not stored separately: the Words
  /// payload *is* the pristine translator output, so instantiation
  /// re-derives them from [Begin, End).
  struct RelFusedSite {
    uint8_t Rule = 0;
    uint8_t GuestLen = 0;
    uint32_t Begin = 0; ///< entry-relative fused-core start
    uint32_t End = 0;   ///< entry-relative, one past the core
    uint32_t GuestPc = 0;
    uint32_t SavedWords = 0;
  };
  std::vector<RelFusedSite> FusedSites;

  /// Approximate heap footprint, for accounting.
  size_t footprintBytes() const;
};

namespace detail {
/// One shard-resident entry.  Lease count is atomic so release never
/// takes the shard lock.
struct CacheEntry {
  CacheKey Key;
  CachedTranslation T;
  std::atomic<uint64_t> Leases{0};
  std::atomic<uint64_t> Hits{0};
  uint64_t Seq = 0; ///< insertion order within the shard (FIFO evict)
};
} // namespace detail

/// RAII lease on one cache entry.  While any lease is live the entry
/// cannot be evicted; destruction (or release()) decrements the count.
/// Movable, not copyable.
class TranslationLease {
public:
  TranslationLease() = default;
  TranslationLease(TranslationLease &&O) noexcept : E(std::move(O.E)) {}
  TranslationLease &operator=(TranslationLease &&O) noexcept;
  TranslationLease(const TranslationLease &) = delete;
  TranslationLease &operator=(const TranslationLease &) = delete;
  ~TranslationLease();

  explicit operator bool() const { return E != nullptr; }
  /// The leased translation.  Only valid while the lease is held.
  const CachedTranslation &get() const { return E->T; }
  /// Drop the lease early (idempotent).
  void release();

private:
  friend class SharedTranslationCache;
  explicit TranslationLease(std::shared_ptr<detail::CacheEntry> E)
      : E(std::move(E)) {}
  std::shared_ptr<detail::CacheEntry> E;
};

/// The sharded, refcounted translation cache.  All methods are
/// thread-safe; each shard has its own mutex and open-addressing is
/// left to std::unordered_map keyed by CacheKey::Lo (full 128-bit key
/// compared on probe).
class SharedTranslationCache {
public:
  struct Config {
    /// Lock shards (clamped to 1..64).
    uint32_t Shards = 8;
    /// Entry-count capacity; 0 = unbounded.  On overflow the inserting
    /// shard evicts its oldest *unleased* entries (leased entries are
    /// never evicted, so capacity may be exceeded transiently while
    /// every entry is leased).
    uint64_t MaxEntries = 0;
  };

  SharedTranslationCache() : SharedTranslationCache(Config{8, 0}) {}
  explicit SharedTranslationCache(Config C);

  /// Look up \p Key; on a hit returns a live lease (and counts a hit),
  /// on a miss returns an empty lease (and counts a miss).
  TranslationLease acquire(const CacheKey &Key);

  /// Publish a freshly translated entry and lease it.  If another run
  /// raced us to the same key, the first writer wins and its entry is
  /// leased instead (the loser's payload is dropped — both payloads are
  /// byte-identical by construction of the key).  \p Evicted, when
  /// non-null, receives the number of entries evicted to make room.
  TranslationLease publish(const CacheKey &Key, CachedTranslation T,
                           uint64_t *Evicted = nullptr);

  // -- stats (monotonic process-lifetime counters) ---------------------
  uint64_t hits() const { return StatHits.load(); }
  uint64_t misses() const { return StatMisses.load(); }
  uint64_t inserts() const { return StatInserts.load(); }
  uint64_t evictions() const { return StatEvictions.load(); }
  /// Entries currently resident (takes every shard lock).
  uint64_t entries() const;
  /// Sum of live lease counts over resident entries (takes every shard
  /// lock).  Zero once every run has released its translations.
  uint64_t liveLeases() const;
  /// Approximate resident payload bytes (takes every shard lock).
  uint64_t footprintBytes() const;

  // -- disk persistence -------------------------------------------------
  /// Serialize every resident entry to \p Path as a versioned,
  /// checksummed artifact.  Deterministic: entries are written in key
  /// order.  Returns false (with \p Err set) on I/O failure.
  bool save(const std::string &Path, std::string *Err = nullptr) const;
  /// Load an artifact produced by save() and merge its entries
  /// (first-writer-wins against resident entries).  The whole file is
  /// validated first — magic, version, payload checksum, and per-entry
  /// structural bounds — and rejected atomically on any mismatch: a
  /// truncated or bit-flipped artifact changes nothing and returns
  /// false with \p Err describing the defect.  \p Loaded, when
  /// non-null, receives the number of entries merged.
  bool load(const std::string &Path, uint64_t *Loaded = nullptr,
            std::string *Err = nullptr);

  /// On-disk format version written by save().  Version 2 appended the
  /// per-entry fused-site records (CachedTranslation::RelFusedSite).
  static constexpr uint32_t FormatVersion = 2;

private:
  struct Shard {
    mutable std::mutex M;
    std::vector<std::shared_ptr<detail::CacheEntry>> Entries;
    uint64_t NextSeq = 0;
  };

  Shard &shardFor(const CacheKey &Key) {
    return Shards[Key.Lo % Shards.size()];
  }
  const Shard &shardFor(const CacheKey &Key) const {
    return Shards[Key.Lo % Shards.size()];
  }
  /// Insert under the shard lock; returns the resident entry (existing
  /// one on a key race) and bumps \p Evicted per eviction.
  std::shared_ptr<detail::CacheEntry>
  insertLocked(Shard &S, const CacheKey &Key, CachedTranslation &&T,
               uint64_t &Evicted);

  Config Cfg;
  std::vector<Shard> Shards;
  uint64_t PerShardCap = 0; ///< ceil(MaxEntries / Shards), 0 = unbounded
  std::atomic<uint64_t> StatHits{0};
  std::atomic<uint64_t> StatMisses{0};
  std::atomic<uint64_t> StatInserts{0};
  std::atomic<uint64_t> StatEvictions{0};
};

/// The process-wide serving front-end: owns the shared cache and is the
/// single object an EngineConfig points at (EngineConfig::Service).
/// Thread-safe; must outlive every engine using it.
class TranslationService {
public:
  struct Config {
    SharedTranslationCache::Config Cache;
  };

  explicit TranslationService(Config C = Config()) : C(C.Cache) {}

  TranslationLease acquire(const CacheKey &Key) { return C.acquire(Key); }
  TranslationLease publish(const CacheKey &Key, CachedTranslation T,
                           uint64_t *Evicted = nullptr) {
    return C.publish(Key, std::move(T), Evicted);
  }

  /// Persist the cache to \p Path (see SharedTranslationCache::save).
  bool save(const std::string &Path, std::string *Err = nullptr) const {
    return C.save(Path, Err);
  }
  /// Warm the cache from \p Path.  On success emits one `cache.load`
  /// event (A = entries merged, B = resident cache footprint in bytes
  /// after the merge) into \p Sink when provided; a corrupt artifact is
  /// rejected whole and nothing is emitted.
  bool load(const std::string &Path, obs::TraceSink *Sink = nullptr,
            std::string *Err = nullptr);

  SharedTranslationCache &cache() { return C; }
  const SharedTranslationCache &cache() const { return C; }

private:
  SharedTranslationCache C;
};

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_TRANSLATIONSERVICE_H
