//===- dbt/AotTranslator.h - Static AOT pre-translation --------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ahead-of-time pre-translator behind `EngineConfig::Aot`
/// (DESIGN.md section 16): before the first guest instruction runs, it
/// statically translates every block the CFG-recovery pass
/// (`analysis/CfgRecovery.h`) proved reachable, using the same plan
/// chain, translation options and fusion rules the demand path would
/// use — so each pre-translated payload is byte-for-byte what a demand
/// translation of the same bytes would emit, under the same
/// `translationContentKey`.  When a `TranslationService` is attached,
/// payloads are acquired from / published into the shared cache under
/// that key, so disk persistence and multi-tenant warm start work
/// unchanged.
///
/// The pre-translator produces pending *units*, not installed code: the
/// owning ExecutionContext instantiates a unit into its private arena
/// either eagerly at load (`AotMode::Full`) or at first dispatch
/// (`AotMode::Hybrid`), and keeps the payload so a capacity flush can
/// re-install without re-translating.  Code the recovery pass could not
/// prove — everything behind an indirect-jump frontier — falls back to
/// the existing two-phase DBT.
///
/// Staleness is tracked pessimistically: a guest store overlapping a
/// pending unit's compiled bytes, a plan revision (supersede, ladder,
/// verdict revocation), or an alignment re-analysis marks units stale,
/// and a stale unit is never installed — the dynamic path re-discovers
/// and re-translates from current bytes and current plans.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_AOTTRANSLATOR_H
#define MDABT_DBT_AOTTRANSLATOR_H

#include "analysis/CfgRecovery.h"
#include "dbt/TranslationService.h"
#include "dbt/Translator.h"
#include "guest/GuestMemory.h"
#include "host/CodeSpace.h"
#include "host/CostModel.h"

#include <cstdint>
#include <map>
#include <vector>

namespace mdabt {
namespace dbt {

/// Statically pre-translates the proven-reachable blocks of one guest
/// image for one run.  Pure over its inputs plus the optional shared
/// cache; owns a scratch code space so pre-translation never touches
/// the run's arena.
class AotTranslator {
public:
  /// One pre-translated block, pending installation.
  struct Unit {
    uint32_t GuestPc = 0;
    CacheKey Key;
    /// Relocatable payload; kept after installation so a capacity
    /// flush can re-install without re-translating.
    CachedTranslation Payload;
    /// Held for the whole run when serving-attached, so eviction can
    /// never retire the entry while this run may still install it.
    TranslationLease Lease;
    bool FromCache = false;
    /// Bytes overwritten or plans revised: never install.
    bool Stale = false;
  };

  struct Stats {
    uint64_t RecoveredBlocks = 0; ///< statically proven blocks
    uint64_t FrontierSites = 0;   ///< Unknown-frontier records
    uint64_t Translated = 0;      ///< locally translated at startup
    uint64_t FromCache = 0;       ///< acquired from the shared cache
    uint64_t GuestInsts = 0;      ///< across all pre-translated units
    uint64_t StaleDropped = 0;    ///< units retired before/after install
    /// Modeled translate cycles of the startup phase (locally
    /// translated units only; cache acquisitions cost install cycles at
    /// installation time, exactly like the demand serving path).
    uint64_t StartupTranslateCycles = 0;
  };

  /// \p Cfg must outlive this object (the ExecutionContext owns both).
  AotTranslator(const guest::GuestMemory &Mem,
                const analysis::CfgResult &Cfg, Translator::PlanFn Plan,
                TranslationOpts Opts, TranslationService *Service,
                const host::CostModel &Cost);

  /// Statically translate every proven-reachable block, in PC order
  /// (deterministic regardless of discovery order or job count).
  void pretranslateAll();

  Unit *find(uint32_t Pc);
  const std::map<uint32_t, Unit> &units() const { return Units; }

  /// A guest store hit [Addr, Addr+Size): mark every overlapping
  /// non-stale unit stale.  Returns the PCs staled by this store.
  std::vector<uint32_t> noteGuestStore(uint32_t Addr, uint32_t Size);

  /// A plan revision retired the translation at \p Pc (supersede,
  /// degradation ladder, verdict revocation): stale its unit so the
  /// old plan can never be re-installed.  Returns true if a live unit
  /// was staled.
  bool drop(uint32_t Pc);

  /// Alignment re-analysis invalidated every statically computed plan:
  /// stale all pending units.  Returns the PCs staled.
  std::vector<uint32_t> dropAll();

  const Stats &stats() const { return S; }

private:
  const guest::GuestMemory &Mem;
  const analysis::CfgResult &Cfg;
  Translator::PlanFn Plan;
  TranslationOpts Opts;
  TranslationService *Service;
  const host::CostModel &Cost;
  /// Private emission arena: payloads are captured out of it in
  /// relocatable form, so it never aliases the run's code space.
  host::CodeSpace Scratch;
  Translator Trans;
  std::map<uint32_t, Unit> Units;
  Stats S;
};

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_AOTTRANSLATOR_H
