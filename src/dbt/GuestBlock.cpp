//===- dbt/GuestBlock.cpp -------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "dbt/GuestBlock.h"

#include "guest/Encoding.h"

#include <cassert>

using namespace mdabt;
using namespace mdabt::dbt;

GuestBlock mdabt::dbt::discoverBlock(const guest::GuestMemory &Mem,
                                     uint32_t Pc, size_t MaxInsts) {
  GuestBlock Block;
  Block.StartPc = Pc;
  uint32_t Cur = Pc;
  while (Block.Insts.size() < MaxInsts) {
    guest::GuestInst I;
    [[maybe_unused]] bool Ok = guest::decode(Mem.data(), Mem.size(), Cur, I);
    assert(Ok && "undecodable guest instruction during block discovery");
    Block.Insts.push_back(I);
    Block.InstPcs.push_back(Cur);
    Cur += I.Length;
    if (guest::isBlockTerminator(I.Op))
      break;
  }
  assert(!Block.Insts.empty() &&
         guest::isBlockTerminator(Block.Insts.back().Op) &&
         "block discovery hit the instruction bound before a terminator");
  return Block;
}
