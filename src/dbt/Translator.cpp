//===- dbt/Translator.cpp -------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "dbt/Translator.h"

#include "dbt/FusionRules.h"
#include "host/HostAssembler.h"
#include "host/MdaSequences.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

using namespace mdabt;
using namespace mdabt::dbt;
using namespace mdabt::host;

namespace {

/// Host memory opcode implementing a guest memory opcode.
HostOp hostMemOp(guest::Opcode Op) {
  switch (Op) {
  case guest::Opcode::Ldb:
    return HostOp::Ldbu;
  case guest::Opcode::Ldw:
    return HostOp::Ldwu;
  case guest::Opcode::Ldl:
    return HostOp::Ldl;
  case guest::Opcode::Ldq:
    return HostOp::Ldq;
  case guest::Opcode::Stb:
    return HostOp::Stb;
  case guest::Opcode::Stw:
    return HostOp::Stw;
  case guest::Opcode::Stl:
    return HostOp::Stl;
  case guest::Opcode::Stq:
    return HostOp::Stq;
  default:
    assert(false && "not a guest memory opcode");
    return HostOp::Ldl;
  }
}

/// Compare opcode + branch-on-nonzero flag for a guest condition.
struct CondLowering {
  HostOp CmpOp;
  bool BranchIfTrue; ///< branch when the compare result is nonzero
};

CondLowering lowerCond(guest::Cond C) {
  switch (C) {
  case guest::Cond::Eq:
    return {HostOp::Cmpeq, true};
  case guest::Cond::Ne:
    return {HostOp::Cmpeq, false};
  case guest::Cond::Lt:
    return {HostOp::Cmplt32, true};
  case guest::Cond::Ge:
    return {HostOp::Cmplt32, false};
  case guest::Cond::Le:
    return {HostOp::Cmple32, true};
  case guest::Cond::Gt:
    return {HostOp::Cmple32, false};
  case guest::Cond::B:
    return {HostOp::Cmpult, true};
  case guest::Cond::Ae:
    return {HostOp::Cmpult, false};
  }
  assert(false && "bad condition");
  return {HostOp::Cmpeq, true};
}

/// Emit `Dst = Dst <op> Imm` choosing the literal form when possible.
void emitAluImm(HostAssembler &Asm, HostOp Op, uint8_t Dst, int32_t Imm) {
  if (Imm >= 0 && Imm <= 255) {
    Asm.opl(Op, Dst, static_cast<uint8_t>(Imm), Dst);
    return;
  }
  Asm.materialize32(RegScratch1, static_cast<uint32_t>(Imm));
  Asm.op(Op, Dst, RegScratch1, Dst);
}

/// Largest displacement the translator leaves on a memory operand so
/// that Disp + 7 still fits disp16 (required by the MDA sequences and
/// by exception-handler stub generation).
constexpr int32_t MaxMemDisp = 32767 - 8;

/// Materialize the effective address so that a single (Base, Disp)
/// memory operand expresses it.  May emit address arithmetic into the
/// scratch registers.  Guest addresses wrap at 2^32, hence Addl.
struct AddrOperand {
  uint8_t Base;
  int32_t Disp;
};

AddrOperand computeAddress(HostAssembler &Asm, const guest::GuestInst &I) {
  uint8_t Base = hostGpr(I.Reg2);
  int32_t Disp = I.Disp;
  if (I.HasIndex) {
    uint8_t Idx = hostGpr(I.IndexReg);
    if (I.Scale != 0) {
      Asm.opl(HostOp::Sll, Idx, I.Scale, RegScratch0);
      Asm.op(HostOp::Addl, Base, RegScratch0, RegScratch0);
    } else {
      Asm.op(HostOp::Addl, Base, Idx, RegScratch0);
    }
    Base = RegScratch0;
  }
  if (Disp < -32768 || Disp > MaxMemDisp) {
    Asm.materialize32(RegScratch1, static_cast<uint32_t>(Disp));
    Asm.op(HostOp::Addl, Base, RegScratch1, RegScratch0);
    Base = RegScratch0;
    Disp = 0;
  }
  return {Base, Disp};
}

/// How multi-version plans are rendered in the range being emitted:
/// per-instruction (Fig. 8 left), or one of the two block-granularity
/// copies (plain ops in the aligned copy — still exception-handler
/// guarded — and inline sequences in the misaligned copy).
enum class MvMode { PerInst, Plain, Sequences };

/// Emits the body of one guest block into the translation being built.
/// Shared between plain block translation (Translator::translate) and
/// superblock re-emission (Translator::translateTrace); in trace mode
/// (Continues == true) control flow that stays on the trace falls
/// through to the next constituent and off-trace edges branch to shared
/// side-exit labels instead of materializing an exit inline.
struct BodyEmitter {
  BodyEmitter(HostAssembler &Asm, Translation &T, const GuestBlock &Block,
              const Translator::PlanFn &Plan, unsigned IcWays,
              uint32_t FusionMask)
      : Asm(Asm), T(T), Block(Block), Plan(Plan), IcWays(IcWays),
        Matcher(FusionMask) {}

  HostAssembler &Asm;
  Translation &T;
  const GuestBlock &Block;
  const Translator::PlanFn &Plan;
  /// Inline-cache ways to emit before each indirect exit (0 = none).
  unsigned IcWays;
  /// Enabled peephole fusion rules (dbt/FusionRules.h).
  FusionMatcher Matcher;
  /// Raw policy-intent plans memoized per instruction index.  Fusion
  /// matching peeks at plans ahead of emission; the memo keeps the
  /// planning chain (analysis verdicts, policy state, the engine's
  /// elide counters) consulted exactly once per site.  Only populated
  /// when fusion is enabled, so the fusion-off translator consults the
  /// chain exactly as it always has.
  std::unordered_map<size_t, MemPlan> PlanMemo;
  /// Trace mode: this block is a non-last trace constituent and
  /// execution reaching NextPc must fall through into the next one.
  bool Continues = false;
  uint32_t NextPc = 0;
  /// Off-trace exit labels, shared across the trace's constituents so
  /// each unique target gets exactly one side-exit stub.
  std::map<uint32_t, HostAssembler::Label> *SideLabels = nullptr;

  /// Label for the off-trace side exit to guest PC \p Pc.
  HostAssembler::Label side(uint32_t Pc) {
    assert(SideLabels && "side exit outside trace mode");
    auto It = SideLabels->find(Pc);
    if (It != SideLabels->end())
      return It->second;
    HostAssembler::Label L = Asm.newLabel();
    SideLabels->emplace(Pc, L);
    return L;
  }

  /// Direct exit to \p TargetPc.  In trace mode an on-trace target
  /// falls through and an off-trace target branches to its side exit;
  /// otherwise the exit (materialize + Srv) is emitted inline.
  void emitExit(uint32_t TargetPc) {
    if (Continues) {
      if (TargetPc != NextPc)
        Asm.br(side(TargetPc));
      return;
    }
    Asm.materialize32(RegExitPc, TargetPc);
    uint32_t W = Asm.srv(SrvFunc::Exit);
    T.Exits.push_back({W, TargetPc, /*Direct=*/true, /*Chained=*/false});
  }

  /// Indirect exit: RegExitPc already holds the target.  When IcWays is
  /// nonzero, a disabled inline cache (see IcWayWords) is emitted ahead
  /// of the fallback Srv Exit for the monitor to fill.
  void emitIndirectExit() {
    IcSite Site;
    for (unsigned N = 0; N != IcWays; ++N) {
      IcWay Way;
      Way.Begin = Asm.emit(
          brInst(HostOp::Br, RegZero, static_cast<int32_t>(IcWayWords) - 1));
      for (uint32_t K = 1; K != IcWayWords; ++K)
        Asm.op(HostOp::Bis, RegZero, RegZero, RegZero); // nop filler
      Site.Ways.push_back(Way);
    }
    uint32_t W = Asm.srv(SrvFunc::Exit);
    T.Exits.push_back({W, 0, /*Direct=*/false, /*Chained=*/false});
    if (IcWays != 0) {
      Site.SrvWord = W;
      T.IcSites.push_back(std::move(Site));
    }
  }

  /// Record episode-stop metadata for a guest store whose lowering
  /// emitted host words [FirstWord, Asm.pos()): if executing any of
  /// them rewrites code backing this very translation, the engine
  /// stops the episode at Asm.pos() — the first word after the
  /// instruction — and redispatches at \p ResumePc.  Safe to key every
  /// word of the range: the barrier only consults the map for the word
  /// that actually performed the store.
  void recordStoreResume(uint32_t FirstWord, uint32_t ResumePc) {
    uint32_t End = Asm.pos();
    for (uint32_t W = FirstWord; W != End; ++W)
      T.StoreResume[W] = {End, ResumePc};
  }

  /// Plan for the memory instruction at \p Idx under MV rendering mode
  /// \p Mode.  Records the policy-intent plan in Translation::PlanByPc
  /// so superblock re-emission can reproduce it without the policy.
  MemPlan planFor(size_t Idx, MvMode Mode) {
    const guest::GuestInst &Inst = Block.Insts[Idx];
    if (!guest::isMemoryOp(Inst.Op) || guest::accessSize(Inst.Op) < 2)
      return MemPlan::Normal;
    MemPlan P;
    auto It = PlanMemo.find(Idx);
    if (It != PlanMemo.end()) {
      P = It->second;
    } else {
      P = Plan(Block.InstPcs[Idx], Inst);
      if (Matcher.enabled())
        PlanMemo.emplace(Idx, P);
      T.PlanByPc[Block.InstPcs[Idx]] = P;
    }
    if (P == MemPlan::MultiVersion) {
      if (Mode == MvMode::Plain)
        return MemPlan::Normal;
      if (Mode == MvMode::Sequences)
        return MemPlan::Inline;
    }
    return P;
  }

  /// Record one fused sequence whose core words are [Begin, End).  The
  /// word values themselves are captured after label resolution, by the
  /// translate entry points.
  void recordFused(const FusionMatch &M, size_t Idx, uint32_t Begin,
                   uint32_t End) {
    FusedSite F;
    F.Rule = static_cast<uint8_t>(M.Rule);
    F.Begin = Begin;
    F.End = End;
    F.GuestPc = Block.InstPcs[Idx];
    F.GuestLen = static_cast<uint8_t>(M.Length);
    F.SavedWords = M.SavedWords;
    T.FusedSites.push_back(std::move(F));
  }

  /// Baseline lowering of the simple GPR ALU ops a fused window may
  /// contain (the FusionRules slot sets; excludes the
  /// RegScratch0-clobbering Sar/SarI, since a fused shared address
  /// lives there).
  void emitSimpleAlu(const guest::GuestInst &I) {
    switch (I.Op) {
    case guest::Opcode::Add:
      Asm.op(HostOp::Addl, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;
    case guest::Opcode::Sub:
      Asm.op(HostOp::Subl, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;
    case guest::Opcode::And:
      Asm.op(HostOp::And, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;
    case guest::Opcode::Or:
      Asm.op(HostOp::Bis, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;
    case guest::Opcode::Xor:
      Asm.op(HostOp::Xor, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;
    case guest::Opcode::Mul:
      Asm.op(HostOp::Mull, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;
    case guest::Opcode::AddI:
      emitAluImm(Asm, HostOp::Addl, hostGpr(I.Reg1), I.Imm);
      break;
    case guest::Opcode::SubI:
      emitAluImm(Asm, HostOp::Subl, hostGpr(I.Reg1), I.Imm);
      break;
    case guest::Opcode::AndI:
      emitAluImm(Asm, HostOp::And, hostGpr(I.Reg1), I.Imm);
      break;
    case guest::Opcode::OrI:
      emitAluImm(Asm, HostOp::Bis, hostGpr(I.Reg1), I.Imm);
      break;
    case guest::Opcode::XorI:
      emitAluImm(Asm, HostOp::Xor, hostGpr(I.Reg1), I.Imm);
      break;
    case guest::Opcode::MulI:
      emitAluImm(Asm, HostOp::Mull, hostGpr(I.Reg1), I.Imm);
      break;
    case guest::Opcode::ShlI:
      Asm.opl(HostOp::Sll, hostGpr(I.Reg1),
              static_cast<uint8_t>(I.Imm & 31), hostGpr(I.Reg1));
      Asm.op(HostOp::Zextl, RegZero, hostGpr(I.Reg1), hostGpr(I.Reg1));
      break;
    case guest::Opcode::ShrI:
      Asm.opl(HostOp::Srl, hostGpr(I.Reg1),
              static_cast<uint8_t>(I.Imm & 31), hostGpr(I.Reg1));
      break;
    default:
      assert(false && "op not in a fusable slot set");
      break;
    }
  }

  /// Host ALU opcode for a fusable guest reg-reg / reg-imm op.
  static HostOp fusedAluOp(guest::Opcode Op) {
    switch (Op) {
    case guest::Opcode::Add:
    case guest::Opcode::AddI:
      return HostOp::Addl;
    case guest::Opcode::Sub:
    case guest::Opcode::SubI:
      return HostOp::Subl;
    case guest::Opcode::And:
    case guest::Opcode::AndI:
      return HostOp::And;
    case guest::Opcode::Or:
    case guest::Opcode::OrI:
      return HostOp::Bis;
    case guest::Opcode::Xor:
    case guest::Opcode::XorI:
      return HostOp::Xor;
    case guest::Opcode::Mul:
    case guest::Opcode::MulI:
      return HostOp::Mull;
    default:
      assert(false && "op not in a fusable slot set");
      return HostOp::Addl;
    }
  }

  /// Emit the fused lowering for match \p M starting at \p Idx.  Every
  /// covered memory site keeps its own MemWordToGuestPc / StoreResume
  /// registration, so stub patching, SMC episode stops and fault
  /// attribution behave exactly as in the unfused rendering.
  void emitFused(const FusionMatch &M, size_t Idx, MvMode Mode) {
    uint32_t Begin = Asm.pos();
    const guest::GuestInst &I0 = Block.Insts[Idx];
    switch (M.Rule) {
    case FusionRuleId::MovOp: {
      const guest::GuestInst &A = Block.Insts[Idx + 1];
      Asm.op(fusedAluOp(A.Op), hostGpr(I0.Reg2), hostGpr(A.Reg2),
             hostGpr(A.Reg1));
      recordFused(M, Idx, Begin, Asm.pos());
      break;
    }
    case FusionRuleId::MovOpI: {
      const guest::GuestInst &A = Block.Insts[Idx + 1];
      Asm.opl(fusedAluOp(A.Op), hostGpr(I0.Reg2),
              static_cast<uint8_t>(A.Imm), hostGpr(A.Reg1));
      recordFused(M, Idx, Begin, Asm.pos());
      break;
    }
    case FusionRuleId::ImmNeg:
      Asm.opl(I0.Op == guest::Opcode::AddI ? HostOp::Subl : HostOp::Addl,
              hostGpr(I0.Reg1), static_cast<uint8_t>(-I0.Imm),
              hostGpr(I0.Reg1));
      recordFused(M, Idx, Begin, Asm.pos());
      break;
    case FusionRuleId::CmpBr0: {
      const guest::GuestInst &J = Block.Insts[Idx + 1];
      uint32_t JPc = Block.InstPcs[Idx + 1];
      uint8_t R = hostGpr(I0.Reg1);
      // Eq is taken when r == 0, Ne when r != 0; the constraint admits
      // only these (guest GPRs are zero-extended, never negative, so
      // orderings against 0 do not reduce to a register test).
      bool TakenWhenZero = J.CC == guest::Cond::Eq;
      if (Continues) {
        uint32_t TakenPc = J.branchTarget(JPc);
        uint32_t FallPc = J.nextPc(JPc);
        if (TakenPc == NextPc) {
          if (TakenWhenZero)
            Asm.bne(R, side(FallPc));
          else
            Asm.beq(R, side(FallPc));
        } else if (FallPc == NextPc) {
          if (TakenWhenZero)
            Asm.beq(R, side(TakenPc));
          else
            Asm.bne(R, side(TakenPc));
        } else {
          if (TakenWhenZero)
            Asm.beq(R, side(TakenPc));
          else
            Asm.bne(R, side(TakenPc));
          Asm.br(side(FallPc));
        }
        recordFused(M, Idx, Begin, Asm.pos());
        break;
      }
      HostAssembler::Label Taken = Asm.newLabel();
      if (TakenWhenZero)
        Asm.beq(R, Taken);
      else
        Asm.bne(R, Taken);
      // Core ends here: the exits below are monitor-patched (chaining).
      recordFused(M, Idx, Begin, Asm.pos());
      emitExit(J.nextPc(JPc));
      Asm.bind(Taken);
      emitExit(J.branchTarget(JPc));
      break;
    }
    case FusionRuleId::LdOpSt: {
      const guest::GuestInst &St = Block.Insts[Idx + 2];
      uint32_t StPc = Block.InstPcs[Idx + 2];
      AddrOperand A = computeAddress(Asm, I0);
      unsigned Size = guest::accessSize(I0.Op);
      uint8_t Data = hostGpr(I0.Reg1);
      MemPlan PL = planFor(Idx, Mode);
      uint32_t WL = Asm.mem(hostMemOp(I0.Op), Data, A.Disp, A.Base);
      if (Size >= 2 && PL != MemPlan::Elide)
        T.MemWordToGuestPc[WL] = Block.InstPcs[Idx];
      emitSimpleAlu(Block.Insts[Idx + 1]);
      MemPlan PS = planFor(Idx + 2, Mode);
      uint32_t WS = Asm.mem(hostMemOp(St.Op), Data, A.Disp, A.Base);
      if (Size >= 2 && PS != MemPlan::Elide)
        T.MemWordToGuestPc[WS] = StPc;
      recordStoreResume(WS, St.nextPc(StPc));
      recordFused(M, Idx, Begin, Asm.pos());
      break;
    }
    case FusionRuleId::SharedAddr: {
      // One base + index*scale computation shared by the whole run;
      // per-member displacements ride on the memory operands.
      if (I0.Scale != 0) {
        Asm.opl(HostOp::Sll, hostGpr(I0.IndexReg), I0.Scale, RegScratch0);
        Asm.op(HostOp::Addl, hostGpr(I0.Reg2), RegScratch0, RegScratch0);
      } else {
        Asm.op(HostOp::Addl, hostGpr(I0.Reg2), hostGpr(I0.IndexReg),
               RegScratch0);
      }
      for (size_t K = 0; K != M.Length; ++K) {
        const guest::GuestInst &I = Block.Insts[Idx + K];
        uint32_t Pc = Block.InstPcs[Idx + K];
        MemPlan P = planFor(Idx + K, Mode);
        uint8_t Data = (I.Op == guest::Opcode::Ldq ||
                        I.Op == guest::Opcode::Stq)
                           ? hostQ(I.Reg1)
                           : hostGpr(I.Reg1);
        uint32_t W = Asm.mem(hostMemOp(I.Op), Data, I.Disp, RegScratch0);
        if (guest::accessSize(I.Op) >= 2 && P != MemPlan::Elide)
          T.MemWordToGuestPc[W] = Pc;
        if (guest::isStore(I.Op))
          recordStoreResume(W, I.nextPc(Pc));
      }
      recordFused(M, Idx, Begin, Asm.pos());
      break;
    }
    }
  }

  void emitRange(size_t From, size_t To, MvMode Mode) {
  for (size_t Idx = From; Idx != To; ++Idx) {
    const guest::GuestInst &I = Block.Insts[Idx];
    uint32_t Pc = Block.InstPcs[Idx];

    if (Matcher.enabled()) {
      FusionMatch M;
      auto PlanAt = [&](size_t J) { return planFor(J, Mode); };
      if (Matcher.match(Block, Idx, To, PlanAt, M)) {
        emitFused(M, Idx, Mode);
        Idx += M.Length - 1;
        continue;
      }
    }

    switch (I.Op) {
    case guest::Opcode::Nop:
      break;

    case guest::Opcode::Halt:
      Asm.srv(SrvFunc::Halt);
      break;

    case guest::Opcode::Chk:
      Asm.opl(HostOp::Mulq, RegChecksum, 31, RegChecksum);
      Asm.op(HostOp::Addq, RegChecksum, hostGpr(I.Reg1), RegChecksum);
      break;
    case guest::Opcode::QChk:
      Asm.opl(HostOp::Mulq, RegChecksum, 31, RegChecksum);
      Asm.op(HostOp::Addq, RegChecksum, hostQ(I.Reg1), RegChecksum);
      break;

    case guest::Opcode::Ldb:
    case guest::Opcode::Ldw:
    case guest::Opcode::Ldl:
    case guest::Opcode::Ldq:
    case guest::Opcode::Stb:
    case guest::Opcode::Stw:
    case guest::Opcode::Stl:
    case guest::Opcode::Stq: {
      AddrOperand A = computeAddress(Asm, I);
      unsigned Size = guest::accessSize(I.Op);
      bool IsStore = guest::isStore(I.Op);
      uint8_t Data = (I.Op == guest::Opcode::Ldq ||
                      I.Op == guest::Opcode::Stq)
                         ? hostQ(I.Reg1)
                         : hostGpr(I.Reg1);
      MemPlan P = planFor(Idx, Mode);
      if (P == MemPlan::Normal || P == MemPlan::Elide) {
        uint32_t W = Asm.mem(hostMemOp(I.Op), Data, A.Disp, A.Base);
        // An elided (provably-aligned) op is not registered as a fault
        // site: it can never trap, so the fault path must never be able
        // to resolve it.
        if (Size >= 2 && P != MemPlan::Elide)
          T.MemWordToGuestPc[W] = Pc;
        if (IsStore)
          recordStoreResume(W, I.nextPc(Pc));
      } else if (P == MemPlan::Inline) {
        if (IsStore) {
          uint32_t S = Asm.pos();
          emitMdaStore(Asm, Size, Data, A.Base, A.Disp);
          recordStoreResume(S, I.nextPc(Pc));
        } else {
          emitMdaLoad(Asm, Size, Data, A.Base, A.Disp);
        }
      } else {
        // Multi-version code (paper Fig. 8, left): an alignment check
        // selecting between the plain op and the MDA sequence.  When the
        // displacement is a multiple of the access size it cannot change
        // alignment, so the check tests the base register directly (the
        // paper's "and Raddr, #3, Rtemp" form).
        uint8_t CheckReg = A.Base;
        if (A.Disp % static_cast<int32_t>(Size) != 0) {
          Asm.lda(RegMvT0, A.Disp, A.Base);
          CheckReg = RegMvT0;
        }
        Asm.opl(HostOp::And, CheckReg, static_cast<uint8_t>(Size - 1),
                RegMvT1);
        HostAssembler::Label Mda = Asm.newLabel();
        HostAssembler::Label End = Asm.newLabel();
        Asm.bne(RegMvT1, Mda);
        uint32_t PW = Asm.mem(hostMemOp(I.Op), Data, A.Disp, A.Base);
        // (provably aligned: the check above routed misalignment away)
        if (IsStore)
          recordStoreResume(PW, I.nextPc(Pc)); // stop at the br below
        Asm.br(End);
        Asm.bind(Mda);
        if (IsStore) {
          uint32_t S = Asm.pos();
          emitMdaStore(Asm, Size, Data, A.Base, A.Disp);
          recordStoreResume(S, I.nextPc(Pc));
        } else {
          emitMdaLoad(Asm, Size, Data, A.Base, A.Disp);
        }
        Asm.bind(End);
      }
      break;
    }

    case guest::Opcode::Lea: {
      AddrOperand A = computeAddress(Asm, I);
      Asm.lda(hostGpr(I.Reg1), A.Disp, A.Base);
      Asm.op(HostOp::Zextl, RegZero, hostGpr(I.Reg1), hostGpr(I.Reg1));
      break;
    }

    case guest::Opcode::MovRR:
      Asm.mov(hostGpr(I.Reg2), hostGpr(I.Reg1));
      break;
    case guest::Opcode::Add:
      Asm.op(HostOp::Addl, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;
    case guest::Opcode::Sub:
      Asm.op(HostOp::Subl, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;
    case guest::Opcode::And:
      Asm.op(HostOp::And, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;
    case guest::Opcode::Or:
      Asm.op(HostOp::Bis, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;
    case guest::Opcode::Xor:
      Asm.op(HostOp::Xor, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;
    case guest::Opcode::Shl:
      Asm.opl(HostOp::And, hostGpr(I.Reg2), 31, RegScratch1);
      Asm.op(HostOp::Sll, hostGpr(I.Reg1), RegScratch1, hostGpr(I.Reg1));
      Asm.op(HostOp::Zextl, RegZero, hostGpr(I.Reg1), hostGpr(I.Reg1));
      break;
    case guest::Opcode::Shr:
      Asm.opl(HostOp::And, hostGpr(I.Reg2), 31, RegScratch1);
      Asm.op(HostOp::Srl, hostGpr(I.Reg1), RegScratch1, hostGpr(I.Reg1));
      break;
    case guest::Opcode::Sar:
      Asm.op(HostOp::Sextl, RegZero, hostGpr(I.Reg1), RegScratch0);
      Asm.opl(HostOp::And, hostGpr(I.Reg2), 31, RegScratch1);
      Asm.op(HostOp::Sra, RegScratch0, RegScratch1, hostGpr(I.Reg1));
      Asm.op(HostOp::Zextl, RegZero, hostGpr(I.Reg1), hostGpr(I.Reg1));
      break;
    case guest::Opcode::Mul:
      Asm.op(HostOp::Mull, hostGpr(I.Reg1), hostGpr(I.Reg2),
             hostGpr(I.Reg1));
      break;

    case guest::Opcode::MovRI:
      Asm.materialize32(hostGpr(I.Reg1), static_cast<uint32_t>(I.Imm));
      break;
    case guest::Opcode::AddI:
      emitAluImm(Asm, HostOp::Addl, hostGpr(I.Reg1), I.Imm);
      break;
    case guest::Opcode::SubI:
      emitAluImm(Asm, HostOp::Subl, hostGpr(I.Reg1), I.Imm);
      break;
    case guest::Opcode::AndI:
      emitAluImm(Asm, HostOp::And, hostGpr(I.Reg1), I.Imm);
      break;
    case guest::Opcode::OrI:
      emitAluImm(Asm, HostOp::Bis, hostGpr(I.Reg1), I.Imm);
      break;
    case guest::Opcode::XorI:
      emitAluImm(Asm, HostOp::Xor, hostGpr(I.Reg1), I.Imm);
      break;
    case guest::Opcode::ShlI:
      Asm.opl(HostOp::Sll, hostGpr(I.Reg1),
              static_cast<uint8_t>(I.Imm & 31), hostGpr(I.Reg1));
      Asm.op(HostOp::Zextl, RegZero, hostGpr(I.Reg1), hostGpr(I.Reg1));
      break;
    case guest::Opcode::ShrI:
      Asm.opl(HostOp::Srl, hostGpr(I.Reg1),
              static_cast<uint8_t>(I.Imm & 31), hostGpr(I.Reg1));
      break;
    case guest::Opcode::SarI:
      Asm.op(HostOp::Sextl, RegZero, hostGpr(I.Reg1), RegScratch0);
      Asm.opl(HostOp::Sra, RegScratch0, static_cast<uint8_t>(I.Imm & 31),
              hostGpr(I.Reg1));
      Asm.op(HostOp::Zextl, RegZero, hostGpr(I.Reg1), hostGpr(I.Reg1));
      break;
    case guest::Opcode::MulI:
      emitAluImm(Asm, HostOp::Mull, hostGpr(I.Reg1), I.Imm);
      break;

    case guest::Opcode::Cmp:
    case guest::Opcode::CmpI: {
      // Fused with the following Jcc; a compare not followed by Jcc is
      // dead by the ISA's structural rule.
      if (Idx + 1 >= Block.size() ||
          Block.Insts[Idx + 1].Op != guest::Opcode::Jcc)
        break;
      const guest::GuestInst &J = Block.Insts[Idx + 1];
      uint32_t JPc = Block.InstPcs[Idx + 1];
      CondLowering L = lowerCond(J.CC);
      if (I.Op == guest::Opcode::Cmp) {
        Asm.op(L.CmpOp, hostGpr(I.Reg1), hostGpr(I.Reg2), RegScratch2);
      } else if (I.Imm >= 0 && I.Imm <= 255) {
        Asm.opl(L.CmpOp, hostGpr(I.Reg1), static_cast<uint8_t>(I.Imm),
                RegScratch2);
      } else {
        Asm.materialize32(RegScratch1, static_cast<uint32_t>(I.Imm));
        Asm.op(L.CmpOp, hostGpr(I.Reg1), RegScratch1, RegScratch2);
      }
      if (Continues) {
        // Trace-aware lowering: the on-trace arm falls through to the
        // next constituent, the off-trace arm branches to a side exit.
        uint32_t TakenPc = J.branchTarget(JPc);
        uint32_t FallPc = J.nextPc(JPc);
        if (TakenPc == NextPc) {
          if (L.BranchIfTrue)
            Asm.beq(RegScratch2, side(FallPc));
          else
            Asm.bne(RegScratch2, side(FallPc));
        } else if (FallPc == NextPc) {
          if (L.BranchIfTrue)
            Asm.bne(RegScratch2, side(TakenPc));
          else
            Asm.beq(RegScratch2, side(TakenPc));
        } else {
          // Neither arm continues the trace (the walker should never
          // build this); both arms become side exits, defensively.
          if (L.BranchIfTrue)
            Asm.bne(RegScratch2, side(TakenPc));
          else
            Asm.beq(RegScratch2, side(TakenPc));
          Asm.br(side(FallPc));
        }
        ++Idx; // consume the Jcc
        break;
      }
      HostAssembler::Label Taken = Asm.newLabel();
      if (L.BranchIfTrue)
        Asm.bne(RegScratch2, Taken);
      else
        Asm.beq(RegScratch2, Taken);
      emitExit(J.nextPc(JPc));
      Asm.bind(Taken);
      emitExit(J.branchTarget(JPc));
      ++Idx; // consume the Jcc
      break;
    }

    case guest::Opcode::Jcc:
      assert(false && "Jcc without preceding Cmp (assembler enforces)");
      break;

    case guest::Opcode::QMovRR:
      Asm.mov(hostQ(I.Reg2), hostQ(I.Reg1));
      break;
    case guest::Opcode::QMovI:
      Asm.materializeSext32(hostQ(I.Reg1), I.Imm);
      break;
    case guest::Opcode::QAdd:
      Asm.op(HostOp::Addq, hostQ(I.Reg1), hostQ(I.Reg2), hostQ(I.Reg1));
      break;
    case guest::Opcode::QAddI:
      if (I.Imm >= 0 && I.Imm <= 255) {
        Asm.opl(HostOp::Addq, hostQ(I.Reg1), static_cast<uint8_t>(I.Imm),
                hostQ(I.Reg1));
      } else {
        Asm.materializeSext32(RegScratch1, I.Imm);
        Asm.op(HostOp::Addq, hostQ(I.Reg1), RegScratch1, hostQ(I.Reg1));
      }
      break;
    case guest::Opcode::QXor:
      Asm.op(HostOp::Xor, hostQ(I.Reg1), hostQ(I.Reg2), hostQ(I.Reg1));
      break;
    case guest::Opcode::GToQ:
      Asm.mov(hostGpr(I.Reg2), hostQ(I.Reg1));
      break;
    case guest::Opcode::QToG:
      Asm.op(HostOp::Zextl, RegZero, hostQ(I.Reg2), hostGpr(I.Reg1));
      break;

    case guest::Opcode::Jmp:
      emitExit(I.branchTarget(Pc));
      break;

    case guest::Opcode::Call: {
      uint32_t RetPc = I.nextPc(Pc);
      uint8_t Sp = hostGpr(guest::RegSP);
      Asm.opl(HostOp::Subl, Sp, 4, Sp);
      Asm.materialize32(RegScratch0, RetPc);
      uint32_t W = Asm.mem(HostOp::Stl, RegScratch0, 0, Sp);
      T.MemWordToGuestPc[W] = Pc;
      // If the return-address push rewrites watched code (pathological
      // but legal), resume at the callee: the push has architecturally
      // completed and the call transfers control next.
      recordStoreResume(W, I.branchTarget(Pc));
      emitExit(I.branchTarget(Pc));
      break;
    }

    case guest::Opcode::Ret: {
      uint8_t Sp = hostGpr(guest::RegSP);
      uint32_t W = Asm.mem(HostOp::Ldl, RegScratch0, 0, Sp);
      T.MemWordToGuestPc[W] = Pc;
      Asm.opl(HostOp::Addl, Sp, 4, Sp);
      Asm.mov(RegScratch0, RegExitPc);
      emitIndirectExit();
      break;
    }

    case guest::Opcode::JmpR:
      Asm.mov(hostGpr(I.Reg1), RegExitPc);
      emitIndirectExit();
      break;
    }
  }
  }
};

} // namespace

Translation Translator::translate(const GuestBlock &Block,
                                  const PlanFn &Plan, uint32_t Generation,
                                  const TranslationOpts &Opts) {
  HostAssembler Asm(Code);
  Translation T;
  T.GuestPc = Block.StartPc;
  T.EntryWord = Asm.pos();
  T.GuestInsts = static_cast<uint32_t>(Block.size());
  T.Generation = Generation;
  T.GuestRanges.push_back({Block.StartPc, Block.endPc()});

  BodyEmitter E(Asm, T, Block, Plan, Opts.IcWays, Opts.FusionMask);

  // Block-granularity multi-version (paper section IV-D): find the
  // first multi-version site; one alignment check there selects between
  // a plain-ops copy and an inline-sequences copy of the block tail.
  // The plain copy's sites stay exception-handler guarded, so a site
  // that defies the shared-alignment-pattern assumption still executes
  // correctly (it traps and gets patched).
  size_t Split = Block.size();
  if (Opts.BlockMultiVersion) {
    for (size_t Idx = 0; Idx != Block.size(); ++Idx) {
      if (E.planFor(Idx, MvMode::PerInst) == MemPlan::MultiVersion) {
        Split = Idx;
        break;
      }
    }
  }

  if (Split != Block.size()) {
    E.emitRange(0, Split, MvMode::PerInst);
    // The version check on the split site's address.
    const guest::GuestInst &I = Block.Insts[Split];
    AddrOperand A = computeAddress(Asm, I);
    unsigned Size = guest::accessSize(I.Op);
    uint8_t CheckReg = A.Base;
    if (A.Disp % static_cast<int32_t>(Size) != 0) {
      Asm.lda(RegMvT0, A.Disp, A.Base);
      CheckReg = RegMvT0;
    }
    Asm.opl(HostOp::And, CheckReg, static_cast<uint8_t>(Size - 1),
            RegMvT1);
    HostAssembler::Label MisCopy = Asm.newLabel();
    Asm.bne(RegMvT1, MisCopy);
    E.emitRange(Split, Block.size(), MvMode::Plain);
    Asm.bind(MisCopy);
    E.emitRange(Split, Block.size(), MvMode::Sequences);
  } else {
    E.emitRange(0, Block.size(), MvMode::PerInst);
  }

  Asm.finish();
  // Capture each fused core's final word values (after label
  // resolution) for HostVerifier's byte-exact re-check.
  for (FusedSite &F : T.FusedSites)
    for (uint32_t W = F.Begin; W != F.End; ++W)
      F.Words.push_back(Code.word(W));
  T.EndWord = Asm.pos();
  return T;
}

Translation Translator::translateTrace(const std::vector<GuestBlock> &Blocks,
                                       const PlanFn &Plan,
                                       uint32_t Generation,
                                       const TranslationOpts &Opts) {
  assert(Blocks.size() >= 2 && "a trace spans at least two blocks");
  HostAssembler Asm(Code);
  Translation T;
  T.GuestPc = Blocks.front().StartPc;
  T.EntryWord = Asm.pos();
  T.Generation = Generation;
  T.IsTrace = true;

  // One side-exit stub per unique off-trace target, shared by every
  // constituent (bound after the straight-line body).
  std::map<uint32_t, HostAssembler::Label> SideLabels;

  for (size_t B = 0; B != Blocks.size(); ++B) {
    const GuestBlock &Blk = Blocks[B];
    T.Constituents.push_back(Blk.StartPc);
    T.GuestInsts += static_cast<uint32_t>(Blk.size());
    // Guest ranges deduplicated: loop unrolling repeats constituents.
    std::pair<uint32_t, uint32_t> Range{Blk.StartPc, Blk.endPc()};
    if (std::find(T.GuestRanges.begin(), T.GuestRanges.end(), Range) ==
        T.GuestRanges.end())
      T.GuestRanges.push_back(Range);
    BodyEmitter E(Asm, T, Blk, Plan, Opts.IcWays, Opts.FusionMask);
    if (B + 1 != Blocks.size()) {
      E.Continues = true;
      E.NextPc = Blocks[B + 1].StartPc;
      E.SideLabels = &SideLabels;
    }
    // Constituents render multi-version sites per-instruction even when
    // the policy asked for block granularity: semantically equivalent
    // (both copies stay handler-guarded) and it keeps the straight-line
    // body free of block-tail duplication.
    E.emitRange(0, Blk.size(), MvMode::PerInst);
  }

  for (auto &KV : SideLabels) {
    Asm.bind(KV.second);
    Asm.materialize32(RegExitPc, KV.first);
    uint32_t W = Asm.srv(SrvFunc::Exit);
    T.Exits.push_back({W, KV.first, /*Direct=*/true, /*Chained=*/false});
  }

  Asm.finish();
  for (FusedSite &F : T.FusedSites)
    for (uint32_t W = F.Begin; W != F.End; ++W)
      F.Words.push_back(Code.word(W));
  T.EndWord = Asm.pos();
  return T;
}

Translator::StubInfo Translator::emitStub(const HostInst &Faulting,
                                          uint32_t FaultWord) {
  assert(accessesMemory(Faulting.Op) && alignmentOf(Faulting.Op) > 1 &&
         "stub requested for a non-trapping instruction");
  HostAssembler Asm(Code);
  StubInfo S;
  S.Entry = Asm.pos();
  unsigned Size = hostAccessSize(Faulting.Op);
  if (isHostLoad(Faulting.Op))
    emitMdaLoad(Asm, Size, Faulting.Ra, Faulting.Rb, Faulting.Disp);
  else
    emitMdaStore(Asm, Size, Faulting.Ra, Faulting.Rb, Faulting.Disp);
  Asm.brTo(FaultWord + 1);
  Asm.finish();
  S.End = Asm.pos();
  return S;
}

Translator::StubInfo Translator::emitAdaptiveStub(
    const HostInst &Faulting, uint32_t FaultWord, uint32_t CounterAddr,
    uint32_t MailboxAddr, uint32_t Threshold) {
  assert(accessesMemory(Faulting.Op) && alignmentOf(Faulting.Op) > 1 &&
         "stub requested for a non-trapping instruction");
  assert(Threshold >= 1 && Threshold <= 255 &&
         "threshold must fit an operate literal");
  HostAssembler Asm(Code);
  StubInfo S;
  S.Entry = Asm.pos();
  unsigned Size = hostAccessSize(Faulting.Op);

  // Alignment check on the current address (paper Fig. 8, right side:
  // "instructions to collect runtime information").
  Asm.lda(RegMdaT2, Faulting.Disp, Faulting.Rb);
  Asm.opl(HostOp::And, RegMdaT2, static_cast<uint8_t>(Size - 1),
          RegMdaT0);
  HostAssembler::Label RunSeq = Asm.newLabel();
  Asm.bne(RegMdaT0, RunSeq);
  // Aligned occurrence: bump the counter cell.
  Asm.materialize32(RegMdaT1, CounterAddr);
  Asm.mem(HostOp::Ldl, RegMdaT0, 0, RegMdaT1);
  Asm.opl(HostOp::Addl, RegMdaT0, 1, RegMdaT0);
  Asm.mem(HostOp::Stl, RegMdaT0, 0, RegMdaT1);
  Asm.opl(HostOp::Cmpult, RegMdaT0, static_cast<uint8_t>(Threshold),
          RegMdaT1);
  Asm.bne(RegMdaT1, RunSeq); // still warming up
  // Ask the monitor to revert this patch.
  Asm.materialize32(RegMdaT1, MailboxAddr);
  Asm.materialize32(RegMdaT0, FaultWord + 1);
  Asm.mem(HostOp::Stl, RegMdaT0, 0, RegMdaT1);
  Asm.bind(RunSeq);
  if (isHostLoad(Faulting.Op))
    emitMdaLoad(Asm, Size, Faulting.Ra, Faulting.Rb, Faulting.Disp);
  else
    emitMdaStore(Asm, Size, Faulting.Ra, Faulting.Rb, Faulting.Disp);
  Asm.brTo(FaultWord + 1);
  Asm.finish();
  S.End = Asm.pos();
  return S;
}

uint32_t Translator::stubBranchWord(uint32_t FaultWord,
                                    uint32_t StubEntry) {
  int64_t Disp = static_cast<int64_t>(StubEntry) -
                 (static_cast<int64_t>(FaultWord) + 1);
  return encodeHost(
      brInst(HostOp::Br, RegZero, static_cast<int32_t>(Disp)));
}

void Translator::patchToStub(uint32_t FaultWord, uint32_t StubEntry) {
  Code.patch(FaultWord, stubBranchWord(FaultWord, StubEntry));
}
