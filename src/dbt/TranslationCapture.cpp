//===- dbt/TranslationCapture.cpp - Content keys + capture ----------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "dbt/TranslationCapture.h"

#include "dbt/FusionRules.h"

#include <algorithm>
#include <vector>

using namespace mdabt;
using namespace mdabt::dbt;

CacheKey mdabt::dbt::translationContentKey(
    const guest::GuestMemory &Mem, const GuestBlock *const *Blocks,
    size_t NBlocks, const Translator::PlanFn &Plan,
    const TranslationOpts &Opts, bool IsTrace) {
  std::vector<uint8_t> M;
  auto Put8 = [&M](uint8_t V) { M.push_back(V); };
  auto Put32 = [&M](uint32_t V) {
    for (int S = 0; S != 32; S += 8)
      M.push_back(static_cast<uint8_t>(V >> S));
  };
  Put8(static_cast<uint8_t>(SharedTranslationCache::FormatVersion));
  Put8(IsTrace ? 1 : 0);
  Put8(Opts.BlockMultiVersion ? 1 : 0);
  Put8(static_cast<uint8_t>(Opts.IcWays));
  // Fusion changes emitted words without changing guest bytes or
  // plans, so the enabled-rule mask and the rule-table version are
  // part of the content key: a fused translation can never alias a
  // differently-fused (or differently-versioned) entry.
  Put8(Opts.FusionMask != 0 ? 1 : 0);
  Put8(FusionRuleTableVersion);
  Put32(Opts.FusionMask);
  Put32(static_cast<uint32_t>(NBlocks));
  for (size_t BI = 0; BI != NBlocks; ++BI) {
    const GuestBlock &B = *Blocks[BI];
    uint32_t Len = B.endPc() - B.StartPc;
    Put32(B.StartPc);
    Put32(Len);
    // The raw guest bytes: SMC rewrites change the key, so a hostile
    // tenant's rewritten block can only miss — it can never collide
    // into (or poison) the entry other tenants execute.
    M.insert(M.end(), Mem.data() + B.StartPc, Mem.data() + B.StartPc + Len);
    for (size_t I = 0; I != B.Insts.size(); ++I) {
      const guest::GuestInst &Inst = B.Insts[I];
      // Mirror the translator's planned-site predicate exactly: only
      // sites it would consult the plan for contribute to the key.
      if (!guest::isMemoryOp(Inst.Op) || guest::accessSize(Inst.Op) < 2)
        continue;
      Put32(B.InstPcs[I]);
      Put8(static_cast<uint8_t>(Plan(B.InstPcs[I], Inst)));
    }
  }
  return cacheKeyFromBytes(M.data(), M.size());
}

CachedTranslation mdabt::dbt::captureTranslation(const Translation &T,
                                                 const host::CodeSpace &Code) {
  CachedTranslation C;
  C.GuestPc = T.GuestPc;
  C.GuestInsts = T.GuestInsts;
  C.IsTrace = T.IsTrace ? 1 : 0;
  uint32_t Base = T.EntryWord;
  C.Words.reserve(T.EndWord - Base);
  for (uint32_t W = Base; W != T.EndWord; ++W)
    C.Words.push_back(Code.word(W));
  for (const ExitSite &X : T.Exits)
    C.Exits.push_back({X.SrvWord - Base, X.TargetGuestPc,
                       static_cast<uint8_t>(X.Direct ? 1 : 0)});
  for (const auto &KV : T.MemWordToGuestPc)
    C.MemWordToGuestPc.push_back({KV.first - Base, KV.second});
  std::sort(C.MemWordToGuestPc.begin(), C.MemWordToGuestPc.end());
  for (const auto &KV : T.StoreResume)
    C.StoreResume.push_back(
        {KV.first - Base, KV.second.EndWord - Base, KV.second.ResumePc});
  std::sort(C.StoreResume.begin(), C.StoreResume.end(),
            [](const CachedTranslation::RelResume &A,
               const CachedTranslation::RelResume &B) {
              return A.Word < B.Word;
            });
  for (const auto &KV : T.PlanByPc)
    C.PlanByPc.push_back({KV.first, static_cast<uint8_t>(KV.second)});
  std::sort(C.PlanByPc.begin(), C.PlanByPc.end());
  for (const IcSite &S : T.IcSites) {
    CachedTranslation::RelIcSite RS;
    RS.SrvWord = S.SrvWord - Base;
    RS.WayBegins.reserve(S.Ways.size());
    for (const IcWay &W : S.Ways)
      RS.WayBegins.push_back(W.Begin - Base);
    C.IcSites.push_back(std::move(RS));
  }
  C.Constituents = T.Constituents;
  C.GuestRanges = T.GuestRanges;
  for (const FusedSite &F : T.FusedSites)
    C.FusedSites.push_back({F.Rule, F.GuestLen, F.Begin - Base, F.End - Base,
                            F.GuestPc, F.SavedWords});
  return C;
}
