//===- dbt/ExecutionContext.cpp -------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "dbt/ExecutionContext.h"

#include "analysis/AlignmentAnalysis.h"
#include "analysis/CfgRecovery.h"
#include "analysis/HostVerifier.h"
#include "chaos/FaultInjector.h"
#include "dbt/AotTranslator.h"
#include "dbt/DispatchTable.h"
#include "dbt/FusionRules.h"
#include "dbt/GuestBlock.h"
#include "dbt/TranslationCapture.h"
#include "dbt/TranslationService.h"
#include "dbt/Translator.h"
#include "guest/Encoding.h"
#include "guest/Interpreter.h"
#include "guest/MdaCensus.h"
#include "host/HostAssembler.h"
#include "host/HostMachine.h"
#include "support/CacheModel.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace mdabt;
using namespace mdabt::dbt;
using namespace mdabt::host;

namespace {

/// The disabled-guard word of an inline-cache way: skip the way's
/// remaining IcWayWords - 1 words.
uint32_t icDisabledGuardWord() {
  return encodeHost(
      brInst(HostOp::Br, RegZero, static_cast<int32_t>(IcWayWords) - 1));
}

/// Canonical host nop (bis r31, r31, r31), used to scrub retired
/// inline-cache branch words.
uint32_t hostNopWord() {
  return encodeHost(opInst(HostOp::Bis, RegZero, RegZero, RegZero));
}

} // namespace

/// All per-run state of the engine: built fresh for every run().
/// Implements TraceClock so every emitted event is stamped with the
/// run's current modeled cycle count.
struct ExecutionContext::Impl : public obs::TraceClock {
public:
  Impl(const guest::GuestImage &Image, MdaPolicy &Policy,
       const EngineConfig &Config)
      : Policy(Policy), Config(Config), Cost(Config.Cost),
        Hard(Config.Hardening), Interp(Mem),
        Machine(Code, Mem, Hier, Cost), Trans(Code), Profiler(*this),
        Trace(Config.Trace, this),
        HTransInsts(&Reg.histogram("translate.block_insts")),
        HTrapBlock(&Reg.histogram("trap.block_faults")),
        HInterpInsts(&Reg.histogram("interp.block_insts")) {
    Mem.loadImage(Image);
    Cpu.reset(Image);
    Service = Config.Service;
    // Guest-code write barrier (self-modifying-code coherence): the
    // callback only fires for stores into pages backing live
    // translations, so runs that never execute natively never pay.
    EntryPc = Image.Entry;
    StackTopAddr = Image.StackTop;
    Mem.setWriteWatcher([this](uint32_t Addr, unsigned Size) {
      onGuestCodeStore(Addr, Size);
    });
    if (Config.HashDispatch)
      Dispatch.emplace();
    if (Config.Analysis) {
      // Static alignment inference over this run's own image copy (one
      // run = one isolated world, so --jobs fan-out stays bit-exact).
      // Like static profiling, the pass is modeled as offline work and
      // its cycles are not charged to the run.
      Ana.emplace(
          analysis::analyzeAlignment(Mem, Image.Entry, Image.StackTop));
      if (Trace.enabled()) {
        std::vector<uint32_t> Pcs;
        Pcs.reserve(Ana->Sites.size());
        for (const auto &Entry : Ana->Sites)
          Pcs.push_back(Entry.first);
        std::sort(Pcs.begin(), Pcs.end());
        for (uint32_t Pc : Pcs) {
          const analysis::SiteInfo &Site = Ana->Sites.at(Pc);
          Trace.emit(obs::TraceEventKind::AnalysisVerdict, Pc, 0,
                     static_cast<uint64_t>(Site.Verdict),
                     Site.Size | (Site.IsStore ? 0x100u : 0u));
        }
        Trace.emit(obs::TraceEventKind::AnalysisSummary,
                   static_cast<uint32_t>(Ana->Sites.size()),
                   Ana->Poisoned ? 1 : 0, Ana->NumAligned,
                   Ana->NumMisaligned);
      }
    }
    if (Config.Aot != AotMode::Off) {
      // AOT MemPlans come from congruence verdicts, so the alignment
      // analysis is implied even when EngineConfig::Analysis is off.
      // Like the recovery pass below it is modeled as offline work.
      if (!Ana)
        Ana.emplace(
            analysis::analyzeAlignment(Mem, Image.Entry, Image.StackTop));
      // Deterministic whole-image CFG recovery over the pristine bytes:
      // the statically proven reachable set the pre-translator covers
      // and the verifier's reachability invariant checks against.
      AotCfg.emplace(analysis::recoverCfg(Mem, Image.Entry));
      for (const auto &R : AotCfg->coverageRanges())
        AotReachable.push_back({R.first, R.second});
    }
    Interp.setObserver(&Profiler);
    Machine.setFaultHandler(
        [this](const FaultInfo &F) { return onFault(F); });
    Policy.bindTracer(Trace);
    if (Config.Chaos && Config.Chaos->enabled()) {
      Injector.emplace(*Config.Chaos);
      if (Trace.enabled())
        Injector->setInjectionHook([this](chaos::InjectKind K) {
          Trace.emit(obs::TraceEventKind::ChaosInjected, 0, 0,
                     static_cast<uint64_t>(K), Injector->injected());
        });
      // Intercept only the engine's own patch writes (stub redirection,
      // chaining, unchaining, reverts): translator-internal backpatches
      // are never read back for verification, so injecting there would
      // model a hazard the real trap/patch path does not have.
      Code.setPatchHook([this](uint32_t, uint32_t &W) {
        if (!ChaosPatchArmed)
          return true;
        switch (Injector->patchFault()) {
        case chaos::PatchFault::None:
          break;
        case chaos::PatchFault::Drop:
          ++ChaosPatchDrops;
          return false;
        case chaos::PatchFault::Torn:
          ++ChaosPatchTears;
          W = Injector->tearWord(W);
          break;
        }
        return true;
      });
    }
  }

  RunResult run();

private:
  // -- phase 1: interpretation with profiling ---------------------------

  /// Charges interpreter memory costs and feeds the policy's dynamic
  /// profile.
  class InterpProfiler : public guest::InterpObserver {
  public:
    explicit InterpProfiler(Impl &S) : S(S) {}
    void onMemAccess(uint32_t InstPc, uint32_t Addr, unsigned Size,
                     bool IsStore) override {
      ++S.InterpRefs;
      S.InterpCycles += S.Cost.InterpMemExtraCycles + S.Hier.data(Addr);
      S.Policy.onInterpMemAccess(InstPc, Addr, Size, IsStore);
    }
    Impl &S;
  };

  // -- verified code-cache patching --------------------------------------

  /// Write \p Desired into code word \p Word and verify by read-back,
  /// repairing a dropped or torn write up to PatchRepairLimit times.  On
  /// persistent failure the previous content is restored (a torn word
  /// must never become executable) and false is returned; if even the
  /// restore cannot be made to stick the run aborts with PatchFailed.
  bool patchVerified(uint32_t Word, uint32_t Desired) {
    uint32_t Fallback = Code.word(Word);
    ChaosPatchArmed = true;
    bool Ok = false;
    bool Repaired = false;
    for (uint32_t A = 0; A <= Hard.PatchRepairLimit; ++A) {
      Code.patch(Word, Desired);
      if (Code.word(Word) == Desired) {
        Ok = true;
        break;
      }
      Repaired = true;
    }
    if (Ok) {
      ChaosPatchArmed = false;
      if (Repaired) {
        ++PatchRepairs;
        Trace.emit(obs::TraceEventKind::PatchRepaired, 0, 0, Word,
                   Desired);
      }
      return true;
    }
    ++PatchFailures;
    if (Hard.PatchFailureLimit != 0 &&
        PatchFailures > Hard.PatchFailureLimit)
      Abort = RunError::PatchFailed;
    // Roll back so execution never reaches a corrupt word.
    bool Restored = false;
    for (uint32_t A = 0; A <= Hard.PatchRepairLimit; ++A) {
      Code.patch(Word, Fallback);
      if (Code.word(Word) == Fallback) {
        Restored = true;
        break;
      }
    }
    ChaosPatchArmed = false;
    Trace.emit(obs::TraceEventKind::PatchRolledBack, 0, 0, Word,
               Restored ? 1 : 0);
    if (!Restored)
      Abort = RunError::PatchFailed;
    return false;
  }

  // -- translation -------------------------------------------------------

  /// The engine's memory-op planning chain, shared by first translation
  /// and superblock re-emission fallback.
  MemPlan planMemOp(uint32_t Pc, const guest::GuestInst &I) {
    // Watchdog overrides (degradation rungs 1-2) win over the policy.
    if (ForceInline.count(Pc))
      return MemPlan::Inline;
    // Static verdicts next: a proof beats any policy heuristic, and
    // only Unknown sites fall through to the policy's machinery.
    if (Ana) {
      switch (Ana->verdictFor(Pc, I)) {
      case analysis::AlignVerdict::Aligned:
        ++PlanAlignedElides;
        return MemPlan::Elide;
      case analysis::AlignVerdict::Misaligned:
        ++PlanInlineForced;
        return MemPlan::Inline;
      case analysis::AlignVerdict::Unknown:
        break;
      }
    }
    return Policy.planMemoryOp(Pc, I);
  }

  /// Inline-cache ways per indirect exit for this run (0 when disabled).
  uint32_t icWays() const {
    if (!Config.InlineCaches)
      return 0;
    return std::min(4u, std::max(1u, Config.IcWays));
  }

  /// Policy translation options with the engine's dispatch knobs folded
  /// in.
  TranslationOpts translationOpts() {
    TranslationOpts Opts = Policy.translationOpts();
    Opts.IcWays = icWays();
    Opts.FusionMask =
        Config.Fusion ? (Config.FusionMask & FusionMaskAll) : 0;
    return Opts;
  }

  /// Account for the fused sequences of a freshly installed translation
  /// (local or cache-instantiated): per-site and per-block trace
  /// events, plus the fusion.* counters.
  void recordFusion(const Translation &T) {
    if (T.FusedSites.empty())
      return;
    uint64_t Saved = 0;
    for (const FusedSite &F : T.FusedSites) {
      Saved += F.SavedWords;
      Trace.emit(obs::TraceEventKind::FusionApplied, F.GuestPc, T.GuestPc,
                 F.Rule, F.SavedWords);
    }
    FusionSites += T.FusedSites.size();
    FusionSavedWords += Saved;
    ++FusionBlocks;
    Trace.emit(obs::TraceEventKind::FusionSummary, T.GuestPc, T.GuestPc,
               T.FusedSites.size(), Saved);
  }

  Translation *installTranslation(uint32_t GuestPc, uint32_t Generation,
                                  bool AllowFlush = false) {
    if (InterpOnly.count(GuestPc))
      return nullptr; // degradation rung 3: this block stays interpreted
    // Never plan from stale verdicts: a supersede can reach here before
    // the monitor loop's own re-analysis point.
    maybeReanalyze();
    if (Abort != RunError::None)
      return nullptr;
    // Capacity policy: flush before installing, and only from monitor
    // context (translated code must not be running during a flush).
    if (AllowFlush && Config.CodeCacheLimitWords != 0 &&
        Code.size() > Config.CodeCacheLimitWords) {
      flushAll();
      if (Abort != RunError::None)
        return nullptr;
    }
    GuestBlock Block = discoverBlock(Mem, GuestPc);
    if (Injector && Injector->translateFails()) {
      // The translator failed: charge the wasted work, fall back to
      // interpretation, and pin the block interp-only once failures at
      // this PC persist.
      ++ChaosTranslateFails;
      ++TranslateFailures;
      if (!Policy.translationIsOffline())
        TranslateCycles += static_cast<uint64_t>(Block.size()) *
                           Cost.TranslateCyclesPerInst;
      Trace.emit(obs::TraceEventKind::TranslationFailed, GuestPc, GuestPc,
                 TranslateFailsAt[GuestPc] + 1, Generation);
      if (++TranslateFailsAt[GuestPc] >= Hard.TranslateRetryLimit) {
        InterpOnly.insert(GuestPc);
        ++LadderInterpPins;
      }
      if (Hard.TranslationFailureLimit != 0 &&
          TranslateFailures > Hard.TranslationFailureLimit)
        Abort = RunError::TranslationFailed;
      return nullptr;
    }
    TranslateFailsAt.erase(GuestPc);
    Translator::PlanFn Plan = [this](uint32_t Pc,
                                     const guest::GuestInst &I) {
      return planMemOp(Pc, I);
    };
    bool FromCache = false;
    if (Service) {
      // Serving path: look the block up in the shared cache by content
      // key (guest bytes + per-site plans + options).  A hit installs
      // the cached words — no translation; a miss translates locally
      // and publishes the pristine result for other tenants.
      TranslationOpts Opts = translationOpts();
      const GuestBlock *One[] = {&Block};
      CacheKey Key = serviceKey(One, 1, Plan, Opts, /*IsTrace=*/false);
      TranslationLease L = Service->acquire(Key);
      if (L) {
        Store.push_back(instantiateCached(L.get(), Generation));
        FromCache = true;
        ++CacheHits;
        CacheHitInsts += Block.size();
        Trace.emit(obs::TraceEventKind::CacheHit, GuestPc, GuestPc,
                   Key.Lo, Generation);
      } else {
        Store.push_back(Trans.translate(Block, Plan, Generation, Opts));
        uint64_t Evicted = 0;
        L = Service->publish(Key, captureCached(Store.back()), &Evicted);
        ++CacheMisses;
        CacheEvictions += Evicted;
        Trace.emit(obs::TraceEventKind::CacheMiss, GuestPc, GuestPc,
                   Key.Lo, Generation);
        if (Evicted)
          Trace.emit(obs::TraceEventKind::CacheEvict, GuestPc, GuestPc,
                     Evicted, 0);
      }
      Leases.emplace(&Store.back(), std::move(L));
    } else {
      Store.push_back(
          Trans.translate(Block, Plan, Generation, translationOpts()));
    }
    Translation *T = &Store.back();
    Regions[T->EntryWord] = {T->EndWord, T};
    BlockMap[GuestPc] = T;
    if (Dispatch)
      Dispatch->insert(GuestPc, T);
    trackTranslation(T);
    if (!Policy.translationIsOffline())
      TranslateCycles += static_cast<uint64_t>(Block.size()) *
                         (FromCache ? Cost.CacheInstallCyclesPerInst
                                    : Cost.TranslateCyclesPerInst);
    ++Translations;
    chargeCodeGrowth();
    checkBudgets();
    HTransInsts->record(Block.size());
    Trace.emit(obs::TraceEventKind::BlockTranslated, GuestPc, GuestPc,
               Block.size(), Generation);
    recordFusion(*T);
    // A single block bigger than the whole cache would flush-thrash on
    // every dispatch: pin it interpret-only instead.
    if (Config.CodeCacheLimitWords != 0 &&
        T->EndWord - T->EntryWord > Config.CodeCacheLimitWords) {
      InterpOnly.insert(GuestPc);
      ++OversizedPins;
      invalidate(T);
      runVerifier();
      return nullptr;
    }
    runVerifier();
    return T;
  }

  /// Take one inline-cache way out of service: disable its guard, then
  /// scrub its final branch (so no branch into a dead entry survives in
  /// verified code).  Returns false if the guard could not be disabled;
  /// the way is then quarantined as Stale — the intact dead target code
  /// it may still reach is the same contained casualty as a stale chain.
  bool retireIcWay(IcWay &Way) {
    uint32_t FinalBr = Way.Begin + IcWayWords - 1;
    if (!patchVerified(Way.Begin, icDisabledGuardWord())) {
      Way.Stale = true;
      Way.Filled = false;
      StaleChainWords.insert(FinalBr);
      return false;
    }
    Way.Filled = false;
    if (!patchVerified(FinalBr, hostNopWord()))
      StaleChainWords.insert(FinalBr);
    return true;
  }

  /// Take \p Old out of service: mark invalid, unchain every direct
  /// branch into it, and retire every inline-cache way targeting it so
  /// stale callers fall back to the monitor.
  void invalidate(Translation *Old) {
    Old->Valid = false;
    untrackTranslation(Old);
    // Whatever retired this translation (SMC, supersede, verdict
    // revocation, ladder) also invalidates the statically computed
    // plans of its pending AOT unit: never re-install those.
    dropAotUnit(Old->GuestPc);
    if (Dispatch)
      Dispatch->eraseIf(Old->GuestPc, Old);
    HTrapBlock->record(Old->FaultCount);
    Trace.emit(obs::TraceEventKind::BlockInvalidated, 0, Old->GuestPc,
               Old->FaultCount, Old->Generation);
    if (Old->IsTrace) {
      ++TraceDeopts;
      Trace.emit(obs::TraceEventKind::TraceDeopt, 0, Old->GuestPc,
                 Old->Constituents.size(), Old->Generation);
    }
    for (uint32_t W : Old->IncomingChains) {
      if (!patchVerified(W, encodeHost(srvInst(SrvFunc::Exit)))) {
        // The unchain did not stick (fault injection): a live block now
        // holds a stale branch to this dead entry.  Quarantine the word
        // for the verifier — it is a known, contained casualty until
        // the next flush, not a fresh corruption.  Exception: under
        // SMC-triggered invalidation the dead code is *semantically*
        // stale (the guest bytes it was compiled from were rewritten),
        // so reaching it would compute old semantics with no trap to
        // catch it — that must abort, not quarantine.
        StaleChainWords.insert(W);
        if (SmcStrict)
          Abort = RunError::PatchFailed;
      }
    }
    Old->IncomingChains.clear();
    for (const IcWayRef &Ref : Old->IncomingIcWays) {
      if (!Ref.Owner->Valid)
        continue; // the caller died too; the flush will reap both
      IcWay &Way = Ref.Owner->IcSites[Ref.Site].Ways[Ref.Way];
      // Lazy staleness: the way may have been refilled toward another
      // target since this back-reference was recorded (entry words are
      // unique between flushes, so the comparison is exact).
      if (!Way.Filled || Way.TargetEntry != Old->EntryWord)
        continue;
      ++IcEvictions;
      Trace.emit(obs::TraceEventKind::DispatchIcEvict, Way.TargetGuestPc,
                 Ref.Owner->GuestPc, Way.Begin, 1);
      if (!retireIcWay(Way) && SmcStrict) {
        // Same strictness as the unchain loop above: a quarantined way
        // may still branch into semantically stale code.
        Abort = RunError::PatchFailed;
      }
    }
    Old->IncomingIcWays.clear();
    // The run no longer depends on the shared-cache entry backing this
    // translation (if any): drop the lease so the entry becomes
    // evictable once every other tenant releases too.  Purely local —
    // another run's lease on the same entry is untouched, which is the
    // cross-tenant guarantee (a hostile tenant invalidating or flushing
    // its own copies can never retire ours).
    Leases.erase(Old);
  }

  /// Invalidate \p Old and retranslate its guest block (rearrangement /
  /// retranslation; the policy's plan callback decides what is inlined
  /// in the new incarnation).
  void supersede(Translation *Old) {
    if (!Old->Valid)
      return; // already superseded; the stale code may still be running
    // The plans are being revised: the block's pending AOT unit is now
    // stale even on the FlushOnSupersede path (which never reaches
    // invalidate()) — re-installing it after the flush would recreate
    // the very translation this supersede is retiring, forever.
    dropAotUnit(Old->GuestPc);
    Trace.emit(obs::TraceEventKind::BlockRetranslated, 0, Old->GuestPc,
               Old->Generation + 1, Config.FlushOnSupersede ? 1 : 0);
    if (Config.FlushOnSupersede) {
      // Dynamo-style: flush everything at the next safe point (we may
      // be inside the fault handler with the old code still running).
      PendingFlush = true;
      ++Supersedes;
      checkBudgets();
      return;
    }
    invalidate(Old);
    installTranslation(Old->GuestPc, Old->Generation + 1);
    ++Supersedes;
    checkBudgets();
  }

  /// Full code-cache flush (Dynamo-style, or capacity-triggered).  Only
  /// legal from the monitor, when no translated code is running.
  void flushAll() {
    // Flushed translations leave service without invalidate(): record
    // their trap counts before the store is dropped.
    for (Translation &T : Store)
      if (T.Valid)
        HTrapBlock->record(T.FaultCount);
    Trace.emit(obs::TraceEventKind::CacheFlush, 0, 0, Code.size(),
               Store.size());
#ifndef NDEBUG
    // Chain/IC bookkeeping must be fully confined to the dying arena:
    // every incoming-chain word and quarantined word indexes code that
    // is about to be dropped.  A word at or past the arena end would
    // mean a link into code that survives the flush — a leak that would
    // resurrect as a wild branch after the arena refills.
    for (const Translation &T : Store) {
      for (uint32_t W : T.IncomingChains)
        assert(W < Code.size() && "incoming chain outlives the arena");
      for (const IcWayRef &Ref : T.IncomingIcWays)
        assert(Ref.Owner->IcSites[Ref.Site].Ways[Ref.Way].Begin <
                   Code.size() &&
               "incoming IC way outlives the arena");
    }
    for (uint32_t W : StaleChainWords)
      assert(W < Code.size() && "quarantined word outlives the arena");
#endif
    for (Translation &T : Store) {
      T.IncomingChains.clear();
      T.IncomingIcWays.clear();
    }
    // Write-barrier bookkeeping dies with the arena; invalid
    // translations were already untracked by invalidate().
    for (Translation &T : Store)
      if (T.Valid)
        untrackTranslation(&T);
    TrackedByPage.clear();
    // Pending AOT units keep their write-barrier watches across the
    // flush (their payloads survive for lazy re-install), so the drain
    // target is their mirrored page set, not zero.
    assert(Mem.watchedPages() == AotWatchRef.size() &&
           "write-watch refcounts must drain on flush");
    Code.clear();
    BlockMap.clear();
    Regions.clear();
    Store.clear();
    Leases.clear(); // release every shared-cache lease with the arena
    PatchedOriginals.clear();
    StaleChainWords.clear();
    if (Dispatch)
      Dispatch->clear();
    assert(StaleChainWords.empty() &&
           "stale-chain quarantine must drain on flush");
    PendingFlush = false;
    LastCodeWords = 0; // emission accounting stays monotone
    ++Flushes;
    LastFlushStep = StepIndex;
    if (Hard.FlushLimit != 0 && Flushes > Hard.FlushLimit)
      Abort = RunError::CacheThrash;
    // Heat survives: hot blocks retranslate on their next dispatch,
    // exactly like a real cache flush.
    runVerifier();
  }

  // -- guest-code coherence (self-modifying code) ---------------------------

  /// Visit every watch page covered by \p T's guest ranges, once each
  /// (adjacent trace constituents may share a page).
  template <typename Fn>
  void forEachWatchPage(const Translation *T, Fn F) {
    std::vector<uint32_t> Pages;
    for (const auto &R : T->GuestRanges) {
      uint32_t P0 = R.first >> guest::GuestMemory::WatchPageShift;
      uint32_t P1 = (R.second - 1) >> guest::GuestMemory::WatchPageShift;
      for (uint32_t P = P0; P <= P1; ++P)
        if (std::find(Pages.begin(), Pages.end(), P) == Pages.end())
          Pages.push_back(P);
    }
    for (uint32_t P : Pages)
      F(P);
  }

  /// Register a freshly installed translation with the write barrier:
  /// its guest ranges become watched, and the per-page victim index
  /// learns about it.  Every install path must pair this with
  /// untrackTranslation (via invalidate or flushAll).
  void trackTranslation(Translation *T) {
    T->BornEpoch = StoreEpoch;
    for (const auto &R : T->GuestRanges)
      Mem.watchRange(R.first, R.second);
    forEachWatchPage(T, [&](uint32_t P) { TrackedByPage[P].push_back(T); });
  }

  /// Drop a translation from the barrier's bookkeeping (called as it
  /// leaves service).
  void untrackTranslation(Translation *T) {
    for (const auto &R : T->GuestRanges)
      Mem.unwatchRange(R.first, R.second);
    forEachWatchPage(T, [&](uint32_t P) {
      auto It = TrackedByPage.find(P);
      if (It == TrackedByPage.end())
        return;
      auto VIt = std::find(It->second.begin(), It->second.end(), T);
      if (VIt != It->second.end())
        It->second.erase(VIt);
      if (It->second.empty())
        TrackedByPage.erase(It);
    });
  }

  // -- static AOT pre-translation (EngineConfig::Aot) -----------------------

  /// Register a pending AOT unit's source bytes with the write barrier
  /// and mirror the page refcounts: a guest store into a pending unit
  /// must stale it even before (or after) installation, and flushAll's
  /// drain assertion needs to know how many watched pages are AOT's.
  void watchAotUnit(const AotTranslator::Unit &U) {
    for (const auto &R : U.Payload.GuestRanges) {
      Mem.watchRange(R.first, R.second);
      uint32_t P0 = R.first >> guest::GuestMemory::WatchPageShift;
      uint32_t P1 = (R.second - 1) >> guest::GuestMemory::WatchPageShift;
      for (uint32_t P = P0; P <= P1; ++P)
        ++AotWatchRef[P];
    }
  }

  void unwatchAotUnit(const AotTranslator::Unit &U) {
    for (const auto &R : U.Payload.GuestRanges) {
      Mem.unwatchRange(R.first, R.second);
      uint32_t P0 = R.first >> guest::GuestMemory::WatchPageShift;
      uint32_t P1 = (R.second - 1) >> guest::GuestMemory::WatchPageShift;
      for (uint32_t P = P0; P <= P1; ++P) {
        auto It = AotWatchRef.find(P);
        if (It != AotWatchRef.end() && --It->second == 0)
          AotWatchRef.erase(It);
      }
    }
  }

  /// A plan revision retired the translation at \p Pc (supersede,
  /// degradation ladder, SMC victim): its pending AOT unit, compiled
  /// under the old plans, must never be re-installed.
  void dropAotUnit(uint32_t Pc) {
    if (!Aot)
      return;
    if (Aot->drop(Pc))
      unwatchAotUnit(*Aot->find(Pc));
  }

  /// Instantiate one pending AOT unit into the run's arena.  Mirrors
  /// installTranslation's serving-hit path: install cycles, dispatch and
  /// write-barrier tracking, budgets and oversized pinning all behave
  /// identically.  \p Sweep runs the forced verifier sweep after the
  /// install (the startup batch defers to one sweep over the whole
  /// pre-populated cache instead).
  Translation *installAotUnit(AotTranslator::Unit &U, bool Sweep) {
    Store.push_back(instantiateCached(U.Payload, /*Generation=*/0));
    Translation *T = &Store.back();
    T->AotInstalled = true;
    Regions[T->EntryWord] = {T->EndWord, T};
    BlockMap[U.GuestPc] = T;
    if (Dispatch)
      Dispatch->insert(U.GuestPc, T);
    trackTranslation(T);
    if (!Policy.translationIsOffline())
      TranslateCycles += static_cast<uint64_t>(T->GuestInsts) *
                         Cost.CacheInstallCyclesPerInst;
    ++Translations;
    ++AotInstalls;
    chargeCodeGrowth();
    checkBudgets();
    HTransInsts->record(T->GuestInsts);
    Trace.emit(obs::TraceEventKind::AotInstall, U.GuestPc, U.GuestPc,
               T->GuestInsts, U.FromCache ? 1 : 0);
    recordFusion(*T);
    // Same containment as the demand path: a single block bigger than
    // the whole cache would flush-thrash on every dispatch.
    if (Config.CodeCacheLimitWords != 0 &&
        T->EndWord - T->EntryWord > Config.CodeCacheLimitWords) {
      InterpOnly.insert(U.GuestPc);
      ++OversizedPins;
      invalidate(T);
      runVerifier(/*Force=*/true);
      return nullptr;
    }
    if (Sweep)
      runVerifier(/*Force=*/true);
    return T;
  }

  /// The AOT startup phase (run() calls this before the first guest
  /// instruction): statically translate every proven-reachable block,
  /// watch every unit's source bytes, eagerly install the lot under
  /// AotMode::Full, and run the verifier as the AOT output checker over
  /// the pre-populated cache — even when EngineConfig::Verify is off.
  void aotStartup() {
    uint64_t Cycles0 = now();
    Translator::PlanFn Plan = [this](uint32_t Pc,
                                     const guest::GuestInst &I) {
      return planMemOp(Pc, I);
    };
    Aot.emplace(Mem, *AotCfg, Plan, translationOpts(), Service, Cost);
    Aot->pretranslateAll();
    const AotTranslator::Stats &AS = Aot->stats();
    if (!Policy.translationIsOffline())
      TranslateCycles += AS.StartupTranslateCycles;
    if (Trace.enabled())
      for (const auto &KV : Aot->units())
        Trace.emit(obs::TraceEventKind::AotTranslated, KV.first, KV.first,
                   KV.second.Payload.GuestInsts,
                   KV.second.FromCache ? 1 : 0);
    for (const auto &KV : Aot->units())
      watchAotUnit(KV.second);
    if (Config.Aot == AotMode::Full) {
      std::vector<uint32_t> Pcs;
      Pcs.reserve(Aot->units().size());
      for (const auto &KV : Aot->units())
        Pcs.push_back(KV.first);
      for (uint32_t Pc : Pcs) {
        if (Abort != RunError::None)
          break;
        // Capacity containment: leave the tail pending — it installs
        // lazily at first dispatch, exactly the hybrid path.
        if (Config.CodeCacheLimitWords != 0 &&
            Code.size() > Config.CodeCacheLimitWords)
          break;
        AotTranslator::Unit *U = Aot->find(Pc);
        if (U->Stale || InterpOnly.count(Pc))
          continue;
        installAotUnit(*U, /*Sweep=*/false);
      }
    }
    AotStartupCycles = now() - Cycles0;
    Trace.emit(obs::TraceEventKind::AotSummary,
               static_cast<uint32_t>(AS.RecoveredBlocks),
               static_cast<uint32_t>(AS.FrontierSites), AS.Translated,
               AS.FromCache);
    // The AOT output checker: one full structural sweep (including the
    // reachability invariant) before the first guest instruction.
    runVerifier(/*Force=*/true);
  }

  /// The guest-code write barrier.  GuestMemory calls this for every
  /// store whose first or last byte lands on a watched page — i.e. a
  /// page backing at least one live translation.  Models the
  /// page-protection trap a real DBT takes on such stores, then
  /// performs precise transactional invalidation: every live
  /// translation whose *compiled byte ranges* overlap the store is
  /// retired before the next dispatch (a neighbour that merely shares
  /// the page stays live).  Coherence contract: rewritten guest code
  /// takes effect no later than the next basic-block boundary, exactly
  /// like classic pre-P6 x86 ("effective after the next jump").
  void onGuestCodeStore(uint32_t Addr, unsigned Size) {
    if (InSmcBarrier)
      return; // re-entrant store from coherence work itself
    InSmcBarrier = true;
    ++SmcStores;
    ++StoreEpoch;
    Machine.addCycles(Cost.SmcWriteTrapCycles);
    Trace.emit(obs::TraceEventKind::SmcStore, 0, 0, Addr, Size);
    for (uint32_t B = Addr; B != Addr + Size; ++B)
      ByteDirtyEpoch[B] = StoreEpoch;
    // Pending AOT units whose source bytes this store rewrote can never
    // be installed: the dynamic path re-discovers from the new bytes.
    if (Aot)
      for (uint32_t Pc :
           Aot->noteGuestStore(Addr, static_cast<uint32_t>(Size)))
        unwatchAotUnit(*Aot->find(Pc));
    // Victim collection first, mutation after: invalidation edits the
    // per-page index we are reading.
    std::vector<Translation *> Victims;
    uint32_t P0 = Addr >> guest::GuestMemory::WatchPageShift;
    uint32_t P1 = (Addr + Size - 1) >> guest::GuestMemory::WatchPageShift;
    for (uint32_t P = P0; P <= P1; ++P) {
      auto It = TrackedByPage.find(P);
      if (It == TrackedByPage.end())
        continue;
      for (Translation *T : It->second) {
        if (!T->Valid)
          continue;
        bool Overlaps = false;
        for (const auto &R : T->GuestRanges) {
          if (R.first < Addr + Size && Addr < R.second) {
            Overlaps = true;
            break;
          }
        }
        if (Overlaps &&
            std::find(Victims.begin(), Victims.end(), T) == Victims.end())
          Victims.push_back(T);
      }
    }
    // Deterministic retirement order regardless of hash-map iteration:
    // entry words are unique between flushes.
    std::sort(Victims.begin(), Victims.end(),
              [](const Translation *A, const Translation *B) {
                return A->EntryWord < B->EntryWord;
              });
    // The store came from *inside* a victim (a superblock fused the
    // patcher with the code it patches, or a block rewrote its own
    // bytes): quarantining alone is not enough, because the episode
    // would keep executing the stale body it just overwrote.  Arm a
    // machine stop at the end of the storing guest instruction and
    // resume via fresh dispatch — the rewrite takes effect at the next
    // guest instruction, exactly the interpreter's semantics.
    if (InNative) {
      Translation *Running = findOwner(Machine.currentWord());
      if (Running && std::find(Victims.begin(), Victims.end(), Running) !=
                         Victims.end()) {
        auto It = Running->StoreResume.find(Machine.currentWord());
        if (It != Running->StoreResume.end()) {
          Machine.stopAt(It->second.EndWord, It->second.ResumePc);
          ++SmcEpisodeStops;
          Trace.emit(obs::TraceEventKind::SmcEpisodeStop,
                     It->second.ResumePc, Running->GuestPc,
                     Machine.currentWord(), It->second.EndWord);
        } else {
          // No resume metadata for this word: the in-flight episode
          // cannot be stopped coherently.  Typed abort — never let a
          // hostile guest turn a bookkeeping gap into silent
          // corruption.
          Abort = RunError::PatchFailed;
        }
      }
    }
    // Strict mode: a failed unchain or IC-retire during SMC
    // invalidation must abort, not quarantine.  A stale branch into
    // *superseded* code reaches architecturally equivalent
    // instructions; a stale branch into *rewritten* code reaches old
    // semantics with no trap to catch it.
    SmcStrict = true;
    for (Translation *T : Victims) {
      ++SmcInvalidations;
      Trace.emit(obs::TraceEventKind::SmcInvalidate, Addr, T->GuestPc,
                 T->Generation, T->IsTrace ? 1 : 0);
      invalidate(T);
      uint32_t Pin = ++SmcInvalsAt[T->GuestPc];
      if (Config.Budget.SmcChurnPinLimit != 0 &&
          Pin >= Config.Budget.SmcChurnPinLimit &&
          !InterpOnly.count(T->GuestPc)) {
        // Per-block churn containment: a block rewritten this often is
        // cheaper to interpret (rung 3 of the degradation ladder) —
        // the interpreter fetches fresh bytes every instruction, so
        // SMC is free there.
        InterpOnly.insert(T->GuestPc);
        ++SmcChurnPins;
        ++LadderInterpPins;
        Trace.emit(obs::TraceEventKind::SmcChurnPin, 0, T->GuestPc, Pin,
                   0);
      }
    }
    SmcStrict = false;
    // Any rewrite of watched code bytes may shift dataflow the static
    // analysis proved facts about; re-run it lazily at the next safe
    // point and revoke elides that no longer hold.
    if (Ana)
      AnaStale = true;
    checkBudgets();
    if (!Victims.empty())
      runVerifier();
    InSmcBarrier = false;
  }

  /// Re-run the static alignment analysis if guest code changed since
  /// the last pass (lazy: one pass absorbs a whole burst of stores),
  /// then revoke Elide verdicts that no longer hold.
  void maybeReanalyze() {
    if (!AnaStale || !Ana || Abort != RunError::None)
      return;
    AnaStale = false;
    Ana.emplace(analysis::analyzeAlignment(Mem, EntryPc, StackTopAddr));
    ++SmcReanalyses;
    Trace.emit(obs::TraceEventKind::SmcReanalysis, 0, 0,
               Ana->Sites.size(), Ana->Poisoned ? 1 : 0);
    // Every pending AOT unit was planned under the old verdicts, and a
    // rewritten byte anywhere can shift dataflow into blocks it does
    // not overlap — a stale Elide re-installed from a pre-translation
    // would skip MDA handling without a current proof.  Drop them all;
    // covered code falls back to demand translation under fresh plans.
    if (Aot)
      for (uint32_t Pc : Aot->dropAll())
        unwatchAotUnit(*Aot->find(Pc));
    revokeStaleElides();
  }

  /// Sweep live translations for Elide sites whose Aligned proof does
  /// not survive the fresh analysis (the modified bytes may sit in a
  /// *different* block that feeds this one's dataflow) and invalidate
  /// them; their next translation re-plans every site under the new
  /// verdicts.  EngineConfig::Analysis stays sound: no live code elides
  /// MDA bookkeeping without a current proof.
  void revokeStaleElides() {
    std::vector<Translation *> Victims;
    for (Translation &T : Store) {
      if (!T.Valid)
        continue;
      std::vector<uint32_t> ElidePcs;
      for (const auto &KV : T.PlanByPc)
        if (KV.second == MemPlan::Elide)
          ElidePcs.push_back(KV.first);
      std::sort(ElidePcs.begin(), ElidePcs.end());
      for (uint32_t Pc : ElidePcs) {
        guest::GuestInst I;
        if (guest::decode(Mem.data(), Mem.size(), Pc, I) &&
            Ana->verdictFor(Pc, I) == analysis::AlignVerdict::Aligned)
          continue; // still proven; the elide stands
        ++SmcVerdictsRevoked;
        Trace.emit(obs::TraceEventKind::SmcVerdictRevoked, Pc, T.GuestPc,
                   T.Generation, 0);
        Victims.push_back(&T);
        break; // one revoked site retires the whole translation
      }
    }
    std::sort(Victims.begin(), Victims.end(),
              [](const Translation *A, const Translation *B) {
                return A->EntryWord < B->EntryWord;
              });
    for (Translation *T : Victims)
      if (T->Valid) // an earlier victim's unchaining cannot kill it,
        invalidate(T); // but stay defensive
    if (!Victims.empty())
      runVerifier();
  }

  // -- resource governance ---------------------------------------------------

  /// Account freshly emitted host-code words against the cumulative
  /// emission budget.  Monotone across flushes: Code.size() resets to
  /// zero but CodeBytesEmitted never decreases, so flush-and-refill
  /// churn cannot hide under a bounded arena.
  void chargeCodeGrowth() {
    uint32_t Words = Code.size();
    if (Words > LastCodeWords)
      CodeBytesEmitted +=
          static_cast<uint64_t>(Words - LastCodeWords) * 4;
    LastCodeWords = Words;
  }

  /// Enforce the BudgetConfig ceilings (all 0 = unlimited).  First
  /// ceiling tripped wins; the typed RunError tells the operator *what*
  /// the hostile guest exhausted.
  void checkBudgets() {
    const BudgetConfig &B = Config.Budget;
    if (Abort != RunError::None)
      return;
    if (B.MaxTranslations != 0 &&
        Translations + TracesFormed > B.MaxTranslations) {
      Abort = RunError::BudgetTranslations;
      Trace.emit(obs::TraceEventKind::BudgetExceeded, 0, 0, 0,
                 Translations + TracesFormed);
    } else if (B.MaxCodeBytes != 0 && CodeBytesEmitted > B.MaxCodeBytes) {
      Abort = RunError::BudgetCodeBytes;
      Trace.emit(obs::TraceEventKind::BudgetExceeded, 0, 0, 1,
                 CodeBytesEmitted);
    } else if (B.MaxChurn != 0 &&
               Supersedes + SmcInvalidations > B.MaxChurn) {
      Abort = RunError::BudgetChurn;
      Trace.emit(obs::TraceEventKind::BudgetExceeded, 0, 0, 2,
                 Supersedes + SmcInvalidations);
    }
  }

  // -- code-cache verification ---------------------------------------------

  /// Run the structural verifier (EngineConfig::Verify) over the
  /// current cache.  Called after every mutation of installed code; a
  /// violation aborts the run with VerifyFailed.  Read-only, so it is
  /// safe even from fault-handler context.  \p Force runs the sweep
  /// even when EngineConfig::Verify is off — the AOT output checker
  /// verifies statically produced code unconditionally.
  void runVerifier(bool Force = false) {
    if ((!Config.Verify && !Force) || Abort != RunError::None)
      return;
    analysis::VerifierInput In;
    std::unordered_map<const Translation *, size_t> Index;
    for (Translation &T : Store) {
      if (!T.Valid)
        continue;
      analysis::VerifierBlock B;
      B.EntryWord = T.EntryWord;
      B.EndWord = T.EndWord;
      B.BornEpoch = T.BornEpoch;
      B.AotInstalled = T.AotInstalled;
      for (const auto &R : T.GuestRanges)
        B.GuestRanges.push_back({R.first, R.second});
      for (const ExitSite &X : T.Exits)
        B.ExitWords.push_back(X.SrvWord);
      for (const IcSite &S : T.IcSites)
        for (const IcWay &W : S.Ways)
          if (!W.Stale) // quarantined ways are covered by ExemptWords
            B.IcWays.push_back(
                {W.Begin, W.Filled, W.TargetEntry, W.TargetGuestPc});
      for (uint32_t W : T.PatchedWords)
        B.Patches.push_back({W, T.MemWordToGuestPc.count(W) != 0});
      for (const FusedSite &F : T.FusedSites)
        B.FusedSites.push_back({F.Rule, F.Begin, F.End, F.Words});
      Index[&T] = In.Blocks.size();
      In.Blocks.push_back(std::move(B));
    }
    for (const auto &[Entry, Region] : Regions) {
      Translation *T = Region.second;
      if (!T->Valid || Entry == T->EntryWord)
        continue; // dead, or the body region itself
      auto It = Index.find(T);
      if (It != Index.end())
        In.Blocks[It->second].Stubs.push_back({Entry, Region.first});
    }
    In.ExemptWords = StaleChainWords;
    In.IcWayWords = IcWayWords;
    In.GuestDirtyEpoch = &ByteDirtyEpoch;
    if (AotCfg)
      In.ReachableRanges = &AotReachable;
    analysis::VerifyReport Report = analysis::verifyCodeSpace(Code, In);
    VerifyWords += Report.WordsChecked;
    if (Report.ok()) {
      ++VerifyPasses;
      Trace.emit(obs::TraceEventKind::VerifyPass, 0, 0,
                 Report.WordsChecked, Report.RegionsChecked);
      return;
    }
    VerifyIssues += Report.Issues.size();
    for (const analysis::VerifyIssue &I : Report.Issues)
      Trace.emit(obs::TraceEventKind::VerifyFail, 0, I.Word,
                 static_cast<uint64_t>(I.Kind), I.Aux);
    Abort = RunError::VerifyFailed;
  }

  // -- fault handling ------------------------------------------------------

  Translation *findOwner(uint32_t Word) {
    auto It = Regions.upper_bound(Word);
    if (It == Regions.begin())
      return nullptr;
    --It;
    if (Word >= It->second.first)
      return nullptr;
    return It->second.second;
  }

  /// Handle one (possibly stale or injected) trap delivery.  Validates
  /// the delivery against the current cache contents before acting:
  /// duplicate and spurious deliveries for a word that has since been
  /// patched, flushed, or reused must not patch the wrong instruction.
  FaultAction deliver(const FaultInfo &F) {
    if (F.HostPc >= Code.size() ||
        Code.word(F.HostPc) != encodeHost(F.Inst)) {
      // Stale delivery: the word no longer holds the faulting
      // instruction (already patched, flushed, or reused).
      ++SpuriousTraps;
      Trace.emit(obs::TraceEventKind::TrapSpurious, 0, 0, F.HostPc, 0);
      return FaultAction::Retry;
    }
    Translation *T = findOwner(F.HostPc);
    if (!T) {
      // The word matches but no live translation owns it (flushed and
      // not yet reused): emulate so the guest still makes progress.
      ++SpuriousTraps;
      Trace.emit(obs::TraceEventKind::TrapSpurious, 0, 0, F.HostPc, 1);
      return FaultAction::Fixup;
    }
    auto It = T->MemWordToGuestPc.find(F.HostPc);
    if (It == T->MemWordToGuestPc.end()) {
      ++SpuriousTraps;
      Trace.emit(obs::TraceEventKind::TrapSpurious, 0, T->GuestPc,
                 F.HostPc, 2);
      return FaultAction::Retry;
    }
    uint32_t InstPc = It->second;
    ++T->FaultCount;
    Trace.emit(obs::TraceEventKind::TrapTaken, InstPc, T->GuestPc,
               F.HostPc, T->FaultCount);

    FaultDecision D = Policy.onFault(InstPc, T->GuestPc, T->FaultCount);
    if (!D.PatchStub)
      return FaultAction::Fixup;

    // Exception-handling method (paper Fig. 5): generate the MDA code
    // sequence in the code cache and patch the offending instruction.
    Translator::StubInfo S;
    bool Adaptive = D.AdaptiveStub;
    if (Adaptive && NextCounterCell + 4 > Mem.size()) {
      // Runtime counter cells exhausted: degrade to a plain stub rather
      // than corrupting guest memory.
      Adaptive = false;
      ++StubDowngrades;
    }
    if (Adaptive) {
      // The revertible stub of paper Fig. 8 (right): remember the
      // original word so the monitor can patch it back when the stub
      // reports a run of aligned executions.
      uint32_t CounterAddr = NextCounterCell;
      NextCounterCell += 4;
      Mem.store(CounterAddr, 4, 0);
      PatchedOriginals[F.HostPc] = {Code.word(F.HostPc), InstPc};
      S = Trans.emitAdaptiveStub(F.Inst, F.HostPc, CounterAddr,
                                 MailboxAddr, D.RevertThreshold);
    } else {
      S = Trans.emitStub(F.Inst, F.HostPc);
    }
    Trace.emit(obs::TraceEventKind::StubEmitted, InstPc, T->GuestPc,
               S.Entry, Adaptive ? 1 : 0);
    if (!patchVerified(F.HostPc,
                       Translator::stubBranchWord(F.HostPc, S.Entry))) {
      // The redirect did not stick; the original instruction is still
      // in place.  Emulate this occurrence and let a later trap retry
      // the patch (or the watchdog escalate).
      if (Adaptive)
        PatchedOriginals.erase(F.HostPc);
      return Abort != RunError::None ? FaultAction::Halt
                                     : FaultAction::Fixup;
    }
    T->PatchedWords.push_back(F.HostPc);
    T->MemWordToGuestPc.erase(F.HostPc);
    Regions[S.Entry] = {S.End, T};
    // A store executed out of the stub must stop the episode at the
    // same place as the body word it replaces: propagate the resume
    // metadata to every stub word.  (Loads were never recorded, so the
    // lookup fails for them and nothing is registered.)
    auto RIt = T->StoreResume.find(F.HostPc);
    if (RIt != T->StoreResume.end()) {
      SmcResume V = RIt->second; // copy: the inserts below may rehash
      for (uint32_t W = S.Entry; W != S.End; ++W)
        T->StoreResume[W] = V;
    }
    Machine.addCycles(Cost.PatchExtraCycles);
    chargeCodeGrowth(); // the stub is emitted code too
    checkBudgets();
    ++Patches;
    Trace.emit(obs::TraceEventKind::PatchApplied, InstPc, T->GuestPc,
               F.HostPc, S.Entry);
    LastPatch = F;
    HaveLastPatch = true;
    runVerifier();
    if (Abort != RunError::None)
      return FaultAction::Halt;

    if (D.Supersede)
      supersede(T);
    return FaultAction::Retry;
  }

  /// Trap-storm watchdog escalation: force progress at a site the
  /// normal policy machinery has failed to fix.  Climbs a three-rung
  /// degradation ladder per block — (1) rearrangement with the storming
  /// site force-inlined, (2) retranslation with every memory site
  /// force-inlined, (3) interpret-only pin — and always emulates the
  /// current access so the guest advances regardless.
  FaultAction engageLadder(const FaultInfo &F) {
    ++WatchdogTrips;
    ConsecutiveTraps = 0;
    if (WatchdogTrips > Hard.MaxWatchdogTrips) {
      Abort = RunError::TrapStorm;
      return FaultAction::Halt;
    }
    Translation *T = findOwner(F.HostPc);
    if (!T) {
      ++SpuriousTraps;
      Trace.emit(obs::TraceEventKind::TrapSpurious, 0, 0, F.HostPc, 3);
      return FaultAction::Fixup;
    }
    uint32_t BlockPc = T->GuestPc;
    auto It = T->MemWordToGuestPc.find(F.HostPc);
    uint32_t InstPc =
        It != T->MemWordToGuestPc.end() ? It->second : 0;
    uint32_t Rung = ++LadderRungOf[BlockPc];
    Trace.emit(obs::TraceEventKind::LadderRung, InstPc, BlockPc,
               Rung > 3 ? 3 : Rung, WatchdogTrips);
    if (Rung == 1 && InstPc != 0) {
      ForceInline.insert(InstPc);
      Policy.onWatchdogEscalation(BlockPc, InstPc, 1);
      if (T->Valid)
        supersede(T);
      ++LadderRearranges;
    } else if (Rung <= 2) {
      for (const auto &Entry : T->MemWordToGuestPc)
        ForceInline.insert(Entry.second);
      Policy.onWatchdogEscalation(BlockPc, InstPc, 2);
      if (T->Valid)
        supersede(T);
      ++LadderRetranslations;
    } else {
      InterpOnly.insert(BlockPc);
      Policy.onWatchdogEscalation(BlockPc, 0, 3);
      if (T->Valid)
        invalidate(T);
      ++LadderInterpPins;
    }
    return FaultAction::Fixup;
  }

  FaultAction onFault(const FaultInfo &F) {
    // Watchdog: consecutive traps at one host word with no intervening
    // progress (Fixup always advances Pc, so delta > 1 means the guest
    // is moving) indicate a livelock the policy cannot break.
    if (F.HostPc == LastTrapWord &&
        Machine.Instructions - LastTrapInsts <= 1) {
      ++ConsecutiveTraps;
    } else {
      ConsecutiveTraps = 1;
      LastTrapWord = F.HostPc;
    }
    LastTrapInsts = Machine.Instructions;
    if (Abort != RunError::None)
      return FaultAction::Halt;
    if (ConsecutiveTraps > Hard.WatchdogTrapK)
      return engageLadder(F);

    if (Injector && Injector->lostTrap()) {
      // The delivery is lost: the handler never runs and the faulting
      // instruction restarts — the retry storm the watchdog contains.
      ++ChaosLostTraps;
      return FaultAction::Retry;
    }
    FaultAction A = deliver(F);
    if (Abort != RunError::None)
      return FaultAction::Halt;
    if (Injector && Injector->duplicateTrap()) {
      // The same exception is delivered twice: the second delivery must
      // be recognized as stale and stay harmless.
      ++ChaosDupTraps;
      deliver(F);
      if (Abort != RunError::None)
        return FaultAction::Halt;
    }
    return A;
  }

  /// Apply a revert request posted by an adaptive stub: restore the
  /// original memory instruction.  It may trap (and be re-patched)
  /// later — that is the adaptivity loop of paper Fig. 8.
  void pollRevertMailbox() {
    uint32_t Posted = static_cast<uint32_t>(Mem.load(MailboxAddr, 4));
    if (Posted == 0)
      return;
    Mem.store(MailboxAddr, 4, 0);
    uint32_t FaultWord = Posted - 1;
    auto It = PatchedOriginals.find(FaultWord);
    if (It == PatchedOriginals.end())
      return;
    if (!patchVerified(FaultWord, It->second.first))
      return; // revert failed; the stub stays in place and stays correct
    Translation *T = findOwner(FaultWord);
    if (T)
      T->MemWordToGuestPc[FaultWord] = It->second.second;
    Trace.emit(obs::TraceEventKind::StubReverted, It->second.second,
               T ? T->GuestPc : 0, FaultWord, 0);
    PatchedOriginals.erase(It);
    MonitorCycles += Cost.ChainPatchCycles; // one store into the cache
    ++Reverts;
    runVerifier();
  }

  // -- state sync ----------------------------------------------------------

  void syncToHost() {
    for (unsigned I = 0; I != guest::NumGPR; ++I)
      Machine.R[hostGpr(I)] = Cpu.Gpr[I];
    for (unsigned I = 0; I != guest::NumQReg; ++I)
      Machine.R[hostQ(I)] = Cpu.Qreg[I];
    Machine.R[RegChecksum] = Cpu.Checksum;
  }

  void syncToGuest() {
    for (unsigned I = 0; I != guest::NumGPR; ++I)
      Cpu.Gpr[I] = static_cast<uint32_t>(Machine.R[hostGpr(I)]);
    for (unsigned I = 0; I != guest::NumQReg; ++I)
      Cpu.Qreg[I] = Machine.R[hostQ(I)];
    Cpu.Checksum = Machine.R[RegChecksum];
  }

  // -- chaining ------------------------------------------------------------

  void maybeChain(const ExitInfo &E) {
    if (!Config.EnableChaining)
      return;
    Translation *Owner = findOwner(E.SrvWord);
    if (!Owner || !Owner->Valid)
      return;
    for (ExitSite &X : Owner->Exits) {
      if (X.SrvWord != E.SrvWord)
        continue;
      if (!X.Direct || X.Chained)
        return;
      auto TIt = BlockMap.find(X.TargetGuestPc);
      if (TIt == BlockMap.end() || !TIt->second->Valid)
        return;
      Translation *Target = TIt->second;
      int64_t Disp = static_cast<int64_t>(Target->EntryWord) -
                     (static_cast<int64_t>(X.SrvWord) + 1);
      if (Disp < -(1 << 20) || Disp >= (1 << 20))
        return; // out of branch range; keep going through the monitor
      if (!patchVerified(X.SrvWord,
                         encodeHost(brInst(HostOp::Br, RegZero,
                                           static_cast<int32_t>(Disp)))))
        return; // chain patch failed; keep exiting through the monitor
      X.Chained = true;
      Target->IncomingChains.push_back(X.SrvWord);
      ChainCycles += Cost.ChainPatchCycles;
      ++Chains;
      Trace.emit(obs::TraceEventKind::BlockChained, X.TargetGuestPc,
                 Owner->GuestPc, X.SrvWord, Target->EntryWord);
      runVerifier();
      // A backward chain closes a native loop — the hotness signal for
      // superblock formation.  (Chain events, not dispatch counts: a
      // fully chained loop never revisits the monitor, so a dispatch
      // counter would stop ticking exactly when the loop gets hot.)
      if (Config.Superblocks && Abort == RunError::None &&
          X.TargetGuestPc <= Owner->GuestPc &&
          ++BackedgeHeat[X.TargetGuestPc] >= Config.SuperblockThreshold)
        tryFormSuperblock(X.TargetGuestPc);
      return;
    }
  }

  /// On an indirect-exit miss, fill (or refill) an inline-cache way
  /// with the observed target if it is translated (EngineConfig::
  /// InlineCaches).  Interior words are written before the guard, so a
  /// partially written way is never executable; any patch failure
  /// leaves the way disabled.
  void maybeIcFill(const ExitInfo &E) {
    if (!Config.InlineCaches || Abort != RunError::None)
      return;
    Translation *Owner = findOwner(E.SrvWord);
    if (!Owner || !Owner->Valid || Owner->IcSites.empty())
      return;
    uint32_t SiteIdx = ~0u;
    for (uint32_t I = 0; I != Owner->IcSites.size(); ++I) {
      if (Owner->IcSites[I].SrvWord == E.SrvWord) {
        SiteIdx = I;
        break;
      }
    }
    if (SiteIdx == ~0u)
      return; // a direct exit's Srv word, not an IC fallback
    IcSite &Site = Owner->IcSites[SiteIdx];
    ++IcMisses;
    auto TIt = BlockMap.find(E.GuestPc);
    if (TIt == BlockMap.end() || !TIt->second->Valid)
      return; // target not translated yet; a later miss can fill
    Translation *Target = TIt->second;
    // Victim selection: first empty way, else round-robin eviction.
    // Quarantined (Stale) ways are out of service until the next flush.
    IcWay *Way = nullptr;
    uint32_t WayIdx = 0;
    for (uint32_t I = 0; I != Site.Ways.size(); ++I) {
      if (!Site.Ways[I].Filled && !Site.Ways[I].Stale) {
        Way = &Site.Ways[I];
        WayIdx = I;
        break;
      }
    }
    bool Evicting = false;
    if (!Way) {
      uint32_t N = static_cast<uint32_t>(Site.Ways.size());
      for (uint32_t K = 0; K != N; ++K) {
        uint32_t I = (Site.NextVictim + K) % N;
        if (!Site.Ways[I].Stale) {
          Way = &Site.Ways[I];
          WayIdx = I;
          Site.NextVictim = (I + 1) % N;
          Evicting = true;
          break;
        }
      }
      if (!Way)
        return; // every way quarantined; fall back to the monitor
    }
    uint32_t FinalBr = Way->Begin + IcWayWords - 1;
    int64_t Disp = static_cast<int64_t>(Target->EntryWord) -
                   (static_cast<int64_t>(FinalBr) + 1);
    if (Disp < -(1 << 20) || Disp >= (1 << 20))
      return; // out of branch range; keep going through the monitor
    if (Evicting) {
      ++IcEvictions;
      Trace.emit(obs::TraceEventKind::DispatchIcEvict, Way->TargetGuestPc,
                 Owner->GuestPc, Way->Begin, 0);
      if (!retireIcWay(*Way)) {
        runVerifier();
        return; // victim quarantined; this fill attempt is abandoned
      }
    }
    // Interiors first (tag compare, miss skip, target branch), guard
    // last: the way only becomes executable once fully written.
    uint32_t Tag = Target->GuestPc;
    int32_t Lo = static_cast<int16_t>(Tag & 0xffff);
    int32_t Hi =
        static_cast<int32_t>(Tag - static_cast<uint32_t>(Lo)) >> 16;
    const std::pair<uint32_t, uint32_t> Interior[] = {
        {Way->Begin + 1,
         encodeHost(memInst(HostOp::Lda, RegScratch1, Lo, RegScratch1))},
        {Way->Begin + 2,
         encodeHost(opInst(HostOp::Zextl, RegZero, RegScratch1,
                           RegScratch1))},
        {Way->Begin + 3,
         encodeHost(opInst(HostOp::Cmpeq, RegExitPc, RegScratch1,
                           RegScratch2))},
        {Way->Begin + 4, encodeHost(brInst(HostOp::Beq, RegScratch2, 1))},
        {FinalBr, encodeHost(brInst(HostOp::Br, RegZero,
                                    static_cast<int32_t>(Disp)))},
    };
    for (const auto &P : Interior) {
      if (!patchVerified(P.first, P.second)) {
        // patchVerified restored the word (or quarantined the run); the
        // guard is still disabled, so the way stays safely inert.
        ++IcFillFails;
        runVerifier();
        return;
      }
    }
    if (!patchVerified(Way->Begin,
                       encodeHost(memInst(HostOp::Ldah, RegScratch1, Hi,
                                          RegZero)))) {
      // Guard never armed, but FinalBr now holds a live branch the
      // verifier cannot tie to a filled way: scrub it.
      ++IcFillFails;
      if (!patchVerified(FinalBr, hostNopWord()))
        StaleChainWords.insert(FinalBr);
      runVerifier();
      return;
    }
    StaleChainWords.erase(FinalBr); // freshly verified content
    Way->Filled = true;
    Way->Stale = false;
    Way->TargetEntry = Target->EntryWord;
    Way->TargetGuestPc = Tag;
    Target->IncomingIcWays.push_back({Owner, SiteIdx, WayIdx});
    ChainCycles +=
        static_cast<uint64_t>(Cost.ChainPatchCycles) * IcWayWords;
    ++IcFills;
    Trace.emit(obs::TraceEventKind::DispatchIcFill, Tag, Owner->GuestPc,
               Way->Begin, Target->EntryWord);
    runVerifier();
  }

  // -- superblock formation ----------------------------------------------

  /// Re-emit the hot chain of blocks starting at \p HeadPc as one
  /// straight-line superblock (EngineConfig::Superblocks).  The trace
  /// supersedes the head block in the block map; constituents' recorded
  /// MemPlans are replayed so every memory site keeps its exact MDA
  /// treatment.  De-optimization is ordinary invalidation: the trace
  /// falls back to the still-installed constituent blocks.
  void tryFormSuperblock(uint32_t HeadPc) {
    if (Abort != RunError::None || InterpOnly.count(HeadPc))
      return;
    // Trace planning replays constituent MemPlans and consults the
    // analysis for fresh sites: both must be current.
    maybeReanalyze();
    if (Abort != RunError::None)
      return;
    if (TraceFormsAt[HeadPc] >= Config.TraceFormationLimit)
      return;
    auto HIt = BlockMap.find(HeadPc);
    if (HIt == BlockMap.end() || !HIt->second->Valid ||
        HIt->second->IsTrace)
      return;
    Translation *Head = HIt->second;

    // Walk direct exits from the head, preferring chained (observed
    // hot) edges, to pick the trace's constituents.
    std::vector<uint32_t> Pcs;
    std::unordered_set<uint32_t> Seen;
    std::unordered_map<uint32_t, MemPlan> Plans;
    uint32_t Pc = HeadPc;
    bool ClosedAtHead = false;
    while (Pcs.size() < Config.SuperblockMaxBlocks) {
      auto It = BlockMap.find(Pc);
      if (It == BlockMap.end() || !It->second->Valid ||
          It->second->IsTrace)
        break;
      if (!Seen.insert(Pc).second) {
        ClosedAtHead = Pc == HeadPc;
        break; // closed the loop (or revisited): stop
      }
      Pcs.push_back(Pc);
      Translation *T = It->second;
      for (const auto &KV : T->PlanByPc)
        Plans.insert(KV);
      const ExitSite *Next = nullptr;
      for (const ExitSite &X : T->Exits) {
        if (!X.Direct)
          continue;
        if (X.Chained) {
          Next = &X;
          break;
        }
        if (!Next)
          Next = &X;
      }
      if (!Next)
        break; // indirect terminator: the trace ends here
      Pc = Next->TargetGuestPc;
    }
    // A loop that closes back at the head is unrolled to fill the block
    // budget: each extra copy turns the backedge's exit sequence
    // (materialize exit PC + branch) into straight-line fallthrough,
    // which is where a superblock actually earns its cycles on tight
    // loops.  Only the final copy's backedge survives, and it chains to
    // the trace's own entry like any other exit.
    // One extra copy only: each further copy saves the same few exit
    // instructions per circuit but multiplies code size (I-cache
    // pressure — exactly the locality figs. 6/11 measure) and
    // translation cycles.
    if (ClosedAtHead && Pcs.size() * 2 <= Config.SuperblockMaxBlocks) {
      const std::vector<uint32_t> Body = Pcs;
      Pcs.insert(Pcs.end(), Body.begin(), Body.end());
    }
    if (Pcs.size() < 2)
      return; // a single-block "trace" would only re-emit the head

    ++TraceFormsAt[HeadPc];
    std::vector<GuestBlock> Blocks;
    uint32_t TotalInsts = 0;
    Blocks.reserve(Pcs.size());
    for (uint32_t P : Pcs) {
      Blocks.push_back(discoverBlock(Mem, P));
      TotalInsts += static_cast<uint32_t>(Blocks.back().size());
    }
    if (Injector && Injector->translateFails()) {
      ++ChaosTranslateFails;
      ++TranslateFailures;
      if (!Policy.translationIsOffline())
        TranslateCycles += static_cast<uint64_t>(TotalInsts) *
                           Cost.TranslateCyclesPerInst;
      Trace.emit(obs::TraceEventKind::TranslationFailed, HeadPc, HeadPc,
                 0, Head->Generation + 1);
      if (Hard.TranslationFailureLimit != 0 &&
          TranslateFailures > Hard.TranslationFailureLimit)
        Abort = RunError::TranslationFailed;
      return; // constituents stay in service; no harm done
    }
    // Each site gets the stronger of its recorded constituent plan and
    // the policy's current verdict: never weaker than the constituent
    // (the identity guarantee PlanByPc exists for), and never weaker
    // than what the policy has learned since — a site the constituent
    // emitted as a plain op and later patched to a stub re-emits with
    // the MDA sequence inline, like any retranslation would, instead of
    // re-faulting once per trace copy.
    Translator::PlanFn Plan = [this, &Plans](uint32_t InstPc,
                                             const guest::GuestInst &I) {
      MemPlan Fresh = planMemOp(InstPc, I);
      auto It = Plans.find(InstPc);
      if (It == Plans.end() || It->second == MemPlan::Normal)
        return Fresh;
      return It->second; // keep the constituent's MDA treatment
    };
    bool FromCache = false;
    if (Service) {
      // Same serving path as installTranslation, keyed over every
      // constituent (including unroll copies) so the trace's exact
      // shape is part of the key.
      TranslationOpts Opts = translationOpts();
      std::vector<const GuestBlock *> Ptrs;
      Ptrs.reserve(Blocks.size());
      for (const GuestBlock &B : Blocks)
        Ptrs.push_back(&B);
      CacheKey Key =
          serviceKey(Ptrs.data(), Ptrs.size(), Plan, Opts, /*IsTrace=*/true);
      TranslationLease L = Service->acquire(Key);
      if (L) {
        Store.push_back(instantiateCached(L.get(), Head->Generation + 1));
        FromCache = true;
        ++CacheHits;
        CacheHitInsts += TotalInsts;
        Trace.emit(obs::TraceEventKind::CacheHit, HeadPc, HeadPc, Key.Lo,
                   Head->Generation + 1);
      } else {
        Store.push_back(Trans.translateTrace(Blocks, Plan,
                                             Head->Generation + 1, Opts));
        uint64_t Evicted = 0;
        L = Service->publish(Key, captureCached(Store.back()), &Evicted);
        ++CacheMisses;
        CacheEvictions += Evicted;
        Trace.emit(obs::TraceEventKind::CacheMiss, HeadPc, HeadPc, Key.Lo,
                   Head->Generation + 1);
        if (Evicted)
          Trace.emit(obs::TraceEventKind::CacheEvict, HeadPc, HeadPc,
                     Evicted, 0);
      }
      Leases.emplace(&Store.back(), std::move(L));
    } else {
      Store.push_back(Trans.translateTrace(Blocks, Plan,
                                           Head->Generation + 1,
                                           translationOpts()));
    }
    Translation *Tr = &Store.back();
    Regions[Tr->EntryWord] = {Tr->EndWord, Tr};
    trackTranslation(Tr);
    if (!Policy.translationIsOffline())
      TranslateCycles += static_cast<uint64_t>(TotalInsts) *
                         (FromCache ? Cost.CacheInstallCyclesPerInst
                                    : Cost.TranslateCyclesPerInst);
    ++TracesFormed;
    chargeCodeGrowth();
    checkBudgets();
    TraceBlocksEmitted += Pcs.size();
    HTransInsts->record(TotalInsts);
    Trace.emit(obs::TraceEventKind::TraceFormed, HeadPc, HeadPc,
               Pcs.size(), Tr->EntryWord);
    recordFusion(*Tr);
    if (Config.CodeCacheLimitWords != 0 &&
        Tr->EndWord - Tr->EntryWord > Config.CodeCacheLimitWords) {
      // The trace alone would thrash the cache: drop it and stop trying
      // to form one at this head.
      TraceFormsAt[HeadPc] = Config.TraceFormationLimit;
      invalidate(Tr);
      runVerifier();
      return;
    }
    // Capture the head's incoming chains before invalidation unchains
    // them: an unchained source never re-chains on its own, so without
    // redirection every former backedge would round-trip through the
    // monitor forever — the opposite of what the trace is for.
    const std::vector<uint32_t> Incoming = Head->IncomingChains;
    invalidate(Head);
    BlockMap[HeadPc] = Tr;
    if (Dispatch)
      Dispatch->insert(HeadPc, Tr);
    for (uint32_t W : Incoming) {
      if (StaleChainWords.count(W))
        continue; // the unchain did not stick; leave it quarantined
      Translation *Src = findOwner(W);
      if (!Src || !Src->Valid)
        continue; // the head's own backedge, or a dead caller
      int64_t Disp = static_cast<int64_t>(Tr->EntryWord) -
                     (static_cast<int64_t>(W) + 1);
      if (Disp < -(1 << 20) || Disp >= (1 << 20))
        continue;
      if (!patchVerified(W, encodeHost(brInst(HostOp::Br, RegZero,
                                              static_cast<int32_t>(Disp)))))
        continue; // keep exiting through the monitor (verified restore)
      Tr->IncomingChains.push_back(W);
      ChainCycles += Cost.ChainPatchCycles;
      ++Chains;
      Trace.emit(obs::TraceEventKind::BlockChained, HeadPc, Src->GuestPc,
                 W, Tr->EntryWord);
    }
    runVerifier();
  }

  // -- shared translation service (docs/SERVING.md) -----------------------

  /// Serialize everything that determines the translator's emission for
  /// this (multi-)block and hash it into the service cache key: cache
  /// format version, trace-ness, the block-level options, every
  /// constituent's start PC and raw guest bytes, and the MemPlan the
  /// plan chain returns for every planned site (policy decision,
  /// analysis verdict and ladder override all fold into that value).
  /// Two runs arriving at the same key are therefore guaranteed the
  /// same emitted host words — the byte-identity invariant the whole
  /// serving layer rests on.
  CacheKey serviceKey(const GuestBlock *const *Blocks, size_t NBlocks,
                      const Translator::PlanFn &Plan,
                      const TranslationOpts &Opts, bool IsTrace) {
    return translationContentKey(Mem, Blocks, NBlocks, Plan, Opts, IsTrace);
  }

  /// Snapshot a freshly translated block's pristine words and install
  /// metadata into the relocatable cached form.  Called before any
  /// chaining/patching can touch the words; hash-map metadata is sorted
  /// so the published payload is deterministic.
  CachedTranslation captureCached(const Translation &T) {
    return captureTranslation(T, Code);
  }

  /// Install a cached translation at this run's arena tail, rebasing
  /// every piece of metadata onto the new entry word.  The private copy
  /// is indistinguishable from a fresh local translation: chains, MDA
  /// stubs and inline-cache fills mutate only this run's words, never
  /// the shared entry.  (The emitted words are position-independent:
  /// all translator-internal control flow is PC-relative and exits
  /// materialize guest PCs as data, so a straight word copy is a
  /// correct relocation.)
  Translation instantiateCached(const CachedTranslation &C,
                                uint32_t Generation) {
    uint32_t Base = Code.size();
    for (uint32_t W : C.Words)
      Code.append(W);
    Translation T;
    T.GuestPc = C.GuestPc;
    T.EntryWord = Base;
    T.EndWord = Base + static_cast<uint32_t>(C.Words.size());
    for (const CachedTranslation::RelExit &E : C.Exits) {
      ExitSite X;
      X.SrvWord = Base + E.Word;
      X.TargetGuestPc = E.TargetGuestPc;
      X.Direct = E.Direct != 0;
      T.Exits.push_back(X);
    }
    for (const auto &MW : C.MemWordToGuestPc)
      T.MemWordToGuestPc[Base + MW.first] = MW.second;
    for (const CachedTranslation::RelResume &R : C.StoreResume)
      T.StoreResume[Base + R.Word] = {Base + R.EndWord, R.ResumePc};
    T.GuestInsts = C.GuestInsts;
    T.Generation = Generation;
    for (const CachedTranslation::RelIcSite &S : C.IcSites) {
      IcSite Site;
      Site.SrvWord = Base + S.SrvWord;
      Site.Ways.reserve(S.WayBegins.size());
      for (uint32_t W : S.WayBegins) {
        IcWay Way;
        Way.Begin = Base + W;
        Site.Ways.push_back(Way);
      }
      T.IcSites.push_back(std::move(Site));
    }
    for (const auto &P : C.PlanByPc)
      T.PlanByPc[P.first] = static_cast<MemPlan>(P.second);
    T.IsTrace = C.IsTrace != 0;
    T.Constituents = C.Constituents;
    T.GuestRanges = C.GuestRanges;
    for (const CachedTranslation::RelFusedSite &F : C.FusedSites) {
      FusedSite S;
      S.Rule = F.Rule;
      S.GuestLen = F.GuestLen;
      S.Begin = Base + F.Begin;
      S.End = Base + F.End;
      S.GuestPc = F.GuestPc;
      S.SavedWords = F.SavedWords;
      // The cached payload is the pristine translator output, so the
      // fused core's reference words come straight from it.
      S.Words.assign(C.Words.begin() + F.Begin, C.Words.begin() + F.End);
      T.FusedSites.push_back(std::move(S));
    }
    return T;
  }

  // -- members ---------------------------------------------------------------

  MdaPolicy &Policy;
  const EngineConfig &Config;
  const CostModel &Cost;
  const HardeningConfig &Hard;

  guest::GuestMemory Mem;
  guest::GuestCPU Cpu;
  guest::Interpreter Interp;
  CodeSpace Code;
  MemoryHierarchy Hier;
  HostMachine Machine;
  Translator Trans;
  InterpProfiler Profiler;

  // -- observability -----------------------------------------------------

  /// TraceClock: the monotonic virtual time every trace event carries —
  /// the same cycle aggregation RunResult::Cycles reports at end of run.
  uint64_t now() const override {
    return Machine.Cycles + InterpCycles + TranslateCycles +
           MonitorCycles + ChainCycles;
  }

  obs::Tracer Trace;
  obs::MetricsRegistry Reg;
  /// Histogram handles resolved once; hot paths record through these
  /// rather than by-name lookups.
  obs::Histogram *HTransInsts;
  obs::Histogram *HTrapBlock;
  obs::Histogram *HInterpInsts;

  std::unordered_map<uint32_t, Translation *> BlockMap;
  std::unordered_map<uint32_t, uint32_t> Heat;
  std::deque<Translation> Store;
  /// Host-word region -> owning translation (bodies and stubs).
  std::map<uint32_t, std::pair<uint32_t, Translation *>> Regions;

  /// Hash-table monitor dispatch (EngineConfig::HashDispatch); a pure
  /// cache over BlockMap, kept coherent at install/invalidate/flush.
  std::optional<DispatchTable> Dispatch;
  /// Backward-chain events per loop-head PC (superblock hotness).
  std::unordered_map<uint32_t, uint32_t> BackedgeHeat;
  /// Formation attempts per head PC (bounds retry after de-opt).
  std::unordered_map<uint32_t, uint32_t> TraceFormsAt;

  /// Adaptive-revert runtime state (paper Fig. 8, right).
  static constexpr uint32_t MailboxAddr = guest::layout::RuntimeBase;
  uint32_t NextCounterCell = guest::layout::RuntimeBase + 8;
  /// Adaptively patched word -> (original word, guest inst PC).
  std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>>
      PatchedOriginals;

  /// Fault injection (chaos campaigns); disengaged in normal runs.
  std::optional<chaos::FaultInjector> Injector;
  bool ChaosPatchArmed = false;
  /// Most recent successfully patched fault, replayed by the spurious
  /// (stale re-delivery) injection point.
  FaultInfo LastPatch;
  bool HaveLastPatch = false;

  /// Static alignment analysis (EngineConfig::Analysis); empty when
  /// disabled.  Also implied by EngineConfig::Aot != Off.
  std::optional<analysis::AnalysisResult> Ana;

  // -- static AOT pre-translation state (EngineConfig::Aot) --------------

  /// Statically recovered CFG of the pristine image (Aot != Off only).
  std::optional<analysis::CfgResult> AotCfg;
  /// AotCfg's merged reachable byte ranges in the verifier's region
  /// form (HostVerifier check 10), sorted and disjoint.
  std::vector<analysis::VerifierRegion> AotReachable;
  /// The pre-translator; emplaced by aotStartup() before the first
  /// guest instruction.
  std::optional<AotTranslator> Aot;
  /// Mirror of the write-watch page refcounts held for pending AOT
  /// units: flushAll()'s drain assertion and stale-unit unwatching.
  std::unordered_map<uint32_t, uint32_t> AotWatchRef;
  /// First-touch dynamic block heads (coverage accounting: a head the
  /// monitor ever dispatches is either statically covered or a flagged
  /// fallback).
  std::unordered_set<uint32_t> DynHeads;
  uint64_t AotInstalls = 0;
  uint64_t AotCoveredHeads = 0;
  uint64_t AotFallbackBlocks = 0;
  uint64_t AotStartupCycles = 0;

  /// Chain-exit words whose unchain patch failed under fault injection:
  /// quarantined from the verifier's liveness checks until the next
  /// flush (see invalidate()).
  std::unordered_set<uint32_t> StaleChainWords;

  // -- guest-code coherence state ----------------------------------------

  /// Live translations indexed by guest watch page (GuestMemory::
  /// WatchPageShift granularity): the write barrier's victim lookup.
  std::unordered_map<uint32_t, std::vector<Translation *>> TrackedByPage;
  /// Guest-store epoch: bumped once per barrier-visible store.  Dirty
  /// bytes and Translation::BornEpoch are stamped with it.
  uint64_t StoreEpoch = 0;
  /// Dirtied guest code byte -> epoch of the store that dirtied it.
  /// Byte-granular on purpose: two translations can share one watch
  /// page, and the verifier must not flag the live neighbour of a
  /// rewritten range.  Bounded by distinct dirtied bytes on watched
  /// pages (only those reach the barrier).
  std::unordered_map<uint32_t, uint64_t> ByteDirtyEpoch;
  /// Re-entrancy guard for the write barrier.
  bool InSmcBarrier = false;
  /// Inside SMC-triggered invalidation: failed unchain/IC-retire
  /// patches abort instead of quarantining (see invalidate()).
  bool SmcStrict = false;
  /// Guest code bytes changed since the last analysis pass; re-run
  /// lazily at the next safe point (maybeReanalyze).
  bool AnaStale = false;
  /// SMC invalidations per block PC (BudgetConfig::SmcChurnPinLimit).
  std::unordered_map<uint32_t, uint32_t> SmcInvalsAt;
  /// Re-analysis anchor (the image's entry and initial stack top).
  uint32_t EntryPc = 0;
  uint32_t StackTopAddr = 0;

  /// Degradation-ladder state.
  std::unordered_set<uint32_t> ForceInline; ///< inst PCs forced Inline
  std::unordered_set<uint32_t> InterpOnly;  ///< block PCs never translated
  std::unordered_map<uint32_t, uint32_t> LadderRungOf; ///< block -> rung
  std::unordered_map<uint32_t, uint32_t> TranslateFailsAt;
  RunError Abort = RunError::None;

  /// Trap-storm watchdog state.
  uint32_t LastTrapWord = ~0u;
  uint64_t LastTrapInsts = 0;
  uint32_t ConsecutiveTraps = 0;

  uint64_t StepIndex = 0;
  uint64_t LastFlushStep = 0;

  uint64_t InterpCycles = 0;
  uint64_t TranslateCycles = 0;
  uint64_t MonitorCycles = 0;
  uint64_t ChainCycles = 0;
  uint64_t InterpInsts = 0;
  uint64_t InterpRefs = 0;
  uint64_t InterpBlocks = 0;
  uint64_t Translations = 0;
  uint64_t Supersedes = 0;
  uint64_t Patches = 0;
  uint64_t Chains = 0;
  uint64_t Reverts = 0;
  uint64_t Flushes = 0;
  uint64_t NativeEntries = 0;
  uint64_t WatchdogTrips = 0;
  uint64_t LadderRearranges = 0;
  uint64_t LadderRetranslations = 0;
  uint64_t LadderInterpPins = 0;
  uint64_t OversizedPins = 0;
  uint64_t SpuriousTraps = 0;
  uint64_t PatchRepairs = 0;
  uint64_t PatchFailures = 0;
  uint64_t TranslateFailures = 0;
  uint64_t FlushesSuppressed = 0;
  uint64_t StubDowngrades = 0;
  uint64_t ChaosLostTraps = 0;
  uint64_t ChaosDupTraps = 0;
  uint64_t ChaosSpurious = 0;
  uint64_t ChaosPatchDrops = 0;
  uint64_t ChaosPatchTears = 0;
  uint64_t ChaosTranslateFails = 0;
  uint64_t ChaosFlushStorms = 0;
  uint64_t PlanAlignedElides = 0;
  uint64_t PlanInlineForced = 0;
  uint64_t TableHits = 0;
  uint64_t TableMisses = 0;
  uint64_t TableProbes = 0;
  uint64_t IcFills = 0;
  uint64_t IcMisses = 0;
  uint64_t IcEvictions = 0;
  uint64_t IcFillFails = 0;
  uint64_t TracesFormed = 0;
  uint64_t TraceBlocksEmitted = 0;
  uint64_t TraceDeopts = 0;
  uint64_t FusionSites = 0;
  uint64_t FusionSavedWords = 0;
  uint64_t FusionBlocks = 0;
  uint64_t VerifyPasses = 0;
  uint64_t VerifyWords = 0;
  uint64_t VerifyIssues = 0;
  uint64_t SmcStores = 0;
  uint64_t SmcInvalidations = 0;
  uint64_t SmcReanalyses = 0;
  uint64_t SmcVerdictsRevoked = 0;
  uint64_t SmcChurnPins = 0;
  uint64_t SmcEpisodeStops = 0;
  // -- serving state (EngineConfig::Service) -----------------------------

  /// The process-wide translation service, or null for isolated runs.
  TranslationService *Service = nullptr;
  /// Shared-cache leases held by this run, one per service-installed
  /// translation.  Erased on invalidate/flush and drained wholesale at
  /// end of run, so the cache's live-lease count returns to this run's
  /// pre-existing level no matter how the run ended.
  std::unordered_map<const Translation *, TranslationLease> Leases;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t CacheHitInsts = 0;

  /// True while Machine.run() is on the stack: a write-barrier hit
  /// then means the store was issued by the running translation.
  bool InNative = false;
  /// Cumulative emitted host-code bytes (monotone across flushes).
  uint64_t CodeBytesEmitted = 0;
  /// Arena size at the last chargeCodeGrowth() sample.
  uint32_t LastCodeWords = 0;
  bool PendingFlush = false;
};

RunResult ExecutionContext::Impl::run() {
  RunResult R;
  bool Guarded = false;
  Trace.emit(obs::TraceEventKind::RunBegin, Cpu.Pc, 0,
             Policy.hotThreshold(), Injector ? 1 : 0);

  // Static AOT pre-translation: populate (and under Full, install) the
  // code cache before the first guest instruction executes.
  if (Config.Aot != AotMode::Off)
    aotStartup();

  while (!Cpu.Halted) {
    if (++StepIndex > Config.MaxMonitorSteps) {
      Guarded = true;
      break;
    }
    if (Abort != RunError::None)
      break;

    if (Injector) {
      if (Injector->flushStorm()) {
        ++ChaosFlushStorms;
        // Flush-storm backoff: absorb requests arriving faster than
        // the cache can usefully refill.
        if (StepIndex - LastFlushStep >= Hard.FlushStormBackoffSteps)
          PendingFlush = true;
        else
          ++FlushesSuppressed;
      }
      if (HaveLastPatch && Injector->spuriousTrap()) {
        // Stale re-delivery of an already-handled exception: it must be
        // recognized as such and rejected.
        ++ChaosSpurious;
        Machine.addCycles(Cost.TrapCycles);
        deliver(LastPatch);
        if (Abort != RunError::None)
          break;
      }
    }

    if (PendingFlush) {
      flushAll();
      if (Abort != RunError::None)
        break;
    }

    // Guest code changed since the last analysis pass: re-analyze and
    // revoke stale Elide verdicts before dispatching anything compiled
    // under the old proofs.
    maybeReanalyze();
    if (Abort != RunError::None)
      break;

    // AOT coverage accounting: every executed head reaches this point
    // at least once before any chain or inline cache can bypass the
    // monitor, so first touch here decides statically-covered vs.
    // dynamically-discovered exactly once per head.
    if (Aot && DynHeads.insert(Cpu.Pc).second) {
      if (AotCfg->contains(Cpu.Pc)) {
        ++AotCoveredHeads;
      } else {
        ++AotFallbackBlocks;
        Trace.emit(obs::TraceEventKind::AotFallback, Cpu.Pc, Cpu.Pc,
                   AotFallbackBlocks, 0);
      }
    }

    Translation *T = nullptr;
    if (Dispatch) {
      // Hash-table dispatch: one open-addressed probe chain instead of
      // the block-map walk; each probe is priced individually.
      uint32_t Probes = 0;
      T = Dispatch->lookup(Cpu.Pc, Probes);
      TableProbes += Probes;
      if (T) {
        ++TableHits;
        MonitorCycles +=
            Cost.DispatchTableHitCycles +
            static_cast<uint64_t>(Probes - 1) * Cost.DispatchProbeCycles;
      } else {
        // Miss: like the baseline block-map path, the failed lookup is
        // folded into the interpretation/translation episode it starts
        // (charging it here would penalize the table for misses the
        // baseline never prices).  Probes are still counted.
        ++TableMisses;
      }
#ifndef NDEBUG
      // The table is a pure cache over BlockMap: any divergence is a
      // coherence bug, never a semantic choice.
      auto It = BlockMap.find(Cpu.Pc);
      Translation *Ref =
          (It != BlockMap.end() && It->second->Valid) ? It->second
                                                      : nullptr;
      assert(T == Ref && "dispatch table diverged from block map");
#endif
    } else {
      auto It = BlockMap.find(Cpu.Pc);
      T = (It != BlockMap.end() && It->second->Valid) ? It->second
                                                      : nullptr;
      if (T)
        MonitorCycles += Cost.MonitorDispatchCycles;
    }

    // Dispatch miss with a pending pre-translated unit: install it now,
    // before any heating — statically covered code never pays the
    // interpretation phase (the Hybrid install path; Full reaches it
    // only for units a capacity flush spilled back to pending).
    if (!T && Aot) {
      AotTranslator::Unit *U = Aot->find(Cpu.Pc);
      if (U && !U->Stale && !InterpOnly.count(Cpu.Pc)) {
        if (Config.CodeCacheLimitWords != 0 &&
            Code.size() > Config.CodeCacheLimitWords) {
          flushAll();
          if (Abort != RunError::None)
            break;
        }
        T = installAotUnit(*U, /*Sweep=*/true);
        if (Abort != RunError::None)
          break;
      }
    }

    if (T) {
      syncToHost();
      ++NativeEntries;
      InNative = true;
      ExitInfo E = Machine.run(T->EntryWord);
      InNative = false;
      syncToGuest();
      if (E.K == ExitInfo::Stop) {
        // SMC episode stop: the guest store invalidated the running
        // translation; resume by fresh dispatch at the next guest
        // instruction.  No chain/IC bookkeeping — the exit was
        // synthetic, not a Srv Exit word.
        Cpu.Pc = E.GuestPc;
        continue;
      }
      if (E.K == ExitInfo::Halt) {
        if (Abort == RunError::None)
          Cpu.Halted = true;
        break;
      }
      if (E.K == ExitInfo::Limit) {
        Guarded = true;
        break;
      }
      Cpu.Pc = E.GuestPc;
      pollRevertMailbox();
      maybeChain(E);
      maybeIcFill(E);
      continue;
    }

    if (!InterpOnly.count(Cpu.Pc)) {
      uint32_t H = ++Heat[Cpu.Pc];
      if (H > Policy.hotThreshold()) {
        // The block crossed the heating threshold: phase 1
        // (interpretation) -> phase 2 (native execution) for this PC.
        Trace.emit(obs::TraceEventKind::PhaseTransition, Cpu.Pc, Cpu.Pc,
                   H, 0);
        if (installTranslation(Cpu.Pc, /*Generation=*/0,
                               /*AllowFlush=*/true))
          continue; // dispatch natively on the next iteration
        if (Abort != RunError::None)
          break;
        // Translation failed: fall through and interpret this block so
        // the guest still makes forward progress.
      }
    }

    // Phase 1: interpret one dynamic basic block, profiling as we go.
    uint32_t BlockPc = Cpu.Pc;
    uint64_t N = Interp.stepBlock(Cpu);
    InterpInsts += N;
    ++InterpBlocks;
    InterpCycles += N * Cost.InterpCyclesPerInst;
    HInterpInsts->record(N);
    if (Trace.enabled())
      Trace.emit(obs::TraceEventKind::BlockInterpreted, BlockPc, BlockPc,
                 N, Heat[BlockPc]);
  }

  // One final sweep over whatever the cache holds at end of run.
  runVerifier();

  RunError Err = Abort;
  if (Err == RunError::None && (Guarded || !Cpu.Halted))
    Err = RunError::MonitorStepLimit;
  R.Error = Err;
  R.FinalCpu = Cpu;
  R.Checksum = Cpu.Checksum;
  // The BT-runtime scratch cells (revert counters) are not part of the
  // guest-visible state: zero them so the memory hash is comparable
  // with a pure-interpreter run.
  if (NextCounterCell > guest::layout::RuntimeBase)
    std::memset(Mem.data() + guest::layout::RuntimeBase, 0,
                NextCounterCell - guest::layout::RuntimeBase);
  R.MemoryHash = fnv1a(Mem.data(), Mem.size());
  R.Cycles = Machine.Cycles + InterpCycles + TranslateCycles +
             MonitorCycles + ChainCycles;
  Trace.emit(obs::TraceEventKind::RunEnd, Cpu.Pc, 0,
             static_cast<uint64_t>(Err), R.Cycles);
  if (Config.Trace)
    Config.Trace->flush();

  // Blocks still in service at end of run never pass through
  // invalidate(): fold their trap counts into the distribution here.
  for (Translation &T : Store)
    if (T.Valid)
      HTrapBlock->record(T.FaultCount);

  // The registry is the authoritative record; the legacy CounterBag is
  // derived from it below so the two views agree by construction.
  Reg.addCounter("cycles.total", R.Cycles);
  Reg.addCounter("cycles.native", Machine.Cycles);
  Reg.addCounter("cycles.interp", InterpCycles);
  Reg.addCounter("cycles.translate", TranslateCycles);
  Reg.addCounter("cycles.monitor", MonitorCycles);
  Reg.addCounter("cycles.chain", ChainCycles);
  Reg.addCounter("cycles.traps",
                 Machine.Faults * Cost.TrapCycles +
                     Machine.Fixups * Cost.FixupExtraCycles +
                     Patches * Cost.PatchExtraCycles);
  Reg.addCounter("interp.insts", InterpInsts);
  Reg.addCounter("interp.refs", InterpRefs);
  Reg.addCounter("interp.blocks", InterpBlocks);
  Reg.addCounter("host.insts", Machine.Instructions);
  Reg.addCounter("host.loads", Machine.Loads);
  Reg.addCounter("host.stores", Machine.Stores);
  Reg.addCounter("host.l1i_misses", Hier.L1I.misses());
  Reg.addCounter("host.l1d_misses", Hier.L1D.misses());
  Reg.addCounter("host.l2_misses", Hier.L2.misses());
  Reg.addCounter("dbt.translations", Translations);
  Reg.addCounter("dbt.supersedes", Supersedes);
  Reg.addCounter("dbt.patches", Patches);
  Reg.addCounter("dbt.chains", Chains);
  Reg.addCounter("dbt.reverts", Reverts);
  Reg.addCounter("dbt.flushes", Flushes);
  Reg.addCounter("dbt.native_entries", NativeEntries);
  Reg.addCounter("dbt.fault_traps", Machine.Faults);
  Reg.addCounter("dbt.fixups", Machine.Fixups);
  Reg.setGauge("dbt.code_words", Code.size());
  Reg.setGauge("run.error", static_cast<uint64_t>(Err));
  Reg.addCounter("harden.watchdog_trips", WatchdogTrips);
  Reg.addCounter("harden.ladder_rearrange", LadderRearranges);
  Reg.addCounter("harden.ladder_retranslate", LadderRetranslations);
  Reg.addCounter("harden.ladder_interp_only", LadderInterpPins);
  Reg.addCounter("harden.oversized_pins", OversizedPins);
  Reg.setGauge("harden.interp_only_blocks", InterpOnly.size());
  Reg.addCounter("harden.spurious_traps", SpuriousTraps);
  Reg.addCounter("harden.patch_repairs", PatchRepairs);
  Reg.addCounter("harden.patch_failures", PatchFailures);
  Reg.addCounter("harden.translate_failures", TranslateFailures);
  Reg.addCounter("harden.flush_suppressed", FlushesSuppressed);
  Reg.addCounter("harden.stub_downgrades", StubDowngrades);
  Reg.addCounter("smc.stores", SmcStores);
  Reg.addCounter("smc.invalidations", SmcInvalidations);
  Reg.addCounter("smc.reanalyses", SmcReanalyses);
  Reg.addCounter("smc.verdicts_revoked", SmcVerdictsRevoked);
  Reg.addCounter("smc.churn_pins", SmcChurnPins);
  Reg.addCounter("smc.episode_stops", SmcEpisodeStops);
  Reg.addCounter("budget.code_bytes_emitted", CodeBytesEmitted);
  if (Service) {
    Reg.addCounter("cache.hits", CacheHits);
    Reg.addCounter("cache.misses", CacheMisses);
    Reg.addCounter("cache.evictions", CacheEvictions);
    Reg.addCounter("cache.hit_insts", CacheHitInsts);
  }
  if (Config.HashDispatch) {
    Reg.addCounter("dispatch.table_hits", TableHits);
    Reg.addCounter("dispatch.table_misses", TableMisses);
    Reg.addCounter("dispatch.table_probes", TableProbes);
    Reg.addCounter("dispatch.table_inserts", Dispatch->inserts());
    Reg.addCounter("dispatch.table_erases", Dispatch->erases());
    Reg.addCounter("dispatch.table_rehashes", Dispatch->rehashes());
    Reg.setGauge("dispatch.table_capacity", Dispatch->capacity());
    Reg.setGauge("dispatch.table_tombstones", Dispatch->tombstones());
  }
  if (Config.InlineCaches) {
    Reg.addCounter("dispatch.ic_fills", IcFills);
    Reg.addCounter("dispatch.ic_misses", IcMisses);
    Reg.addCounter("dispatch.ic_evictions", IcEvictions);
    Reg.addCounter("dispatch.ic_fill_fails", IcFillFails);
  }
  if (Config.Superblocks) {
    Reg.addCounter("trace.formed", TracesFormed);
    Reg.addCounter("trace.blocks_emitted", TraceBlocksEmitted);
    Reg.addCounter("trace.deopts", TraceDeopts);
  }
  if (Config.Fusion) {
    Reg.addCounter("fusion.sites", FusionSites);
    Reg.addCounter("fusion.saved_words", FusionSavedWords);
    Reg.addCounter("fusion.blocks", FusionBlocks);
  }
  if (Ana) {
    Reg.addCounter("analysis.blocks", Ana->Blocks);
    Reg.addCounter("analysis.mem_sites", Ana->Sites.size());
    Reg.addCounter("analysis.provably_aligned", Ana->NumAligned);
    Reg.addCounter("analysis.provably_misaligned", Ana->NumMisaligned);
    Reg.addCounter("analysis.unknown", Ana->NumUnknown);
    Reg.addCounter("analysis.poisoned", Ana->Poisoned ? 1 : 0);
    Reg.addCounter("analysis.plan_aligned_elides", PlanAlignedElides);
    Reg.addCounter("analysis.plan_inline_forced", PlanInlineForced);
  }
  if (Config.Verify) {
    Reg.addCounter("verify.passes", VerifyPasses);
    Reg.addCounter("verify.words", VerifyWords);
    Reg.addCounter("verify.issues", VerifyIssues);
  }
  if (Config.Aot != AotMode::Off) {
    const AotTranslator::Stats &AS = Aot->stats();
    Reg.addCounter("aot.blocks", AS.RecoveredBlocks);
    Reg.addCounter("aot.frontier_sites", AS.FrontierSites);
    Reg.addCounter("aot.translated", AS.Translated);
    Reg.addCounter("aot.from_cache", AS.FromCache);
    Reg.addCounter("aot.installed", AotInstalls);
    Reg.addCounter("aot.covered_blocks", AotCoveredHeads);
    Reg.addCounter("aot.fallback_blocks", AotFallbackBlocks);
    Reg.addCounter("aot.stale_dropped", AS.StaleDropped);
    Reg.addCounter("aot.startup_cycles", AotStartupCycles);
    uint64_t Heads = AotCoveredHeads + AotFallbackBlocks;
    Reg.setGauge("aot.coverage_pct",
                 Heads ? (AotCoveredHeads * 100) / Heads : 100);
  }
  if (Injector) {
    Reg.addCounter("chaos.injected", Injector->injected());
    Reg.addCounter("chaos.lost_traps", ChaosLostTraps);
    Reg.addCounter("chaos.dup_traps", ChaosDupTraps);
    Reg.addCounter("chaos.spurious_traps", ChaosSpurious);
    Reg.addCounter("chaos.patch_drops", ChaosPatchDrops);
    Reg.addCounter("chaos.patch_tears", ChaosPatchTears);
    Reg.addCounter("chaos.translate_fail", ChaosTranslateFails);
    Reg.addCounter("chaos.flush_storms", ChaosFlushStorms);
  }
  Reg.fillCounterBag(R.Counters);
  R.Metrics = std::move(Reg);
  return R;
}

ExecutionContext::ExecutionContext(const guest::GuestImage &Image,
                                   MdaPolicy &Policy,
                                   const EngineConfig &Config)
    : Cfg(Config), I(new Impl(Image, Policy, Cfg)) {}

ExecutionContext::~ExecutionContext() = default;

RunResult ExecutionContext::run() {
  if (Used) {
    // A second run would silently reuse policy state already specialized
    // by the first; that has produced corrupt figures before.  Hard
    // error in every build mode, not just under assert.
    std::fprintf(stderr, "mdabt fatal: ExecutionContext::run() called "
                         "twice; one context performs exactly one run\n");
    std::abort();
  }
  Used = true;
  return I->run();
}
