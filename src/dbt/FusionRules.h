//===- dbt/FusionRules.h - Table-driven guest-idiom fusion -----*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A peephole fusion layer for the translator: a fixed table of rules,
/// each expressed as *data* — a pattern template (acceptable opcodes per
/// window slot), an operand-constraint predicate, an emitter tag (the
/// rule id; the translator owns the actual emission) and a cost delta —
/// that rewrites short windows of decoded GX86 instructions into fused
/// HAlpha sequences with fewer host words than the one-at-a-time
/// lowering.  The direct rule-table approach follows the
/// no-intermediate-representation argument of arXiv 2501.03427 and the
/// rules-as-data representation of arXiv 2402.09688.
///
/// Safety contract (enforced by FusionMatcher, verified by the fusion
/// ablation bench and the property tests):
///  - fused sequences are architecturally identical to the unfused
///    lowering, including 32-bit wrap and zero-extension invariants;
///  - a rule covering memory operations only fires when every covered
///    site's MemPlan is Normal or Elide, so inline MDA sequences,
///    multi-version code and retranslated (Fig. 7) sites are never
///    disturbed, and each fused site still registers its own
///    MemWordToGuestPc / StoreResume metadata;
///  - fused address sharing only uses RegScratch0, which no guest
///    instruction outlives, and excludes guest ops whose lowering
///    clobbers it (Sar/SarI).
///
/// The table carries a version number: SharedTranslationCache keys
/// include it (plus the enabled-rule mask) so a rule change can never
/// alias a differently-fused cached translation.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_DBT_FUSIONRULES_H
#define MDABT_DBT_FUSIONRULES_H

#include "dbt/GuestBlock.h"
#include "dbt/Translation.h"

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mdabt {
namespace dbt {

/// Version of the rule table below.  Bump on any change to a pattern,
/// constraint or emitted sequence; it is hashed into the shared-cache
/// content key next to the enabled-rule mask.
inline constexpr uint8_t FusionRuleTableVersion = 1;

/// The fusion rules, in match-priority order (lower id wins when two
/// rules match at the same window start).
enum class FusionRuleId : uint8_t {
  /// `MovRR d,s ; alu d,r2` -> one host op `d = s <op> r2`.
  MovOp = 0,
  /// `MovRR d,s ; aluI d,imm8` -> one host literal op `d = s <op> imm`.
  MovOpI = 1,
  /// `CmpI r,0 ; Jcc Eq/Ne` -> branch directly on r (drops the compare).
  CmpBr0 = 2,
  /// `AddI/SubI r,-imm8` -> the opposite literal op (drops the 3-word
  /// immediate materialization).
  ImmNeg = 3,
  /// `Ld r,[A] ; alu r ; St r,[A]` with one shared address computation.
  LdOpSt = 4,
  /// A run of memory ops sharing (base, index, scale): one shared
  /// base+index*scale computation, per-op displacements.
  SharedAddr = 5,
};

inline constexpr unsigned NumFusionRules = 6;

/// All-rules-enabled mask (bit i enables rule id i).
inline constexpr uint32_t FusionMaskAll = (1u << NumFusionRules) - 1;

inline constexpr uint32_t fusionRuleBit(FusionRuleId Id) {
  return 1u << static_cast<unsigned>(Id);
}

/// Printable rule name (bench table rows, trace rendering).
const char *fusionRuleName(FusionRuleId Id);

/// One slot of a rule's pattern template: the guest opcodes it accepts.
struct FusionSlot {
  uint8_t NumOps = 0;
  guest::Opcode Ops[16] = {};
};

/// True if \p Op is one of the slot's acceptable opcodes.
bool slotAccepts(const FusionSlot &S, guest::Opcode Op);

/// One fusion rule, expressed as data.  The emitter lives in the
/// translator (it needs assembler and translation-metadata state) and is
/// selected by Id; everything that decides *whether* a window fuses is
/// here, unit-testable without a translator.
struct FusionRule {
  FusionRuleId Id;
  const char *Name;
  /// Fixed window length in guest instructions (minimum length for a
  /// repeating rule).
  uint8_t Len;
  /// Repeating rule: Slots[0] matches every member and the window grows
  /// greedily up to MaxLen while the constraint keeps holding.
  bool Repeating;
  uint8_t MaxLen;
  /// Pattern template, Slots[0..Len) (Slots[0] only when repeating).
  FusionSlot Slots[3];
  /// Operand constraints over an opcode-matched window W[0..N): register
  /// identities, immediate ranges, addressing-mode compatibility.  Pure.
  bool (*Constraint)(const guest::GuestInst *W, size_t N);
  /// Estimated host words saved by one minimal-length fusion (the cost
  /// delta driving the bench's saved-words accounting; repeating and
  /// addressing-dependent rules refine it per match).
  uint8_t CostDelta;
};

/// The rule table (NumFusionRules entries, indexed by rule id).
const FusionRule *fusionRuleTable();

/// A successful match at one window start.
struct FusionMatch {
  FusionRuleId Rule = FusionRuleId::MovOp;
  /// Guest instructions consumed by the fused sequence.
  size_t Length = 0;
  /// Estimated host words saved vs the unfused lowering.
  uint32_t SavedWords = 0;
};

/// Matches the enabled rules against instruction windows of a block.
/// Plans for candidate memory sites come from a callback so the caller
/// (the body emitter) keeps sole ownership of policy consultation and
/// PlanByPc recording; rules covering memory ops only fire when every
/// covered site's plan is Normal or Elide.
class FusionMatcher {
public:
  explicit FusionMatcher(uint32_t Mask) : Mask(Mask & FusionMaskAll) {}

  bool enabled() const { return Mask != 0; }
  uint32_t mask() const { return Mask; }

  /// Try to fuse at Block.Insts[Idx], constrained to [Idx, To).
  /// \p PlanAt returns the plan the emitter will use for the memory
  /// instruction at an index.  Returns the highest-priority match.
  bool match(const GuestBlock &Block, size_t Idx, size_t To,
             const std::function<MemPlan(size_t)> &PlanAt,
             FusionMatch &Out) const;

private:
  uint32_t Mask;
};

} // namespace dbt
} // namespace mdabt

#endif // MDABT_DBT_FUSIONRULES_H
