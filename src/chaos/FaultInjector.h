//===- chaos/FaultInjector.h - Seeded fault-injection oracle ---*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime side of a FaultPlan: the engine consults the injector at
/// each injection point and the injector answers deterministically from
/// the plan's seeded PRNG.  All decisions share one injection budget
/// (FaultPlan::MaxInjections) so that even rate-1.0 campaigns terminate.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_CHAOS_FAULTINJECTOR_H
#define MDABT_CHAOS_FAULTINJECTOR_H

#include "chaos/FaultPlan.h"
#include "support/RNG.h"

#include <cstdint>

namespace mdabt {
namespace chaos {

/// Answers the engine's "does this operation fail?" questions for one
/// run, deterministically.
class FaultInjector {
public:
  explicit FaultInjector(const FaultPlan &Plan)
      : Plan(Plan), Rng(Plan.Seed) {}

  /// Trap delivery is lost; the faulting instruction restarts unhandled.
  bool lostTrap() { return fire(Plan.LostTrapRate); }

  /// The same exception is delivered a second time.
  bool duplicateTrap() { return fire(Plan.DuplicateTrapRate); }

  /// A stale re-delivery for an already-patched word arrives now.
  bool spuriousTrap() { return fire(Plan.SpuriousTrapRate); }

  /// Fate of one code-cache patch write.
  PatchFault patchFault();

  /// Deterministic corruption of a torn patch word.
  uint32_t tearWord(uint32_t Word) {
    return Word ^ (1u << (Rng.next() & 31));
  }

  /// The translator fails this block-translation attempt.
  bool translateFails();

  /// A spurious whole-cache flush is requested at this dispatch.
  bool flushStorm() { return fire(Plan.FlushStormRate); }

  /// Total events injected so far.
  uint64_t injected() const { return Injected; }

private:
  bool budgetLeft() const {
    return Plan.MaxInjections == 0 || Injected < Plan.MaxInjections;
  }
  bool fire(double Rate);

  FaultPlan Plan;
  RNG Rng;
  uint64_t Injected = 0;
  uint64_t TranslationAttempts = 0;
};

} // namespace chaos
} // namespace mdabt

#endif // MDABT_CHAOS_FAULTINJECTOR_H
