//===- chaos/FaultInjector.h - Seeded fault-injection oracle ---*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime side of a FaultPlan: the engine consults the injector at
/// each injection point and the injector answers deterministically from
/// the plan's seeded PRNG.  All decisions share one injection budget
/// (FaultPlan::MaxInjections) so that even rate-1.0 campaigns terminate.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_CHAOS_FAULTINJECTOR_H
#define MDABT_CHAOS_FAULTINJECTOR_H

#include "chaos/FaultPlan.h"
#include "support/RNG.h"

#include <cstdint>
#include <functional>

namespace mdabt {
namespace chaos {

/// What kind of fault an injection decision produced.  Reported through
/// the injection hook so the observability layer can attribute every
/// injected event (TraceEventKind::ChaosInjected carries this value).
enum class InjectKind : uint8_t {
  LostTrap = 0,
  DuplicateTrap,
  SpuriousTrap,
  PatchDrop,
  PatchTorn,
  TranslateFail,
  FlushStorm,
};

/// Stable human-readable name for an InjectKind.
const char *injectKindName(InjectKind Kind);

/// Answers the engine's "does this operation fail?" questions for one
/// run, deterministically.
class FaultInjector {
public:
  explicit FaultInjector(const FaultPlan &Plan)
      : Plan(Plan), Rng(Plan.Seed) {}

  /// Called once per *fired* injection, with the fault kind.  The engine
  /// uses this to emit chaos.injected trace events; unset = no overhead
  /// beyond the injection decision itself.
  using InjectionHook = std::function<void(InjectKind)>;
  void setInjectionHook(InjectionHook H) { Hook = std::move(H); }

  /// Trap delivery is lost; the faulting instruction restarts unhandled.
  bool lostTrap() { return fire(Plan.LostTrapRate, InjectKind::LostTrap); }

  /// The same exception is delivered a second time.
  bool duplicateTrap() {
    return fire(Plan.DuplicateTrapRate, InjectKind::DuplicateTrap);
  }

  /// A stale re-delivery for an already-patched word arrives now.
  bool spuriousTrap() {
    return fire(Plan.SpuriousTrapRate, InjectKind::SpuriousTrap);
  }

  /// Fate of one code-cache patch write.
  PatchFault patchFault();

  /// Deterministic corruption of a torn patch word.
  uint32_t tearWord(uint32_t Word) {
    return Word ^ (1u << (Rng.next() & 31));
  }

  /// The translator fails this block-translation attempt.
  bool translateFails();

  /// A spurious whole-cache flush is requested at this dispatch.
  bool flushStorm() {
    return fire(Plan.FlushStormRate, InjectKind::FlushStorm);
  }

  /// Total events injected so far.
  uint64_t injected() const { return Injected; }

private:
  bool budgetLeft() const {
    return Plan.MaxInjections == 0 || Injected < Plan.MaxInjections;
  }
  bool fire(double Rate, InjectKind Kind);
  void notify(InjectKind Kind) {
    if (Hook)
      Hook(Kind);
  }

  FaultPlan Plan;
  RNG Rng;
  InjectionHook Hook;
  uint64_t Injected = 0;
  uint64_t TranslationAttempts = 0;
};

} // namespace chaos
} // namespace mdabt

#endif // MDABT_CHAOS_FAULTINJECTOR_H
