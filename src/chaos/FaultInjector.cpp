//===- chaos/FaultInjector.cpp --------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "chaos/FaultInjector.h"

using namespace mdabt;
using namespace mdabt::chaos;

const char *mdabt::chaos::injectKindName(InjectKind Kind) {
  switch (Kind) {
  case InjectKind::LostTrap:
    return "lost-trap";
  case InjectKind::DuplicateTrap:
    return "duplicate-trap";
  case InjectKind::SpuriousTrap:
    return "spurious-trap";
  case InjectKind::PatchDrop:
    return "patch-drop";
  case InjectKind::PatchTorn:
    return "patch-torn";
  case InjectKind::TranslateFail:
    return "translate-fail";
  case InjectKind::FlushStorm:
    return "flush-storm";
  }
  return "unknown";
}

bool FaultInjector::fire(double Rate, InjectKind Kind) {
  if (Rate <= 0.0 || !budgetLeft())
    return false;
  if (Rng.unit() >= Rate)
    return false;
  ++Injected;
  notify(Kind);
  return true;
}

PatchFault FaultInjector::patchFault() {
  if (!budgetLeft() ||
      (Plan.PatchDropRate <= 0.0 && Plan.PatchTornRate <= 0.0))
    return PatchFault::None;
  double U = Rng.unit();
  if (U < Plan.PatchDropRate) {
    ++Injected;
    notify(InjectKind::PatchDrop);
    return PatchFault::Drop;
  }
  if (U < Plan.PatchDropRate + Plan.PatchTornRate) {
    ++Injected;
    notify(InjectKind::PatchTorn);
    return PatchFault::Torn;
  }
  return PatchFault::None;
}

bool FaultInjector::translateFails() {
  ++TranslationAttempts;
  if (Plan.TranslateFailAt != 0 &&
      TranslationAttempts == Plan.TranslateFailAt && budgetLeft()) {
    ++Injected;
    notify(InjectKind::TranslateFail);
    return true;
  }
  return fire(Plan.TranslateFailRate, InjectKind::TranslateFail);
}

FaultPlan FaultPlan::randomized(uint64_t Seed) {
  RNG Rng(Seed * 0x9e3779b97f4a7c15ULL + 0xC4A05);
  auto Rate = [&Rng]() {
    // Log-ish spread: rare glitches through sustained storms.
    static const double Buckets[] = {0.02, 0.1, 0.25, 0.5, 0.8, 1.0};
    return Buckets[Rng.below(6)];
  };
  FaultPlan P;
  P.Seed = Rng.next();
  if (Rng.chance(0.5))
    P.LostTrapRate = Rate();
  if (Rng.chance(0.4))
    P.DuplicateTrapRate = Rate();
  if (Rng.chance(0.4))
    P.SpuriousTrapRate = Rate() * 0.2; // per-dispatch, keep it sane
  if (Rng.chance(0.5))
    P.PatchDropRate = Rate() * 0.5;
  if (Rng.chance(0.5))
    P.PatchTornRate = Rate() * 0.5;
  if (Rng.chance(0.5))
    P.TranslateFailRate = Rate();
  if (Rng.chance(0.25))
    P.TranslateFailAt = static_cast<uint32_t>(Rng.range(1, 12));
  if (Rng.chance(0.4))
    P.FlushStormRate = Rate() * 0.1;
  P.MaxInjections = static_cast<uint32_t>(Rng.range(64, 4096));
  return P;
}
