//===- chaos/FaultPlan.h - Deterministic fault-campaign description -*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FaultPlan describes one deterministic fault-injection campaign
/// against the DBT engine.  Every trigger is driven by a seeded PRNG
/// (plus absolute event indices for the exact-count triggers), so a plan
/// replays bit-identically: the same plan against the same workload and
/// policy produces the same injected faults, the same degradation-ladder
/// engagements, and the same RunResult.
///
/// The injection points mirror the hazards real DBT runtimes face on the
/// trap/patch/retranslate path (paper Figs. 5-8):
///
///   - trap delivery: lost deliveries (the instruction restarts
///     unhandled, the classic retry-storm), duplicate deliveries of one
///     exception, and stale re-deliveries for an already-patched word;
///   - patch application: a code-cache write that is dropped or torn;
///   - block translation: translator failure at a rate or at an exact
///     translation count;
///   - code-cache flush: spurious whole-cache flushes, modelling a
///     flush storm under CodeCacheLimitWords pressure.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_CHAOS_FAULTPLAN_H
#define MDABT_CHAOS_FAULTPLAN_H

#include <cstdint>

namespace mdabt {
namespace chaos {

/// What happens to one code-cache patch application.
enum class PatchFault : uint8_t {
  None, ///< the write lands
  Drop, ///< the write is silently lost
  Torn, ///< a corrupted word lands instead
};

/// Deterministic description of one fault campaign.
struct FaultPlan {
  /// Seed of the injector's PRNG; same seed => same campaign.
  uint64_t Seed = 0;

  // -- trap delivery -----------------------------------------------------
  /// P(the delivery is lost) per misalignment trap: the handler never
  /// runs and the faulting instruction simply restarts.  Sustained loss
  /// at one site is the trap-storm livelock the watchdog must contain.
  double LostTrapRate = 0.0;
  /// P(the same exception is delivered twice) per handled trap.
  double DuplicateTrapRate = 0.0;
  /// P(a stale re-delivery of the most recently patched word arrives)
  /// per monitor dispatch.
  double SpuriousTrapRate = 0.0;

  // -- patch application -------------------------------------------------
  /// P(a code-cache patch write is dropped) per patch.
  double PatchDropRate = 0.0;
  /// P(a code-cache patch write is torn) per patch.
  double PatchTornRate = 0.0;

  // -- block translation -------------------------------------------------
  /// P(the translator fails) per block-translation attempt.
  double TranslateFailRate = 0.0;
  /// Fail exactly the Nth translation attempt (1-based; 0 = disabled).
  uint32_t TranslateFailAt = 0;

  // -- code-cache flush --------------------------------------------------
  /// P(a spurious whole-cache flush is requested) per monitor dispatch.
  double FlushStormRate = 0.0;

  /// Hard ceiling on the total number of injected events (0 = no
  /// ceiling).  Keeps rate-1.0 campaigns terminating: once the budget is
  /// spent the system is allowed to heal.
  uint32_t MaxInjections = 4096;

  /// True if any injection can ever fire.
  bool enabled() const {
    return LostTrapRate > 0 || DuplicateTrapRate > 0 ||
           SpuriousTrapRate > 0 || PatchDropRate > 0 ||
           PatchTornRate > 0 || TranslateFailRate > 0 ||
           TranslateFailAt != 0 || FlushStormRate > 0;
  }

  /// A randomized campaign: each fault class is armed with probability
  /// ~1/2, with rates spanning rare glitches to sustained storms.
  /// Deterministic in \p Seed.
  static FaultPlan randomized(uint64_t Seed);
};

} // namespace chaos
} // namespace mdabt

#endif // MDABT_CHAOS_FAULTPLAN_H
