//===- analysis/CfgRecovery.h - Whole-binary CFG recovery ------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, heuristic-free reachability / control-flow-graph
/// recovery over a guest image: the static foundation of the AOT
/// pre-translator (`dbt/AotTranslator.h`, DESIGN.md section 16).
///
/// The pass runs a worklist over *provable* control-flow edges only —
/// direct jumps, both arms of conditional branches, call targets and
/// call fall-through (return) sites — and records every block whose
/// bytes it can fully decode.  Where static reasoning ends, it does not
/// guess: an indirect jump (`JmpR`), undecodable bytes, or a runaway
/// straight-line region become explicit **Unknown frontier** records
/// instead of speculative successors.  The result is therefore an
/// *under*-approximation of the dynamically reachable code with a
/// precise boundary: every block the DBT ever discovers at run time is
/// either in the recovered set or reachable only through a flagged
/// frontier site (the differential property pinned by
/// `tests/cfg_test.cpp`).
///
/// Unlike AlignmentAnalysis — which *poisons* its whole result on
/// constructs its lattice cannot follow — recovery is total: frontiers
/// are local, and everything proven stays proven.  The two passes
/// compose: recovery decides *which* blocks exist statically, while
/// AlignmentAnalysis's congruence verdicts decide *how* each recovered
/// block's memory sites are planned (see `annotateVerdicts`).
///
/// Provenance: every block this pass emits is `Static`.  The `Dynamic`
/// tag exists for the AOT consumer, which marks run-time discoveries
/// that fell outside the recovered set (the frontier residual).
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_ANALYSIS_CFGRECOVERY_H
#define MDABT_ANALYSIS_CFGRECOVERY_H

#include "analysis/AlignmentAnalysis.h"
#include "guest/GuestISA.h"
#include "guest/GuestImage.h"
#include "guest/GuestMemory.h"

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace mdabt {
namespace analysis {

/// Why static recovery stopped at one program point.
enum class FrontierKind : uint8_t {
  /// An indirect jump (`JmpR`): the successor set is not statically
  /// enumerable without heuristics, so none is assumed.
  IndirectJump,
  /// The bytes at the frontier PC did not decode (jump into data, or a
  /// direct branch leaving the loaded image).
  Undecodable,
  /// A straight-line run exceeded the decode bound without reaching a
  /// terminator (mirrors discoverBlock's MaxInsts guard).
  Runaway,
};

const char *frontierKindName(FrontierKind K);

/// One point where static reachability ends and only the dynamic
/// two-phase DBT can continue.
struct FrontierSite {
  uint32_t Pc = 0;      ///< The JmpR / first bad byte / runaway PC.
  uint32_t BlockPc = 0; ///< Start of the walk that hit the frontier.
  FrontierKind Kind = FrontierKind::IndirectJump;
};

/// Who proved a block reachable.
enum class BlockProvenance : uint8_t {
  Static,  ///< Recovered by this pass from provable edges.
  Dynamic, ///< Discovered at run time (AOT fallback residual).
};

/// One statically recovered basic block.  Blocks may overlap byte-wise
/// (a branch into the middle of another block starts a new block), just
/// like the dynamic discoverBlock view.
struct CfgBlock {
  uint32_t StartPc = 0;
  uint32_t EndPc = 0; ///< One past the last instruction byte.
  uint32_t NumInsts = 0;
  guest::Opcode Terminator = guest::Opcode::Halt;
  /// Statically proven successor block starts, sorted ascending.
  std::vector<uint32_t> Succs;
  /// True when the terminator is an indirect jump: the block itself is
  /// proven reachable but its successors are a frontier.
  bool EndsAtFrontier = false;
  BlockProvenance Provenance = BlockProvenance::Static;
  /// Alignment verdicts of the block's planned memory sites (2/4/8-byte
  /// ops), filled by annotateVerdicts.
  uint32_t SitesAligned = 0;
  uint32_t SitesMisaligned = 0;
  uint32_t SitesUnknown = 0;
};

/// Result of one recovery pass.  Deterministic: blocks are keyed (and
/// frontier sites sorted) by PC, independent of worklist order.
struct CfgResult {
  std::map<uint32_t, CfgBlock> Blocks;
  std::vector<FrontierSite> Frontier;
  uint64_t NumEdges = 0; ///< Proven successor edges across all blocks.

  bool contains(uint32_t Pc) const { return Blocks.count(Pc) != 0; }

  /// Merged, sorted half-open [begin, end) guest byte ranges covering
  /// every recovered block — the reachable set the HostVerifier's AOT
  /// invariant checks installed translations against.
  std::vector<std::pair<uint32_t, uint32_t>> coverageRanges() const;
};

/// Recover the statically provable CFG of the code reachable from
/// \p Entry.  Pure function of the guest bytes; never throws, never
/// asserts on hostile input — undecodable regions become frontiers.
CfgResult recoverCfg(const guest::GuestMemory &Mem, uint32_t Entry,
                     size_t MaxBlockInsts = 4096);

/// Convenience overload: load \p Image into scratch memory and recover.
CfgResult recoverCfg(const guest::GuestImage &Image);

/// Fold AlignmentAnalysis congruence verdicts into the recovered
/// blocks: for every recovered block, classify its sized memory sites
/// under \p Ana and fill the per-block Sites* tallies.  Returns the
/// number of sites classified.
uint64_t annotateVerdicts(CfgResult &Cfg, const guest::GuestMemory &Mem,
                          const AnalysisResult &Ana);

} // namespace analysis
} // namespace mdabt

#endif // MDABT_ANALYSIS_CFGRECOVERY_H
