//===- analysis/CfgRecovery.cpp - Whole-binary CFG recovery ---------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CfgRecovery.h"

#include "guest/Encoding.h"
#include "guest/GuestInst.h"

#include <algorithm>
#include <set>

using namespace mdabt;
using namespace mdabt::analysis;

const char *mdabt::analysis::frontierKindName(FrontierKind K) {
  switch (K) {
  case FrontierKind::IndirectJump:
    return "indirect-jump";
  case FrontierKind::Undecodable:
    return "undecodable";
  case FrontierKind::Runaway:
    return "runaway";
  }
  return "?";
}

std::vector<std::pair<uint32_t, uint32_t>>
CfgResult::coverageRanges() const {
  std::vector<std::pair<uint32_t, uint32_t>> Ranges;
  Ranges.reserve(Blocks.size());
  for (const auto &KV : Blocks)
    Ranges.emplace_back(KV.second.StartPc, KV.second.EndPc);
  // Blocks is PC-ordered; merge touching/overlapping ranges in place.
  std::vector<std::pair<uint32_t, uint32_t>> Merged;
  for (const auto &R : Ranges) {
    if (!Merged.empty() && R.first <= Merged.back().second)
      Merged.back().second = std::max(Merged.back().second, R.second);
    else
      Merged.push_back(R);
  }
  return Merged;
}

CfgResult mdabt::analysis::recoverCfg(const guest::GuestMemory &Mem,
                                      uint32_t Entry, size_t MaxBlockInsts) {
  CfgResult Cfg;
  std::vector<uint32_t> Worklist{Entry};
  // Walks already performed, including ones that ended at a frontier
  // and were erased from Blocks — without this, two paths into the
  // same bad region would record the frontier twice.
  std::set<uint32_t> Visited;

  auto Propagate = [&](uint32_t Pc, CfgBlock &B) {
    B.Succs.push_back(Pc);
    if (Visited.count(Pc) == 0)
      Worklist.push_back(Pc);
  };

  while (!Worklist.empty()) {
    uint32_t Start = Worklist.back();
    Worklist.pop_back();
    if (!Visited.insert(Start).second)
      continue;
    // Reserve the slot up front so self-loops don't re-enqueue.
    CfgBlock &B = Cfg.Blocks[Start];
    B.StartPc = Start;

    uint32_t Pc = Start;
    bool Done = false;
    while (!Done) {
      guest::GuestInst I;
      if (!guest::decode(Mem.data(), Mem.size(), Pc, I)) {
        // The walk ran into bytes that are not code (or off the image).
        // The partial block is not statically proven: remove it and
        // flag the frontier so the dynamic DBT owns everything here.
        Cfg.Frontier.push_back({Pc, Start, FrontierKind::Undecodable});
        Cfg.Blocks.erase(Start);
        break;
      }
      ++B.NumInsts;
      if (guest::isBlockTerminator(I.Op)) {
        B.EndPc = I.nextPc(Pc);
        B.Terminator = I.Op;
        switch (I.Op) {
        case guest::Opcode::Jmp:
          Propagate(I.branchTarget(Pc), B);
          break;
        case guest::Opcode::Jcc:
          Propagate(I.branchTarget(Pc), B);
          Propagate(I.nextPc(Pc), B);
          break;
        case guest::Opcode::Call:
          // Both the callee and the return site are provable edges;
          // Ret itself contributes nothing (its targets are exactly
          // the call fall-throughs already enqueued here).
          Propagate(I.branchTarget(Pc), B);
          Propagate(I.nextPc(Pc), B);
          break;
        case guest::Opcode::JmpR:
          // No heuristics: the block is proven, its successors are not.
          B.EndsAtFrontier = true;
          Cfg.Frontier.push_back({Pc, Start, FrontierKind::IndirectJump});
          break;
        case guest::Opcode::Ret:
        case guest::Opcode::Halt:
        default:
          break;
        }
        Done = true;
        break;
      }
      Pc = I.nextPc(Pc);
      if (B.NumInsts >= MaxBlockInsts) {
        // Mirrors discoverBlock's straight-line bound: the dynamic
        // engine would refuse this region too, so it is a frontier,
        // not a proven block.
        Cfg.Frontier.push_back({Pc, Start, FrontierKind::Runaway});
        Cfg.Blocks.erase(Start);
        break;
      }
    }
    if (Done) {
      // Dedup and order the successor list (Jcc to the fall-through,
      // self-loops and call-to-next all produce duplicates).
      std::sort(B.Succs.begin(), B.Succs.end());
      B.Succs.erase(std::unique(B.Succs.begin(), B.Succs.end()),
                    B.Succs.end());
      Cfg.NumEdges += B.Succs.size();
    }
  }

  std::sort(Cfg.Frontier.begin(), Cfg.Frontier.end(),
            [](const FrontierSite &A, const FrontierSite &B) {
              return A.Pc != B.Pc ? A.Pc < B.Pc : A.BlockPc < B.BlockPc;
            });
  return Cfg;
}

CfgResult mdabt::analysis::recoverCfg(const guest::GuestImage &Image) {
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  return recoverCfg(Mem, Image.Entry);
}

uint64_t mdabt::analysis::annotateVerdicts(CfgResult &Cfg,
                                           const guest::GuestMemory &Mem,
                                           const AnalysisResult &Ana) {
  uint64_t Classified = 0;
  for (auto &KV : Cfg.Blocks) {
    CfgBlock &B = KV.second;
    B.SitesAligned = B.SitesMisaligned = B.SitesUnknown = 0;
    uint32_t Pc = B.StartPc;
    for (uint32_t N = 0; N != B.NumInsts; ++N) {
      guest::GuestInst I;
      if (!guest::decode(Mem.data(), Mem.size(), Pc, I))
        break; // bytes changed since recovery; stale tallies are fine
      if (guest::isMemoryOp(I.Op) && guest::accessSize(I.Op) >= 2) {
        ++Classified;
        switch (Ana.verdictFor(Pc, I)) {
        case AlignVerdict::Aligned:
          ++B.SitesAligned;
          break;
        case AlignVerdict::Misaligned:
          ++B.SitesMisaligned;
          break;
        case AlignVerdict::Unknown:
          ++B.SitesUnknown;
          break;
        }
      }
      Pc = I.nextPc(Pc);
    }
  }
  return Classified;
}
