//===- analysis/HostVerifier.h - Code-cache structural lint ----*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structural verifier for the host code cache: an oracle that walks
/// every installed translation (body + exception stubs) and checks the
/// invariants the engine's patching machinery is supposed to preserve —
/// so chaos-injected torn or dropped patches are caught *at the point
/// of corruption* instead of only by downstream architectural
/// divergence.
///
/// Checked invariants (see DESIGN.md for the rationale of each):
///  1. predecode coherence: the CodeSpace's decoded mirror matches a
///     fresh decode of every raw word in the arena, and valid entries
///     round-trip through the encoder;
///  2. every word inside a live region decodes;
///  3. branch targets land on instruction boundaries inside live
///     regions;
///  4. patched fault sites are a branch into one of the owning
///     translation's stubs — or, after an adaptive revert, a trapping-
///     capable memory op again;
///  5. exit sites are `Srv Exit` or (when chained) a branch to a live
///     translation's entry;
///  6. every MDA sequence in live code is a complete, byte-exact
///     ldq_u/ext/ins/msk/stq_u shape (re-emitted and compared);
///  7. every indirect-exit inline-cache way is either disabled (guard
///     branch skipping the way) or a complete, byte-exact tag-compare
///     shape whose final branch targets a live translation's entry.
///     The way shape is re-derived here independently of the engine's
///     emitter — intentionally duplicated constants, so a drift between
///     the two is a caught bug, not a silently shared one;
///  8. guest-code coherence: no live translation's compiled guest byte
///     ranges carry a dirty epoch newer than the translation's birth —
///     i.e. the engine's write barrier invalidated every translation
///     whose source bytes were rewritten (self-modifying code) before
///     this verification point;
///  9. fused-sequence integrity: every fused guest-idiom core
///     (dbt/FusionRules.h) is byte-exact against the words the
///     translator emitted at install time — fusion rewrites guest
///     semantics into denser host code, so a single flipped word inside
///     a fused core silently changes architectural behaviour.  Words
///     the engine legitimately patched (fault-site stubs, reverts) or
///     quarantined are excused;
/// 10. AOT reachability: every translation the static AOT
///     pre-translator installed covers only guest bytes inside the
///     statically recovered reachable set — static pre-translation can
///     never smuggle code for bytes the CFG-recovery pass did not
///     prove reachable.  Skipped when the engine supplies no
///     reachable-range set (AOT off).
///
/// The verifier is read-only and engine-agnostic: the engine describes
/// its bookkeeping through `VerifierInput` and gets a `VerifyReport`
/// back.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_ANALYSIS_HOSTVERIFIER_H
#define MDABT_ANALYSIS_HOSTVERIFIER_H

#include "host/CodeSpace.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mdabt {
namespace analysis {

/// What went wrong at one code-cache word.
enum class VerifyIssueKind : uint8_t {
  PredecodeMismatch, ///< Decoded mirror disagrees with the raw word.
  Undecodable,       ///< Live-region word does not decode.
  BranchTargetBad,   ///< Branch lands outside every live region.
  PatchSiteBad,      ///< Patched site is not a branch to an own stub
                     ///< (or, reverted, not a trapping memory op).
  ExitSiteBad,       ///< Exit is neither `Srv Exit` nor a chain to a
                     ///< live entry.
  MdaSequenceMalformed, ///< Incomplete or corrupted MDA sequence.
  IcWayBad, ///< Inline-cache way is neither cleanly disabled nor a
            ///< byte-exact filled shape targeting a live entry.
  StaleGuestCode, ///< Live translation built from guest bytes that were
                  ///< rewritten after it was installed.
  FusedSiteBad,   ///< Fused-sequence core diverged from the byte-exact
                  ///< words captured at install time.
  AotUnreachable, ///< AOT-installed translation covers guest bytes
                  ///< outside the statically recovered reachable set.
};

const char *verifyIssueKindName(VerifyIssueKind K);

struct VerifyIssue {
  VerifyIssueKind Kind;
  uint32_t Word = 0; ///< Code-cache word index of the issue.
  uint32_t Aux = 0;  ///< Kind-specific detail (e.g. branch target).
};

/// Render an issue for diagnostics.
std::string verifyIssueToString(const VerifyIssue &Issue);

/// A fault site the engine has patched (or patched and later reverted).
struct VerifierPatch {
  uint32_t Word = 0;
  bool Reverted = false;
};

/// Half-open word range of one exception stub.
struct VerifierRegion {
  uint32_t Begin = 0;
  uint32_t End = 0;
};

/// One inline-cache way as the engine believes it to be.
struct VerifierIcWay {
  uint32_t Begin = 0; ///< Guard word (first word of the way).
  bool Filled = false;
  uint32_t TargetEntry = 0;   ///< Expected branch target when filled.
  uint32_t TargetGuestPc = 0; ///< Expected tag constant when filled.
};

/// One fused guest-idiom core (check 9): the half-open word range the
/// fusion emitter produced plus the pristine words captured right after
/// label resolution at install time.
struct VerifierFusedSite {
  uint8_t Rule = 0; ///< dbt::FusionRuleId value, diagnostic only.
  uint32_t Begin = 0;
  uint32_t End = 0;
  std::vector<uint32_t> Words; ///< Reference words, size == End - Begin.
};

/// One live translation as the engine knows it.
struct VerifierBlock {
  uint32_t EntryWord = 0;
  uint32_t EndWord = 0; ///< One past the body's last word.
  std::vector<VerifierRegion> Stubs;
  std::vector<VerifierPatch> Patches;
  std::vector<uint32_t> ExitWords;
  /// Non-quarantined inline-cache ways at indirect exits.
  std::vector<VerifierIcWay> IcWays;
  /// Half-open *guest byte* ranges this translation was compiled from
  /// (check 8; empty disables the check for this block).
  std::vector<VerifierRegion> GuestRanges;
  /// Guest-store epoch when this translation was installed (check 8).
  uint64_t BornEpoch = 0;
  /// Fused guest-idiom cores with their reference words (check 9).
  std::vector<VerifierFusedSite> FusedSites;
  /// Installed by the static AOT pre-translator (check 10).
  bool AotInstalled = false;
};

/// The engine's view of the cache, handed to the verifier.
struct VerifierInput {
  std::vector<VerifierBlock> Blocks;
  /// Words excused from the branch-target and exit checks: chain sites
  /// whose unpatching failed under fault injection and which the engine
  /// has quarantined (the owning target block is gone, so the stale
  /// branch cannot satisfy liveness until the next flush).
  std::unordered_set<uint32_t> ExemptWords;
  /// Words per inline-cache way (the engine's declared layout width);
  /// the check fails closed if it disagrees with the verifier's own
  /// 6-word shape.
  uint32_t IcWayWords = 6;
  /// Dirtied guest code byte -> epoch of the store that dirtied it
  /// (check 8).  Byte-granular so a live translation sharing a watch
  /// page with a rewritten neighbour is not a false positive.  Null
  /// disables the check.
  const std::unordered_map<uint32_t, uint64_t> *GuestDirtyEpoch = nullptr;
  /// Statically recovered reachable guest byte ranges, half-open,
  /// sorted and non-overlapping (check 10: every AOT-installed block's
  /// guest ranges must lie inside them).  Null disables the check.
  const std::vector<VerifierRegion> *ReachableRanges = nullptr;
};

struct VerifyReport {
  std::vector<VerifyIssue> Issues;
  uint64_t WordsChecked = 0;
  uint64_t RegionsChecked = 0;
  uint64_t MdaSequencesChecked = 0;
  uint64_t FusedSitesChecked = 0;
  bool ok() const { return Issues.empty(); }
};

/// Run all checks over \p Code as described by \p Input.
VerifyReport verifyCodeSpace(const host::CodeSpace &Code,
                             const VerifierInput &Input);

} // namespace analysis
} // namespace mdabt

#endif // MDABT_ANALYSIS_HOSTVERIFIER_H
