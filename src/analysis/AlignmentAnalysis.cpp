//===- analysis/AlignmentAnalysis.cpp - Static alignment inference --------===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/AlignmentAnalysis.h"

#include "guest/Encoding.h"
#include "guest/GuestISA.h"

#include <array>
#include <cassert>
#include <deque>
#include <map>
#include <set>
#include <vector>

namespace mdabt {
namespace analysis {

using guest::GuestInst;
using guest::Opcode;

//===----------------------------------------------------------------------===//
// Lattice
//===----------------------------------------------------------------------===//

AbsVal join(const AbsVal &A, const AbsVal &B) {
  if (A.K == AbsVal::Kind::Bottom)
    return B;
  if (B.K == AbsVal::Kind::Bottom)
    return A;
  if (A.K == AbsVal::Kind::Top || B.K == AbsVal::Kind::Top)
    return AbsVal::top();
  if (A.K == AbsVal::Kind::Exact && B.K == AbsVal::Kind::Exact &&
      A.Value == B.Value)
    return A;
  // Largest power-of-two modulus both sides are known under and agree
  // on.  Powers of two divide each other, so agreement mod 8 implies
  // agreement mod 4 and 2 — scan from the strongest claim down.
  for (uint32_t M = 8; M >= 2; M /= 2)
    if (A.knownMod() >= M && B.knownMod() >= M && A.residue(M) == B.residue(M))
      return AbsVal::congruent(M, A.residue(M));
  return AbsVal::top();
}

static bool anyBottom(const AbsVal &A, const AbsVal &B) {
  return A.K == AbsVal::Kind::Bottom || B.K == AbsVal::Kind::Bottom;
}
static bool bothExact(const AbsVal &A, const AbsVal &B) {
  return A.K == AbsVal::Kind::Exact && B.K == AbsVal::Kind::Exact;
}
static uint32_t minMod(const AbsVal &A, const AbsVal &B) {
  return std::min(A.knownMod(), B.knownMod());
}
static unsigned log2Of(uint32_t M) { // M in {1,2,4,8}
  return M >= 8 ? 3 : M >= 4 ? 2 : M >= 2 ? 1 : 0;
}
static unsigned trailingZeros32(uint32_t V) {
  assert(V != 0);
  unsigned N = 0;
  while (!(V & 1)) {
    V >>= 1;
    ++N;
  }
  return N;
}

AbsVal absAdd(const AbsVal &A, const AbsVal &B) {
  if (anyBottom(A, B))
    return AbsVal::bottom();
  if (bothExact(A, B))
    return AbsVal::exact(A.Value + B.Value);
  uint32_t M = minMod(A, B);
  if (M < 2)
    return AbsVal::top();
  // 2^32 is a multiple of every modulus here, so 32-bit wraparound
  // preserves the congruence.
  return AbsVal::congruent(M, (A.residue(M) + B.residue(M)) % M);
}

AbsVal absSub(const AbsVal &A, const AbsVal &B) {
  if (anyBottom(A, B))
    return AbsVal::bottom();
  if (bothExact(A, B))
    return AbsVal::exact(A.Value - B.Value);
  uint32_t M = minMod(A, B);
  if (M < 2)
    return AbsVal::top();
  return AbsVal::congruent(M, (A.residue(M) + M - B.residue(M)) % M);
}

/// x known mod m times an exact constant V: x*V = (r + k*m)*V, so the
/// product is known mod m * 2^tz(V) (clamped to 8).  Top counts as
/// "known mod 1": even then the product is 0 mod 2^tz(V).
static AbsVal mulByExact(const AbsVal &A, uint32_t V) {
  if (V == 0)
    return AbsVal::exact(0);
  uint32_t M = std::max<uint32_t>(A.knownMod(), 1);
  uint32_t MM = std::min<uint32_t>(8, M << std::min(trailingZeros32(V), 3u));
  if (MM < 2)
    return AbsVal::top();
  uint32_t R = M >= 2 ? A.residue(M) : 0;
  return AbsVal::congruent(MM, (R * V) % MM);
}

AbsVal absMul(const AbsVal &A, const AbsVal &B) {
  if (anyBottom(A, B))
    return AbsVal::bottom();
  if (bothExact(A, B))
    return AbsVal::exact(A.Value * B.Value);
  if (A.K == AbsVal::Kind::Exact)
    return mulByExact(B, A.Value);
  if (B.K == AbsVal::Kind::Exact)
    return mulByExact(A, B.Value);
  uint32_t M = minMod(A, B);
  if (M < 2)
    return AbsVal::top();
  return AbsVal::congruent(M, (A.residue(M) * B.residue(M)) % M);
}

/// Low bits an AND with this operand forces to zero: if x = r mod m and
/// r's low z bits are zero (z capped at log2(m)), then x & y = 0 mod 2^z
/// regardless of y.
static unsigned andZeroBits(const AbsVal &A) {
  uint32_t M = A.knownMod();
  if (M < 2)
    return 0;
  uint32_t R = A.residue(M);
  if (R == 0)
    return log2Of(M);
  return std::min(trailingZeros32(R), log2Of(M));
}

AbsVal absAnd(const AbsVal &A, const AbsVal &B) {
  if (anyBottom(A, B))
    return AbsVal::bottom();
  if (bothExact(A, B))
    return AbsVal::exact(A.Value & B.Value);
  AbsVal Best = AbsVal::top();
  uint32_t M = minMod(A, B);
  if (M >= 2)
    Best = AbsVal::congruent(M, (A.residue(M) & B.residue(M)) % M);
  unsigned Z = std::max(andZeroBits(A), andZeroBits(B));
  if (Z > 0 && (1u << Z) > Best.knownMod())
    Best = AbsVal::congruent(1u << Z, 0);
  return Best;
}

AbsVal absOr(const AbsVal &A, const AbsVal &B) {
  if (anyBottom(A, B))
    return AbsVal::bottom();
  if (bothExact(A, B))
    return AbsVal::exact(A.Value | B.Value);
  uint32_t M = minMod(A, B);
  if (M < 2)
    return AbsVal::top();
  return AbsVal::congruent(M, (A.residue(M) | B.residue(M)) % M);
}

AbsVal absXor(const AbsVal &A, const AbsVal &B) {
  if (anyBottom(A, B))
    return AbsVal::bottom();
  if (bothExact(A, B))
    return AbsVal::exact(A.Value ^ B.Value);
  uint32_t M = minMod(A, B);
  if (M < 2)
    return AbsVal::top();
  return AbsVal::congruent(M, (A.residue(M) ^ B.residue(M)) % M);
}

AbsVal absShl(const AbsVal &A, const AbsVal &Sh) {
  if (anyBottom(A, Sh))
    return AbsVal::bottom();
  if (A.K == AbsVal::Kind::Exact && A.Value == 0)
    return AbsVal::exact(0);
  if (Sh.K != AbsVal::Kind::Exact)
    return AbsVal::top();
  unsigned S = Sh.Value & 31;
  if (A.K == AbsVal::Kind::Exact)
    return AbsVal::exact(A.Value << S);
  if (S == 0)
    return A;
  uint32_t M = A.knownMod();
  if (M >= 2) {
    uint32_t MM = std::min<uint32_t>(8, M << std::min(S, 3u));
    return AbsVal::congruent(MM, (A.residue(M) << S) % MM);
  }
  // Even a Top value shifted left by S has S low zero bits.
  return AbsVal::congruent(1u << std::min(S, 3u), 0);
}

AbsVal absShr(const AbsVal &A, const AbsVal &Sh) {
  if (anyBottom(A, Sh))
    return AbsVal::bottom();
  if (bothExact(A, Sh))
    return AbsVal::exact(A.Value >> (Sh.Value & 31));
  // Right shifts pull unknown high bits into the alignment-relevant low
  // bits; no congruence survives in general.
  return AbsVal::top();
}

AbsVal absSar(const AbsVal &A, const AbsVal &Sh) {
  if (anyBottom(A, Sh))
    return AbsVal::bottom();
  if (bothExact(A, Sh))
    return AbsVal::exact(static_cast<uint32_t>(
        static_cast<int32_t>(A.Value) >> (Sh.Value & 31)));
  return AbsVal::top();
}

//===----------------------------------------------------------------------===//
// Verdicts
//===----------------------------------------------------------------------===//

const char *alignVerdictName(AlignVerdict V) {
  switch (V) {
  case AlignVerdict::Unknown:
    return "unknown";
  case AlignVerdict::Aligned:
    return "aligned";
  case AlignVerdict::Misaligned:
    return "misaligned";
  }
  return "?";
}

AlignVerdict verdictOf(const AbsVal &Addr, unsigned Size) {
  if (Size <= 1)
    return AlignVerdict::Unknown;
  switch (Addr.K) {
  case AbsVal::Kind::Bottom:
  case AbsVal::Kind::Top:
    return AlignVerdict::Unknown;
  case AbsVal::Kind::Exact:
    return Addr.Value % Size == 0 ? AlignVerdict::Aligned
                                  : AlignVerdict::Misaligned;
  case AbsVal::Kind::Congruent:
    if (Addr.Mod >= Size)
      return Addr.Res % Size == 0 ? AlignVerdict::Aligned
                                  : AlignVerdict::Misaligned;
    // Mod < Size and Mod | Size: a nonzero residue mod Mod already
    // breaks alignment mod Size; a zero residue decides nothing.
    if (Addr.Res != 0)
      return AlignVerdict::Misaligned;
    return AlignVerdict::Unknown;
  }
  return AlignVerdict::Unknown;
}

static bool sameInst(const GuestInst &A, const GuestInst &B) {
  return A.Op == B.Op && A.Reg1 == B.Reg1 && A.Reg2 == B.Reg2 &&
         A.HasIndex == B.HasIndex && A.IndexReg == B.IndexReg &&
         A.Scale == B.Scale && A.Disp == B.Disp;
}

AlignVerdict AnalysisResult::verdictFor(uint32_t Pc,
                                        const guest::GuestInst &I) const {
  if (Poisoned)
    return AlignVerdict::Unknown;
  auto It = Sites.find(Pc);
  if (It == Sites.end())
    return AlignVerdict::Unknown;
  if (!sameInst(It->second.Inst, I))
    return AlignVerdict::Unknown;
  return It->second.Verdict;
}

//===----------------------------------------------------------------------===//
// Whole-program dataflow
//===----------------------------------------------------------------------===//

namespace {

using State = std::array<AbsVal, guest::NumGPR>;

/// Hard cap on distinct block nodes before the analysis gives up;
/// far above any workload or fuzz corpus, it only guards against
/// decode-garbage explosions.
constexpr size_t MaxNodes = 1u << 16;
/// Same straight-line bound the engine's block discovery uses.
constexpr size_t MaxBlockInsts = 4096;

struct Analyzer {
  const guest::GuestMemory &Mem;
  AnalysisResult &Result;

  std::map<uint32_t, State> In;
  std::set<uint32_t> OnWorklist;
  std::deque<uint32_t> Worklist;
  /// PCs following every Call seen so far — Ret flows join into all of
  /// them (no call-stack modeling; sound, loses only cross-call
  /// precision).
  std::set<uint32_t> ReturnSites;
  State RetOut; // all-Bottom until the first Ret is processed
  bool RetOutLive = false;

  Analyzer(const guest::GuestMemory &M, AnalysisResult &R) : Mem(M), Result(R) {
    for (auto &V : RetOut)
      V = AbsVal::bottom();
  }

  void poison() { Result.Poisoned = true; }

  static State bottomState() {
    State S;
    for (auto &V : S)
      V = AbsVal::bottom();
    return S;
  }

  static State joinState(const State &A, const State &B, bool &Changed) {
    State S;
    for (unsigned R = 0; R < guest::NumGPR; ++R) {
      S[R] = join(A[R], B[R]);
      if (S[R] != A[R])
        Changed = true;
    }
    return S;
  }

  void push(uint32_t Pc) {
    if (OnWorklist.insert(Pc).second)
      Worklist.push_back(Pc);
  }

  /// Join \p S into the in-state of the block at \p Pc, queueing it if
  /// anything changed.
  void propagate(uint32_t Pc, const State &S) {
    auto It = In.find(Pc);
    if (It == In.end()) {
      if (In.size() >= MaxNodes) {
        poison();
        return;
      }
      In.emplace(Pc, S);
      push(Pc);
      return;
    }
    bool Changed = false;
    State Joined = joinState(It->second, S, Changed);
    if (Changed) {
      It->second = Joined;
      push(Pc);
    }
  }

  void registerReturnSite(uint32_t Pc) {
    if (!ReturnSites.insert(Pc).second)
      return;
    if (RetOutLive)
      propagate(Pc, RetOut);
  }

  void flowIntoRetOut(const State &S) {
    bool Changed = !RetOutLive;
    RetOut = joinState(RetOut, S, Changed);
    RetOutLive = true;
    if (Changed)
      for (uint32_t Site : ReturnSites)
        propagate(Site, RetOut);
  }

  AbsVal addressOf(const State &S, const GuestInst &I) const {
    AbsVal A = absAdd(S[I.Reg2], AbsVal::exact(static_cast<uint32_t>(I.Disp)));
    if (I.HasIndex)
      A = absAdd(A, absShl(S[I.IndexReg], AbsVal::exact(I.Scale)));
    return A;
  }

  /// Apply one instruction to \p S.  When \p Record is set, memory
  /// sites join their abstract address into Result.Sites.
  void transfer(uint32_t Pc, const GuestInst &I, State &S, bool Record) {
    auto RecordSite = [&](const AbsVal &Addr, unsigned Size, bool IsStore) {
      if (!Record || Size < 2)
        return;
      auto &Site = Result.Sites[Pc];
      Site.Inst = I;
      Site.Size = Size;
      Site.IsStore = IsStore;
      Site.Addr = join(Site.Addr, Addr);
    };

    switch (I.Op) {
    case Opcode::Ldb:
    case Opcode::Ldw:
    case Opcode::Ldl:
      RecordSite(addressOf(S, I), guest::accessSize(I.Op), false);
      // No memory modeling: a loaded value is unconstrained (stores to
      // statically unknown addresses could have written anything).
      S[I.Reg1] = AbsVal::top();
      break;
    case Opcode::Ldq:
      RecordSite(addressOf(S, I), 8, false);
      break; // fills a Q register; GPR state unchanged
    case Opcode::Stb:
    case Opcode::Stw:
    case Opcode::Stl:
      RecordSite(addressOf(S, I), guest::accessSize(I.Op), true);
      break;
    case Opcode::Stq:
      RecordSite(addressOf(S, I), 8, true);
      break;
    case Opcode::Lea:
      S[I.Reg1] = addressOf(S, I);
      break;

    case Opcode::MovRR:
      S[I.Reg1] = S[I.Reg2];
      break;
    case Opcode::Add:
      S[I.Reg1] = absAdd(S[I.Reg1], S[I.Reg2]);
      break;
    case Opcode::Sub:
      S[I.Reg1] = absSub(S[I.Reg1], S[I.Reg2]);
      break;
    case Opcode::And:
      S[I.Reg1] = absAnd(S[I.Reg1], S[I.Reg2]);
      break;
    case Opcode::Or:
      S[I.Reg1] = absOr(S[I.Reg1], S[I.Reg2]);
      break;
    case Opcode::Xor:
      S[I.Reg1] = absXor(S[I.Reg1], S[I.Reg2]);
      break;
    case Opcode::Shl:
      S[I.Reg1] = absShl(S[I.Reg1], S[I.Reg2]);
      break;
    case Opcode::Shr:
      S[I.Reg1] = absShr(S[I.Reg1], S[I.Reg2]);
      break;
    case Opcode::Sar:
      S[I.Reg1] = absSar(S[I.Reg1], S[I.Reg2]);
      break;
    case Opcode::Mul:
      S[I.Reg1] = absMul(S[I.Reg1], S[I.Reg2]);
      break;

    case Opcode::MovRI:
      S[I.Reg1] = AbsVal::exact(static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::AddI:
      S[I.Reg1] =
          absAdd(S[I.Reg1], AbsVal::exact(static_cast<uint32_t>(I.Imm)));
      break;
    case Opcode::SubI:
      S[I.Reg1] =
          absSub(S[I.Reg1], AbsVal::exact(static_cast<uint32_t>(I.Imm)));
      break;
    case Opcode::AndI:
      S[I.Reg1] =
          absAnd(S[I.Reg1], AbsVal::exact(static_cast<uint32_t>(I.Imm)));
      break;
    case Opcode::OrI:
      S[I.Reg1] =
          absOr(S[I.Reg1], AbsVal::exact(static_cast<uint32_t>(I.Imm)));
      break;
    case Opcode::XorI:
      S[I.Reg1] =
          absXor(S[I.Reg1], AbsVal::exact(static_cast<uint32_t>(I.Imm)));
      break;
    case Opcode::ShlI:
      S[I.Reg1] =
          absShl(S[I.Reg1], AbsVal::exact(static_cast<uint32_t>(I.Imm)));
      break;
    case Opcode::ShrI:
      S[I.Reg1] =
          absShr(S[I.Reg1], AbsVal::exact(static_cast<uint32_t>(I.Imm)));
      break;
    case Opcode::SarI:
      S[I.Reg1] =
          absSar(S[I.Reg1], AbsVal::exact(static_cast<uint32_t>(I.Imm)));
      break;
    case Opcode::MulI:
      S[I.Reg1] =
          absMul(S[I.Reg1], AbsVal::exact(static_cast<uint32_t>(I.Imm)));
      break;

    case Opcode::QToG:
      S[I.Reg1] = AbsVal::top();
      break;

    // Flag producers, Q-register ops, checksum folds: no GPR effect.
    case Opcode::Cmp:
    case Opcode::CmpI:
    case Opcode::QMovRR:
    case Opcode::QMovI:
    case Opcode::QAdd:
    case Opcode::QAddI:
    case Opcode::QXor:
    case Opcode::GToQ:
    case Opcode::Chk:
    case Opcode::QChk:
    case Opcode::Nop:
      break;

    // Terminators are handled by the block walker.
    case Opcode::Halt:
    case Opcode::Jmp:
    case Opcode::Jcc:
    case Opcode::Call:
    case Opcode::Ret:
    case Opcode::JmpR:
      break;
    }
  }

  /// Walk one block from its in-state; \p Record controls site
  /// recording (off during fixpoint iteration, on in the final pass).
  /// Returns false if the walk poisoned the analysis.
  bool walkBlock(uint32_t StartPc, State S, bool Record) {
    uint32_t Pc = StartPc;
    for (size_t N = 0; N < MaxBlockInsts; ++N) {
      GuestInst I;
      if (!guest::decode(Mem.data(), Mem.size(), Pc, I)) {
        poison();
        return false;
      }
      transfer(Pc, I, S, Record);

      if (!guest::isBlockTerminator(I.Op)) {
        Pc = I.nextPc(Pc);
        continue;
      }

      if (Record)
        return true; // final pass only collects sites
      switch (I.Op) {
      case Opcode::Halt:
        return true;
      case Opcode::Jmp:
        propagate(I.branchTarget(Pc), S);
        return true;
      case Opcode::Jcc:
        // Flags are not modeled: both successors are feasible.
        propagate(I.branchTarget(Pc), S);
        propagate(I.nextPc(Pc), S);
        return true;
      case Opcode::Call: {
        // Matches the interpreter: SP -= 4, then push the return PC.
        S[guest::RegSP] = absSub(S[guest::RegSP], AbsVal::exact(4));
        registerReturnSite(I.nextPc(Pc));
        propagate(I.branchTarget(Pc), S);
        return true;
      }
      case Opcode::Ret:
        S[guest::RegSP] = absAdd(S[guest::RegSP], AbsVal::exact(4));
        flowIntoRetOut(S);
        return true;
      case Opcode::JmpR:
        if (S[I.Reg1].K == AbsVal::Kind::Exact) {
          propagate(S[I.Reg1].Value, S);
          return true;
        }
        // An indirect jump to an unknown target could reach any code
        // with any state; nothing short of poisoning stays sound.
        poison();
        return false;
      default:
        return true;
      }
    }
    poison(); // runaway straight-line region
    return false;
  }

  void run(uint32_t Entry, uint32_t StackTop) {
    State Init;
    for (auto &V : Init)
      V = AbsVal::exact(0);
    Init[guest::RegSP] = AbsVal::exact(StackTop);
    propagate(Entry, Init);

    while (!Worklist.empty() && !Result.Poisoned) {
      uint32_t Pc = Worklist.front();
      Worklist.pop_front();
      OnWorklist.erase(Pc);
      if (!walkBlock(Pc, In.at(Pc), /*Record=*/false))
        return;
    }
    if (Result.Poisoned)
      return;

    Result.Blocks = In.size();
    for (const auto &[Pc, S] : In)
      if (!walkBlock(Pc, S, /*Record=*/true))
        return;

    for (auto &[Pc, Site] : Result.Sites) {
      (void)Pc;
      Site.Verdict = verdictOf(Site.Addr, Site.Size);
      switch (Site.Verdict) {
      case AlignVerdict::Aligned:
        ++Result.NumAligned;
        break;
      case AlignVerdict::Misaligned:
        ++Result.NumMisaligned;
        break;
      case AlignVerdict::Unknown:
        ++Result.NumUnknown;
        break;
      }
    }
  }
};

} // namespace

AnalysisResult analyzeAlignment(const guest::GuestMemory &Mem, uint32_t Entry,
                                uint32_t StackTop) {
  AnalysisResult Result;
  Analyzer A(Mem, Result);
  A.run(Entry, StackTop);
  if (Result.Poisoned) {
    // A poisoned run proves nothing; drop any partial site data so the
    // counts and verdictFor() agree.
    Result.Sites.clear();
    Result.NumAligned = Result.NumMisaligned = Result.NumUnknown = 0;
  }
  return Result;
}

AnalysisResult analyzeAlignment(const guest::GuestImage &Image) {
  guest::GuestMemory Mem(guest::layout::MemorySize);
  Mem.loadImage(Image);
  return analyzeAlignment(Mem, Image.Entry, Image.StackTop);
}

} // namespace analysis
} // namespace mdabt
