//===- analysis/HostVerifier.cpp - Code-cache structural lint -------------===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/HostVerifier.h"

#include "host/HostAssembler.h"
#include "host/HostEncoding.h"
#include "host/HostISA.h"
#include "host/MdaSequences.h"
#include "support/Format.h"

#include <algorithm>

namespace mdabt {
namespace analysis {

using namespace host;

const char *verifyIssueKindName(VerifyIssueKind K) {
  switch (K) {
  case VerifyIssueKind::PredecodeMismatch:
    return "predecode-mismatch";
  case VerifyIssueKind::Undecodable:
    return "undecodable";
  case VerifyIssueKind::BranchTargetBad:
    return "branch-target-bad";
  case VerifyIssueKind::PatchSiteBad:
    return "patch-site-bad";
  case VerifyIssueKind::ExitSiteBad:
    return "exit-site-bad";
  case VerifyIssueKind::MdaSequenceMalformed:
    return "mda-sequence-malformed";
  case VerifyIssueKind::IcWayBad:
    return "ic-way-bad";
  case VerifyIssueKind::StaleGuestCode:
    return "stale-guest-code";
  case VerifyIssueKind::FusedSiteBad:
    return "fused-site-bad";
  case VerifyIssueKind::AotUnreachable:
    return "aot-unreachable";
  }
  return "?";
}

std::string verifyIssueToString(const VerifyIssue &Issue) {
  return mdabt::format("%s at word %u (aux %u)",
                       verifyIssueKindName(Issue.Kind), Issue.Word,
                       Issue.Aux);
}

namespace {

struct Verifier {
  const CodeSpace &Code;
  const VerifierInput &Input;
  VerifyReport Report;

  /// All live half-open ranges: block bodies and stubs.
  std::vector<VerifierRegion> LiveRegions;
  std::unordered_set<uint32_t> LiveEntries;

  Verifier(const CodeSpace &C, const VerifierInput &I) : Code(C), Input(I) {
    for (const VerifierBlock &B : Input.Blocks) {
      LiveRegions.push_back({B.EntryWord, B.EndWord});
      LiveEntries.insert(B.EntryWord);
      for (const VerifierRegion &S : B.Stubs)
        LiveRegions.push_back(S);
    }
  }

  void issue(VerifyIssueKind K, uint32_t Word, uint32_t Aux = 0) {
    Report.Issues.push_back({K, Word, Aux});
  }

  bool inLiveRegion(uint32_t Word) const {
    return std::any_of(LiveRegions.begin(), LiveRegions.end(),
                       [&](const VerifierRegion &R) {
                         return Word >= R.Begin && Word < R.End;
                       });
  }

  /// Check 1: the predecoded mirror agrees with a fresh decode of every
  /// raw word, and valid entries round-trip through the encoder.  Runs
  /// over the whole arena, dead regions included — a stale mirror entry
  /// anywhere means patch/clear bookkeeping went wrong.
  void checkPredecode() {
    for (uint32_t W = 0; W < Code.size(); ++W) {
      ++Report.WordsChecked;
      HostInst Fresh;
      bool Valid = decodeHost(Code.word(W), Fresh);
      const CodeSpace::DecodedWord &Mirror = Code.decodedWord(W);
      if (Mirror.Valid != Valid) {
        issue(VerifyIssueKind::PredecodeMismatch, W);
        continue;
      }
      if (Valid && encodeHost(Mirror.Inst) != Code.word(W))
        issue(VerifyIssueKind::PredecodeMismatch, W, Code.word(W));
    }
  }

  /// Checks 2 + 3: every live word decodes and every branch in live
  /// code lands inside a live region.
  void checkRegions() {
    for (const VerifierRegion &R : LiveRegions) {
      ++Report.RegionsChecked;
      for (uint32_t W = R.Begin; W < R.End; ++W) {
        HostInst I;
        if (!decodeHost(Code.word(W), I)) {
          issue(VerifyIssueKind::Undecodable, W, Code.word(W));
          continue;
        }
        if (!isBranchFormat(I.Op) || Input.ExemptWords.count(W))
          continue;
        int64_t Target = static_cast<int64_t>(W) + 1 + I.Disp;
        if (Target < 0 || Target >= static_cast<int64_t>(Code.size()) ||
            !inLiveRegion(static_cast<uint32_t>(Target))) {
          issue(VerifyIssueKind::BranchTargetBad, W,
                static_cast<uint32_t>(Target));
        }
      }
    }
  }

  /// Check 4: patched fault sites.
  void checkPatches() {
    for (const VerifierBlock &B : Input.Blocks) {
      for (const VerifierPatch &P : B.Patches) {
        HostInst I;
        if (!decodeHost(Code.word(P.Word), I)) {
          issue(VerifyIssueKind::PatchSiteBad, P.Word);
          continue;
        }
        if (P.Reverted) {
          // An adaptive revert restored the original trapping op.
          if (!accessesMemory(I.Op) || alignmentOf(I.Op) <= 1)
            issue(VerifyIssueKind::PatchSiteBad, P.Word);
          continue;
        }
        if (I.Op != HostOp::Br) {
          issue(VerifyIssueKind::PatchSiteBad, P.Word);
          continue;
        }
        uint32_t Target = P.Word + 1 + static_cast<uint32_t>(I.Disp);
        bool IntoOwnStub =
            std::any_of(B.Stubs.begin(), B.Stubs.end(),
                        [&](const VerifierRegion &S) {
                          return Target >= S.Begin && Target < S.End;
                        });
        if (!IntoOwnStub)
          issue(VerifyIssueKind::PatchSiteBad, P.Word, Target);
      }
    }
  }

  /// Check 5: exit sites are `Srv Exit` or a chain branch to a live
  /// translation entry.
  void checkExits() {
    for (const VerifierBlock &B : Input.Blocks) {
      for (uint32_t W : B.ExitWords) {
        if (Input.ExemptWords.count(W))
          continue;
        HostInst I;
        if (!decodeHost(Code.word(W), I)) {
          issue(VerifyIssueKind::ExitSiteBad, W);
          continue;
        }
        if (I.Op == HostOp::Srv &&
            I.Disp == static_cast<int32_t>(SrvFunc::Exit))
          continue;
        if (I.Op == HostOp::Br) {
          uint32_t Target = W + 1 + static_cast<uint32_t>(I.Disp);
          if (LiveEntries.count(Target))
            continue;
          issue(VerifyIssueKind::ExitSiteBad, W, Target);
          continue;
        }
        issue(VerifyIssueKind::ExitSiteBad, W);
      }
    }
  }

  /// Check 6: every MDA sequence in live code is complete and
  /// byte-exact.  A sequence start is unmistakable — `lda RegMdaT2`
  /// followed by `ldq_u` occurs nowhere else in translator output (the
  /// adaptive stub's alignment probe also begins `lda RegMdaT2` but is
  /// followed by `and`).
  void checkMdaSequences() {
    for (const VerifierRegion &R : LiveRegions) {
      for (uint32_t W = R.Begin; W < R.End; ++W) {
        HostInst Lda;
        if (!decodeHost(Code.word(W), Lda) || Lda.Op != HostOp::Lda ||
            Lda.Ra != RegMdaT2)
          continue;
        HostInst Next;
        if (W + 1 >= R.End || !decodeHost(Code.word(W + 1), Next) ||
            Next.Op != HostOp::LdqU)
          continue;
        ++Report.MdaSequencesChecked;
        if (!checkOneMdaSequence(R, W, Next))
          issue(VerifyIssueKind::MdaSequenceMalformed, W);
        // Skip past the sequence body so its own ldq_u/lda words are
        // not re-probed (harmless, but noisy under corruption).
        W += (Next.Ra == RegMdaT1 ? mdaStoreLength() : mdaLoadLength()) - 1;
        W = std::min(W, R.End - 1);
      }
    }
  }

  bool checkOneMdaSequence(const VerifierRegion &R, uint32_t W,
                           const HostInst &FirstLdqU) {
    HostInst Lda;
    decodeHost(Code.word(W), Lda);
    uint8_t Rb = Lda.Rb;
    int32_t Disp = Lda.Disp;

    bool IsStore;
    unsigned Len;
    int32_t HighDisp;
    uint8_t DataReg;
    if (FirstLdqU.Ra == RegMdaT0) {
      // Load shape: the second ldq_u carries Disp + Size - 1 and the
      // final bis writes the destination.
      IsStore = false;
      Len = mdaLoadLength();
      if (W + Len > R.End)
        return false;
      HostInst High, Last;
      if (!decodeHost(Code.word(W + 2), High) || High.Op != HostOp::LdqU)
        return false;
      if (!decodeHost(Code.word(W + Len - 1), Last) ||
          Last.Op != HostOp::Bis)
        return false;
      HighDisp = High.Disp;
      DataReg = Last.Rc;
    } else if (FirstLdqU.Ra == RegMdaT1) {
      // Store shape: the first ldq_u already carries the high
      // displacement; the first ins* carries the value register.
      IsStore = true;
      Len = mdaStoreLength();
      if (W + Len > R.End)
        return false;
      HostInst Ins;
      if (!decodeHost(Code.word(W + 3), Ins))
        return false;
      HighDisp = FirstLdqU.Disp;
      DataReg = Ins.Ra;
    } else {
      return false;
    }

    int64_t Size = static_cast<int64_t>(HighDisp) - Disp + 1;
    if (Size != 2 && Size != 4 && Size != 8)
      return false;

    // Re-emit the canonical sequence and require byte equality.
    CodeSpace Scratch;
    {
      HostAssembler Asm(Scratch);
      if (IsStore)
        emitMdaStore(Asm, static_cast<unsigned>(Size), DataReg, Rb, Disp);
      else
        emitMdaLoad(Asm, static_cast<unsigned>(Size), DataReg, Rb, Disp);
      Asm.finish();
    }
    if (Scratch.size() != Len)
      return false;
    for (uint32_t K = 0; K < Len; ++K)
      if (Scratch.word(K) != Code.word(W + K))
        return false;
    return true;
  }

  /// Check 7: inline-cache ways.  A disabled way must start with the
  /// guard branch that skips it; a filled way must be the byte-exact
  /// tag-compare shape for the engine's claimed (tag, target) pair, and
  /// the target must be a live translation entry.  The shape constants
  /// are re-derived here, independent of the engine's fill path.
  void checkIcWays() {
    for (const VerifierBlock &B : Input.Blocks) {
      for (const VerifierIcWay &W : B.IcWays) {
        if (Input.IcWayWords != 6) {
          // Unknown layout width: fail closed rather than mis-walk.
          issue(VerifyIssueKind::IcWayBad, W.Begin, Input.IcWayWords);
          continue;
        }
        if (!W.Filled) {
          HostInst G;
          if (!decodeHost(Code.word(W.Begin), G) || G.Op != HostOp::Br ||
              G.Ra != RegZero ||
              G.Disp != static_cast<int32_t>(Input.IcWayWords) - 1)
            issue(VerifyIssueKind::IcWayBad, W.Begin, Code.word(W.Begin));
          continue;
        }
        uint32_t FinalBr = W.Begin + Input.IcWayWords - 1;
        int32_t Lo = static_cast<int16_t>(W.TargetGuestPc & 0xffff);
        int32_t Hi = static_cast<int32_t>(W.TargetGuestPc -
                                          static_cast<uint32_t>(Lo)) >>
                     16;
        int64_t Disp = static_cast<int64_t>(W.TargetEntry) -
                       (static_cast<int64_t>(FinalBr) + 1);
        const uint32_t Expect[6] = {
            encodeHost(memInst(HostOp::Ldah, RegScratch1, Hi, RegZero)),
            encodeHost(
                memInst(HostOp::Lda, RegScratch1, Lo, RegScratch1)),
            encodeHost(
                opInst(HostOp::Zextl, RegZero, RegScratch1, RegScratch1)),
            encodeHost(
                opInst(HostOp::Cmpeq, RegExitPc, RegScratch1,
                       RegScratch2)),
            encodeHost(brInst(HostOp::Beq, RegScratch2, 1)),
            encodeHost(
                brInst(HostOp::Br, RegZero, static_cast<int32_t>(Disp))),
        };
        bool Ok = LiveEntries.count(W.TargetEntry) != 0;
        for (uint32_t K = 0; Ok && K != 6; ++K)
          if (Code.word(W.Begin + K) != Expect[K])
            Ok = false;
        if (!Ok)
          issue(VerifyIssueKind::IcWayBad, W.Begin, W.TargetEntry);
      }
    }
  }

  /// Check 8: guest-code coherence.  Every dirtied guest byte that
  /// falls inside a live translation's compiled ranges must be older
  /// than the translation itself (dirty epoch <= birth epoch) — a
  /// newer epoch means the engine's write barrier failed to invalidate
  /// a translation whose source bytes were rewritten.  The issue's
  /// word is the translation's entry; aux is the offending guest byte.
  void checkGuestCoherence() {
    if (!Input.GuestDirtyEpoch || Input.GuestDirtyEpoch->empty())
      return;
    for (const VerifierBlock &B : Input.Blocks) {
      if (B.GuestRanges.empty())
        continue;
      for (const auto &[Byte, Epoch] : *Input.GuestDirtyEpoch) {
        if (Epoch <= B.BornEpoch)
          continue;
        bool Inside = std::any_of(B.GuestRanges.begin(),
                                  B.GuestRanges.end(),
                                  [&](const VerifierRegion &R) {
                                    return Byte >= R.Begin &&
                                           Byte < R.End;
                                  });
        if (Inside) {
          issue(VerifyIssueKind::StaleGuestCode, B.EntryWord, Byte);
          break; // one offending byte per block is enough signal
        }
      }
    }
  }

  /// Check 9: fused-sequence integrity.  Every fused core must still be
  /// byte-exact against the words captured at install time, except at
  /// words the engine legitimately rewrote afterwards (patched fault
  /// sites, adaptive reverts) or quarantined (ExemptWords).  The
  /// issue's word is the first diverging word; aux is its current raw
  /// value.
  void checkFusedSites() {
    for (const VerifierBlock &B : Input.Blocks) {
      for (const VerifierFusedSite &F : B.FusedSites) {
        ++Report.FusedSitesChecked;
        if (F.Begin > F.End || F.Begin < B.EntryWord ||
            F.End > B.EndWord ||
            F.Words.size() != F.End - F.Begin) {
          issue(VerifyIssueKind::FusedSiteBad, F.Begin, F.End);
          continue;
        }
        for (uint32_t K = 0; K != F.Words.size(); ++K) {
          uint32_t W = F.Begin + K;
          if (Input.ExemptWords.count(W))
            continue;
          bool Patched =
              std::any_of(B.Patches.begin(), B.Patches.end(),
                          [&](const VerifierPatch &P) {
                            return P.Word == W;
                          });
          if (Patched)
            continue;
          if (Code.word(W) != F.Words[K]) {
            issue(VerifyIssueKind::FusedSiteBad, W, Code.word(W));
            break; // first diverging word per site is enough signal
          }
        }
      }
    }
  }

  /// Check 10: AOT reachability.  An AOT-installed translation's guest
  /// ranges must all lie inside the statically recovered reachable set
  /// — the pre-translator can only ever install code the CFG-recovery
  /// pass proved the guest can reach.  The issue's word is the
  /// translation's entry; aux is the first uncovered guest byte.
  void checkAotReachability() {
    if (!Input.ReachableRanges)
      return;
    const std::vector<VerifierRegion> &Set = *Input.ReachableRanges;
    auto Covered = [&](uint32_t Begin, uint32_t End, uint32_t &Bad) {
      // Ranges are sorted and disjoint: one range must cover the whole
      // [Begin, End) span (recovery merges adjacent blocks).
      for (const VerifierRegion &R : Set) {
        if (Begin >= R.Begin && End <= R.End)
          return true;
        if (R.Begin > Begin)
          break;
      }
      Bad = Begin;
      return false;
    };
    for (const VerifierBlock &B : Input.Blocks) {
      if (!B.AotInstalled)
        continue;
      for (const VerifierRegion &G : B.GuestRanges) {
        uint32_t Bad = 0;
        if (!Covered(G.Begin, G.End, Bad)) {
          issue(VerifyIssueKind::AotUnreachable, B.EntryWord, Bad);
          break; // one uncovered range per block is enough signal
        }
      }
    }
  }

  VerifyReport run() {
    checkPredecode();
    checkRegions();
    checkPatches();
    checkExits();
    checkMdaSequences();
    checkIcWays();
    checkGuestCoherence();
    checkFusedSites();
    checkAotReachability();
    return std::move(Report);
  }
};

} // namespace

VerifyReport verifyCodeSpace(const CodeSpace &Code,
                             const VerifierInput &Input) {
  Verifier V(Code, Input);
  return V.run();
}

} // namespace analysis
} // namespace mdabt
