//===- analysis/AlignmentAnalysis.h - Static alignment inference -*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program abstract interpretation that classifies every guest
/// memory operation as provably-aligned, provably-misaligned, or
/// unknown before the first instruction runs.
///
/// The domain is a congruence lattice per 32-bit register:
///
///   Bottom  <  Exact(v)  <  Congruent(8,r)  <  Congruent(4,r)
///           <  Congruent(2,r)  <  Top
///
/// `Congruent(M, R)` means "the register's value is congruent to R
/// modulo M" with M a power of two in {2,4,8} — exactly the precision
/// needed to decide 2/4/8-byte access alignment.  Each per-register
/// chain has height 5, so the fixpoint terminates without widening.
///
/// The analysis is *sound but incomplete*: an `Aligned` or `Misaligned`
/// verdict is a proof (validated empirically by the differential
/// property tests over random corpora), while `Unknown` just means the
/// lattice could not decide and the runtime MDA machinery must handle
/// the op as before.  Two program-level assumptions are required and
/// shared with the translator (see DESIGN.md): the guest does not
/// modify its own code, and no store clobbers a return-address slot on
/// the stack.  Constructs the lattice cannot follow soundly — an
/// indirect jump through a non-constant register, undecodable bytes, or
/// a runaway straight-line region — *poison* the whole result, which
/// then answers Unknown for every site.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_ANALYSIS_ALIGNMENTANALYSIS_H
#define MDABT_ANALYSIS_ALIGNMENTANALYSIS_H

#include "guest/GuestImage.h"
#include "guest/GuestInst.h"
#include "guest/GuestMemory.h"

#include <cstdint>
#include <unordered_map>

namespace mdabt {
namespace analysis {

/// One point of the per-register congruence lattice.
struct AbsVal {
  enum class Kind : uint8_t {
    Bottom,    ///< No value yet (unreached).
    Exact,     ///< Known 32-bit constant.
    Congruent, ///< Known residue `Res` modulo `Mod` (Mod in {2,4,8}).
    Top,       ///< Anything.
  };

  Kind K = Kind::Bottom;
  uint32_t Value = 0; ///< Exact only.
  uint8_t Mod = 0;    ///< Congruent only: 2, 4 or 8.
  uint8_t Res = 0;    ///< Congruent only: residue in [0, Mod).

  static AbsVal bottom() { return {}; }
  static AbsVal top() { return {Kind::Top, 0, 0, 0}; }
  static AbsVal exact(uint32_t V) { return {Kind::Exact, V, 0, 0}; }
  /// Congruence constructor; normalizes Mod <= 1 to Top and reduces the
  /// residue.
  static AbsVal congruent(uint32_t M, uint32_t R) {
    if (M <= 1)
      return top();
    return {Kind::Congruent, 0, static_cast<uint8_t>(M),
            static_cast<uint8_t>(R % M)};
  }

  bool operator==(const AbsVal &O) const {
    return K == O.K && Value == O.Value && Mod == O.Mod && Res == O.Res;
  }
  bool operator!=(const AbsVal &O) const { return !(*this == O); }

  /// Largest modulus this value is known under (8 for Exact, Mod for
  /// Congruent, 0 otherwise).
  uint32_t knownMod() const {
    if (K == Kind::Exact)
      return 8;
    if (K == Kind::Congruent)
      return Mod;
    return 0;
  }
  /// Residue modulo \p M; only valid when M <= knownMod().
  uint32_t residue(uint32_t M) const {
    return (K == Kind::Exact ? Value : Res) % M;
  }
};

/// Least upper bound of two lattice points.
AbsVal join(const AbsVal &A, const AbsVal &B);

// Transfer functions for the guest's 32-bit wrapping ALU.  All are
// exact folds when both operands are Exact and degrade through the
// congruence arithmetic otherwise.  Exposed individually so the unit
// tests can probe lattice corners without building programs.
AbsVal absAdd(const AbsVal &A, const AbsVal &B);
AbsVal absSub(const AbsVal &A, const AbsVal &B);
AbsVal absMul(const AbsVal &A, const AbsVal &B);
AbsVal absAnd(const AbsVal &A, const AbsVal &B);
AbsVal absOr(const AbsVal &A, const AbsVal &B);
AbsVal absXor(const AbsVal &A, const AbsVal &B);
AbsVal absShl(const AbsVal &A, const AbsVal &Sh);
AbsVal absShr(const AbsVal &A, const AbsVal &Sh);
AbsVal absSar(const AbsVal &A, const AbsVal &Sh);

/// Classification of one memory site.
enum class AlignVerdict : uint8_t {
  Unknown,    ///< Lattice could not decide; runtime machinery applies.
  Aligned,    ///< Every dynamic execution is size-aligned: elide MDA.
  Misaligned, ///< Every dynamic execution misaligns: inline MDA upfront.
};

const char *alignVerdictName(AlignVerdict V);

/// Verdict for an abstract address accessed with \p Size bytes.
/// Size <= 1 accesses can never misalign and report Unknown.
AlignVerdict verdictOf(const AbsVal &Addr, unsigned Size);

/// Per-site analysis output: the joined abstract address over every
/// path reaching the instruction, and the resulting verdict.
struct SiteInfo {
  guest::GuestInst Inst;
  AbsVal Addr;
  AlignVerdict Verdict = AlignVerdict::Unknown;
  unsigned Size = 0;
  bool IsStore = false;
};

/// Result of a whole-program analysis run.
struct AnalysisResult {
  /// Memory sites keyed by instruction PC (2/4/8-byte ops only).
  std::unordered_map<uint32_t, SiteInfo> Sites;
  /// Number of distinct basic blocks explored.
  size_t Blocks = 0;
  /// True when the program contained a construct the lattice cannot
  /// follow soundly; every verdict is then Unknown.
  bool Poisoned = false;
  uint64_t NumAligned = 0;
  uint64_t NumMisaligned = 0;
  uint64_t NumUnknown = 0;

  /// Verdict for the instruction at \p Pc, guarded by instruction
  /// identity: if \p I is not byte-for-byte the instruction the
  /// analysis saw there (self-modifying code would do this), the
  /// answer degrades to Unknown rather than risking a stale proof.
  AlignVerdict verdictFor(uint32_t Pc, const guest::GuestInst &I) const;
};

/// Run the analysis over guest memory starting at \p Entry with the
/// architectural initial state (all GPRs zero, SP = \p StackTop).
AnalysisResult analyzeAlignment(const guest::GuestMemory &Mem, uint32_t Entry,
                                uint32_t StackTop);

/// Convenience overload: load \p Image into a scratch memory and
/// analyze it.
AnalysisResult analyzeAlignment(const guest::GuestImage &Image);

} // namespace analysis
} // namespace mdabt

#endif // MDABT_ANALYSIS_ALIGNMENTANALYSIS_H
