//===- guest/Encoding.h - GX86 binary encoder / decoder --------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-level encoding of GX86.  Like X86, instructions are variable
/// length: an opcode byte followed by register/addressing bytes and
/// optional 8- or 32-bit displacements / 32-bit immediates (little
/// endian).
///
/// Memory-operand layout: [op] [Reg1<<4 | Reg2] [mode] (disp8|disp32)?
/// where mode encodes: bit7 = has index, bits6..4 = index register,
/// bits3..2 = scale (log2), bits1..0 = displacement kind
/// (0 none, 1 = int8, 2 = int32).
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_GUEST_ENCODING_H
#define MDABT_GUEST_ENCODING_H

#include "guest/GuestInst.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mdabt {
namespace guest {

/// Appends the encoding of \p Inst to \p Out and returns the encoded
/// length.  Asserts on malformed instructions (bad register numbers,
/// scale out of range).  Inst.Length is ignored on input.
unsigned encode(const GuestInst &Inst, std::vector<uint8_t> &Out);

/// Decodes the instruction starting at \p Bytes[Offset].  Returns false
/// if the opcode byte is not a valid GX86 opcode or the instruction is
/// truncated; on success fills \p Inst (including Inst.Length).
bool decode(const uint8_t *Bytes, size_t Size, size_t Offset,
            GuestInst &Inst);

/// Disassembles \p Inst (assumed to sit at \p Pc, used to render branch
/// targets) into human-readable text.
std::string disassemble(const GuestInst &Inst, uint32_t Pc);

} // namespace guest
} // namespace mdabt

#endif // MDABT_GUEST_ENCODING_H
