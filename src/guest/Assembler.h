//===- guest/Assembler.h - Label-based GX86 program builder ----*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small assembler for building GX86 binaries in memory: forward-label
/// branches, a data-segment builder with alignment control, and
/// validation of the ISA's structural rule that every Jcc is immediately
/// preceded by a Cmp/CmpI (which is what lets the translator fuse
/// compare-and-branch, as real DBTs do).
///
/// Used by the workload generator, the examples and the tests.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_GUEST_ASSEMBLER_H
#define MDABT_GUEST_ASSEMBLER_H

#include "guest/Encoding.h"
#include "guest/GuestImage.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mdabt {
namespace guest {

/// A memory operand: [Base + Index*2^Scale + Disp].
struct Mem {
  uint8_t Base = 0;
  bool HasIndex = false;
  uint8_t Index = 0;
  uint8_t Scale = 0;
  int32_t Disp = 0;
};

/// [Base + Disp]
inline Mem mem(uint8_t Base, int32_t Disp = 0) {
  return Mem{Base, false, 0, 0, Disp};
}

/// [Base + Index*2^ScaleLog2 + Disp]
inline Mem memIdx(uint8_t Base, uint8_t Index, uint8_t ScaleLog2,
                  int32_t Disp = 0) {
  return Mem{Base, true, Index, ScaleLog2, Disp};
}

/// Incrementally builds a GuestImage.
class ProgramBuilder {
public:
  using Label = uint32_t;

  explicit ProgramBuilder(std::string Name) : ImageName(std::move(Name)) {}

  /// Create an unbound label.
  Label newLabel();
  /// Bind \p L to the current code position.  A label may be bound once.
  void bind(Label L);
  /// Create a label bound to the current position.
  Label here();

  /// Current code offset from the code base (useful for size accounting).
  uint32_t codeSize() const {
    return static_cast<uint32_t>(Code.size());
  }
  /// Guest address of the current code position.
  uint32_t codeAddress() const { return layout::CodeBase + codeSize(); }

  // Straight-line instructions ------------------------------------------
  void nop();
  void halt();
  void chk(uint8_t Gpr);
  void qchk(uint8_t Q);

  void load(Opcode Op, uint8_t DataReg, const Mem &M);
  void store(Opcode Op, const Mem &M, uint8_t DataReg);
  void ldb(uint8_t R, const Mem &M) { load(Opcode::Ldb, R, M); }
  void ldw(uint8_t R, const Mem &M) { load(Opcode::Ldw, R, M); }
  void ldl(uint8_t R, const Mem &M) { load(Opcode::Ldl, R, M); }
  void ldq(uint8_t Q, const Mem &M) { load(Opcode::Ldq, Q, M); }
  void stb(const Mem &M, uint8_t R) { store(Opcode::Stb, M, R); }
  void stw(const Mem &M, uint8_t R) { store(Opcode::Stw, M, R); }
  void stl(const Mem &M, uint8_t R) { store(Opcode::Stl, M, R); }
  void stq(const Mem &M, uint8_t Q) { store(Opcode::Stq, M, Q); }
  void lea(uint8_t R, const Mem &M) { load(Opcode::Lea, R, M); }

  void alu(Opcode Op, uint8_t Dst, uint8_t Src);
  void aluImm(Opcode Op, uint8_t Dst, int32_t Imm);
  void movrr(uint8_t Dst, uint8_t Src) { alu(Opcode::MovRR, Dst, Src); }
  void movri(uint8_t Dst, int32_t Imm) { aluImm(Opcode::MovRI, Dst, Imm); }
  void add(uint8_t Dst, uint8_t Src) { alu(Opcode::Add, Dst, Src); }
  void sub(uint8_t Dst, uint8_t Src) { alu(Opcode::Sub, Dst, Src); }
  void and_(uint8_t Dst, uint8_t Src) { alu(Opcode::And, Dst, Src); }
  void or_(uint8_t Dst, uint8_t Src) { alu(Opcode::Or, Dst, Src); }
  void xor_(uint8_t Dst, uint8_t Src) { alu(Opcode::Xor, Dst, Src); }
  void shl(uint8_t Dst, uint8_t Src) { alu(Opcode::Shl, Dst, Src); }
  void shr(uint8_t Dst, uint8_t Src) { alu(Opcode::Shr, Dst, Src); }
  void sar(uint8_t Dst, uint8_t Src) { alu(Opcode::Sar, Dst, Src); }
  void mul(uint8_t Dst, uint8_t Src) { alu(Opcode::Mul, Dst, Src); }
  void addi(uint8_t Dst, int32_t Imm) { aluImm(Opcode::AddI, Dst, Imm); }
  void subi(uint8_t Dst, int32_t Imm) { aluImm(Opcode::SubI, Dst, Imm); }
  void andi(uint8_t Dst, int32_t Imm) { aluImm(Opcode::AndI, Dst, Imm); }
  void ori(uint8_t Dst, int32_t Imm) { aluImm(Opcode::OrI, Dst, Imm); }
  void xori(uint8_t Dst, int32_t Imm) { aluImm(Opcode::XorI, Dst, Imm); }
  void shli(uint8_t Dst, int32_t Imm) { aluImm(Opcode::ShlI, Dst, Imm); }
  void shri(uint8_t Dst, int32_t Imm) { aluImm(Opcode::ShrI, Dst, Imm); }
  void sari(uint8_t Dst, int32_t Imm) { aluImm(Opcode::SarI, Dst, Imm); }
  void muli(uint8_t Dst, int32_t Imm) { aluImm(Opcode::MulI, Dst, Imm); }

  void cmp(uint8_t A, uint8_t B) { alu(Opcode::Cmp, A, B); }
  void cmpi(uint8_t A, int32_t Imm) { aluImm(Opcode::CmpI, A, Imm); }

  void qmov(uint8_t Dst, uint8_t Src) { alu(Opcode::QMovRR, Dst, Src); }
  void qmovi(uint8_t Dst, int32_t Imm) { aluImm(Opcode::QMovI, Dst, Imm); }
  void qadd(uint8_t Dst, uint8_t Src) { alu(Opcode::QAdd, Dst, Src); }
  void qaddi(uint8_t Dst, int32_t Imm) { aluImm(Opcode::QAddI, Dst, Imm); }
  void qxor(uint8_t Dst, uint8_t Src) { alu(Opcode::QXor, Dst, Src); }
  void gtoq(uint8_t Q, uint8_t G) { alu(Opcode::GToQ, Q, G); }
  void qtog(uint8_t G, uint8_t Q) { alu(Opcode::QToG, G, Q); }

  // Control flow ---------------------------------------------------------
  void jmp(Label L);
  /// A Jcc must directly follow cmp/cmpi; asserted here.
  void jcc(Cond C, Label L);
  void call(Label L);
  void ret();
  void jmpr(uint8_t R);

  // Data segment ---------------------------------------------------------
  /// Reserve \p Size zeroed bytes aligned to \p Align; returns the guest
  /// address of the reservation.
  uint32_t dataReserve(uint32_t Size, uint32_t Align);
  /// Append an initialized 32-bit word (4-byte aligned); returns address.
  uint32_t dataU32(uint32_t Value);
  /// Append an initialized 64-bit word (8-byte aligned); returns address.
  uint32_t dataU64(uint64_t Value);
  /// Overwrite a previously emitted 32-bit data word.
  void patchDataU32(uint32_t Address, uint32_t Value);
  /// Overwrite a previously emitted 64-bit data word.
  void patchDataU64(uint32_t Address, uint64_t Value);

  uint32_t dataSize() const {
    return static_cast<uint32_t>(Data.size());
  }

  /// Finalize: resolve all branch fixups.  All labels used by branches
  /// must be bound.  The entry point is the code base.
  GuestImage build();

private:
  void emit(const GuestInst &Inst);
  void emitBranch(Opcode Op, Cond C, Label L);

  std::string ImageName;
  std::vector<uint8_t> Code;
  std::vector<uint8_t> Data;
  static constexpr uint32_t Unbound = ~0u;
  std::vector<uint32_t> Labels; ///< code offset per label, or Unbound.
  struct Fixup {
    uint32_t ImmOffset; ///< offset of the rel32 within Code.
    uint32_t NextPc;    ///< code offset of the following instruction.
    Label Target;
  };
  std::vector<Fixup> Fixups;
  bool LastWasCmp = false;
  bool Built = false;
};

} // namespace guest
} // namespace mdabt

#endif // MDABT_GUEST_ASSEMBLER_H
