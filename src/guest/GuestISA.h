//===- guest/GuestISA.h - The GX86 guest instruction set -------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GX86: the synthetic, X86-flavoured guest ISA.  Like X86 it is
/// byte-encoded, has eight 32-bit general registers plus eight 64-bit
/// "Q" registers (standing in for x87/SSE state), rich addressing modes
/// (base + index*scale + disp), condition flags set by compare
/// instructions, and — crucially for this paper — it permits misaligned
/// data accesses of 2, 4 and 8 bytes.
///
/// The ISA is deliberately small enough to interpret and translate
/// completely, but large enough that the workload generator can express
/// the SPEC-like access patterns of the paper's Table I.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_GUEST_GUESTISA_H
#define MDABT_GUEST_GUESTISA_H

#include <cstdint>

namespace mdabt {
namespace guest {

/// Number of 32-bit general-purpose registers (EAX..EDI).
inline constexpr unsigned NumGPR = 8;
/// Number of 64-bit Q registers (Q0..Q7).
inline constexpr unsigned NumQReg = 8;
/// Index of the stack pointer within the GPR file (x86's ESP).
inline constexpr unsigned RegSP = 4;

/// GX86 opcodes.  The numeric values are the encoding's first byte.
enum class Opcode : uint8_t {
  Nop = 0x00,
  Halt = 0x01,
  /// Fold a GPR into the run checksum (used for differential testing).
  Chk = 0x02,
  /// Fold a Q register into the run checksum.
  QChk = 0x03,

  // Loads.  Ldb/Ldw/Ldl zero-extend into a GPR; Ldq fills a Q register.
  Ldb = 0x10,
  Ldw = 0x11,
  Ldl = 0x12,
  Ldq = 0x13,
  // Stores.  Stb/Stw/Stl store the low bytes of a GPR; Stq a Q register.
  Stb = 0x14,
  Stw = 0x15,
  Stl = 0x16,
  Stq = 0x17,
  /// GPR <- effective address (x86 LEA).
  Lea = 0x18,

  // GPR register-register ALU (32-bit, wrapping).
  MovRR = 0x20,
  Add = 0x21,
  Sub = 0x22,
  And = 0x23,
  Or = 0x24,
  Xor = 0x25,
  Shl = 0x26,
  Shr = 0x27,
  Sar = 0x28,
  Mul = 0x29,

  // GPR register-immediate ALU (imm32).
  MovRI = 0x30,
  AddI = 0x31,
  SubI = 0x32,
  AndI = 0x33,
  OrI = 0x34,
  XorI = 0x35,
  ShlI = 0x36,
  ShrI = 0x37,
  SarI = 0x38,
  MulI = 0x39,

  // Flag-setting compares (the only flag producers).
  Cmp = 0x3a,
  CmpI = 0x3b,

  // 64-bit Q-register ALU.
  QMovRR = 0x40,
  /// Q <- sign-extended imm32.
  QMovI = 0x41,
  QAdd = 0x42,
  QAddI = 0x43,
  QXor = 0x44,
  /// Q <- zero-extended GPR.
  GToQ = 0x45,
  /// GPR <- low 32 bits of Q.
  QToG = 0x46,

  // Control flow.
  Jmp = 0x50,
  Jcc = 0x51,
  Call = 0x52,
  Ret = 0x53,
  /// Indirect jump through a GPR.
  JmpR = 0x54,
};

/// Condition codes for Jcc.  A Jcc must be immediately preceded by a
/// Cmp/CmpI in the same basic block (validated by the assembler); this
/// mirrors the compare-and-branch idiom every real translator pattern
/// matches.
enum class Cond : uint8_t {
  Eq = 0,
  Ne = 1,
  Lt = 2, ///< signed <
  Ge = 3, ///< signed >=
  Le = 4, ///< signed <=
  Gt = 5, ///< signed >
  B = 6,  ///< unsigned <
  Ae = 7, ///< unsigned >=
};

/// True if \p Op is a memory load or store.
inline bool isMemoryOp(Opcode Op) {
  return Op >= Opcode::Ldb && Op <= Opcode::Stq;
}

/// True if \p Op is a load.
inline bool isLoad(Opcode Op) {
  return Op >= Opcode::Ldb && Op <= Opcode::Ldq;
}

/// True if \p Op is a store.
inline bool isStore(Opcode Op) {
  return Op >= Opcode::Stb && Op <= Opcode::Stq;
}

/// Access size in bytes of a memory opcode.
inline unsigned accessSize(Opcode Op) {
  switch (Op) {
  case Opcode::Ldb:
  case Opcode::Stb:
    return 1;
  case Opcode::Ldw:
  case Opcode::Stw:
    return 2;
  case Opcode::Ldl:
  case Opcode::Stl:
    return 4;
  case Opcode::Ldq:
  case Opcode::Stq:
    return 8;
  default:
    return 0;
  }
}

/// True if \p Op ends a basic block.
inline bool isBlockTerminator(Opcode Op) {
  switch (Op) {
  case Opcode::Jmp:
  case Opcode::Jcc:
  case Opcode::Call:
  case Opcode::Ret:
  case Opcode::JmpR:
  case Opcode::Halt:
    return true;
  default:
    return false;
  }
}

/// Printable mnemonic for an opcode.
const char *opcodeName(Opcode Op);

/// Printable name for a condition code.
const char *condName(Cond C);

/// Printable GPR name (x86 register names).
const char *gprName(unsigned Reg);

} // namespace guest
} // namespace mdabt

#endif // MDABT_GUEST_GUESTISA_H
