//===- guest/GuestMemory.h - Flat guest address space ----------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest process's flat memory.  Both the interpreter and the host
/// machine simulator (running translated code) operate on this object —
/// translated code addresses the migrated process image directly, exactly
/// as in DigitalBridge/FX!32 where guest data lives at its original
/// addresses.
///
/// All accessors permit misaligned addresses; *whether* a misaligned
/// access traps is a property of the executing machine (the host
/// simulator), not of the memory.
///
/// The memory also hosts the DBT's self-modifying-code write barrier:
/// the engine registers the guest byte ranges backing live translations
/// (watchRange/unwatchRange, bookkept as per-64-byte-page reference
/// counts), and every store whose page is watched invokes the watcher
/// callback — the software analogue of write-protecting code pages in a
/// real translator.  Unwatched stores pay exactly one integer compare.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_GUEST_GUESTMEMORY_H
#define MDABT_GUEST_GUESTMEMORY_H

#include "guest/GuestImage.h"

#include <cassert>
#include <cstring>
#include <functional>
#include <vector>

namespace mdabt {
namespace guest {

/// Flat, byte-addressable guest memory.
class GuestMemory {
public:
  /// Log2 of the write-watch page size.  64 bytes keeps the dirty map
  /// fine enough that unrelated translations rarely share a page, while
  /// one page still covers a typical guest basic block.
  static constexpr uint32_t WatchPageShift = 6;
  static constexpr uint32_t WatchPageBytes = 1u << WatchPageShift;

  /// Invoked for every store that lands in a watched page, after the
  /// bytes have been written.  The callback may read memory and adjust
  /// watches but must not store through this GuestMemory.
  using WriteWatcher = std::function<void(uint32_t Addr, unsigned Size)>;

  explicit GuestMemory(uint32_t Size = layout::MemorySize) : Bytes(Size, 0) {}

  /// Zero memory and copy the image's code and data segments in.
  void loadImage(const GuestImage &Image) {
    std::memset(Bytes.data(), 0, Bytes.size());
    assert(Image.codeEnd() <= Bytes.size() && "code segment out of range");
    assert(Image.dataEnd() <= Bytes.size() && "data segment out of range");
    std::memcpy(Bytes.data() + Image.CodeBase, Image.Code.data(),
                Image.Code.size());
    std::memcpy(Bytes.data() + Image.DataBase, Image.Data.data(),
                Image.Data.size());
  }

  /// Load \p Size (1/2/4/8) bytes at \p Addr, zero-extended.
  uint64_t load(uint32_t Addr, unsigned Size) const {
    assert(inRange(Addr, Size) && "guest load out of range");
    uint64_t V = 0;
    std::memcpy(&V, Bytes.data() + Addr, Size);
    return V;
  }

  /// Store the low \p Size bytes of \p Value at \p Addr.
  void store(uint32_t Addr, unsigned Size, uint64_t Value) {
    assert(inRange(Addr, Size) && "guest store out of range");
    std::memcpy(Bytes.data() + Addr, &Value, Size);
    if (WatchedPages != 0) {
      uint32_t P0 = Addr >> WatchPageShift;
      uint32_t P1 = (Addr + Size - 1) >> WatchPageShift;
      if (Watch[P0] != 0 || Watch[P1] != 0)
        Watcher(Addr, Size);
    }
  }

  // -- write-watch (SMC barrier) ----------------------------------------

  /// Install the barrier callback.  One watcher per memory; installing
  /// while ranges are watched is allowed (the new watcher takes over).
  void setWriteWatcher(WriteWatcher W) { Watcher = std::move(W); }

  /// Watch the half-open byte range [Begin, End): stores touching any
  /// page it covers invoke the watcher.  Ranges nest — each watchRange
  /// must be paired with one unwatchRange of the same range.
  void watchRange(uint32_t Begin, uint32_t End) {
    if (Begin >= End)
      return;
    assert(Watcher && "watchRange without a write watcher installed");
    if (Watch.empty())
      Watch.resize(((Bytes.size() - 1) >> WatchPageShift) + 1, 0);
    for (uint32_t P = Begin >> WatchPageShift,
                  Last = (End - 1) >> WatchPageShift;
         P <= Last; ++P)
      if (Watch[P]++ == 0)
        ++WatchedPages;
  }

  /// Undo one prior watchRange(Begin, End).
  void unwatchRange(uint32_t Begin, uint32_t End) {
    if (Begin >= End)
      return;
    for (uint32_t P = Begin >> WatchPageShift,
                  Last = (End - 1) >> WatchPageShift;
         P <= Last; ++P) {
      assert(!Watch.empty() && Watch[P] != 0 &&
             "unwatchRange without a matching watchRange");
      if (--Watch[P] == 0)
        --WatchedPages;
    }
  }

  /// True if a store at \p Addr would invoke the watcher.
  bool watched(uint32_t Addr) const {
    return WatchedPages != 0 && Watch[Addr >> WatchPageShift] != 0;
  }

  /// Number of distinct pages currently under watch.
  uint32_t watchedPages() const { return WatchedPages; }

  const uint8_t *data() const { return Bytes.data(); }
  uint8_t *data() { return Bytes.data(); }
  uint32_t size() const { return static_cast<uint32_t>(Bytes.size()); }

  bool inRange(uint32_t Addr, unsigned Size) const {
    return static_cast<uint64_t>(Addr) + Size <= Bytes.size();
  }

private:
  std::vector<uint8_t> Bytes;
  /// Per-page count of watched ranges covering the page; allocated
  /// lazily on the first watchRange so watch-free runs pay nothing.
  std::vector<uint32_t> Watch;
  uint32_t WatchedPages = 0;
  WriteWatcher Watcher;
};

} // namespace guest
} // namespace mdabt

#endif // MDABT_GUEST_GUESTMEMORY_H
