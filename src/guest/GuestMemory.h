//===- guest/GuestMemory.h - Flat guest address space ----------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest process's flat memory.  Both the interpreter and the host
/// machine simulator (running translated code) operate on this object —
/// translated code addresses the migrated process image directly, exactly
/// as in DigitalBridge/FX!32 where guest data lives at its original
/// addresses.
///
/// All accessors permit misaligned addresses; *whether* a misaligned
/// access traps is a property of the executing machine (the host
/// simulator), not of the memory.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_GUEST_GUESTMEMORY_H
#define MDABT_GUEST_GUESTMEMORY_H

#include "guest/GuestImage.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace mdabt {
namespace guest {

/// Flat, byte-addressable guest memory.
class GuestMemory {
public:
  explicit GuestMemory(uint32_t Size = layout::MemorySize) : Bytes(Size, 0) {}

  /// Zero memory and copy the image's code and data segments in.
  void loadImage(const GuestImage &Image) {
    std::memset(Bytes.data(), 0, Bytes.size());
    assert(Image.codeEnd() <= Bytes.size() && "code segment out of range");
    assert(Image.dataEnd() <= Bytes.size() && "data segment out of range");
    std::memcpy(Bytes.data() + Image.CodeBase, Image.Code.data(),
                Image.Code.size());
    std::memcpy(Bytes.data() + Image.DataBase, Image.Data.data(),
                Image.Data.size());
  }

  /// Load \p Size (1/2/4/8) bytes at \p Addr, zero-extended.
  uint64_t load(uint32_t Addr, unsigned Size) const {
    assert(inRange(Addr, Size) && "guest load out of range");
    uint64_t V = 0;
    std::memcpy(&V, Bytes.data() + Addr, Size);
    return V;
  }

  /// Store the low \p Size bytes of \p Value at \p Addr.
  void store(uint32_t Addr, unsigned Size, uint64_t Value) {
    assert(inRange(Addr, Size) && "guest store out of range");
    std::memcpy(Bytes.data() + Addr, &Value, Size);
  }

  const uint8_t *data() const { return Bytes.data(); }
  uint8_t *data() { return Bytes.data(); }
  uint32_t size() const { return static_cast<uint32_t>(Bytes.size()); }

  bool inRange(uint32_t Addr, unsigned Size) const {
    return static_cast<uint64_t>(Addr) + Size <= Bytes.size();
  }

private:
  std::vector<uint8_t> Bytes;
};

} // namespace guest
} // namespace mdabt

#endif // MDABT_GUEST_GUESTMEMORY_H
