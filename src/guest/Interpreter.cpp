//===- guest/Interpreter.cpp ----------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "guest/Interpreter.h"

#include "guest/Encoding.h"

#include <cassert>

using namespace mdabt;
using namespace mdabt::guest;

InterpObserver::~InterpObserver() = default;

uint32_t Interpreter::effectiveAddress(const GuestCPU &Cpu,
                                       const GuestInst &Inst) const {
  uint32_t Addr = Cpu.Gpr[Inst.Reg2] + static_cast<uint32_t>(Inst.Disp);
  if (Inst.HasIndex)
    Addr += Cpu.Gpr[Inst.IndexReg] << Inst.Scale;
  return Addr;
}

uint64_t Interpreter::load(uint32_t InstPc, uint32_t Addr, unsigned Size) {
  if (Observer)
    Observer->onMemAccess(InstPc, Addr, Size, /*IsStore=*/false);
  return Mem.load(Addr, Size);
}

void Interpreter::store(uint32_t InstPc, uint32_t Addr, unsigned Size,
                        uint64_t Value) {
  if (Observer)
    Observer->onMemAccess(InstPc, Addr, Size, /*IsStore=*/true);
  Mem.store(Addr, Size, Value);
}

bool Interpreter::step(GuestCPU &Cpu) {
  if (Cpu.Halted)
    return false;

  GuestInst I;
  [[maybe_unused]] bool Ok = decode(Mem.data(), Mem.size(), Cpu.Pc, I);
  assert(Ok && "undecodable guest instruction");

  uint32_t Pc = Cpu.Pc;
  uint32_t Next = Pc + I.Length;
  uint32_t *G = Cpu.Gpr;

  switch (I.Op) {
  case Opcode::Nop:
    break;
  case Opcode::Halt:
    Cpu.Halted = true;
    Cpu.Pc = Next;
    return false;
  case Opcode::Chk:
    Cpu.fold(G[I.Reg1]);
    break;
  case Opcode::QChk:
    Cpu.fold(Cpu.Qreg[I.Reg1]);
    break;

  case Opcode::Ldb:
  case Opcode::Ldw:
  case Opcode::Ldl:
    G[I.Reg1] = static_cast<uint32_t>(
        load(Pc, effectiveAddress(Cpu, I), accessSize(I.Op)));
    break;
  case Opcode::Ldq:
    Cpu.Qreg[I.Reg1] = load(Pc, effectiveAddress(Cpu, I), 8);
    break;
  case Opcode::Stb:
  case Opcode::Stw:
  case Opcode::Stl:
    store(Pc, effectiveAddress(Cpu, I), accessSize(I.Op), G[I.Reg1]);
    break;
  case Opcode::Stq:
    store(Pc, effectiveAddress(Cpu, I), 8, Cpu.Qreg[I.Reg1]);
    break;
  case Opcode::Lea:
    G[I.Reg1] = effectiveAddress(Cpu, I);
    break;

  case Opcode::MovRR:
    G[I.Reg1] = G[I.Reg2];
    break;
  case Opcode::Add:
    G[I.Reg1] += G[I.Reg2];
    break;
  case Opcode::Sub:
    G[I.Reg1] -= G[I.Reg2];
    break;
  case Opcode::And:
    G[I.Reg1] &= G[I.Reg2];
    break;
  case Opcode::Or:
    G[I.Reg1] |= G[I.Reg2];
    break;
  case Opcode::Xor:
    G[I.Reg1] ^= G[I.Reg2];
    break;
  case Opcode::Shl:
    G[I.Reg1] <<= G[I.Reg2] & 31;
    break;
  case Opcode::Shr:
    G[I.Reg1] >>= G[I.Reg2] & 31;
    break;
  case Opcode::Sar:
    G[I.Reg1] = static_cast<uint32_t>(static_cast<int32_t>(G[I.Reg1]) >>
                                      (G[I.Reg2] & 31));
    break;
  case Opcode::Mul:
    G[I.Reg1] *= G[I.Reg2];
    break;

  case Opcode::MovRI:
    G[I.Reg1] = static_cast<uint32_t>(I.Imm);
    break;
  case Opcode::AddI:
    G[I.Reg1] += static_cast<uint32_t>(I.Imm);
    break;
  case Opcode::SubI:
    G[I.Reg1] -= static_cast<uint32_t>(I.Imm);
    break;
  case Opcode::AndI:
    G[I.Reg1] &= static_cast<uint32_t>(I.Imm);
    break;
  case Opcode::OrI:
    G[I.Reg1] |= static_cast<uint32_t>(I.Imm);
    break;
  case Opcode::XorI:
    G[I.Reg1] ^= static_cast<uint32_t>(I.Imm);
    break;
  case Opcode::ShlI:
    G[I.Reg1] <<= static_cast<uint32_t>(I.Imm) & 31;
    break;
  case Opcode::ShrI:
    G[I.Reg1] >>= static_cast<uint32_t>(I.Imm) & 31;
    break;
  case Opcode::SarI:
    G[I.Reg1] = static_cast<uint32_t>(static_cast<int32_t>(G[I.Reg1]) >>
                                      (static_cast<uint32_t>(I.Imm) & 31));
    break;
  case Opcode::MulI:
    G[I.Reg1] *= static_cast<uint32_t>(I.Imm);
    break;

  case Opcode::Cmp:
  case Opcode::CmpI: {
    uint32_t A = G[I.Reg1];
    uint32_t B = I.Op == Opcode::Cmp ? G[I.Reg2]
                                     : static_cast<uint32_t>(I.Imm);
    Cpu.Flag.Eq = A == B;
    Cpu.Flag.Lt = static_cast<int32_t>(A) < static_cast<int32_t>(B);
    Cpu.Flag.Ltu = A < B;
    break;
  }

  case Opcode::QMovRR:
    Cpu.Qreg[I.Reg1] = Cpu.Qreg[I.Reg2];
    break;
  case Opcode::QMovI:
    Cpu.Qreg[I.Reg1] = static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
    break;
  case Opcode::QAdd:
    Cpu.Qreg[I.Reg1] += Cpu.Qreg[I.Reg2];
    break;
  case Opcode::QAddI:
    Cpu.Qreg[I.Reg1] += static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
    break;
  case Opcode::QXor:
    Cpu.Qreg[I.Reg1] ^= Cpu.Qreg[I.Reg2];
    break;
  case Opcode::GToQ:
    Cpu.Qreg[I.Reg1] = G[I.Reg2];
    break;
  case Opcode::QToG:
    G[I.Reg1] = static_cast<uint32_t>(Cpu.Qreg[I.Reg2]);
    break;

  case Opcode::Jmp:
    Cpu.Pc = I.branchTarget(Pc);
    return true;
  case Opcode::Jcc:
    Cpu.Pc = Cpu.evalCond(I.CC) ? I.branchTarget(Pc) : Next;
    return true;
  case Opcode::Call:
    G[RegSP] -= 4;
    store(Pc, G[RegSP], 4, Next);
    Cpu.Pc = I.branchTarget(Pc);
    return true;
  case Opcode::Ret: {
    uint32_t Target = static_cast<uint32_t>(load(Pc, G[RegSP], 4));
    G[RegSP] += 4;
    Cpu.Pc = Target;
    return true;
  }
  case Opcode::JmpR:
    Cpu.Pc = G[I.Reg1];
    return true;
  }

  Cpu.Pc = Next;
  return true;
}

uint64_t Interpreter::stepBlock(GuestCPU &Cpu) {
  uint64_t Count = 0;
  while (!Cpu.Halted) {
    GuestInst I;
    [[maybe_unused]] bool Ok = decode(Mem.data(), Mem.size(), Cpu.Pc, I);
    assert(Ok && "undecodable guest instruction");
    bool Terminator = isBlockTerminator(I.Op);
    step(Cpu);
    ++Count;
    if (Terminator)
      break;
  }
  return Count;
}

uint64_t Interpreter::run(GuestCPU &Cpu, uint64_t MaxInsts) {
  uint64_t Count = 0;
  while (Count < MaxInsts && !Cpu.Halted) {
    step(Cpu);
    ++Count;
  }
  return Count;
}
