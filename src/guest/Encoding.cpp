//===- guest/Encoding.cpp -------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "guest/Encoding.h"

#include "support/Format.h"

#include <cassert>

using namespace mdabt;
using namespace mdabt::guest;

namespace {

enum class Form {
  Bare,    // [op]
  OneReg,  // [op][reg]
  TwoReg,  // [op][r1<<4|r2]
  RegImm,  // [op][reg][imm32]
  Memory,  // [op][data<<4|base][mode](disp)
  Rel,     // [op][rel32]
  CondRel, // [op][cond][rel32]
  Invalid,
};

Form formOf(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::Ret:
    return Form::Bare;
  case Opcode::Chk:
  case Opcode::QChk:
  case Opcode::JmpR:
    return Form::OneReg;
  case Opcode::Ldb:
  case Opcode::Ldw:
  case Opcode::Ldl:
  case Opcode::Ldq:
  case Opcode::Stb:
  case Opcode::Stw:
  case Opcode::Stl:
  case Opcode::Stq:
  case Opcode::Lea:
    return Form::Memory;
  case Opcode::MovRR:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Sar:
  case Opcode::Mul:
  case Opcode::Cmp:
  case Opcode::QMovRR:
  case Opcode::QAdd:
  case Opcode::QXor:
  case Opcode::GToQ:
  case Opcode::QToG:
    return Form::TwoReg;
  case Opcode::MovRI:
  case Opcode::AddI:
  case Opcode::SubI:
  case Opcode::AndI:
  case Opcode::OrI:
  case Opcode::XorI:
  case Opcode::ShlI:
  case Opcode::ShrI:
  case Opcode::SarI:
  case Opcode::MulI:
  case Opcode::CmpI:
  case Opcode::QMovI:
  case Opcode::QAddI:
    return Form::RegImm;
  case Opcode::Jmp:
  case Opcode::Call:
    return Form::Rel;
  case Opcode::Jcc:
    return Form::CondRel;
  }
  return Form::Invalid;
}

void put32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

bool fitsInt8(int32_t V) { return V >= -128 && V <= 127; }

} // namespace

unsigned mdabt::guest::encode(const GuestInst &Inst,
                              std::vector<uint8_t> &Out) {
  size_t Start = Out.size();
  Out.push_back(static_cast<uint8_t>(Inst.Op));
  switch (formOf(Inst.Op)) {
  case Form::Bare:
    break;
  case Form::OneReg:
    assert(Inst.Reg1 < 8 && "register out of range");
    Out.push_back(Inst.Reg1);
    break;
  case Form::TwoReg:
    assert(Inst.Reg1 < 8 && Inst.Reg2 < 8 && "register out of range");
    Out.push_back(static_cast<uint8_t>(Inst.Reg1 << 4 | Inst.Reg2));
    break;
  case Form::RegImm:
    assert(Inst.Reg1 < 8 && "register out of range");
    Out.push_back(Inst.Reg1);
    put32(Out, static_cast<uint32_t>(Inst.Imm));
    break;
  case Form::Memory: {
    assert(Inst.Reg1 < 8 && Inst.Reg2 < 8 && "register out of range");
    assert(Inst.Scale < 4 && "scale out of range");
    assert((!Inst.HasIndex || Inst.IndexReg < 8) && "index out of range");
    Out.push_back(static_cast<uint8_t>(Inst.Reg1 << 4 | Inst.Reg2));
    uint8_t DispKind = Inst.Disp == 0 ? 0 : (fitsInt8(Inst.Disp) ? 1 : 2);
    uint8_t Mode = static_cast<uint8_t>(
        (Inst.HasIndex ? 0x80 : 0) | (Inst.IndexReg & 7) << 4 |
        (Inst.Scale & 3) << 2 | DispKind);
    Out.push_back(Mode);
    if (DispKind == 1)
      Out.push_back(static_cast<uint8_t>(Inst.Disp));
    else if (DispKind == 2)
      put32(Out, static_cast<uint32_t>(Inst.Disp));
    break;
  }
  case Form::Rel:
    put32(Out, static_cast<uint32_t>(Inst.Imm));
    break;
  case Form::CondRel:
    Out.push_back(static_cast<uint8_t>(Inst.CC));
    put32(Out, static_cast<uint32_t>(Inst.Imm));
    break;
  case Form::Invalid:
    assert(false && "encoding an invalid opcode");
    break;
  }
  return static_cast<unsigned>(Out.size() - Start);
}

bool mdabt::guest::decode(const uint8_t *Bytes, size_t Size, size_t Offset,
                          GuestInst &Inst) {
  if (Offset >= Size)
    return false;
  Inst = GuestInst();
  Inst.Op = static_cast<Opcode>(Bytes[Offset]);
  Form F = formOf(Inst.Op);
  if (F == Form::Invalid)
    return false;

  size_t P = Offset + 1;
  auto have = [&](size_t N) { return P + N <= Size; };
  auto get32 = [&]() {
    uint32_t V = static_cast<uint32_t>(Bytes[P]) |
                 static_cast<uint32_t>(Bytes[P + 1]) << 8 |
                 static_cast<uint32_t>(Bytes[P + 2]) << 16 |
                 static_cast<uint32_t>(Bytes[P + 3]) << 24;
    P += 4;
    return V;
  };

  switch (F) {
  case Form::Bare:
    break;
  case Form::OneReg:
    if (!have(1))
      return false;
    Inst.Reg1 = Bytes[P++] & 7;
    break;
  case Form::TwoReg:
    if (!have(1))
      return false;
    Inst.Reg1 = Bytes[P] >> 4 & 7;
    Inst.Reg2 = Bytes[P] & 7;
    ++P;
    break;
  case Form::RegImm:
    if (!have(5))
      return false;
    Inst.Reg1 = Bytes[P++] & 7;
    Inst.Imm = static_cast<int32_t>(get32());
    break;
  case Form::Memory: {
    if (!have(2))
      return false;
    Inst.Reg1 = Bytes[P] >> 4 & 7;
    Inst.Reg2 = Bytes[P] & 7;
    ++P;
    uint8_t Mode = Bytes[P++];
    Inst.HasIndex = (Mode & 0x80) != 0;
    Inst.IndexReg = Mode >> 4 & 7;
    Inst.Scale = Mode >> 2 & 3;
    uint8_t DispKind = Mode & 3;
    if (DispKind == 1) {
      if (!have(1))
        return false;
      Inst.Disp = static_cast<int8_t>(Bytes[P++]);
    } else if (DispKind == 2) {
      if (!have(4))
        return false;
      Inst.Disp = static_cast<int32_t>(get32());
    } else if (DispKind == 3) {
      return false;
    }
    break;
  }
  case Form::Rel:
    if (!have(4))
      return false;
    Inst.Imm = static_cast<int32_t>(get32());
    break;
  case Form::CondRel: {
    if (!have(5))
      return false;
    uint8_t C = Bytes[P++];
    if (C > static_cast<uint8_t>(Cond::Ae))
      return false;
    Inst.CC = static_cast<Cond>(C);
    Inst.Imm = static_cast<int32_t>(get32());
    break;
  }
  case Form::Invalid:
    return false;
  }
  Inst.Length = static_cast<uint8_t>(P - Offset);
  return true;
}

const char *mdabt::guest::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::Halt:
    return "halt";
  case Opcode::Chk:
    return "chk";
  case Opcode::QChk:
    return "qchk";
  case Opcode::Ldb:
    return "ldb";
  case Opcode::Ldw:
    return "ldw";
  case Opcode::Ldl:
    return "ldl";
  case Opcode::Ldq:
    return "ldq";
  case Opcode::Stb:
    return "stb";
  case Opcode::Stw:
    return "stw";
  case Opcode::Stl:
    return "stl";
  case Opcode::Stq:
    return "stq";
  case Opcode::Lea:
    return "lea";
  case Opcode::MovRR:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Sar:
    return "sar";
  case Opcode::Mul:
    return "mul";
  case Opcode::MovRI:
    return "movi";
  case Opcode::AddI:
    return "addi";
  case Opcode::SubI:
    return "subi";
  case Opcode::AndI:
    return "andi";
  case Opcode::OrI:
    return "ori";
  case Opcode::XorI:
    return "xori";
  case Opcode::ShlI:
    return "shli";
  case Opcode::ShrI:
    return "shri";
  case Opcode::SarI:
    return "sari";
  case Opcode::MulI:
    return "muli";
  case Opcode::Cmp:
    return "cmp";
  case Opcode::CmpI:
    return "cmpi";
  case Opcode::QMovRR:
    return "qmov";
  case Opcode::QMovI:
    return "qmovi";
  case Opcode::QAdd:
    return "qadd";
  case Opcode::QAddI:
    return "qaddi";
  case Opcode::QXor:
    return "qxor";
  case Opcode::GToQ:
    return "gtoq";
  case Opcode::QToG:
    return "qtog";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Jcc:
    return "jcc";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::JmpR:
    return "jmpr";
  }
  return "<bad>";
}

const char *mdabt::guest::condName(Cond C) {
  switch (C) {
  case Cond::Eq:
    return "eq";
  case Cond::Ne:
    return "ne";
  case Cond::Lt:
    return "lt";
  case Cond::Ge:
    return "ge";
  case Cond::Le:
    return "le";
  case Cond::Gt:
    return "gt";
  case Cond::B:
    return "b";
  case Cond::Ae:
    return "ae";
  }
  return "<bad>";
}

const char *mdabt::guest::gprName(unsigned Reg) {
  static const char *Names[NumGPR] = {"eax", "ecx", "edx", "ebx",
                                      "esp", "ebp", "esi", "edi"};
  return Reg < NumGPR ? Names[Reg] : "<bad>";
}

std::string mdabt::guest::disassemble(const GuestInst &Inst, uint32_t Pc) {
  const char *Name = opcodeName(Inst.Op);
  switch (formOf(Inst.Op)) {
  case Form::Bare:
    return Name;
  case Form::OneReg:
    if (Inst.Op == Opcode::QChk)
      return format("%s q%u", Name, Inst.Reg1);
    return format("%s %s", Name, gprName(Inst.Reg1));
  case Form::TwoReg: {
    bool QDst = Inst.Op == Opcode::QMovRR || Inst.Op == Opcode::QAdd ||
                Inst.Op == Opcode::QXor || Inst.Op == Opcode::GToQ;
    bool QSrc = Inst.Op == Opcode::QMovRR || Inst.Op == Opcode::QAdd ||
                Inst.Op == Opcode::QXor || Inst.Op == Opcode::QToG;
    std::string Dst =
        QDst ? format("q%u", Inst.Reg1) : std::string(gprName(Inst.Reg1));
    std::string Src =
        QSrc ? format("q%u", Inst.Reg2) : std::string(gprName(Inst.Reg2));
    return format("%s %s, %s", Name, Dst.c_str(), Src.c_str());
  }
  case Form::RegImm: {
    bool Q = Inst.Op == Opcode::QMovI || Inst.Op == Opcode::QAddI;
    std::string Dst =
        Q ? format("q%u", Inst.Reg1) : std::string(gprName(Inst.Reg1));
    return format("%s %s, %d", Name, Dst.c_str(), Inst.Imm);
  }
  case Form::Memory: {
    std::string Addr = format("[%s", gprName(Inst.Reg2));
    if (Inst.HasIndex)
      Addr += format(" + %s*%u", gprName(Inst.IndexReg), 1u << Inst.Scale);
    if (Inst.Disp != 0)
      Addr += format(" %c %d", Inst.Disp < 0 ? '-' : '+',
                     Inst.Disp < 0 ? -Inst.Disp : Inst.Disp);
    Addr += "]";
    bool Q = Inst.Op == Opcode::Ldq || Inst.Op == Opcode::Stq;
    std::string Data =
        Q ? format("q%u", Inst.Reg1) : std::string(gprName(Inst.Reg1));
    if (isStore(Inst.Op))
      return format("%s %s, %s", Name, Addr.c_str(), Data.c_str());
    return format("%s %s, %s", Name, Data.c_str(), Addr.c_str());
  }
  case Form::Rel:
    return format("%s 0x%x", Name, Inst.branchTarget(Pc));
  case Form::CondRel:
    return format("j%s 0x%x", condName(Inst.CC), Inst.branchTarget(Pc));
  case Form::Invalid:
    break;
  }
  return "<bad>";
}
