//===- guest/Interpreter.h - GX86 reference interpreter --------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference interpreter for GX86.  It serves three roles:
///
///  1. the semantic oracle for differential testing (every translation
///     policy must reproduce its final state bit-for-bit);
///  2. the first execution phase of the two-phase DBT (paper Fig. 4/9):
///     cold blocks are interpreted while heat and MDA profiles are
///     collected through the observer hook;
///  3. the MDA census used to regenerate the paper's Table I.
///
/// The interpreter itself never traps on misaligned accesses — like any
/// software interpreter it assembles them from byte operations — which is
/// exactly why the profiling phase of a DBT can observe MDAs cheaply.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_GUEST_INTERPRETER_H
#define MDABT_GUEST_INTERPRETER_H

#include "guest/GuestCPU.h"
#include "guest/GuestInst.h"
#include "guest/GuestMemory.h"

#include <cstdint>

namespace mdabt {
namespace guest {

/// Observation hook for profiling / census clients.
class InterpObserver {
public:
  virtual ~InterpObserver();

  /// Called for every data memory access performed by the interpreter.
  /// \p InstPc is the PC of the accessing instruction (Call/Ret stack
  /// traffic reports the Call/Ret PC).
  virtual void onMemAccess(uint32_t InstPc, uint32_t Addr, unsigned Size,
                           bool IsStore) {
    (void)InstPc;
    (void)Addr;
    (void)Size;
    (void)IsStore;
  }
};

/// Executes GX86 code from a GuestMemory.
class Interpreter {
public:
  explicit Interpreter(GuestMemory &Mem) : Mem(Mem) {}

  /// Install (or clear, with nullptr) the observation hook.
  void setObserver(InterpObserver *Obs) { Observer = Obs; }

  /// Execute exactly one instruction.  Returns false once \p Cpu is
  /// halted.  Asserts on undecodable instructions.
  bool step(GuestCPU &Cpu);

  /// Execute instructions until a basic-block terminator (branch, call,
  /// ret, halt) has completed, i.e. interpret one dynamic basic block.
  /// Returns the number of instructions executed.
  uint64_t stepBlock(GuestCPU &Cpu);

  /// Run until halt or until \p MaxInsts instructions have executed.
  /// Returns the number of instructions executed.
  uint64_t run(GuestCPU &Cpu, uint64_t MaxInsts = ~0ULL);

private:
  uint32_t effectiveAddress(const GuestCPU &Cpu, const GuestInst &Inst) const;
  uint64_t load(uint32_t InstPc, uint32_t Addr, unsigned Size);
  void store(uint32_t InstPc, uint32_t Addr, unsigned Size, uint64_t Value);

  GuestMemory &Mem;
  InterpObserver *Observer = nullptr;
};

} // namespace guest
} // namespace mdabt

#endif // MDABT_GUEST_INTERPRETER_H
