//===- guest/GuestCPU.h - Guest architectural state ------------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GX86 architectural state: eight 32-bit GPRs, eight 64-bit Q registers,
/// PC, the compare flags, and the run checksum accumulated by Chk/QChk
/// (the observable output used for differential testing between the
/// interpreter and every translation policy).
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_GUEST_GUESTCPU_H
#define MDABT_GUEST_GUESTCPU_H

#include "guest/GuestISA.h"
#include "guest/GuestImage.h"

#include <cstdint>

namespace mdabt {
namespace guest {

/// Compare flags produced by Cmp/CmpI.
struct Flags {
  bool Eq = false;  ///< operands equal
  bool Lt = false;  ///< signed less-than
  bool Ltu = false; ///< unsigned less-than
};

/// Full guest architectural state.
struct GuestCPU {
  uint32_t Gpr[NumGPR] = {};
  uint64_t Qreg[NumQReg] = {};
  uint32_t Pc = 0;
  Flags Flag;
  /// Checksum accumulator: Checksum = Checksum * 31 + value per Chk/QChk.
  uint64_t Checksum = 0;
  bool Halted = false;

  /// Reset to the image's entry state.
  void reset(const GuestImage &Image) {
    *this = GuestCPU();
    Pc = Image.Entry;
    Gpr[RegSP] = Image.StackTop;
  }

  /// Fold \p Value into the checksum (the Chk/QChk semantics).
  void fold(uint64_t Value) { Checksum = Checksum * 31 + Value; }

  /// Evaluate a condition code against the current flags.
  bool evalCond(Cond C) const {
    switch (C) {
    case Cond::Eq:
      return Flag.Eq;
    case Cond::Ne:
      return !Flag.Eq;
    case Cond::Lt:
      return Flag.Lt;
    case Cond::Ge:
      return !Flag.Lt;
    case Cond::Le:
      return Flag.Lt || Flag.Eq;
    case Cond::Gt:
      return !Flag.Lt && !Flag.Eq;
    case Cond::B:
      return Flag.Ltu;
    case Cond::Ae:
      return !Flag.Ltu;
    }
    return false;
  }
};

} // namespace guest
} // namespace mdabt

#endif // MDABT_GUEST_GUESTCPU_H
