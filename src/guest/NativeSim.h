//===- guest/NativeSim.h - Guest-native execution model --------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cost model for running GX86 programs on *native guest hardware*
/// (an X86-class machine that services misaligned accesses in hardware).
/// Used only for Figure 1 of the paper: the speedup (or slowdown) of
/// binaries compiled with alignment-enforcing flags, where the cost of a
/// hardware-handled MDA (split access) competes against the larger data
/// working set of padded layouts.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_GUEST_NATIVESIM_H
#define MDABT_GUEST_NATIVESIM_H

#include "guest/GuestImage.h"

#include <cstdint>

namespace mdabt {
namespace guest {

/// Cycle cost parameters of the modeled native guest machine.
struct NativeCostModel {
  /// Base cycles per instruction.
  uint32_t CyclesPerInst = 1;
  /// Extra cycles when an access crosses an 8-byte boundary (the
  /// hardware issues a split access; nearly free within a cache line on
  /// X86-class cores).
  uint32_t SplitPenalty = 1;
  /// Extra cycles when an access crosses a cache-line boundary.
  uint32_t LineSplitPenalty = 10;
  /// Cache-line size used for the line-split test.
  uint32_t LineBytes = 64;
};

/// Result of a native-mode run.
struct NativeRunResult {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t MemoryRefs = 0;
  uint64_t Mdas = 0;
  uint64_t Checksum = 0;
};

/// Run \p Image to completion under the native guest cost model.
NativeRunResult runNative(const GuestImage &Image,
                          const NativeCostModel &Cost = NativeCostModel(),
                          uint64_t MaxInsts = ~0ULL);

} // namespace guest
} // namespace mdabt

#endif // MDABT_GUEST_NATIVESIM_H
