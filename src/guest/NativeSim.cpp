//===- guest/NativeSim.cpp ------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "guest/NativeSim.h"

#include "guest/GuestCPU.h"
#include "guest/GuestMemory.h"
#include "guest/Interpreter.h"
#include "guest/MdaCensus.h"
#include "support/CacheModel.h"

using namespace mdabt;
using namespace mdabt::guest;

namespace {

/// Observer charging the native machine's data-side costs.
class NativeObserver : public InterpObserver {
public:
  NativeObserver(const NativeCostModel &Cost, MemoryHierarchy &Mem)
      : Cost(Cost), Mem(Mem) {}

  void onMemAccess(uint32_t InstPc, uint32_t Addr, unsigned Size,
                   bool IsStore) override {
    (void)InstPc;
    (void)IsStore;
    ++Refs;
    Cycles += Mem.data(Addr);
    if (Size > 1 && isMisaligned(Addr, Size)) {
      ++Mdas;
      uint32_t First = Addr / Cost.LineBytes;
      uint32_t Last = (Addr + Size - 1) / Cost.LineBytes;
      if (First != Last) {
        Cycles += Cost.LineSplitPenalty;
        Cycles += Mem.data(Addr + Size - 1); // second line fill
      } else if ((Addr >> 3) != ((Addr + Size - 1) >> 3)) {
        Cycles += Cost.SplitPenalty;
      }
    }
  }

  const NativeCostModel &Cost;
  MemoryHierarchy &Mem;
  uint64_t Cycles = 0;
  uint64_t Refs = 0;
  uint64_t Mdas = 0;
};

} // namespace

NativeRunResult guest::runNative(const GuestImage &Image,
                                 const NativeCostModel &Cost,
                                 uint64_t MaxInsts) {
  GuestMemory Mem;
  Mem.loadImage(Image);
  GuestCPU Cpu;
  Cpu.reset(Image);

  MemoryHierarchy Hier;
  NativeObserver Obs(Cost, Hier);
  Interpreter Interp(Mem);
  Interp.setObserver(&Obs);

  NativeRunResult R;
  while (!Cpu.Halted && R.Instructions < MaxInsts) {
    uint32_t Pc = Cpu.Pc;
    Obs.Cycles += Hier.fetch(Pc);
    Interp.step(Cpu);
    ++R.Instructions;
  }
  R.Cycles = R.Instructions * Cost.CyclesPerInst + Obs.Cycles;
  R.MemoryRefs = Obs.Refs;
  R.Mdas = Obs.Mdas;
  R.Checksum = Cpu.Checksum;
  return R;
}
