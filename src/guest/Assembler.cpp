//===- guest/Assembler.cpp ------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "guest/Assembler.h"

#include <cassert>
#include <cstring>

using namespace mdabt;
using namespace mdabt::guest;

ProgramBuilder::Label ProgramBuilder::newLabel() {
  Labels.push_back(Unbound);
  return static_cast<Label>(Labels.size() - 1);
}

void ProgramBuilder::bind(Label L) {
  assert(L < Labels.size() && "unknown label");
  assert(Labels[L] == Unbound && "label bound twice");
  Labels[L] = codeSize();
}

ProgramBuilder::Label ProgramBuilder::here() {
  Label L = newLabel();
  bind(L);
  return L;
}

void ProgramBuilder::emit(const GuestInst &Inst) {
  assert(!Built && "builder already finalized");
  LastWasCmp = Inst.Op == Opcode::Cmp || Inst.Op == Opcode::CmpI;
  encode(Inst, Code);
}

void ProgramBuilder::nop() {
  GuestInst I;
  I.Op = Opcode::Nop;
  emit(I);
}

void ProgramBuilder::halt() {
  GuestInst I;
  I.Op = Opcode::Halt;
  emit(I);
}

void ProgramBuilder::chk(uint8_t Gpr) {
  GuestInst I;
  I.Op = Opcode::Chk;
  I.Reg1 = Gpr;
  emit(I);
}

void ProgramBuilder::qchk(uint8_t Q) {
  GuestInst I;
  I.Op = Opcode::QChk;
  I.Reg1 = Q;
  emit(I);
}

void ProgramBuilder::load(Opcode Op, uint8_t DataReg, const Mem &M) {
  assert((isLoad(Op) || Op == Opcode::Lea) && "not a load");
  GuestInst I;
  I.Op = Op;
  I.Reg1 = DataReg;
  I.Reg2 = M.Base;
  I.HasIndex = M.HasIndex;
  I.IndexReg = M.Index;
  I.Scale = M.Scale;
  I.Disp = M.Disp;
  emit(I);
}

void ProgramBuilder::store(Opcode Op, const Mem &M, uint8_t DataReg) {
  assert(isStore(Op) && "not a store");
  GuestInst I;
  I.Op = Op;
  I.Reg1 = DataReg;
  I.Reg2 = M.Base;
  I.HasIndex = M.HasIndex;
  I.IndexReg = M.Index;
  I.Scale = M.Scale;
  I.Disp = M.Disp;
  emit(I);
}

void ProgramBuilder::alu(Opcode Op, uint8_t Dst, uint8_t Src) {
  GuestInst I;
  I.Op = Op;
  I.Reg1 = Dst;
  I.Reg2 = Src;
  emit(I);
}

void ProgramBuilder::aluImm(Opcode Op, uint8_t Dst, int32_t Imm) {
  GuestInst I;
  I.Op = Op;
  I.Reg1 = Dst;
  I.Imm = Imm;
  emit(I);
}

void ProgramBuilder::emitBranch(Opcode Op, Cond C, Label L) {
  assert(L < Labels.size() && "unknown label");
  GuestInst I;
  I.Op = Op;
  I.CC = C;
  I.Imm = 0;
  uint32_t Start = codeSize();
  emit(I);
  uint32_t End = codeSize();
  // rel32 is the last four bytes of the encoding.
  Fixups.push_back({End - 4, End, L});
  (void)Start;
}

void ProgramBuilder::jmp(Label L) { emitBranch(Opcode::Jmp, Cond::Eq, L); }

void ProgramBuilder::jcc(Cond C, Label L) {
  assert(LastWasCmp && "Jcc must immediately follow Cmp/CmpI");
  emitBranch(Opcode::Jcc, C, L);
}

void ProgramBuilder::call(Label L) { emitBranch(Opcode::Call, Cond::Eq, L); }

void ProgramBuilder::ret() {
  GuestInst I;
  I.Op = Opcode::Ret;
  emit(I);
}

void ProgramBuilder::jmpr(uint8_t R) {
  GuestInst I;
  I.Op = Opcode::JmpR;
  I.Reg1 = R;
  emit(I);
}

uint32_t ProgramBuilder::dataReserve(uint32_t Size, uint32_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "bad alignment");
  uint32_t Offset = dataSize();
  uint32_t Aligned = (Offset + Align - 1) & ~(Align - 1);
  Data.resize(Aligned + Size, 0);
  return layout::DataBase + Aligned;
}

uint32_t ProgramBuilder::dataU32(uint32_t Value) {
  uint32_t Addr = dataReserve(4, 4);
  std::memcpy(Data.data() + (Addr - layout::DataBase), &Value, 4);
  return Addr;
}

uint32_t ProgramBuilder::dataU64(uint64_t Value) {
  uint32_t Addr = dataReserve(8, 8);
  std::memcpy(Data.data() + (Addr - layout::DataBase), &Value, 8);
  return Addr;
}

void ProgramBuilder::patchDataU32(uint32_t Address, uint32_t Value) {
  assert(Address >= layout::DataBase &&
         Address + 4 <= layout::DataBase + dataSize() &&
         "data patch out of range");
  std::memcpy(Data.data() + (Address - layout::DataBase), &Value, 4);
}

void ProgramBuilder::patchDataU64(uint32_t Address, uint64_t Value) {
  assert(Address >= layout::DataBase &&
         Address + 8 <= layout::DataBase + dataSize() &&
         "data patch out of range");
  std::memcpy(Data.data() + (Address - layout::DataBase), &Value, 8);
}

GuestImage ProgramBuilder::build() {
  assert(!Built && "builder already finalized");
  Built = true;
  for (const Fixup &F : Fixups) {
    uint32_t Target = Labels[F.Target];
    assert(Target != Unbound && "branch to unbound label");
    int32_t Rel = static_cast<int32_t>(Target) -
                  static_cast<int32_t>(F.NextPc);
    std::memcpy(Code.data() + F.ImmOffset, &Rel, 4);
  }
  GuestImage Image;
  Image.Name = ImageName;
  Image.Code = std::move(Code);
  Image.Data = std::move(Data);
  Image.Entry = Image.CodeBase;
  return Image;
}
