//===- guest/GuestInst.h - Decoded GX86 instruction ------------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded form of a GX86 instruction, shared by the interpreter,
/// the translator, and the disassembler.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_GUEST_GUESTINST_H
#define MDABT_GUEST_GUESTINST_H

#include "guest/GuestISA.h"

#include <cstdint>

namespace mdabt {
namespace guest {

/// A decoded GX86 instruction.
///
/// Field usage by instruction family:
///  - memory ops / Lea: Reg1 = data (GPR or Q), Reg2 = base GPR, plus
///    HasIndex/IndexReg/Scale/Disp (the x86-style SIB addressing mode);
///  - reg-reg ALU: Reg1 = destination, Reg2 = source;
///  - reg-imm ALU: Reg1 = destination, Imm = 32-bit immediate;
///  - Jmp/Jcc/Call: Imm = branch displacement relative to the *next*
///    instruction (like x86 rel32);
///  - Jcc additionally uses CC;
///  - Chk/QChk/JmpR: Reg1.
struct GuestInst {
  Opcode Op = Opcode::Nop;
  Cond CC = Cond::Eq;
  uint8_t Reg1 = 0;
  uint8_t Reg2 = 0;
  bool HasIndex = false;
  uint8_t IndexReg = 0;
  uint8_t Scale = 0; ///< log2 of the index scale (0..3).
  int32_t Disp = 0;
  int32_t Imm = 0;
  uint8_t Length = 0; ///< Encoded length in bytes.

  /// Target of a direct branch when this instruction sits at \p Pc.
  uint32_t branchTarget(uint32_t Pc) const {
    return Pc + Length + static_cast<uint32_t>(Imm);
  }

  /// PC of the instruction following this one at \p Pc.
  uint32_t nextPc(uint32_t Pc) const { return Pc + Length; }
};

} // namespace guest
} // namespace mdabt

#endif // MDABT_GUEST_GUESTINST_H
