//===- guest/MdaCensus.h - Per-instruction MDA statistics ------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MDA census: per-static-instruction misalignment statistics
/// collected over an interpreted run.  This regenerates the paper's
/// Table I (NMI = number of instructions referencing misaligned data,
/// total MDA count, MDA/total-reference ratio) and the per-instruction
/// misaligned-ratio classification of Figure 15.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_GUEST_MDACENSUS_H
#define MDABT_GUEST_MDACENSUS_H

#include "guest/Interpreter.h"

#include <cstdint>
#include <unordered_map>

namespace mdabt {
namespace guest {

/// True if an access of \p Size bytes at \p Addr is misaligned.
///
/// This is the single definition of "misaligned" for the whole system:
/// the interpreter's census hooks, the profiling policies, the
/// host machine's trap check, and the workload generators all agree by
/// calling it (sizes are powers of two; byte accesses never misalign).
inline bool isMisaligned(uint32_t Addr, unsigned Size) {
  return (Addr & (Size - 1)) != 0;
}

/// Collects the Table-I / Figure-15 statistics during interpretation.
class MdaCensus : public InterpObserver {
public:
  /// Statistics for one static memory instruction.
  struct SiteStats {
    uint64_t Refs = 0;
    uint64_t Mis = 0;
    unsigned Size = 0;
    bool IsStore = false;
  };

  void onMemAccess(uint32_t InstPc, uint32_t Addr, unsigned Size,
                   bool IsStore) override {
    ++TotalRefs;
    SiteStats &S = Sites[InstPc];
    ++S.Refs;
    S.Size = Size;
    S.IsStore = IsStore;
    if (isMisaligned(Addr, Size)) {
      ++S.Mis;
      ++TotalMis;
    }
  }

  /// NMI: number of static instructions that performed >= 1 MDA.
  uint32_t nmi() const {
    uint32_t N = 0;
    for (const auto &KV : Sites)
      if (KV.second.Mis != 0)
        ++N;
    return N;
  }

  uint64_t totalMdas() const { return TotalMis; }
  uint64_t totalRefs() const { return TotalRefs; }

  /// MDAs / total memory references (paper Table I "Ratio").
  double ratio() const {
    return TotalRefs == 0
               ? 0.0
               : static_cast<double>(TotalMis) /
                     static_cast<double>(TotalRefs);
  }

  /// Figure 15: classification of MDA instructions by their own
  /// misaligned ratio.
  struct BiasBreakdown {
    uint32_t Below50 = 0; ///< 0 < ratio < 50%
    uint32_t Equal50 = 0; ///< ratio == 50% (within tolerance)
    uint32_t Above50 = 0; ///< 50% < ratio < 100%
    uint32_t Always = 0;  ///< ratio == 100%
    uint32_t total() const {
      return Below50 + Equal50 + Above50 + Always;
    }
  };

  /// \p Tolerance is the relative slack around 50% counted as "=50%".
  BiasBreakdown biasBreakdown(double Tolerance = 0.02) const {
    BiasBreakdown B;
    for (const auto &KV : Sites) {
      const SiteStats &S = KV.second;
      if (S.Mis == 0)
        continue;
      double R = static_cast<double>(S.Mis) / static_cast<double>(S.Refs);
      if (S.Mis == S.Refs)
        ++B.Always;
      else if (R > 0.5 + Tolerance)
        ++B.Above50;
      else if (R < 0.5 - Tolerance)
        ++B.Below50;
      else
        ++B.Equal50;
    }
    return B;
  }

  const std::unordered_map<uint32_t, SiteStats> &sites() const {
    return Sites;
  }

private:
  std::unordered_map<uint32_t, SiteStats> Sites;
  uint64_t TotalRefs = 0;
  uint64_t TotalMis = 0;
};

} // namespace guest
} // namespace mdabt

#endif // MDABT_GUEST_MDACENSUS_H
