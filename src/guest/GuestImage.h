//===- guest/GuestImage.h - Guest process image ----------------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A loadable GX86 program: code and initialized-data segments plus the
/// memory layout constants shared by the interpreter, the translator and
/// the workload generator.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_GUEST_GUESTIMAGE_H
#define MDABT_GUEST_GUESTIMAGE_H

#include <cstdint>
#include <string>
#include <vector>

namespace mdabt {
namespace guest {

/// Default segment layout of a guest process.
namespace layout {
/// Base of the code segment.
inline constexpr uint32_t CodeBase = 0x00001000;
/// Base of the data segment.
inline constexpr uint32_t DataBase = 0x00100000;
/// Initial stack pointer (stack grows down).
inline constexpr uint32_t StackTop = 0x00fffff0;
/// Base of the BT-runtime scratch region (revert mailbox + per-stub
/// counters used by the adaptive exception stubs).  Guest data segments
/// must end below this.
inline constexpr uint32_t RuntimeBase = 0x00f00000;
/// Total guest address-space size backed by GuestMemory.
inline constexpr uint32_t MemorySize = 0x01000000; // 16 MiB
} // namespace layout

/// A complete guest binary.
struct GuestImage {
  std::string Name;
  uint32_t CodeBase = layout::CodeBase;
  std::vector<uint8_t> Code;
  uint32_t DataBase = layout::DataBase;
  std::vector<uint8_t> Data;
  uint32_t Entry = layout::CodeBase;
  uint32_t StackTop = layout::StackTop;

  uint32_t codeEnd() const {
    return CodeBase + static_cast<uint32_t>(Code.size());
  }
  uint32_t dataEnd() const {
    return DataBase + static_cast<uint32_t>(Data.size());
  }
};

} // namespace guest
} // namespace mdabt

#endif // MDABT_GUEST_GUESTIMAGE_H
