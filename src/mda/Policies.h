//===- mda/Policies.h - The paper's MDA handling mechanisms ----*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementations of every MDA handling mechanism the paper evaluates
/// (sections III and IV; configuration space in Table II):
///
///   DirectPolicy            QEMU-style: every non-byte memory op becomes
///                           the MDA code sequence.
///   StaticProfilePolicy     FX!32-style: a train-input profiling run
///                           marks MDA instructions; residual MDAs take a
///                           full trap on every occurrence.
///   DynamicProfilePolicy    IA-32 EL-style: phase-1 interpretation
///                           records MDAs; hot translation expands them;
///                           residual MDAs trap every time.
///   ExceptionHandlingPolicy The paper's proposal: translate everything
///                           aligned; on the first trap per instruction,
///                           patch in an MDA stub.  Optional code
///                           rearrangement re-emits the block inline.
///   DpehPolicy              Dynamic profiling + exception handling, with
///                           optional retranslation (>=N traps per block)
///                           and optional multi-version code for sites
///                           with mixed alignment behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_MDA_POLICIES_H
#define MDABT_MDA_POLICIES_H

#include "dbt/Policy.h"
#include "guest/GuestImage.h"
#include "guest/MdaCensus.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace mdabt {
namespace mda {

/// QEMU's direct method (paper section III-A): translate-at-first-use,
/// every 2/4/8-byte memory operation becomes the MDA code sequence.
class DirectPolicy : public dbt::MdaPolicy {
public:
  const char *name() const override { return "Direct Method"; }
  uint32_t hotThreshold() const override { return 0; }
  dbt::MemPlan planMemoryOp(uint32_t, const guest::GuestInst &) override {
    return dbt::MemPlan::Inline;
  }
  dbt::FaultDecision onFault(uint32_t, uint32_t, uint32_t) override {
    // Unreachable in practice: nothing is translated as a trapping op.
    return {false, false};
  }
};

/// FX!32-style static profiling (paper section III-B).
class StaticProfilePolicy : public dbt::MdaPolicy {
public:
  /// \p TrainMdaSites: guest PCs that misaligned during the train run.
  explicit StaticProfilePolicy(std::unordered_set<uint32_t> TrainMdaSites)
      : Sites(std::move(TrainMdaSites)) {}

  /// Interpret the \p TrainImage to completion and return the set of
  /// instructions that performed at least one MDA (the "profiling run
  /// with training input", Fig. 3).
  static std::unordered_set<uint32_t>
  collectProfile(const guest::GuestImage &TrainImage);

  const char *name() const override { return "Static Profiling"; }
  uint32_t hotThreshold() const override { return 0; }
  bool translationIsOffline() const override { return true; }
  dbt::MemPlan planMemoryOp(uint32_t InstPc,
                            const guest::GuestInst &) override {
    return Sites.count(InstPc) ? dbt::MemPlan::Inline
                               : dbt::MemPlan::Normal;
  }
  dbt::FaultDecision onFault(uint32_t, uint32_t, uint32_t) override {
    return {false, false}; // every residual MDA pays a full trap
  }

private:
  std::unordered_set<uint32_t> Sites;
};

/// IA-32 EL-style dynamic profiling (paper section III-C).  "We generate
/// MDA code sequence for a memory access instruction if the instruction
/// has performed MDA once during the profiling stage."
class DynamicProfilePolicy : public dbt::MdaPolicy {
public:
  explicit DynamicProfilePolicy(uint32_t Threshold) : Threshold(Threshold) {}

  const char *name() const override { return "Dynamic Profiling"; }
  uint32_t hotThreshold() const override { return Threshold; }
  void onInterpMemAccess(uint32_t InstPc, uint32_t Addr, unsigned Size,
                         bool) override {
    if (Size >= 2 && guest::isMisaligned(Addr, Size) &&
        Sites.insert(InstPc).second)
      Trace.emit(obs::TraceEventKind::PolicySiteMarked, InstPc, 0,
                 /*A=*/0, /*B=*/Sites.size());
  }
  dbt::MemPlan planMemoryOp(uint32_t InstPc,
                            const guest::GuestInst &) override {
    return Sites.count(InstPc) ? dbt::MemPlan::Inline
                               : dbt::MemPlan::Normal;
  }
  dbt::FaultDecision onFault(uint32_t, uint32_t, uint32_t) override {
    return {false, false};
  }

  /// Number of distinct MDA instructions the profiling phase caught.
  size_t detectedSites() const { return Sites.size(); }

private:
  uint32_t Threshold;
  std::unordered_set<uint32_t> Sites;
};

/// The paper's exception-handling method (section IV), optionally with
/// code rearrangement (section IV-A): every patch is followed by
/// re-emitting the block with the sequence inline to restore locality.
class ExceptionHandlingPolicy : public dbt::MdaPolicy {
public:
  explicit ExceptionHandlingPolicy(uint32_t Threshold = 50,
                                   bool Rearrange = false)
      : Threshold(Threshold), Rearrange(Rearrange) {}

  const char *name() const override {
    return Rearrange ? "Exception Handling + Rearrangement"
                     : "Exception Handling";
  }
  uint32_t hotThreshold() const override { return Threshold; }
  dbt::MemPlan planMemoryOp(uint32_t InstPc,
                            const guest::GuestInst &) override {
    // Initial translation assumes every reference is aligned; after a
    // supersede (rearrangement) the faulted sites are inlined.
    return Faulted.count(InstPc) ? dbt::MemPlan::Inline
                                 : dbt::MemPlan::Normal;
  }
  dbt::FaultDecision onFault(uint32_t InstPc, uint32_t BlockPc,
                             uint32_t) override {
    if (Faulted.insert(InstPc).second)
      Trace.emit(obs::TraceEventKind::PolicySiteMarked, InstPc, BlockPc,
                 /*A=*/1, /*B=*/Faulted.size());
    return {true, Rearrange};
  }
  void onWatchdogEscalation(uint32_t, uint32_t InstPc,
                            uint32_t) override {
    // Keep the engine-forced inline site inlined across our own
    // rearrangement retranslations too.
    if (InstPc)
      Faulted.insert(InstPc);
  }

private:
  uint32_t Threshold;
  bool Rearrange;
  std::unordered_set<uint32_t> Faulted;
};

/// Options for DpehPolicy (paper Table II, bottom row, plus the two
/// section-IV-D extensions the paper discusses but does not evaluate).
struct DpehOptions {
  /// Invalidate + retranslate a block once it has taken this many traps
  /// (paper Fig. 7 uses 4).  0 disables retranslation.
  uint32_t RetranslateThreshold = 0;
  /// Generate multi-version code for sites whose profile shows both
  /// aligned and misaligned accesses (paper section IV-D).
  bool MultiVersion = false;
  /// Multi-version at basic-block granularity: one check selects between
  /// two block-tail copies (section IV-D's overhead-reduction idea).
  bool MvBlockGranularity = false;
  /// Use instrumented, revertible exception stubs (paper Fig. 8, right:
  /// the "truly adaptive" method): after RevertThreshold consecutive
  /// aligned executions the original memory instruction is patched back.
  bool AdaptiveRevert = false;
  uint32_t RevertThreshold = 64;
};

/// Dynamic profiling combined with exception handling (section IV-B).
class DpehPolicy : public dbt::MdaPolicy {
public:
  explicit DpehPolicy(uint32_t Threshold = 50, DpehOptions Opts = {})
      : Threshold(Threshold), Opts(Opts) {}

  const char *name() const override { return "DPEH"; }
  uint32_t hotThreshold() const override { return Threshold; }

  void onInterpMemAccess(uint32_t InstPc, uint32_t Addr, unsigned Size,
                         bool) override {
    if (Size < 2)
      return;
    SiteProfile &P = Profile[InstPc];
    if (guest::isMisaligned(Addr, Size))
      ++P.Mis;
    else
      ++P.Aligned;
  }

  dbt::MemPlan planMemoryOp(uint32_t InstPc,
                            const guest::GuestInst &) override {
    auto It = Profile.find(InstPc);
    bool ProfiledMis = It != Profile.end() && It->second.Mis != 0;
    bool Known = ProfiledMis || Faulted.count(InstPc) != 0;
    if (!Known)
      return dbt::MemPlan::Normal;
    // Multi-version pays only when aligned accesses dominate (paper
    // section IV-D: most MDA instructions are biased, so blanket
    // multi-versioning just burns check cycles).
    if (Opts.MultiVersion && It != Profile.end() &&
        It->second.Aligned != 0 && It->second.Aligned >= It->second.Mis) {
      Trace.emit(obs::TraceEventKind::PolicyMultiVersion, InstPc, 0,
                 It->second.Aligned, It->second.Mis);
      return dbt::MemPlan::MultiVersion;
    }
    return dbt::MemPlan::Inline;
  }

  dbt::FaultDecision onFault(uint32_t InstPc, uint32_t BlockPc,
                             uint32_t BlockFaultCount) override {
    if (Faulted.insert(InstPc).second)
      Trace.emit(obs::TraceEventKind::PolicySiteMarked, InstPc, BlockPc,
                 /*A=*/1, /*B=*/Faulted.size());
    // Trigger exactly at the threshold: the superseding translation
    // starts with a fresh trap count (paper Fig. 7).
    bool Retranslate = Opts.RetranslateThreshold != 0 &&
                       BlockFaultCount == Opts.RetranslateThreshold;
    dbt::FaultDecision D;
    D.PatchStub = true;
    D.Supersede = Retranslate;
    D.AdaptiveStub = Opts.AdaptiveRevert;
    D.RevertThreshold = Opts.RevertThreshold;
    return D;
  }

  void onWatchdogEscalation(uint32_t, uint32_t InstPc,
                            uint32_t) override {
    if (InstPc)
      Faulted.insert(InstPc);
  }

  dbt::TranslationOpts translationOpts() const override {
    dbt::TranslationOpts TO;
    TO.BlockMultiVersion = Opts.MultiVersion && Opts.MvBlockGranularity;
    return TO;
  }

private:
  struct SiteProfile {
    uint64_t Aligned = 0;
    uint64_t Mis = 0;
  };
  uint32_t Threshold;
  DpehOptions Opts;
  std::unordered_map<uint32_t, SiteProfile> Profile;
  std::unordered_set<uint32_t> Faulted;
};

} // namespace mda
} // namespace mdabt

#endif // MDABT_MDA_POLICIES_H
