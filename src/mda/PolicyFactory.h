//===- mda/PolicyFactory.h - Named policy construction ---------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small registry that builds any of the paper's mechanisms from a
/// specification — the programmatic form of the paper's Table II.  Used
/// by the benches, the examples and the integration tests.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_MDA_POLICYFACTORY_H
#define MDABT_MDA_POLICYFACTORY_H

#include "mda/Policies.h"

#include <memory>
#include <string>
#include <vector>

namespace mdabt {
namespace mda {

/// The mechanisms of paper Table II.
enum class MechanismKind {
  Direct,
  StaticProfiling,
  DynamicProfiling,
  ExceptionHandling,
  Dpeh,
};

/// Full configuration of one mechanism instance.
struct PolicySpec {
  MechanismKind Kind = MechanismKind::ExceptionHandling;
  /// Heating threshold for two-phase mechanisms (paper section VI-A;
  /// 50 is the sweet spot).  Ignored by Direct / StaticProfiling.
  uint32_t Threshold = 50;
  /// ExceptionHandling: re-emit blocks inline after patches (Fig. 6).
  bool Rearrange = false;
  /// Dpeh: block-retranslation trap threshold, 0 = off (Fig. 7 uses 4).
  uint32_t RetranslateThreshold = 0;
  /// Dpeh: multi-version code for mixed-alignment sites (Fig. 8).
  bool MultiVersion = false;
};

/// Builds a policy.  StaticProfiling requires \p TrainImage (the paper
/// profiles with the train input set); other mechanisms ignore it.
std::unique_ptr<dbt::MdaPolicy>
makePolicy(const PolicySpec &Spec,
           const guest::GuestImage *TrainImage = nullptr);

/// A short stable identifier, e.g. "dpeh", "eh+rearrange", "dyn@50".
std::string policySpecName(const PolicySpec &Spec);

/// The paper's Table II rows: mechanism name, configuration choice and
/// description, for the table2 bench.
struct MechanismRow {
  const char *Mechanism;
  const char *Configuration;
  const char *Description;
};
std::vector<MechanismRow> mechanismTable();

} // namespace mda
} // namespace mdabt

#endif // MDABT_MDA_POLICYFACTORY_H
