//===- mda/Policies.cpp ---------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "mda/Policies.h"

#include "guest/GuestCPU.h"
#include "guest/GuestMemory.h"
#include "guest/Interpreter.h"

using namespace mdabt;
using namespace mdabt::mda;

std::unordered_set<uint32_t>
StaticProfilePolicy::collectProfile(const guest::GuestImage &TrainImage) {
  guest::GuestMemory Mem;
  Mem.loadImage(TrainImage);
  guest::GuestCPU Cpu;
  Cpu.reset(TrainImage);
  guest::MdaCensus Census;
  guest::Interpreter Interp(Mem);
  Interp.setObserver(&Census);
  Interp.run(Cpu);

  std::unordered_set<uint32_t> Sites;
  for (const auto &KV : Census.sites())
    if (KV.second.Mis != 0)
      Sites.insert(KV.first);
  return Sites;
}
