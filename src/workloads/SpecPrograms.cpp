//===- workloads/SpecPrograms.cpp -----------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/SpecPrograms.h"

using namespace mdabt;
using namespace mdabt::workloads;

guest::GuestImage mdabt::workloads::buildBenchmark(const BenchmarkInfo &Info,
                                                   InputKind Input,
                                                   const ScaleConfig &Scale) {
  return buildProgram(makePlan(Info, Scale), Input);
}

Fig1Pair mdabt::workloads::buildFig1Pair(const BenchmarkInfo &Info,
                                         double PaddingFactor,
                                         const ScaleConfig &Scale) {
  ProgramPlan Plan = makePlan(Info, Scale);
  Fig1Pair Pair;
  Pair.Default = buildProgram(Plan, InputKind::Ref, LayoutKind::Default);
  Pair.Aligned = buildProgram(Plan, InputKind::Ref,
                              LayoutKind::AlignedPadded, PaddingFactor);
  return Pair;
}
