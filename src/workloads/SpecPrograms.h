//===- workloads/SpecPrograms.h - Benchmark image construction -*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience layer over the catalog + kernel generator: build the REF
/// and TRAIN guest binaries for any Table-I benchmark, and the
/// default-vs-alignment-enforced pair used by the Figure 1 experiment.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_WORKLOADS_SPECPROGRAMS_H
#define MDABT_WORKLOADS_SPECPROGRAMS_H

#include "workloads/SpecCatalog.h"

namespace mdabt {
namespace workloads {

/// Build one benchmark's guest binary for the given input set.
guest::GuestImage buildBenchmark(const BenchmarkInfo &Info, InputKind Input,
                                 const ScaleConfig &Scale = ScaleConfig());

/// The Figure 1 experiment: the same program as released (misaligned
/// data) and as compiled with alignment-enforcing flags (aligned but
/// padded data).  \p PaddingFactor models how aggressively the compiler
/// pads (the paper compares pathscale vs icc).
struct Fig1Pair {
  guest::GuestImage Default;
  guest::GuestImage Aligned;
};
Fig1Pair buildFig1Pair(const BenchmarkInfo &Info, double PaddingFactor,
                       const ScaleConfig &Scale = ScaleConfig());

} // namespace workloads
} // namespace mdabt

#endif // MDABT_WORKLOADS_SPECPROGRAMS_H
