//===- workloads/Kernels.cpp ----------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"

#include <cassert>

using namespace mdabt;
using namespace mdabt::guest;
using namespace mdabt::workloads;

double mdabt::workloads::biasFraction(BiasKind B) {
  switch (B) {
  case BiasKind::Aligned:
    return 0.0;
  case BiasKind::Always:
    return 1.0;
  case BiasKind::Above50:
    return 0.75;
  case BiasKind::Equal50:
    return 0.5;
  case BiasKind::Below50:
    return 0.25;
  case BiasKind::Rare:
    return 1.0 / 16.0;
  }
  return 0.0;
}

uint64_t mdabt::workloads::biasPatternCount(BiasKind B, uint32_t Iters) {
  switch (B) {
  case BiasKind::Aligned:
    return 0;
  case BiasKind::Always:
    return Iters;
  case BiasKind::Above50: {
    // bump = ((i & 3) + 3) >> 2: misaligned for i % 4 in {1, 2, 3}.
    uint32_t Rem = Iters % 4;
    return 3ULL * (Iters / 4) + (Rem > 0 ? Rem - 1 : 0);
  }
  case BiasKind::Equal50:
    // bump = i & 1: misaligned for odd i.
    return Iters / 2;
  case BiasKind::Below50:
    // bump = (i & 3) == 3.
    return Iters / 4;
  case BiasKind::Rare:
    // bump = (i & 15) == 15.
    return Iters / 16;
  }
  return 0;
}

uint64_t SiteGroup::expectedMdas(uint32_t Rounds) const {
  uint32_t Active = OnsetRound >= Rounds ? 0 : Rounds - OnsetRound;
  return static_cast<uint64_t>(Sites) * Active *
         biasPatternCount(Bias, ItersPerRound);
}

uint64_t SiteGroup::expectedRefs(uint32_t Rounds) const {
  uint32_t Active = Rounds;
  if (GatedIters)
    Active = OnsetRound >= Rounds ? 0 : Rounds - OnsetRound;
  return static_cast<uint64_t>(Sites) * ItersPerRound * Active;
}

namespace {

// Register roles inside generated code.
constexpr uint8_t RBase = 0;   // eax: section base pointer
constexpr uint8_t RIter = 1;   // ecx: loop counter
constexpr uint8_t RVal = 2;    // edx: load destination / store value
constexpr uint8_t RAddr = 3;   // ebx: slot address, then biased base
constexpr uint8_t RBump = 5;   // ebp: per-iteration alignment bump
constexpr uint8_t RRound = 6;  // esi: round counter
constexpr uint8_t RTmp = 7;    // edi: bias scratch
constexpr uint8_t QVal = 0;    // q0: 8-byte load/store data

uint8_t scaleLog2(unsigned Size) {
  switch (Size) {
  case 1:
    return 0;
  case 2:
    return 1;
  case 4:
    return 2;
  case 8:
    return 3;
  }
  assert(false && "bad access size");
  return 0;
}

/// One emitted section: a slice of a group plus its data placement.
struct SectionPlan {
  const SiteGroup *Group;
  uint32_t Sites;
  uint32_t Stride;
  uint32_t SlotAddr;
  /// Iteration-limit slot for gated sections (0 = not gated).
  uint32_t GateSlotAddr;
  /// The value stored into the slot at build time.
  uint32_t InitBase;
  /// True when the base-pointer slot is never written at runtime, so
  /// the section can materialize the base as an immediate instead of
  /// loading the slot — making the group's alignment statically
  /// manifest (a real compiler would constant-fold it the same way).
  /// Late-onset groups keep the load: their slot bump at OnsetRound is
  /// exactly what makes them invisible to profiling, and it keeps them
  /// invisible to static analysis too.
  bool ConstantBase;
  ProgramBuilder::Label Entry;
};

/// Emit the per-iteration bump computation for a mixed-bias group into
/// RBump (clobbers RTmp).
void emitBiasBump(ProgramBuilder &B, BiasKind Bias) {
  switch (Bias) {
  case BiasKind::Equal50:
    // bump = i & 1
    B.movrr(RBump, RIter);
    B.andi(RBump, 1);
    break;
  case BiasKind::Above50:
    // bump = ((i & 3) + 3) >> 2  ->  {0,1,1,1}: 75% misaligned
    B.movrr(RBump, RIter);
    B.andi(RBump, 3);
    B.addi(RBump, 3);
    B.shri(RBump, 2);
    break;
  case BiasKind::Below50:
    // bump = (i & 3) == 3  ->  {0,0,0,1}: 25% misaligned
    B.movrr(RBump, RIter);
    B.andi(RBump, 3);
    B.movrr(RTmp, RBump);
    B.shri(RTmp, 1);
    B.andi(RBump, 1);
    B.and_(RBump, RTmp);
    break;
  case BiasKind::Rare:
    // bump = (i & 15) == 15: AND of the low four bits.
    B.movrr(RBump, RIter);
    B.andi(RBump, 15);
    B.movrr(RTmp, RBump);
    B.shri(RTmp, 1);
    B.and_(RBump, RTmp); // x & x>>1
    B.shri(RTmp, 1);
    B.and_(RBump, RTmp); // ... & x>>2
    B.shri(RTmp, 1);
    B.and_(RBump, RTmp); // ... & x>>3
    B.andi(RBump, 1);
    break;
  default:
    assert(false && "not a mixed bias");
  }
}

bool isMixedBias(BiasKind B) {
  return B == BiasKind::Equal50 || B == BiasKind::Above50 ||
         B == BiasKind::Below50 || B == BiasKind::Rare;
}

void emitSiteAccess(ProgramBuilder &B, unsigned Size, uint8_t BaseReg,
                    int32_t Disp, bool IsStore) {
  Mem M = memIdx(BaseReg, RIter, scaleLog2(Size), Disp);
  switch (Size) {
  case 2:
    if (IsStore)
      B.stw(M, RVal);
    else
      B.ldw(RVal, M);
    break;
  case 4:
    if (IsStore)
      B.stl(M, RVal);
    else
      B.ldl(RVal, M);
    break;
  case 8:
    if (IsStore)
      B.stq(M, QVal);
    else
      B.ldq(QVal, M);
    break;
  default:
    assert(false && "bad site size");
  }
}

} // namespace

GuestImage mdabt::workloads::buildProgram(const ProgramPlan &Plan,
                                          InputKind Input, LayoutKind Layout,
                                          double PaddingFactor) {
  assert(Plan.Rounds >= 1 && "a program needs at least one round");
  ProgramBuilder B(Plan.Name);
  RNG Rng(Plan.Seed);
  bool Aligned = Layout == LayoutKind::AlignedPadded;

  // ---- plan sections and lay out their data --------------------------------
  std::vector<SectionPlan> Sections;
  for (const SiteGroup &G : Plan.Groups) {
    assert((!isMixedBias(G.Bias) ||
            G.ItersPerRound >= (G.Bias == BiasKind::Rare ? 16u : 8u)) &&
           "mixed-bias groups need enough iterations for their pattern");
    uint32_t PerSection =
        G.SitesPerSection != 0 ? G.SitesPerSection : Plan.SitesPerSection;
    uint32_t Remaining = G.Sites;
    while (Remaining != 0) {
      uint32_t Sites = Remaining < PerSection ? Remaining : PerSection;
      Remaining -= Sites;

      uint64_t RawStride =
          static_cast<uint64_t>(G.ItersPerRound) * G.Size + 16;
      if (Aligned && PaddingFactor > 1.0)
        RawStride = static_cast<uint64_t>(
            static_cast<double>(RawStride) * PaddingFactor);
      uint32_t Stride = static_cast<uint32_t>((RawStride + 7) & ~7ULL);

      uint32_t DataStart =
          B.dataReserve(Stride * Sites, /*Align=*/8);

      // Initial base: misaligned from the start for Always-bias groups
      // with onset 0; ref-only groups only under the REF input; never
      // under the alignment-enforcing layout.
      uint32_t InitBase = DataStart;
      bool InitiallyMis = !Aligned && G.Bias == BiasKind::Always &&
                          (G.OnsetRound == 0 || G.GatedIters) &&
                          (!G.RefOnly || Input == InputKind::Ref);
      if (InitiallyMis)
        InitBase += 1;
      uint32_t Slot = B.dataU32(InitBase);

      uint32_t GateSlot = 0;
      if (G.GatedIters) {
        assert(G.Bias == BiasKind::Always && "gated groups must be Always");
        GateSlot = B.dataU32(G.OnsetRound == 0 ? G.ItersPerRound : 0);
      }

      // The onset prologue bumps the base slot at runtime only for
      // non-gated late-onset groups in the misaligning layout; every
      // other section's slot holds InitBase forever and the base can be
      // an immediate.  Ref-only groups must keep the load: their
      // InitBase differs between the TRAIN and REF inputs while their
      // code must be byte-identical across the two.
      bool SlotRuntimeWritten = !Aligned && !G.GatedIters &&
                                G.OnsetRound >= 1 &&
                                G.OnsetRound < Plan.Rounds;
      bool ConstantBase = !G.RefOnly && !SlotRuntimeWritten;

      Sections.push_back({&G, Sites, Stride, Slot, GateSlot, InitBase,
                          ConstantBase, B.newLabel()});
    }
  }

  // ---- program skeleton: the round loop -----------------------------------
  B.movri(RRound, 0);
  ProgramBuilder::Label RoundLoop = B.here();

  // Onset prologue.  Two kinds of round-triggered events:
  //  - base-pointer bumps for late-onset groups (what makes their MDAs
  //    invisible to early profiling) — suppressed in the aligned layout;
  //  - gate openings for gated sections (which run the same in every
  //    layout, so Fig. 1 compares equal work).
  for (const SectionPlan &S : Sections) {
    const SiteGroup &G = *S.Group;
    if (G.OnsetRound == 0 || G.OnsetRound >= Plan.Rounds)
      continue;
    if (G.GatedIters) {
      ProgramBuilder::Label Skip = B.newLabel();
      B.cmpi(RRound, static_cast<int32_t>(G.OnsetRound));
      B.jcc(Cond::Ne, Skip);
      B.movri(RAddr, static_cast<int32_t>(S.GateSlotAddr));
      B.movri(RBase, static_cast<int32_t>(G.ItersPerRound));
      B.stl(mem(RAddr, 0), RBase);
      B.bind(Skip);
      continue;
    }
    if (Aligned)
      continue;
    ProgramBuilder::Label Skip = B.newLabel();
    B.cmpi(RRound, static_cast<int32_t>(G.OnsetRound));
    B.jcc(Cond::Ne, Skip);
    B.movri(RAddr, static_cast<int32_t>(S.SlotAddr));
    B.ldl(RBase, mem(RAddr, 0));
    B.addi(RBase, 1);
    B.stl(mem(RAddr, 0), RBase);
    B.bind(Skip);
  }

  for (const SectionPlan &S : Sections)
    B.call(S.Entry);

  B.addi(RRound, 1);
  B.cmpi(RRound, static_cast<int32_t>(Plan.Rounds));
  B.jcc(Cond::B, RoundLoop);

  // Epilogue: fold observable state into the checksum.
  B.chk(RVal);
  B.qchk(QVal);
  B.chk(RBase);
  B.chk(RRound);
  B.halt();

  // ---- sections ------------------------------------------------------------
  for (const SectionPlan &S : Sections) {
    const SiteGroup &G = *S.Group;
    B.bind(S.Entry);
    if (S.ConstantBase) {
      B.movri(RBase, static_cast<int32_t>(S.InitBase));
    } else {
      B.movri(RAddr, static_cast<int32_t>(S.SlotAddr));
      B.ldl(RBase, mem(RAddr, 0));
    }
    B.movri(RVal, static_cast<int32_t>(Rng.next() & 0x7fffffff));
    if (G.Size == 8)
      B.qmovi(QVal, static_cast<int32_t>(Rng.next() & 0x7fffffff));
    B.movri(RIter, 0);

    // Gated sections run `limit` iterations, where the limit slot is 0
    // until the group's onset round.
    ProgramBuilder::Label Done = B.newLabel();
    if (G.GatedIters) {
      B.movri(RAddr, static_cast<int32_t>(S.GateSlotAddr));
      B.ldl(RTmp, mem(RAddr, 0));
      B.cmp(RIter, RTmp);
      B.jcc(Cond::Ae, Done);
    }

    ProgramBuilder::Label Loop = B.here();
    uint8_t BaseReg = RBase;
    if (!Aligned && isMixedBias(G.Bias)) {
      emitBiasBump(B, G.Bias);
      B.movrr(RAddr, RBase);
      B.add(RAddr, RBump);
      BaseReg = RAddr;
    }
    for (uint32_t J = 0; J != S.Sites; ++J) {
      bool IsStore =
          G.StoreEvery != 0 && (J % G.StoreEvery) == G.StoreEvery - 1;
      emitSiteAccess(B, G.Size, BaseReg,
                     static_cast<int32_t>(J * S.Stride), IsStore);
    }
    B.addi(RIter, 1);
    if (G.GatedIters) {
      B.cmp(RIter, RTmp);
      B.jcc(Cond::B, Loop);
    } else {
      B.cmpi(RIter, static_cast<int32_t>(G.ItersPerRound));
      B.jcc(Cond::B, Loop);
    }
    B.bind(Done);
    B.chk(RVal);
    if (G.Size == 8)
      B.qchk(QVal);
    B.ret();
  }

  return B.build();
}

// -- fusion-dense kernels ----------------------------------------------------
//
// Register roles (guest::RegSP == 4 is never touched):
//   r0 src base / seed, r1 dst base, r2 element index, r3/r5 data,
//   r6 inner counter, r7 round counter.

GuestImage mdabt::workloads::buildFusionMemcpyKernel(uint32_t Words,
                                                     uint32_t Rounds) {
  assert(Words >= 2 && Words % 2 == 0 && Rounds >= 1);
  ProgramBuilder B("fusion-memcpy");
  uint32_t Src = B.dataReserve(Words * 4 + 16, 8);
  uint32_t Dst = B.dataReserve(Words * 4 + 16, 8);
  // Deterministic non-zero source contents.
  for (uint32_t I = 0; I != Words; ++I)
    B.patchDataU32(Src + I * 4, 0x9e3779b9u * (I + 1));

  B.movri(0, static_cast<int32_t>(Src));
  B.movri(1, static_cast<int32_t>(Dst));
  B.movri(7, static_cast<int32_t>(Rounds));
  ProgramBuilder::Label Round = B.here();
  B.movri(2, 0);
  B.movri(6, static_cast<int32_t>(Words / 2));
  ProgramBuilder::Label Inner = B.here();
  // Two-word copy: load run and store run each share [base + r2*4 + d]
  // (SharedAddr), then a mov-op mix (MovOp) and a destination
  // read-modify-write (LdOpSt).
  B.ldl(3, memIdx(0, 2, 2, 0));
  B.ldl(5, memIdx(0, 2, 2, 4));
  B.stl(memIdx(1, 2, 2, 0), 3);
  B.stl(memIdx(1, 2, 2, 4), 5);
  B.movrr(3, 5);
  B.add(3, 6); // MovOp: fold the counter into the copied word
  B.chk(3);    // keep the fused result architecturally observable
  B.ldl(3, memIdx(1, 2, 2, 0));
  B.xori(3, 0x33);
  B.stl(memIdx(1, 2, 2, 0), 3);
  B.addi(2, 2);
  B.addi(6, -1); // ImmNeg
  B.cmpi(6, 0);
  B.jcc(Cond::Ne, Inner); // CmpBr0
  B.addi(7, -1);          // ImmNeg
  B.cmpi(7, 0);
  B.jcc(Cond::Ne, Round);
  B.chk(3);
  B.chk(5);
  B.halt();
  return B.build();
}

GuestImage mdabt::workloads::buildFusionMemsetKernel(uint32_t Words,
                                                     uint32_t Rounds) {
  assert(Words >= 4 && Words % 4 == 0 && Rounds >= 1);
  ProgramBuilder B("fusion-memset");
  uint32_t Dst = B.dataReserve(Words * 4 + 16, 8);
  B.movri(0, 0x01020304); // evolving fill seed
  B.movri(1, static_cast<int32_t>(Dst));
  B.movri(7, static_cast<int32_t>(Rounds));
  ProgramBuilder::Label Round = B.here();
  B.movri(2, 0);
  B.movri(6, static_cast<int32_t>(Words / 4));
  ProgramBuilder::Label Inner = B.here();
  // Derive two fill values from the seed via mov-op chains (MovOp and
  // MovOpI), then a four-store run at one shared indexed address.
  B.movrr(3, 0);
  B.xor_(3, 6); // MovOp: xor seed with the counter
  B.movrr(5, 3);
  B.addi(5, 7); // MovOpI
  B.stl(memIdx(1, 2, 2, 0), 3);
  B.stl(memIdx(1, 2, 2, 4), 5);
  B.stl(memIdx(1, 2, 2, 8), 3);
  B.stl(memIdx(1, 2, 2, 12), 5);
  B.addi(2, 4);
  B.addi(6, -1); // ImmNeg
  B.cmpi(6, 0);
  B.jcc(Cond::Ne, Inner); // CmpBr0
  B.addi(0, -3);          // evolve the seed (ImmNeg)
  B.addi(7, -1);
  B.cmpi(7, 0);
  B.jcc(Cond::Ne, Round);
  B.chk(0);
  B.chk(3);
  B.chk(5);
  B.halt();
  return B.build();
}
