//===- workloads/SpecCatalog.h - The paper's benchmark population -*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All 54 SPEC CPU2000/CPU2006 benchmarks of the paper's Table I, each
/// carrying the paper-reported MDA statistics (NMI, MDA count, MDA ratio)
/// plus the behavioural parameters derived from Tables III/IV:
///
///  - DynEscapeFrac  = Table III / Table I  (MDAs invisible to dynamic
///    profiling at threshold 50: late-onset behaviour);
///  - TrainEscapeFrac = Table IV / Table I  (MDAs the train input never
///    exhibits: input-dependent alignment);
///  - EarlyOnsetFrac  (MDAs first appearing between the 10th and 50th
///    block execution — what separates TH=10 from TH=50 in Fig. 10);
///  - the per-instruction misaligned-ratio mix of Fig. 15.
///
/// makePlan() turns a catalog row into a synthesizable ProgramPlan whose
/// *measured* census reproduces these statistics at laptop scale.  Run
/// lengths are scaled from ~10^11 references to ~2.5x10^6 (DESIGN.md
/// section 2); NMI is preserved via low-execution "showcase" sections so
/// the census column keeps the paper's ordering.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_WORKLOADS_SPECCATALOG_H
#define MDABT_WORKLOADS_SPECCATALOG_H

#include "workloads/Kernels.h"

#include <string_view>
#include <vector>

namespace mdabt {
namespace workloads {

/// One Table-I row plus synthesis parameters.
struct BenchmarkInfo {
  const char *Name;
  const char *Suite; ///< CINT2000 / CFP2000 / CINT2006 / CFP2006
  // ---- paper-reported values (Table I, III, IV) ----
  uint32_t PaperNmi;
  double PaperMdas;
  double PaperRatio; ///< fraction of all memory references
  bool Selected;     ///< one of the paper's 21 evaluated benchmarks
  double PaperDynUndetected;  ///< Table III (0 for unselected)
  double PaperTrainResidual;  ///< Table IV (0 for unselected)
  // ---- synthesis parameters ----
  double EarlyOnsetFrac;
  double FracAbove50;
  double FracEqual50;
  double FracBelow50;
  unsigned Size;            ///< dominant access size (bytes)
  uint32_t FillerSections;  ///< hot aligned loops (Fig. 10 sensitivity)
  /// Fraction of total references flowing through rarely-misaligned
  /// (1/16) high-traffic sites — the population multi-version code
  /// (Fig. 14) profits from.  0 for most benchmarks.
  double FracRareRefs = 0.0;

  double dynEscapeFrac() const;
  double trainEscapeFrac() const;
};

/// The full 54-benchmark catalog, paper order.
const std::vector<BenchmarkInfo> &specCatalog();

/// Catalog row by name (nullptr if unknown).
const BenchmarkInfo *findBenchmark(std::string_view Name);

/// The paper's 21 selected benchmarks, paper order.
std::vector<const BenchmarkInfo *> selectedBenchmarks();

/// Scaling knobs shared by all experiments.
struct ScaleConfig {
  /// Target total memory references per run (paper: up to ~10^12).
  uint64_t TotalRefs = 2'500'000;
  /// Rounds in the synthesized program.
  uint32_t Rounds = 8;
  /// Cap on the misaligned fraction (arrays must stay addressable).
  double MaxMisFraction = 0.55;
};

/// Build the synthesis plan for one benchmark.
ProgramPlan makePlan(const BenchmarkInfo &Info,
                     const ScaleConfig &Scale = ScaleConfig());

} // namespace workloads
} // namespace mdabt

#endif // MDABT_WORKLOADS_SPECCATALOG_H
