//===- workloads/Hostile.cpp ----------------------------------------------===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Hostile.h"

#include "guest/Assembler.h"

#include <cassert>

using namespace mdabt;
using namespace mdabt::guest;

namespace {

// GPR aliases (x86 numbering; esp = 4 is the stack pointer).
constexpr uint8_t Eax = 0;
constexpr uint8_t Edx = 2;
constexpr uint8_t Ebx = 3;
constexpr uint8_t Ebp = 5;
constexpr uint8_t Esi = 6;
constexpr uint8_t Edi = 7;

/// Pad with nops until the imm32 of a RegImm instruction emitted next
/// ([op][reg][imm32], imm at +2) lands 4-byte aligned, so the patcher's
/// `stl` into it is an aligned store — the patch itself then takes the
/// plain-store path and the only MDA traffic is the one the program
/// means to generate.
void alignImmForPatch(ProgramBuilder &B) {
  while ((B.codeAddress() + 2) % 4 != 0)
    B.nop();
}

} // namespace

GuestImage workloads::smcFlipProgram(uint32_t Iters) {
  assert(Iters > 0);
  ProgramBuilder B("smc.flip");
  uint32_t Buf = B.dataReserve(32, 8);

  ProgramBuilder::Label Worker = B.newLabel();
  ProgramBuilder::Label Loop = B.newLabel();

  // Entry: loop counter and a deliberately misaligned data base.
  B.movri(Esi, static_cast<int32_t>(Iters));
  B.movri(Ebp, static_cast<int32_t>(Buf + 1));
  B.jmp(Loop);

  // Worker block: the patched movri, plus misaligned load/store
  // traffic so every MDA policy's machinery runs on rewritten-and-
  // retranslated code.
  alignImmForPatch(B);
  uint32_t WorkerImm = B.codeAddress() + 2;
  B.bind(Worker);
  B.movri(Eax, 0); // imm32 rewritten by the patcher every iteration
  B.ldl(Edx, mem(Ebp, 0));     // misaligned load
  B.stl(mem(Ebp, 8), Eax);     // misaligned store of the patched value
  B.ret();

  // Patcher loop: rewrite the worker's imm32 (self-modifying code, in
  // a *different* block), then call it across a block boundary.
  B.bind(Loop);
  B.movri(Ebx, static_cast<int32_t>(WorkerImm));
  B.stl(mem(Ebx, 0), Esi); // SMC: aligned 4-byte store into code
  B.call(Worker);
  B.chk(Eax);
  B.chk(Edx);
  B.subi(Esi, 1);
  B.cmpi(Esi, 0);
  B.jcc(Cond::Ne, Loop);
  B.halt();
  return B.build();
}

GuestImage workloads::smcPhaseProgram(uint32_t Iters, uint32_t ShiftAt) {
  assert(Iters > 0 && ShiftAt > 0 && ShiftAt < Iters);
  ProgramBuilder B("smc.phase");
  uint32_t Buf = B.dataReserve(32, 8);

  ProgramBuilder::Label Setup = B.newLabel();
  ProgramBuilder::Label Worker = B.newLabel();
  ProgramBuilder::Label Loop = B.newLabel();
  ProgramBuilder::Label Skip = B.newLabel();

  B.movri(Esi, static_cast<int32_t>(Iters));
  B.movri(Edi, static_cast<int32_t>(ShiftAt));
  B.jmp(Loop);

  // Block X: materializes the base pointer.  Its imm32 is the phase
  // switch — rewriting it changes the alignment of block W's accesses
  // without touching a single byte of W.
  alignImmForPatch(B);
  uint32_t SetupImm = B.codeAddress() + 2;
  B.bind(Setup);
  B.movri(Ebp, static_cast<int32_t>(Buf));
  B.ret();

  // Block W: with analysis on, [ebp+4] is provably Aligned through X's
  // constant — an Elide whose proof lives in another block's bytes.
  B.bind(Worker);
  B.ldl(Eax, mem(Ebp, 4));
  B.stl(mem(Ebp, 12), Eax);
  B.ret();

  B.bind(Loop);
  B.call(Setup);
  B.call(Worker);
  B.chk(Eax);
  B.cmp(Esi, Edi);
  B.jcc(Cond::Ne, Skip);
  // Phase shift: misalign the base from here on.  The next circuit's
  // call Setup re-executes the rewritten movri.
  B.movri(Ebx, static_cast<int32_t>(SetupImm));
  B.movri(Edx, static_cast<int32_t>(Buf + 1));
  B.stl(mem(Ebx, 0), Edx);
  B.bind(Skip);
  B.subi(Esi, 1);
  B.cmpi(Esi, 0);
  B.jcc(Cond::Ne, Loop);
  B.halt();
  return B.build();
}

GuestImage workloads::smcChurnProgram(uint32_t Workers, uint32_t Iters) {
  assert(Workers > 0 && Workers <= 8 && Iters > 0);
  ProgramBuilder B("smc.churn");
  uint32_t Buf = B.dataReserve(8 * Workers + 16, 8);

  std::vector<ProgramBuilder::Label> WorkerL;
  for (uint32_t K = 0; K != Workers; ++K)
    WorkerL.push_back(B.newLabel());
  ProgramBuilder::Label Loop = B.newLabel();

  B.movri(Esi, static_cast<int32_t>(Iters));
  B.movri(Ebp, static_cast<int32_t>(Buf + 1));
  B.jmp(Loop);

  std::vector<uint32_t> WorkerImm;
  for (uint32_t K = 0; K != Workers; ++K) {
    alignImmForPatch(B);
    WorkerImm.push_back(B.codeAddress() + 2);
    B.bind(WorkerL[K]);
    B.movri(Eax, 0); // rewritten on every circuit
    B.stl(mem(Ebp, static_cast<int32_t>(8 * K)), Eax); // misaligned
    B.ret();
  }

  // Driver: patch *every* worker, *every* circuit.  Once the workers
  // are hot this is Workers invalidation+retranslation cycles per
  // iteration — the unbounded-churn adversary the budget ceilings and
  // the per-block SMC pin exist for.
  B.bind(Loop);
  for (uint32_t K = 0; K != Workers; ++K) {
    B.movri(Ebx, static_cast<int32_t>(WorkerImm[K]));
    B.movrr(Edx, Esi);
    B.addi(Edx, static_cast<int32_t>(K));
    B.stl(mem(Ebx, 0), Edx);
    B.call(WorkerL[K]);
    B.chk(Eax);
  }
  B.subi(Esi, 1);
  B.cmpi(Esi, 0);
  B.jcc(Cond::Ne, Loop);
  B.halt();
  return B.build();
}

std::vector<workloads::HostileProgram> workloads::hostileCatalog() {
  std::vector<HostileProgram> Out;
  Out.push_back({"smc.flip", smcFlipProgram(400)});
  Out.push_back({"smc.phase", smcPhaseProgram(400, 200)});
  Out.push_back({"smc.churn", smcChurnProgram(3, 250)});
  return Out;
}
