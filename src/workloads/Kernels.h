//===- workloads/Kernels.h - Synthetic workload building blocks -*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The building blocks the SPEC-like program synthesizer is made of:
///
/// A benchmark program is a fixed number of *rounds*; each round calls a
/// list of *sections* (as guest functions).  A section is a hot loop whose
/// body performs one memory access per *site* — a site is one static
/// memory instruction sweeping its own array.  Alignment behaviour is
/// controlled per section group:
///
///  - the section's base pointer lives in a data slot; groups with an
///    onset round get the slot bumped by +1 at that round (late-onset
///    MDAs that escape dynamic profiling — paper Table III);
///  - "ref-only" groups start bumped only under the REF input (MDAs the
///    train run never sees — paper Table IV);
///  - mixed-bias groups add a per-iteration bump computed from the loop
///    counter, yielding per-site misaligned ratios of 25% / 50% / 75%
///    (paper Fig. 15's <50 / =50 / >50 classes);
///  - aligned "filler" sections control total reference counts and the
///    heat (execution counts) that the threshold experiments of Fig. 10
///    depend on.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_WORKLOADS_KERNELS_H
#define MDABT_WORKLOADS_KERNELS_H

#include "guest/Assembler.h"
#include "support/RNG.h"

#include <cstdint>
#include <vector>

namespace mdabt {
namespace workloads {

/// Per-access alignment pattern of a site group once it is active.
enum class BiasKind {
  Aligned, ///< never misaligned (filler)
  Always,  ///< misaligned on every access (paper: the dominant class)
  Above50, ///< misaligned 75% of accesses
  Equal50, ///< misaligned 50% of accesses
  Below50, ///< misaligned 25% of accesses (the "frequently aligned" 4.5%)
  Rare,    ///< misaligned 1/16 of accesses: high-traffic, mostly aligned
           ///< sites — the population multi-version code targets
};

/// Fraction of active accesses that are misaligned for a bias kind.
double biasFraction(BiasKind B);

/// Exact number of misaligned accesses the bias pattern produces over
/// \p Iters loop iterations (the patterns are deterministic functions of
/// the loop counter).
uint64_t biasPatternCount(BiasKind B, uint32_t Iters);

/// One homogeneous group of sites.
struct SiteGroup {
  uint32_t Sites = 0;
  uint32_t ItersPerRound = 0;
  /// Access size in bytes (2, 4 or 8; filler may use any).
  unsigned Size = 4;
  BiasKind Bias = BiasKind::Always;
  /// First round in which the group's base pointers are misaligned.
  /// 0 = misaligned from the start; >= Rounds = never (filler).
  uint32_t OnsetRound = 0;
  /// Only misaligned under the REF input (train never sees it).
  bool RefOnly = false;
  /// Every Nth site is a store (0 = loads only).
  uint32_t StoreEvery = 3;
  /// Sites per emitted section for this group (0 = plan default).
  /// Small values concentrate executions into few, very hot blocks.
  uint32_t SitesPerSection = 0;
  /// The section's iteration count is gated by a data slot that opens at
  /// OnsetRound: before that round the loop body never runs, so sites
  /// access memory *only* while misaligned (per-instruction ratio 100%).
  /// Used by the census-showcase sections.  Requires Bias == Always.
  bool GatedIters = false;

  /// Expected misaligned accesses over a whole REF run of \p Rounds.
  uint64_t expectedMdas(uint32_t Rounds) const;
  /// Expected total accesses over a whole run of \p Rounds.
  uint64_t expectedRefs(uint32_t Rounds) const;
};

/// A complete synthetic program plan.
struct ProgramPlan {
  std::string Name;
  uint32_t Rounds = 8;
  /// Sites per generated section (loop body size).
  uint32_t SitesPerSection = 24;
  std::vector<SiteGroup> Groups;
  uint64_t Seed = 1;
};

/// Which input set the image models (paper: train vs ref).
enum class InputKind { Train, Ref };

/// Layout variant for the Figure-1 experiment.
enum class LayoutKind {
  /// As released: misalignment per the plan.
  Default,
  /// Compiled with alignment-enforcing flags: all bumps suppressed and
  /// arrays padded (larger working set), paper section II.
  AlignedPadded,
};

/// Synthesize the guest binary for \p Plan.
guest::GuestImage buildProgram(const ProgramPlan &Plan, InputKind Input,
                               LayoutKind Layout = LayoutKind::Default,
                               double PaddingFactor = 1.0);

// -- fusion-dense kernels ------------------------------------------------
//
// Aligned synthetic kernels whose hot-loop bodies are saturated with the
// guest idioms the peephole fusion table (dbt/FusionRules.h) targets:
// runs of indexed memory ops sharing one (base, index, scale) address
// (SharedAddr), load-modify-store read-modify-writes (LdOpSt), mov-op
// chains (MovOp/MovOpI), and loops closed with `addi -1; cmpi 0; jcc Ne`
// (ImmNeg + CmpBr0).  Used by bench/ablation_fusion and the
// micro_components fusion row; all accesses are aligned so the measured
// delta is pure code-density effect, not MDA-policy noise.

/// A memcpy-like kernel: copy \p Words 32-bit words from a source to a
/// destination array, \p Rounds times, two words per iteration plus a
/// read-modify-write pass over the destination.
guest::GuestImage buildFusionMemcpyKernel(uint32_t Words, uint32_t Rounds);

/// A memset-like kernel: fill \p Words 32-bit words (four per
/// iteration, one shared indexed address) with an evolving pattern,
/// \p Rounds times.
guest::GuestImage buildFusionMemsetKernel(uint32_t Words, uint32_t Rounds);

} // namespace workloads
} // namespace mdabt

#endif // MDABT_WORKLOADS_KERNELS_H
