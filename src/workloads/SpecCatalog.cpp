//===- workloads/SpecCatalog.cpp ------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/SpecCatalog.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace mdabt;
using namespace mdabt::workloads;

double BenchmarkInfo::dynEscapeFrac() const {
  if (PaperMdas <= 0)
    return 0.0;
  return std::min(0.95, PaperDynUndetected / PaperMdas);
}

double BenchmarkInfo::trainEscapeFrac() const {
  if (PaperMdas <= 0)
    return 0.0;
  return std::min(0.95, PaperTrainResidual / PaperMdas);
}

namespace {

// Shorthands for the table below.
constexpr double KDefA = 0.04, KDefE = 0.03, KDefB = 0.03; // bias defaults

std::vector<BenchmarkInfo> buildCatalog() {
  // Columns: name, suite, NMI, MDAs, ratio, selected, TableIII, TableIV,
  //          earlyOnset, fracAbove50, fracEqual50, fracBelow50, size,
  //          fillerSections.
  return {
      // ---- SPEC CPU2000 integer ----
      {"164.gzip", "CINT2000", 80, 406431686., .0052, true, 1.56e8, 46.,
       .05, KDefA, KDefE, KDefB, 4, 10},
      {"175.vpr", "CINT2000", 134, 2762730., .0001, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 4, 2},
      {"176.gcc", "CINT2000", 154, 37894632., .0006, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 4, 2},
      {"181.mcf", "CINT2000", 16, 1649912., .0002, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 4, 2},
      {"186.crafty", "CINT2000", 20, 4950., .0, false, 0., 0., .02, KDefA,
       KDefE, KDefB, 8, 2},
      {"197.parser", "CINT2000", 16, 291054., .0, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 4, 2},
      {"252.eon", "CINT2000", 3096, 8523707162., .0963, true, 24630.,
       3.22e9, .05, KDefA, KDefE, KDefB, 8, 10},
      {"253.perlbmk", "CINT2000", 270, 148689820., .0023, false, 0., 0.,
       .02, KDefA, KDefE, KDefB, 4, 2},
      {"254.gap", "CINT2000", 14, 1128048., .0, false, 0., 0., .02, KDefA,
       KDefE, KDefB, 4, 2},
      {"255.vortex", "CINT2000", 90, 12361950., .0003, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 4, 2},
      {"256.bzip2", "CINT2000", 44, 25233188., .0004, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 4, 2},
      {"300.twolf", "CINT2000", 98, 441176894., .0092, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 4, 2},
      // ---- SPEC CPU2000 floating point ----
      {"168.wupwise", "CFP2000", 132, 9682., .0, false, 0., 0., .02, KDefA,
       KDefE, KDefB, 8, 2},
      {"171.swim", "CFP2000", 284, 49605944., .0003, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 8, 2},
      {"172.mgrid", "CFP2000", 78, 1772430., .0, false, 0., 0., .02, KDefA,
       KDefE, KDefB, 8, 2},
      {"173.applu", "CFP2000", 306, 2243041896., .016, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 8, 2},
      {"177.mesa", "CFP2000", 54, 9370., .0, false, 0., 0., .02, KDefA,
       KDefE, KDefB, 4, 2},
      {"178.galgel", "CFP2000", 5282, 492949052., .0027, true, 3436.,
       4930086., .05, KDefA, KDefE, KDefB, 8, 12},
      {"179.art", "CFP2000", 1024, 21244446764., .3833, true, 3.12e8,
       3.6e9, .05, KDefA, KDefE, KDefB, 8, 2},
      {"183.equake", "CFP2000", 30, 524., .0, false, 0., 0., .02, KDefA,
       KDefE, KDefB, 8, 2},
      {"187.facerec", "CFP2000", 112, 6240872., .0001, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 8, 2},
      {"188.ammp", "CFP2000", 1134, 73194953020., .4312, true, 0., 0., .05,
       KDefA, KDefE, KDefB, 8, 2},
      {"189.lucas", "CFP2000", 64, 17383280., .0002, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 8, 2},
      {"191.fma3d", "CFP2000", 398, 5383029436., .0336, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 8, 2},
      {"200.sixtrack", "CFP2000", 1324, 8673947498., .0421, true, 235950.,
       0., .05, KDefA, KDefE, KDefB, 8, 10},
      {"301.apsi", "CFP2000", 356, 1568299486., .0086, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 8, 2},
      // ---- SPEC CPU2006 integer ----
      {"400.perlbench", "CINT2006", 77, 1469188415., .0026, true,
       57874640., 1244769., .50, KDefA, KDefE, KDefB, 4, 4},
      {"401.bzip2", "CINT2006", 45, 82641256., .0001, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 4, 2},
      {"403.gcc", "CINT2006", 53, 32624., .0, false, 0., 0., .02, KDefA,
       KDefE, KDefB, 4, 2},
      {"429.mcf", "CINT2006", 10, 883518., .0, false, 0., 0., .02, KDefA,
       KDefE, KDefB, 4, 2},
      {"445.gobmk", "CINT2006", 76, 1741956., .0, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 4, 2},
      {"456.hmmer", "CINT2006", 127, 13757509., .0, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 4, 2},
      {"458.sjeng", "CINT2006", 9, 1303., .0, false, 0., 0., .02, KDefA,
       KDefE, KDefB, 4, 2},
      {"462.libquantum", "CINT2006", 9, 435., .0, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 4, 2},
      {"464.h264ref", "CINT2006", 96, 138883221., .0001, true, 9347.,
       1020., .05, KDefA, KDefE, KDefB, 2, 2},
      {"471.omnetpp", "CINT2006", 394, 6303605195., .0337, true, 38979.,
       48638638., .05, .10, .06, .10, 4, 2},
      {"473.astar", "CINT2006", 32, 758., .0, false, 0., 0., .02, KDefA,
       KDefE, KDefB, 4, 2},
      {"483.xalancbmk", "CINT2006", 53, 5749815279., .016, true, 8.32e9,
       12761., .05, KDefA, KDefE, KDefB, 4, 2},
      // ---- SPEC CPU2006 floating point ----
      {"410.bwaves", "CFP2006", 602, 99916961773., .1267, true, 4.15e10,
       0., .05, KDefA, KDefE, KDefB, 8, 2},
      {"416.gamess", "CFP2006", 424, 13073700., .0, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 8, 2},
      {"433.milc", "CFP2006", 3825, 67272361837., .1209, true, 1.34e8, 6.,
       .05, KDefA, KDefE, KDefB, 8, 2},
      {"434.zeusmp", "CFP2006", 3484, 87873451026., .0414, true, 1716.,
       644100., .05, KDefA, KDefE, KDefB, 8, 2},
      {"435.gromacs", "CFP2006", 197, 123577765., .0001, true, 1820., 0.,
       .05, KDefA, KDefE, KDefB, 8, 2},
      {"436.cactusADM", "CFP2006", 48, 1745161., .0, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 8, 2},
      {"437.leslie3d", "CFP2006", 205, 23645192624., .0254, true, 1716.,
       21168., .05, KDefA, KDefE, KDefB, 8, 2},
      {"444.namd", "CFP2006", 103, 10516106., .0, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 8, 2},
      {"450.soplex", "CFP2006", 538, 13446836143., .0571, true, 9.33e8,
       4.03e9, .05, .08, .05, .08, 8, 2},
      {"453.povray", "CFP2006", 918, 36294822277., .083, true, 2.41e8, 0.,
       .05, .06, .04, .08, 8, 2},
      {"454.calculix", "CFP2006", 139, 478592675., .0002, true, 2609.,
       1.83e8, .05, .05, .04, .06, 8, 2},
      {"459.GemsFDTD", "CFP2006", 3304, 31740862., .0, false, 0., 0., .02,
       KDefA, KDefE, KDefB, 8, 2},
      {"465.tonto", "CFP2006", 1748, 38717125228., .038, true, 116450.,
       262., .05, KDefA, KDefE, KDefB, 8, 10},
      {"470.lbm", "CFP2006", 8, 7124766678., .0114, true, 0., 0., .05,
       KDefA, KDefE, KDefB, 8, 2},
      {"481.wrf", "CFP2006", 92, 49694156., .0, false, 0., 0., .02, KDefA,
       KDefE, KDefB, 8, 2},
      {"482.sphinx3", "CFP2006", 115, 3118790131., .0031, true, 1., 0.,
       .05, KDefA, KDefE, KDefB, 4, 2},
  };
}

uint64_t hashName(const char *Name) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (const char *P = Name; *P; ++P) {
    H ^= static_cast<uint8_t>(*P);
    H *= 0x100000001b3ULL;
  }
  return H;
}

} // namespace

namespace {

/// Post-construction tuning: the benchmarks whose multi-version gains
/// the paper highlights carry a population of high-traffic, rarely
/// misaligned sites.
std::vector<BenchmarkInfo> buildTunedCatalog() {
  std::vector<BenchmarkInfo> Catalog = buildCatalog();
  auto SetRare = [&](const char *Name, double Frac) {
    for (BenchmarkInfo &B : Catalog)
      if (std::string_view(Name) == B.Name)
        B.FracRareRefs = Frac;
  };
  SetRare("453.povray", 0.20);
  SetRare("188.ammp", 0.10);
  SetRare("179.art", 0.10);
  SetRare("433.milc", 0.08);
  SetRare("471.omnetpp", 0.06);
  SetRare("450.soplex", 0.06);
  SetRare("434.zeusmp", 0.05);
  SetRare("410.bwaves", 0.04);
  return Catalog;
}

} // namespace

const std::vector<BenchmarkInfo> &mdabt::workloads::specCatalog() {
  static const std::vector<BenchmarkInfo> Catalog = buildTunedCatalog();
  return Catalog;
}

const BenchmarkInfo *mdabt::workloads::findBenchmark(std::string_view Name) {
  for (const BenchmarkInfo &B : specCatalog())
    if (Name == B.Name)
      return &B;
  return nullptr;
}

std::vector<const BenchmarkInfo *> mdabt::workloads::selectedBenchmarks() {
  std::vector<const BenchmarkInfo *> Out;
  for (const BenchmarkInfo &B : specCatalog())
    if (B.Selected)
      Out.push_back(&B);
  return Out;
}

ProgramPlan mdabt::workloads::makePlan(const BenchmarkInfo &Info,
                                       const ScaleConfig &Scale) {
  const uint32_t R = Scale.Rounds;
  ProgramPlan Plan;
  Plan.Name = Info.Name;
  Plan.Rounds = R;
  Plan.Seed = hashName(Info.Name);

  // ---- scaled targets -------------------------------------------------------
  double Ratio = Info.PaperRatio;
  double MisTargetD =
      std::max({Ratio * static_cast<double>(Scale.TotalRefs),
                static_cast<double>(Info.PaperNmi), 32.0});
  MisTargetD = std::min(MisTargetD,
                        Scale.MaxMisFraction *
                            static_cast<double>(Scale.TotalRefs));
  uint64_t MisTarget = static_cast<uint64_t>(MisTargetD);
  uint32_t NmiEff = static_cast<uint32_t>(
      std::min<uint64_t>(Info.PaperNmi, MisTarget));

  uint64_t MisBudget = MisTarget;
  uint32_t SitesUsed = 0;

  // ---- late-onset group: escapes dynamic profiling (Table III) -------------
  double DynMis = Info.dynEscapeFrac() * MisTargetD;
  if (DynMis >= 16.0) {
    SiteGroup G;
    G.Size = Info.Size;
    G.Bias = BiasKind::Always;
    uint32_t MaxSites = std::max(1u, NmiEff / 8);
    if (DynMis >= 2500.0) {
      // Heavy escaper (bwaves/xalancbmk class): onset so deep that even
      // TH=5000 profiling cannot see it (paper: bwaves would need a
      // threshold of 266K).
      G.OnsetRound = R - 2;
      const uint32_t MinIpr = 1250; // onset execution > 5000
      G.Sites = static_cast<uint32_t>(std::clamp<uint64_t>(
          static_cast<uint64_t>(DynMis / (2.0 * MinIpr)), 1, MaxSites));
      G.ItersPerRound = std::max(
          MinIpr, static_cast<uint32_t>(DynMis / (G.Sites * 2.0)));
    } else {
      // Light escaper: onset past the standard TH=50 window is enough
      // to keep the count faithful without inflating it.
      G.OnsetRound = R - 1;
      G.Sites = static_cast<uint32_t>(std::clamp<uint64_t>(
          static_cast<uint64_t>(DynMis / 32.0), 1, MaxSites));
      G.ItersPerRound = std::max(
          32u, static_cast<uint32_t>(DynMis / G.Sites));
    }
    Plan.Groups.push_back(G);
    SitesUsed += G.Sites;
    MisBudget -= std::min<uint64_t>(MisBudget, G.expectedMdas(R));
  }

  // ---- ref-only group: escapes the train profile (Table IV) ----------------
  double TrainMis = Info.trainEscapeFrac() * MisTargetD;
  if (TrainMis >= 16.0) {
    SiteGroup G;
    G.Size = Info.Size;
    G.Bias = BiasKind::Always;
    G.OnsetRound = 0;
    G.RefOnly = true;
    uint32_t MaxSites = std::max(1u, NmiEff / 4);
    G.Sites = static_cast<uint32_t>(std::clamp<uint64_t>(
        static_cast<uint64_t>(TrainMis / (8.0 * 32)), 1, MaxSites));
    G.ItersPerRound =
        std::max(8u, static_cast<uint32_t>(TrainMis / (G.Sites * 8.0)));
    Plan.Groups.push_back(G);
    SitesUsed += G.Sites;
    MisBudget -= std::min<uint64_t>(MisBudget, G.expectedMdas(R));
  }

  // ---- early-onset group: needs TH > 10 to be profiled (Fig. 10) -----------
  // Capped in absolute terms: early-onset behaviour is a property of a
  // few warm-up-phase instructions, not of the whole MDA population.
  double EarlyMis = std::min(Info.EarlyOnsetFrac * MisTargetD,
                             0.002 * static_cast<double>(Scale.TotalRefs));
  if (EarlyMis >= 16.0) {
    SiteGroup G;
    G.Size = Info.Size;
    G.Bias = BiasKind::Always;
    G.OnsetRound = 1;
    G.ItersPerRound = 24; // onset at execution 24: TH=10 misses, TH=50 sees
    uint32_t MaxSites = std::max(1u, NmiEff / 8);
    G.Sites = static_cast<uint32_t>(std::clamp<uint64_t>(
        static_cast<uint64_t>(EarlyMis / (24.0 * (R - 1))), 1, MaxSites));
    Plan.Groups.push_back(G);
    SitesUsed += G.Sites;
    MisBudget -= std::min<uint64_t>(MisBudget, G.expectedMdas(R));
  }

  // ---- rare-misalignment group: high-traffic sites that are almost
  // always aligned (1/16 misaligned) — the multi-version target
  // population (Fig. 14).  Their misaligned accesses come out of the
  // global budget, which caps how much traffic low-ratio benchmarks can
  // route through them.
  if (Info.FracRareRefs > 0.0) {
    uint64_t RareRefs = static_cast<uint64_t>(
        Info.FracRareRefs * static_cast<double>(Scale.TotalRefs));
    uint64_t RareMis = std::min<uint64_t>(RareRefs / 16, MisBudget / 4);
    if (RareMis >= 16) {
      SiteGroup G;
      G.Size = Info.Size;
      G.Bias = BiasKind::Rare;
      G.OnsetRound = 0;
      G.Sites = static_cast<uint32_t>(
          std::clamp<uint64_t>(NmiEff / 16, 2, 8));
      uint64_t Ipr = RareMis * 16 / (static_cast<uint64_t>(G.Sites) * R);
      G.ItersPerRound =
          static_cast<uint32_t>(std::max<uint64_t>(16, Ipr & ~15ULL));
      Plan.Groups.push_back(G);
      SitesUsed += G.Sites;
      MisBudget -= std::min<uint64_t>(MisBudget, G.expectedMdas(R));
    }
  }

  // ---- showcase group: preserves the census NMI.  Gated sections whose
  // sites only execute while misaligned (per-instruction ratio 100%,
  // matching Fig. 15's dominant class) and whose blocks are too cold to
  // ever become hot (policy-neutral beyond the census).
  //
  // Budget split: each hot site wants ~64 MDAs (iteration floor 8 x 8
  // rounds); whatever the hot population cannot absorb funds showcase
  // sites at 1-4 MDAs each.
  uint32_t SitesAvail = NmiEff > SitesUsed ? NmiEff - SitesUsed : 1;
  uint32_t HotTarget = static_cast<uint32_t>(std::clamp<uint64_t>(
      MisBudget / 64, 1, std::min(SitesAvail, 24u)));
  // NMI fidelity first: shrink the hot population until the showcase
  // allowance (budget - 64*hot) can fund one MDA per remaining site.
  uint64_t NmiCap = MisBudget > SitesAvail
                        ? (MisBudget - SitesAvail) / 63
                        : 0;
  HotTarget = static_cast<uint32_t>(
      std::min<uint64_t>(HotTarget, NmiCap));
  if (MisBudget < 128)
    HotTarget = 0; // too poor for a hot loop: census sites only
  uint32_t ShowSites = SitesAvail > HotTarget ? SitesAvail - HotTarget : 0;
  uint64_t ShowAllowance =
      MisBudget > static_cast<uint64_t>(HotTarget) * 64
          ? MisBudget - static_cast<uint64_t>(HotTarget) * 64
          : 0;
  ShowSites = static_cast<uint32_t>(
      std::min<uint64_t>(ShowSites, ShowAllowance));
  if (ShowSites > 0) {
    SiteGroup G;
    G.Size = Info.Size;
    G.Bias = BiasKind::Always;
    G.GatedIters = true;
    G.ItersPerRound = 1;
    uint32_t Active = static_cast<uint32_t>(std::clamp<uint64_t>(
        ShowAllowance / (2 * ShowSites), 1, 4));
    G.Sites = ShowSites;
    G.OnsetRound = R - Active;
    Plan.Groups.push_back(G);
    SitesUsed += G.Sites;
    MisBudget -= std::min<uint64_t>(MisBudget, G.expectedMdas(R));
  }

  // ---- stable hot groups with the Fig. 15 bias mix --------------------------
  if (MisBudget > 0 && HotTarget > 0) {
    uint32_t HotSites = HotTarget;
    uint32_t AvailHot = SitesAvail > ShowSites ? SitesAvail - ShowSites : 1;
    HotSites = std::min(HotSites, std::max(1u, AvailHot));

    struct BiasShare {
      BiasKind Bias;
      double Frac;
    };
    const BiasShare Shares[] = {
        {BiasKind::Above50, Info.FracAbove50},
        {BiasKind::Equal50, Info.FracEqual50},
        {BiasKind::Below50, Info.FracBelow50},
        {BiasKind::Always,
         std::max(0.0, 1.0 - Info.FracAbove50 - Info.FracEqual50 -
                           Info.FracBelow50)},
    };
    // One site minimum per nonzero class when the population is big
    // enough; tiny populations collapse to Always-only.
    uint32_t SiteCounts[4] = {};
    if (HotSites >= 8) {
      uint32_t Assigned = 0;
      for (int I = 0; I != 3; ++I) {
        SiteCounts[I] = static_cast<uint32_t>(
            std::round(Shares[I].Frac * HotSites));
        if (Shares[I].Frac > 0 && SiteCounts[I] == 0)
          SiteCounts[I] = 1;
        Assigned += SiteCounts[I];
      }
      SiteCounts[3] = HotSites > Assigned ? HotSites - Assigned : 1;
    } else {
      SiteCounts[3] = HotSites;
    }

    double Weighted = 0;
    for (int I = 0; I != 4; ++I)
      Weighted += SiteCounts[I] * biasFraction(Shares[I].Bias);
    uint32_t Ipr = static_cast<uint32_t>(std::clamp<double>(
        static_cast<double>(MisBudget) / (R * std::max(1.0, Weighted)), 8,
        1000000));
    for (int I = 0; I != 4; ++I) {
      if (SiteCounts[I] == 0)
        continue;
      SiteGroup G;
      G.Size = Info.Size;
      G.Bias = Shares[I].Bias;
      G.OnsetRound = 0;
      G.Sites = SiteCounts[I];
      G.ItersPerRound = Ipr;
      Plan.Groups.push_back(G);
    }
  }

  // ---- aligned filler: total-reference budget + Fig. 10 heat ---------------
  uint64_t RefsSoFar = 0;
  for (const SiteGroup &G : Plan.Groups)
    RefsSoFar += G.expectedRefs(R);
  if (RefsSoFar < Scale.TotalRefs) {
    uint64_t Needed = Scale.TotalRefs - RefsSoFar;
    SiteGroup G;
    G.Size = 4;
    G.Bias = BiasKind::Aligned;
    G.OnsetRound = R; // never misaligned
    uint32_t Sections = std::max(1u, Info.FillerSections);
    G.Sites = Sections * 4;
    G.ItersPerRound = std::max(
        8u, static_cast<uint32_t>(Needed / (static_cast<uint64_t>(G.Sites) * R)));
    G.StoreEvery = 4;
    G.SitesPerSection = 4; // few, very hot blocks
    Plan.Groups.push_back(G);
  }

  return Plan;
}
