//===- workloads/Hostile.h - Hostile-guest workload generator --*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adversarial guest programs for the hostile-guest hardening work:
/// self-modifying kernels, phase-shifting MDA-census guests, and a
/// retranslation-churn adversary.  All are deterministic and
/// byte-identical against the interpreter oracle under every MDA
/// policy; what they attack is the *translation side* — code-cache
/// coherence, analysis soundness, and resource consumption.
///
/// Coherence contract honoured by every generator: a program only
/// rewrites the code of *other* basic blocks, never its own, and the
/// rewritten block is re-entered through a block boundary after the
/// store.  (The engine guarantees rewritten code takes effect no later
/// than the next block boundary — the classic pre-P6 x86 rule — and
/// the interpreter oracle fetches fresh bytes every instruction, so
/// under this contract the two are observationally identical.)
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_WORKLOADS_HOSTILE_H
#define MDABT_WORKLOADS_HOSTILE_H

#include "guest/GuestImage.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mdabt {
namespace workloads {

/// Self-modifying kernel: a patcher loop rewrites the imm32 of a hot
/// worker block's `movri` every iteration (plus misaligned load/store
/// traffic through the MDA machinery).  Once the worker is translated,
/// every patch store must hit the write barrier and invalidate it —
/// \p Iters invalidation/retranslation cycles.
guest::GuestImage smcFlipProgram(uint32_t Iters);

/// Phase-shifting MDA-census guest exercising *verdict revocation*:
/// block X materializes the base pointer (`movri ebp, Buf`), block W
/// loads through it at a 4-aligned displacement.  With analysis on, W's
/// site is provably Aligned (Elide) via X's constant.  At iteration
/// \p ShiftAt the program patches X's imm32 to Buf+1: the rewritten
/// bytes sit in X, not W, so only re-analysis (not the instruction
/// identity guard) can discover that W's Elide proof is dead.  The
/// engine must revoke it before W's next translation-driven dispatch.
/// \p ShiftAt must be < \p Iters (iterations count down from Iters).
guest::GuestImage smcPhaseProgram(uint32_t Iters, uint32_t ShiftAt);

/// Retranslation-churn adversary: \p Workers hot worker blocks, each
/// patched on *every* circuit of the driver loop.  Unbounded
/// translation count and monotone code-cache growth unless the budget
/// ceilings (EngineConfig::Budget) or the per-block SMC churn pin
/// contain it.
guest::GuestImage smcChurnProgram(uint32_t Workers, uint32_t Iters);

/// One named hostile program.
struct HostileProgram {
  std::string Name;
  guest::GuestImage Image;
};

/// The standard hostile-guest suite (used by bench/ablation_smc and
/// the chaos SMC-storm campaigns).
std::vector<HostileProgram> hostileCatalog();

} // namespace workloads
} // namespace mdabt

#endif // MDABT_WORKLOADS_HOSTILE_H
