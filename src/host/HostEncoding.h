//===- host/HostEncoding.h - HAlpha word encoder / decoder -----*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed 32-bit instruction words, Alpha style:
///
///   memory  : [op:6][ra:5][rb:5][disp:16 signed]
///   operate : [op:6][ra:5][rb:5][0:3][L=0:1][0:7][rc:5]   register form
///             [op:6][ra:5][lit:8][L=1:1][0:7][rc:5]        literal form
///   branch  : [op:6][ra:5][disp:21 signed, in words]
///   service : [op:6][0:5][0:5][func:16]
///
/// The exception handler decodes the *word in the code cache* to learn
/// the base register and displacement of a faulting memory operation —
/// exactly what the paper's handler does on Alpha — so the encoding must
/// round-trip everything the translator emits.  Tests sweep the space.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_HOST_HOSTENCODING_H
#define MDABT_HOST_HOSTENCODING_H

#include "host/HostISA.h"

#include <cstdint>
#include <string>

namespace mdabt {
namespace host {

/// A decoded HAlpha instruction.
struct HostInst {
  HostOp Op = HostOp::Lda;
  uint8_t Ra = 0;
  uint8_t Rb = 0;
  uint8_t Rc = 0;
  bool IsLit = false; ///< operate form uses an 8-bit literal as operand B
  uint8_t Lit = 0;
  int32_t Disp = 0; ///< disp16 (memory/service) or disp21 (branch, words)
};

/// Encode to a 32-bit word.  Asserts on field overflow.
uint32_t encodeHost(const HostInst &Inst);

/// Decode a 32-bit word.  Returns false for an invalid opcode.
bool decodeHost(uint32_t Word, HostInst &Inst);

// Construction helpers used by the assembler and the exception handler.
HostInst memInst(HostOp Op, uint8_t Ra, int32_t Disp, uint8_t Rb);
HostInst opInst(HostOp Op, uint8_t Ra, uint8_t Rb, uint8_t Rc);
HostInst opInstLit(HostOp Op, uint8_t Ra, uint8_t Lit, uint8_t Rc);
HostInst brInst(HostOp Op, uint8_t Ra, int32_t DispWords);
HostInst srvInst(SrvFunc Func);

/// Disassemble for diagnostics; \p WordIndex renders branch targets.
std::string disassembleHost(const HostInst &Inst, uint32_t WordIndex);

} // namespace host
} // namespace mdabt

#endif // MDABT_HOST_HOSTENCODING_H
