//===- host/CodeSpace.h - Host code memory (the code cache arena) -*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backing store for translated host code: a growable arena of 32-bit
/// instruction words with a virtual byte base address (used by the I-cache
/// model, so that the *placement* of translated code and out-of-line MDA
/// stubs has the spatial-locality consequences the paper's code
/// rearrangement targets).  Patching an individual word is how the
/// misalignment exception handler redirects a faulting memory operation
/// to its MDA code sequence (paper Fig. 5), and how block chaining links
/// translated blocks.
///
/// Each word is *predecoded* when it enters the arena: the host machine
/// simulator executes the same instruction billions of times, so
/// decoding once at install instead of once per simulated cycle is the
/// dominant host-simulator optimization.  The invariant maintained here
/// is `Decoded[i] == decodeHost(Words[i])` at all times; every mutation
/// path (append, patch — including hook-torn writes — and clear)
/// re-derives the entry from the word actually stored, so stub
/// patching, chaining, unchaining, adaptive reverts and cache flushes
/// can never leave a stale instruction behind.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_HOST_CODESPACE_H
#define MDABT_HOST_CODESPACE_H

#include "host/HostEncoding.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

namespace mdabt {
namespace host {

/// A growable arena of host instruction words.
class CodeSpace {
public:
  /// One predecoded arena word.  Valid is false when the stored word
  /// does not decode (e.g. a torn write caught before rollback); such a
  /// word must never become executable, and the host machine asserts on
  /// it exactly as it would have on a per-cycle decode failure.
  struct DecodedWord {
    HostInst Inst;
    bool Valid = false;
  };

  /// \p BaseAddr is the virtual byte address of word 0 (only the I-cache
  /// model consumes it).
  explicit CodeSpace(uint64_t BaseAddr = 0x40000000)
      : Base(BaseAddr) {}

  /// Append one word; returns its word index.
  uint32_t append(uint32_t Word) {
    Words.push_back(Word);
    Decoded.emplace_back();
    Decoded.back().Valid = decodeHost(Word, Decoded.back().Inst);
    return static_cast<uint32_t>(Words.size() - 1);
  }

  uint32_t size() const { return static_cast<uint32_t>(Words.size()); }

  uint32_t word(uint32_t Index) const {
    assert(Index < Words.size() && "code fetch out of range");
    return Words[Index];
  }

  /// Interception hook for patch(): fault injection uses it to model
  /// dropped or torn code-cache writes.  Returning false drops the
  /// write; the hook may rewrite \p Word (a torn write).  Reads are
  /// never intercepted, so callers can verify a patch by reading it
  /// back (which the hardened engine does for every critical patch).
  using PatchHook = std::function<bool(uint32_t Index, uint32_t &Word)>;
  void setPatchHook(PatchHook H) { Hook = std::move(H); }

  /// Overwrite an existing word (exception-handler patching, chaining).
  /// The predecoded view is re-derived from the word actually stored —
  /// which the hook may have rewritten (torn write) — never from the
  /// requested one.
  void patch(uint32_t Index, uint32_t Word) {
    assert(Index < Words.size() && "code patch out of range");
    if (Hook && !Hook(Index, Word))
      return;
    Words[Index] = Word;
    Decoded[Index].Valid = decodeHost(Word, Decoded[Index].Inst);
  }

  /// Predecoded view of word \p Index (see the invariant above).  The
  /// reference is invalidated by append() (vector growth): callers that
  /// run code while the arena grows — the host machine, whose fault
  /// handler emits stubs — must copy the instruction out.
  const DecodedWord &decodedWord(uint32_t Index) const {
    assert(Index < Decoded.size() && "decoded fetch out of range");
    return Decoded[Index];
  }

  /// Virtual byte address of word \p Index.
  uint64_t byteAddr(uint32_t Index) const {
    return Base + static_cast<uint64_t>(Index) * 4;
  }

  /// Discard all code (a full code-cache flush, Dynamo-style).  Callers
  /// must ensure no translated code is executing.
  void clear() {
    Words.clear();
    Decoded.clear();
  }

  const uint32_t *data() const { return Words.data(); }

private:
  uint64_t Base;
  std::vector<uint32_t> Words;
  /// Predecoded mirror of Words (same size, same indices).
  std::vector<DecodedWord> Decoded;
  PatchHook Hook;
};

} // namespace host
} // namespace mdabt

#endif // MDABT_HOST_CODESPACE_H
