//===- host/HostAssembler.h - Label-based HAlpha emitter -------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits HAlpha words directly into a CodeSpace, with labels/fixups for
/// local branches and helpers for materializing 32-bit constants through
/// lda/ldah pairs.  Used by the translator, the MDA sequence emitter and
/// the misalignment exception handler.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_HOST_HOSTASSEMBLER_H
#define MDABT_HOST_HOSTASSEMBLER_H

#include "host/CodeSpace.h"
#include "host/HostEncoding.h"

#include <cstdint>
#include <vector>

namespace mdabt {
namespace host {

/// Streams instructions into the tail of a CodeSpace.
class HostAssembler {
public:
  using Label = uint32_t;

  explicit HostAssembler(CodeSpace &Code) : Code(Code) {}
  ~HostAssembler() { finish(); }

  /// Word index the next instruction will occupy.
  uint32_t pos() const { return Code.size(); }

  Label newLabel();
  void bind(Label L);

  /// Emit a raw instruction; returns its word index.
  uint32_t emit(const HostInst &Inst) { return Code.append(encodeHost(Inst)); }

  // Memory format.
  uint32_t lda(uint8_t Ra, int32_t Disp, uint8_t Rb) {
    return emit(memInst(HostOp::Lda, Ra, Disp, Rb));
  }
  uint32_t ldah(uint8_t Ra, int32_t Disp, uint8_t Rb) {
    return emit(memInst(HostOp::Ldah, Ra, Disp, Rb));
  }
  uint32_t mem(HostOp Op, uint8_t Ra, int32_t Disp, uint8_t Rb) {
    return emit(memInst(Op, Ra, Disp, Rb));
  }

  // Operate format (register and literal forms).
  uint32_t op(HostOp Op, uint8_t Ra, uint8_t Rb, uint8_t Rc) {
    return emit(opInst(Op, Ra, Rb, Rc));
  }
  uint32_t opl(HostOp Op, uint8_t Ra, uint8_t Lit, uint8_t Rc) {
    return emit(opInstLit(Op, Ra, Lit, Rc));
  }
  /// Register-to-register move (bis ra, ra, rc).
  uint32_t mov(uint8_t Src, uint8_t Dst) {
    return op(HostOp::Bis, Src, Src, Dst);
  }

  // Branch format, through labels.
  uint32_t br(Label L) { return emitBranch(HostOp::Br, RegZero, L); }
  uint32_t beq(uint8_t Ra, Label L) { return emitBranch(HostOp::Beq, Ra, L); }
  uint32_t bne(uint8_t Ra, Label L) { return emitBranch(HostOp::Bne, Ra, L); }
  uint32_t blt(uint8_t Ra, Label L) { return emitBranch(HostOp::Blt, Ra, L); }
  uint32_t bge(uint8_t Ra, Label L) { return emitBranch(HostOp::Bge, Ra, L); }
  /// Branch to an absolute word index (for stub returns and chaining).
  uint32_t brTo(uint32_t TargetWord) {
    int64_t Disp = static_cast<int64_t>(TargetWord) -
                   (static_cast<int64_t>(pos()) + 1);
    return emit(brInst(HostOp::Br, RegZero, static_cast<int32_t>(Disp)));
  }

  uint32_t srv(SrvFunc Func) { return emit(srvInst(Func)); }

  /// Load a 32-bit constant into \p Reg, zero-extended (GPR invariant).
  void materialize32(uint8_t Reg, uint32_t Value);
  /// Load sext64(int32 Value) into \p Reg (Q-register semantics).
  void materializeSext32(uint8_t Reg, int32_t Value);

  /// Resolve all label fixups.  Called automatically by the destructor;
  /// may be called explicitly (idempotent).  Asserts on unbound labels
  /// that have uses.
  void finish();

private:
  uint32_t emitBranch(HostOp Op, uint8_t Ra, Label L);

  CodeSpace &Code;
  static constexpr uint32_t Unbound = ~0u;
  std::vector<uint32_t> Labels;
  struct Fixup {
    uint32_t Word;
    Label Target;
  };
  std::vector<Fixup> Fixups;
};

} // namespace host
} // namespace mdabt

#endif // MDABT_HOST_HOSTASSEMBLER_H
