//===- host/HostAssembler.cpp ---------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "host/HostAssembler.h"

#include <cassert>

using namespace mdabt;
using namespace mdabt::host;

HostAssembler::Label HostAssembler::newLabel() {
  Labels.push_back(Unbound);
  return static_cast<Label>(Labels.size() - 1);
}

void HostAssembler::bind(Label L) {
  assert(L < Labels.size() && "unknown label");
  assert(Labels[L] == Unbound && "label bound twice");
  Labels[L] = pos();
}

uint32_t HostAssembler::emitBranch(HostOp Op, uint8_t Ra, Label L) {
  assert(L < Labels.size() && "unknown label");
  uint32_t Word = emit(brInst(Op, Ra, 0));
  Fixups.push_back({Word, L});
  return Word;
}

void HostAssembler::materialize32(uint8_t Reg, uint32_t Value) {
  if (Value <= 0x7fff) {
    lda(Reg, static_cast<int32_t>(Value), RegZero);
    return;
  }
  int32_t Lo = static_cast<int16_t>(Value & 0xffff);
  // (Value - Lo) mod 2^32 has zero low 16 bits; arithmetic shift keeps
  // the high part inside disp16 range.
  int32_t Hi = static_cast<int32_t>(Value - static_cast<uint32_t>(Lo)) >> 16;
  ldah(Reg, Hi, RegZero);
  if (Lo != 0)
    lda(Reg, Lo, Reg);
  // The lda/ldah pair computes sext64(Hi)*65536 + sext64(Lo); when that
  // 64-bit value is not zext32(Value), restore the GPR zero-extension
  // invariant.
  int64_t Sum = static_cast<int64_t>(Hi) * 65536 + Lo;
  if (Sum != static_cast<int64_t>(static_cast<uint64_t>(Value)))
    op(HostOp::Zextl, RegZero, Reg, Reg);
}

void HostAssembler::materializeSext32(uint8_t Reg, int32_t Value) {
  if (Value >= -32768 && Value <= 32767) {
    lda(Reg, Value, RegZero);
    return;
  }
  uint32_t U = static_cast<uint32_t>(Value);
  int32_t Lo = static_cast<int16_t>(U & 0xffff);
  int32_t Hi = static_cast<int32_t>(U - static_cast<uint32_t>(Lo)) >> 16;
  ldah(Reg, Hi, RegZero);
  if (Lo != 0)
    lda(Reg, Lo, Reg);
  int64_t Sum = static_cast<int64_t>(Hi) * 65536 + Lo;
  if (Sum != static_cast<int64_t>(Value))
    op(HostOp::Sextl, Reg, Reg, Reg);
}

void HostAssembler::finish() {
  for (const Fixup &F : Fixups) {
    uint32_t Target = Labels[F.Target];
    assert(Target != Unbound && "branch to unbound host label");
    HostInst I;
    [[maybe_unused]] bool Ok = decodeHost(Code.word(F.Word), I);
    assert(Ok && "fixup site does not decode");
    I.Disp = static_cast<int32_t>(Target) -
             (static_cast<int32_t>(F.Word) + 1);
    Code.patch(F.Word, encodeHost(I));
  }
  Fixups.clear();
}
