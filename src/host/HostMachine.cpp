//===- host/HostMachine.cpp -----------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "host/HostMachine.h"

#include <cassert>

using namespace mdabt;
using namespace mdabt::host;

namespace {

uint64_t sizeMask(unsigned Size) {
  return Size == 8 ? ~0ULL : (1ULL << (Size * 8)) - 1;
}

/// Size in bytes manipulated by an ext/ins/msk opcode.
unsigned fieldSize(HostOp Op) {
  switch (Op) {
  case HostOp::Extwl:
  case HostOp::Extwh:
  case HostOp::Inswl:
  case HostOp::Inswh:
  case HostOp::Mskwl:
  case HostOp::Mskwh:
    return 2;
  case HostOp::Extll:
  case HostOp::Extlh:
  case HostOp::Insll:
  case HostOp::Inslh:
  case HostOp::Mskll:
  case HostOp::Msklh:
    return 4;
  default:
    return 8;
  }
}

uint64_t zext32(uint64_t V) { return V & 0xffffffffULL; }

uint64_t sext32(uint64_t V) {
  return static_cast<uint64_t>(
      static_cast<int64_t>(static_cast<int32_t>(V)));
}

} // namespace

ExitInfo HostMachine::run(uint32_t EntryWord) {
  uint32_t Pc = EntryWord;
  uint64_t Executed = 0;
  StopArmed = false; // a stop armed last episode must not fire now

  for (;;) {
    CurWord = Pc;
    if (StopArmed && Pc == StopWord) {
      // Episode stop (stopAt): return before executing the stop word.
      StopArmed = false;
      return {ExitInfo::Stop, StopResumePc, Pc};
    }
    if (Executed >= MaxInstsPerRun)
      return {ExitInfo::Limit, 0};
    ++Executed;
    ++Instructions;
    Cycles += 1 + Hier.fetch(Code.byteAddr(Pc));

    // Fetch the predecoded instruction.  Copied by value: the fault
    // handler below may emit stubs (growing the arena and relocating
    // its storage) or patch this very word while we still consult I.
    HostInst I;
    if (UsePredecode) {
      const CodeSpace::DecodedWord &D = Code.decodedWord(Pc);
      assert(D.Valid && "executing an undecodable host word");
      I = D.Inst;
    } else {
      // Legacy decode-per-cycle path, kept selectable so
      // bench/micro_components can measure what predecoding buys.
      [[maybe_unused]] bool Ok = decodeHost(Code.word(Pc), I);
      assert(Ok && "executing an undecodable host word");
    }

    if (isMemFormat(I.Op)) {
      uint64_t Addr = reg(I.Rb) + static_cast<int64_t>(I.Disp);
      unsigned Align = alignmentOf(I.Op);
      if (accessesMemory(I.Op) && (Addr & (Align - 1)) != 0) {
        // Misalignment trap.
        ++Faults;
        Cycles += Cost.TrapCycles;
        FaultAction A =
            Handler ? Handler(FaultInfo{Pc, Addr, I}) : FaultAction::Fixup;
        if (A == FaultAction::Retry)
          continue; // re-execute the (now patched) word
        if (A == FaultAction::Halt)
          return {ExitInfo::Halt, 0};
        // Fixup: the handler emulates the unaligned access in software.
        ++Fixups;
        Cycles += Cost.FixupExtraCycles;
        unsigned Size = hostAccessSize(I.Op);
        assert(Mem.inRange(static_cast<uint32_t>(Addr), Size) &&
               "fixup access out of guest memory");
        Cycles += Hier.data(Addr);
        Cycles += Hier.data(Addr + Size - 1);
        if (isHostLoad(I.Op))
          setReg(I.Ra, Mem.load(static_cast<uint32_t>(Addr), Size));
        else
          Mem.store(static_cast<uint32_t>(Addr), Size, reg(I.Ra));
        ++Pc;
        continue;
      }

      switch (I.Op) {
      case HostOp::Lda:
        setReg(I.Ra, Addr);
        break;
      case HostOp::Ldah:
        setReg(I.Ra, reg(I.Rb) + (static_cast<int64_t>(I.Disp) << 16));
        break;
      case HostOp::Ldbu:
      case HostOp::Ldwu:
      case HostOp::Ldl:
      case HostOp::Ldq: {
        unsigned Size = hostAccessSize(I.Op);
        assert(Mem.inRange(static_cast<uint32_t>(Addr), Size) &&
               "host load out of guest memory");
        ++Loads;
        Cycles += Hier.data(Addr);
        setReg(I.Ra, Mem.load(static_cast<uint32_t>(Addr), Size));
        break;
      }
      case HostOp::LdqU: {
        uint64_t A = Addr & ~7ULL;
        assert(Mem.inRange(static_cast<uint32_t>(A), 8) &&
               "ldq_u out of guest memory");
        ++Loads;
        Cycles += Hier.data(A);
        setReg(I.Ra, Mem.load(static_cast<uint32_t>(A), 8));
        break;
      }
      case HostOp::Stb:
      case HostOp::Stw:
      case HostOp::Stl:
      case HostOp::Stq: {
        unsigned Size = hostAccessSize(I.Op);
        assert(Mem.inRange(static_cast<uint32_t>(Addr), Size) &&
               "host store out of guest memory");
        ++Stores;
        Cycles += Hier.data(Addr);
        Mem.store(static_cast<uint32_t>(Addr), Size, reg(I.Ra));
        break;
      }
      case HostOp::StqU: {
        uint64_t A = Addr & ~7ULL;
        assert(Mem.inRange(static_cast<uint32_t>(A), 8) &&
               "stq_u out of guest memory");
        ++Stores;
        Cycles += Hier.data(A);
        Mem.store(static_cast<uint32_t>(A), 8, reg(I.Ra));
        break;
      }
      default:
        assert(false && "unhandled memory opcode");
      }
      ++Pc;
      continue;
    }

    if (isOperateFormat(I.Op)) {
      uint64_t A = reg(I.Ra);
      uint64_t B = operandB(I);
      uint64_t V = 0;
      switch (I.Op) {
      case HostOp::Addq:
        V = A + B;
        break;
      case HostOp::Subq:
        V = A - B;
        break;
      case HostOp::Addl:
        V = zext32(A + B);
        break;
      case HostOp::Subl:
        V = zext32(A - B);
        break;
      case HostOp::Mull:
        V = zext32(A * B);
        break;
      case HostOp::Mulq:
        V = A * B;
        break;
      case HostOp::And:
        V = A & B;
        break;
      case HostOp::Bis:
        V = A | B;
        break;
      case HostOp::Xor:
        V = A ^ B;
        break;
      case HostOp::Sll:
        V = A << (B & 63);
        break;
      case HostOp::Srl:
        V = A >> (B & 63);
        break;
      case HostOp::Sra:
        V = static_cast<uint64_t>(static_cast<int64_t>(A) >> (B & 63));
        break;
      case HostOp::Cmpeq:
        V = A == B;
        break;
      case HostOp::Cmpult:
        V = A < B;
        break;
      case HostOp::Cmpule:
        V = A <= B;
        break;
      case HostOp::Cmplt:
        V = static_cast<int64_t>(A) < static_cast<int64_t>(B);
        break;
      case HostOp::Cmple:
        V = static_cast<int64_t>(A) <= static_cast<int64_t>(B);
        break;
      case HostOp::Cmplt32:
        V = static_cast<int32_t>(A) < static_cast<int32_t>(B);
        break;
      case HostOp::Cmple32:
        V = static_cast<int32_t>(A) <= static_cast<int32_t>(B);
        break;
      case HostOp::Sextl:
        V = sext32(B);
        break;
      case HostOp::Zextl:
        V = zext32(B);
        break;
      default: {
        // The unaligned-access toolkit.
        unsigned Size = fieldSize(I.Op);
        unsigned Sh = B & 7;
        uint64_t Mask = sizeMask(Size);
        switch (I.Op) {
        case HostOp::Extwl:
        case HostOp::Extll:
        case HostOp::Extql:
          V = (A >> (8 * Sh)) & Mask;
          break;
        case HostOp::Extwh:
        case HostOp::Extlh:
        case HostOp::Extqh:
          V = Sh == 0 ? 0 : (A << (8 * (8 - Sh))) & Mask;
          break;
        case HostOp::Inswl:
        case HostOp::Insll:
        case HostOp::Insql:
          V = (A & Mask) << (8 * Sh);
          break;
        case HostOp::Inswh:
        case HostOp::Inslh:
        case HostOp::Insqh:
          V = Sh == 0 ? 0 : (A & Mask) >> (8 * (8 - Sh));
          break;
        case HostOp::Mskwl:
        case HostOp::Mskll:
        case HostOp::Mskql:
          V = A & ~(Mask << (8 * Sh));
          break;
        case HostOp::Mskwh:
        case HostOp::Msklh:
        case HostOp::Mskqh:
          V = Sh == 0 ? A : A & ~(Mask >> (8 * (8 - Sh)));
          break;
        default:
          assert(false && "unhandled operate opcode");
        }
        break;
      }
      }
      setReg(I.Rc, V);
      ++Pc;
      continue;
    }

    if (isBranchFormat(I.Op)) {
      bool Taken = false;
      int64_t A = static_cast<int64_t>(reg(I.Ra));
      switch (I.Op) {
      case HostOp::Br:
        Taken = true;
        break;
      case HostOp::Beq:
        Taken = A == 0;
        break;
      case HostOp::Bne:
        Taken = A != 0;
        break;
      case HostOp::Blt:
        Taken = A < 0;
        break;
      case HostOp::Bge:
        Taken = A >= 0;
        break;
      default:
        assert(false && "unhandled branch opcode");
      }
      Pc = Pc + 1 + (Taken ? static_cast<uint32_t>(I.Disp) : 0);
      continue;
    }

    assert(I.Op == HostOp::Srv && "unhandled host opcode");
    switch (static_cast<SrvFunc>(I.Disp)) {
    case SrvFunc::Exit:
      return {ExitInfo::Exit, static_cast<uint32_t>(reg(RegExitPc)), Pc};
    case SrvFunc::Halt:
      return {ExitInfo::Halt, 0, Pc};
    }
    assert(false && "unknown service function");
  }
}
