//===- host/MdaSequences.h - The paper's MDA code sequences ----*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emitters for the "MDA code sequence" (paper section III-A, Fig. 2):
/// the ldq_u / ext / ins / msk / stq_u idioms that perform a possibly
/// misaligned 2/4/8-byte access without ever issuing a trapping memory
/// operation.  These sequences are used by:
///   - the Direct method (every non-byte memory op becomes one),
///   - profile-guided translation (selected ops become one),
///   - the misalignment exception handler (generated into the code cache
///     and patched in, paper Fig. 5),
///   - multi-version code (the misaligned arm, paper Fig. 8).
///
/// Sequences clobber only the MDA temporaries (RegMdaT0..T4) and write
/// the load destination last, so the destination may alias the base
/// register, and a base register living in translator scratch survives.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_HOST_MDASEQUENCES_H
#define MDABT_HOST_MDASEQUENCES_H

#include "host/HostAssembler.h"

#include <cstdint>

namespace mdabt {
namespace host {

/// Emit the unaligned-load sequence: Ra = zext(load Size bytes at
/// Rb + Disp).  Size must be 2, 4 or 8.  Requires Disp + Size - 1 to fit
/// in disp16 (the caller folds large displacements into the base first).
void emitMdaLoad(HostAssembler &Asm, unsigned Size, uint8_t Ra, uint8_t Rb,
                 int32_t Disp);

/// Emit the unaligned-store sequence: store low Size bytes of Rv at
/// Rb + Disp.  Size must be 2, 4 or 8.
void emitMdaStore(HostAssembler &Asm, unsigned Size, uint8_t Rv, uint8_t Rb,
                  int32_t Disp);

/// Number of host instructions emitMdaLoad will emit.
unsigned mdaLoadLength();
/// Number of host instructions emitMdaStore will emit.
unsigned mdaStoreLength();

/// Opcode selectors for a given access size.
HostOp extLowOp(unsigned Size);
HostOp extHighOp(unsigned Size);
HostOp insLowOp(unsigned Size);
HostOp insHighOp(unsigned Size);
HostOp mskLowOp(unsigned Size);
HostOp mskHighOp(unsigned Size);

} // namespace host
} // namespace mdabt

#endif // MDABT_HOST_MDASEQUENCES_H
