//===- host/HostMachine.h - HAlpha machine simulator -----------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes translated host code out of a CodeSpace against the guest's
/// memory image, with cycle accounting (1 cycle/instruction + cache
/// penalties) and — the crux of the paper — *misalignment traps*: a
/// naturally-aligned memory opcode applied to a misaligned address
/// suspends execution, charges the trap cost, and calls the registered
/// fault handler, which stands in for the OS delivering the misalignment
/// exception to the BT runtime (paper Fig. 4, right side).
///
/// The handler chooses one of three outcomes:
///  - Retry: it patched the code cache (exception-handling method); the
///    machine re-executes at the same PC, now hitting the patched branch;
///  - Fixup: emulate-and-continue (what profiling-based methods do for
///    every residual MDA): the machine performs the access in software
///    and resumes after the instruction;
///  - Halt: abandon execution (tests only).
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_HOST_HOSTMACHINE_H
#define MDABT_HOST_HOSTMACHINE_H

#include "guest/GuestMemory.h"
#include "host/CodeSpace.h"
#include "host/CostModel.h"
#include "host/HostEncoding.h"
#include "support/CacheModel.h"

#include <cstdint>
#include <functional>

namespace mdabt {
namespace host {

/// What the fault handler decided.
enum class FaultAction {
  Retry, ///< code was patched; re-execute the same word
  Fixup, ///< emulate the access in the handler and continue
  Halt,  ///< abandon the run
};

/// Delivered to the fault handler on a misalignment trap.
struct FaultInfo {
  uint32_t HostPc = 0; ///< word index of the faulting instruction
  uint64_t Addr = 0;   ///< the misaligned data address
  HostInst Inst;       ///< the decoded faulting instruction
};

/// Why run() returned.
struct ExitInfo {
  enum Kind {
    Exit,  ///< Srv Exit: back to the monitor, next guest PC captured
    Halt,  ///< Srv Halt or handler said Halt
    Limit, ///< instruction budget exhausted (runaway guard)
    /// Armed episode stop reached (stopAt): the BT runtime asked to
    /// end the run before executing the stop word — used when a guest
    /// store invalidated the running translation (SMC) and execution
    /// must resume via fresh dispatch.  GuestPc holds the resume PC.
    Stop,
  };
  Kind K = Halt;
  uint32_t GuestPc = 0; ///< valid for Kind::Exit
  /// Word index of the Srv instruction that ended the run (valid for
  /// Exit); the monitor uses it to chain the exit site to its target.
  uint32_t SrvWord = 0;
};

/// The host machine.
class HostMachine {
public:
  using FaultHandler = std::function<FaultAction(const FaultInfo &)>;

  HostMachine(CodeSpace &Code, guest::GuestMemory &Mem,
              MemoryHierarchy &Hier, const CostModel &Cost)
      : Code(Code), Mem(Mem), Hier(Hier), Cost(Cost) {}

  void setFaultHandler(FaultHandler H) { Handler = std::move(H); }

  /// Execute starting at word index \p EntryWord until a service exit.
  ExitInfo run(uint32_t EntryWord);

  /// Register file (R31 reads as zero regardless of content).
  uint64_t R[NumRegs] = {};

  uint64_t reg(unsigned Idx) const {
    return Idx == RegZero ? 0 : R[Idx];
  }
  void setReg(unsigned Idx, uint64_t V) {
    if (Idx != RegZero)
      R[Idx] = V;
  }

  /// Charge extra cycles (used by fault handlers for codegen work).
  void addCycles(uint64_t N) { Cycles += N; }

  /// Word being executed right now.  Valid only while run() is active;
  /// the engine's SMC write barrier consults it (from inside a store's
  /// watcher callback) to detect a store issued by the running
  /// translation itself.
  uint32_t currentWord() const { return CurWord; }

  /// Arm a one-shot episode stop: when control reaches \p Word, run()
  /// returns ExitInfo::Stop carrying \p ResumePc *before* executing
  /// that word.  Cleared at every run() entry and when it fires.
  void stopAt(uint32_t Word, uint32_t ResumePc) {
    StopArmed = true;
    StopWord = Word;
    StopResumePc = ResumePc;
  }

  // Accounting.
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Faults = 0;
  uint64_t Fixups = 0;
  /// Runaway guard: one run() may not exceed this many instructions.
  uint64_t MaxInstsPerRun = 1ULL << 33;
  /// Fetch instructions from the CodeSpace's predecoded view (decode
  /// once at install) instead of decoding the raw word every simulated
  /// cycle.  Execution is bit-identical either way — decoding is not
  /// cycle-charged — so this stays on everywhere; micro_components
  /// turns it off to measure the host-simulator speedup it provides.
  bool UsePredecode = true;

private:
  uint64_t operandB(const HostInst &I) const {
    return I.IsLit ? I.Lit : reg(I.Rb);
  }

  uint32_t CurWord = 0;
  bool StopArmed = false;
  uint32_t StopWord = 0;
  uint32_t StopResumePc = 0;

  CodeSpace &Code;
  guest::GuestMemory &Mem;
  MemoryHierarchy &Hier;
  const CostModel &Cost;
  FaultHandler Handler;
};

} // namespace host
} // namespace mdabt

#endif // MDABT_HOST_HOSTMACHINE_H
