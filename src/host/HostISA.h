//===- host/HostISA.h - The HAlpha host instruction set --------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HAlpha: the Alpha-flavoured host ISA.  Like the real Alpha it has
/// 32 x 64-bit registers with R31 hardwired to zero, fixed 32-bit
/// instruction words, *strict natural alignment* for ldw/ldl/ldq and the
/// corresponding stores (misalignment raises a trap), and the unaligned
/// access toolkit the paper's MDA code sequences are built from:
/// ldq_u/stq_u plus the ext/ins/msk byte-manipulation families.
///
/// Deviations from real Alpha, chosen to keep the translator simple and
/// documented in DESIGN.md: 32-bit operates (addl/subl/mull, ldl) zero-
/// extend instead of sign-extending (matching the guest's zero-extension
/// invariant), and opcode numbering is our own.  Neither deviation
/// affects any mechanism the paper evaluates.
///
/// Register conventions used by the translator (paper: "register 21-30
/// of Alpha are used as temporal registers in BT"):
///   R1..R8   guest GPRs EAX..EDI
///   R9..R16  guest Q registers
///   R17      guest checksum accumulator
///   R18..R20 translator scratch (address/operand computation)
///   R21..R23, R25, R26   MDA-sequence temporaries
///   R24      guest next-PC on block exit
///   R27, R28 multi-version scratch
///   R31      zero
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_HOST_HOSTISA_H
#define MDABT_HOST_HOSTISA_H

#include <cstdint>

namespace mdabt {
namespace host {

/// Number of host registers.
inline constexpr unsigned NumRegs = 32;
/// The zero register.
inline constexpr unsigned RegZero = 31;

// Translator register conventions.
inline constexpr unsigned RegGprBase = 1;  ///< R1..R8 = guest GPR0..7
inline constexpr unsigned RegQBase = 9;    ///< R9..R16 = guest Q0..7
inline constexpr unsigned RegChecksum = 17;
inline constexpr unsigned RegScratch0 = 18;
inline constexpr unsigned RegScratch1 = 19;
inline constexpr unsigned RegScratch2 = 20;
inline constexpr unsigned RegMdaT0 = 21;
inline constexpr unsigned RegMdaT1 = 22;
inline constexpr unsigned RegMdaT2 = 23;
inline constexpr unsigned RegExitPc = 24;
inline constexpr unsigned RegMdaT3 = 25;
inline constexpr unsigned RegMdaT4 = 26;
inline constexpr unsigned RegMvT0 = 27;
inline constexpr unsigned RegMvT1 = 28;

/// HAlpha opcodes (6-bit field).
enum class HostOp : uint8_t {
  // Memory format: ra, disp16(rb)
  Lda = 0,  ///< ra = rb + sext(disp)
  Ldah = 1, ///< ra = rb + sext(disp) * 65536
  Ldbu = 2,
  Ldwu = 3, ///< traps unless addr % 2 == 0
  Ldl = 4,  ///< traps unless addr % 4 == 0; zero-extends
  Ldq = 5,  ///< traps unless addr % 8 == 0
  LdqU = 6, ///< loads quad at addr & ~7; never traps
  Stb = 7,
  Stw = 8,  ///< traps unless addr % 2 == 0
  Stl = 9,  ///< traps unless addr % 4 == 0
  Stq = 10, ///< traps unless addr % 8 == 0
  StqU = 11, ///< stores quad at addr & ~7; never traps

  // Operate format: ra op (rb|lit8) -> rc
  Addq = 16,
  Subq = 17,
  Addl = 18, ///< 32-bit add, zero-extended result
  Subl = 19,
  Mull = 20,
  Mulq = 21,
  And = 22,
  Bis = 23, ///< inclusive or
  Xor = 24,
  Sll = 25,
  Srl = 26,
  Sra = 27,
  Cmpeq = 28,
  Cmpult = 29,
  Cmpule = 30,
  Cmplt = 31,   ///< 64-bit signed
  Cmple = 32,   ///< 64-bit signed
  Cmplt32 = 33, ///< signed compare of low 32 bits
  Cmple32 = 34,
  Sextl = 35, ///< rc = sext32(rb operand)
  Zextl = 36, ///< rc = zext32(rb operand)

  // The unaligned-access toolkit (operate format; shift = low 3 bits of
  // the rb operand, i.e. of the data address).
  Extwl = 40,
  Extwh = 41,
  Extll = 42,
  Extlh = 43,
  Extql = 44,
  Extqh = 45,
  Inswl = 46,
  Inswh = 47,
  Insll = 48,
  Inslh = 49,
  Insql = 50,
  Insqh = 51,
  Mskwl = 52,
  Mskwh = 53,
  Mskll = 54,
  Msklh = 55,
  Mskql = 56,
  Mskqh = 57,

  // Branch format: test ra against zero, disp21 words relative to the
  // next instruction.
  Br = 58, ///< unconditional (ra ignored)
  Beq = 59,
  Bne = 60,
  Blt = 61,
  Bge = 62,

  // Service format: call out of translated code into the BT runtime.
  Srv = 63,
};

/// Srv function codes (carried in the disp16 field).
enum class SrvFunc : uint16_t {
  /// Return to the dynamic monitor; the next guest PC is in R24.
  Exit = 0,
  /// The guest executed Halt.
  Halt = 1,
};

/// True for memory-format opcodes (including lda/ldah).
inline bool isMemFormat(HostOp Op) {
  return static_cast<uint8_t>(Op) <= static_cast<uint8_t>(HostOp::StqU);
}

/// True for opcodes that access data memory.
inline bool accessesMemory(HostOp Op) {
  return Op >= HostOp::Ldbu && Op <= HostOp::StqU;
}

/// True for branch-format opcodes.
inline bool isBranchFormat(HostOp Op) {
  return Op >= HostOp::Br && Op <= HostOp::Bge;
}

/// True for operate-format opcodes.
inline bool isOperateFormat(HostOp Op) {
  return Op >= HostOp::Addq && Op <= HostOp::Mskqh;
}

/// True for host loads (memory reads).
inline bool isHostLoad(HostOp Op) {
  return Op >= HostOp::Ldbu && Op <= HostOp::LdqU;
}

/// True for host stores.
inline bool isHostStore(HostOp Op) {
  return Op >= HostOp::Stb && Op <= HostOp::StqU;
}

/// Natural alignment requirement of a memory opcode (1 = none).
inline unsigned alignmentOf(HostOp Op) {
  switch (Op) {
  case HostOp::Ldwu:
  case HostOp::Stw:
    return 2;
  case HostOp::Ldl:
  case HostOp::Stl:
    return 4;
  case HostOp::Ldq:
  case HostOp::Stq:
    return 8;
  default:
    return 1;
  }
}

/// Access size in bytes of a memory opcode (0 for lda/ldah).
inline unsigned hostAccessSize(HostOp Op) {
  switch (Op) {
  case HostOp::Ldbu:
  case HostOp::Stb:
    return 1;
  case HostOp::Ldwu:
  case HostOp::Stw:
    return 2;
  case HostOp::Ldl:
  case HostOp::Stl:
    return 4;
  case HostOp::Ldq:
  case HostOp::Stq:
  case HostOp::LdqU:
  case HostOp::StqU:
    return 8;
  default:
    return 0;
  }
}

/// Printable mnemonic.
const char *hostOpName(HostOp Op);

} // namespace host
} // namespace mdabt

#endif // MDABT_HOST_HOSTISA_H
