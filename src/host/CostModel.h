//===- host/CostModel.h - DBT cycle cost parameters ------------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every cycle cost the experiments depend on, in one struct.  Defaults
/// follow DESIGN.md section 5; the trap cost of ~1000 cycles is the
/// paper's own figure (section II, citing the FX!32 studies [15][16]).
///
/// These modeled cycles are also the unit of the run's virtual clock:
/// RunResult::Cycles and the VirtualTime stamp on every trace event
/// (docs/TELEMETRY.md) are sums of the per-phase cycle accounts this
/// struct prices, so changing a cost here shifts reported runtimes and
/// trace timestamps coherently.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_HOST_COSTMODEL_H
#define MDABT_HOST_COSTMODEL_H

#include <cstdint>

namespace mdabt {
namespace host {

/// Cycle costs charged by the host machine and the DBT runtime.
struct CostModel {
  /// Kernel entry/exit + signal delivery for one misalignment trap.
  uint32_t TrapCycles = 1000;
  /// Extra work when the handler emulates the access and resumes
  /// (non-patching policies: the access is re-emulated on every trap).
  uint32_t FixupExtraCycles = 150;
  /// Extra work when the handler generates an MDA code sequence and
  /// patches the offending instruction (paid once per instruction).
  uint32_t PatchExtraCycles = 320;
  /// Interpreter cost per guest instruction (phase-1 execution; a fast
  /// threaded interpreter runs at ~20 host cycles per guest
  /// instruction).
  uint32_t InterpCyclesPerInst = 20;
  /// Additional interpreter cost per guest memory reference (software
  /// alignment handling in the interpreter).
  uint32_t InterpMemExtraCycles = 4;
  /// Translation cost per guest instruction translated.  Also the price
  /// of re-emitting a block for rearrangement or retranslation.
  uint32_t TranslateCyclesPerInst = 160;
  /// Monitor dispatch: map lookup + enter/leave translated code.
  uint32_t MonitorDispatchCycles = 60;
  /// Patching one chain link between translated blocks.
  uint32_t ChainPatchCycles = 20;
  /// Hash-table monitor dispatch (EngineConfig::HashDispatch): a hit is
  /// one table probe plus the indirect jump into translated code —
  /// replacing the MonitorDispatchCycles map-lookup path.
  uint32_t DispatchTableHitCycles = 15;
  /// Each additional probe along an open-addressing collision chain,
  /// charged on hits beyond the first probe.  Misses are not priced —
  /// the baseline path folds its failed map lookup into the
  /// interpretation/translation episode it starts, and the table keeps
  /// the same convention so the two dispatch models stay comparable.
  uint32_t DispatchProbeCycles = 5;
  /// Installing one guest instruction's worth of host words from the
  /// shared translation cache (EngineConfig::Service) on a cache hit:
  /// a word copy plus metadata rebasing, replacing the full
  /// TranslateCyclesPerInst re-translation price.
  uint32_t CacheInstallCyclesPerInst = 12;
  /// A guest store into a page backing live translations: real DBTs
  /// write-protect translated guest code, so every such store costs a
  /// page-protection trap plus the coherence bookkeeping it triggers.
  /// Priced like a misalignment trap (kernel entry/exit dominates both).
  uint32_t SmcWriteTrapCycles = 1000;
};

} // namespace host
} // namespace mdabt

#endif // MDABT_HOST_COSTMODEL_H
