//===- host/MdaSequences.cpp ----------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "host/MdaSequences.h"

#include <cassert>

using namespace mdabt;
using namespace mdabt::host;

HostOp mdabt::host::extLowOp(unsigned Size) {
  switch (Size) {
  case 2:
    return HostOp::Extwl;
  case 4:
    return HostOp::Extll;
  case 8:
    return HostOp::Extql;
  }
  assert(false && "bad MDA size");
  return HostOp::Extll;
}

HostOp mdabt::host::extHighOp(unsigned Size) {
  switch (Size) {
  case 2:
    return HostOp::Extwh;
  case 4:
    return HostOp::Extlh;
  case 8:
    return HostOp::Extqh;
  }
  assert(false && "bad MDA size");
  return HostOp::Extlh;
}

HostOp mdabt::host::insLowOp(unsigned Size) {
  switch (Size) {
  case 2:
    return HostOp::Inswl;
  case 4:
    return HostOp::Insll;
  case 8:
    return HostOp::Insql;
  }
  assert(false && "bad MDA size");
  return HostOp::Insll;
}

HostOp mdabt::host::insHighOp(unsigned Size) {
  switch (Size) {
  case 2:
    return HostOp::Inswh;
  case 4:
    return HostOp::Inslh;
  case 8:
    return HostOp::Insqh;
  }
  assert(false && "bad MDA size");
  return HostOp::Inslh;
}

HostOp mdabt::host::mskLowOp(unsigned Size) {
  switch (Size) {
  case 2:
    return HostOp::Mskwl;
  case 4:
    return HostOp::Mskll;
  case 8:
    return HostOp::Mskql;
  }
  assert(false && "bad MDA size");
  return HostOp::Mskll;
}

HostOp mdabt::host::mskHighOp(unsigned Size) {
  switch (Size) {
  case 2:
    return HostOp::Mskwh;
  case 4:
    return HostOp::Msklh;
  case 8:
    return HostOp::Mskqh;
  }
  assert(false && "bad MDA size");
  return HostOp::Msklh;
}

void mdabt::host::emitMdaLoad(HostAssembler &Asm, unsigned Size, uint8_t Ra,
                              uint8_t Rb, int32_t Disp) {
  assert((Size == 2 || Size == 4 || Size == 8) && "bad MDA size");
  assert(Disp >= -32768 && Disp + static_cast<int32_t>(Size) - 1 <= 32767 &&
         "displacement must be pre-folded into the base register");
  int32_t High = Disp + static_cast<int32_t>(Size) - 1;
  // As in paper Fig. 2, with the destination written last so that
  // Ra == Rb is safe.
  Asm.lda(RegMdaT2, Disp, Rb);                // address (shift operand)
  Asm.mem(HostOp::LdqU, RegMdaT0, Disp, Rb);  // low quadword
  Asm.mem(HostOp::LdqU, RegMdaT1, High, Rb);  // high quadword
  Asm.op(extLowOp(Size), RegMdaT0, RegMdaT2, RegMdaT0);
  Asm.op(extHighOp(Size), RegMdaT1, RegMdaT2, RegMdaT1);
  Asm.op(HostOp::Bis, RegMdaT0, RegMdaT1, Ra);
}

void mdabt::host::emitMdaStore(HostAssembler &Asm, unsigned Size, uint8_t Rv,
                               uint8_t Rb, int32_t Disp) {
  assert((Size == 2 || Size == 4 || Size == 8) && "bad MDA size");
  assert(Disp >= -32768 && Disp + static_cast<int32_t>(Size) - 1 <= 32767 &&
         "displacement must be pre-folded into the base register");
  int32_t High = Disp + static_cast<int32_t>(Size) - 1;
  // Alpha Architecture Handbook unaligned-store idiom: merge the value
  // into both covering quadwords, store high first so that the
  // non-crossing case (both quadwords identical) resolves to the merged
  // low quadword.
  Asm.lda(RegMdaT2, Disp, Rb);                // address (shift operand)
  Asm.mem(HostOp::LdqU, RegMdaT1, High, Rb);  // high quadword
  Asm.mem(HostOp::LdqU, RegMdaT0, Disp, Rb);  // low quadword
  Asm.op(insHighOp(Size), Rv, RegMdaT2, RegMdaT3);
  Asm.op(insLowOp(Size), Rv, RegMdaT2, RegMdaT4);
  Asm.op(mskHighOp(Size), RegMdaT1, RegMdaT2, RegMdaT1);
  Asm.op(mskLowOp(Size), RegMdaT0, RegMdaT2, RegMdaT0);
  Asm.op(HostOp::Bis, RegMdaT1, RegMdaT3, RegMdaT1);
  Asm.op(HostOp::Bis, RegMdaT0, RegMdaT4, RegMdaT0);
  Asm.mem(HostOp::StqU, RegMdaT1, High, Rb);
  Asm.mem(HostOp::StqU, RegMdaT0, Disp, Rb);
}

unsigned mdabt::host::mdaLoadLength() { return 6; }

unsigned mdabt::host::mdaStoreLength() { return 11; }
