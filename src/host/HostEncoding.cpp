//===- host/HostEncoding.cpp ----------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "host/HostEncoding.h"

#include "support/Format.h"

#include <cassert>

using namespace mdabt;
using namespace mdabt::host;

namespace {

bool isValidOp(uint8_t Raw) {
  HostOp Op = static_cast<HostOp>(Raw);
  return isMemFormat(Op) || isOperateFormat(Op) || isBranchFormat(Op) ||
         Op == HostOp::Srv;
}

} // namespace

uint32_t mdabt::host::encodeHost(const HostInst &I) {
  uint32_t Word = static_cast<uint32_t>(I.Op) << 26;
  assert(I.Ra < NumRegs && I.Rb < NumRegs && I.Rc < NumRegs &&
         "register out of range");
  if (isMemFormat(I.Op)) {
    assert(I.Disp >= -32768 && I.Disp <= 32767 && "disp16 out of range");
    Word |= static_cast<uint32_t>(I.Ra) << 21;
    Word |= static_cast<uint32_t>(I.Rb) << 16;
    Word |= static_cast<uint32_t>(I.Disp) & 0xffff;
    return Word;
  }
  if (isOperateFormat(I.Op)) {
    Word |= static_cast<uint32_t>(I.Ra) << 21;
    if (I.IsLit) {
      Word |= static_cast<uint32_t>(I.Lit) << 13;
      Word |= 1u << 12;
    } else {
      Word |= static_cast<uint32_t>(I.Rb) << 16;
    }
    Word |= I.Rc;
    return Word;
  }
  if (isBranchFormat(I.Op)) {
    assert(I.Disp >= -(1 << 20) && I.Disp < (1 << 20) &&
           "disp21 out of range");
    Word |= static_cast<uint32_t>(I.Ra) << 21;
    Word |= static_cast<uint32_t>(I.Disp) & 0x1fffff;
    return Word;
  }
  assert(I.Op == HostOp::Srv && "unknown host format");
  Word |= static_cast<uint32_t>(I.Disp) & 0xffff;
  return Word;
}

bool mdabt::host::decodeHost(uint32_t Word, HostInst &I) {
  uint8_t Raw = static_cast<uint8_t>(Word >> 26);
  if (!isValidOp(Raw))
    return false;
  I = HostInst();
  I.Op = static_cast<HostOp>(Raw);
  if (isMemFormat(I.Op)) {
    I.Ra = Word >> 21 & 31;
    I.Rb = Word >> 16 & 31;
    I.Disp = static_cast<int16_t>(Word & 0xffff);
    return true;
  }
  if (isOperateFormat(I.Op)) {
    I.Ra = Word >> 21 & 31;
    I.IsLit = (Word >> 12 & 1) != 0;
    if (I.IsLit)
      I.Lit = Word >> 13 & 0xff;
    else
      I.Rb = Word >> 16 & 31;
    I.Rc = Word & 31;
    return true;
  }
  if (isBranchFormat(I.Op)) {
    I.Ra = Word >> 21 & 31;
    uint32_t D = Word & 0x1fffff;
    // Sign-extend 21 bits.
    I.Disp = static_cast<int32_t>(D << 11) >> 11;
    return true;
  }
  I.Disp = static_cast<int32_t>(Word & 0xffff);
  return true;
}

HostInst mdabt::host::memInst(HostOp Op, uint8_t Ra, int32_t Disp,
                              uint8_t Rb) {
  assert(isMemFormat(Op) && "not a memory-format opcode");
  HostInst I;
  I.Op = Op;
  I.Ra = Ra;
  I.Rb = Rb;
  I.Disp = Disp;
  return I;
}

HostInst mdabt::host::opInst(HostOp Op, uint8_t Ra, uint8_t Rb, uint8_t Rc) {
  assert(isOperateFormat(Op) && "not an operate-format opcode");
  HostInst I;
  I.Op = Op;
  I.Ra = Ra;
  I.Rb = Rb;
  I.Rc = Rc;
  return I;
}

HostInst mdabt::host::opInstLit(HostOp Op, uint8_t Ra, uint8_t Lit,
                                uint8_t Rc) {
  assert(isOperateFormat(Op) && "not an operate-format opcode");
  HostInst I;
  I.Op = Op;
  I.Ra = Ra;
  I.IsLit = true;
  I.Lit = Lit;
  I.Rc = Rc;
  return I;
}

HostInst mdabt::host::brInst(HostOp Op, uint8_t Ra, int32_t DispWords) {
  assert(isBranchFormat(Op) && "not a branch-format opcode");
  HostInst I;
  I.Op = Op;
  I.Ra = Ra;
  I.Disp = DispWords;
  return I;
}

HostInst mdabt::host::srvInst(SrvFunc Func) {
  HostInst I;
  I.Op = HostOp::Srv;
  I.Disp = static_cast<int32_t>(Func);
  return I;
}

const char *mdabt::host::hostOpName(HostOp Op) {
  switch (Op) {
  case HostOp::Lda:
    return "lda";
  case HostOp::Ldah:
    return "ldah";
  case HostOp::Ldbu:
    return "ldbu";
  case HostOp::Ldwu:
    return "ldwu";
  case HostOp::Ldl:
    return "ldl";
  case HostOp::Ldq:
    return "ldq";
  case HostOp::LdqU:
    return "ldq_u";
  case HostOp::Stb:
    return "stb";
  case HostOp::Stw:
    return "stw";
  case HostOp::Stl:
    return "stl";
  case HostOp::Stq:
    return "stq";
  case HostOp::StqU:
    return "stq_u";
  case HostOp::Addq:
    return "addq";
  case HostOp::Subq:
    return "subq";
  case HostOp::Addl:
    return "addl";
  case HostOp::Subl:
    return "subl";
  case HostOp::Mull:
    return "mull";
  case HostOp::Mulq:
    return "mulq";
  case HostOp::And:
    return "and";
  case HostOp::Bis:
    return "bis";
  case HostOp::Xor:
    return "xor";
  case HostOp::Sll:
    return "sll";
  case HostOp::Srl:
    return "srl";
  case HostOp::Sra:
    return "sra";
  case HostOp::Cmpeq:
    return "cmpeq";
  case HostOp::Cmpult:
    return "cmpult";
  case HostOp::Cmpule:
    return "cmpule";
  case HostOp::Cmplt:
    return "cmplt";
  case HostOp::Cmple:
    return "cmple";
  case HostOp::Cmplt32:
    return "cmplt32";
  case HostOp::Cmple32:
    return "cmple32";
  case HostOp::Sextl:
    return "sextl";
  case HostOp::Zextl:
    return "zextl";
  case HostOp::Extwl:
    return "extwl";
  case HostOp::Extwh:
    return "extwh";
  case HostOp::Extll:
    return "extll";
  case HostOp::Extlh:
    return "extlh";
  case HostOp::Extql:
    return "extql";
  case HostOp::Extqh:
    return "extqh";
  case HostOp::Inswl:
    return "inswl";
  case HostOp::Inswh:
    return "inswh";
  case HostOp::Insll:
    return "insll";
  case HostOp::Inslh:
    return "inslh";
  case HostOp::Insql:
    return "insql";
  case HostOp::Insqh:
    return "insqh";
  case HostOp::Mskwl:
    return "mskwl";
  case HostOp::Mskwh:
    return "mskwh";
  case HostOp::Mskll:
    return "mskll";
  case HostOp::Msklh:
    return "msklh";
  case HostOp::Mskql:
    return "mskql";
  case HostOp::Mskqh:
    return "mskqh";
  case HostOp::Br:
    return "br";
  case HostOp::Beq:
    return "beq";
  case HostOp::Bne:
    return "bne";
  case HostOp::Blt:
    return "blt";
  case HostOp::Bge:
    return "bge";
  case HostOp::Srv:
    return "srv";
  }
  return "<bad>";
}

std::string mdabt::host::disassembleHost(const HostInst &I,
                                         uint32_t WordIndex) {
  const char *Name = hostOpName(I.Op);
  if (isMemFormat(I.Op))
    return format("%s r%u, %d(r%u)", Name, I.Ra, I.Disp, I.Rb);
  if (isOperateFormat(I.Op)) {
    if (I.IsLit)
      return format("%s r%u, #%u, r%u", Name, I.Ra, I.Lit, I.Rc);
    return format("%s r%u, r%u, r%u", Name, I.Ra, I.Rb, I.Rc);
  }
  if (isBranchFormat(I.Op)) {
    uint32_t Target = WordIndex + 1 + static_cast<uint32_t>(I.Disp);
    if (I.Op == HostOp::Br)
      return format("br @%u", Target);
    return format("%s r%u, @%u", Name, I.Ra, Target);
  }
  return format("srv #%d", I.Disp);
}
