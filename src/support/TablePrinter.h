//===- support/TablePrinter.h - Aligned text tables ------------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders column-aligned text tables (and CSV) for the benchmark harness.
/// Every bench binary regenerating one of the paper's tables or figures
/// prints through this class so that output formatting is uniform.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_SUPPORT_TABLEPRINTER_H
#define MDABT_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace mdabt {

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Append one row.  Rows shorter than the header are padded with empty
  /// cells; longer rows assert.
  void addRow(std::vector<std::string> Cells);

  /// Render as an aligned text table with a header separator.
  std::string toText() const;

  /// Render as CSV.  Commas inside cells (thousands separators in
  /// number cells) are stripped rather than quoted — the harness only
  /// emits numbers and benchmark names.
  std::string toCsv() const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace mdabt

#endif // MDABT_SUPPORT_TABLEPRINTER_H
