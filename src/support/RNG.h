//===- support/RNG.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the MDABT project: reproduction of "An Evaluation of Misaligned
// Data Access Handling Mechanisms in Dynamic Binary Translation Systems"
// (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64-seeded xoshiro256**) used by the
/// workload generators and the chaos fault injector.  Determinism matters:
/// every synthetic benchmark must produce the same guest binary and the
/// same access stream on every run, and every fault-injection campaign
/// must fire at the same points, so that experiments (and failures) are
/// exactly repeatable from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_SUPPORT_RNG_H
#define MDABT_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace mdabt {

/// SplitMix64 step; used to expand a single 64-bit seed into a full
/// xoshiro256** state.
inline uint64_t splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Deterministic xoshiro256** generator.
class RNG {
public:
  explicit RNG(uint64_t Seed) {
    uint64_t SM = Seed;
    for (uint64_t &Word : S)
      Word = splitMix64(SM);
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound).  \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "bound must be nonzero");
    // Multiply-shift range reduction (Lemire); bias is negligible for the
    // bounds used by the generators and keeps the sequence deterministic
    // across platforms.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli trial with probability \p P (clamped to [0,1]).
  bool chance(double P) {
    if (P <= 0.0)
      return false;
    if (P >= 1.0)
      return true;
    return toUnit(next()) < P;
  }

  /// Uniform double in [0, 1).
  double unit() { return toUnit(next()); }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  static double toUnit(uint64_t X) {
    return static_cast<double>(X >> 11) * 0x1.0p-53;
  }

  uint64_t S[4];
};

} // namespace mdabt

#endif // MDABT_SUPPORT_RNG_H
