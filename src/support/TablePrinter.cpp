//===- support/TablePrinter.cpp -------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <cassert>

using namespace mdabt;

TablePrinter::TablePrinter(std::vector<std::string> HeaderIn)
    : Header(std::move(HeaderIn)) {
  assert(!Header.empty() && "table needs at least one column");
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() <= Header.size() && "row wider than header");
  Cells.resize(Header.size());
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::toText() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto emitRow = [&](std::string &Out, const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C != 0)
        Out += "  ";
      Out += Row[C];
      Out.append(Widths[C] - Row[C].size(), ' ');
    }
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  std::string Out;
  emitRow(Out, Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  Out.append(Total >= 2 ? Total - 2 : Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    emitRow(Out, Row);
  return Out;
}

std::string TablePrinter::toCsv() const {
  std::string Out;
  auto emitRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C != 0)
        Out += ',';
      // Thousands separators in number cells would corrupt the format;
      // strip them (benchmark names never contain commas).
      for (char Ch : Row[C])
        if (Ch != ',')
          Out += Ch;
    }
    Out += '\n';
  };
  emitRow(Header);
  for (const auto &Row : Rows)
    emitRow(Row);
  return Out;
}
