//===- support/ThreadPool.cpp ---------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace mdabt;

unsigned ThreadPool::defaultJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Jobs) {
  if (Jobs == 0)
    Jobs = defaultJobs();
  Workers.reserve(Jobs);
  for (unsigned I = 0; I != Jobs; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
    ++Unfinished;
  }
  WorkReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Unfinished == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (--Unfinished == 0)
        AllDone.notify_all();
    }
  }
}

void mdabt::parallelFor(unsigned Jobs, size_t N,
                        const std::function<void(size_t)> &Body) {
  if (Jobs == 0)
    Jobs = ThreadPool::defaultJobs();
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }
  ThreadPool Pool(std::min<size_t>(Jobs, N));
  for (size_t I = 0; I != N; ++I)
    Pool.submit([&Body, I] { Body(I); });
  Pool.wait();
}
