//===- support/Format.cpp -------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>

using namespace mdabt;

std::string mdabt::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed));
    std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  }
  va_end(Args);
  return Out;
}

std::string mdabt::withCommas(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Out;
  Out.reserve(Digits.size() + Digits.size() / 3);
  size_t Lead = Digits.size() % 3;
  if (Lead == 0)
    Lead = 3;
  for (size_t I = 0; I != Digits.size(); ++I) {
    if (I != 0 && (I - Lead) % 3 == 0 && I >= Lead)
      Out.push_back(',');
    Out.push_back(Digits[I]);
  }
  return Out;
}

std::string mdabt::paperCount(uint64_t Value) {
  if (Value < 1000000)
    return std::to_string(Value);
  return format("%.2E", static_cast<double>(Value));
}

std::string mdabt::percent(double Ratio) {
  return format("%.2f%%", Ratio * 100.0);
}

std::string mdabt::signedPercent(double Ratio) {
  return format("%+.1f%%", Ratio * 100.0);
}
