//===- support/Format.h - printf-style std::string formatting --*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string, plus human-readable number
/// rendering used by the paper-table printers.  Library code never touches
/// <iostream>; all printing happens in tools via these helpers.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_SUPPORT_FORMAT_H
#define MDABT_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace mdabt {

/// printf into a std::string.
std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Render a count with thousands separators, e.g. 1234567 -> "1,234,567".
std::string withCommas(uint64_t Value);

/// Render a count in scientific-ish paper style when large,
/// e.g. 8.32E+09 (matches the paper's Table III/IV formatting), plain
/// digits when small.
std::string paperCount(uint64_t Value);

/// Render a ratio as a percentage with two decimals, e.g. "12.67%".
std::string percent(double Ratio);

/// Render a signed gain/loss percentage with sign, e.g. "+4.5%".
std::string signedPercent(double Ratio);

} // namespace mdabt

#endif // MDABT_SUPPORT_FORMAT_H
