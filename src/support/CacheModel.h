//===- support/CacheModel.h - Set-associative cache simulation -*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small set-associative cache simulator with LRU replacement, used to
/// model the paper's Alpha ES40 memory hierarchy (64 KB 2-way split L1,
/// 2 MB direct-mapped unified L2) for both the host machine simulator and
/// the guest-native runs of Figure 1.  Only hit/miss accounting is modeled;
/// contents are irrelevant to the experiments.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_SUPPORT_CACHEMODEL_H
#define MDABT_SUPPORT_CACHEMODEL_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mdabt {

/// Geometry of one cache level.
struct CacheGeometry {
  uint32_t SizeBytes;
  uint32_t Ways;
  uint32_t LineBytes;
};

/// One cache level with LRU replacement.
class Cache {
public:
  explicit Cache(CacheGeometry G) : Geo(G) {
    assert(G.LineBytes != 0 && (G.LineBytes & (G.LineBytes - 1)) == 0 &&
           "line size must be a power of two");
    assert(G.Ways != 0 && "cache needs at least one way");
    NumSets = G.SizeBytes / (G.LineBytes * G.Ways);
    assert(NumSets != 0 && (NumSets & (NumSets - 1)) == 0 &&
           "set count must be a nonzero power of two");
    LineShift = 0;
    for (uint32_t L = G.LineBytes; L > 1; L >>= 1)
      ++LineShift;
    Tags.assign(static_cast<size_t>(NumSets) * G.Ways, ~0ULL);
    Age.assign(Tags.size(), 0);
  }

  /// Access the line containing \p Addr.  Returns true on hit; on a miss
  /// the line is filled (LRU victim evicted).
  ///
  /// Fast path: a one-entry filter on the most recently accessed line.
  /// LastLine is by definition the line of the previous access(), which
  /// is resident (it was hit or filled then) and can only be evicted by
  /// a miss in its set — and any such access would itself have updated
  /// LastLine first, so a filter hit is always a true hit.  Skipping the
  /// Age/Clock update is equally safe: re-touching the line that is
  /// already its set's most-recent cannot change the LRU *ordering*
  /// within any set (ordering only changes when a different line of the
  /// set is touched, which takes the slow path), so hit/miss sequences —
  /// and therefore every modeled cycle count — are bit-identical to the
  /// unfiltered model.  Straight-line code fetches hit this filter ~15
  /// times per 64-byte line.
  bool access(uint64_t Addr) {
    uint64_t Line = Addr >> LineShift;
    if (Line == LastLine) {
      ++Hits;
      return true;
    }
    LastLine = Line;
    uint32_t Set = static_cast<uint32_t>(Line) & (NumSets - 1);
    size_t Base = static_cast<size_t>(Set) * Geo.Ways;
    ++Clock;
    for (uint32_t W = 0; W != Geo.Ways; ++W) {
      if (Tags[Base + W] == Line) {
        Age[Base + W] = Clock;
        ++Hits;
        return true;
      }
    }
    // Miss: evict LRU way.
    uint32_t Victim = 0;
    for (uint32_t W = 1; W != Geo.Ways; ++W)
      if (Age[Base + W] < Age[Base + Victim])
        Victim = W;
    Tags[Base + Victim] = Line;
    Age[Base + Victim] = Clock;
    ++Misses;
    return false;
  }

  void reset() {
    for (uint64_t &T : Tags)
      T = ~0ULL;
    for (uint64_t &A : Age)
      A = 0;
    Hits = Misses = 0;
    Clock = 0;
    LastLine = ~0ULL;
  }

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  const CacheGeometry &geometry() const { return Geo; }

private:
  CacheGeometry Geo;
  uint32_t NumSets = 0;
  uint32_t LineShift = 0;
  std::vector<uint64_t> Tags;
  std::vector<uint64_t> Age;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Clock = 0;
  /// Most recently accessed line (one-entry hit filter); ~0 = none.
  /// Guest/host addresses are < 2^33, so the sentinel never collides
  /// with a real line number.
  uint64_t LastLine = ~0ULL;
};

/// The paper's machine: split 64 KB 2-way L1 caches and a 2 MB
/// direct-mapped unified L2 (paper section V-A).  Returns the cycle
/// penalty for an access (0 on L1 hit).
class MemoryHierarchy {
public:
  struct Penalties {
    uint32_t L2HitCycles = 14;
    uint32_t MemoryCycles = 180;
  };

  MemoryHierarchy()
      : L1I({64 * 1024, 2, 64}), L1D({64 * 1024, 2, 64}),
        L2({2 * 1024 * 1024, 1, 64}) {}

  MemoryHierarchy(CacheGeometry GI, CacheGeometry GD, CacheGeometry GL2,
                  Penalties P)
      : L1I(GI), L1D(GD), L2(GL2), Costs(P) {}

  /// Instruction fetch at \p Addr; returns added cycles.
  uint32_t fetch(uint64_t Addr) {
    if (L1I.access(Addr))
      return 0;
    return L2.access(Addr) ? Costs.L2HitCycles
                           : Costs.L2HitCycles + Costs.MemoryCycles;
  }

  /// Data access at \p Addr; returns added cycles.
  uint32_t data(uint64_t Addr) {
    if (L1D.access(Addr))
      return 0;
    return L2.access(Addr) ? Costs.L2HitCycles
                           : Costs.L2HitCycles + Costs.MemoryCycles;
  }

  void reset() {
    L1I.reset();
    L1D.reset();
    L2.reset();
  }

  Cache L1I;
  Cache L1D;
  Cache L2;
  Penalties Costs;
};

} // namespace mdabt

#endif // MDABT_SUPPORT_CACHEMODEL_H
