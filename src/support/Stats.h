//===- support/Stats.h - Aggregate statistics helpers ----------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics used by the benchmark harness: geometric mean (the
/// paper normalizes runtimes and reports geomeans over the 21 selected
/// benchmarks), arithmetic mean, and a small named-counter bag that the
/// engine uses to expose per-run event counts.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_SUPPORT_STATS_H
#define MDABT_SUPPORT_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace mdabt {

/// Geometric mean of positive values.  Returns 0 for an empty input.
double geometricMean(const std::vector<double> &Values);

/// Arithmetic mean.  Returns 0 for an empty input.
double arithmeticMean(const std::vector<double> &Values);

/// A named event counter bag.  Deterministic iteration order (insertion
/// order) so that reports are stable.
///
/// This is the flat, legacy view of a run's statistics; since the obs
/// layer landed it is derived from the structured
/// obs::MetricsRegistry at end of run (fillCounterBag), so the two
/// views always agree.  New consumers should prefer
/// RunResult::Metrics (typed counters/gauges/histograms, JSON
/// serialization — see docs/TELEMETRY.md); CounterBag remains for the
/// table printers and for merge/maxWith aggregation across runs.
class CounterBag {
public:
  /// Add \p Delta to counter \p Name, creating it at zero if absent.
  void add(const std::string &Name, uint64_t Delta = 1);

  /// Overwrite counter \p Name with \p Value (for non-additive values
  /// such as gauges and status codes).
  void set(const std::string &Name, uint64_t Value);

  /// Value of counter \p Name; 0 if it was never touched.
  uint64_t get(const std::string &Name) const;

  /// Merge all counters of \p Other into this bag.
  void merge(const CounterBag &Other);

  /// Keep the elementwise maximum of this bag and \p Other (for
  /// worst-case aggregation across runs).
  void maxWith(const CounterBag &Other);

  /// All (name, value) pairs in insertion order.
  const std::vector<std::pair<std::string, uint64_t>> &entries() const {
    return Entries;
  }

private:
  std::vector<std::pair<std::string, uint64_t>> Entries;
};

} // namespace mdabt

#endif // MDABT_SUPPORT_STATS_H
