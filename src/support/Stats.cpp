//===- support/Stats.cpp --------------------------------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <cassert>
#include <cmath>

using namespace mdabt;

double mdabt::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double mdabt::arithmeticMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

void CounterBag::add(const std::string &Name, uint64_t Delta) {
  for (auto &Entry : Entries) {
    if (Entry.first == Name) {
      Entry.second += Delta;
      return;
    }
  }
  Entries.push_back({Name, Delta});
}

void CounterBag::set(const std::string &Name, uint64_t Value) {
  for (auto &Entry : Entries) {
    if (Entry.first == Name) {
      Entry.second = Value;
      return;
    }
  }
  Entries.push_back({Name, Value});
}

uint64_t CounterBag::get(const std::string &Name) const {
  for (const auto &Entry : Entries)
    if (Entry.first == Name)
      return Entry.second;
  return 0;
}

void CounterBag::merge(const CounterBag &Other) {
  for (const auto &Entry : Other.Entries)
    add(Entry.first, Entry.second);
}

void CounterBag::maxWith(const CounterBag &Other) {
  for (const auto &Entry : Other.Entries)
    if (Entry.second > get(Entry.first))
      set(Entry.first, Entry.second);
}
