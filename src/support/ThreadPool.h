//===- support/ThreadPool.h - Worker pool for experiment fan-out -*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool used to fan the (benchmark × policy)
/// experiment matrix across cores.  Every simulated run is deterministic
/// and shares no mutable state with any other run (an Engine builds its
/// own guest memory, code cache and metrics registry), so parallelism
/// here is pure scheduling: tasks write results into caller-owned,
/// index-addressed slots and the printed tables are assembled after
/// wait(), in matrix order — byte-identical to a serial run by
/// construction.
///
/// Tasks must not throw: the simulation libraries report failure through
/// typed RunErrors and asserts, never exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_SUPPORT_THREADPOOL_H
#define MDABT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mdabt {

/// A fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// \p Jobs worker threads; 0 selects defaultJobs().
  explicit ThreadPool(unsigned Jobs = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueue one task.
  void submit(std::function<void()> Task);

  /// Block until every submitted task has finished.
  void wait();

  unsigned threads() const { return static_cast<unsigned>(Workers.size()); }

  /// hardware_concurrency, clamped to at least 1 (the standard permits
  /// hardware_concurrency() == 0 when the count is unknowable).
  static unsigned defaultJobs();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable AllDone;
  size_t Unfinished = 0; ///< queued + currently executing
  bool Stopping = false;
};

/// Run Body(I) for every I in [0, N), fanned across \p Jobs workers
/// (0 = defaultJobs()); returns after all iterations complete.  With
/// Jobs <= 1 the loop runs inline on the calling thread — no pool, no
/// thread startup cost, and trivially the same results, which is what
/// makes `--jobs 1` an exact oracle for the parallel path.
void parallelFor(unsigned Jobs, size_t N,
                 const std::function<void(size_t)> &Body);

} // namespace mdabt

#endif // MDABT_SUPPORT_THREADPOOL_H
