//===- bench/fig11_rearrangement.cpp - Paper Figure 11 --------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 11: performance gain/loss of code rearrangement on
/// top of the exception-handling method (repositioning handler-generated
/// MDA sequences to restore spatial locality).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Figure 11: performance gain/loss with code rearrangement "
         "(baseline: Exception Handling)",
         "up to ~11% on h264ref-like programs, 4-5% on galgel/ammp; "
         "overall mean only ~1.5%");

  workloads::ScaleConfig Scale = stdScale(Opt);
  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks) {
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::ExceptionHandling, 50, false, 0,
                  false}});
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::ExceptionHandling, 50, true, 0,
                  false}});
  }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "EH cycles", "EH+rearr cycles", "Gain"});
  std::vector<double> Gains;
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    const dbt::RunResult &Base = Results[B * 2];
    const dbt::RunResult &Rearr = Results[B * 2 + 1];
    double Gain = reporting::gainOver(Base.Cycles, Rearr.Cycles);
    Gains.push_back(Gain);
    T.addRow({Benchmarks[B]->Name, withCommas(Base.Cycles),
              withCommas(Rearr.Cycles), signedPercent(Gain)});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains))});
  printTable(T, "fig11_rearrangement");
  return 0;
}
