//===- bench/fig11_rearrangement.cpp - Paper Figure 11 --------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 11: performance gain/loss of code rearrangement on
/// top of the exception-handling method (repositioning handler-generated
/// MDA sequences to restore spatial locality).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main() {
  banner("Figure 11: performance gain/loss with code rearrangement "
         "(baseline: Exception Handling)",
         "up to ~11% on h264ref-like programs, 4-5% on galgel/ammp; "
         "overall mean only ~1.5%");

  workloads::ScaleConfig Scale = stdScale();
  TablePrinter T({"Benchmark", "EH cycles", "EH+rearr cycles", "Gain"});
  std::vector<double> Gains;
  for (const workloads::BenchmarkInfo *Info :
       workloads::selectedBenchmarks()) {
    dbt::RunResult Base = reporting::runPolicyChecked(
        *Info, {mda::MechanismKind::ExceptionHandling, 50, false, 0, false},
        Scale);
    dbt::RunResult Rearr = reporting::runPolicyChecked(
        *Info, {mda::MechanismKind::ExceptionHandling, 50, true, 0, false},
        Scale);
    double Gain = reporting::gainOver(Base.Cycles, Rearr.Cycles);
    Gains.push_back(Gain);
    T.addRow({Info->Name, withCommas(Base.Cycles),
              withCommas(Rearr.Cycles), signedPercent(Gain)});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains))});
  printTable(T, "fig11_rearrangement");
  return 0;
}
