//===- bench/fig12_dpeh.cpp - Paper Figure 12 -----------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 12: gain/loss of DPEH (dynamic profiling +
/// exception handling) over the plain exception-handling method.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Figure 12: performance gain/loss with dynamic profiling "
         "(DPEH vs Exception Handling)",
         ">8% on h264ref/omnetpp/milc-like programs; overall ~2%: plain "
         "exception handling already works well");

  workloads::ScaleConfig Scale = stdScale(Opt);
  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks) {
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::ExceptionHandling, 50, false, 0,
                  false}});
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::Dpeh, 50, false, 0, false}});
  }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "EH cycles", "DPEH cycles", "Gain"});
  std::vector<double> Gains;
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    const dbt::RunResult &Eh = Results[B * 2];
    const dbt::RunResult &Dpeh = Results[B * 2 + 1];
    double Gain = reporting::gainOver(Eh.Cycles, Dpeh.Cycles);
    Gains.push_back(Gain);
    T.addRow({Benchmarks[B]->Name, withCommas(Eh.Cycles),
              withCommas(Dpeh.Cycles), signedPercent(Gain)});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains))});
  printTable(T, "fig12_dpeh");
  return 0;
}
