//===- bench/fig12_dpeh.cpp - Paper Figure 12 -----------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 12: gain/loss of DPEH (dynamic profiling +
/// exception handling) over the plain exception-handling method.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main() {
  banner("Figure 12: performance gain/loss with dynamic profiling "
         "(DPEH vs Exception Handling)",
         ">8% on h264ref/omnetpp/milc-like programs; overall ~2%: plain "
         "exception handling already works well");

  workloads::ScaleConfig Scale = stdScale();
  TablePrinter T({"Benchmark", "EH cycles", "DPEH cycles", "Gain"});
  std::vector<double> Gains;
  for (const workloads::BenchmarkInfo *Info :
       workloads::selectedBenchmarks()) {
    dbt::RunResult Eh = reporting::runPolicyChecked(
        *Info, {mda::MechanismKind::ExceptionHandling, 50, false, 0, false},
        Scale);
    dbt::RunResult Dpeh = reporting::runPolicyChecked(
        *Info, {mda::MechanismKind::Dpeh, 50, false, 0, false}, Scale);
    double Gain = reporting::gainOver(Eh.Cycles, Dpeh.Cycles);
    Gains.push_back(Gain);
    T.addRow({Info->Name, withCommas(Eh.Cycles), withCommas(Dpeh.Cycles),
              signedPercent(Gain)});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains))});
  printTable(T, "fig12_dpeh");
  return 0;
}
