//===- bench/table2_mechanisms.cpp - Paper Table II -----------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table II: the MDA handling mechanisms and their
/// configuration choices, printed from the live policy registry so the
/// table cannot drift from the implementation.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main() {
  banner("Table II: MDA handling mechanisms and configuration choices",
         "five mechanisms; DPEH carries the retranslation and "
         "multi-version options");

  TablePrinter T({"Mechanism", "Configuration Choice", "Description"});
  for (const mda::MechanismRow &Row : mda::mechanismTable())
    T.addRow({Row.Mechanism, Row.Configuration, Row.Description});
  printTable(T, "table2_mechanisms");

  // Exercise the factory for every row so this binary doubles as a
  // smoke test of the registry.
  using mda::MechanismKind;
  const mda::PolicySpec Specs[] = {
      {MechanismKind::Direct, 0, false, 0, false},
      {MechanismKind::DynamicProfiling, 50, false, 0, false},
      {MechanismKind::ExceptionHandling, 50, true, 0, false},
      {MechanismKind::Dpeh, 50, false, 4, true},
  };
  std::printf("Instantiable policies:");
  for (const mda::PolicySpec &S : Specs)
    std::printf(" %s", mda::policySpecName(S).c_str());
  std::printf("\n");
  return 0;
}
