//===- bench/BenchCommon.h - Shared bench-harness helpers ------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/per-figure bench binaries: uniform
/// CLI parsing (--jobs/--seed/--refs — every bench binary accepts the
/// same flags), the standard scale (overridable via --refs or
/// MDABT_REFS for quick runs), and uniform printing.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_BENCH_BENCHCOMMON_H
#define MDABT_BENCH_BENCHCOMMON_H

#include "reporting/Experiment.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mdabt {
namespace bench {

/// CLI options shared by every bench binary.
struct Options {
  /// Worker threads for the experiment matrix; 0 = hardware
  /// concurrency.  Results are bit-identical for every value.
  unsigned Jobs = 0;
  /// Base seed for randomized campaigns (chaos_soak).
  uint64_t Seed = 0xC0FFEE;
  /// Per-run memory-reference target; 0 = default (MDABT_REFS or the
  /// standard 1.5M).
  uint64_t Refs = 0;
  /// Enable the static alignment analysis (EngineConfig::Analysis) for
  /// every engine run the bench performs.
  bool Analysis = false;
  /// Enable hybrid static AOT pre-translation (EngineConfig::Aot =
  /// AotMode::Hybrid) for every engine run the bench performs.
  bool Aot = false;
};

/// Parse the shared flags (--jobs N, --seed S, --refs R, --analysis,
/// --aot; value flags accept both "--flag N" and "--flag=N").
/// Recognized flags are removed
/// from argv so binaries with their own argument consumers
/// (micro_components hands the remainder to google-benchmark) can layer
/// on top.  Unknown arguments are left in place.  Exits with a usage
/// message on a malformed value.
inline Options parseArgs(int &Argc, char **Argv) {
  Options Opt;
  auto Fail = [&](const char *Flag) {
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--seed S] [--refs R] [--analysis] "
                 "[--aot]\n"
                 "error: bad value for %s\n",
                 Argv[0], Flag);
    std::exit(2);
  };
  auto TakeValue = [&](const char *Flag, int &I,
                       const char *&Value) -> bool {
    size_t Len = std::strlen(Flag);
    if (std::strncmp(Argv[I], Flag, Len) != 0)
      return false;
    if (Argv[I][Len] == '=') {
      Value = Argv[I] + Len + 1;
      return true;
    }
    if (Argv[I][Len] == '\0') {
      if (I + 1 >= Argc)
        Fail(Flag);
      Value = Argv[++I];
      return true;
    }
    return false;
  };
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    const char *Value = nullptr;
    if (TakeValue("--jobs", I, Value)) {
      long long V = std::atoll(Value);
      if (V < 0 || V > 4096)
        Fail("--jobs");
      Opt.Jobs = static_cast<unsigned>(V);
    } else if (TakeValue("--seed", I, Value)) {
      Opt.Seed = std::strtoull(Value, nullptr, 0);
    } else if (TakeValue("--refs", I, Value)) {
      long long V = std::atoll(Value);
      if (V <= 10000)
        Fail("--refs");
      Opt.Refs = static_cast<uint64_t>(V);
    } else if (std::strcmp(Argv[I], "--analysis") == 0) {
      Opt.Analysis = true;
    } else if (std::strcmp(Argv[I], "--aot") == 0) {
      Opt.Aot = true;
    } else {
      Argv[Out++] = Argv[I];
    }
  }
  Argc = Out;
  Argv[Argc] = nullptr;
  return Opt;
}

/// The scale every experiment uses.  --refs wins over the MDABT_REFS
/// environment override (e.g. MDABT_REFS=200000 for a smoke pass).
inline workloads::ScaleConfig stdScale(const Options &Opt = Options()) {
  workloads::ScaleConfig Scale;
  Scale.TotalRefs = 1'500'000;
  if (const char *Env = std::getenv("MDABT_REFS")) {
    long long V = std::atoll(Env);
    if (V > 10000)
      Scale.TotalRefs = static_cast<uint64_t>(V);
  }
  if (Opt.Refs != 0)
    Scale.TotalRefs = Opt.Refs;
  return Scale;
}

/// Standard bench banner.
inline void banner(const char *Title, const char *PaperShape) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", Title);
  std::printf("Paper-expected shape: %s\n", PaperShape);
  std::printf("==============================================================="
              "=================\n");
}

/// Print the table; when MDABT_CSV names a directory, also write
/// <dir>/<Name>.csv so plots can be regenerated from the raw data.
inline void printTable(const TablePrinter &T, const char *Name = nullptr) {
  std::fputs(T.toText().c_str(), stdout);
  std::printf("\n");
  const char *Dir = std::getenv("MDABT_CSV");
  if (!Dir || !Name)
    return;
  std::string Path = std::string(Dir) + "/" + Name + ".csv";
  if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
    std::string Csv = T.toCsv();
    std::fwrite(Csv.data(), 1, Csv.size(), F);
    std::fclose(F);
    std::printf("(csv written to %s)\n\n", Path.c_str());
  }
}

} // namespace bench
} // namespace mdabt

#endif // MDABT_BENCH_BENCHCOMMON_H
