//===- bench/BenchCommon.h - Shared bench-harness helpers ------*- C++ -*-===//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/per-figure bench binaries: the
/// standard scale (overridable via MDABT_REFS for quick runs), and
/// uniform printing.
///
//===----------------------------------------------------------------------===//

#ifndef MDABT_BENCH_BENCHCOMMON_H
#define MDABT_BENCH_BENCHCOMMON_H

#include "reporting/Experiment.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>

namespace mdabt {
namespace bench {

/// The scale every experiment uses.  Set MDABT_REFS to shrink runs
/// (e.g. MDABT_REFS=200000 for a smoke pass).
inline workloads::ScaleConfig stdScale() {
  workloads::ScaleConfig Scale;
  Scale.TotalRefs = 1'500'000;
  if (const char *Env = std::getenv("MDABT_REFS")) {
    long long V = std::atoll(Env);
    if (V > 10000)
      Scale.TotalRefs = static_cast<uint64_t>(V);
  }
  return Scale;
}

/// Standard bench banner.
inline void banner(const char *Title, const char *PaperShape) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", Title);
  std::printf("Paper-expected shape: %s\n", PaperShape);
  std::printf("==============================================================="
              "=================\n");
}

/// Print the table; when MDABT_CSV names a directory, also write
/// <dir>/<Name>.csv so plots can be regenerated from the raw data.
inline void printTable(const TablePrinter &T, const char *Name = nullptr) {
  std::fputs(T.toText().c_str(), stdout);
  std::printf("\n");
  const char *Dir = std::getenv("MDABT_CSV");
  if (!Dir || !Name)
    return;
  std::string Path = std::string(Dir) + "/" + Name + ".csv";
  if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
    std::string Csv = T.toCsv();
    std::fwrite(Csv.data(), 1, Csv.size(), F);
    std::fclose(F);
    std::printf("(csv written to %s)\n\n", Path.c_str());
  }
}

} // namespace bench
} // namespace mdabt

#endif // MDABT_BENCH_BENCHCOMMON_H
