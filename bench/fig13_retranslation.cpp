//===- bench/fig13_retranslation.cpp - Paper Figure 13 --------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 13: gain/loss of block retranslation (invalidate
/// and retranslate after 4 misalignment traps in a block) on top of
/// DPEH.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main() {
  banner("Figure 13: performance gain/loss with retranslation "
         "(baseline: DPEH; trigger: 4 traps per block)",
         "some benchmarks benefit, some degrade slightly; overall not "
         "substantial");

  workloads::ScaleConfig Scale = stdScale();
  TablePrinter T(
      {"Benchmark", "DPEH cycles", "DPEH+retrans cycles", "Gain"});
  std::vector<double> Gains;
  for (const workloads::BenchmarkInfo *Info :
       workloads::selectedBenchmarks()) {
    dbt::RunResult Base = reporting::runPolicyChecked(
        *Info, {mda::MechanismKind::Dpeh, 50, false, 0, false}, Scale);
    dbt::RunResult Retr = reporting::runPolicyChecked(
        *Info, {mda::MechanismKind::Dpeh, 50, false, 4, false}, Scale);
    double Gain = reporting::gainOver(Base.Cycles, Retr.Cycles);
    Gains.push_back(Gain);
    T.addRow({Info->Name, withCommas(Base.Cycles), withCommas(Retr.Cycles),
              signedPercent(Gain)});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains))});
  printTable(T, "fig13_retranslation");
  return 0;
}
