//===- bench/fig13_retranslation.cpp - Paper Figure 13 --------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 13: gain/loss of block retranslation (invalidate
/// and retranslate after 4 misalignment traps in a block) on top of
/// DPEH.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Figure 13: performance gain/loss with retranslation "
         "(baseline: DPEH; trigger: 4 traps per block)",
         "some benchmarks benefit, some degrade slightly; overall not "
         "substantial");

  workloads::ScaleConfig Scale = stdScale(Opt);
  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks) {
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::Dpeh, 50, false, 0, false}});
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::Dpeh, 50, false, 4, false}});
  }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T(
      {"Benchmark", "DPEH cycles", "DPEH+retrans cycles", "Gain"});
  std::vector<double> Gains;
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    const dbt::RunResult &Base = Results[B * 2];
    const dbt::RunResult &Retr = Results[B * 2 + 1];
    double Gain = reporting::gainOver(Base.Cycles, Retr.Cycles);
    Gains.push_back(Gain);
    T.addRow({Benchmarks[B]->Name, withCommas(Base.Cycles),
              withCommas(Retr.Cycles), signedPercent(Gain)});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains))});
  printTable(T, "fig13_retranslation");
  return 0;
}
