//===- bench/table4_static_residual.cpp - Paper Table IV ------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table IV: the number of MDAs remaining when the REF run
/// is translated under a profile collected with the TRAIN input —
/// measured as the misalignment traps under the StaticProfiling policy.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Table IV: remaining MDAs while profiling with the train input "
         "set",
         "huge for eon/art/soplex; zero for "
         "bwaves/sixtrack/povray/gromacs/lbm/sphinx3");

  workloads::ScaleConfig Scale = stdScale(Opt);
  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks)
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::StaticProfiling, 0, false, 0,
                  false}});
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "Paper", "Measured (scaled)"});
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    T.addRow({Benchmarks[B]->Name,
              paperCount(static_cast<uint64_t>(
                  Benchmarks[B]->PaperTrainResidual)),
              withCommas(Results[B].Counters.get("dbt.fault_traps"))});
  }
  printTable(T, "table4_static_residual");
  return 0;
}
