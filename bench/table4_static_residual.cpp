//===- bench/table4_static_residual.cpp - Paper Table IV ------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table IV: the number of MDAs remaining when the REF run
/// is translated under a profile collected with the TRAIN input —
/// measured as the misalignment traps under the StaticProfiling policy.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main() {
  banner("Table IV: remaining MDAs while profiling with the train input "
         "set",
         "huge for eon/art/soplex; zero for "
         "bwaves/sixtrack/povray/gromacs/lbm/sphinx3");

  workloads::ScaleConfig Scale = stdScale();
  TablePrinter T({"Benchmark", "Paper", "Measured (scaled)"});
  for (const workloads::BenchmarkInfo *Info :
       workloads::selectedBenchmarks()) {
    dbt::RunResult R = reporting::runPolicyChecked(
        *Info, {mda::MechanismKind::StaticProfiling, 0, false, 0, false},
        Scale);
    T.addRow({Info->Name,
              paperCount(static_cast<uint64_t>(Info->PaperTrainResidual)),
              withCommas(R.Counters.get("dbt.fault_traps"))});
  }
  printTable(T, "table4_static_residual");
  return 0;
}
