//===- bench/fig16_overall.cpp - Paper Figure 16 --------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 16: the overall comparison of all five MDA
/// handling mechanisms at their best configurations, runtime normalized
/// to the Exception Handling method.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Figure 16: performance of the MDA handling mechanisms "
         "(normalized to Exception Handling)",
         "DPEH best (~4.5% over EH); Dynamic Profiling collapses on "
         "gzip/art/xalancbmk/bwaves/milc/povray (Table III escapees); "
         "Static Profiling collapses on eon/art/soplex (Table IV); "
         "Direct Method worst overall (~+68%)");

  workloads::ScaleConfig Scale = stdScale(Opt);
  using mda::MechanismKind;
  struct Column {
    const char *Name;
    mda::PolicySpec Spec;
  };
  const Column Columns[] = {
      {"EH", {MechanismKind::ExceptionHandling, 50, false, 0, false}},
      {"DPEH", {MechanismKind::Dpeh, 50, false, 0, false}},
      {"DynProf", {MechanismKind::DynamicProfiling, 50, false, 0, false}},
      {"Static", {MechanismKind::StaticProfiling, 0, false, 0, false}},
      {"Direct", {MechanismKind::Direct, 0, false, 0, false}},
  };
  constexpr int NumCols = 5;

  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();
  dbt::EngineConfig Config;
  Config.Analysis = Opt.Analysis;
  Config.Aot = Opt.Aot ? dbt::AotMode::Hybrid : dbt::AotMode::Off;
  if (Opt.Analysis)
    std::printf("(static alignment analysis enabled for every run)\n\n");
  if (Opt.Aot)
    std::printf("(hybrid static AOT pre-translation enabled for every "
                "run)\n\n");
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks)
    for (int C = 0; C != NumCols; ++C)
      Cells.push_back(
          {.Info = Info, .Spec = Columns[C].Spec, .Config = Config});
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "EH", "DPEH", "DynProf", "Static",
                  "Direct"});
  std::vector<double> Norm[NumCols];
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    const dbt::RunResult *Row0 = &Results[B * NumCols];
    std::vector<std::string> Row = {Benchmarks[B]->Name};
    for (int C = 0; C != NumCols; ++C) {
      double V = static_cast<double>(Row0[C].Cycles) /
                 static_cast<double>(Row0[0].Cycles);
      Row.push_back(format("%.2f", V));
      Norm[C].push_back(V);
    }
    T.addRow(Row);
  }
  std::vector<std::string> Mean = {"Geomean"};
  for (auto &Series : Norm)
    Mean.push_back(format("%.2f", geometricMean(Series)));
  T.addRow(Mean);
  printTable(T, "fig16_overall");

  std::printf("Relative to EH=1.00: DPEH %.2f, DynProf %.2f, Static %.2f, "
              "Direct %.2f\n\n",
              geometricMean(Norm[1]), geometricMean(Norm[2]),
              geometricMean(Norm[3]), geometricMean(Norm[4]));
  return 0;
}
