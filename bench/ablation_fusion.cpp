//===- bench/ablation_fusion.cpp - Guest-idiom fusion rule ablation -------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: what each peephole fusion rule (dbt/FusionRules.h)
/// contributes to translated-code density — host instructions retired
/// and modeled cycles, per rule and with the whole table enabled.  Not
/// a paper experiment: it validates that the fusion layer the MDA
/// experiments sit on top of is architecturally transparent and
/// actually saves host work.
///
/// The ladder runs over six SPEC rows plus the two fusion-dense
/// kernels (workloads::buildFusionMemcpyKernel / buildFusionMemsetKernel)
/// whose hot loops are saturated with the fusable idioms, so each
/// rule's row moves even when the synthesized SPEC programs exercise
/// it only lightly.
///
/// Two guarantees this binary enforces (exit nonzero on violation):
///  * architectural identity: Checksum and MemoryHash are byte-identical
///    between every enabled-rule configuration and fusion-off, for every
///    ladder row and for all of the paper's 21 selected benchmarks
///    all-rules-on vs off (fusion may only change code density, never
///    what the code computes);
///  * determinism: the printed table depends only on modeled state, so
///    CI can diff it across --jobs values.
///
/// Wall-clock engine throughput fusion-off vs all-on is printed to
/// stderr as an advisory (machine-dependent, never a figure).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "dbt/FusionRules.h"
#include "guest/Interpreter.h"
#include "mda/PolicyFactory.h"
#include "workloads/Kernels.h"

#include <chrono>

using namespace mdabt;
using namespace mdabt::bench;

namespace {

struct ConfigRow {
  std::string Name;
  dbt::EngineConfig Config;
};

dbt::EngineConfig fusionConfig(uint32_t Mask) {
  dbt::EngineConfig C;
  C.Fusion = Mask != 0;
  C.FusionMask = Mask;
  return C;
}

/// The ladder: fusion off, each rule alone, the whole table.
std::vector<ConfigRow> configLadder() {
  std::vector<ConfigRow> Ladder;
  Ladder.push_back({"off", fusionConfig(0)});
  for (unsigned I = 0; I != dbt::NumFusionRules; ++I) {
    dbt::FusionRuleId Id = static_cast<dbt::FusionRuleId>(I);
    Ladder.push_back({std::string("+") + dbt::fusionRuleName(Id),
                      fusionConfig(dbt::fusionRuleBit(Id))});
  }
  Ladder.push_back({"all-on", fusionConfig(dbt::FusionMaskAll)});
  return Ladder;
}

/// One row of the ladder table: a SPEC benchmark or a fusion kernel.
struct LadderRow {
  const char *Name;
  const workloads::BenchmarkInfo *Info; ///< null for kernels
  guest::GuestImage (*Kernel)(uint32_t Rounds) = nullptr;
};

constexpr uint32_t KernelWords = 256;

guest::GuestImage memcpyKernel(uint32_t Rounds) {
  return workloads::buildFusionMemcpyKernel(KernelWords, Rounds);
}

guest::GuestImage memsetKernel(uint32_t Rounds) {
  return workloads::buildFusionMemsetKernel(KernelWords, Rounds);
}

dbt::RunResult runKernel(guest::GuestImage (*Kernel)(uint32_t),
                         uint32_t Rounds, const mda::PolicySpec &Spec,
                         const dbt::EngineConfig &Config) {
  guest::GuestImage Image = Kernel(Rounds);
  std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(Spec, &Image);
  dbt::Engine Engine(Image, *Policy, Config);
  dbt::RunResult R = Engine.run();
  reporting::checkRunCompleted(R, Image.Name);
  return R;
}

/// Dynamic guest instruction count of a kernel (deterministic; the
/// denominator of the host-insts-per-guest-inst column).
uint64_t guestInsts(guest::GuestImage (*Kernel)(uint32_t),
                    uint32_t Rounds) {
  guest::GuestImage Image = Kernel(Rounds);
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  guest::GuestCPU Cpu;
  Cpu.reset(Image);
  return guest::Interpreter(Mem).run(Cpu);
}

/// Wall-clock throughput of one kernel engine run in simulated host
/// MIPS (stderr advisory only).
double kernelMips(guest::GuestImage (*Kernel)(uint32_t), uint32_t Rounds,
                  const mda::PolicySpec &Spec,
                  const dbt::EngineConfig &Config) {
  auto T0 = std::chrono::steady_clock::now();
  dbt::RunResult R = runKernel(Kernel, Rounds, Spec, Config);
  double Sec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - T0)
                   .count();
  if (Sec <= 0.0)
    return 0.0;
  return static_cast<double>(R.Counters.get("host.insts")) / Sec / 1e6;
}

std::string fixed3(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Ablation (beyond the paper): per-rule guest-idiom fusion ladder "
         "under EH",
         "each rule shaves host instructions; architectural results "
         "identical in every configuration");

  workloads::ScaleConfig Scale = stdScale(Opt);
  // Kernel rounds: the memcpy kernel performs ~5 refs per inner
  // iteration x Words/2 iterations per round; scale rounds so kernel
  // rows cost about as much as a synthesized SPEC row.
  uint32_t KernelRounds =
      static_cast<uint32_t>(Scale.TotalRefs / (KernelWords * 3)) + 8;
  mda::PolicySpec Spec;
  Spec.Kind = mda::MechanismKind::ExceptionHandling;
  std::vector<ConfigRow> Ladder = configLadder();

  std::vector<LadderRow> Rows = {
      {"164.gzip", workloads::findBenchmark("164.gzip")},
      {"179.art", workloads::findBenchmark("179.art")},
      {"410.bwaves", workloads::findBenchmark("410.bwaves")},
      {"433.milc", workloads::findBenchmark("433.milc")},
      {"453.povray", workloads::findBenchmark("453.povray")},
      {"482.sphinx3", workloads::findBenchmark("482.sphinx3")},
      {"k.fmemcpy", nullptr, memcpyKernel},
      {"k.fmemset", nullptr, memsetKernel},
  };

  // --- detailed per-rule ladder over the subset ----------------------
  std::vector<reporting::MatrixCell> Cells;
  for (const LadderRow &Row : Rows) {
    for (const ConfigRow &C : Ladder) {
      reporting::MatrixCell Cell;
      Cell.Info = Row.Info;
      Cell.Spec = Spec;
      Cell.Config = C.Config;
      Cell.Label = std::string(Row.Name) + " under eh/" + C.Name;
      if (Row.Kernel) {
        auto Kernel = Row.Kernel;
        auto Config = C.Config;
        Cell.Run = [Kernel, KernelRounds, Spec, Config]() {
          return runKernel(Kernel, KernelRounds, Spec, Config);
        };
      }
      Cells.push_back(std::move(Cell));
    }
  }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  uint64_t KernelGuestInsts[2] = {
      guestInsts(memcpyKernel, KernelRounds),
      guestInsts(memsetKernel, KernelRounds),
  };

  int Failures = 0;
  TablePrinter T({"Benchmark", "Config", "Cycles", "HostInsts", "Sites",
                  "SavedWords", "H/G", "HostDelta"});
  for (size_t B = 0; B != Rows.size(); ++B) {
    const dbt::RunResult &Base = Results[B * Ladder.size()];
    for (size_t C = 0; C != Ladder.size(); ++C) {
      const dbt::RunResult &R = Results[B * Ladder.size() + C];
      if (R.Checksum != Base.Checksum || R.MemoryHash != Base.MemoryHash) {
        std::fprintf(stderr,
                     "FAIL: %s diverged architecturally under %s "
                     "(checksum %016llx vs %016llx, memhash %016llx vs "
                     "%016llx)\n",
                     Rows[B].Name, Ladder[C].Name.c_str(),
                     (unsigned long long)R.Checksum,
                     (unsigned long long)Base.Checksum,
                     (unsigned long long)R.MemoryHash,
                     (unsigned long long)Base.MemoryHash);
        ++Failures;
      }
      uint64_t Host = R.Counters.get("host.insts");
      uint64_t BaseHost = Base.Counters.get("host.insts");
      // Host-insts-per-guest-inst only where the guest dynamic count is
      // cheaply known (the kernels; the headline density metric).
      std::string Hipgi = "-";
      if (Rows[B].Kernel && KernelGuestInsts[B - 6] != 0)
        Hipgi = fixed3(static_cast<double>(Host) /
                       static_cast<double>(KernelGuestInsts[B - 6]));
      T.addRow({Rows[B].Name, Ladder[C].Name, withCommas(R.Cycles),
                withCommas(Host),
                withCommas(R.Counters.get("fusion.sites")),
                withCommas(R.Counters.get("fusion.saved_words")), Hipgi,
                signedPercent(reporting::gainOver(BaseHost, Host))});
    }
  }
  printTable(T, "ablation_fusion");

  // The whole point of the ladder: with every rule enabled, the
  // fusion-dense kernels must retire measurably fewer host
  // instructions than fusion-off.
  for (size_t B = 6; B != Rows.size(); ++B) {
    uint64_t Off = Results[B * Ladder.size()].Counters.get("host.insts");
    uint64_t On =
        Results[(B + 1) * Ladder.size() - 1].Counters.get("host.insts");
    if (On >= Off) {
      std::fprintf(stderr,
                   "FAIL: %s all-on retired %llu host insts vs %llu "
                   "fusion-off (no density win)\n",
                   Rows[B].Name, (unsigned long long)On,
                   (unsigned long long)Off);
      ++Failures;
    }
  }

  // --- architectural identity across ALL 21 selected benchmarks ------
  // all-rules-on vs fusion-off at the same scale; any divergence fatal.
  std::vector<const workloads::BenchmarkInfo *> Selected =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> IdCells;
  for (const workloads::BenchmarkInfo *Info : Selected) {
    IdCells.push_back({.Info = Info,
                       .Spec = Spec,
                       .Config = fusionConfig(0),
                       .Label = std::string(Info->Name) + " identity/off"});
    IdCells.push_back({.Info = Info,
                       .Spec = Spec,
                       .Config = fusionConfig(dbt::FusionMaskAll),
                       .Label = std::string(Info->Name) + " identity/on"});
  }
  std::vector<dbt::RunResult> IdResults =
      reporting::runPolicyMatrixChecked(IdCells, Scale, Opt.Jobs);
  size_t IdFailures = 0;
  for (size_t I = 0; I != Selected.size(); ++I) {
    const dbt::RunResult &Off = IdResults[I * 2];
    const dbt::RunResult &On = IdResults[I * 2 + 1];
    if (Off.Checksum != On.Checksum || Off.MemoryHash != On.MemoryHash) {
      std::fprintf(stderr,
                   "FAIL: %s fusion-on diverged from fusion-off (checksum "
                   "%016llx vs %016llx, memhash %016llx vs %016llx)\n",
                   Selected[I]->Name, (unsigned long long)On.Checksum,
                   (unsigned long long)Off.Checksum,
                   (unsigned long long)On.MemoryHash,
                   (unsigned long long)Off.MemoryHash);
      ++IdFailures;
    }
  }
  Failures += static_cast<int>(IdFailures);
  std::printf("architectural identity: %zu/%zu benchmarks byte-identical "
              "fusion-on vs fusion-off\n\n",
              Selected.size() - IdFailures, Selected.size());

  // --- wall-clock advisory (stderr; machine-dependent) ---------------
  double OffMips = kernelMips(memcpyKernel, KernelRounds, Spec,
                              Ladder.front().Config);
  double OnMips = kernelMips(memcpyKernel, KernelRounds, Spec,
                             Ladder.back().Config);
  std::fprintf(stderr,
               "advisory: engine wall-clock %.1f MIPS fusion-off vs %.1f "
               "MIPS all-on (%+.1f%%) on k.fmemcpy (machine-dependent)\n",
               OffMips, OnMips,
               OffMips > 0.0 ? (OnMips / OffMips - 1.0) * 100.0 : 0.0);

  return Failures == 0 ? 0 : 1;
}
