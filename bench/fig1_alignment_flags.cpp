//===- bench/fig1_alignment_flags.cpp - Paper Figure 1 --------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 1: the speedup of compiling with alignment-
/// enforcing flags on *native guest hardware* (which services MDAs with
/// split accesses).  Two modeled compilers differ in padding
/// aggressiveness (pathscale pads less than icc).  The paper's point:
/// means of only ~1-2%, with regressions — which is why released X86
/// binaries are not alignment-optimized.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "guest/NativeSim.h"

using namespace mdabt;
using namespace mdabt::bench;

namespace {

struct Compiler {
  const char *Name;
  double PaddingFactor;
};

} // namespace

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Figure 1: performance with alignment optimization flags",
         "mean speedup ~1% (pathscale) / ~1.8% (icc); some benchmarks "
         "regress from the padded working set.  The paper's unspecified "
         "'set of SPEC benchmarks' cannot have included the extreme-MDA "
         "codes (art/ammp at ~40% MDA ratio would dominate any mean), so "
         "this set excludes benchmarks with ratio > 20%");

  workloads::ScaleConfig Scale = stdScale(Opt);
  const Compiler Compilers[] = {{"pathscale", 1.45}, {"intel-cc", 1.30}};

  std::vector<const workloads::BenchmarkInfo *> Benchmarks;
  for (const workloads::BenchmarkInfo *Info :
       workloads::selectedBenchmarks()) {
    if (Info->PaperRatio > 0.20)
      continue; // art, ammp
    Benchmarks.push_back(Info);
  }

  // Each (benchmark, compiler) pair is an independent native-sim run
  // pair; fan them across the pool.
  std::vector<double> Speedups(Benchmarks.size() * 2);
  parallelFor(Opt.Jobs, Speedups.size(), [&](size_t I) {
    const workloads::BenchmarkInfo *Info = Benchmarks[I / 2];
    workloads::Fig1Pair Pair = workloads::buildFig1Pair(
        *Info, Compilers[I % 2].PaddingFactor, Scale);
    guest::NativeRunResult Default = guest::runNative(Pair.Default);
    guest::NativeRunResult Aligned = guest::runNative(Pair.Aligned);
    Speedups[I] = static_cast<double>(Default.Cycles) /
                      static_cast<double>(Aligned.Cycles) -
                  1.0;
  });

  TablePrinter T({"Benchmark", "pathscale", "intel-cc"});
  std::vector<double> Mean[2];
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    std::vector<std::string> Row = {Benchmarks[B]->Name};
    for (int C = 0; C != 2; ++C) {
      double Speedup = Speedups[B * 2 + C];
      Row.push_back(signedPercent(Speedup));
      Mean[C].push_back(Speedup);
    }
    T.addRow(Row);
  }
  T.addRow({"Average", signedPercent(arithmeticMean(Mean[0])),
            signedPercent(arithmeticMean(Mean[1]))});
  printTable(T, "fig1_alignment_flags");
  return 0;
}
