//===- bench/ablation_dispatch.cpp - Hot-dispatch mechanism ablation ------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: what each hot-dispatch mechanism contributes on top of the
/// chained baseline — hash-table monitor dispatch
/// (EngineConfig::HashDispatch), indirect-branch inline caches
/// (EngineConfig::InlineCaches), and superblock formation
/// (EngineConfig::Superblocks).  Not a paper experiment: it validates
/// that the monitor/dispatch costs the MDA experiments sit on top of
/// remain realistic as the dispatch path gets faster, and that every
/// mechanism is architecturally transparent.
///
/// The ladder runs over six SPEC rows plus two synthetic dispatch
/// kernels: the synthesized SPEC programs keep their indirect branches
/// (call/ret) cold, so `k.callret` (one hot callee returning to two
/// sites) exercises the inline caches and `k.loop3` (a hot three-block
/// loop) exercises multi-block trace formation.
///
/// Two guarantees this binary enforces (exit nonzero on violation):
///  * architectural identity: Checksum and MemoryHash are byte-identical
///    across every dispatch configuration, for every row of the ladder
///    and for all of the paper's 21 selected benchmarks all-on vs
///    all-off (mechanisms may only change *when* code is dispatched,
///    never *what* it computes);
///  * determinism: the printed table depends only on modeled state, so
///    CI can diff it across --jobs values.
///
/// Wall-clock engine throughput per configuration is printed to stderr
/// as an advisory (it is machine-dependent, never a figure).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "guest/Assembler.h"
#include "mda/Policies.h"

#include <chrono>

using namespace mdabt;
using namespace mdabt::bench;

namespace {

struct ConfigRow {
  const char *Name;
  dbt::EngineConfig Config;
};

/// The ablation ladder: baseline, each mechanism alone, all together.
std::vector<ConfigRow> configLadder() {
  dbt::EngineConfig Base;
  dbt::EngineConfig Hash = Base;
  Hash.HashDispatch = true;
  dbt::EngineConfig Ic = Base;
  Ic.InlineCaches = true;
  dbt::EngineConfig Super = Base;
  Super.Superblocks = true;
  dbt::EngineConfig All = Base;
  All.HashDispatch = All.InlineCaches = All.Superblocks = true;
  return {{"baseline", Base},
          {"+hash", Hash},
          {"+ic", Ic},
          {"+superblock", Super},
          {"all-on", All}};
}

/// Hot call/ret kernel: one callee returning alternately to two call
/// sites, so its return's inline cache needs two ways.
guest::GuestImage callRetKernel(uint32_t Iters) {
  using namespace guest;
  ProgramBuilder B("k.callret");
  uint32_t Buf = B.dataReserve(64, 8);
  ProgramBuilder::Label F = B.newLabel();
  B.movri(1, 0);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(2, 0);
  ProgramBuilder::Label Loop = B.here();
  B.call(F);
  B.call(F);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(Cond::B, Loop);
  B.chk(2);
  B.halt();
  B.bind(F);
  B.stl(mem(0, 0), 1);
  B.ldl(3, mem(0, 0));
  B.add(2, 3);
  B.ret();
  return B.build();
}

/// Hot three-block loop (if/else arms), the shape multi-block
/// superblock formation straightens.
guest::GuestImage multiBlockKernel(uint32_t Iters) {
  using namespace guest;
  ProgramBuilder B("k.loop3");
  uint32_t Buf = B.dataReserve(64, 8);
  B.movri(1, 0);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(2, 0);
  ProgramBuilder::Label Odd = B.newLabel(), Join = B.newLabel();
  ProgramBuilder::Label Loop = B.here();
  B.movrr(3, 1);
  B.andi(3, 1);
  B.cmpi(3, 0);
  B.jcc(Cond::Ne, Odd);
  B.stl(mem(0, 0), 1);
  B.ldl(3, mem(0, 0));
  B.add(2, 3);
  B.jmp(Join);
  B.bind(Odd);
  B.stl(mem(0, 4), 2);
  B.ldl(3, mem(0, 4));
  B.add(2, 3);
  B.bind(Join);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(Cond::B, Loop);
  B.chk(2);
  B.halt();
  return B.build();
}

/// One row of the ladder table: a SPEC benchmark or a synthetic kernel.
struct LadderRow {
  const char *Name;
  const workloads::BenchmarkInfo *Info; ///< null for kernels
  guest::GuestImage (*Kernel)(uint32_t) = nullptr;
};

dbt::RunResult runKernel(guest::GuestImage (*Kernel)(uint32_t),
                         uint32_t Iters, const mda::PolicySpec &Spec,
                         const dbt::EngineConfig &Config) {
  guest::GuestImage Image = Kernel(Iters);
  mda::DpehPolicy Policy(Spec.Threshold);
  dbt::Engine Engine(Image, Policy, Config);
  return Engine.run();
}

/// Wall-clock throughput of one engine run in simulated host MIPS.
double engineMips(const workloads::BenchmarkInfo &Info,
                  const mda::PolicySpec &Spec,
                  const workloads::ScaleConfig &Scale,
                  const dbt::EngineConfig &Config) {
  auto T0 = std::chrono::steady_clock::now();
  dbt::RunResult R = reporting::runPolicyChecked(Info, Spec, Scale, Config);
  double Sec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - T0)
                   .count();
  if (Sec <= 0.0)
    return 0.0;
  return static_cast<double>(R.Counters.get("host.insts")) / Sec / 1e6;
}

} // namespace

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Ablation (beyond the paper): hash dispatch / inline caches / "
         "superblocks under DPEH",
         "each mechanism shaves monitor-dispatch share; architectural "
         "results identical in every configuration");

  workloads::ScaleConfig Scale = stdScale(Opt);
  // Kernel iteration count: a few memory refs per circuit, scaled like
  // the synthesized programs so table rows stay comparable.
  uint32_t KernelIters =
      static_cast<uint32_t>(Scale.TotalRefs / 8) + 1000;
  mda::PolicySpec Spec{mda::MechanismKind::Dpeh, 50, false, 0, false};
  std::vector<ConfigRow> Ladder = configLadder();

  std::vector<LadderRow> Rows = {
      {"164.gzip", workloads::findBenchmark("164.gzip")},
      {"179.art", workloads::findBenchmark("179.art")},
      {"410.bwaves", workloads::findBenchmark("410.bwaves")},
      {"433.milc", workloads::findBenchmark("433.milc")},
      {"453.povray", workloads::findBenchmark("453.povray")},
      {"482.sphinx3", workloads::findBenchmark("482.sphinx3")},
      {"k.callret", nullptr, callRetKernel},
      {"k.loop3", nullptr, multiBlockKernel},
  };

  // --- detailed ladder over the subset -------------------------------
  std::vector<reporting::MatrixCell> Cells;
  for (const LadderRow &Row : Rows) {
    for (const ConfigRow &C : Ladder) {
      reporting::MatrixCell Cell;
      Cell.Info = Row.Info;
      Cell.Spec = Spec;
      Cell.Config = C.Config;
      Cell.Label = std::string(Row.Name) + " under dpeh/" + C.Name;
      if (Row.Kernel) {
        auto Kernel = Row.Kernel;
        auto Config = C.Config;
        Cell.Run = [Kernel, KernelIters, Spec, Config]() {
          return runKernel(Kernel, KernelIters, Spec, Config);
        };
      }
      Cells.push_back(std::move(Cell));
    }
  }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  int Failures = 0;
  TablePrinter T({"Benchmark", "Config", "Cycles", "Monitor", "Chain",
                  "Traps", "TblHits", "IcFills", "Traces", "Speedup"});
  for (size_t B = 0; B != Rows.size(); ++B) {
    const dbt::RunResult &Base = Results[B * Ladder.size()];
    for (size_t C = 0; C != Ladder.size(); ++C) {
      const dbt::RunResult &R = Results[B * Ladder.size() + C];
      if (R.Checksum != Base.Checksum || R.MemoryHash != Base.MemoryHash) {
        std::fprintf(stderr,
                     "FAIL: %s diverged architecturally under %s "
                     "(checksum %016llx vs %016llx, memhash %016llx vs "
                     "%016llx)\n",
                     Rows[B].Name, Ladder[C].Name,
                     (unsigned long long)R.Checksum,
                     (unsigned long long)Base.Checksum,
                     (unsigned long long)R.MemoryHash,
                     (unsigned long long)Base.MemoryHash);
        ++Failures;
      }
      T.addRow({Rows[B].Name, Ladder[C].Name, withCommas(R.Cycles),
                withCommas(R.Counters.get("cycles.monitor")),
                withCommas(R.Counters.get("cycles.chain")),
                withCommas(R.Counters.get("dbt.fault_traps")),
                withCommas(R.Counters.get("dispatch.table_hits")),
                withCommas(R.Counters.get("dispatch.ic_fills")),
                withCommas(R.Counters.get("trace.formed")),
                signedPercent(reporting::gainOver(Base.Cycles, R.Cycles))});
    }
  }
  printTable(T, "ablation_dispatch");

  // --- architectural identity across ALL 21 selected benchmarks ------
  // all-on vs all-off at the same scale; any divergence is fatal.
  std::vector<const workloads::BenchmarkInfo *> Selected =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> IdCells;
  for (const workloads::BenchmarkInfo *Info : Selected) {
    IdCells.push_back({.Info = Info,
                       .Spec = Spec,
                       .Config = Ladder.front().Config,
                       .Label = std::string(Info->Name) + " identity/off"});
    IdCells.push_back({.Info = Info,
                       .Spec = Spec,
                       .Config = Ladder.back().Config,
                       .Label = std::string(Info->Name) + " identity/on"});
  }
  std::vector<dbt::RunResult> IdResults =
      reporting::runPolicyMatrixChecked(IdCells, Scale, Opt.Jobs);
  size_t IdFailures = 0;
  for (size_t I = 0; I != Selected.size(); ++I) {
    const dbt::RunResult &Off = IdResults[I * 2];
    const dbt::RunResult &On = IdResults[I * 2 + 1];
    if (Off.Checksum != On.Checksum || Off.MemoryHash != On.MemoryHash) {
      std::fprintf(stderr,
                   "FAIL: %s all-on diverged from all-off (checksum "
                   "%016llx vs %016llx, memhash %016llx vs %016llx)\n",
                   Selected[I]->Name, (unsigned long long)On.Checksum,
                   (unsigned long long)Off.Checksum,
                   (unsigned long long)On.MemoryHash,
                   (unsigned long long)Off.MemoryHash);
      ++IdFailures;
    }
  }
  Failures += static_cast<int>(IdFailures);
  std::printf("architectural identity: %zu/%zu benchmarks byte-identical "
              "all-on vs all-off\n\n",
              Selected.size() - IdFailures, Selected.size());

  // --- wall-clock advisory (stderr; machine-dependent) ---------------
  const workloads::BenchmarkInfo *Hot = workloads::findBenchmark("179.art");
  double BaseMips = engineMips(*Hot, Spec, Scale, Ladder.front().Config);
  double AllMips = engineMips(*Hot, Spec, Scale, Ladder.back().Config);
  std::fprintf(stderr,
               "advisory: engine wall-clock %.1f MIPS baseline vs %.1f "
               "MIPS all-on (%+.1f%%) on 179.art (machine-dependent)\n",
               BaseMips, AllMips,
               BaseMips > 0.0 ? (AllMips / BaseMips - 1.0) * 100.0 : 0.0);

  return Failures == 0 ? 0 : 1;
}
