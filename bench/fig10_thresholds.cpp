//===- bench/fig10_thresholds.cpp - Paper Figure 10 -----------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 10: dynamic-profiling runtime across heating
/// thresholds TH in {10, 50, 500, 5000}, normalized to TH=10, over the
/// 21 selected benchmarks.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main() {
  banner("Figure 10: performance with different thresholds (baseline "
         "TH=10)",
         "TH=50 best on average; TH=10 insufficient for "
         "400.perlbench-like programs; TH>=500 pays profiling overhead "
         "(gzip/eon/galgel/sixtrack/tonto)");

  workloads::ScaleConfig Scale = stdScale();
  const uint32_t Thresholds[] = {10, 50, 500, 5000};

  TablePrinter T({"Benchmark", "TH=10", "TH=50", "TH=500", "TH=5000"});
  std::vector<double> Norm[4];
  for (const workloads::BenchmarkInfo *Info :
       workloads::selectedBenchmarks()) {
    uint64_t Cycles[4];
    for (int I = 0; I != 4; ++I) {
      dbt::RunResult R = reporting::runPolicyChecked(
          *Info,
          {mda::MechanismKind::DynamicProfiling, Thresholds[I], false, 0,
           false},
          Scale);
      Cycles[I] = R.Cycles;
    }
    std::vector<std::string> Row = {Info->Name};
    for (int I = 0; I != 4; ++I) {
      double V = static_cast<double>(Cycles[I]) /
                 static_cast<double>(Cycles[0]);
      Row.push_back(format("%.3f", V));
      Norm[I].push_back(V);
    }
    T.addRow(Row);
  }
  std::vector<std::string> Mean = {"Geomean"};
  for (auto &Series : Norm)
    Mean.push_back(format("%.3f", geometricMean(Series)));
  T.addRow(Mean);
  printTable(T, "fig10_thresholds");
  return 0;
}
