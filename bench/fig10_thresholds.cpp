//===- bench/fig10_thresholds.cpp - Paper Figure 10 -----------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 10: dynamic-profiling runtime across heating
/// thresholds TH in {10, 50, 500, 5000}, normalized to TH=10, over the
/// 21 selected benchmarks.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Figure 10: performance with different thresholds (baseline "
         "TH=10)",
         "TH=50 best on average; TH=10 insufficient for "
         "400.perlbench-like programs; TH>=500 pays profiling overhead "
         "(gzip/eon/galgel/sixtrack/tonto)");

  workloads::ScaleConfig Scale = stdScale(Opt);
  const uint32_t Thresholds[] = {10, 50, 500, 5000};

  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks)
    for (int I = 0; I != 4; ++I)
      Cells.push_back(
          {.Info = Info,
           .Spec = {mda::MechanismKind::DynamicProfiling, Thresholds[I],
                    false, 0, false}});
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "TH=10", "TH=50", "TH=500", "TH=5000"});
  std::vector<double> Norm[4];
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    const dbt::RunResult *Row0 = &Results[B * 4];
    std::vector<std::string> Row = {Benchmarks[B]->Name};
    for (int I = 0; I != 4; ++I) {
      double V = static_cast<double>(Row0[I].Cycles) /
                 static_cast<double>(Row0[0].Cycles);
      Row.push_back(format("%.3f", V));
      Norm[I].push_back(V);
    }
    T.addRow(Row);
  }
  std::vector<std::string> Mean = {"Geomean"};
  for (auto &Series : Norm)
    Mean.push_back(format("%.3f", geometricMean(Series)));
  T.addRow(Mean);
  printTable(T, "fig10_thresholds");
  return 0;
}
