//===- bench/fig14_multiversion.cpp - Paper Figure 14 ---------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 14: gain/loss of multi-version code (alignment
/// check selecting between the plain op and the MDA sequence, paper
/// Fig. 8) on top of DPEH.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Figure 14: performance gain/loss with multi-version code "
         "(baseline: DPEH)",
         "~1.1% mean, up to ~4.7%: MDA instructions are mostly biased "
         "(Fig. 15), so the checks rarely pay");

  workloads::ScaleConfig Scale = stdScale(Opt);
  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks) {
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::Dpeh, 50, false, 0, false}});
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::Dpeh, 50, false, 0, true}});
  }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "DPEH cycles", "DPEH+MV cycles", "Gain"});
  std::vector<double> Gains;
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    const dbt::RunResult &Base = Results[B * 2];
    const dbt::RunResult &Mv = Results[B * 2 + 1];
    double Gain = reporting::gainOver(Base.Cycles, Mv.Cycles);
    Gains.push_back(Gain);
    T.addRow({Benchmarks[B]->Name, withCommas(Base.Cycles),
              withCommas(Mv.Cycles), signedPercent(Gain)});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains))});
  printTable(T, "fig14_multiversion");
  return 0;
}
