//===- bench/fig14_multiversion.cpp - Paper Figure 14 ---------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 14: gain/loss of multi-version code (alignment
/// check selecting between the plain op and the MDA sequence, paper
/// Fig. 8) on top of DPEH.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main() {
  banner("Figure 14: performance gain/loss with multi-version code "
         "(baseline: DPEH)",
         "~1.1% mean, up to ~4.7%: MDA instructions are mostly biased "
         "(Fig. 15), so the checks rarely pay");

  workloads::ScaleConfig Scale = stdScale();
  TablePrinter T({"Benchmark", "DPEH cycles", "DPEH+MV cycles", "Gain"});
  std::vector<double> Gains;
  for (const workloads::BenchmarkInfo *Info :
       workloads::selectedBenchmarks()) {
    dbt::RunResult Base = reporting::runPolicyChecked(
        *Info, {mda::MechanismKind::Dpeh, 50, false, 0, false}, Scale);
    dbt::RunResult Mv = reporting::runPolicyChecked(
        *Info, {mda::MechanismKind::Dpeh, 50, false, 0, true}, Scale);
    double Gain = reporting::gainOver(Base.Cycles, Mv.Cycles);
    Gains.push_back(Gain);
    T.addRow({Info->Name, withCommas(Base.Cycles), withCommas(Mv.Cycles),
              signedPercent(Gain)});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains))});
  printTable(T, "fig14_multiversion");
  return 0;
}
