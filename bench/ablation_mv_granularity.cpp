//===- bench/ablation_mv_granularity.cpp - MV check granularity -----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for paper section IV-D: "generating multi-version code on
/// basic-block granularity can help to decrease the runtime overhead."
/// Compares per-instruction alignment checks (Fig. 8 left) against one
/// check per block selecting between two block-tail copies, on the
/// benchmarks carrying mixed-alignment traffic.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mda/Policies.h"

using namespace mdabt;
using namespace mdabt::bench;

namespace {

dbt::RunResult runDpehVariant(const workloads::BenchmarkInfo &Info,
                              const mda::DpehOptions &Opts,
                              const workloads::ScaleConfig &Scale) {
  guest::GuestImage Image =
      workloads::buildBenchmark(Info, workloads::InputKind::Ref, Scale);
  mda::DpehPolicy Policy(50, Opts);
  dbt::Engine Engine(Image, Policy);
  dbt::RunResult R = Engine.run();
  reporting::checkRunCompleted(R, Info.Name);
  return R;
}

} // namespace

int main() {
  banner("Ablation (beyond the paper): multi-version granularity — "
         "per-instruction checks vs one check per basic block",
         "block granularity should cut check overhead where several "
         "mixed sites share a block and an alignment pattern");

  workloads::ScaleConfig Scale = stdScale();
  TablePrinter T({"Benchmark", "per-inst MV", "block MV", "Gain",
                  "traps(block)"});
  std::vector<double> Gains;
  for (const workloads::BenchmarkInfo *Info :
       workloads::selectedBenchmarks()) {
    if (Info->FracRareRefs == 0.0 && Info->FracBelow50 < 0.05)
      continue; // no mixed traffic worth versioning
    mda::DpehOptions PerInst;
    PerInst.MultiVersion = true;
    mda::DpehOptions PerBlock = PerInst;
    PerBlock.MvBlockGranularity = true;
    dbt::RunResult RInst = runDpehVariant(*Info, PerInst, Scale);
    dbt::RunResult RBlock = runDpehVariant(*Info, PerBlock, Scale);
    double Gain = reporting::gainOver(RInst.Cycles, RBlock.Cycles);
    Gains.push_back(Gain);
    T.addRow({Info->Name, withCommas(RInst.Cycles),
              withCommas(RBlock.Cycles), signedPercent(Gain),
              withCommas(RBlock.Counters.get("dbt.fault_traps"))});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains)), ""});
  printTable(T, "ablation_mv_granularity");
  return 0;
}
