//===- bench/ablation_mv_granularity.cpp - MV check granularity -----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for paper section IV-D: "generating multi-version code on
/// basic-block granularity can help to decrease the runtime overhead."
/// Compares per-instruction alignment checks (Fig. 8 left) against one
/// check per block selecting between two block-tail copies, on the
/// benchmarks carrying mixed-alignment traffic.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mda/Policies.h"

using namespace mdabt;
using namespace mdabt::bench;

namespace {

dbt::RunResult runDpehVariant(const workloads::BenchmarkInfo &Info,
                              const mda::DpehOptions &Opts,
                              const workloads::ScaleConfig &Scale) {
  guest::GuestImage Image =
      workloads::buildBenchmark(Info, workloads::InputKind::Ref, Scale);
  mda::DpehPolicy Policy(50, Opts);
  dbt::Engine Engine(Image, Policy);
  return Engine.run();
}

} // namespace

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Ablation (beyond the paper): multi-version granularity — "
         "per-instruction checks vs one check per basic block",
         "block granularity should cut check overhead where several "
         "mixed sites share a block and an alignment pattern");

  workloads::ScaleConfig Scale = stdScale(Opt);
  mda::DpehOptions PerInst;
  PerInst.MultiVersion = true;
  mda::DpehOptions PerBlock = PerInst;
  PerBlock.MvBlockGranularity = true;

  std::vector<const workloads::BenchmarkInfo *> Benchmarks;
  for (const workloads::BenchmarkInfo *Info :
       workloads::selectedBenchmarks()) {
    if (Info->FracRareRefs == 0.0 && Info->FracBelow50 < 0.05)
      continue; // no mixed traffic worth versioning
    Benchmarks.push_back(Info);
  }

  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks)
    for (const mda::DpehOptions *Opts : {&PerInst, &PerBlock}) {
      mda::DpehOptions Copy = *Opts;
      Cells.push_back({.Info = Info,
                       .Label = std::string(Info->Name) +
                                (Opts == &PerBlock ? " (block MV)"
                                                   : " (per-inst MV)"),
                       .Run = [Info, Copy, Scale] {
                         return runDpehVariant(*Info, Copy, Scale);
                       }});
    }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "per-inst MV", "block MV", "Gain",
                  "traps(block)"});
  std::vector<double> Gains;
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    const dbt::RunResult &RInst = Results[B * 2];
    const dbt::RunResult &RBlock = Results[B * 2 + 1];
    double Gain = reporting::gainOver(RInst.Cycles, RBlock.Cycles);
    Gains.push_back(Gain);
    T.addRow({Benchmarks[B]->Name, withCommas(RInst.Cycles),
              withCommas(RBlock.Cycles), signedPercent(Gain),
              withCommas(RBlock.Counters.get("dbt.fault_traps"))});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains)), ""});
  printTable(T, "ablation_mv_granularity");
  return 0;
}
