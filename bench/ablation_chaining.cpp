//===- bench/ablation_chaining.cpp - Block-chaining contribution ----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: what block chaining (patching direct block exits into
/// branches) contributes to the DBT substrate.  Not a paper experiment —
/// it validates that the monitor-dispatch costs the MDA experiments sit
/// on top of are realistic (real DBTs all chain).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main() {
  banner("Ablation (beyond the paper): block chaining on/off under DPEH",
         "chaining removes nearly all monitor dispatches; speedup "
         "bounded by the monitor-dispatch share of runtime");

  workloads::ScaleConfig Scale = stdScale();
  const char *Subset[] = {"164.gzip", "179.art",    "410.bwaves",
                          "433.milc", "453.povray", "482.sphinx3"};

  TablePrinter T({"Benchmark", "chained", "unchained", "Speedup",
                  "dispatches(chained)", "dispatches(unchained)"});
  mda::PolicySpec Spec{mda::MechanismKind::Dpeh, 50, false, 0, false};
  for (const char *Name : Subset) {
    const workloads::BenchmarkInfo *Info = workloads::findBenchmark(Name);
    dbt::EngineConfig On;
    dbt::EngineConfig Off;
    Off.EnableChaining = false;
    dbt::RunResult ROn = reporting::runPolicyChecked(*Info, Spec, Scale, On);
    dbt::RunResult ROff = reporting::runPolicyChecked(*Info, Spec, Scale, Off);
    T.addRow({Name, withCommas(ROn.Cycles), withCommas(ROff.Cycles),
              signedPercent(reporting::gainOver(ROff.Cycles, ROn.Cycles)),
              withCommas(ROn.Counters.get("dbt.native_entries")),
              withCommas(ROff.Counters.get("dbt.native_entries"))});
  }
  printTable(T, "ablation_chaining");
  return 0;
}
