//===- bench/ablation_chaining.cpp - Block-chaining contribution ----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: what block chaining (patching direct block exits into
/// branches) contributes to the DBT substrate.  Not a paper experiment —
/// it validates that the monitor-dispatch costs the MDA experiments sit
/// on top of are realistic (real DBTs all chain).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Ablation (beyond the paper): block chaining on/off under DPEH",
         "chaining removes nearly all monitor dispatches; speedup "
         "bounded by the monitor-dispatch share of runtime");

  workloads::ScaleConfig Scale = stdScale(Opt);
  const char *Subset[] = {"164.gzip", "179.art",    "410.bwaves",
                          "433.milc", "453.povray", "482.sphinx3"};

  mda::PolicySpec Spec{mda::MechanismKind::Dpeh, 50, false, 0, false};
  dbt::EngineConfig On;
  dbt::EngineConfig Off;
  Off.EnableChaining = false;
  std::vector<reporting::MatrixCell> Cells;
  for (const char *Name : Subset) {
    const workloads::BenchmarkInfo *Info = workloads::findBenchmark(Name);
    Cells.push_back({.Info = Info, .Spec = Spec, .Config = On});
    Cells.push_back({.Info = Info, .Spec = Spec, .Config = Off});
  }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "chained", "unchained", "Speedup",
                  "dispatches(chained)", "dispatches(unchained)"});
  for (size_t B = 0; B != std::size(Subset); ++B) {
    const dbt::RunResult &ROn = Results[B * 2];
    const dbt::RunResult &ROff = Results[B * 2 + 1];
    T.addRow({Subset[B], withCommas(ROn.Cycles), withCommas(ROff.Cycles),
              signedPercent(reporting::gainOver(ROff.Cycles, ROn.Cycles)),
              withCommas(ROn.Counters.get("dbt.native_entries")),
              withCommas(ROff.Counters.get("dbt.native_entries"))});
  }
  printTable(T, "ablation_chaining");
  return 0;
}
