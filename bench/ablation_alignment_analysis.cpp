//===- bench/ablation_alignment_analysis.cpp - Static-analysis ablation ---==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation (beyond the paper): how much of the trap-handling work can a
/// sound static alignment analysis remove?  Re-runs the Figure 16
/// workloads under the two trap-exposed mechanisms (EH and DPEH) with
/// EngineConfig::Analysis off and on, and reports the misalignment
/// traps taken plus the analysis verdict counters (provably-aligned
/// sites elided from MDA bookkeeping, provably-misaligned sites inlined
/// at first translation).
///
/// Soundness contract, asserted per run pair:
///   - the architectural result (Checksum, MemoryHash) is bit-identical
///     with the analysis on;
///   - no benchmark takes *more* traps with the analysis on;
///   - across the suite, EH takes strictly fewer traps (the analysis
///     pre-inlines every provably-misaligning site EH would otherwise
///     trap on), and the combined EH+DPEH total is strictly lower.
///
/// DPEH's residual traps are expected NOT to shrink: after dynamic
/// profiling, the only sites still trapping under DPEH are the
/// late-onset ones that misalign for the first time after the profiling
/// window — and those load their base pointer from a slot written at
/// runtime, which makes them invisible to any sound static analysis by
/// construction (the slot value is not a compile-time constant).  A
/// "reduction" there would mean the analysis guessed, i.e. was unsound.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cinttypes>

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Ablation (beyond the paper): static alignment analysis vs "
         "EH/DPEH trap load",
         "EH traps drop sharply (always-misaligned sites pre-inlined); "
         "DPEH residual traps unchanged (late-onset sites are "
         "statically invisible by construction); results bit-identical");

  workloads::ScaleConfig Scale = stdScale(Opt);
  using mda::MechanismKind;
  struct Column {
    const char *Name;
    mda::PolicySpec Spec;
  };
  const Column Columns[] = {
      {"EH", {MechanismKind::ExceptionHandling, 50, false, 0, false}},
      {"DPEH", {MechanismKind::Dpeh, 50, false, 0, false}},
  };
  constexpr int NumCols = 2;

  // Matrix: benchmark x (EH, DPEH) x (analysis off, analysis on).
  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks)
    for (int C = 0; C != NumCols; ++C)
      for (int A = 0; A != 2; ++A) {
        dbt::EngineConfig Config;
        Config.Analysis = A == 1;
        Cells.push_back(
            {.Info = Info, .Spec = Columns[C].Spec, .Config = Config});
      }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "EHTraps", "EHTraps+A", "DPEHTraps",
                  "DPEHTraps+A", "Elided", "Inlined", "Unknown",
                  "EHSpeedup%"});
  uint64_t EhOffTotal = 0, EhOnTotal = 0;
  uint64_t DpehOffTotal = 0, DpehOnTotal = 0;
  bool Failed = false;
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    const dbt::RunResult *Row = &Results[B * NumCols * 2];
    // Row layout per benchmark: [EH off, EH on, DPEH off, DPEH on].
    uint64_t Traps[NumCols][2];
    for (int C = 0; C != NumCols; ++C) {
      const dbt::RunResult &Off = Row[C * 2];
      const dbt::RunResult &On = Row[C * 2 + 1];
      Traps[C][0] = Off.Counters.get("dbt.fault_traps");
      Traps[C][1] = On.Counters.get("dbt.fault_traps");
      if (On.Checksum != Off.Checksum || On.MemoryHash != Off.MemoryHash) {
        std::fprintf(stderr,
                     "FAIL: %s under %s diverges with analysis on "
                     "(checksum %" PRIu64 " vs %" PRIu64 ")\n",
                     Benchmarks[B]->Name, Columns[C].Name, On.Checksum,
                     Off.Checksum);
        Failed = true;
      }
      if (Traps[C][1] > Traps[C][0]) {
        std::fprintf(stderr,
                     "FAIL: %s under %s takes more traps with analysis on "
                     "(%" PRIu64 " vs %" PRIu64 ")\n",
                     Benchmarks[B]->Name, Columns[C].Name, Traps[C][1],
                     Traps[C][0]);
        Failed = true;
      }
    }
    EhOffTotal += Traps[0][0];
    EhOnTotal += Traps[0][1];
    DpehOffTotal += Traps[1][0];
    DpehOnTotal += Traps[1][1];
    // Analysis counters are identical across policies; read the EH run.
    const dbt::RunResult &EhOn = Row[1];
    double Gain = reporting::gainOver(Row[0].Cycles, Row[1].Cycles) * 100.0;
    T.addRow({Benchmarks[B]->Name, withCommas(Traps[0][0]),
              withCommas(Traps[0][1]), withCommas(Traps[1][0]),
              withCommas(Traps[1][1]),
              withCommas(EhOn.Counters.get("analysis.plan_aligned_elides")),
              withCommas(EhOn.Counters.get("analysis.plan_inline_forced")),
              withCommas(EhOn.Counters.get("analysis.unknown")),
              format("%.2f", Gain)});
  }
  printTable(T, "ablation_alignment_analysis");

  std::printf("Totals: EH traps %" PRIu64 " -> %" PRIu64 ", DPEH traps "
              "%" PRIu64 " -> %" PRIu64 ", combined %" PRIu64 " -> "
              "%" PRIu64 "\n",
              EhOffTotal, EhOnTotal, DpehOffTotal, DpehOnTotal,
              EhOffTotal + DpehOffTotal, EhOnTotal + DpehOnTotal);
  std::printf("DPEH residual traps are the late-onset sites (first MDA "
              "after the profiling window); their base pointers are "
              "runtime-written, so a sound static analysis cannot — and "
              "must not — classify them.\n\n");

  if (EhOnTotal >= EhOffTotal) {
    std::fprintf(stderr, "FAIL: analysis did not strictly reduce EH traps "
                         "(%" PRIu64 " -> %" PRIu64 ")\n",
                 EhOffTotal, EhOnTotal);
    Failed = true;
  }
  if (DpehOnTotal > DpehOffTotal) {
    std::fprintf(stderr, "FAIL: analysis increased DPEH traps (%" PRIu64
                         " -> %" PRIu64 ")\n",
                 DpehOffTotal, DpehOnTotal);
    Failed = true;
  }
  if (EhOnTotal + DpehOnTotal >= EhOffTotal + DpehOffTotal) {
    std::fprintf(stderr, "FAIL: analysis did not strictly reduce the "
                         "combined trap total\n");
    Failed = true;
  }
  if (Failed) {
    std::fprintf(stderr, "ablation_alignment_analysis FAILED\n");
    return 1;
  }
  std::printf("ablation_alignment_analysis passed\n");
  return 0;
}
